// Side-by-side comparison of all five timing models on one workload — the
// paper's "hierarchy of timing models" (Section 1) as a runnable example.
// For each model we run its best algorithm under that model's worst-case
// adversary family, print the measured time next to the Table 1 bounds, and
// show where each model pays for its uncertainty:
//
//   synchronous      no communication at all          (s*c2)
//   periodic         one communication, ever          (s*c_max + d2)
//   semi-synchronous one "virtual" communication per session, by stepping
//   sporadic         per-session cost scales with delay uncertainty u
//   asynchronous     one real communication per session ((s-1)(d2+c2)+c2)

#include <iostream>
#include <vector>

#include "algorithms/mpm/async_alg.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/mpm/sync_alg.hpp"
#include "analysis/bounds.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace sesp;

  const ProblemSpec spec{/*s=*/8, /*n=*/4, /*b=*/2};
  const Duration c1(1), c2(4), d1(2), d2(12);
  std::cout << "Workload: s=" << spec.s << " n=" << spec.n
            << ", c1=1 c2=4, d1=2 d2=12 (where the model uses them)\n\n";

  TextTable table({"model", "algorithm", "measured worst", "Table 1 L",
                   "Table 1 U", "communications"});
  bool ok = true;

  {
    SyncMpmFactory f;
    const WorstCase wc =
        mpm_worst_case(spec, TimingConstraints::synchronous(c2, d2), f);
    ok = ok && wc.all_solved;
    table.add_row({"synchronous", f.name(), fmt(wc.max_termination),
                   fmt(bounds::sync_tight(spec, c2)),
                   fmt(bounds::sync_tight(spec, c2)), "none"});
  }
  {
    PeriodicMpmFactory f;
    const auto constraints = TimingConstraints::periodic(
        std::vector<Duration>(static_cast<std::size_t>(spec.n), c2), d2);
    const WorstCase wc = mpm_worst_case(spec, constraints, f);
    ok = ok && wc.all_solved;
    table.add_row({"periodic", f.name(), fmt(wc.max_termination),
                   fmt(bounds::periodic_mp_lower(spec, c2, d2)),
                   fmt(bounds::periodic_mp_upper(spec, c2, d2)),
                   "one broadcast total"});
  }
  {
    SemiSyncMpmFactory f;
    const auto constraints = TimingConstraints::semi_synchronous(c1, c2, d2);
    const WorstCase wc = mpm_worst_case(spec, constraints, f, 3);
    ok = ok && wc.all_solved;
    table.add_row({"semi-synchronous", f.name(), fmt(wc.max_termination),
                   fmt(bounds::semisync_mp_lower(spec, c1, c2, d2)),
                   fmt(bounds::semisync_mp_upper(spec, c1, c2, d2)),
                   "0 or 1 per session (min branch)"});
  }
  {
    SporadicMpmFactory f;
    const auto constraints = TimingConstraints::sporadic(c1, d1, d2);
    const WorstCase wc = mpm_worst_case(spec, constraints, f, 3);
    ok = ok && wc.all_solved;
    table.add_row(
        {"sporadic", f.name(), fmt(wc.max_termination),
         fmt(bounds::sporadic_mp_lower(spec, c1, d1, d2)),
         fmt(bounds::sporadic_mp_upper(
             spec, c1, d1, d2,
             wc.max_gamma.is_zero() ? Duration(1) : wc.max_gamma)),
         "every step broadcasts"});
  }
  {
    AsyncMpmFactory f;
    const auto constraints = TimingConstraints::asynchronous(c2, d2);
    const WorstCase wc = mpm_worst_case(spec, constraints, f, 3);
    ok = ok && wc.all_solved;
    table.add_row({"asynchronous", f.name(), fmt(wc.max_termination),
                   fmt(bounds::async_mp_lower(spec, d2)),
                   fmt(bounds::async_mp_upper(spec, c2, d2)),
                   "one per session"});
  }

  table.print(std::cout);
  std::cout << "\nReading guide: tighter timing knowledge means cheaper "
               "synchronization.\nThe periodic model sits strictly between "
               "synchronous and asynchronous:\none communication total "
               "instead of none / one per session.\n";
  return ok ? 0 : 1;
}
