// Quickstart: define a session-problem instance, pick a timing model, run
// the paper's algorithm under an adversarial schedule, and machine-check the
// result.
//
//   $ ./quickstart
//
// Walks through the library's main objects: ProblemSpec, TimingConstraints,
// algorithm factories, the simulator, and the verifier.

#include <iostream>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "analysis/bounds.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace sesp;

  // The (s, n)-session problem: every admissible computation must contain at
  // least s disjoint sessions — fragments in which each of the n port
  // processes takes a port step — and all port processes eventually idle.
  const ProblemSpec spec{/*s=*/5, /*n=*/4, /*b=*/2};

  // The sporadic timing model (Section 6): step gaps >= c1, no upper bound;
  // message delays within [d1, d2]. All three constants are known to the
  // algorithm.
  const auto constraints = TimingConstraints::sporadic(
      /*c1=*/Duration(1), /*d1=*/Duration(2), /*d2=*/Duration(10));

  // A(sp), the paper's sporadic algorithm: broadcasts m(i, session) at every
  // step and infers sessions either from matching session values (condition
  // 1) or from elapsed-time reasoning (condition 2).
  SporadicMpmFactory algorithm;

  // An adversary: every process steps as fast as allowed, every message is
  // as slow as allowed.
  FixedPeriodScheduler scheduler(spec.n, constraints.c1);
  FixedDelay delays(constraints.d2);

  // Run and verify.
  const MpmOutcome outcome =
      run_mpm_once(spec, constraints, algorithm, scheduler, delays);

  std::cout << "completed:   " << (outcome.run.completed ? "yes" : "no")
            << "\nadmissible:  "
            << (outcome.verdict.admissible ? "yes" : "no")
            << "\nsessions:    " << outcome.verdict.sessions << " (need "
            << spec.s << ")"
            << "\nsolves:      " << (outcome.verdict.solves ? "yes" : "no")
            << "\ntermination: " << outcome.verdict.termination_time->to_string()
            << "\ngamma:       " << outcome.verdict.gamma->to_string()
            << "\nsteps taken: " << outcome.run.compute_steps
            << "\nmessages:    " << outcome.run.messages_sent << "\n";

  // Compare with the paper's Theorem 6.1 upper bound for this computation's
  // gamma.
  const Time upper = bounds::sporadic_mp_upper(
      spec, constraints.c1, constraints.d1, constraints.d2,
      *outcome.verdict.gamma);
  std::cout << "Theorem 6.1 bound: " << upper.to_string() << " -> "
            << (*outcome.verdict.termination_time <= upper ? "within bound"
                                                           : "VIOLATED")
            << "\n";
  return outcome.verdict.solves ? 0 : 1;
}
