// Table 1 as a calculator: instantiate every bound formula of the paper for
// one set of constants and print the full table, paper-style — useful when
// designing an instance or sanity-checking an experiment by hand.
//
//   ./paper_tables              (defaults: s=8 n=16 b=2 c1=1 c2=4 d1=2 d2=12)
//   ./paper_tables 5 32 3 1 8 0 20            (s n b c1 c2 d1 d2, integers)

#include <cstdlib>
#include <iostream>

#include "algorithms/smm/semisync_alg.hpp"
#include "analysis/bounds.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace sesp;
  using namespace sesp::bounds;

  ProblemSpec spec{8, 16, 2};
  Duration c1(1), c2(4), d1(2), d2(12);
  if (argc == 8) {
    spec.s = std::atoll(argv[1]);
    spec.n = std::atoi(argv[2]);
    spec.b = std::atoi(argv[3]);
    c1 = Duration(std::atoll(argv[4]));
    c2 = Duration(std::atoll(argv[5]));
    d1 = Duration(std::atoll(argv[6]));
    d2 = Duration(std::atoll(argv[7]));
  } else if (argc != 1) {
    std::cerr << "usage: paper_tables [s n b c1 c2 d1 d2]\n";
    return 2;
  }

  std::cout << "Table 1 instantiated for s=" << spec.s << " n=" << spec.n
            << " b=" << spec.b << ", c1=" << c1 << " c2=" << c2
            << " d1=" << d1 << " d2=" << d2
            << "  (periodic uses c_max=c2, c_min=c1; gamma=c2 for the "
               "sporadic U)\n\n";

  const std::int64_t tree = smm_tree_latency_steps(spec.n, spec.b);

  TextTable table({"model", "SM lower", "SM upper", "MP lower", "MP upper"});
  table.add_row({"synchronous", fmt(sync_tight(spec, c2)),
                 fmt(sync_tight(spec, c2)), fmt(sync_tight(spec, c2)),
                 fmt(sync_tight(spec, c2))});
  table.add_row({"periodic", fmt(periodic_sm_lower(spec, c2, c1)),
                 fmt(periodic_sm_upper(spec, c2, tree)),
                 fmt(periodic_mp_lower(spec, c2, d2)),
                 fmt(periodic_mp_upper(spec, c2, d2))});
  table.add_row({"semi-synchronous", fmt(semisync_sm_lower(spec, c1, c2)),
                 fmt(semisync_sm_upper(spec, c1, c2, tree)),
                 fmt(semisync_mp_lower(spec, c1, c2, d2)),
                 fmt(semisync_mp_upper(spec, c1, c2, d2))});
  table.add_row({"sporadic", "(= async SM)", "(= async SM)",
                 fmt(sporadic_mp_lower(spec, c1, d1, d2)),
                 fmt(sporadic_mp_upper(spec, c1, d1, d2, /*gamma=*/c2))});
  table.add_row({"asynchronous",
                 std::to_string(async_sm_lower_rounds(spec)) + " rounds",
                 std::to_string(async_sm_upper_rounds(spec, tree)) +
                     " rounds",
                 fmt(async_mp_lower(spec, d2)),
                 fmt(async_mp_upper(spec, c2, d2))});
  table.print(std::cout);

  std::cout << "\nDerived quantities:\n"
            << "  u = d2 - d1 = " << (d2 - d1) << "\n"
            << "  K = 2*d2*c1/(d2 - u/2) = " << sporadic_K(c1, d1, d2)
            << "\n"
            << "  floor(log_b n) = " << floor_log(spec.b, spec.n) << ", "
            << "floor(log_{2b-1}(2n-1)) = "
            << floor_log(2 * spec.b - 1, 2 * spec.n - 1) << "\n"
            << "  tree latency constant (this implementation) = " << tree
            << " steps\n"
            << "  semi-sync step budget floor(c2/c1)+1 = "
            << (c2 / c1).floor() + 1 << " steps/session\n";
  return 0;
}
