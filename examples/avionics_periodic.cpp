// Periodic-model scenario from the paper's motivation (Section 1): avionics
// and process control, where "accurate control requires continual sampling
// and processing of data". Each controller samples its sensor at a fixed
// but *unknown-to-the-software* rate (crystal tolerances differ per board),
// and a control round is only meaningful once every controller has
// contributed a fresh sample — exactly an (s, n)-session instance in the
// periodic model.
//
// We model one flight-control cycle group: n controllers, s control rounds,
// heterogeneous sampling periods, bounded bus delay d2. A(p) guarantees
// the rounds with a single end-of-round communication, and the run is
// machine-checked against Theorem 4.1's bound.

#include <iostream>
#include <vector>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "analysis/bounds.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace sesp;

  // Six controllers; nominal 10ms sampling, per-board drift up to +25%.
  // Time unit: 1ms, exact rationals.
  const std::vector<Duration> sampling_periods = {
      Duration(10),      Duration(41, 4), Duration(21, 2),
      Duration(87, 8),   Duration(23, 2), Duration(25, 2)};
  const Duration bus_delay(4);  // worst-case backplane latency

  std::cout << "Avionics control group: " << sampling_periods.size()
            << " controllers, sampling periods (ms): ";
  for (const auto& p : sampling_periods) std::cout << p.to_string() << " ";
  std::cout << "\n\n";

  TextTable table({"control rounds (s)", "predicted L", "measured",
                   "predicted U", "all rounds complete"});

  bool ok = true;
  for (const std::int64_t rounds : {2, 5, 10, 20}) {
    const ProblemSpec spec{rounds,
                           static_cast<std::int32_t>(sampling_periods.size()),
                           2};
    const auto constraints =
        TimingConstraints::periodic(sampling_periods, bus_delay);

    PeriodicMpmFactory controller;
    const WorstCase wc = mpm_worst_case(spec, constraints, controller);
    ok = ok && wc.all_solved && wc.all_admissible;

    table.add_row(
        {std::to_string(rounds),
         bounds::periodic_mp_lower(spec, constraints.c_max(), bus_delay)
             .to_string(),
         wc.max_termination.to_string(),
         bounds::periodic_mp_upper(spec, constraints.c_max(), bus_delay)
             .to_string(),
         wc.all_solved ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::cout << "\nThe cost of not knowing the rates: only one broadcast at "
               "the end\n(s*c_max + d2) versus the synchronous s*c_max — "
               "Section 4's point.\n";
  return ok ? 0 : 1;
}
