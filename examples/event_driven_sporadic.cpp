// Sporadic-model scenario from the paper's motivation (Section 1):
// event-driven processing — device interrupts and user inputs arrive
// repeatedly but with arbitrarily large gaps, while the interconnect has
// known delay bounds [d1, d2]. The sporadic model captures exactly this:
// a lower bound c1 between consecutive steps (interrupt coalescing), no
// upper bound (quiet periods), bounded message delay.
//
// Scenario: n event handlers must complete s coordination epochs (e.g.
// checkpoint barriers) despite one handler occasionally stalling for a long
// time. A(sp)'s condition-2 timing inference lets handlers conclude an
// epoch passed without hearing matching epoch numbers.

#include <iostream>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "analysis/bounds.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"

int main() {
  using namespace sesp;

  const ProblemSpec spec{/*s=*/6, /*n=*/5, /*b=*/2};
  const Duration c1(1);  // minimum inter-interrupt gap

  std::cout << "Event-driven handlers: " << spec.n << " handlers, " << spec.s
            << " checkpoint epochs, c1 = " << c1.to_string() << "\n\n";

  TextTable table({"[d1, d2]", "u", "scenario", "sessions", "time", "rounds",
                   "ok"});
  bool ok = true;

  for (const auto& [d1v, d2v] : {std::pair<int, int>{9, 10},
                                 std::pair<int, int>{5, 10},
                                 std::pair<int, int>{0, 10}}) {
    const auto constraints =
        TimingConstraints::sporadic(c1, Duration(d1v), Duration(d2v));
    SporadicMpmFactory handler;

    struct Scenario {
      const char* label;
      std::unique_ptr<StepScheduler> sched;
      std::unique_ptr<DelayStrategy> delay;
    };
    Scenario scenarios[] = {
        {"steady load",
         std::make_unique<FixedPeriodScheduler>(spec.n, c1),
         std::make_unique<FixedDelay>(Duration(d2v))},
        {"one stalling handler",
         std::make_unique<SlowOneScheduler>(spec.n, c1, 0, c1 * 40),
         std::make_unique<FixedDelay>(Duration(d2v))},
        {"bursty interrupts",
         std::make_unique<BurstyScheduler>(c1, 1, 6, 25, 0xE17ULL),
         std::make_unique<UniformRandomDelay>(Duration(d1v), Duration(d2v),
                                              0xD3ADULL)},
    };

    for (Scenario& sc : scenarios) {
      const MpmOutcome out = run_mpm_once(spec, constraints, handler,
                                          *sc.sched, *sc.delay);
      const bool this_ok = out.verdict.admissible && out.verdict.solves;
      ok = ok && this_ok;
      table.add_row({"[" + std::to_string(d1v) + ", " + std::to_string(d2v) +
                         "]",
                     std::to_string(d2v - d1v), sc.label,
                     std::to_string(out.verdict.sessions),
                     out.verdict.termination_time
                         ? out.verdict.termination_time->to_string()
                         : "-",
                     std::to_string(out.verdict.rounds.rounds_ceiling()),
                     this_ok ? "yes" : "NO"});
    }
  }
  table.print(std::cout);

  std::cout << "\nNote how tight delay bounds (u small) keep epochs cheap "
               "even under stalls,\nwhile u -> d2 pushes each epoch toward "
               "a full d2 round trip (Section 6).\n";
  return ok ? 0 : 1;
}
