// The adversary pipeline, end to end: take a plausible-looking but subtly
// wrong synchronization algorithm, let the Theorem 5.1 retimer hunt for an
// admissible computation on which it misses sessions, package the find as a
// serializable violation certificate, and re-validate the certificate from
// its text form alone — the library's "proof-carrying counterexample"
// workflow.
//
// The broken algorithm here is a step counter that budgets floor(c2/c1)
// steps per session. It looks right (each own step takes at least c1, so
// floor(c2/c1) steps span ~c2, within which everyone else should step) but
// the budget is off by one: floor(c2/c1)*c1 can be exactly c2, and a
// process may take *no* step in a half-open window of length c2. The
// correct budget is floor(c2/c1)+1 (Section 5 / [4]).

#include <iostream>

#include "adversary/certificate.hpp"
#include "adversary/step_schedulers.hpp"
#include "adversary/semisync_retimer.hpp"
#include "algorithms/smm/broken_algs.hpp"
#include "model/trace_io.hpp"
#include "session/session_counter.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace sesp;

  const ProblemSpec spec{/*s=*/5, /*n=*/8, /*b=*/2};
  const auto constraints = TimingConstraints::semi_synchronous(
      /*c1=*/Duration(1), /*c2=*/Duration(9));

  // The subtly wrong algorithm: 4 < floor(9/1)+1 = 10 steps per session —
  // works fine on friendly schedules...
  TooFewStepsSmmFactory suspect(/*steps_per_session=*/2);

  std::cout << "Suspect: step counting with 2 steps per session under "
               "c2/c1 = 9\n\n[1] friendly schedule (everyone at c1):\n";
  {
    const std::int32_t total = smm_total_processes(spec.n, spec.b);
    FixedPeriodScheduler friendly(total, constraints.c1);
    const SmmOutcome out = run_smm_once(spec, constraints, suspect, friendly);
    std::cout << "    sessions=" << out.verdict.sessions << " (need "
              << spec.s << ") -> looks "
              << (out.verdict.solves ? "correct" : "broken") << "\n";
  }

  std::cout << "\n[2] the Theorem 5.1 retimer hunts for a counterexample:\n";
  const SemiSyncRetimingResult result =
      attack_semisync_smm(spec, constraints, suspect);
  std::cout << "    " << result.to_string() << "\n";
  if (!result.certificate) {
    std::cout << "no violation found — nothing to certify\n";
    return 1;
  }

  std::cout << "\n[3] package as a violation certificate and serialize:\n";
  const ViolationCertificate cert =
      make_certificate(result, suspect.name(), spec, constraints);
  const std::string text = to_text(cert);
  std::cout << "    " << text.size() << " bytes, "
            << cert.computation.steps().size() << " steps\n";

  std::cout << "\n[4] re-validate from the text alone (as a skeptical "
               "third party would):\n";
  std::string error;
  const auto parsed = certificate_from_text(text, &error);
  if (!parsed) {
    std::cout << "    parse error: " << error << "\n";
    return 1;
  }
  const CertificateCheck check = check_certificate(*parsed);
  std::cout << "    structural + admissibility + session count: "
            << (check.valid ? "VALID" : "invalid") << "\n    the computation "
            << "is admissible for the semi-synchronous model and contains "
            << check.sessions << " < " << spec.s << " sessions.\n";

  std::cout << "\nConclusion: the suspect algorithm is refuted by a "
               "machine-checked admissible computation.\nOn the same "
               "instance, the correct budget (floor(c2/c1)+1 = 10 steps) "
               "survives the same attack.\n";
  return check.valid ? 0 : 1;
}
