// sesp_perf — bench-history ledger and perf-regression gate
// (docs/observability.md "Bench history & regression gate").
//
//   sesp_perf record --results=bench_results.json \
//       [--history=bench_history.jsonl] [--commit=SHA] [--quick]
//   sesp_perf check [--history=bench_history.jsonl] [--window=N]
//       [--min-samples=N] [--min-drop=F] [--mad-mult=F]
//   sesp_perf self-test
//
// `record` appends one sesp-perf/1 line per bench embedded in the merged
// results document (append-only: history survives and `git log -p` reads
// as a perf trajectory). `check` compares the newest entry of every
// (bench, quick) series against the median of a rolling window of priors
// with a noise-aware threshold, prints one verdict line per series, and
// exits nonzero on any regression. `self-test` drives the gate against
// synthetic series — a steady one must pass and an injected 2x slowdown
// must be flagged — so CI can prove the gate itself works before trusting
// a green check; it also holds the sim-core floor: the newest full-mode
// "faults" ledger entry must stay >= 5x the seeded baseline
// (docs/performance.md).
//
// Exit status: 0 ok; 1 regression detected (check) or self-test failure;
// 2 usage/file errors. `check` on a missing or too-short history exits 0
// with a note — a fresh repo never fails its first CI run.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/perf_history.hpp"

namespace sesp {
namespace {

void usage(std::ostream& os) {
  os << "usage: sesp_perf record --results=FILE [--history=FILE]\n"
        "                        [--commit=SHA] [--quick]\n"
        "       sesp_perf check [--history=FILE] [--window=N]\n"
        "                       [--min-samples=N] [--min-drop=F]\n"
        "                       [--mad-mult=F]\n"
        "       sesp_perf self-test [--history=FILE]\n"
        "  --results=FILE               merged bench_results.json to fold\n"
        "  --history=FILE               ledger path (default\n"
        "                               bench_history.jsonl)\n"
        "  --commit=SHA                 commit stamp for new entries\n"
        "  --quick                      mark entries as quick-mode runs\n"
        "                               (default: SESP_BENCH_QUICK=1)\n"
        "  --window=N                   prior samples per series (8)\n"
        "  --min-samples=N              priors required to gate (3)\n"
        "  --min-drop=F                 always-allowed drop fraction"
        " (0.25)\n"
        "  --mad-mult=F                 noise width multiplier (6.0)\n";
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

int run_record(const std::string& results_path,
               const std::string& history_path, const std::string& commit,
               bool quick) {
  std::string results_text;
  if (!read_file(results_path, &results_text)) {
    std::cerr << "cannot open " << results_path << "\n";
    return 2;
  }
  const std::int64_t now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  std::vector<obs::PerfEntry> entries;
  std::string error;
  if (!obs::entries_from_results(results_text, commit, now_ms, quick,
                                 &entries, &error)) {
    std::cerr << "cannot fold " << results_path << ": " << error << "\n";
    return 2;
  }
  if (entries.empty()) {
    std::cerr << results_path << " embeds no bench records\n";
    return 2;
  }
  std::ofstream out(history_path, std::ios::app);
  if (!out) {
    std::cerr << "cannot append to " << history_path << "\n";
    return 2;
  }
  for (const obs::PerfEntry& e : entries)
    out << obs::render_perf_entry(e) << "\n";
  std::cout << "recorded " << entries.size() << " bench entr"
            << (entries.size() == 1 ? "y" : "ies") << " into "
            << history_path << "\n";
  return 0;
}

int run_check(const std::string& history_path,
              const obs::PerfCheckOptions& opt) {
  std::string text;
  if (!read_file(history_path, &text)) {
    std::cout << "no history at " << history_path
              << "; nothing to gate — pass\n";
    return 0;
  }
  std::int64_t skipped = 0;
  const std::vector<obs::PerfEntry> entries =
      obs::parse_perf_ledger(text, &skipped);
  if (skipped > 0)
    std::cerr << "warning: " << skipped
              << " malformed ledger line(s) skipped\n";
  if (entries.empty()) {
    std::cout << "history " << history_path
              << " holds no entries; nothing to gate — pass\n";
    return 0;
  }
  const std::vector<obs::PerfCheck> checks =
      obs::check_history(entries, opt);
  bool regression = false;
  for (const obs::PerfCheck& c : checks) {
    std::cout << (c.regression ? "[FAIL] " : "[ OK ] ") << c.note << "\n";
    regression = regression || c.regression;
  }
  if (regression) {
    std::cout << "[FAIL] perf regression detected\n";
    return 1;
  }
  std::cout << "[OK] no perf regression across " << checks.size()
            << " series\n";
  return 0;
}

// Sim-core throughput floor: the newest full-mode "faults" entry must hold
// at least 5x the seeded (first) full-mode entry — the calendar-queue
// rewrite's recorded gain must never silently erode. Skipped with a note
// when the ledger is missing or still holds fewer than two full-mode
// entries (a fresh repo has nothing to hold the floor against).
int check_sim_core_floor(const std::string& history_path) {
  std::string text;
  if (!read_file(history_path, &text)) {
    std::cout << "[SKIP] sim-core floor: no history at " << history_path
              << "\n";
    return 0;
  }
  std::int64_t skipped = 0;
  std::vector<double> full_faults;
  for (const obs::PerfEntry& e : obs::parse_perf_ledger(text, &skipped))
    if (e.bench == "faults" && !e.quick && e.ok)
      full_faults.push_back(e.steps_per_sec);
  if (full_faults.size() < 2) {
    std::cout << "[SKIP] sim-core floor: " << full_faults.size()
              << " full-mode faults entr"
              << (full_faults.size() == 1 ? "y" : "ies") << " in "
              << history_path << "\n";
    return 0;
  }
  const double seeded = full_faults.front();
  const double newest = full_faults.back();
  if (seeded > 0.0 && newest < 5.0 * seeded) {
    std::cout << "[FAIL] sim-core floor: newest faults entry " << newest
              << " steps/s < 5x seeded baseline " << seeded << "\n";
    return 1;
  }
  std::cout << "[ OK ] sim-core floor: " << newest << " steps/s >= 5x seeded "
            << seeded << "\n";
  return 0;
}

// The gate gating itself: a steady series must pass, a 2x slowdown must be
// flagged, and a too-short series must pass with a note.
int run_self_test(const std::string& history_path) {
  obs::PerfCheckOptions opt;
  const auto entry = [](const std::string& bench, double rate) {
    obs::PerfEntry e;
    e.bench = bench;
    e.commit = "selftest";
    e.quick = false;
    e.ok = true;
    e.steps_per_sec = rate;
    return e;
  };

  std::vector<obs::PerfEntry> steady;
  for (const double r : {1.00e6, 1.02e6, 0.99e6, 1.01e6, 1.00e6})
    steady.push_back(entry("steady", r));
  const std::vector<obs::PerfCheck> ok_checks =
      obs::check_history(steady, opt);
  if (ok_checks.size() != 1 || ok_checks[0].regression) {
    std::cout << "[FAIL] self-test: steady series flagged\n";
    return 1;
  }

  std::vector<obs::PerfEntry> slowed = steady;
  slowed.push_back(entry("steady", 0.50e6));  // injected 2x slowdown
  const std::vector<obs::PerfCheck> slow_checks =
      obs::check_history(slowed, opt);
  if (slow_checks.size() != 1 || !slow_checks[0].regression) {
    std::cout << "[FAIL] self-test: 2x slowdown not flagged\n";
    return 1;
  }

  std::vector<obs::PerfEntry> young;
  young.push_back(entry("young", 1.0e6));
  young.push_back(entry("young", 0.4e6));  // slow, but only 1 prior
  const std::vector<obs::PerfCheck> young_checks =
      obs::check_history(young, opt);
  if (young_checks.size() != 1 || young_checks[0].regression) {
    std::cout << "[FAIL] self-test: short series must pass with a note\n";
    return 1;
  }

  // Round-trip: a rendered entry parses back to the same trajectory data.
  obs::PerfEntry sample = entry("roundtrip", 123456.5);
  sample.profile.push_back(obs::PerfPhase{"sim.step", 42, 1000});
  obs::PerfEntry parsed;
  std::string error;
  if (!obs::parse_perf_entry(obs::render_perf_entry(sample), &parsed,
                             &error) ||
      parsed.bench != sample.bench ||
      parsed.steps_per_sec != sample.steps_per_sec ||
      parsed.profile.size() != 1 || parsed.profile[0].count != 42) {
    std::cout << "[FAIL] self-test: ledger round-trip broke (" << error
              << ")\n";
    return 1;
  }

  if (const int rc = check_sim_core_floor(history_path); rc != 0) return rc;

  std::cout << "[OK] sesp_perf self-test passed\n";
  return 0;
}

}  // namespace
}  // namespace sesp

int main(int argc, char** argv) {
  if (argc < 2) {
    sesp::usage(std::cerr);
    return 2;
  }
  const std::string mode = argv[1];
  std::string results;
  std::string history = "bench_history.jsonl";
  std::string commit = "unknown";
  const char* quick_env = std::getenv("SESP_BENCH_QUICK");
  bool quick = quick_env && std::string(quick_env) == "1";
  sesp::obs::PerfCheckOptions opt;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    try {
      if (key == "--results") results = value;
      else if (key == "--history") history = value;
      else if (key == "--commit") commit = value;
      else if (key == "--quick") quick = true;
      else if (key == "--window") opt.window = std::stoi(value);
      else if (key == "--min-samples") opt.min_samples = std::stoi(value);
      else if (key == "--min-drop") opt.min_drop = std::stod(value);
      else if (key == "--mad-mult") opt.mad_mult = std::stod(value);
      else if (key == "--help" || key == "-h") {
        sesp::usage(std::cout);
        return 0;
      } else {
        std::cerr << "unknown option: " << key << "\n";
        sesp::usage(std::cerr);
        return 2;
      }
    } catch (...) {
      std::cerr << "bad value for " << key << "\n";
      return 2;
    }
  }
  if (mode == "record") {
    if (results.empty()) {
      std::cerr << "record needs --results=FILE\n";
      return 2;
    }
    return sesp::run_record(results, history, commit, quick);
  }
  if (mode == "check") return sesp::run_check(history, opt);
  if (mode == "self-test") return sesp::run_self_test(history);
  std::cerr << "unknown mode: " << mode << "\n";
  sesp::usage(std::cerr);
  return 2;
}
