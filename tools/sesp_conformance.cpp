// sesp_conformance — property-based conformance harness over the full
// (timing model × substrate) matrix.
//
// Generates seeded random admissible computations per cell, judges each
// against the differential oracle stack (simulator-vs-replay, naive
// reference counters, model-hierarchy containment, time-scaling and retimer
// metamorphic relations), shrinks any failure to a minimal descriptor, and
// emits replayable witness files.
//
//   sesp_conformance --quick                      # 500 cases per cell
//   sesp_conformance --deep --jobs=8              # 5000 cases per cell
//   sesp_conformance --algorithm=broken-halfslack # negative control
//   sesp_conformance --self-test                  # mutated-reference check
//   sesp_conformance --replay=witness_0.txt       # re-judge a witness
//   sesp_conformance --emit-golden=tests/golden   # regenerate corpus
//
// Exit status: 0 when every oracle was silent (or the witness reproduced /
// the self-test passed), 1 on discrepancies, 2 on usage errors, 75
// (EX_TEMPFAIL) when a supervised campaign was interrupted and can be
// resumed with --resume.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "cli_observation.hpp"
#include "cli_recovery.hpp"
#include "conformance/harness.hpp"
#include "conformance/witness.hpp"
#include "model/trace_io.hpp"
#include "recovery/journal.hpp"
#include "recovery/supervisor.hpp"

namespace sesp {
namespace {

struct Options {
  conformance::ConformanceConfig config;
  std::string replay_file;
  std::string witness_dir = ".";
  std::string emit_golden;
  bool self_test = false;
  ObservationOptions obs;
  RecoveryOptions recovery;
};

// Fingerprint of every option that shapes which cases run and how they are
// judged; --jobs, --witness-dir and the observability flags only change how
// the campaign executes or reports, not its results (docs/robustness.md).
std::uint64_t config_digest(const Options& opt) {
  std::ostringstream os;
  os << opt.config.cases_per_cell << '|' << opt.config.seed << '|'
     << opt.config.algorithm_override << '|' << opt.config.minimize << '|'
     << opt.config.max_failures << '|' << opt.self_test << '|';
  for (const TimingModel m : opt.config.models) os << to_string(m) << ',';
  os << '|';
  for (const Substrate s : opt.config.substrates)
    os << (s == Substrate::kSharedMemory ? "smm" : "mpm") << ',';
  return recovery::fnv1a(os.str());
}

void usage(std::ostream& os) {
  os << "sesp_conformance [options]\n"
        "  --quick                      500 cases per model x substrate "
        "(default)\n"
        "  --deep                       5000 cases per cell\n"
        "  --cases=N                    explicit per-cell budget\n"
        "  --seed=N                     base seed (default 1)\n"
        "  --jobs=N                     parallel workers (0 = SESP_JOBS / "
        "hardware)\n"
        "  --minimize / --no-minimize   shrink failures (default on)\n"
        "  --algorithm=NAME             override the algorithm under test\n"
        "                               (e.g. broken-halfslack, "
        "broken-toofewsteps:1)\n"
        "  --model=NAME                 restrict to one timing model\n"
        "  --substrate=smm|mpm          restrict to one substrate\n"
        "  --witness-dir=DIR            where failure witnesses go "
        "(default .)\n"
        "  --replay=FILE                re-judge a recorded witness\n"
        "  --self-test                  plant a reference bug; expect the\n"
        "                               oracles to catch and shrink it\n"
        "  --emit-golden=DIR            write one golden trace per cell\n";
  RecoveryOptions::usage(os);
  ObservationOptions::usage(os);
}

std::optional<TimingModel> parse_model(const std::string& name) {
  for (const TimingModel m : conformance::all_models())
    if (to_string(m) == name) return m;
  // Accept the short aliases the other tools use.
  if (name == "sync") return TimingModel::kSynchronous;
  if (name == "semisync") return TimingModel::kSemiSynchronous;
  if (name == "async") return TimingModel::kAsynchronous;
  return std::nullopt;
}

int replay_witness_file(const Options& opt) {
  std::ifstream in(opt.replay_file);
  if (!in) {
    std::cerr << "cannot open " << opt.replay_file << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const auto witness = conformance::parse_witness(buffer.str(), &error);
  if (!witness) {
    std::cerr << "bad witness file: " << error << "\n";
    return 2;
  }
  std::cout << "replaying: " << witness->descriptor.to_string() << "\n"
            << "recorded oracle: " << witness->oracle << "\n";
  const auto replay =
      conformance::replay_witness(*witness, opt.config.oracles);
  if (!replay.reproduced) {
    std::cout << "NOT REPRODUCED: " << replay.detail << "\n";
    return 1;
  }
  std::cout << "reproduced: [" << replay.oracle << "] " << replay.detail
            << "\n";
  return 0;
}

int emit_golden(const Options& opt) {
  for (const TimingModel model : conformance::all_models()) {
    for (const Substrate substrate : conformance::all_substrates()) {
      const std::uint64_t cell =
          static_cast<std::uint64_t>(model) * 2 +
          (substrate == Substrate::kMessagePassing ? 1 : 0);
      const conformance::CaseDescriptor c = conformance::generate_case(
          model, substrate,
          conformance::case_seed(opt.config.seed, cell, 0),
          opt.config.limits);
      const conformance::GeneratedRun run = conformance::run_case(c);
      if (!run.ok || !run.trace) {
        std::cerr << "golden generation failed for " << c.to_string() << ": "
                  << run.error << "\n";
        return 1;
      }
      const std::string stem = to_string(model) + std::string("_") +
                               (substrate == Substrate::kSharedMemory
                                    ? "smm"
                                    : "mpm");
      const std::string trace_path =
          opt.emit_golden + "/" + stem + ".trace";
      const std::string constraints_path =
          opt.emit_golden + "/" + stem + ".constraints";
      std::ofstream tout(trace_path);
      std::ofstream kout(constraints_path);
      if (!tout || !kout) {
        std::cerr << "cannot write " << trace_path << "\n";
        return 2;
      }
      tout << to_text(*run.trace);
      kout << to_text(c.constraints) << "\n";
      std::cout << "wrote " << trace_path << " ("
                << run.trace->steps().size() << " steps)\n";
    }
  }
  return 0;
}

int run_self_test(Options opt) {
  // Plant the reference off-by-one; every cell must light up, and the
  // shrunk witness must replay to the same failure under the same options.
  opt.config.oracles.mutate_reference = true;
  opt.config.cases_per_cell = std::min<std::int64_t>(
      opt.config.cases_per_cell, 25);
  opt.config.minimize = true;
  opt.config.max_failures = 2;
  const conformance::ConformanceReport report =
      conformance::run_conformance(opt.config);
  if (recovery::run_interrupted()) return 1;
  std::cout << report.summary();
  if (report.total_failures == 0) {
    std::cout << "SELF-TEST FAILED: planted reference bug went undetected\n";
    return 1;
  }
  if (report.failures.empty() || report.failures[0].witness.empty()) {
    std::cout << "SELF-TEST FAILED: no witness produced\n";
    return 1;
  }
  std::string error;
  const auto witness =
      conformance::parse_witness(report.failures[0].witness, &error);
  if (!witness) {
    std::cout << "SELF-TEST FAILED: witness does not parse: " << error
              << "\n";
    return 1;
  }
  const auto replay =
      conformance::replay_witness(*witness, opt.config.oracles);
  if (!replay.reproduced) {
    std::cout << "SELF-TEST FAILED: witness did not reproduce: "
              << replay.detail << "\n";
    return 1;
  }
  std::cout << "self-test ok: planted bug detected by ["
            << report.failures[0].oracle << "], shrunk witness replays\n";
  return 0;
}

int run(int argc, char** argv) {
  Options opt;
  opt.config.cases_per_cell = 500;
  bool explicit_model = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : arg.substr(eq + 1);
    if (opt.obs.consume(key, value)) continue;
    if (opt.recovery.consume(key, value)) continue;
    if (key == "--help" || key == "-h") {
      usage(std::cout);
      return 0;
    } else if (key == "--quick") {
      opt.config.cases_per_cell = 500;
    } else if (key == "--deep") {
      opt.config.cases_per_cell = 5000;
    } else if (key == "--cases") {
      opt.config.cases_per_cell = std::stoll(value);
    } else if (key == "--seed") {
      opt.config.seed = std::stoull(value);
    } else if (key == "--jobs") {
      opt.config.jobs = std::stoi(value);
    } else if (key == "--minimize") {
      opt.config.minimize = true;
    } else if (key == "--no-minimize") {
      opt.config.minimize = false;
    } else if (key == "--algorithm") {
      opt.config.algorithm_override = value;
    } else if (key == "--model") {
      const auto model = parse_model(value);
      if (!model) {
        std::cerr << "unknown model: " << value << "\n";
        return 2;
      }
      opt.config.models = {*model};
      explicit_model = true;
    } else if (key == "--substrate") {
      if (value == "smm")
        opt.config.substrates = {Substrate::kSharedMemory};
      else if (value == "mpm")
        opt.config.substrates = {Substrate::kMessagePassing};
      else {
        std::cerr << "unknown substrate: " << value << "\n";
        return 2;
      }
    } else if (key == "--witness-dir") {
      opt.witness_dir = value;
    } else if (key == "--replay") {
      opt.replay_file = value;
    } else if (key == "--self-test") {
      opt.self_test = true;
    } else if (key == "--emit-golden") {
      opt.emit_golden = value;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }

  // An explicit override of the algorithm under test only makes sense for
  // the substrate that implements it and the timing model it was designed
  // for; restrict both automatically unless the user narrowed them.
  if (!opt.config.algorithm_override.empty()) {
    const bool smm =
        conformance::make_smm_factory(opt.config.algorithm_override) !=
        nullptr;
    const bool mpm =
        conformance::make_mpm_factory(opt.config.algorithm_override) !=
        nullptr;
    if (!smm && !mpm) {
      std::cerr << "unknown algorithm: " << opt.config.algorithm_override
                << "\n";
      return 2;
    }
    if (smm != mpm && opt.config.substrates.size() > 1)
      opt.config.substrates = {smm ? Substrate::kSharedMemory
                                   : Substrate::kMessagePassing};
    if (!explicit_model) {
      const auto native =
          conformance::native_model(opt.config.algorithm_override);
      if (native) opt.config.models = {*native};
    }
  }

  if (!opt.recovery.shard_dir.empty())
    opt.obs.rebase_for_shard(opt.recovery.shard_dir, opt.recovery.worker_id);
  ObservationScope scope(opt.obs, "sesp_conformance");
  RecoveryScope recovery(opt.recovery, "sesp_conformance",
                         config_digest(opt), argc, argv);
  if (recovery.error()) return 2;
  if (!opt.replay_file.empty()) return replay_witness_file(opt);
  if (!opt.emit_golden.empty()) return emit_golden(opt);
  if (opt.self_test) return recovery.finish(run_self_test(opt));

  const conformance::ConformanceReport report =
      conformance::run_conformance(opt.config);
  // A drained interrupt never prints the partial report; the journal holds
  // every finished case and --resume completes the campaign.
  if (recovery::run_interrupted()) return recovery.finish(1);
  std::cout << report.summary();
  for (std::size_t i = 0; i < report.failures.size(); ++i) {
    if (report.failures[i].witness.empty()) continue;
    const std::string path =
        opt.witness_dir + "/witness_" + std::to_string(i) + ".txt";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      continue;
    }
    out << report.failures[i].witness;
    std::cout << "witness written: " << path
              << " (replay with: sesp_conformance --replay=" << path
              << ")\n";
  }
  return recovery.finish(report.ok() ? 0 : 1);
}

}  // namespace
}  // namespace sesp

int main(int argc, char** argv) { return sesp::run(argc, argv); }
