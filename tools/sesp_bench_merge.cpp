// sesp_bench_merge — aggregate the BENCH_*.json perf records the bench
// binaries write into one bench_results.json and derive the reproduction
// verdict from the structured ok / solved / admissible / upper_ok fields
// (instead of grepping bench stdout for [OK] / [FAIL]).
//
//   sesp_bench_merge --out=bench_results.json BENCH_table1_sync.json ...
//
// Exit status: 0 when every record parses, validates against sesp-bench/1
// and reports ok=true; 1 when any record fails or is malformed (mid-text
// corruption or a wrong schema — a real bug, never produced by a clean
// kill); 2 when no record files were given or one cannot be read; 3 when
// the ONLY blemish is truncated records (torn by a killed writer — skipped
// with a warning, so a bench interrupted mid-write degrades the merge
// instead of failing it). 1 beats 3: a malformed record still fails the
// merge even when truncated records were also skipped.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/bench_record.hpp"

int main(int argc, char** argv) {
  std::string out_path = "bench_results.json";
  std::vector<std::pair<std::string, std::string>> named_texts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sesp_bench_merge [--out=FILE] BENCH_*.json...\n"
                   "exit status:\n"
                   "  0  every record parsed, validated and reported ok\n"
                   "  1  a record failed validation or was malformed\n"
                   "     (corrupt mid-text or wrong schema: a real bug)\n"
                   "  2  no records given, or a file cannot be read\n"
                   "  3  only blemish was truncated records (torn by a\n"
                   "     killed writer: skipped, rerun those benches)\n";
      return 0;
    }
    std::ifstream in(arg);
    if (!in) {
      std::cerr << "cannot open " << arg << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    named_texts.emplace_back(arg, buf.str());
  }
  if (named_texts.empty()) {
    std::cerr << "no bench records given\n"
              << "usage: sesp_bench_merge [--out=FILE] BENCH_*.json...\n"
              << "(--help lists the exit-status protocol)\n";
    return 2;
  }

  const sesp::obs::BenchAggregate agg =
      sesp::obs::aggregate_bench_records(named_texts);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 2;
  }
  out << agg.results_json;

  for (const std::string& name : agg.skipped)
    std::cerr << "warning: skipped truncated record " << name << "\n";

  std::cout << "records:   " << agg.records << "\n"
            << "failed:    " << agg.failed << "\n"
            << "malformed: " << agg.malformed << "\n"
            << "truncated: " << agg.truncated << "\n";
  for (const std::string& name : agg.failures)
    std::cout << "  FAIL " << name << "\n";
  for (const std::string& name : agg.skipped)
    std::cout << "  SKIP " << name << "\n";
  std::cout << "merged into " << out_path << "\n";
  if (!agg.all_ok()) {
    std::cout << "[FAIL] some bench record failed validation\n";
    return 1;
  }
  if (agg.truncated > 0) {
    std::cout << "[WARN] all surviving records passed; "
              << agg.truncated << " truncated record(s) skipped\n";
    return 3;
  }
  std::cout << "[OK] all bench records passed\n";
  return 0;
}
