// sesp_shard — launcher and chaos harness for sharded sweeps
// (docs/robustness.md "Sharded execution").
//
// Run mode spawns N worker copies of any recovery-aware tool command,
// monitors them (restarting interrupted or killed workers), optionally
// injects one deterministic fault (SIGKILL/SIGTERM a chosen worker once
// the worker journals hold K records), merges the worker journals, and
// finally replays the merge in-process so stdout carries the canonical
// report — byte-identical to running the tool without sharding:
//
//   sesp_shard --shard-dir=DIR --workers=3 -- \
//       sesp_cli --substrate=mpm --model=semisync --s=3 --n=3
//   sesp_shard --shard-dir=DIR --workers=3 --kill-after=2 \
//       --kill-signal=KILL --kill-worker=1 -- sesp_cli ...
//
// Merge mode folds an existing shard directory without running anything:
//
//   sesp_shard merge --shard-dir=DIR [--out=FILE]
//
// Exit status: run mode exits with the final replay's status (so 0/1 mean
// what the wrapped tool means by them); 2 on usage errors or a worker
// config failure; 75 (EX_TEMPFAIL) when the launcher was interrupted —
// re-run the same command to resume. Merge mode: 0 on success, 2 on
// errors.

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "obs/trace.hpp"
#include "recovery/supervisor.hpp"
#include "shard/launch.hpp"
#include "shard/shard.hpp"

namespace sesp {
namespace {

void usage(std::ostream& os) {
  os << "usage: sesp_shard [options] -- TOOL [tool options]\n"
        "       sesp_shard merge --shard-dir=DIR [--out=FILE]\n"
        "  --shard-dir=DIR              shared shard directory (required)\n"
        "  --workers=N                  worker processes (default 2)\n"
        "  --restarts=N                 worker restart budget (default"
        " 100)\n"
        "  --kill-after=K               once the worker journals hold K\n"
        "                               records, signal one worker\n"
        "  --kill-signal=KILL|TERM      fault signal (default KILL)\n"
        "  --kill-worker=I              which worker to signal (default"
        " 0)\n"
        "  --no-replay                  skip the final merged replay\n"
        "  --out=FILE                   merge mode: merged journal path\n";
}

struct Options {
  std::string dir;
  std::string out;
  std::int32_t workers = 2;
  std::int32_t restarts = 100;
  std::int64_t kill_after = -1;
  int kill_signo = SIGKILL;
  std::int32_t kill_worker = 0;
  bool merge_only = false;
  bool replay = true;
  std::vector<std::string> command;
};

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  int i = 1;
  if (i < argc && std::string(argv[i]) == "merge") {
    opt.merge_only = true;
    ++i;
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--") {
      for (++i; i < argc; ++i) opt.command.push_back(argv[i]);
      break;
    }
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    try {
      if (key == "--shard-dir") opt.dir = value;
      else if (key == "--workers") opt.workers = std::stoi(value);
      else if (key == "--restarts") opt.restarts = std::stoi(value);
      else if (key == "--kill-after") opt.kill_after = std::stoll(value);
      else if (key == "--kill-worker") opt.kill_worker = std::stoi(value);
      else if (key == "--kill-signal") {
        if (value == "KILL") opt.kill_signo = SIGKILL;
        else if (value == "TERM") opt.kill_signo = SIGTERM;
        else {
          std::cerr << "unknown --kill-signal (want KILL or TERM)\n";
          return std::nullopt;
        }
      } else if (key == "--no-replay") opt.replay = false;
      else if (key == "--out") opt.out = value;
      else if (key == "--help" || key == "-h") {
        usage(std::cout);
        std::exit(0);
      } else {
        std::cerr << "unknown option: " << key << "\n";
        return std::nullopt;
      }
    } catch (...) {
      std::cerr << "bad value for " << key << "\n";
      return std::nullopt;
    }
  }
  if (opt.dir.empty()) {
    std::cerr << "--shard-dir is required\n";
    return std::nullopt;
  }
  if (!opt.merge_only && opt.command.empty()) {
    std::cerr << "no tool command (everything after --)\n";
    return std::nullopt;
  }
  return opt;
}

int run_merge(const Options& opt) {
  const shard::MergeStats merge = shard::merge_shard_dir(opt.dir, opt.out);
  if (!merge.ok) {
    std::cerr << "merge failed: " << merge.error << "\n";
    return 2;
  }
  std::cout << "merged " << merge.records << " record(s) from "
            << merge.workers << " worker journal(s) into " << merge.out_path
            << "\n"
            << "duplicates: " << merge.duplicates
            << "  ranges done: " << merge.ranges_done
            << "  lease events: " << merge.lease_events
            << "  torn dropped: " << merge.torn_dropped << "\n";
  return 0;
}

// Writes the launcher's own trace lane — the worker lifecycle timeline
// (spawn/kill/restart/exit instants, wall-clock stamped by run_workers)
// plus the merge summary — so sesp_trace_merge can fold it alongside the
// per-worker traces. Best-effort: a failed write only warns on stderr.
void write_coordinator_trace(const Options& opt, const obs::TraceSink& sink) {
  const std::string path = opt.dir + "/coordinator.trace.jsonl";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "sesp_shard: cannot write " << path << "\n";
    return;
  }
  sink.write_jsonl(out);
}

int run(const Options& opt) {
  std::string error;
  if (!shard::ensure_shard_dir(opt.dir, &error)) {
    std::cerr << error << "\n";
    return 2;
  }
  obs::TraceSink sink;

  // Workers get the tool command plus the shard flags; run_workers
  // appends each one's --worker-id. The manifest is created by whichever
  // worker arrives first (they all agree on tool + config digest).
  std::vector<std::string> command = opt.command;
  command.push_back("--shard-dir=" + opt.dir);

  shard::LaunchOptions lopt;
  lopt.dir = opt.dir;
  lopt.workers = opt.workers;
  lopt.max_restarts = opt.restarts;
  if (opt.kill_after >= 0) {
    lopt.kill.after_records = opt.kill_after;
    lopt.kill.signo = opt.kill_signo;
    lopt.kill.worker = opt.kill_worker;
  }
  std::cerr << "sesp_shard: spawning " << opt.workers << " worker(s) in "
            << opt.dir << "\n";
  const shard::LaunchResult launch = shard::run_workers(command, lopt);
  for (const shard::LaunchEvent& ev : launch.events)
    sink.instant_at(sink.ns_for_unix_ms(ev.unix_ms),
                    "shard.worker." + ev.kind, "shard",
                    obs::args_object({obs::arg_int("worker", ev.worker)}));
  if (!launch.ok) {
    write_coordinator_trace(opt, sink);
    std::cerr << launch.error << "\n";
    return 2;
  }
  if (launch.interrupted) {
    write_coordinator_trace(opt, sink);
    std::cerr << "sesp_shard: interrupted; re-run the same command to "
                 "resume\n";
    return recovery::kExitInterrupted;
  }
  std::cerr << "sesp_shard: workers done (" << launch.restarts
            << " restart(s), " << launch.kills << " fault(s) injected";
  if (launch.abandoned > 0)
    std::cerr << ", " << launch.abandoned << " abandoned";
  std::cerr << ")\n";

  const shard::MergeStats merge = shard::merge_shard_dir(opt.dir, opt.out);
  if (!merge.ok) {
    write_coordinator_trace(opt, sink);
    std::cerr << "merge failed: " << merge.error << "\n";
    return 2;
  }
  sink.instant("shard.merge", "shard",
               obs::args_object(
                   {obs::arg_int("workers", merge.workers),
                    obs::arg_int("records", merge.records),
                    obs::arg_int("duplicates", merge.duplicates)}));
  write_coordinator_trace(opt, sink);
  std::cerr << "sesp_shard: merged " << merge.records << " record(s) into "
            << merge.out_path << "\n";
  if (!opt.replay) return 0;

  // Final replay: the tool command again, resuming from the merged
  // journal, with our stdout — this prints the canonical report and its
  // exit status is the run's verdict.
  std::vector<std::string> replay = opt.command;
  replay.push_back("--resume=" + merge.out_path);
  std::vector<char*> argv;
  argv.reserve(replay.size() + 1);
  for (std::string& a : replay) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(argv[0], argv.data());
  // execv only returns on failure; try PATH resolution as a fallback.
  ::execvp(argv[0], argv.data());
  std::cerr << "cannot exec " << replay[0] << "\n";
  return 2;
}

}  // namespace
}  // namespace sesp

int main(int argc, char** argv) {
  const auto opt = sesp::parse(argc, argv);
  if (!opt) {
    sesp::usage(std::cerr);
    return 2;
  }
  if (opt->merge_only) return sesp::run_merge(*opt);
  return sesp::run(*opt);
}
