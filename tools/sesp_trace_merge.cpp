// sesp_trace_merge — folds the per-process trace files of a sharded sweep
// into one Chrome trace-event JSON document (docs/observability.md "Trace
// aggregation").
//
//   sesp_trace_merge --shard-dir=DIR [--out=FILE]
//
// Reads DIR/coordinator.trace.jsonl plus every DIR/worker-K.trace.jsonl.
// Each file is the JSONL stream TraceSink::write_jsonl emits: a leading
// "ph":"M" trace.meta line whose args.epoch_unix_us anchors that file's
// ts=0 to wall-clock time, then one event per line with microsecond
// steady-clock timestamps. The merge rebases every timestamp onto the
// earliest epoch across the inputs and assigns one pid lane per process
// (coordinator = 1, worker K = 2 + K), emitting process_name metadata so
// chrome://tracing / Perfetto label the lanes. Event payloads travel
// through parse_json + write_json_value, so unknown fields survive.
//
// Output (default DIR/merged_trace.json): {"traceEvents":[...]} — the
// trace-viewer object form.
//
// Exit status: 0 on success (malformed lines are skipped with a stderr
// count), 2 when no trace file could be read or the output cannot be
// written.

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace sesp {
namespace {

struct TraceFile {
  std::string path;
  std::string label;         // "coordinator" | "worker-K"
  std::int64_t pid = 1;      // merged lane
  std::int64_t epoch_unix_us = 0;
  bool have_epoch = false;
  std::vector<obs::JsonValue> events;  // non-meta lines, parsed
};

void usage(std::ostream& os) {
  os << "usage: sesp_trace_merge --shard-dir=DIR [--out=FILE]\n"
        "  --shard-dir=DIR              shard directory holding the\n"
        "                               *.trace.jsonl files (required)\n"
        "  --out=FILE                   merged trace path (default\n"
        "                               DIR/merged_trace.json)\n";
}

// Loads one JSONL trace file; returns false when the file cannot be
// opened. Malformed lines are counted into *skipped and dropped.
bool load_trace_file(const std::string& path, const std::string& label,
                     std::int64_t pid, std::int64_t* skipped,
                     std::vector<TraceFile>* out) {
  std::ifstream in(path);
  if (!in) return false;
  TraceFile file;
  file.path = path;
  file.label = label;
  file.pid = pid;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string error;
    std::optional<obs::JsonValue> v = obs::parse_json(line, &error);
    if (!v || !v->is_object()) {
      ++*skipped;
      continue;
    }
    const obs::JsonValue* ph = v->find("ph");
    const obs::JsonValue* name = v->find("name");
    if (ph && ph->is_string() && ph->string == "M" && name &&
        name->is_string() && name->string == "trace.meta") {
      const obs::JsonValue* args = v->find("args");
      const obs::JsonValue* epoch =
          args ? args->find("epoch_unix_us") : nullptr;
      if (epoch && epoch->is_number()) {
        file.epoch_unix_us = epoch->as_int64();
        file.have_epoch = true;
      }
      continue;
    }
    file.events.push_back(std::move(*v));
  }
  out->push_back(std::move(file));
  return true;
}

int run(const std::string& dir, std::string out_path) {
  if (out_path.empty()) out_path = dir + "/merged_trace.json";

  std::int64_t skipped = 0;
  std::vector<TraceFile> files;
  load_trace_file(dir + "/coordinator.trace.jsonl", "coordinator", 1,
                  &skipped, &files);
  for (std::int32_t k = 0; k < 4096; ++k) {
    const std::string path =
        dir + "/worker-" + std::to_string(k) + ".trace.jsonl";
    if (!load_trace_file(path, "worker-" + std::to_string(k), 2 + k,
                         &skipped, &files)) {
      // Worker trace files are contiguous (worker ids count up from 0);
      // the first gap ends the scan.
      break;
    }
  }
  if (files.empty()) {
    std::cerr << "no trace files found in " << dir << "\n";
    return 2;
  }

  // Global origin: the earliest wall-clock epoch among the inputs. Files
  // without a trace.meta line (foreign or hand-made) stay unshifted.
  std::int64_t origin = 0;
  bool have_origin = false;
  for (const TraceFile& f : files)
    if (f.have_epoch && (!have_origin || f.epoch_unix_us < origin)) {
      origin = f.epoch_unix_us;
      have_origin = true;
    }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 2;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  std::int64_t total = 0;
  for (TraceFile& f : files) {
    // Lane label so the viewer shows "coordinator" / "worker-K" rows.
    w.begin_object();
    w.field("name", "process_name");
    w.field("ph", "M");
    w.field("pid", f.pid);
    w.field("tid", static_cast<std::int64_t>(1));
    w.key("args");
    w.begin_object();
    w.field("name", f.label);
    w.end_object();
    w.end_object();

    const double shift_us =
        f.have_epoch && have_origin
            ? static_cast<double>(f.epoch_unix_us - origin)
            : 0.0;
    for (obs::JsonValue& ev : f.events) {
      for (auto& member : ev.object) {
        if (member.first == "ts" && member.second.is_number())
          member.second.number += shift_us;
        else if (member.first == "pid" && member.second.is_number())
          member.second.number = static_cast<double>(f.pid);
      }
      obs::write_json_value(w, ev);
      ++total;
    }
  }
  w.end_array();
  w.end_object();
  out << "\n";

  std::cerr << "sesp_trace_merge: " << total << " event(s) from "
            << files.size() << " trace file(s) into " << out_path;
  if (skipped > 0) std::cerr << " (" << skipped << " malformed line(s) "
                             << "skipped)";
  std::cerr << "\n";
  return 0;
}

}  // namespace
}  // namespace sesp

int main(int argc, char** argv) {
  std::string dir;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "--shard-dir") dir = value;
    else if (key == "--out") out = value;
    else if (key == "--help" || key == "-h") {
      sesp::usage(std::cout);
      return 0;
    } else {
      std::cerr << "unknown option: " << key << "\n";
      sesp::usage(std::cerr);
      return 2;
    }
  }
  if (dir.empty()) {
    std::cerr << "--shard-dir is required\n";
    sesp::usage(std::cerr);
    return 2;
  }
  return sesp::run(dir, out);
}
