// sesp_attack — run the executable lower-bound constructions against an
// algorithm and, when a violation is certified, write the certificate to a
// file that `sesp_cli --check-certificate=...` (or any third party
// reimplementing the checker) can re-validate.
//
//   sesp_attack --construction=semisync-sm --alg=too-few-steps:2
//       --s=4 --n=8 --c1=1 --c2=12 --out=cert.txt
//   sesp_attack --construction=sporadic-mp --alg=too-few-steps:8
//       --s=4 --n=3 --c1=1 --d1=2 --d2=42 --out=cert.txt
//   sesp_attack --construction=async-sm --alg=too-few-steps:2 --s=4 --n=8
//   sesp_attack --construction=semisync-mp --alg=asp --s=3 --n=3
//       --c1=1 --c2=24 --d2=48            (correct algorithm: no certificate)
//
// Exit status: 0 certificate produced (or correct algorithm survived with
// --expect-survive), 1 no certificate, 2 usage error, 75 (EX_TEMPFAIL) when
// a supervised run was interrupted and can be resumed with --resume.

#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "adversary/certificate.hpp"
#include "adversary/semisync_mp_retimer.hpp"
#include "adversary/semisync_retimer.hpp"
#include "adversary/sporadic_retimer.hpp"
#include "algorithms/mpm/broken_algs.hpp"
#include "exec/jobs.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/smm/async_alg.hpp"
#include "algorithms/smm/broken_algs.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "cli_observation.hpp"
#include "cli_recovery.hpp"
#include "model/trace_io.hpp"
#include "recovery/payload.hpp"
#include "recovery/supervisor.hpp"

namespace sesp {
namespace {

struct Options {
  std::string construction = "semisync-sm";
  std::string alg = "too-few-steps:2";
  std::string out;
  ProblemSpec spec{4, 8, 2};
  Ratio c1 = 1, c2 = 12, d1 = 0, d2 = 24;
  bool expect_survive = false;
  ObservationOptions obs;
  RecoveryOptions recovery;
};

// Fingerprint of every option that shapes the attack result; --out,
// --expect-survive, --jobs and the observability flags only change how the
// result is reported, not what it is (docs/robustness.md).
std::uint64_t config_digest(const Options& opt) {
  std::ostringstream os;
  os << opt.construction << '|' << opt.alg << '|' << opt.spec.s << '|'
     << opt.spec.n << '|' << opt.spec.b << '|' << ratio_to_text(opt.c1)
     << '|' << ratio_to_text(opt.c2) << '|' << ratio_to_text(opt.d1) << '|'
     << ratio_to_text(opt.d2);
  return recovery::fnv1a(os.str());
}

void usage(std::ostream& os) {
  os << "usage: sesp_attack [options]\n"
        "  --construction=semisync-sm|async-sm|sporadic-mp|semisync-mp\n"
        "  --alg=too-few-steps:K | half-slack | asp | impatient-asp |\n"
        "        step-count | rounds      (availability depends on substrate)\n"
        "  --s=N --n=N --b=N --c1=R --c2=R --d1=R --d2=R\n"
        "  --out=FILE                   write the certificate here\n"
        "  --expect-survive             exit 0 when NO certificate is found\n"
        "  --jobs=N                     sweep worker threads (default:\n"
        "                               SESP_JOBS, then hardware)\n";
  RecoveryOptions::usage(os);
  ObservationOptions::usage(os);
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (opt.obs.consume(key, value)) continue;
    if (opt.recovery.consume(key, value)) continue;
    if (key == "--construction") opt.construction = value;
    else if (key == "--alg") opt.alg = value;
    else if (key == "--out") opt.out = value;
    else if (key == "--s") opt.spec.s = std::stoll(value);
    else if (key == "--n") opt.spec.n = std::stoi(value);
    else if (key == "--b") opt.spec.b = std::stoi(value);
    else if (key == "--expect-survive") opt.expect_survive = true;
    else if (key == "--jobs") {
      const int jobs = std::stoi(value);
      if (jobs < 1) {
        std::cerr << "--jobs must be >= 1\n";
        return std::nullopt;
      }
      exec::set_default_jobs(jobs);
    }
    else if (key == "--c1" || key == "--c2" || key == "--d1" ||
             key == "--d2") {
      const auto r = ratio_from_text(value);
      if (!r) return std::nullopt;
      if (key == "--c1") opt.c1 = *r;
      if (key == "--c2") opt.c2 = *r;
      if (key == "--d1") opt.d1 = *r;
      if (key == "--d2") opt.d2 = *r;
    } else if (key == "--help" || key == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << key << "\n";
      return std::nullopt;
    }
  }
  return opt;
}

std::int64_t alg_param(const std::string& alg) {
  const std::size_t colon = alg.find(':');
  return colon == std::string::npos ? 2 : std::stoll(alg.substr(colon + 1));
}

// Everything the tool reports about one attack, in journal-codec form: the
// certificate travels as its textual encoding so a resumed run can rewrite
// --out without re-running the construction.
struct AttackOutcome {
  bool certified = false;
  std::string summary;
  std::string cert_text;
};

std::string encode_outcome(const AttackOutcome& o) {
  recovery::PayloadWriter w;
  w.put_bool("certified", o.certified);
  w.put("summary", o.summary);
  if (!o.cert_text.empty()) w.put("certificate", o.cert_text);
  return w.str();
}

AttackOutcome decode_outcome(const std::string& payload) {
  AttackOutcome o;
  if (const auto failure = recovery::decode_task_failure(payload)) {
    o.summary = failure->to_string();
    return o;
  }
  const recovery::PayloadReader r(payload);
  o.certified = r.get_bool("certified", false);
  o.summary = r.get("summary");
  o.cert_text = r.get("certificate");
  return o;
}

// Runs the whole construction as a single supervised slot: a journaled run
// resumes straight to the decoded outcome, and a deadline or exception
// becomes a certified=false outcome instead of a process abort.
AttackOutcome run_supervised_attack(
    const std::function<AttackOutcome()>& attack) {
  AttackOutcome outcome;
  recovery::supervised_sweep(
      "attack", 1,
      [&](std::size_t) { return encode_outcome(attack()); },
      [&](std::size_t, const std::string& payload) {
        outcome = decode_outcome(payload);
      });
  return outcome;
}

int finish(const Options& opt, const AttackOutcome& outcome) {
  std::cout << outcome.summary << "\n";
  if (outcome.certified && !outcome.cert_text.empty() && !opt.out.empty()) {
    std::ofstream out(opt.out);
    out << outcome.cert_text;
    std::cout << "certificate written to " << opt.out << "\n";
  }
  if (opt.expect_survive) return outcome.certified ? 1 : 0;
  return outcome.certified ? 0 : 1;
}

int attack_smm(const Options& opt, bool async_mode) {
  std::unique_ptr<SmmAlgorithmFactory> factory;
  if (opt.alg.rfind("too-few-steps", 0) == 0)
    factory = std::make_unique<TooFewStepsSmmFactory>(alg_param(opt.alg));
  else if (opt.alg == "half-slack")
    factory = std::make_unique<HalfSlackSmmFactory>();
  else if (opt.alg == "step-count")
    factory = std::make_unique<SemiSyncSmmFactory>(
        SmmSemiSyncStrategy::kStepCount);
  else if (opt.alg == "rounds")
    factory = std::make_unique<AsyncSmmFactory>();
  else {
    std::cerr << "unknown SM algorithm '" << opt.alg << "'\n";
    return 2;
  }

  const auto constraints =
      async_mode ? async_attack_constraints(opt.spec)
                 : TimingConstraints::semi_synchronous(opt.c1, opt.c2);
  const AttackOutcome outcome = run_supervised_attack([&] {
    const SemiSyncRetimingResult result =
        async_mode ? attack_async_smm(opt.spec, *factory)
                   : attack_semisync_smm(opt.spec, constraints, *factory);
    AttackOutcome o;
    o.summary = result.to_string();
    if (result.certificate) {
      o.certified = true;
      o.cert_text = to_text(make_certificate(
          result, factory->name(), opt.spec,
          async_mode ? TimingConstraints::asynchronous() : constraints));
    }
    return o;
  });
  if (recovery::run_interrupted()) return 1;
  return finish(opt, outcome);
}

int attack_mpm(const Options& opt, bool semisync_mode) {
  std::unique_ptr<MpmAlgorithmFactory> factory;
  if (opt.alg.rfind("too-few-steps", 0) == 0)
    factory = std::make_unique<TooFewStepsMpmFactory>(alg_param(opt.alg));
  else if (opt.alg == "half-slack")
    factory = std::make_unique<HalfSlackMpmFactory>();
  else if (opt.alg == "asp")
    factory = std::make_unique<SporadicMpmFactory>();
  else if (opt.alg == "impatient-asp")
    factory = std::make_unique<ImpatientSporadicMpmFactory>();
  else if (opt.alg == "step-count" || opt.alg == "rounds")
    factory = std::make_unique<SemiSyncMpmFactory>(
        opt.alg == "step-count" ? SemiSyncStrategy::kStepCount
                                : SemiSyncStrategy::kCommunicate);
  else {
    std::cerr << "unknown MP algorithm '" << opt.alg << "'\n";
    return 2;
  }

  const auto constraints =
      semisync_mode
          ? TimingConstraints::semi_synchronous(opt.c1, opt.c2, opt.d2)
          : TimingConstraints::sporadic(opt.c1, opt.d1, opt.d2);
  const AttackOutcome outcome = run_supervised_attack([&] {
    const SporadicRetimingResult result =
        semisync_mode ? attack_semisync_mpm(opt.spec, constraints, *factory)
                      : attack_sporadic_mpm(opt.spec, constraints, *factory);
    AttackOutcome o;
    o.summary = result.to_string();
    if (result.certificate) {
      o.certified = true;
      o.cert_text = to_text(
          make_certificate(result, factory->name(), opt.spec, constraints));
    }
    return o;
  });
  if (recovery::run_interrupted()) return 1;
  return finish(opt, outcome);
}

}  // namespace
}  // namespace sesp

int main(int argc, char** argv) {
  const auto opt = sesp::parse(argc, argv);
  if (!opt) {
    sesp::usage(std::cerr);
    return 2;
  }
  // Retimers and verifier report through the default observer; outputs are
  // emitted when the scope closes. Shard participants reroute file outputs
  // into the shard directory so workers never collide on one path.
  sesp::ObservationOptions obs_opt = opt->obs;
  if (!opt->recovery.shard_dir.empty())
    obs_opt.rebase_for_shard(opt->recovery.shard_dir,
                             opt->recovery.worker_id);
  sesp::ObservationScope observation(obs_opt, "sesp_attack");
  sesp::RecoveryScope recovery(opt->recovery, "sesp_attack",
                               sesp::config_digest(*opt), argc, argv);
  if (recovery.error()) return 2;
  std::cout << "construction: " << opt->construction
            << "  target: " << opt->alg << "  instance: s=" << opt->spec.s
            << " n=" << opt->spec.n << " b=" << opt->spec.b << "\n";
  int status = 2;
  if (opt->construction == "semisync-sm")
    status = sesp::attack_smm(*opt, false);
  else if (opt->construction == "async-sm")
    status = sesp::attack_smm(*opt, true);
  else if (opt->construction == "sporadic-mp")
    status = sesp::attack_mpm(*opt, false);
  else if (opt->construction == "semisync-mp")
    status = sesp::attack_mpm(*opt, true);
  else {
    std::cerr << "unknown construction\n";
    return 2;
  }
  return recovery.finish(status);
}
