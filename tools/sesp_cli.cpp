// sesp_cli — command-line driver for the session-problem laboratory.
//
// Runs any (substrate, timing model, algorithm, adversary) combination,
// verifies the resulting timed computation, compares against the Table 1
// bounds, and optionally dumps the trace in the sesp-trace format.
//
//   sesp_cli --substrate=mpm --model=sporadic --s=5 --n=4 <continued>
//     --c1=1 --d1=2 --d2=10 --adversary=worst
//   sesp_cli --substrate=smm --model=periodic --s=4 --n=9 --b=3
//   sesp_cli --substrate=p2p --model=async --topology=ring --s=3 --n=8
//   sesp_cli --check-certificate=cert.txt
//   sesp_cli --journal-inspect=run.journal [--json]
//
// Exit status: 0 when the run solves the instance (or the certificate is
// valid), 1 otherwise, 2 on usage errors, 75 (EX_TEMPFAIL) when a
// supervised run was interrupted and can be resumed with --resume.

#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/certificate.hpp"
#include "adversary/delay_strategies.hpp"
#include "exec/jobs.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/async_alg.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/mpm/sync_alg.hpp"
#include "algorithms/p2p/knowledge_algs.hpp"
#include "algorithms/smm/async_alg.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "algorithms/smm/sync_alg.hpp"
#include "analysis/bounds.hpp"
#include "analysis/session_stats.hpp"
#include "analysis/timeline.hpp"
#include "model/trace_io.hpp"
#include "p2p/p2p_simulator.hpp"
#include "obs/json.hpp"
#include "shard/lease.hpp"
#include "sim/experiment.hpp"
#include "cli_observation.hpp"
#include "cli_recovery.hpp"

namespace sesp {
namespace {

struct Options {
  std::string substrate = "mpm";
  std::string model = "semisync";
  std::string adversary = "worst";
  std::string topology = "complete";
  std::string faults;
  std::string dump_trace;
  std::string check_certificate;
  std::string journal_inspect;
  bool inspect_json = false;
  bool degradation = false;
  ProblemSpec spec{3, 3, 2};
  Ratio c1 = 1, c2 = 2, d1 = 0, d2 = 4;
  std::uint64_t seed = 1992;
  bool print_trace = false;
  bool timeline = false;
  bool stats = false;
  bool show_bounds = true;
  ObservationOptions obs;
  RecoveryOptions recovery;
};

// Fingerprint of every result-affecting option: the checkpoint journal must
// only replay into the identical sweep. --jobs and the output/observability
// flags are deliberately excluded — resuming at a different job count (or
// with different reporting) is supported and bit-identical.
std::uint64_t config_digest(const Options& opt) {
  std::string c = opt.substrate + '|' + opt.model + '|' + opt.adversary +
                  '|' + opt.topology + '|' + opt.faults + '|' +
                  (opt.degradation ? "degradation" : "single") + '|' +
                  std::to_string(opt.spec.s) + '|' +
                  std::to_string(opt.spec.n) + '|' +
                  std::to_string(opt.spec.b) + '|' + ratio_to_text(opt.c1) +
                  '|' + ratio_to_text(opt.c2) + '|' + ratio_to_text(opt.d1) +
                  '|' + ratio_to_text(opt.d2) + '|' +
                  std::to_string(opt.seed);
  return recovery::fnv1a(c);
}

void usage(std::ostream& os) {
  os << "usage: sesp_cli [options]\n"
        "  --substrate=mpm|smm|p2p      communication substrate\n"
        "  --model=sync|periodic|semisync|sporadic|async\n"
        "  --s=N --n=N --b=N            problem instance\n"
        "  --c1=R --c2=R --d1=R --d2=R  timing constants (rationals: 7/2)\n"
        "  --adversary=worst|lockstep|random  schedule family\n"
        "  --topology=complete|ring|line|star|tree|grid  (p2p only)\n"
        "  --faults=SPEC|random         inject faults (single run); SPEC is a\n"
        "                               comma list: crash:P@K timing:P@K*S\n"
        "                               drop:N%|#ID dup:N%|#ID delay:N%\n"
        "                               extra:R corrupt:N%|@K seed:N\n"
        "  --degradation                crash x loss/corruption grid report\n"
        "  --seed=N                     adversary randomness\n"
        "  --jobs=N                     sweep worker threads (default:\n"
        "                               SESP_JOBS, then hardware)\n"
        "  --print-trace                show the timed computation\n"
        "  --timeline                   render an ASCII timeline\n"
        "  --stats                      per-session statistics\n"
        "  --dump-trace=FILE            write sesp-trace format\n"
        "  --check-certificate=FILE     re-validate a violation certificate\n"
        "  --journal-inspect=FILE       describe a run journal (records,\n"
        "                               config digest, torn tail, leases);\n"
        "                               bare --json for machine output\n";
  ObservationOptions::usage(os);
  RecoveryOptions::usage(os);
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    auto ratio = [&value]() { return ratio_from_text(value); };
    // Bare --json (no =FILE) selects --journal-inspect's machine output;
    // intercepted before the observability flags, which only define
    // --json=FILE.
    if (key == "--json" && eq == std::string::npos) {
      opt.inspect_json = true;
      continue;
    }
    if (opt.obs.consume(key, value)) continue;
    if (opt.recovery.consume(key, value)) continue;
    if (key == "--journal-inspect") opt.journal_inspect = value;
    else if (key == "--substrate") opt.substrate = value;
    else if (key == "--model") opt.model = value;
    else if (key == "--adversary") opt.adversary = value;
    else if (key == "--topology") opt.topology = value;
    else if (key == "--faults") opt.faults = value;
    else if (key == "--degradation") opt.degradation = true;
    else if (key == "--dump-trace") opt.dump_trace = value;
    else if (key == "--check-certificate") opt.check_certificate = value;
    else if (key == "--s") opt.spec.s = std::stoll(value);
    else if (key == "--n") opt.spec.n = std::stoi(value);
    else if (key == "--b") opt.spec.b = std::stoi(value);
    else if (key == "--seed") opt.seed = std::stoull(value);
    else if (key == "--jobs") {
      const int jobs = std::stoi(value);
      if (jobs < 1) {
        std::cerr << "--jobs must be >= 1\n";
        return std::nullopt;
      }
      exec::set_default_jobs(jobs);
    }
    else if (key == "--print-trace") opt.print_trace = true;
    else if (key == "--timeline") opt.timeline = true;
    else if (key == "--stats") opt.stats = true;
    else if (key == "--c1" || key == "--c2" || key == "--d1" ||
             key == "--d2") {
      const auto r = ratio();
      if (!r) {
        std::cerr << "bad rational for " << key << "\n";
        return std::nullopt;
      }
      if (key == "--c1") opt.c1 = *r;
      if (key == "--c2") opt.c2 = *r;
      if (key == "--d1") opt.d1 = *r;
      if (key == "--d2") opt.d2 = *r;
    } else if (key == "--help" || key == "-h") {
      usage(std::cout);
      std::exit(0);
    } else {
      std::cerr << "unknown option: " << key << "\n";
      return std::nullopt;
    }
  }
  if (opt.inspect_json && opt.journal_inspect.empty()) {
    std::cerr << "bare --json requires --journal-inspect "
                 "(use --json=FILE for run metrics)\n";
    return std::nullopt;
  }
  return opt;
}

TimingConstraints build_constraints(const Options& opt,
                                    std::int32_t total_processes) {
  if (opt.model == "sync") return TimingConstraints::synchronous(opt.c2, opt.d2);
  if (opt.model == "periodic") {
    // Heterogeneous periods: process i gets c1 + (c2-c1)*i/(total-1).
    std::vector<Duration> periods;
    for (std::int32_t i = 0; i < total_processes; ++i) {
      const Ratio frac = total_processes > 1
                             ? Ratio(i, std::max(total_processes - 1, 1))
                             : Ratio(0);
      periods.push_back(opt.c1 + (opt.c2 - opt.c1) * frac);
    }
    return TimingConstraints::periodic(periods, opt.d2);
  }
  if (opt.model == "semisync")
    return TimingConstraints::semi_synchronous(opt.c1, opt.c2, opt.d2);
  if (opt.model == "sporadic")
    return TimingConstraints::sporadic(opt.c1, opt.d1, opt.d2);
  return TimingConstraints::asynchronous(opt.c2, opt.d2);
}

// Builds the fault injector requested by --faults ("random" draws a seeded
// chaos plan; anything else goes through FaultPlan::parse). Sets *status to 2
// and returns nullptr on a malformed spec; returns nullptr with *status
// untouched when no faults were requested.
std::unique_ptr<FaultInjector> make_injector(const Options& opt,
                                             std::int32_t num_processes,
                                             int* status) {
  if (opt.faults.empty()) return nullptr;
  FaultPlan plan;
  if (opt.faults == "random") {
    plan = FaultPlan::random(opt.seed, num_processes);
  } else {
    std::string error;
    const auto parsed = FaultPlan::parse(opt.faults, &error);
    if (!parsed) {
      std::cerr << "bad --faults: " << error << "\n";
      *status = 2;
      return nullptr;
    }
    plan = *parsed;
  }
  std::cout << "faults:      " << plan.to_string() << "\n";
  return std::make_unique<FaultInjector>(plan);
}

// Per-run classification line shown whenever faults were injected: the
// outcome bucket, the injected-event count, and the one-line diagnostic.
int print_fault_outcome(const FaultInjector& inj,
                        const std::optional<SimError>& error, const Verdict& v,
                        const ProblemSpec& spec) {
  const RunOutcome outcome = classify_outcome(error, v);
  std::cout << "injected:    " << inj.log().size() << "\n"
            << "outcome:     " << to_string(outcome) << "  ["
            << outcome_diagnostic(error, v, spec) << "]\n";
  return outcome == RunOutcome::kSolved ? 0 : 1;
}

void print_verdict(const Verdict& v, const ProblemSpec& spec) {
  std::cout << "sessions:    " << v.sessions << " (need " << spec.s << ")\n"
            << "admissible:  " << (v.admissible ? "yes" : "no");
  if (!v.admissible) std::cout << "  [" << v.admissibility_violation << "]";
  std::cout << "\nsolves:      " << (v.solves ? "yes" : "no") << "\n";
  if (v.termination_time)
    std::cout << "termination: " << v.termination_time->to_string() << "\n";
  std::cout << "rounds:      " << v.rounds.rounds_ceiling() << "\n";
  if (v.gamma) std::cout << "gamma:       " << v.gamma->to_string() << "\n";
}

void maybe_dump(const Options& opt, const TimedComputation& trace) {
  if (opt.print_trace) std::cout << trace.to_string(100);
  if (opt.timeline) std::cout << '\n' << render_timeline(trace);
  if (opt.stats)
    std::cout << "stats:       " << compute_session_stats(trace).to_string()
              << "\n";
  if (!opt.dump_trace.empty()) {
    std::ofstream out(opt.dump_trace);
    out << to_text(trace);
    std::cout << "trace written to " << opt.dump_trace << "\n";
  }
}

// --journal-inspect: a read-only description of a sesp-journal/1 file —
// record counts per stage, failure payloads, torn-tail status, and the
// lease events of sharded runs with their current state (the first thing
// to look at when a shard appears stuck). Exit 0 on a readable journal,
// 2 otherwise.
int run_journal_inspect(const Options& opt) {
  const recovery::JournalSnapshot snap =
      recovery::read_journal_snapshot(opt.journal_inspect);
  if (!snap.ok) {
    std::cerr << snap.error << "\n";
    return 2;
  }

  // Per-stage rollup in first-appearance order; failures are slots whose
  // payload is an encoded TaskFailure.
  struct StageStats {
    std::int64_t slots = 0;
    std::int64_t failures = 0;
  };
  std::vector<std::pair<std::string, StageStats>> stages;
  for (const recovery::JournalRecord& r : snap.records) {
    auto it = stages.begin();
    for (; it != stages.end(); ++it)
      if (it->first == r.stage) break;
    if (it == stages.end()) {
      stages.emplace_back(r.stage, StageStats{});
      it = stages.end() - 1;
    }
    ++it->second.slots;
    if (recovery::decode_task_failure(r.payload)) ++it->second.failures;
  }

  const std::int64_t now = shard::unix_ms_now();
  const auto lease_state = [now](const recovery::LeaseRecord& lease) {
    if (lease.event == "done") return std::string("done");
    if (lease.deadline_ms >= now)
      return "active (" + std::to_string(lease.deadline_ms - now) +
             " ms left)";
    return std::string("expired");
  };

  if (opt.inspect_json) {
    obs::JsonWriter w(std::cout);
    w.begin_object();
    w.field("schema", "sesp-journal-inspect/1");
    w.field("path", opt.journal_inspect);
    w.field("tool", snap.tool);
    w.field("config", recovery::fnv1a_hex(snap.config_digest));
    w.field("records", static_cast<std::int64_t>(snap.records.size()));
    w.field("torn_dropped", snap.dropped);
    w.key("stages");
    w.begin_array();
    for (const auto& [stage, stats] : stages) {
      w.begin_object();
      w.field("stage", stage);
      w.field("slots", stats.slots);
      w.field("failures", stats.failures);
      w.end_object();
    }
    w.end_array();
    w.key("leases");
    w.begin_array();
    for (const recovery::LeaseRecord& lease : snap.leases) {
      w.begin_object();
      w.field("worker", static_cast<std::int64_t>(lease.worker));
      w.field("stage", lease.stage);
      w.field("lo", static_cast<std::int64_t>(lease.lo));
      w.field("len", static_cast<std::int64_t>(lease.len));
      w.field("deadline_ms", lease.deadline_ms);
      w.field("event", lease.event);
      w.field("state", lease_state(lease));
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::cout << "\n";
    return 0;
  }

  std::cout << "journal:     " << opt.journal_inspect << "\n"
            << "tool:        " << snap.tool << "\n"
            << "config:      " << recovery::fnv1a_hex(snap.config_digest)
            << "\n"
            << "records:     " << snap.records.size() << " slot(s) across "
            << stages.size() << " stage(s)\n";
  for (const auto& [stage, stats] : stages) {
    std::cout << "  " << stage << ": " << stats.slots << " slot(s)";
    if (stats.failures > 0)
      std::cout << ", " << stats.failures << " failure(s)";
    std::cout << "\n";
  }
  std::cout << "torn tail:   "
            << (snap.dropped > 0
                    ? std::to_string(snap.dropped) + " record(s) dropped"
                    : std::string("none"))
            << "\n"
            << "leases:      " << snap.leases.size() << " event(s)\n";
  for (const recovery::LeaseRecord& lease : snap.leases)
    std::cout << "  worker " << lease.worker << "  " << lease.stage << "  ["
              << lease.lo << "," << (lease.lo + lease.len) << ")  "
              << lease.event << "  " << lease_state(lease) << "\n";
  return 0;
}

int run_certificate_check(const Options& opt) {
  std::ifstream in(opt.check_certificate);
  if (!in) {
    std::cerr << "cannot open " << opt.check_certificate << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto cert = certificate_from_text(buf.str(), &error);
  if (!cert) {
    std::cerr << "parse error: " << error << "\n";
    return 2;
  }
  const CertificateCheck check = check_certificate(*cert);
  std::cout << "construction: " << cert->construction << "\n"
            << "algorithm:    " << cert->algorithm << "\n"
            << "instance:     s=" << cert->spec.s << " n=" << cert->spec.n
            << " b=" << cert->spec.b << "\n"
            << "sessions:     " << check.sessions << " (violation needs < "
            << cert->spec.s << ")\n"
            << "verdict:      " << (check.valid ? "VALID" : "invalid") << "\n";
  if (!check.valid) std::cout << "detail:       " << check.detail << "\n";
  return check.valid ? 0 : 1;
}

int run_mpm(const Options& opt) {
  const auto constraints = build_constraints(opt, opt.spec.n);
  std::unique_ptr<MpmAlgorithmFactory> factory;
  if (opt.model == "sync") factory = std::make_unique<SyncMpmFactory>();
  else if (opt.model == "periodic")
    factory = std::make_unique<PeriodicMpmFactory>();
  else if (opt.model == "semisync")
    factory = std::make_unique<SemiSyncMpmFactory>();
  else if (opt.model == "sporadic")
    factory = std::make_unique<SporadicMpmFactory>();
  else factory = std::make_unique<AsyncMpmFactory>();
  std::cout << "algorithm:   " << factory->name() << "\n";

  if (opt.degradation) {
    MpmRunLimits limits;
    limits.max_steps = 150'000;  // crash-induced livelocks cut over fast
    const DegradationReport report =
        mpm_degradation(opt.spec, constraints, *factory, {0, 1, 2},
                        {0, 5, 20}, opt.seed, limits);
    if (recovery::run_interrupted()) return 1;  // partial; finish() maps to 75
    std::cout << report.to_string()
              << "solved/degraded/diagnosed: "
              << report.count(RunOutcome::kSolved) << "/"
              << report.count(RunOutcome::kDegraded) << "/"
              << report.count(RunOutcome::kDiagnosed) << "\n";
    return 0;
  }

  int status = 0;
  const auto injector = make_injector(opt, opt.spec.n, &status);
  if (status) return status;

  if (opt.adversary == "worst" && !injector) {
    const WorstCase wc = mpm_worst_case(opt.spec, constraints, *factory, 4,
                                        opt.seed);
    if (recovery::run_interrupted()) return 1;
    std::cout << "runs:        " << wc.runs << "\n"
              << "max time:    " << wc.max_termination.to_string() << "\n"
              << "min sessions:" << wc.min_sessions << "\n"
              << "all solved:  " << (wc.all_solved ? "yes" : "no") << "\n";
    if (!wc.first_failure.empty())
      std::cout << "failure:     " << wc.first_failure << "\n";
    return wc.all_solved ? 0 : 1;
  }

  std::unique_ptr<StepScheduler> sched;
  std::unique_ptr<DelayStrategy> delay;
  if (opt.model == "periodic") {
    // The periodic model admits exactly one schedule per period vector.
    sched = std::make_unique<FixedPeriodScheduler>(constraints.periods);
    delay = std::make_unique<FixedDelay>(opt.d2);
  } else if (opt.adversary == "lockstep") {
    sched = std::make_unique<FixedPeriodScheduler>(
        opt.spec.n, opt.model == "sporadic" ? opt.c1 : opt.c2);
    delay = std::make_unique<FixedDelay>(opt.d2);
  } else {
    const Duration lo = opt.c1.is_positive() ? opt.c1 : opt.c2 / 8;
    sched = std::make_unique<UniformGapScheduler>(
        lo, opt.model == "sporadic" ? opt.c1 * 8 : opt.c2, opt.seed);
    delay = std::make_unique<UniformRandomDelay>(opt.d1, opt.d2, opt.seed + 1);
  }
  const MpmOutcome out = run_mpm_once(opt.spec, constraints, *factory, *sched,
                                      *delay, MpmRunLimits{}, injector.get());
  print_verdict(out.verdict, opt.spec);
  maybe_dump(opt, out.run.trace);
  if (injector)
    return print_fault_outcome(*injector, out.run.error, out.verdict,
                               opt.spec);
  return out.verdict.solves ? 0 : 1;
}

int run_smm(const Options& opt) {
  const std::int32_t total = smm_total_processes(opt.spec.n, opt.spec.b);
  const auto constraints = build_constraints(opt, total);
  std::unique_ptr<SmmAlgorithmFactory> factory;
  if (opt.model == "sync") factory = std::make_unique<SyncSmmFactory>();
  else if (opt.model == "periodic")
    factory = std::make_unique<PeriodicSmmFactory>();
  else if (opt.model == "semisync")
    factory = std::make_unique<SemiSyncSmmFactory>();
  else factory = std::make_unique<AsyncSmmFactory>();
  std::cout << "algorithm:   " << factory->name() << "\n";

  if (opt.degradation) {
    SmmRunLimits limits;
    limits.max_steps = 150'000;
    const DegradationReport report =
        smm_degradation(opt.spec, constraints, *factory, {0, 1, 2},
                        {0, 5, 20}, opt.seed, limits);
    if (recovery::run_interrupted()) return 1;
    std::cout << report.to_string()
              << "solved/degraded/diagnosed: "
              << report.count(RunOutcome::kSolved) << "/"
              << report.count(RunOutcome::kDegraded) << "/"
              << report.count(RunOutcome::kDiagnosed) << "\n";
    return 0;
  }

  int status = 0;
  const auto injector = make_injector(opt, total, &status);
  if (status) return status;

  if (opt.adversary == "worst" && !injector) {
    const WorstCase wc = smm_worst_case(opt.spec, constraints, *factory, 4,
                                        opt.seed);
    if (recovery::run_interrupted()) return 1;
    std::cout << "runs:        " << wc.runs << "\n"
              << "max time:    " << wc.max_termination.to_string() << "\n"
              << "max rounds:  " << wc.max_rounds << "\n"
              << "all solved:  " << (wc.all_solved ? "yes" : "no") << "\n";
    if (!wc.first_failure.empty())
      std::cout << "failure:     " << wc.first_failure << "\n";
    return wc.all_solved ? 0 : 1;
  }

  std::unique_ptr<StepScheduler> sched;
  if (opt.model == "periodic") {
    sched = std::make_unique<FixedPeriodScheduler>(constraints.periods);
  } else if (opt.adversary == "lockstep") {
    sched = std::make_unique<FixedPeriodScheduler>(total, opt.c2);
  } else {
    const Duration lo = opt.c1.is_positive() ? opt.c1 : opt.c2 / 8;
    sched = std::make_unique<UniformGapScheduler>(lo, opt.c2, opt.seed);
  }
  const SmmOutcome out = run_smm_once(opt.spec, constraints, *factory, *sched,
                                      SmmRunLimits{}, injector.get());
  print_verdict(out.verdict, opt.spec);
  maybe_dump(opt, out.run.trace);
  if (injector)
    return print_fault_outcome(*injector, out.run.error, out.verdict,
                               opt.spec);
  return out.verdict.solves ? 0 : 1;
}

int run_p2p(const Options& opt) {
  if (opt.spec.n < 1) {
    std::cerr << "p2p needs n >= 1\n";
    return 2;
  }
  Topology topo = Topology::complete(opt.spec.n);
  if (opt.topology == "ring") topo = Topology::ring(opt.spec.n);
  else if (opt.topology == "line") topo = Topology::line(opt.spec.n);
  else if (opt.topology == "star") topo = Topology::star(opt.spec.n);
  else if (opt.topology == "tree") topo = Topology::tree(opt.spec.n, 2);
  else if (opt.topology == "grid")
    topo = Topology::grid(2, (opt.spec.n + 1) / 2);
  if (topo.num_nodes() != opt.spec.n) {
    std::cerr << "topology size mismatch\n";
    return 2;
  }

  const auto constraints = build_constraints(opt, opt.spec.n);
  std::unique_ptr<P2pAlgorithmFactory> factory;
  if (opt.model == "sync") factory = std::make_unique<P2pSyncFactory>();
  else if (opt.model == "periodic")
    factory = std::make_unique<P2pPeriodicFactory>();
  else factory = std::make_unique<P2pRoundsFactory>();
  std::cout << "algorithm:   " << factory->name() << "\n"
            << "topology:    " << topo.name()
            << " (diameter " << topo.diameter() << ")\n";

  FixedPeriodScheduler sched(
      opt.model == "periodic"
          ? FixedPeriodScheduler(constraints.periods)
          : FixedPeriodScheduler(opt.spec.n, opt.model == "sporadic"
                                                 ? opt.c1
                                                 : opt.c2));
  FixedDelay delay(opt.d2);
  int status = 0;
  const auto injector = make_injector(opt, opt.spec.n, &status);
  if (status) return status;
  const P2pOutcome out =
      run_p2p_once(opt.spec, constraints, topo, *factory, sched, delay,
                   P2pRunLimits{}, injector.get());
  print_verdict(out.verdict, opt.spec);
  maybe_dump(opt, out.run.trace);
  if (injector)
    return print_fault_outcome(*injector, out.run.error, out.verdict,
                               opt.spec);
  return out.verdict.solves ? 0 : 1;
}

}  // namespace
}  // namespace sesp

int main(int argc, char** argv) {
  const auto opt = sesp::parse(argc, argv);
  if (!opt) {
    sesp::usage(std::cerr);
    return 2;
  }
  if (!opt->journal_inspect.empty())
    return sesp::run_journal_inspect(*opt);
  if (!opt->check_certificate.empty())
    return sesp::run_certificate_check(*opt);

  // Installed for the whole dispatch so every nested layer reports into it;
  // the metrics / JSON / trace outputs are emitted when the scope closes.
  // Shard participants reroute file outputs into the shard directory so
  // concurrent workers never collide on one path.
  sesp::ObservationOptions obs_opt = opt->obs;
  if (!opt->recovery.shard_dir.empty())
    obs_opt.rebase_for_shard(opt->recovery.shard_dir,
                             opt->recovery.worker_id);
  sesp::ObservationScope observation(obs_opt, "sesp_cli");
  // Checkpoint/resume supervision for the sweeps underneath (worst-case
  // families, degradation grids): journal flags are validated before any
  // work runs, and a drained SIGINT/SIGTERM maps to exit 75 in finish().
  sesp::RecoveryScope recovery(opt->recovery, "sesp_cli",
                               sesp::config_digest(*opt), argc, argv);
  if (recovery.error()) return 2;

  std::cout << "substrate:   " << opt->substrate << "\n"
            << "model:       " << opt->model << "\n"
            << "instance:    s=" << opt->spec.s << " n=" << opt->spec.n
            << " b=" << opt->spec.b << "\n";
  int status = 2;
  if (opt->substrate == "mpm") status = sesp::run_mpm(*opt);
  else if (opt->substrate == "smm") status = sesp::run_smm(*opt);
  else if (opt->substrate == "p2p") status = sesp::run_p2p(*opt);
  else std::cerr << "unknown substrate\n";
  return recovery.finish(status);
}
