// sesp_serve — the overload-safe bounds-and-runs service (docs/serving.md).
//
// Serves the sesp-serve/1 line-delimited JSON protocol on localhost TCP:
// Table-1 bound cells from a digest-keyed cache, simulator runs and replays
// through an admission-controlled pool, and journaled degradation sweeps
// with byte-identical resume. Every overload path degrades to a structured
// reply (BadRequest / Overloaded / Timeout), never a crash.
//
//   sesp_serve --port=0 --journal-dir=journals
//   sesp_serve --port=4515 --journal-dir=journals --resume
//   sesp_serve --port=0 --journal-dir=j --chaos=5   # stop after 5 appends
//
// Prints "listening on 127.0.0.1:<port>" once ready (scripts parse this).
// SIGTERM/SIGINT drain: stop accepting, shed new requests, stop the running
// sweep through its supervisor (journaled, resumable), exit 75
// (EX_TEMPFAIL) when a sweep was interrupted, else 0.

#include <atomic>
#include <chrono>
#include <csignal>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "cli_observation.hpp"
#include "recovery/supervisor.hpp"
#include "serve/server.hpp"

namespace {

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig); }

struct Options {
  sesp::serve::ServerConfig server;
  sesp::ObservationOptions obs;
};

void usage(std::ostream& os) {
  os << "usage: sesp_serve [options]\n"
        "  --port=N                     listen port (0 = ephemeral)\n"
        "  --journal-dir=DIR            sweep journals (durability + resume)\n"
        "  --resume                     re-enqueue journaled sweeps at start\n"
        "  --chaos=N                    stop the first sweep after N journal\n"
        "                               appends, then drain (deterministic\n"
        "                               restart-under-load testing)\n"
        "  --max-connections=N          concurrent connections (default 64)\n"
        "  --heavy-workers=N            run/replay worker threads (default 2)\n"
        "  --max-queue=N                queued heavy jobs (default 8)\n"
        "  --max-sweep-queue=N          queued sweeps (default 4)\n"
        "  --rate=R --burst=R           per-connection token bucket\n"
        "  --deadline-ms=N              default per-request deadline\n"
        "  --retry-after-ms=N           Overloaded retry hint\n"
        "  --write-timeout-ms=N         slow-client reply write budget\n"
        "  --idle-timeout-ms=N          silent-connection timeout\n"
        "  --cache-capacity=N           bound-result LRU entries\n"
        "  --test-heavy-delay-ms=N      artificial job delay (tests only)\n";
  sesp::ObservationOptions::usage(os);
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    try {
      if (opt.obs.consume(key, value)) continue;
      if (key == "--port")
        opt.server.port = static_cast<std::uint16_t>(std::stoi(value));
      else if (key == "--journal-dir") opt.server.journal_dir = value;
      else if (key == "--resume") opt.server.resume = true;
      else if (key == "--chaos") opt.server.chaos_stop_after = std::stoll(value);
      else if (key == "--max-connections")
        opt.server.admission.max_connections = std::stoi(value);
      else if (key == "--heavy-workers")
        opt.server.admission.heavy_workers = std::stoi(value);
      else if (key == "--max-queue")
        opt.server.admission.max_queue = std::stoi(value);
      else if (key == "--max-sweep-queue")
        opt.server.admission.max_sweep_queue = std::stoi(value);
      else if (key == "--rate")
        opt.server.admission.rate_per_sec = std::stod(value);
      else if (key == "--burst")
        opt.server.admission.burst = std::stod(value);
      else if (key == "--deadline-ms")
        opt.server.admission.default_deadline_ms = std::stoll(value);
      else if (key == "--retry-after-ms")
        opt.server.admission.retry_after_ms = std::stoll(value);
      else if (key == "--write-timeout-ms")
        opt.server.admission.write_timeout_ms = std::stoll(value);
      else if (key == "--idle-timeout-ms")
        opt.server.admission.idle_timeout_ms = std::stoll(value);
      else if (key == "--cache-capacity")
        opt.server.admission.cache_capacity =
            static_cast<std::size_t>(std::stoull(value));
      else if (key == "--test-heavy-delay-ms")
        opt.server.admission.test_heavy_delay_ms = std::stoll(value);
      else if (key == "--help" || key == "-h") {
        usage(std::cout);
        std::exit(0);
      } else {
        std::cerr << "unknown option: " << key << "\n";
        return std::nullopt;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << key << "\n";
      return std::nullopt;
    }
  }
  if (opt.server.resume && opt.server.journal_dir.empty()) {
    std::cerr << "--resume requires --journal-dir\n";
    return std::nullopt;
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = parse(argc, argv);
  if (!opt) {
    usage(std::cerr);
    return 2;
  }

  // Installed for the server's whole lifetime: at stop() the server folds
  // its private registry/profiler and the serve.* counters into this scope,
  // which then emits --metrics / --json / --profile outputs.
  sesp::ObservationScope observation(opt->obs, "sesp_serve");

  sesp::serve::Server server(opt->server);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "sesp_serve: " << error << "\n";
    return 2;
  }
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;

  // Park until a signal or a chaos-triggered drain; the server threads do
  // all the work.
  while (g_signal.load() == 0 && !server.draining())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  server.request_drain();
  server.stop();
  if (server.interrupted()) {
    std::cerr << "sesp_serve: drained with interrupted sweep(s); resume with "
                 "--resume --journal-dir=<dir>\n";
    return sesp::recovery::kExitInterrupted;
  }
  return 0;
}
