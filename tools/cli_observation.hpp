#pragma once

// Shared --metrics / --json=FILE / --trace-events=FILE handling for the
// command-line tools. ObservationScope installs a process-wide default
// observer for the duration of main(), so every layer underneath — the
// simulators, verifier, adversaries, retimers, fault injector — reports into
// one MetricsRegistry / TraceSink without any signature plumbing in the
// tools themselves. When no flag is given nothing is installed and the run
// keeps the zero-observer hot path.
//
// Outputs at scope exit:
//   --metrics            human-readable metrics table on stdout
//   --json=FILE          {"schema": "sesp-run/1", "tool": ..., "metrics":
//                        {...}, "trace_events": N, "trace_dropped": N}
//   --trace-events=FILE  Chrome-trace-flavoured JSONL span/instant stream

#include <fstream>
#include <iostream>
#include <string>

#include "obs/json.hpp"
#include "obs/observer.hpp"

namespace sesp {

struct ObservationOptions {
  bool metrics = false;
  std::string json_out;
  std::string trace_events;

  bool any() const {
    return metrics || !json_out.empty() || !trace_events.empty();
  }

  // Returns true when `key` (with `value` from a --key=value split) is one
  // of the observability flags; parse loops try this before their own keys.
  bool consume(const std::string& key, const std::string& value) {
    if (key == "--metrics") metrics = true;
    else if (key == "--json") json_out = value;
    else if (key == "--trace-events") trace_events = value;
    else return false;
    return true;
  }

  static void usage(std::ostream& os) {
    os << "  --metrics                    print the metrics table at exit\n"
          "  --json=FILE                  write metrics as JSON at exit\n"
          "  --trace-events=FILE          write span/instant trace JSONL\n";
  }
};

class ObservationScope {
 public:
  ObservationScope(const ObservationOptions& opt, std::string tool)
      : opt_(opt), tool_(std::move(tool)) {
    if (!opt_.any()) return;
    observer_ = obs::Observer(&registry_,
                              opt_.trace_events.empty() ? nullptr : &sink_);
    previous_ = obs::set_default_observer(&observer_);
  }

  ~ObservationScope() {
    if (!opt_.any()) return;
    obs::set_default_observer(previous_);
    if (opt_.metrics) std::cout << registry_.to_string();
    if (!opt_.json_out.empty()) {
      std::ofstream out(opt_.json_out);
      if (!out) {
        std::cerr << "cannot open " << opt_.json_out << "\n";
      } else {
        obs::JsonWriter w(out);
        w.begin_object();
        w.field("schema", "sesp-run/1");
        w.field("tool", tool_);
        w.key("metrics");
        registry_.write_json(w);
        w.field("trace_events",
                static_cast<std::int64_t>(sink_.events().size()));
        w.field("trace_dropped", sink_.dropped());
        w.end_object();
        out << "\n";
        std::cout << "metrics written to " << opt_.json_out << "\n";
      }
    }
    if (!opt_.trace_events.empty()) {
      std::ofstream out(opt_.trace_events);
      if (!out) {
        std::cerr << "cannot open " << opt_.trace_events << "\n";
      } else {
        sink_.write_jsonl(out);
        std::cout << "trace events written to " << opt_.trace_events << " ("
                  << sink_.events().size() << " events";
        if (sink_.dropped() > 0) std::cout << ", " << sink_.dropped()
                                           << " dropped";
        std::cout << ")\n";
      }
    }
  }

  ObservationScope(const ObservationScope&) = delete;
  ObservationScope& operator=(const ObservationScope&) = delete;

 private:
  ObservationOptions opt_;
  std::string tool_;
  obs::MetricsRegistry registry_;
  obs::TraceSink sink_;
  obs::Observer observer_;
  obs::Observer* previous_ = nullptr;
};

}  // namespace sesp
