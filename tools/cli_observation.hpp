#pragma once

// Shared --metrics / --json=FILE / --trace-events=FILE / --profile handling
// for the command-line tools. ObservationScope installs a process-wide
// default observer for the duration of main(), so every layer underneath —
// the simulators, verifier, adversaries, retimers, fault injector — reports
// into one MetricsRegistry / TraceSink / Profiler without any signature
// plumbing in the tools themselves. When no flag is given nothing is
// installed and the run keeps the zero-observer hot path.
//
// Outputs at scope exit:
//   --metrics            human-readable metrics table on stdout
//   --json=FILE          {"schema": "sesp-run/1", "tool": ..., "metrics":
//                        {...}, "profile": {...}, "trace_events": N,
//                        "trace_dropped": N}
//   --trace-events=FILE  Chrome-trace-flavoured JSONL span/instant stream
//   --profile            per-phase wall-clock table on stderr (stderr so a
//                        profiled run's stdout stays byte-identical to an
//                        unprofiled one)
//
// Shard workers call rebase_for_shard() before constructing the scope: the
// worker's trace and JSON outputs are rerouted to per-worker files inside
// the shard directory and the "written to" notices move to stderr, keeping
// the coordinator's stdout a pure function of the merged journal.

#include <fstream>
#include <iostream>
#include <string>

#include "obs/json.hpp"
#include "obs/observer.hpp"
#include "obs/profiler.hpp"

namespace sesp {

struct ObservationOptions {
  bool metrics = false;
  bool profile = false;
  std::string json_out;
  std::string trace_events;
  // When nonempty, file outputs were rerouted into this shard directory and
  // console notices must go to stderr (stdout is reserved for report bytes).
  std::string shard_rebased_dir;

  bool any() const {
    return metrics || profile || !json_out.empty() || !trace_events.empty();
  }

  // Returns true when `key` (with `value` from a --key=value split) is one
  // of the observability flags; parse loops try this before their own keys.
  bool consume(const std::string& key, const std::string& value) {
    if (key == "--metrics") metrics = true;
    else if (key == "--profile") profile = true;
    else if (key == "--json") json_out = value;
    else if (key == "--trace-events") trace_events = value;
    else return false;
    return true;
  }

  // Reroutes file outputs for a shard participant so concurrent workers
  // never collide on one path. Workers (worker_id >= 0) write
  // <dir>/worker-<id>.trace.jsonl and <dir>/worker-<id>.run.json; the
  // coordinator keeps only its trace, at <dir>/coordinator.trace.jsonl.
  // No-op for outputs that were not requested.
  void rebase_for_shard(const std::string& dir, std::int32_t worker_id) {
    shard_rebased_dir = dir;
    const std::string stem = worker_id >= 0
        ? "worker-" + std::to_string(worker_id)
        : "coordinator";
    if (!trace_events.empty())
      trace_events = dir + "/" + stem + ".trace.jsonl";
    if (!json_out.empty()) {
      if (worker_id >= 0) json_out = dir + "/" + stem + ".run.json";
    }
  }

  static void usage(std::ostream& os) {
    os << "  --metrics                    print the metrics table at exit\n"
          "  --profile                    print per-phase timings on stderr\n"
          "  --json=FILE                  write metrics as JSON at exit\n"
          "  --trace-events=FILE          write span/instant trace JSONL\n";
  }
};

class ObservationScope {
 public:
  ObservationScope(const ObservationOptions& opt, std::string tool)
      : opt_(opt), tool_(std::move(tool)) {
    if (!opt_.any()) return;
    observer_ = obs::Observer(&registry_,
                              opt_.trace_events.empty() ? nullptr : &sink_);
    if (opt_.profile) observer_.profiler = &profiler_;
    previous_ = obs::set_default_observer(&observer_);
  }

  ~ObservationScope() {
    if (!opt_.any()) return;
    obs::set_default_observer(previous_);
    std::ostream& notices =
        opt_.shard_rebased_dir.empty() ? std::cout : std::cerr;
    if (opt_.metrics) std::cout << registry_.to_string();
    if (opt_.profile) std::cerr << profiler_.to_string();
    if (!opt_.json_out.empty()) {
      std::ofstream out(opt_.json_out);
      if (!out) {
        std::cerr << "cannot open " << opt_.json_out << "\n";
      } else {
        obs::JsonWriter w(out);
        w.begin_object();
        w.field("schema", "sesp-run/1");
        w.field("tool", tool_);
        w.key("metrics");
        registry_.write_json(w);
        w.key("profile");
        profiler_.write_json(w);
        w.field("trace_events",
                static_cast<std::int64_t>(sink_.events().size()));
        w.field("trace_dropped", sink_.dropped());
        w.end_object();
        out << "\n";
        notices << "metrics written to " << opt_.json_out << "\n";
      }
    }
    if (!opt_.trace_events.empty()) {
      std::ofstream out(opt_.trace_events);
      if (!out) {
        std::cerr << "cannot open " << opt_.trace_events << "\n";
      } else {
        sink_.write_jsonl(out);
        notices << "trace events written to " << opt_.trace_events << " ("
                << sink_.events().size() << " events";
        if (sink_.dropped() > 0) notices << ", " << sink_.dropped()
                                         << " dropped";
        notices << ")\n";
      }
    }
  }

  ObservationScope(const ObservationScope&) = delete;
  ObservationScope& operator=(const ObservationScope&) = delete;

  obs::TraceSink& sink() noexcept { return sink_; }
  bool tracing() const noexcept { return !opt_.trace_events.empty(); }

 private:
  ObservationOptions opt_;
  std::string tool_;
  obs::MetricsRegistry registry_;
  obs::TraceSink sink_;
  obs::Profiler profiler_;
  obs::Observer observer_;
  obs::Observer* previous_ = nullptr;
};

}  // namespace sesp
