// sesp_client — line-protocol client for sesp_serve (docs/serving.md).
//
// Sends sesp-serve/1 request lines (from --send flags, or stdin when none)
// to a local server and prints one reply line per request. Conveniences for
// scripts and tests:
//
//   --send=LINE        queue one request line (repeatable, sent in order)
//   --flood=N          send the (single) --send line N times, pipelined
//   --summary          print "Ok=… BadRequest=… Overloaded=… Timeout=…"
//                      instead of the raw reply lines
//   --print-field=P    print the dotted-path field of each reply instead of
//                      the whole line (e.g. result.ticket, result.state)
//   --wait-ticket=HEX  poll the sweep ticket until done/interrupted
//   --report           with --wait-ticket: print the report text verbatim
//                      (byte-comparable with sesp_cli --degradation output)
//
// Exit: 0 on success, 2 usage, 3 interrupted ticket, 4 connect/timeout.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace {

struct Options {
  std::uint16_t port = 0;
  std::vector<std::string> sends;
  std::int64_t flood = 0;
  bool summary = false;
  std::string print_field;
  std::string wait_ticket;
  bool report = false;
  std::int64_t timeout_ms = 30'000;
};

void usage(std::ostream& os) {
  os << "usage: sesp_client --port=N [--send=LINE]... [--flood=N]\n"
        "                   [--summary] [--print-field=PATH]\n"
        "                   [--wait-ticket=HEX] [--report] [--timeout-ms=N]\n";
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    try {
      if (key == "--port")
        opt.port = static_cast<std::uint16_t>(std::stoi(value));
      else if (key == "--send") opt.sends.push_back(value);
      else if (key == "--flood") opt.flood = std::stoll(value);
      else if (key == "--summary") opt.summary = true;
      else if (key == "--print-field") opt.print_field = value;
      else if (key == "--wait-ticket") opt.wait_ticket = value;
      else if (key == "--report") opt.report = true;
      else if (key == "--timeout-ms") opt.timeout_ms = std::stoll(value);
      else if (key == "--help" || key == "-h") {
        usage(std::cout);
        std::exit(0);
      } else {
        std::cerr << "unknown option: " << key << "\n";
        return std::nullopt;
      }
    } catch (const std::exception&) {
      std::cerr << "bad value for " << key << "\n";
      return std::nullopt;
    }
  }
  if (opt.port == 0) {
    std::cerr << "--port is required\n";
    return std::nullopt;
  }
  if (opt.flood > 0 && opt.sends.size() != 1) {
    std::cerr << "--flood needs exactly one --send line\n";
    return std::nullopt;
  }
  return opt;
}

// A blocking line-framed connection with an overall deadline.
class Connection {
 public:
  bool open(std::uint16_t port, std::string* error) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      *error = std::strerror(errno);
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      *error = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return true;
  }

  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t k =
          ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
      if (k < 0 && errno == EINTR) continue;
      if (k <= 0) return false;
      off += static_cast<std::size_t>(k);
    }
    return true;
  }

  // One reply line (without newline) within `timeout_ms`; nullopt on
  // timeout or a closed connection.
  std::optional<std::string> read_line(std::int64_t timeout_ms) {
    using clock = std::chrono::steady_clock;
    const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      const auto now = clock::now();
      if (now >= deadline) return std::nullopt;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now)
                            .count();
      pollfd p{fd_, POLLIN, 0};
      const int pr =
          ::poll(&p, 1, static_cast<int>(std::min<std::int64_t>(left, 200)));
      if (pr < 0 && errno != EINTR) return std::nullopt;
      if (pr <= 0) continue;
      char chunk[4096];
      const ssize_t k = ::recv(fd_, chunk, sizeof chunk, 0);
      if (k == 0) return std::nullopt;
      if (k < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return std::nullopt;
      }
      buffer_.append(chunk, static_cast<std::size_t>(k));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

// Dotted-path lookup ("result.ticket") into a parsed reply.
const sesp::obs::JsonValue* find_path(const sesp::obs::JsonValue& doc,
                                      const std::string& path) {
  const sesp::obs::JsonValue* v = &doc;
  std::size_t at = 0;
  while (at <= path.size()) {
    const std::size_t dot = path.find('.', at);
    const std::string part = path.substr(
        at, dot == std::string::npos ? std::string::npos : dot - at);
    v = v->find(part);
    if (v == nullptr) return nullptr;
    if (dot == std::string::npos) break;
    at = dot + 1;
  }
  return v;
}

void print_value(const sesp::obs::JsonValue& v) {
  if (v.is_string()) {
    std::cout << v.string << "\n";
    return;
  }
  sesp::obs::JsonWriter w(std::cout);
  sesp::obs::write_json_value(w, v);
  std::cout << "\n";
}

int wait_for_ticket(Connection& conn, const Options& opt) {
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::milliseconds(opt.timeout_ms);
  std::int64_t id = 1'000'000;
  while (clock::now() < deadline) {
    std::ostringstream req;
    req << "{\"id\":" << id++ << ",\"op\":\"poll\",\"ticket\":\""
        << opt.wait_ticket << "\"}";
    if (!conn.send_line(req.str())) return 4;
    const auto reply = conn.read_line(opt.timeout_ms);
    if (!reply) return 4;
    const auto doc = sesp::obs::parse_json(*reply);
    if (!doc) return 4;
    const auto* status = doc->find("status");
    if (status == nullptr || !status->is_string()) return 4;
    if (status->string != "Ok") {
      std::cerr << *reply << "\n";
      return status->string == "BadRequest" ? 2 : 4;
    }
    const auto* state = find_path(*doc, "result.state");
    if (state != nullptr && state->is_string()) {
      if (state->string == "done") {
        const auto* report = find_path(*doc, "result.report");
        if (opt.report && report != nullptr && report->is_string())
          std::cout << report->string;  // verbatim, already newline-framed
        else
          std::cout << *reply << "\n";
        return 0;
      }
      if (state->string == "interrupted") {
        std::cout << *reply << "\n";
        return 3;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cerr << "sesp_client: ticket wait timed out\n";
  return 4;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = parse(argc, argv);
  if (!opt) {
    usage(std::cerr);
    return 2;
  }
  Connection conn;
  std::string error;
  if (!conn.open(opt->port, &error)) {
    std::cerr << "sesp_client: connect: " << error << "\n";
    return 4;
  }

  if (!opt->wait_ticket.empty()) return wait_for_ticket(conn, *opt);

  std::vector<std::string> lines = opt->sends;
  if (opt->flood > 0) {
    lines.assign(static_cast<std::size_t>(opt->flood), opt->sends.front());
  } else if (lines.empty()) {
    std::string line;
    while (std::getline(std::cin, line))
      if (!line.empty()) lines.push_back(line);
  }

  // Pipelined: write everything, then read one reply per request (the
  // protocol guarantees ordered replies).
  for (const std::string& line : lines) {
    if (!conn.send_line(line)) {
      std::cerr << "sesp_client: send failed\n";
      return 4;
    }
  }
  std::map<std::string, std::int64_t> by_status;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto reply = conn.read_line(opt->timeout_ms);
    if (!reply) {
      // A dropped connection mid-flood is a server-side shed; report what
      // was counted so far rather than failing silently.
      std::cerr << "sesp_client: connection closed after " << i
                << " replies\n";
      if (!opt->summary) return 4;
      by_status["Dropped"] = static_cast<std::int64_t>(lines.size() - i);
      break;
    }
    const auto doc = sesp::obs::parse_json(*reply);
    if (doc) {
      const auto* status = doc->find("status");
      ++by_status[status != nullptr && status->is_string() ? status->string
                                                           : "Malformed"];
    } else {
      ++by_status["Malformed"];
    }
    if (opt->summary) continue;
    if (!opt->print_field.empty()) {
      if (doc) {
        const auto* v = find_path(*doc, opt->print_field);
        if (v != nullptr) {
          print_value(*v);
          continue;
        }
      }
      std::cout << "\n";
    } else {
      std::cout << *reply << "\n";
    }
  }
  if (opt->summary) {
    std::ostringstream os;
    const char* keys[] = {"Ok", "BadRequest", "Overloaded", "Timeout"};
    bool first = true;
    for (const char* k : keys) {
      os << (first ? "" : " ") << k << "=" << by_status[k];
      first = false;
    }
    for (const auto& [k, v] : by_status) {
      bool canonical = false;
      for (const char* c : keys) canonical = canonical || k == c;
      if (!canonical) os << " " << k << "=" << v;
    }
    std::cout << os.str() << "\n";
  }
  return 0;
}
