#pragma once

// Shared --journal / --resume / --task-deadline / --task-retries handling
// for the command-line tools (docs/robustness.md). RecoveryScope builds the
// checkpoint journal (fresh or resumed), validates that a resumed journal
// really belongs to this tool and configuration, and installs a
// recovery::Supervisor (with SIGINT/SIGTERM draining) for the duration of
// main() — every supervised sweep underneath checkpoints per-slot results
// without any signature plumbing in the tools themselves.
//
// Exit protocol: flag/journal errors are usage errors (exit 2, before any
// work runs); a drained interrupt exits recovery::kExitInterrupted (75,
// EX_TEMPFAIL) after a stderr resume hint, with all completed slots durable
// in the journal. Recovery chatter goes to stderr only, so the stdout of a
// resumed run is byte-comparable to an uninterrupted run's.

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>

#include "recovery/journal.hpp"
#include "recovery/supervisor.hpp"

namespace sesp {

struct RecoveryOptions {
  std::string journal;  // --journal=FILE: start a fresh checkpoint journal
  std::string resume;   // --resume=FILE: replay an existing journal
  recovery::TaskPolicy policy;

  // Returns true when `key` (with `value` from a --key=value split) is one
  // of the recovery flags; parse loops try this before their own keys.
  bool consume(const std::string& key, const std::string& value) {
    if (key == "--journal") journal = value;
    else if (key == "--resume") resume = value;
    else if (key == "--task-deadline")
      policy.deadline_seconds = std::stod(value);
    else if (key == "--task-retries")
      policy.max_retries = std::stoi(value);
    else return false;
    return true;
  }

  static void usage(std::ostream& os) {
    os << "  --journal=FILE               checkpoint completed sweep slots\n"
          "  --resume=FILE                resume from FILE's checkpoints\n"
          "  --task-deadline=SECONDS      per-task wall-clock budget (0=off;\n"
          "                               overruns retry, then fail cleanly)\n"
          "  --task-retries=N             extra attempts per failing task\n";
  }
};

class RecoveryScope {
 public:
  // `config_digest` fingerprints every result-affecting option of the run
  // (not --jobs, not observability/output flags): a journal only replays
  // into the identical sweep it was written by.
  RecoveryScope(const RecoveryOptions& opt, const std::string& tool,
                std::uint64_t config_digest) {
    std::unique_ptr<recovery::RunJournal> journal;
    if (!opt.journal.empty() && !opt.resume.empty()) {
      std::cerr << "--journal and --resume are mutually exclusive\n";
      error_ = true;
      return;
    }
    if (!opt.resume.empty()) {
      std::string error;
      journal = recovery::RunJournal::open_resume(opt.resume, &error);
      if (!journal) {
        std::cerr << "cannot resume from " << opt.resume << ": " << error
                  << "\n";
        error_ = true;
        return;
      }
      if (!journal->matches(tool, config_digest)) {
        std::cerr << "journal " << opt.resume
                  << " belongs to a different "
                  << (journal->tool() != tool ? "tool" : "configuration")
                  << " (journal " << journal->tool() << '/'
                  << recovery::fnv1a_hex(journal->config_digest())
                  << ", this run " << tool << '/'
                  << recovery::fnv1a_hex(config_digest) << ")\n";
        error_ = true;
        return;
      }
      std::cerr << "resuming from " << opt.resume << ": "
                << journal->records() << " checkpointed slot(s)";
      if (journal->dropped_on_load() > 0)
        std::cerr << ", " << journal->dropped_on_load()
                  << " torn record(s) dropped";
      std::cerr << "\n";
    } else if (!opt.journal.empty()) {
      std::string error;
      journal = recovery::RunJournal::create(opt.journal, tool,
                                             config_digest, &error);
      if (!journal) {
        std::cerr << "cannot create journal " << opt.journal << ": " << error
                  << "\n";
        error_ = true;
        return;
      }
    }
    supervisor_ =
        std::make_unique<recovery::Supervisor>(std::move(journal),
                                               opt.policy);
    supervisor_->install_signal_handlers();
    recovery::Supervisor::install(supervisor_.get());
  }

  ~RecoveryScope() {
    if (supervisor_) recovery::Supervisor::install(nullptr);
  }

  RecoveryScope(const RecoveryScope&) = delete;
  RecoveryScope& operator=(const RecoveryScope&) = delete;

  // Flag/journal mismatch — the tool exits 2 without running anything.
  bool error() const noexcept { return error_; }

  // Folds the interrupt outcome into the tool's exit status: when the run
  // was drained, prints the resume hint and returns kExitInterrupted
  // instead of `status`.
  int finish(int status) const {
    if (!supervisor_ || !supervisor_->interrupted()) return status;
    const recovery::SupervisorStats stats = supervisor_->stats();
    std::cerr << "interrupted: "
              << (stats.slots_replayed + stats.slots_executed)
              << " slot(s) checkpointed, " << stats.slots_skipped
              << " pending";
    if (supervisor_->journal())
      std::cerr << "; resume with --resume="
                << supervisor_->journal()->path();
    std::cerr << "\n";
    return recovery::kExitInterrupted;
  }

 private:
  bool error_ = false;
  std::unique_ptr<recovery::Supervisor> supervisor_;
};

}  // namespace sesp
