#pragma once

// Shared --journal / --resume / --task-deadline / --task-retries and
// sharded-execution (--workers / --worker-id / --shard-dir) handling for
// the command-line tools (docs/robustness.md). RecoveryScope builds the
// checkpoint journal (fresh or resumed), validates that a resumed journal
// really belongs to this tool and configuration, and installs a
// recovery::Supervisor (with SIGINT/SIGTERM draining) for the duration of
// main() — every supervised sweep underneath checkpoints per-slot results
// without any signature plumbing in the tools themselves.
//
// Sharded modes (docs/robustness.md "Sharded execution"):
//
//   --shard-dir=DIR --worker-id=K   this process is shard worker K: it
//       journals into DIR/worker-K.journal, leases slot ranges through
//       DIR/claims/, and steals expired leases from dead peers.
//   --shard-dir=DIR --workers=N     coordinator: re-exec this command N
//       times as workers (spawn, monitor, restart on interrupt/crash),
//       merge the worker journals into DIR/merged.journal, then replay
//       the merge — so the coordinator's stdout is byte-identical to a
//       single-process run's.
//
// Exit protocol: flag/journal/manifest errors are usage errors (exit 2,
// before any work runs); a drained interrupt exits
// recovery::kExitInterrupted (75, EX_TEMPFAIL) after a stderr resume
// hint, with all completed slots durable in the journal. Recovery chatter
// goes to stderr only, so the stdout of a resumed or sharded run is
// byte-comparable to an uninterrupted run's.

#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "obs/observer.hpp"
#include "recovery/journal.hpp"
#include "recovery/supervisor.hpp"
#include "shard/launch.hpp"
#include "shard/shard.hpp"

namespace sesp {

struct RecoveryOptions {
  std::string journal;  // --journal=FILE: start a fresh checkpoint journal
  std::string resume;   // --resume=FILE: replay an existing journal
  recovery::TaskPolicy policy;
  std::string shard_dir;           // --shard-dir=DIR: shared shard state
  std::int32_t workers = 0;        // --workers=N: coordinator mode
  std::int32_t worker_id = -1;     // --worker-id=K: worker mode
  std::int64_t lease_ms = 10'000;  // --lease-ms=N: range lease length
  std::int32_t shard_restarts = 100;  // --shard-restarts=N: restart budget

  // Returns true when `key` (with `value` from a --key=value split) is one
  // of the recovery flags; parse loops try this before their own keys.
  bool consume(const std::string& key, const std::string& value) {
    if (key == "--journal") journal = value;
    else if (key == "--resume") resume = value;
    else if (key == "--task-deadline")
      policy.deadline_seconds = std::stod(value);
    else if (key == "--task-retries")
      policy.max_retries = std::stoi(value);
    else if (key == "--shard-dir") shard_dir = value;
    else if (key == "--workers") workers = std::stoi(value);
    else if (key == "--worker-id") worker_id = std::stoi(value);
    else if (key == "--lease-ms") lease_ms = std::stoll(value);
    else if (key == "--shard-restarts") shard_restarts = std::stoi(value);
    else return false;
    return true;
  }

  static void usage(std::ostream& os) {
    os << "  --journal=FILE               checkpoint completed sweep slots\n"
          "  --resume=FILE                resume from FILE's checkpoints\n"
          "  --task-deadline=SECONDS      per-task wall-clock budget (0=off;\n"
          "                               overruns retry, then fail cleanly)\n"
          "  --task-retries=N             extra attempts per failing task\n"
          "  --shard-dir=DIR              shared directory for sharded"
          " sweeps\n"
          "  --workers=N                  spawn N shard workers and merge\n"
          "                               their journals (coordinator)\n"
          "  --worker-id=K                act as shard worker K\n"
          "  --lease-ms=N                 range lease length (default"
          " 10000)\n"
          "  --shard-restarts=N           worker restart budget (default"
          " 100)\n";
  }
};

class RecoveryScope {
 public:
  // `config_digest` fingerprints every result-affecting option of the run
  // (not --jobs, not observability/output flags): a journal only replays
  // into the identical sweep it was written by. argc/argv are needed only
  // by the coordinator mode, which re-execs this command per worker.
  RecoveryScope(const RecoveryOptions& opt, const std::string& tool,
                std::uint64_t config_digest, int argc = 0,
                char** argv = nullptr) {
    std::unique_ptr<recovery::RunJournal> journal;
    if (!validate(opt)) return;

    if (opt.worker_id >= 0) {
      journal = open_worker(opt, tool, config_digest);
      if (!journal) return;
    } else if (opt.workers > 0) {
      journal = run_coordinator(opt, tool, config_digest, argc, argv);
      if (!journal && !interrupted_after_launch_) return;
    } else if (!opt.resume.empty()) {
      std::string error;
      journal = recovery::RunJournal::open_resume(opt.resume, &error);
      if (!journal) {
        std::cerr << "cannot resume from " << opt.resume << ": " << error
                  << "\n";
        error_ = true;
        return;
      }
      if (!journal->matches(tool, config_digest)) {
        report_mismatch(opt.resume, *journal, tool, config_digest);
        error_ = true;
        return;
      }
      std::cerr << "resuming from " << opt.resume << ": "
                << journal->records() << " checkpointed slot(s)";
      if (journal->dropped_on_load() > 0)
        std::cerr << ", " << journal->dropped_on_load()
                  << " torn record(s) dropped";
      std::cerr << "\n";
    } else if (!opt.journal.empty()) {
      std::string error;
      journal = recovery::RunJournal::create(opt.journal, tool,
                                             config_digest, &error);
      if (!journal) {
        std::cerr << "cannot create journal " << opt.journal << ": " << error
                  << "\n";
        error_ = true;
        return;
      }
    }
    supervisor_ =
        std::make_unique<recovery::Supervisor>(std::move(journal),
                                               opt.policy);
    if (shard_) supervisor_->set_shard(shard_.get());
    if (interrupted_after_launch_) supervisor_->request_stop();
    supervisor_->install_signal_handlers();
    recovery::Supervisor::install(supervisor_.get());
  }

  ~RecoveryScope() {
    if (supervisor_) recovery::Supervisor::install(nullptr);
  }

  RecoveryScope(const RecoveryScope&) = delete;
  RecoveryScope& operator=(const RecoveryScope&) = delete;

  // Flag/journal mismatch — the tool exits 2 without running anything.
  bool error() const noexcept { return error_; }

  // Folds the interrupt outcome into the tool's exit status: when the run
  // was drained, prints the resume hint and returns kExitInterrupted
  // instead of `status`.
  int finish(int status) const {
    if (!supervisor_ || !supervisor_->interrupted()) return status;
    const recovery::SupervisorStats stats = supervisor_->stats();
    std::cerr << "interrupted: "
              << (stats.slots_replayed + stats.slots_executed)
              << " slot(s) checkpointed, " << stats.slots_skipped
              << " pending";
    if (coordinator_ || shard_)
      std::cerr << "; re-run the same command to resume the sharded sweep";
    else if (supervisor_->journal())
      std::cerr << "; resume with --resume="
                << supervisor_->journal()->path();
    std::cerr << "\n";
    return recovery::kExitInterrupted;
  }

 private:
  bool validate(const RecoveryOptions& opt) {
    const bool sharded = opt.workers > 0 || opt.worker_id >= 0;
    if (!opt.journal.empty() && !opt.resume.empty()) {
      std::cerr << "--journal and --resume are mutually exclusive\n";
    } else if (opt.workers > 0 && opt.worker_id >= 0) {
      std::cerr << "--workers and --worker-id are mutually exclusive\n";
    } else if (sharded && opt.shard_dir.empty()) {
      std::cerr << "--workers/--worker-id require --shard-dir\n";
    } else if (!opt.shard_dir.empty() && !sharded) {
      std::cerr << "--shard-dir requires --workers or --worker-id\n";
    } else if (sharded && (!opt.journal.empty() || !opt.resume.empty())) {
      std::cerr << "sharded runs journal into --shard-dir; --journal/"
                   "--resume do not apply\n";
    } else {
      return true;
    }
    error_ = true;
    return false;
  }

  static void report_mismatch(const std::string& path,
                              const recovery::RunJournal& journal,
                              const std::string& tool,
                              std::uint64_t config_digest) {
    std::cerr << "journal " << path << " belongs to a different "
              << (journal.tool() != tool ? "tool" : "configuration")
              << " (journal " << journal.tool() << '/'
              << recovery::fnv1a_hex(journal.config_digest())
              << ", this run " << tool << '/'
              << recovery::fnv1a_hex(config_digest) << ")\n";
  }

  // Worker mode: journal into <dir>/worker-<id>.journal (created on the
  // first run, resumed across restarts) and attach a ShardContext.
  std::unique_ptr<recovery::RunJournal> open_worker(
      const RecoveryOptions& opt, const std::string& tool,
      std::uint64_t config_digest) {
    std::string error;
    if (!shard::ensure_shard_dir(opt.shard_dir, &error) ||
        !shard::ensure_manifest(opt.shard_dir, tool, config_digest,
                                &error)) {
      std::cerr << error << "\n";
      error_ = true;
      return nullptr;
    }
    const std::string path = opt.shard_dir + "/worker-" +
                             std::to_string(opt.worker_id) + ".journal";
    std::unique_ptr<recovery::RunJournal> journal;
    if (::access(path.c_str(), F_OK) == 0) {
      journal = recovery::RunJournal::open_resume(path, &error);
      if (!journal) {
        std::cerr << "cannot resume from " << path << ": " << error << "\n";
        error_ = true;
        return nullptr;
      }
      if (!journal->matches(tool, config_digest)) {
        report_mismatch(path, *journal, tool, config_digest);
        error_ = true;
        return nullptr;
      }
      std::cerr << "shard worker " << opt.worker_id << " resuming: "
                << journal->records() << " checkpointed slot(s)";
      if (journal->dropped_on_load() > 0)
        std::cerr << ", " << journal->dropped_on_load()
                  << " torn record(s) dropped";
      std::cerr << "\n";
    } else {
      journal =
          recovery::RunJournal::create(path, tool, config_digest, &error);
      if (!journal) {
        std::cerr << "cannot create journal " << path << ": " << error
                  << "\n";
        error_ = true;
        return nullptr;
      }
    }
    shard::ShardOptions sopt;
    sopt.dir = opt.shard_dir;
    sopt.worker_id = opt.worker_id;
    sopt.lease_ms = opt.lease_ms;
    shard_ = shard::ShardContext::open(sopt, &error);
    if (!shard_) {
      std::cerr << error << "\n";
      error_ = true;
      return nullptr;
    }
    return journal;
  }

  // Coordinator mode: spawn the workers (this same command, --workers
  // replaced by --worker-id), merge their journals, and return the merged
  // journal so main() replays the canonical report.
  std::unique_ptr<recovery::RunJournal> run_coordinator(
      const RecoveryOptions& opt, const std::string& tool,
      std::uint64_t config_digest, int argc, char** argv) {
    coordinator_ = true;
    std::string error;
    if (argc <= 0 || !argv) {
      std::cerr << "sharded coordinator mode needs the command line\n";
      error_ = true;
      return nullptr;
    }
    if (!shard::ensure_shard_dir(opt.shard_dir, &error) ||
        !shard::ensure_manifest(opt.shard_dir, tool, config_digest,
                                &error)) {
      std::cerr << error << "\n";
      error_ = true;
      return nullptr;
    }

    std::vector<std::string> command;
    command.push_back(shard::self_exe_path(argv[0]));
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--workers=", 0) == 0 || arg == "--workers") continue;
      command.push_back(arg);
    }

    shard::LaunchOptions lopt;
    lopt.dir = opt.shard_dir;
    lopt.workers = opt.workers;
    lopt.max_restarts = opt.shard_restarts;
    std::cerr << "shard: spawning " << opt.workers << " worker(s) in "
              << opt.shard_dir << "\n";
    const shard::LaunchResult launch = shard::run_workers(command, lopt);
    obs::Observer* const o = obs::default_observer();
    if (o && o->metrics)
      o->metrics->counter("shard.worker.restarts").inc(launch.restarts);
    if (o && o->trace) {
      // Replay the launch timeline (wall-clock stamped) into the
      // coordinator's trace so sesp_trace_merge can align worker lanes
      // against spawn/kill/restart instants.
      for (const shard::LaunchEvent& ev : launch.events)
        o->trace->instant_at(
            o->trace->ns_for_unix_ms(ev.unix_ms), "shard.worker." + ev.kind,
            "shard", obs::args_object({obs::arg_int("worker", ev.worker)}));
    }
    if (!launch.ok) {
      std::cerr << launch.error << "\n";
      error_ = true;
      return nullptr;
    }
    if (launch.interrupted) {
      // Workers drained; skip the merge-and-replay, exit 75 via finish().
      interrupted_after_launch_ = true;
      return nullptr;
    }

    const shard::MergeStats merge = shard::merge_shard_dir(opt.shard_dir);
    if (!merge.ok) {
      std::cerr << "shard merge failed: " << merge.error << "\n";
      error_ = true;
      return nullptr;
    }
    if (o && o->metrics)
      o->metrics->counter("shard.ranges.merged").inc(merge.ranges_done);
    if (o && o->trace)
      o->trace->instant("shard.merge", "shard",
                        obs::args_object(
                            {obs::arg_int("workers", merge.workers),
                             obs::arg_int("records", merge.records),
                             obs::arg_int("duplicates", merge.duplicates)}));
    std::cerr << "shard: merged " << merge.records << " record(s) from "
              << merge.workers << " worker journal(s)";
    if (launch.restarts > 0)
      std::cerr << ", " << launch.restarts << " restart(s)";
    if (merge.torn_dropped > 0)
      std::cerr << ", " << merge.torn_dropped << " torn record(s) dropped";
    std::cerr << "\n";

    auto journal = recovery::RunJournal::open_resume(merge.out_path, &error);
    if (!journal) {
      std::cerr << "cannot open merged journal: " << error << "\n";
      error_ = true;
      return nullptr;
    }
    if (!journal->matches(tool, config_digest)) {
      report_mismatch(merge.out_path, *journal, tool, config_digest);
      error_ = true;
      return nullptr;
    }
    return journal;
  }

  bool error_ = false;
  bool coordinator_ = false;
  bool interrupted_after_launch_ = false;
  std::unique_ptr<shard::ShardContext> shard_;
  std::unique_ptr<recovery::Supervisor> supervisor_;
};

}  // namespace sesp
