#include "session/session_counter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace sesp {
namespace {

StepRecord port_step(ProcessId p, PortIndex port, std::int64_t t) {
  StepRecord st;
  st.kind = StepKind::kCompute;
  st.process = p;
  st.port = port;
  st.time = Time(t);
  return st;
}

StepRecord plain_step(ProcessId p, std::int64_t t) {
  StepRecord st;
  st.kind = StepKind::kCompute;
  st.process = p;
  st.time = Time(t);
  return st;
}

TimedComputation make_trace(const std::vector<StepRecord>& steps,
                            std::int32_t n_ports, std::int32_t n_procs) {
  TimedComputation tc(Substrate::kSharedMemory, n_procs, n_ports);
  for (const auto& st : steps) tc.append(st);
  return tc;
}

TEST(SessionCounterTest, EmptyTraceHasNoSessions) {
  const TimedComputation tc = make_trace({}, 2, 2);
  EXPECT_EQ(count_sessions(tc).sessions, 0);
}

TEST(SessionCounterTest, OneRoundOnePortEach) {
  const auto tc = make_trace({port_step(0, 0, 1), port_step(1, 1, 2)}, 2, 2);
  const SessionDecomposition d = count_sessions(tc);
  EXPECT_EQ(d.sessions, 1);
  ASSERT_EQ(d.cut_points.size(), 1u);
  EXPECT_EQ(d.cut_points[0], 2u);
  EXPECT_EQ(d.close_times[0], Time(2));
}

TEST(SessionCounterTest, RepeatedPortDoesNotAdvance) {
  const auto tc = make_trace(
      {port_step(0, 0, 1), port_step(0, 0, 2), port_step(0, 0, 3)}, 2, 2);
  EXPECT_EQ(count_sessions(tc).sessions, 0);
}

TEST(SessionCounterTest, NonPortStepsIgnored) {
  const auto tc = make_trace({port_step(0, 0, 1), plain_step(2, 1),
                              plain_step(3, 2), port_step(1, 1, 3)},
                             2, 4);
  EXPECT_EQ(count_sessions(tc).sessions, 1);
}

TEST(SessionCounterTest, GreedyCutsAsEarlyAsPossible) {
  // Steps: 0 1 0 1 -> session closes at index 1 and again at index 3.
  const auto tc = make_trace({port_step(0, 0, 1), port_step(1, 1, 2),
                              port_step(0, 0, 3), port_step(1, 1, 4)},
                             2, 2);
  const SessionDecomposition d = count_sessions(tc);
  EXPECT_EQ(d.sessions, 2);
  EXPECT_EQ(d.cut_points[0], 2u);
  EXPECT_EQ(d.cut_points[1], 4u);
}

TEST(SessionCounterTest, InterleavedThreePorts) {
  // 0 1 0 2 | 1 2 0 ... first session needs all of {0,1,2}.
  const auto tc = make_trace(
      {port_step(0, 0, 1), port_step(1, 1, 2), port_step(0, 0, 3),
       port_step(2, 2, 4), port_step(1, 1, 5), port_step(2, 2, 6),
       port_step(0, 0, 7)},
      3, 3);
  const SessionDecomposition d = count_sessions(tc);
  EXPECT_EQ(d.sessions, 2);
  EXPECT_EQ(d.cut_points[0], 4u);  // closes at the port-2 step
  EXPECT_EQ(d.cut_points[1], 7u);
}

TEST(SessionCounterTest, RangeRestriction) {
  const auto tc = make_trace({port_step(0, 0, 1), port_step(1, 1, 2),
                              port_step(0, 0, 3), port_step(1, 1, 4)},
                             2, 2);
  EXPECT_EQ(count_sessions(tc, 1).sessions, 1);     // skip first step
  EXPECT_EQ(count_sessions(tc, 0, 3).sessions, 1);  // truncate
  EXPECT_EQ(count_sessions(tc, 2, 2).sessions, 0);  // empty range
}

// Brute-force maximum number of disjoint sessions over all cut placements,
// for small inputs: dynamic programming on the prefix.
std::int64_t brute_force_sessions(const std::vector<StepRecord>& steps,
                                  std::int32_t n_ports) {
  const std::size_t n = steps.size();
  // best[i] = max sessions in steps[0..i)
  std::vector<std::int64_t> best(n + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    best[i] = best[i - 1];
    // Try a session ending exactly at step i-1: find the minimal window
    // [j, i) covering all ports.
    std::vector<bool> seen(static_cast<std::size_t>(n_ports), false);
    std::int32_t missing = n_ports;
    for (std::size_t j = i; j-- > 0;) {
      const StepRecord& st = steps[j];
      if (st.is_port_step() && !seen[static_cast<std::size_t>(st.port)]) {
        seen[static_cast<std::size_t>(st.port)] = true;
        if (--missing == 0) {
          best[i] = std::max(best[i], best[j] + 1);
          break;
        }
      }
    }
  }
  return best[n];
}

class SessionCounterRandom : public ::testing::TestWithParam<int> {};

TEST_P(SessionCounterRandom, GreedyMatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const std::int32_t n_ports = 2 + static_cast<std::int32_t>(rng.next_below(3));
  const std::size_t len = 5 + rng.next_below(40);
  std::vector<StepRecord> steps;
  for (std::size_t i = 0; i < len; ++i) {
    const auto port =
        static_cast<PortIndex>(rng.next_below(
            static_cast<std::uint64_t>(n_ports) + 1));
    if (port == n_ports)
      steps.push_back(plain_step(0, static_cast<std::int64_t>(i)));
    else
      steps.push_back(
          port_step(port, port, static_cast<std::int64_t>(i)));
  }
  EXPECT_EQ(count_sessions_in(steps, n_ports),
            brute_force_sessions(steps, n_ports));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionCounterRandom, ::testing::Range(0, 25));

}  // namespace
}  // namespace sesp
