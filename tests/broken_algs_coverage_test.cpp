// Negative coverage: every deliberately broken algorithm in
// src/algorithms/{smm,mpm}/broken_algs.* must be caught by the conformance
// harness when pointed at it — the generated schedules are admissible for
// the cheater's native model, so the solvability oracle has to fire within
// a modest case budget, and the shrunk witness has to replay to the same
// failure.

#include <gtest/gtest.h>

#include <string>

#include "adversary/exhaustive.hpp"
#include "algorithms/mpm/broken_algs.hpp"
#include "conformance/harness.hpp"
#include "conformance/witness.hpp"

namespace sesp {
namespace {

struct Cheater {
  const char* test_name;  // gtest-safe label
  const char* algorithm;  // conformance factory name
  Substrate substrate;
  std::int64_t cases;     // per-cell budget that reliably catches it
  std::uint64_t seed = 7;
};

conformance::ConformanceConfig config_for(const Cheater& cheater) {
  conformance::ConformanceConfig config;
  config.seed = cheater.seed;
  config.cases_per_cell = cheater.cases;
  config.algorithm_override = cheater.algorithm;
  config.substrates = {cheater.substrate};
  // Exercise the cheater under the model it claims to solve, exactly like
  // `sesp_conformance --algorithm=...` does.
  const auto native = conformance::native_model(cheater.algorithm);
  EXPECT_TRUE(native.has_value()) << cheater.algorithm;
  if (native) config.models = {*native};
  config.minimize = false;
  config.max_failures = 1;
  config.jobs = 2;
  return config;
}

class BrokenAlgCoverage : public ::testing::TestWithParam<Cheater> {};

TEST_P(BrokenAlgCoverage, CaughtByConformanceHarness) {
  const Cheater& cheater = GetParam();
  const conformance::ConformanceReport report =
      conformance::run_conformance(config_for(cheater));
  ASSERT_GT(report.total_failures, 0)
      << cheater.algorithm << " survived " << report.total_cases
      << " admissible cases undetected";
  ASSERT_FALSE(report.failures.empty());
  // An admissible schedule where the cheater misses sessions is precisely a
  // solvability failure; any other oracle firing would mean the harness
  // itself (not the algorithm) broke.
  EXPECT_EQ(report.failures[0].oracle, "solves")
      << report.failures[0].detail;
}

TEST_P(BrokenAlgCoverage, ShrunkWitnessReplaysToSameFailure) {
  const Cheater& cheater = GetParam();
  conformance::ConformanceConfig config = config_for(cheater);
  config.minimize = true;
  const conformance::ConformanceReport report =
      conformance::run_conformance(config);
  ASSERT_FALSE(report.failures.empty()) << cheater.algorithm;
  const conformance::FailureRecord& failure = report.failures[0];
  ASSERT_FALSE(failure.witness.empty());
  ASSERT_TRUE(failure.shrink.has_value());
  EXPECT_EQ(failure.shrink->oracle, failure.oracle);

  std::string error;
  const auto witness = conformance::parse_witness(failure.witness, &error);
  ASSERT_TRUE(witness.has_value()) << error;
  const conformance::WitnessReplay replay =
      conformance::replay_witness(*witness, config.oracles);
  EXPECT_TRUE(replay.reproduced) << replay.detail;
  EXPECT_EQ(replay.oracle, failure.oracle);
}

INSTANTIATE_TEST_SUITE_P(
    AllCheaters, BrokenAlgCoverage,
    ::testing::Values(
        Cheater{"NoWaitPeriodicSmm", "broken-nowait",
                Substrate::kSharedMemory, 200},
        Cheater{"HalfSlackSmm", "broken-halfslack",
                Substrate::kSharedMemory, 300},
        Cheater{"TreeOnlyPeriodicSmm", "broken-treeonly",
                Substrate::kSharedMemory, 200},
        Cheater{"TooFewStepsSmm", "broken-toofewsteps:1",
                Substrate::kSharedMemory, 100},
        Cheater{"TooFewStepsMpm", "broken-toofewsteps:1",
                Substrate::kMessagePassing, 100},
        Cheater{"HalfSlackMpm", "broken-halfslack",
                Substrate::kMessagePassing, 300},
        Cheater{"NoWaitPeriodicMpm", "broken-nowait",
                Substrate::kMessagePassing, 200},
        // The impatient cheater sits at the Theorem 6.5 threshold; generic
        // random schedules expose it only rarely, so its budget and seed
        // are pinned to a detecting stream. The deterministic retimer
        // attack below is its primary negative-coverage guarantee.
        Cheater{"ImpatientSporadicMpm", "broken-impatient",
                Substrate::kMessagePassing, 500, 3}),
    [](const ::testing::TestParamInfo<Cheater>& info) {
      return std::string(info.param.test_name);
    });

// The impatient sporadic cheater is the one target that generic random
// schedules almost never defeat: its B = floor(u/(4*c1)) is wrong only by a
// constant factor, one step above what the executable retimer certifies. The
// exhaustive enumerator is its deterministic catcher: over a small gap/delay
// grid there must exist an admissible schedule with fewer than s sessions.
TEST(BrokenAlgCoverage, ImpatientSporadicDefeatedByExhaustiveSearch) {
  // u = d2 - d1 = 2 puts the cheater's B = floor(u/(4*c1)) at 0, so its
  // condition-2 step budget is exhausted immediately and any freshly
  // delivered (even stale) message from each peer advances the session; the
  // correct A(sp) uses B = floor(u/c1) + 1 = 3. With s = 3 the grid
  // contains straggler schedules where the premature advance skips a
  // session for good.
  const ProblemSpec spec{3, 2, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(0), Duration(2));
  ImpatientSporadicMpmFactory cheater;
  const std::vector<Duration> gaps{Duration(1), Duration(8)};
  const std::vector<Duration> delays{Duration(2)};
  const ExhaustiveResult result =
      explore_mpm(spec, constraints, cheater, gaps, delays, 500'000);
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(result.all_admissible) << result.first_failure;
  EXPECT_FALSE(result.all_solved)
      << "impatient cheater survived all " << result.runs
      << " schedules on the grid";
  EXPECT_LT(result.min_sessions, spec.s);
}

}  // namespace
}  // namespace sesp
