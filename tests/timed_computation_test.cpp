#include "model/timed_computation.hpp"

#include <gtest/gtest.h>

namespace sesp {
namespace {

StepRecord step(ProcessId p, const Time& t, bool idle = false) {
  StepRecord st;
  st.kind = StepKind::kCompute;
  st.process = p;
  st.time = t;
  st.idle_after = idle;
  return st;
}

TEST(TimedComputationTest, EndTimeAndComputeTimes) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  EXPECT_EQ(tc.end_time(), Time(0));
  tc.append(step(0, Time(1)));
  tc.append(step(1, Time(2)));
  tc.append(step(0, Time(3)));
  EXPECT_EQ(tc.end_time(), Time(3));
  const auto times = tc.compute_times(0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], Time(1));
  EXPECT_EQ(times[1], Time(3));
  EXPECT_EQ(tc.compute_indices(1), (std::vector<std::size_t>{1}));
}

TEST(TimedComputationTest, TerminationNeedsAllPorts) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  tc.append(step(0, Time(1), /*idle=*/true));
  EXPECT_FALSE(tc.all_ports_idle());
  EXPECT_FALSE(tc.termination_time().has_value());
  tc.append(step(1, Time(5), /*idle=*/true));
  EXPECT_TRUE(tc.all_ports_idle());
  EXPECT_EQ(*tc.termination_time(), Time(5));
  EXPECT_EQ(tc.active_prefix_length(), 2u);
}

TEST(TimedComputationTest, RelayIdlenessIrrelevant) {
  // Process 2 is a relay (ids >= num_ports); only ports gate termination.
  TimedComputation tc(Substrate::kSharedMemory, 3, 2);
  tc.append(step(0, Time(1), true));
  tc.append(step(2, Time(2)));
  tc.append(step(1, Time(3), true));
  tc.append(step(2, Time(4)));
  EXPECT_EQ(*tc.termination_time(), Time(3));
  EXPECT_EQ(tc.active_prefix_length(), 3u);
}

TEST(TimedComputationTest, GammaIsLargestGapIncludingStart) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  tc.append(step(1, Time(1)));           // gap 1 from time 0
  tc.append(step(0, Time(2)));           // gap 2
  tc.append(step(0, Time(7), true));     // gap 5
  tc.append(step(1, Time(8), true));     // gap 7 -> gamma
  EXPECT_EQ(*tc.gamma(), Duration(7));
}

TEST(TimedComputationTest, GammaIgnoresPostTerminationSteps) {
  TimedComputation tc(Substrate::kSharedMemory, 3, 2);
  tc.append(step(0, Time(1), true));
  tc.append(step(1, Time(2), true));   // all ports idle here
  tc.append(step(2, Time(100)));       // beyond the active prefix
  EXPECT_EQ(*tc.gamma(), Duration(2));
}

TEST(TimedComputationTest, StructuralErrorOnDecreasingTime) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  tc.append(step(0, Time(2)));
  tc.append(step(1, Time(1)));
  const auto err = tc.structural_error();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("time decreases"), std::string::npos);
}

TEST(TimedComputationTest, StructuralErrorOnIdleEscape) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  tc.append(step(0, Time(1), /*idle=*/true));
  tc.append(step(0, Time(2), /*idle=*/false));
  const auto err = tc.structural_error();
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("leaves idle"), std::string::npos);
}

TEST(TimedComputationTest, MessagePlumbingValidated) {
  TimedComputation tc(Substrate::kMessagePassing, 2, 2);
  tc.append(step(0, Time(1)));  // send step
  StepRecord deliver;
  deliver.kind = StepKind::kDeliver;
  deliver.process = kNetworkProcess;
  deliver.time = Time(2);
  deliver.delivered = 0;
  tc.append(deliver);
  tc.append(step(1, Time(3)));  // receive step

  MessageRecord m;
  m.sender = 0;
  m.recipient = 1;
  m.send_step = 0;
  m.deliver_step = 1;
  m.receive_step = 2;
  tc.append_message(m);
  EXPECT_FALSE(tc.structural_error().has_value());

  // Delivery before send is rejected.
  TimedComputation bad(Substrate::kMessagePassing, 2, 2);
  bad.append(deliver);
  bad.append(step(0, Time(3)));
  MessageRecord mb;
  mb.sender = 0;
  mb.recipient = 1;
  mb.send_step = 1;
  mb.deliver_step = 0;
  bad.append_message(mb);
  ASSERT_TRUE(bad.structural_error().has_value());
}

TEST(TimedComputationTest, ToStringTruncates) {
  TimedComputation tc(Substrate::kSharedMemory, 1, 1);
  for (int i = 1; i <= 10; ++i) tc.append(step(0, Time(i)));
  const std::string s = tc.to_string(3);
  EXPECT_NE(s.find("7 more"), std::string::npos);
}

}  // namespace
}  // namespace sesp
