#include "timing/constraints.hpp"

#include <gtest/gtest.h>

namespace sesp {
namespace {

TEST(ConstraintsTest, FactoriesSetModelAndBounds) {
  const auto sync = TimingConstraints::synchronous(Duration(3), Duration(7));
  EXPECT_EQ(sync.model, TimingModel::kSynchronous);
  EXPECT_EQ(sync.c2, Duration(3));
  EXPECT_EQ(sync.d2, Duration(7));
  EXPECT_FALSE(sync.validate().has_value());

  const auto per =
      TimingConstraints::periodic({Duration(1), Duration(3)}, Duration(2));
  EXPECT_EQ(per.model, TimingModel::kPeriodic);
  EXPECT_EQ(per.c_min(), Duration(1));
  EXPECT_EQ(per.c_max(), Duration(3));
  EXPECT_FALSE(per.validate().has_value());

  const auto semi =
      TimingConstraints::semi_synchronous(Duration(1), Duration(4),
                                          Duration(9));
  EXPECT_EQ(semi.model, TimingModel::kSemiSynchronous);
  EXPECT_FALSE(semi.validate().has_value());

  const auto spor =
      TimingConstraints::sporadic(Duration(2), Duration(1), Duration(5));
  EXPECT_EQ(spor.model, TimingModel::kSporadic);
  EXPECT_EQ(spor.delay_uncertainty(), Duration(4));
  EXPECT_FALSE(spor.validate().has_value());

  const auto async_tc = TimingConstraints::asynchronous();
  EXPECT_EQ(async_tc.model, TimingModel::kAsynchronous);
  EXPECT_FALSE(async_tc.validate().has_value());
}

TEST(ConstraintsTest, ValidateRejectsBadInstances) {
  auto tc = TimingConstraints::semi_synchronous(Duration(1), Duration(4));
  tc.c1 = Duration(0);
  EXPECT_TRUE(tc.validate().has_value());

  tc = TimingConstraints::semi_synchronous(Duration(3), Duration(2));
  EXPECT_TRUE(tc.validate().has_value());  // c1 > c2

  tc = TimingConstraints::sporadic(Duration(1), Duration(5), Duration(3));
  EXPECT_TRUE(tc.validate().has_value());  // d1 > d2

  tc = TimingConstraints::synchronous(Duration(0));
  EXPECT_TRUE(tc.validate().has_value());

  tc = TimingConstraints::periodic({Duration(1), Duration(0)});
  EXPECT_TRUE(tc.validate().has_value());  // non-positive period

  tc = TimingConstraints::periodic({Duration(1)});
  tc.periods.clear();
  EXPECT_TRUE(tc.validate().has_value());

  tc = TimingConstraints::sporadic(Duration(1), Ratio(-1), Duration(3));
  EXPECT_TRUE(tc.validate().has_value());  // negative d1
}

TEST(ConstraintsTest, ModelNames) {
  EXPECT_EQ(to_string(TimingModel::kSynchronous), "synchronous");
  EXPECT_EQ(to_string(TimingModel::kPeriodic), "periodic");
  EXPECT_EQ(to_string(TimingModel::kSemiSynchronous), "semi-synchronous");
  EXPECT_EQ(to_string(TimingModel::kSporadic), "sporadic");
  EXPECT_EQ(to_string(TimingModel::kAsynchronous), "asynchronous");
}

TEST(ConstraintsDeath, ExtremesOfEmptyPeriodsAbort) {
  EXPECT_DEATH(
      {
        TimingConstraints tc;
        tc.c_max();
      },
      "no periods");
}

}  // namespace
}  // namespace sesp
