// The parallel sweep engine's two contracts (docs/parallelism.md):
//
//  1. Mechanics: parallel_for_each runs every index exactly once for any
//     job count, nests safely, and resolves its job count through
//     set_default_jobs / SESP_JOBS.
//  2. Determinism: every sweep built on it — worst-case families,
//     degradation grids, chaos sweeps, the exhaustive enumerator — returns
//     results identical to the serial (jobs=1) run for any job count.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "adversary/exhaustive.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "exec/jobs.hpp"
#include "exec/thread_pool.hpp"
#include "obs/observer.hpp"
#include "sim/experiment.hpp"
#include "support/test_support.hpp"

namespace sesp {
namespace {

using test_support::JobsGuard;

// --- parallel_for_each mechanics --------------------------------------------

TEST(ParallelForEach, RunsEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 3, 8}) {
    std::vector<std::atomic<int>> hits(257);
    exec::parallel_for_each(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, jobs);
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
  }
}

TEST(ParallelForEach, ZeroCountIsANoOp) {
  bool ran = false;
  exec::parallel_for_each(0, [&](std::size_t) { ran = true; }, 4);
  EXPECT_FALSE(ran);
}

TEST(ParallelForEach, SlotIndexedResultsAreOrderIndependent) {
  std::vector<std::size_t> out(1000, 0);
  exec::parallel_for_each(
      out.size(), [&](std::size_t i) { out[i] = i * i; }, 8);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelForEach, NestedCallsRunInline) {
  std::atomic<int> inner_total{0};
  std::atomic<bool> saw_worker_inline{false};
  exec::parallel_for_each(
      4,
      [&](std::size_t) {
        if (exec::inside_pool_worker()) saw_worker_inline = true;
        exec::parallel_for_each(
            8, [&](std::size_t) { inner_total.fetch_add(1); }, 4);
      },
      4);
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

// A throwing task must not tear down the pool or lose the sweep: every
// slot still runs, and the barrier rethrows the smallest-index exception on
// the caller's thread regardless of worker scheduling.
TEST(ParallelForEach, FirstSlotOrderExceptionWinsAndAllSlotsRun) {
  for (const int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(16);
    bool caught = false;
    try {
      exec::parallel_for_each(
          hits.size(),
          [&](std::size_t i) {
            hits[i].fetch_add(1);
            if (i == 3) throw std::runtime_error("slot 3");
            if (i == 5) throw std::runtime_error("slot 5");
          },
          jobs);
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "slot 3") << "jobs=" << jobs;
    }
    EXPECT_TRUE(caught) << "jobs=" << jobs;
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
  }
}

TEST(ParallelForEach, PoolStaysUsableAfterException) {
  EXPECT_THROW(
      exec::parallel_for_each(
          8, [](std::size_t i) { if (i == 0) throw std::runtime_error("x"); },
          4),
      std::runtime_error);
  // The next sweep must run clean: no stale exception, no lost workers.
  std::vector<std::atomic<int>> hits(64);
  exec::parallel_for_each(
      hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Jobs, ExplicitOverrideWinsAndRestores) {
  const int before = exec::default_jobs();
  {
    JobsGuard guard(3);
    EXPECT_EQ(exec::default_jobs(), 3);
  }
  EXPECT_EQ(exec::default_jobs(), before);
}

TEST(Jobs, HardwareJobsIsPositive) { EXPECT_GE(exec::hardware_jobs(), 1); }

// --- Sweep determinism across job counts ------------------------------------
//
// Each sweep is run at jobs=1 (the serial reference) and re-run at 2 and 8;
// every aggregate field must be identical. The chaos digests additionally
// pin the per-run classification order byte for byte.

TEST(SweepDeterminism, MpmWorstCaseIsJobCountInvariant) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(2),
                                          Duration(3));
  SemiSyncMpmFactory factory;

  JobsGuard serial(1);
  const WorstCase reference = mpm_worst_case(spec, constraints, factory, 4);
  EXPECT_GT(reference.runs, 0);
  for (const int jobs : {2, 8}) {
    JobsGuard guard(jobs);
    const WorstCase wc = mpm_worst_case(spec, constraints, factory, 4);
    EXPECT_EQ(wc, reference) << "jobs=" << jobs;
  }
}

TEST(SweepDeterminism, SmmWorstCaseIsJobCountInvariant) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(2));
  SemiSyncSmmFactory factory;

  JobsGuard serial(1);
  const WorstCase reference = smm_worst_case(spec, constraints, factory, 4);
  EXPECT_GT(reference.runs, 0);
  for (const int jobs : {2, 8}) {
    JobsGuard guard(jobs);
    const WorstCase wc = smm_worst_case(spec, constraints, factory, 4);
    EXPECT_EQ(wc, reference) << "jobs=" << jobs;
  }
}

TEST(SweepDeterminism, MpmDegradationGridIsJobCountInvariant) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(2),
                                          Duration(3));
  SemiSyncMpmFactory factory;

  JobsGuard serial(1);
  const DegradationReport reference =
      mpm_degradation(spec, constraints, factory);
  EXPECT_FALSE(reference.cells.empty());
  for (const int jobs : {2, 8}) {
    JobsGuard guard(jobs);
    EXPECT_EQ(mpm_degradation(spec, constraints, factory), reference)
        << "jobs=" << jobs;
  }
}

TEST(SweepDeterminism, SmmDegradationGridIsJobCountInvariant) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(2));
  SemiSyncSmmFactory factory;

  JobsGuard serial(1);
  const DegradationReport reference =
      smm_degradation(spec, constraints, factory);
  EXPECT_FALSE(reference.cells.empty());
  for (const int jobs : {2, 8}) {
    JobsGuard guard(jobs);
    EXPECT_EQ(smm_degradation(spec, constraints, factory), reference)
        << "jobs=" << jobs;
  }
}

TEST(SweepDeterminism, ChaosSweepDigestsAreJobCountInvariant) {
  const ProblemSpec spec{2, 3, 2};
  const auto mpm_constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(3),
                                          Duration(4));
  const auto smm_constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(3));
  SemiSyncMpmFactory mpm_factory;
  SemiSyncSmmFactory smm_factory;
  MpmRunLimits mpm_limits;
  mpm_limits.max_steps = 20'000;
  SmmRunLimits smm_limits;
  smm_limits.max_steps = 20'000;

  JobsGuard serial(1);
  const ChaosReport mpm_ref =
      mpm_chaos_sweep(spec, mpm_constraints, mpm_factory, 16, 0xC4A05ULL,
                      mpm_limits);
  const ChaosReport smm_ref =
      smm_chaos_sweep(spec, smm_constraints, smm_factory, 16, 0xC4A05ULL,
                      smm_limits);
  EXPECT_EQ(mpm_ref.runs, 16);
  EXPECT_EQ(smm_ref.runs, 16);
  EXPECT_TRUE(mpm_ref.contract_ok) << mpm_ref.first_violation;
  EXPECT_TRUE(smm_ref.contract_ok) << smm_ref.first_violation;
  EXPECT_FALSE(mpm_ref.digest.empty());

  for (const int jobs : {2, 8}) {
    JobsGuard guard(jobs);
    EXPECT_EQ(mpm_chaos_sweep(spec, mpm_constraints, mpm_factory, 16,
                              0xC4A05ULL, mpm_limits),
              mpm_ref)
        << "jobs=" << jobs;
    EXPECT_EQ(smm_chaos_sweep(spec, smm_constraints, smm_factory, 16,
                              0xC4A05ULL, smm_limits),
              smm_ref)
        << "jobs=" << jobs;
  }
}

TEST(SweepDeterminism, ExhaustiveEnumerationIsJobCountInvariant) {
  const ProblemSpec spec{1, 2, 2};
  const auto constraints = TimingConstraints::sporadic(
      Duration(1), Duration(0), Duration(2));
  SporadicMpmFactory factory;
  const std::vector<Duration> gaps{Duration(1), Duration(2)};
  const std::vector<Duration> delays{Duration(0), Duration(2)};

  JobsGuard serial(1);
  const ExhaustiveResult reference =
      explore_mpm(spec, constraints, factory, gaps, delays, 500'000);
  EXPECT_TRUE(reference.complete);
  for (const int jobs : {2, 8}) {
    JobsGuard guard(jobs);
    const ExhaustiveResult got =
        explore_mpm(spec, constraints, factory, gaps, delays, 500'000);
    EXPECT_EQ(got, reference) << "jobs=" << jobs;
  }
}

// The budget truncation point must also be job-count invariant: the
// parallel fan-out reconstructs the serial order, so runs stops at exactly
// max_runs and the aggregates match the serial prefix.
TEST(SweepDeterminism, ExhaustiveTruncationIsJobCountInvariant) {
  const ProblemSpec spec{2, 2, 2};
  const auto constraints = TimingConstraints::sporadic(
      Duration(1), Duration(0), Duration(2));
  SporadicMpmFactory factory;
  const std::vector<Duration> gaps{Duration(1), Duration(2)};
  const std::vector<Duration> delays{Duration(0), Duration(1), Duration(2)};

  for (const std::int64_t budget : {7, 50, 333}) {
    JobsGuard serial(1);
    const ExhaustiveResult reference =
        explore_mpm(spec, constraints, factory, gaps, delays, budget);
    EXPECT_EQ(reference.runs, budget);
    for (const int jobs : {2, 8}) {
      JobsGuard guard(jobs);
      const ExhaustiveResult got =
          explore_mpm(spec, constraints, factory, gaps, delays, budget);
      EXPECT_EQ(got, reference) << "jobs=" << jobs << " budget=" << budget;
    }
  }
}

// Observation shards must fold to the same counters the serial sweep
// writes: same total runs/steps for any job count.
TEST(SweepDeterminism, MergedMetricsAreJobCountInvariant) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(2),
                                          Duration(3));
  SemiSyncMpmFactory factory;

  auto counters_at = [&](int jobs) {
    JobsGuard guard(jobs);
    obs::MetricsRegistry metrics;
    obs::Observer observer(&metrics);
    obs::Observer* prev = obs::set_default_observer(&observer);
    (void)mpm_worst_case(spec, constraints, factory, 4);
    obs::set_default_observer(prev);
    return std::pair{metrics.counter("sim.runs").value(),
                     metrics.counter("sim.steps").value()};
  };

  const auto reference = counters_at(1);
  EXPECT_GT(reference.first, 0);
  EXPECT_GT(reference.second, 0);
  EXPECT_EQ(counters_at(2), reference);
  EXPECT_EQ(counters_at(8), reference);
}

}  // namespace
}  // namespace sesp
