// Tests for the executable lower-bound constructions (Theorems 4.2/4.3, 5.1,
// 6.5). Each adversary must (a) produce a certified violation against the
// matching cheating algorithm and (b) fail to certify a violation against
// the correct algorithm.

#include <gtest/gtest.h>

#include "adversary/contamination.hpp"
#include "adversary/periodic_attack.hpp"
#include "timing/admissibility.hpp"
#include "adversary/semisync_mp_retimer.hpp"
#include "adversary/semisync_retimer.hpp"
#include "adversary/sporadic_retimer.hpp"
#include "algorithms/mpm/broken_algs.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/smm/async_alg.hpp"
#include "algorithms/smm/broken_algs.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "analysis/bounds.hpp"
#include "sim/experiment.hpp"

namespace sesp {
namespace {

// --- Theorem 4.3: contamination in the periodic SMM ------------------------

TEST(ContaminationTest, SpreadStaysWithinRecurrenceBound) {
  const ProblemSpec spec{3, 9, 3};
  const auto base = TimingConstraints::periodic(std::vector<Duration>(
      static_cast<std::size_t>(smm_total_processes(spec.n, spec.b)),
      Duration(1)));
  PeriodicSmmFactory correct;
  const ContaminationReport report =
      run_contamination_experiment(spec, base, correct, Duration(1));
  EXPECT_TRUE(report.within_bound) << report.to_string();
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.survived) << report.to_string();
}

TEST(ContaminationTest, CheatingAlgorithmLosesSessions) {
  const ProblemSpec spec{4, 9, 3};
  const auto base = TimingConstraints::periodic(std::vector<Duration>(
      static_cast<std::size_t>(smm_total_processes(spec.n, spec.b)),
      Duration(1)));
  NoWaitPeriodicSmmFactory broken;
  const ContaminationReport report = run_contamination_experiment(
      spec, base, broken, Duration(1), /*slow_period_override=*/Duration(64));
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.survived) << report.to_string();
  EXPECT_LT(report.sessions, spec.s);
  // The no-communication cheater taints nobody: every other port is
  // oblivious to the slowed process, exactly the proof's scenario.
  EXPECT_EQ(report.untainted_ports, spec.n - 1);
}

TEST(ContaminationTest, ExactContaminationWithinTaintAndBound) {
  // The exact (baseline-aligned) contamination must be dominated by the
  // taint over-approximation and by the recurrence bound, subround by
  // subround — Lemma 4.4 in its literal form.
  for (const std::int32_t n : {4, 9, 16}) {
    const ProblemSpec spec{3, n, 3};
    const auto base = TimingConstraints::periodic(std::vector<Duration>(
        static_cast<std::size_t>(smm_total_processes(spec.n, spec.b)),
        Duration(1)));
    PeriodicSmmFactory correct;
    const ContaminationReport report =
        run_contamination_experiment(spec, base, correct, Duration(1));
    ASSERT_TRUE(report.exact_available) << report.to_string();
    EXPECT_TRUE(report.exact_within_taint) << report.to_string();
    EXPECT_TRUE(report.exact_within_bound) << report.to_string();
    ASSERT_EQ(report.exact_contaminated.size(),
              report.tainted_processes.size());
    // Cumulative counts are nondecreasing.
    for (std::size_t t = 1; t < report.exact_contaminated.size(); ++t)
      EXPECT_GE(report.exact_contaminated[t], report.exact_contaminated[t - 1]);
  }
}

TEST(ContaminationTest, DeafCheaterHasNoExactContamination) {
  // The no-communication cheater never reads anything p' influences, so its
  // exact contamination is zero everywhere — matching untainted_ports.
  const ProblemSpec spec{4, 6, 3};
  const auto base = TimingConstraints::periodic(std::vector<Duration>(
      static_cast<std::size_t>(smm_total_processes(spec.n, spec.b)),
      Duration(1)));
  NoWaitPeriodicSmmFactory broken;
  const ContaminationReport report = run_contamination_experiment(
      spec, base, broken, Duration(1), Duration(64));
  ASSERT_TRUE(report.exact_available);
  for (const std::int64_t v : report.exact_contaminated) EXPECT_EQ(v, 0);
}

TEST(ContaminationTest, BoundHoldsAcrossInstances) {
  for (const std::int32_t n : {4, 9, 16}) {
    for (const std::int32_t b : {2, 3, 4}) {
      const ProblemSpec spec{2, n, b};
      const auto base = TimingConstraints::periodic(std::vector<Duration>(
          static_cast<std::size_t>(smm_total_processes(n, b)), Duration(1)));
      PeriodicSmmFactory correct;
      const ContaminationReport report =
          run_contamination_experiment(spec, base, correct, Duration(1));
      EXPECT_TRUE(report.within_bound)
          << "n=" << n << " b=" << b << "\n" << report.to_string();
      EXPECT_TRUE(report.survived)
          << "n=" << n << " b=" << b << "\n" << report.to_string();
    }
  }
}

// --- Theorem 4.2: periodic MP, the d2 term -----------------------------------

TEST(PeriodicAttackTest, CertifiesViolationAgainstNoWaitAlgorithm) {
  const ProblemSpec spec{4, 4, 2};
  NoWaitPeriodicMpmFactory broken;  // idles after its s steps, deaf
  const PeriodicAttackResult result =
      attack_periodic_mpm(spec, Duration(1), /*d2=*/Duration(100), broken);
  ASSERT_TRUE(result.ran) << result.failure;
  EXPECT_TRUE(result.idles_before_d2);
  ASSERT_TRUE(result.constructed);
  EXPECT_TRUE(result.admissibility.admissible)
      << result.admissibility.violation;
  EXPECT_LT(result.sessions, spec.s);
  EXPECT_TRUE(result.certificate);
}

TEST(PeriodicAttackTest, NothingToExploitAgainstAp) {
  const ProblemSpec spec{4, 4, 2};
  PeriodicMpmFactory correct;
  const PeriodicAttackResult result =
      attack_periodic_mpm(spec, Duration(1), Duration(100), correct);
  ASSERT_TRUE(result.ran) << result.failure;
  // A(p) waits for everyone's done message; nothing idles before d2.
  EXPECT_FALSE(result.idles_before_d2);
  EXPECT_FALSE(result.certificate);
  // And the probe respects the lower bound max{s*c_max, d2}.
  EXPECT_GE(result.probe_termination, Duration(100));
}

TEST(PeriodicAttackTest, SmallD2MakesTheStepTermBind) {
  // With d2 tiny, even the deaf algorithm legitimately terminates after d2
  // (its s-th step comes later), so there is nothing to exploit on the d2
  // term — the s*c_max term is what stops it, and that one it satisfies.
  const ProblemSpec spec{4, 4, 2};
  NoWaitPeriodicMpmFactory broken;
  const PeriodicAttackResult result =
      attack_periodic_mpm(spec, Duration(1), /*d2=*/Duration(1), broken);
  ASSERT_TRUE(result.ran) << result.failure;
  EXPECT_FALSE(result.idles_before_d2);
  EXPECT_GE(result.probe_termination, Ratio(spec.s) * Duration(1));
}

// --- Theorem 5.1: semi-synchronous SMM retiming -----------------------------

TEST(SemiSyncRetimerTest, CertifiesViolationAgainstSubBoundCheater) {
  const ProblemSpec spec{4, 8, 2};
  // B = min{floor(11/2), log_2 8} = 3. A cheater idling after 2 steps per
  // session runs 2*3+1 = 7 rounds < B*(s-1) = 9 rounds — strictly below the
  // Theorem 5.1 bound, so the retimer must certify a violation.
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(12));
  TooFewStepsSmmFactory broken(/*steps_per_session=*/2);
  const SemiSyncRetimingResult result =
      attack_semisync_smm(spec, constraints, broken);
  ASSERT_TRUE(result.constructed) << result.failure;
  EXPECT_TRUE(result.order_consistent) << result.to_string();
  EXPECT_TRUE(result.replay_ok) << result.to_string();
  EXPECT_TRUE(result.split_properties_ok) << result.to_string();
  EXPECT_TRUE(result.admissibility.admissible) << result.to_string();
  EXPECT_LT(result.sessions, spec.s) << result.to_string();
  EXPECT_TRUE(result.certificate) << result.to_string();
}

TEST(SemiSyncRetimerTest, HalfSlackCheaterSitsExactlyAtTheThreshold) {
  // Step counting with floor(c2/2c1) steps per session terminates at
  // (B*(s-1)+1)*c2 — one round *above* the lower bound, so the construction
  // goes through with all proof obligations but yields exactly s sessions:
  // the bound is tight.
  const ProblemSpec spec{4, 8, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(12));
  HalfSlackSmmFactory boundary;
  const SemiSyncRetimingResult result =
      attack_semisync_smm(spec, constraints, boundary);
  ASSERT_TRUE(result.constructed) << result.failure;
  EXPECT_TRUE(result.order_consistent) << result.to_string();
  EXPECT_TRUE(result.replay_ok) << result.to_string();
  EXPECT_TRUE(result.admissibility.admissible) << result.to_string();
  EXPECT_LE(result.sessions, result.chunks) << result.to_string();
  EXPECT_FALSE(result.certificate) << result.to_string();
}

TEST(SemiSyncRetimerTest, NoCertificateAgainstCorrectStepCounting) {
  const ProblemSpec spec{3, 8, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(12));
  SemiSyncSmmFactory correct(SmmSemiSyncStrategy::kStepCount);
  const SemiSyncRetimingResult result =
      attack_semisync_smm(spec, constraints, correct);
  // The construction itself may well go through (it always can), but the
  // correct algorithm runs long enough that the reordered computation keeps
  // >= s sessions — no violation certificate.
  if (result.constructed) {
    EXPECT_TRUE(result.order_consistent) << result.to_string();
    EXPECT_TRUE(result.replay_ok) << result.to_string();
    EXPECT_TRUE(result.admissibility.admissible) << result.to_string();
    EXPECT_FALSE(result.certificate) << result.to_string();
    EXPECT_GE(result.sessions, spec.s);
  }
}

TEST(SemiSyncRetimerTest, ReorderedSessionsAtMostChunks) {
  const ProblemSpec spec{5, 8, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(12));
  TooFewStepsSmmFactory broken(/*steps_per_session=*/3);
  const SemiSyncRetimingResult result =
      attack_semisync_smm(spec, constraints, broken);
  ASSERT_TRUE(result.constructed) << result.failure;
  EXPECT_LE(result.sessions, result.chunks) << result.to_string();
}

TEST(SemiSyncRetimerTest, SafeBMatchesFormula) {
  const ProblemSpec spec{2, 8, 2};
  // (c2-c1)/(2c1) = 11/2 -> 5; log_2 8 = 3 -> min = 3.
  EXPECT_EQ(semisync_safe_B(spec, Duration(1), Duration(12)), 3);
  const ProblemSpec big{2, 256, 2};
  EXPECT_EQ(semisync_safe_B(big, Duration(1), Duration(12)), 5);
}

TEST(SemiSyncRetimerTest, TrivialBoundBailsOut) {
  const ProblemSpec spec{3, 4, 2};
  // c2 <= 2c1: B = 0, bound trivial.
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(2));
  HalfSlackSmmFactory broken;
  const SemiSyncRetimingResult result =
      attack_semisync_smm(spec, constraints, broken);
  EXPECT_FALSE(result.constructed);
}

// --- [2] Theorem 1: asynchronous SM round bound ------------------------------

TEST(AsyncRetimerTest, CertifiesViolationAgainstSubBoundRoundCheater) {
  const ProblemSpec spec{4, 8, 2};  // floor(log_2 8) = 3, bound 3*(s-1) = 9
  // 2 steps per session -> 7 rounds < 9: strictly below the bound.
  TooFewStepsSmmFactory broken(2);
  const SemiSyncRetimingResult result = attack_async_smm(spec, broken);
  ASSERT_TRUE(result.constructed) << result.failure;
  EXPECT_EQ(result.B, 3);
  EXPECT_TRUE(result.order_consistent) << result.to_string();
  EXPECT_TRUE(result.replay_ok) << result.to_string();
  EXPECT_TRUE(result.admissibility.admissible) << result.to_string();
  EXPECT_TRUE(result.certificate) << result.to_string();

  // The reordered computation is admissible in the *asynchronous* model too
  // (it has no constraints), so it is a genuine async counterexample.
  ASSERT_TRUE(result.reordered_trace.has_value());
  const auto async_adm = check_admissible(*result.reordered_trace,
                                          TimingConstraints::asynchronous());
  EXPECT_TRUE(async_adm.admissible) << async_adm.violation;
}

TEST(AsyncRetimerTest, NoCertificateAgainstKnowledgeRounds) {
  const ProblemSpec spec{3, 8, 2};
  AsyncSmmFactory correct;
  const SemiSyncRetimingResult result = attack_async_smm(spec, correct);
  if (result.constructed) {
    EXPECT_FALSE(result.certificate) << result.to_string();
    EXPECT_GE(result.sessions, spec.s);
  }
}

TEST(AsyncRetimerTest, TrivialWhenNSmallerThanB) {
  const ProblemSpec spec{3, 2, 4};  // floor(log_4 2) = 0
  TooFewStepsSmmFactory broken(1);
  const SemiSyncRetimingResult result = attack_async_smm(spec, broken);
  EXPECT_FALSE(result.constructed);
}

// --- [4]: semi-synchronous MPM retiming --------------------------------------

TEST(SemiSyncMpRetimerTest, CertifiesViolationAgainstSubBoundCheater) {
  const ProblemSpec spec{4, 3, 2};
  // c1=1, c2=24, d2=48: B = min{floor(23/2), floor(48/4)} = 11.
  const auto constraints = TimingConstraints::semi_synchronous(
      Duration(1), Duration(24), Duration(48));
  ASSERT_EQ(semisync_mp_safe_B(constraints), 11);
  // 8 steps/session -> 25 rounds < 11*(s-1) = 33: strictly below the bound.
  TooFewStepsMpmFactory broken(8);
  const SporadicRetimingResult result =
      attack_semisync_mpm(spec, constraints, broken);
  ASSERT_TRUE(result.constructed) << result.failure;
  EXPECT_TRUE(result.order_consistent) << result.to_string();
  EXPECT_TRUE(result.receives_preserved) << result.to_string();
  EXPECT_TRUE(result.admissibility.admissible) << result.to_string();
  EXPECT_LT(result.sessions, spec.s) << result.to_string();
  EXPECT_TRUE(result.certificate) << result.to_string();
}

TEST(SemiSyncMpRetimerTest, NoCertificateAgainstCorrectAlgorithm) {
  const ProblemSpec spec{3, 3, 2};
  const auto constraints = TimingConstraints::semi_synchronous(
      Duration(1), Duration(24), Duration(48));
  SemiSyncMpmFactory correct;
  const SporadicRetimingResult result =
      attack_semisync_mpm(spec, constraints, correct);
  if (result.constructed) {
    EXPECT_TRUE(result.order_consistent) << result.to_string();
    EXPECT_TRUE(result.receives_preserved) << result.to_string();
    EXPECT_TRUE(result.admissibility.admissible) << result.to_string();
    EXPECT_FALSE(result.certificate) << result.to_string();
  }
}

TEST(SemiSyncMpRetimerTest, TightConstantsRefused) {
  // c2 < 4*c1: the base schedule cannot exist within [c1, c2].
  const auto constraints = TimingConstraints::semi_synchronous(
      Duration(1), Duration(3), Duration(48));
  EXPECT_EQ(semisync_mp_safe_B(constraints), 0);
  const ProblemSpec spec{3, 3, 2};
  TooFewStepsMpmFactory broken(1);
  const SporadicRetimingResult result =
      attack_semisync_mpm(spec, constraints, broken);
  EXPECT_FALSE(result.constructed);
}

// --- Theorem 6.5: sporadic MPM retiming --------------------------------------

TEST(SporadicRetimerTest, CertifiesViolationAgainstSubBoundCheater) {
  const ProblemSpec spec{4, 3, 2};
  // c1=1, d1=2, d2=42: u=40, B=10, K=2*42/(42-20)=42/11. A step counter
  // idling after 8 steps per session runs 8*3+1 = 25 rounds, strictly below
  // B*(s-1) = 30 rounds of the Theorem 6.5 bound.
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(2), Duration(42));
  TooFewStepsMpmFactory broken(/*steps_per_session=*/8);
  const SporadicRetimingResult result =
      attack_sporadic_mpm(spec, constraints, broken);
  ASSERT_TRUE(result.constructed) << result.failure;
  EXPECT_TRUE(result.order_consistent) << result.to_string();
  EXPECT_TRUE(result.receives_preserved) << result.to_string();
  EXPECT_TRUE(result.admissibility.admissible) << result.to_string();
  EXPECT_LT(result.sessions, spec.s) << result.to_string();
  EXPECT_TRUE(result.certificate) << result.to_string();
}

TEST(SporadicRetimerTest, ImpatientAspAboveBoundEscapesCertificate) {
  // A(sp) with B' = floor(u/4c1) still waits for real messages, so under
  // the base schedule it terminates (slightly) above the lower bound; the
  // construction goes through but cannot certify a violation.
  const ProblemSpec spec{4, 3, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(2), Duration(42));
  ImpatientSporadicMpmFactory impatient;
  const SporadicRetimingResult result =
      attack_sporadic_mpm(spec, constraints, impatient);
  ASSERT_TRUE(result.constructed) << result.failure;
  EXPECT_TRUE(result.order_consistent) << result.to_string();
  EXPECT_TRUE(result.receives_preserved) << result.to_string();
  EXPECT_TRUE(result.admissibility.admissible) << result.to_string();
  EXPECT_LE(result.sessions, result.chunks) << result.to_string();
}

TEST(SporadicRetimerTest, NoCertificateAgainstCorrectAsp) {
  const ProblemSpec spec{3, 3, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(2), Duration(42));
  SporadicMpmFactory correct;
  const SporadicRetimingResult result =
      attack_sporadic_mpm(spec, constraints, correct);
  if (result.constructed) {
    EXPECT_TRUE(result.order_consistent) << result.to_string();
    EXPECT_TRUE(result.receives_preserved) << result.to_string();
    EXPECT_TRUE(result.admissibility.admissible) << result.to_string();
    EXPECT_FALSE(result.certificate) << result.to_string();
  }
}

TEST(SporadicRetimerTest, DegenerateUncertaintyBailsOut) {
  const ProblemSpec spec{3, 3, 2};
  // u < 4*c1: B = 0.
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(5), Duration(7));
  SporadicMpmFactory correct;
  const SporadicRetimingResult result =
      attack_sporadic_mpm(spec, constraints, correct);
  EXPECT_FALSE(result.constructed);
  EXPECT_NE(result.failure.find("B < 1"), std::string::npos);
}

TEST(SporadicRetimerTest, WorksWithZeroD1) {
  const ProblemSpec spec{3, 3, 2};
  // d1 = 0: u = d2, K = 4*c1.
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(0), Duration(40));
  ImpatientSporadicMpmFactory broken;
  const SporadicRetimingResult result =
      attack_sporadic_mpm(spec, constraints, broken);
  ASSERT_TRUE(result.constructed) << result.failure;
  EXPECT_TRUE(result.admissibility.admissible) << result.to_string();
}

}  // namespace
}  // namespace sesp
