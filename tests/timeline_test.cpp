#include "analysis/timeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "sim/experiment.hpp"

namespace sesp {
namespace {

std::size_t count_lines(const std::string& s) {
  std::size_t lines = 0;
  for (const char c : s)
    if (c == '\n') ++lines;
  return lines;
}

TEST(TimelineTest, EmptyTrace) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  EXPECT_EQ(render_timeline(tc), "(empty trace)\n");
}

TEST(TimelineTest, SmmLanesAndGlyphs) {
  const ProblemSpec spec{2, 3, 3};
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  const auto constraints = TimingConstraints::periodic(
      std::vector<Duration>(static_cast<std::size_t>(total), Duration(1)));
  PeriodicSmmFactory factory;
  FixedPeriodScheduler sched(total, Duration(1));
  const SmmOutcome out = run_smm_once(spec, constraints, factory, sched);
  ASSERT_TRUE(out.run.completed);

  const std::string art = render_timeline(out.run.trace);
  // One lane per process plus the session line and the axis line.
  EXPECT_GE(count_lines(art), static_cast<std::size_t>(total) + 2);
  // Port processes are starred, port and idle glyphs appear.
  EXPECT_NE(art.find("p0*"), std::string::npos);
  EXPECT_NE(art.find('P'), std::string::npos);
  EXPECT_NE(art.find('o'), std::string::npos);
  EXPECT_NE(art.find("sessions"), std::string::npos);
  // No network lane for shared memory.
  EXPECT_EQ(art.find("net"), std::string::npos);
}

TEST(TimelineTest, MpmShowsNetworkLane) {
  const ProblemSpec spec{2, 2, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(3));
  SporadicMpmFactory factory;
  FixedPeriodScheduler sched(spec.n, Duration(1));
  FixedDelay delay{Duration(3)};
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, sched, delay);
  ASSERT_TRUE(out.run.completed);

  const std::string art = render_timeline(out.run.trace);
  EXPECT_NE(art.find("net"), std::string::npos);
  EXPECT_NE(art.find('d'), std::string::npos);

  TimelineOptions no_net;
  no_net.show_network = false;
  EXPECT_EQ(render_timeline(out.run.trace, no_net).find("net"),
            std::string::npos);
}

TEST(TimelineTest, RespectsWidthAndLaneCap) {
  const ProblemSpec spec{2, 4, 2};
  const auto constraints = TimingConstraints::synchronous(1, 1);
  SporadicMpmFactory factory;  // any terminating algorithm works
  FixedPeriodScheduler sched(spec.n, Duration(1));
  FixedDelay delay{Duration(1)};
  const auto out = run_mpm_once(
      spec, TimingConstraints::sporadic(Duration(1), Duration(1), Duration(1)),
      factory, sched, delay);
  ASSERT_TRUE(out.run.completed);

  TimelineOptions narrow;
  narrow.width = 40;
  narrow.max_processes = 2;
  const std::string art = render_timeline(out.run.trace, narrow);
  EXPECT_NE(art.find("2 more lanes hidden"), std::string::npos);
  // Lane lines (the ones with the '|' origin mark) respect the width plus
  // the small label margin; annotation lines may carry a trailing legend.
  std::istringstream lines(art);
  std::string line;
  while (std::getline(lines, line))
    if (line.find('|') != std::string::npos) {
      EXPECT_LE(line.size(), 50u);
    }
}

TEST(TimelineTest, SessionMarksMatchGreedyCount) {
  const ProblemSpec spec{3, 2, 2};
  const auto constraints = TimingConstraints::synchronous(2, 2);
  // Synchronous: trivially s sessions.
  FixedPeriodScheduler sched(spec.n, Duration(2));
  FixedDelay delay{Duration(2)};
  SporadicMpmFactory wrong_model_but_fine(0);  // takes steps, terminates
  const auto out = run_mpm_once(
      spec, TimingConstraints::sporadic(Duration(2), Duration(2), Duration(2)),
      wrong_model_but_fine, sched, delay);
  ASSERT_TRUE(out.run.completed);
  const std::string art = render_timeline(out.run.trace);
  // The rendered count equals the verifier's.
  EXPECT_NE(art.find("(" + std::to_string(out.verdict.sessions) +
                     " sessions"),
            std::string::npos);
}

}  // namespace
}  // namespace sesp
