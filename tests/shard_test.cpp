// The sharded-execution contracts (docs/robustness.md "Sharded execution"):
//
//  1. Chunking: range boundaries are a pure function of the slot count, so
//     any number of workers — including a late or restarted one — agrees on
//     them.
//  2. Claim files: O_EXCL generation arbitration (claim, steal, renew,
//     complete), with torn claims counting as expired.
//  3. Merge: worker journals fold into one canonical slot-ordered journal —
//     non-failure payloads win, ties break to the lowest worker id, lease
//     events are omitted — and the merged bytes are a pure function of the
//     computed payloads.
//  4. Kill-and-steal determinism: every sweep family, executed by any
//     number of cooperating workers with any interleaving, any job count,
//     and a worker killed mid-range (torn journal + stale leases), yields a
//     report equal to the plain serial run and byte-identical merged
//     journals.
//
// Workers here are simulated in-process and run sequentially, one partial
// turn at a time (SESP_STOP_AFTER-style stops), which exercises the same
// lease/steal/gather code paths as real processes with full determinism;
// cli_test drives the real multi-process path through sesp_shard.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "adversary/exhaustive.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "conformance/harness.hpp"
#include "recovery/journal.hpp"
#include "recovery/payload.hpp"
#include "recovery/supervisor.hpp"
#include "shard/lease.hpp"
#include "shard/shard.hpp"
#include "sim/experiment.hpp"
#include "support/test_support.hpp"

namespace sesp {
namespace {

namespace fs = std::filesystem;
using test_support::JobsGuard;

constexpr char kTool[] = "shard_test";
constexpr std::uint64_t kDigest = 99;

std::string temp_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- chunking ---------------------------------------------------------------

TEST(ShardChunkTest, BoundariesAreWorkerCountIndependent) {
  EXPECT_EQ(shard::shard_chunk(0), 1u);
  EXPECT_EQ(shard::shard_chunk(1), 1u);
  EXPECT_EQ(shard::shard_chunk(64), 1u);
  EXPECT_EQ(shard::shard_chunk(65), 2u);
  EXPECT_EQ(shard::shard_chunk(1000), 16u);
  // Never more than 64 ranges, never an empty one.
  for (const std::uint64_t count : {1u, 7u, 64u, 65u, 129u, 4096u}) {
    const std::uint64_t chunk = shard::shard_chunk(count);
    ASSERT_GE(chunk, 1u);
    EXPECT_LE((count + chunk - 1) / chunk, 64u) << "count " << count;
  }
}

// --- claim files ------------------------------------------------------------

TEST(ClaimFileTest, ClaimStealRenewCompleteRoundTrip) {
  const std::string dir = temp_dir("claims_unit");
  ASSERT_TRUE(fs::create_directories(dir));

  // Unclaimed range reads as gen 0.
  EXPECT_FALSE(shard::read_claim(dir, "stage a", 0).exists());

  // Generation 1 is claimed exactly once.
  std::string path;
  ASSERT_TRUE(shard::create_claim(dir, "stage a", 0, 4, 1, 7, 1000, &path));
  EXPECT_FALSE(shard::create_claim(dir, "stage a", 0, 4, 1, 8, 2000,
                                   nullptr));
  shard::ClaimState state = shard::read_claim(dir, "stage a", 0);
  ASSERT_TRUE(state.exists());
  EXPECT_TRUE(state.valid);
  EXPECT_EQ(state.gen, 1);
  EXPECT_EQ(state.worker, 7);
  EXPECT_EQ(state.lo, 0u);
  EXPECT_EQ(state.len, 4u);
  EXPECT_EQ(state.deadline_ms, 1000);
  EXPECT_FALSE(state.done);
  EXPECT_FALSE(state.expired(1000));
  EXPECT_TRUE(state.expired(1001));

  // Renewal and completion rewrite the owned file atomically.
  ASSERT_TRUE(shard::rewrite_claim(state.path, 7, 0, 4, 5000, true));
  state = shard::read_claim(dir, "stage a", 0);
  EXPECT_EQ(state.gen, 1);
  EXPECT_EQ(state.deadline_ms, 5000);
  EXPECT_TRUE(state.done);

  // Stealing creates the next generation; reads follow the highest.
  ASSERT_TRUE(shard::create_claim(dir, "stage a", 0, 4, 2, 9, 9000, &path));
  state = shard::read_claim(dir, "stage a", 0);
  EXPECT_EQ(state.gen, 2);
  EXPECT_EQ(state.worker, 9);
  EXPECT_FALSE(state.done);

  // A torn claim (killed mid-rename) is expired, never trusted.
  {
    std::ofstream torn(shard::claim_path(dir, "stage a", 0, 3));
    torn << "sesp-claim/1 worker=9 lo=0";
  }
  state = shard::read_claim(dir, "stage a", 0);
  EXPECT_EQ(state.gen, 3);
  EXPECT_FALSE(state.valid);
  EXPECT_TRUE(state.expired(0));

  // Distinct stages never collide, even when sanitization would merge
  // their printable names.
  EXPECT_NE(shard::stage_key("sweep#2"), shard::stage_key("sweep_2"));
  ASSERT_TRUE(shard::create_claim(dir, "sweep#2", 0, 1, 1, 1, 1, nullptr));
  ASSERT_TRUE(shard::create_claim(dir, "sweep_2", 0, 1, 1, 2, 1, nullptr));
  fs::remove_all(dir);
}

// --- manifest ---------------------------------------------------------------

TEST(ManifestTest, FirstArriverWritesEveryoneElseValidates) {
  const std::string dir = temp_dir("manifest_unit");
  std::string error;
  ASSERT_TRUE(shard::ensure_shard_dir(dir, &error)) << error;
  ASSERT_TRUE(shard::ensure_manifest(dir, kTool, kDigest, &error)) << error;
  // Idempotent for the same (tool, config)...
  EXPECT_TRUE(shard::ensure_manifest(dir, kTool, kDigest, &error));
  std::string tool;
  std::uint64_t digest = 0;
  ASSERT_TRUE(shard::read_manifest(dir, &tool, &digest, &error)) << error;
  EXPECT_EQ(tool, kTool);
  EXPECT_EQ(digest, kDigest);
  // ...and an error for any other: the shard analogue of resuming the
  // wrong journal.
  EXPECT_FALSE(shard::ensure_manifest(dir, kTool, kDigest + 1, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(shard::ensure_manifest(dir, "other_tool", kDigest, &error));
  fs::remove_all(dir);
}

// --- merge ------------------------------------------------------------------

std::unique_ptr<recovery::RunJournal> worker_journal(const std::string& dir,
                                                     int worker,
                                                     std::uint64_t digest) {
  std::string error;
  auto journal = recovery::RunJournal::create(
      dir + "/worker-" + std::to_string(worker) + ".journal", kTool, digest,
      &error);
  EXPECT_NE(journal, nullptr) << error;
  if (journal) journal->set_fsync(false);
  return journal;
}

TEST(MergeTest, DeduplicatesUpgradesFailuresAndDropsLeases) {
  const std::string dir = temp_dir("merge_unit");
  std::string error;
  ASSERT_TRUE(shard::ensure_shard_dir(dir, &error)) << error;
  ASSERT_TRUE(shard::ensure_manifest(dir, kTool, kDigest, &error)) << error;

  recovery::TaskFailure failure;
  failure.kind = recovery::TaskFailure::Kind::kException;
  failure.attempts = 2;
  failure.detail = "boom";
  {
    auto j0 = worker_journal(dir, 0, kDigest);
    ASSERT_TRUE(j0->append("alpha", 0, "from worker 0"));
    ASSERT_TRUE(j0->append("alpha", 2, recovery::encode_task_failure(
                                           failure)));
    recovery::LeaseRecord lease;
    lease.worker = 0;
    lease.stage = "alpha";
    lease.lo = 0;
    lease.len = 4;
    lease.deadline_ms = 0;
    lease.event = "done";
    ASSERT_TRUE(j0->append_lease(lease));

    auto j1 = worker_journal(dir, 1, kDigest);
    ASSERT_TRUE(j1->append("alpha", 1, "from worker 1"));
    // Duplicate of slot 0: both non-failure, the lowest worker id wins.
    ASSERT_TRUE(j1->append("alpha", 0, "duplicate from worker 1"));
    // Duplicate of slot 2: a successful retry upgrades the failure.
    ASSERT_TRUE(j1->append("alpha", 2, "recovered"));
  }

  const shard::MergeStats merge = shard::merge_shard_dir(dir);
  ASSERT_TRUE(merge.ok) << merge.error;
  EXPECT_EQ(merge.workers, 2);
  EXPECT_EQ(merge.records, 3);
  EXPECT_EQ(merge.duplicates, 2);
  EXPECT_EQ(merge.lease_events, 1);
  EXPECT_EQ(merge.ranges_done, 1);
  EXPECT_EQ(merge.out_path, dir + "/merged.journal");

  auto merged = recovery::RunJournal::open_resume(merge.out_path, &error);
  ASSERT_NE(merged, nullptr) << error;
  EXPECT_TRUE(merged->matches(kTool, kDigest));
  EXPECT_EQ(merged->records(), 3);
  ASSERT_NE(merged->lookup("alpha", 0), nullptr);
  EXPECT_EQ(*merged->lookup("alpha", 0), "from worker 0");
  EXPECT_EQ(*merged->lookup("alpha", 1), "from worker 1");
  EXPECT_EQ(*merged->lookup("alpha", 2), "recovered");
  EXPECT_TRUE(merged->leases().empty());

  // Merging again produces byte-identical output.
  const std::string first = read_file(merge.out_path);
  const shard::MergeStats again =
      shard::merge_shard_dir(dir, dir + "/merged2.journal");
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(read_file(again.out_path), first);

  // A journal written under a different configuration poisons the merge.
  { worker_journal(dir, 2, kDigest + 1); }
  EXPECT_FALSE(shard::merge_shard_dir(dir).ok);
  fs::remove_all(dir);
}

// --- kill-and-steal determinism across the sweep families -------------------
//
// run_sharded() executes one sweep with `workers` simulated workers taking
// sequential partial turns (each stops after `stop_after` checkpoints, like
// SESP_STOP_AFTER) until some worker's turn completes uninterrupted — that
// worker has gathered or computed every slot, so its result is the full
// report. With kill_worker >= 0, that worker dies for good after its first
// turn: its journal tail is torn mid-record and its claim files are left to
// expire, exactly the residue of a SIGKILL, and the survivors must steal.

template <typename Result>
std::optional<Result> worker_turn(const std::string& dir, int worker,
                                  std::int64_t stop_after,
                                  const std::function<Result()>& run) {
  const std::string path =
      dir + "/worker-" + std::to_string(worker) + ".journal";
  std::string error;
  auto journal = fs::exists(path)
                     ? recovery::RunJournal::open_resume(path, &error)
                     : recovery::RunJournal::create(path, kTool, kDigest,
                                                    &error);
  if (!journal) {
    ADD_FAILURE() << "worker " << worker << ": " << error;
    return std::nullopt;
  }
  journal->set_fsync(false);

  shard::ShardOptions sopt;
  sopt.dir = dir;
  sopt.worker_id = worker;
  sopt.lease_ms = 60;  // short: a dead worker's leases expire within a turn
  sopt.poll_ms = 5;
  auto shard = shard::ShardContext::open(sopt, &error);
  if (!shard) {
    ADD_FAILURE() << "worker " << worker << ": " << error;
    return std::nullopt;
  }

  recovery::Supervisor sup(std::move(journal), {});
  sup.set_shard(shard.get());
  sup.set_stop_after(stop_after);
  recovery::Supervisor* prev = recovery::Supervisor::install(&sup);
  Result result = run();
  recovery::Supervisor::install(prev);
  if (sup.interrupted()) return std::nullopt;
  return result;
}

void tear_journal_tail(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (!ec && size > 8) fs::resize_file(path, size - 5, ec);
}

template <typename Result>
Result run_sharded(const std::string& name, int workers, int jobs,
                   std::int64_t stop_after, int kill_worker,
                   const std::function<Result()>& run,
                   std::string* merged_bytes) {
  const std::string dir = temp_dir(name);
  std::string error;
  if (!shard::ensure_shard_dir(dir, &error) ||
      !shard::ensure_manifest(dir, kTool, kDigest, &error)) {
    ADD_FAILURE() << error;
    return Result{};
  }
  JobsGuard guard(jobs);
  bool killed = false;
  for (int round = 0; round < 500; ++round) {
    for (int w = 0; w < workers; ++w) {
      if (killed && w == kill_worker) continue;  // dead for good
      const auto result = worker_turn<Result>(dir, w, stop_after, run);
      if (result) {
        if (merged_bytes) {
          const shard::MergeStats merge = shard::merge_shard_dir(dir);
          EXPECT_TRUE(merge.ok) << merge.error;
          *merged_bytes = read_file(merge.out_path);
        }
        fs::remove_all(dir);
        return *result;
      }
      if (w == kill_worker && !killed) {
        killed = true;
        tear_journal_tail(dir + "/worker-" + std::to_string(w) +
                          ".journal");
      }
    }
  }
  ADD_FAILURE() << name << " never completed";
  fs::remove_all(dir);
  return Result{};
}

struct ShardConfig {
  const char* tag;
  int workers;
  int jobs;
  int kill_worker;  // -1 = nobody dies
};

// The determinism contract's matrix: a solo worker, three clean workers,
// and three workers with one SIGKILLed mid-range, at jobs 1/2/8 — every
// cell must equal the plain serial reference and produce byte-identical
// merged journals.
constexpr ShardConfig kConfigs[] = {
    {"solo", 1, 1, -1},   {"trio", 3, 2, -1},    {"kill_j1", 3, 1, 1},
    {"kill_j2", 3, 2, 1}, {"kill_j8", 3, 8, 1},
};

template <typename Result>
void expect_sharded_determinism(const std::string& name,
                                const Result& reference,
                                const std::function<Result()>& run) {
  std::string canonical;
  for (const ShardConfig& cfg : kConfigs) {
    std::string merged;
    const Result got =
        run_sharded<Result>(name + "_" + cfg.tag, cfg.workers, cfg.jobs, 2,
                            cfg.kill_worker, run, &merged);
    EXPECT_EQ(got, reference) << cfg.tag;
    EXPECT_FALSE(merged.empty()) << cfg.tag;
    if (canonical.empty()) canonical = merged;
    else EXPECT_EQ(merged, canonical) << cfg.tag;
  }
}

TEST(ShardKillStealTest, WorstCaseFamilyIsByteIdentical) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints = TimingConstraints::semi_synchronous(
      Duration(1), Duration(2), Duration(3));
  SemiSyncMpmFactory factory;
  JobsGuard serial(1);
  const WorstCase reference =
      mpm_worst_case(spec, constraints, factory, 4);
  ASSERT_GT(reference.runs, 0);
  expect_sharded_determinism<WorstCase>(
      "shard_worst", reference,
      [&] { return mpm_worst_case(spec, constraints, factory, 4); });
}

TEST(ShardKillStealTest, DegradationGridIsByteIdentical) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints = TimingConstraints::semi_synchronous(
      Duration(1), Duration(2), Duration(3));
  SemiSyncMpmFactory factory;
  JobsGuard serial(1);
  const DegradationReport reference =
      mpm_degradation(spec, constraints, factory);
  ASSERT_FALSE(reference.cells.empty());
  expect_sharded_determinism<DegradationReport>(
      "shard_degradation", reference,
      [&] { return mpm_degradation(spec, constraints, factory); });
}

TEST(ShardKillStealTest, ChaosSweepIsByteIdentical) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints = TimingConstraints::semi_synchronous(
      Duration(1), Duration(3), Duration(4));
  SemiSyncMpmFactory factory;
  MpmRunLimits limits;
  limits.max_steps = 20'000;
  JobsGuard serial(1);
  const ChaosReport reference =
      mpm_chaos_sweep(spec, constraints, factory, 16, 0xC4A05ULL, limits);
  ASSERT_EQ(reference.runs, 16);
  expect_sharded_determinism<ChaosReport>(
      "shard_chaos", reference, [&] {
        return mpm_chaos_sweep(spec, constraints, factory, 16, 0xC4A05ULL,
                               limits);
      });
}

TEST(ShardKillStealTest, ExhaustiveEnumerationIsByteIdentical) {
  const ProblemSpec spec{2, 2, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(0), Duration(2));
  SporadicMpmFactory factory;
  const std::vector<Duration> gaps{Duration(1), Duration(2)};
  const std::vector<Duration> delays{Duration(0), Duration(1), Duration(2)};
  // The budget-truncated walk: recovery_test proves truncated and complete
  // walks both survive kill-resume; the sharded layer only needs one, and
  // the truncated walk keeps the five-config matrix fast.
  JobsGuard serial(1);
  const ExhaustiveResult reference =
      explore_mpm(spec, constraints, factory, gaps, delays, 50);
  expect_sharded_determinism<ExhaustiveResult>(
      "shard_exhaustive", reference, [&] {
        return explore_mpm(spec, constraints, factory, gaps, delays, 50);
      });
}

TEST(ShardKillStealTest, ConformanceCampaignIsByteIdentical) {
  conformance::ConformanceConfig config;
  config.cases_per_cell = 5;
  config.seed = 11;
  config.minimize = false;
  config.jobs = 1;
  JobsGuard serial(1);
  const conformance::ConformanceReport reference =
      conformance::run_conformance(config);
  ASSERT_GT(reference.total_cases, 0);

  std::string canonical;
  for (const ShardConfig& cfg : kConfigs) {
    config.jobs = cfg.jobs;
    std::string merged;
    const conformance::ConformanceReport got =
        run_sharded<conformance::ConformanceReport>(
            std::string("shard_conformance_") + cfg.tag, cfg.workers,
            cfg.jobs, 2, cfg.kill_worker,
            [&] { return conformance::run_conformance(config); }, &merged);
    EXPECT_EQ(got.digest, reference.digest) << cfg.tag;
    EXPECT_EQ(got.summary(), reference.summary()) << cfg.tag;
    EXPECT_FALSE(merged.empty()) << cfg.tag;
    if (canonical.empty()) canonical = merged;
    else EXPECT_EQ(merged, canonical) << cfg.tag;
  }
}

}  // namespace
}  // namespace sesp
