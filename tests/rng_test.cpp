#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sesp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(13), 13u);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextIntInClosedRange) {
  Rng rng(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo = hit_lo || v == -3;
    hit_hi = hit_hi || v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, NextBoolProbabilityRoughlyRight) {
  Rng rng(5);
  int heads = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.next_bool(1, 4)) ++heads;
  EXPECT_GT(heads, 2000);
  EXPECT_LT(heads, 3000);
}

TEST(RngTest, NextRatioStaysInInterval) {
  Rng rng(9);
  const Ratio lo(1, 3), hi(5, 2);
  for (int i = 0; i < 500; ++i) {
    const Ratio r = rng.next_ratio(lo, hi, 16);
    EXPECT_GE(r, lo);
    EXPECT_LE(r, hi);
  }
}

TEST(RngTest, NextRatioHitsEndpoints) {
  Rng rng(13);
  const Ratio lo(0), hi(1);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    const Ratio r = rng.next_ratio(lo, hi, 4);
    saw_lo = saw_lo || r == lo;
    saw_hi = saw_hi || r == hi;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextRatioDegenerateInterval) {
  Rng rng(17);
  EXPECT_EQ(rng.next_ratio(Ratio(2), Ratio(2)), Ratio(2));
}

}  // namespace
}  // namespace sesp
