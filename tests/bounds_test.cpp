#include "analysis/bounds.hpp"

#include <gtest/gtest.h>

namespace sesp {
namespace {

using namespace bounds;

TEST(FloorLogTest, KnownValues) {
  EXPECT_EQ(floor_log(2, 1), 0);
  EXPECT_EQ(floor_log(2, 2), 1);
  EXPECT_EQ(floor_log(2, 3), 1);
  EXPECT_EQ(floor_log(2, 8), 3);
  EXPECT_EQ(floor_log(3, 26), 2);
  EXPECT_EQ(floor_log(3, 27), 3);
  EXPECT_EQ(floor_log(10, 999), 2);
}

TEST(FloorLogTest, LargeValuesNoOverflow) {
  EXPECT_EQ(floor_log(2, (1LL << 62)), 62);
}

TEST(BoundsTest, SyncTight) {
  const ProblemSpec spec{5, 8, 2};
  EXPECT_EQ(sync_tight(spec, Duration(3)), Time(15));
}

TEST(BoundsTest, PeriodicFormulas) {
  const ProblemSpec spec{4, 8, 2};
  // SM lower: max{4*3, floor(log_3 15)*1} = max{12, 2} = 12.
  EXPECT_EQ(periodic_sm_lower(spec, Duration(3), Duration(1)), Time(12));
  // Communication-dominated case: s*c_max small, log term big.
  const ProblemSpec wide{1, 500, 2};
  EXPECT_EQ(periodic_sm_lower(wide, Duration(1), Duration(10)),
            Time(10 * floor_log(3, 999)));
  EXPECT_EQ(periodic_mp_lower(spec, Duration(3), Duration(100)), Time(100));
  EXPECT_EQ(periodic_mp_lower(spec, Duration(3), Duration(1)), Time(12));
  EXPECT_EQ(periodic_mp_upper(spec, Duration(3), Duration(5)), Time(17));
  EXPECT_EQ(periodic_sm_upper(spec, Duration(2), /*latency=*/10),
            Time(4 * 2 + 16 * 2));
}

TEST(BoundsTest, SemiSyncFormulas) {
  const ProblemSpec spec{3, 8, 2};
  const Duration c1(1), c2(10);
  // SM lower: min{floor(10/2), floor(log_2 8)} * 10 * 2 = 3*10*2 = 60.
  EXPECT_EQ(semisync_sm_lower(spec, c1, c2), Time(60));
  // MP lower: min{5*10, d2+10} * 2.
  EXPECT_EQ(semisync_mp_lower(spec, c1, c2, Duration(100)), Time(100));
  EXPECT_EQ(semisync_mp_lower(spec, c1, c2, Duration(5)), Time(30));
  // MP upper: min{11*10, d2+10} * 2 + 10.
  EXPECT_EQ(semisync_mp_upper(spec, c1, c2, Duration(1000)), Time(230));
  EXPECT_EQ(semisync_mp_upper(spec, c1, c2, Duration(20)), Time(70));
  // SM upper with latency 4: min{110, (4+4)*10} * 2 + 10 = 170.
  EXPECT_EQ(semisync_sm_upper(spec, c1, c2, 4), Time(170));
}

TEST(BoundsTest, SporadicK) {
  // d1=0 => u=d2, K = 2*d2*c1/(d2/2) = 4*c1.
  EXPECT_EQ(sporadic_K(Duration(1), Duration(0), Duration(8)), Ratio(4));
  // d1=d2 => u=0, K = 2*d2*c1/d2 = 2*c1.
  EXPECT_EQ(sporadic_K(Duration(3), Duration(5), Duration(5)), Ratio(6));
}

TEST(BoundsTest, SporadicLowerDegeneratesToC1) {
  const ProblemSpec spec{4, 4, 2};
  // u = 0: lower = max{0, c1}*(s-1) = 3*c1.
  EXPECT_EQ(sporadic_mp_lower(spec, Duration(2), Duration(5), Duration(5)),
            Time(6));
}

TEST(BoundsTest, SporadicLowerGeneral) {
  const ProblemSpec spec{3, 4, 2};
  const Duration c1(1), d1(2), d2(10);  // u=8, B=floor(8/4)=2
  const Ratio K = sporadic_K(c1, d1, d2);  // 20/(10-4)=10/3
  EXPECT_EQ(sporadic_mp_lower(spec, c1, d1, d2),
            max(Ratio(2) * K, Ratio(1)) * Ratio(2));
}

TEST(BoundsTest, SporadicUpperBranches) {
  const ProblemSpec spec{3, 4, 2};
  const Duration c1(1), gamma(2);
  // Theorem 6.1 exact form: min{(floor(u/c1)+1)g+u+2g, d2+g}(s-2) + d2+2g.
  // u = 0: branch1 = 1*2+0+4 = 6 < branch2 = 7: 6*1 + 5+4 = 15.
  EXPECT_EQ(sporadic_mp_upper(spec, c1, Duration(5), Duration(5), gamma),
            Time(15));
  // u = 5: branch1 = 6*2+5+4 = 21 > branch2 = 7: 7*1 + 5+4 = 16.
  EXPECT_EQ(sporadic_mp_upper(spec, c1, Duration(0), Duration(5), gamma),
            Time(16));
  // s = 1 degenerates to one step.
  EXPECT_EQ(sporadic_mp_upper(ProblemSpec{1, 4, 2}, c1, Duration(0),
                              Duration(5), gamma),
            Time(2));
}

TEST(BoundsTest, AsyncFormulas) {
  const ProblemSpec spec{4, 16, 2};
  EXPECT_EQ(async_sm_lower_rounds(spec), 3 * 4);
  EXPECT_EQ(async_sm_upper_rounds(spec, 10), 4 * 14 + 1);
  EXPECT_EQ(async_mp_lower(spec, Duration(5)), Time(15));
  EXPECT_EQ(async_mp_upper(spec, Duration(2), Duration(5)), Time(23));
}

TEST(BoundsTest, LowerNeverExceedsUpper) {
  // Sweep instances; L <= U must hold cell-wise wherever both are defined
  // with comparable measures.
  for (const std::int64_t s : {1, 2, 3, 8}) {
    for (const std::int32_t n : {2, 4, 32}) {
      for (const std::int32_t b : {2, 3}) {
        const ProblemSpec spec{s, n, b};
        const Duration c1(1);
        for (const std::int64_t c2v : {2, 5, 17}) {
          const Duration c2(c2v);
          for (const std::int64_t d2v : {1, 6, 40}) {
            const Duration d2(d2v);
            EXPECT_LE(semisync_mp_lower(spec, c1, c2, d2),
                      semisync_mp_upper(spec, c1, c2, d2));
            EXPECT_LE(periodic_mp_lower(spec, c2, d2),
                      periodic_mp_upper(spec, c2, d2));
            EXPECT_LE(async_mp_lower(spec, d2),
                      async_mp_upper(spec, c2, d2));
          }
        }
      }
    }
  }
}

TEST(BoundsTest, SporadicConvergenceClaims) {
  // Paper Section 1: as d1 -> d2 the per-session lower bound -> c1; as
  // d1 -> 0 it approaches d2-ish scale.
  const ProblemSpec spec{2, 4, 2};
  const Duration c1(1);
  const Time tight = sporadic_mp_lower(spec, c1, Duration(100), Duration(100));
  EXPECT_EQ(tight, Time(1));  // (s-1) * c1
  const Time loose = sporadic_mp_lower(spec, c1, Duration(0), Duration(100));
  // floor(100/4) * (200/(100-50)) = 25 * 4 = 100 = d2 per session.
  EXPECT_EQ(loose, Time(100));
}

}  // namespace
}  // namespace sesp
