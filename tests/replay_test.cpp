#include "sim/replay.hpp"

#include <gtest/gtest.h>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/async_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/mpm/sync_alg.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "model/trace_io.hpp"
#include "sim/experiment.hpp"

namespace sesp {
namespace {

TEST(ReplayTest, SmmDeterministicReplayMatches) {
  const ProblemSpec spec{3, 4, 2};
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  const auto constraints = TimingConstraints::periodic(
      std::vector<Duration>(static_cast<std::size_t>(total), Duration(2)));
  PeriodicSmmFactory factory;
  FixedPeriodScheduler sched(total, Duration(2));
  const SmmOutcome out = run_smm_once(spec, constraints, factory, sched);
  ASSERT_TRUE(out.run.completed);

  const ReplayReport report =
      replay_smm(out.run.trace, spec, constraints, factory);
  EXPECT_TRUE(report.match) << report.detail;
}

TEST(ReplayTest, SmmRandomScheduleReplayMatches) {
  const ProblemSpec spec{2, 5, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(4));
  SemiSyncSmmFactory factory(SmmSemiSyncStrategy::kCommunicate);
  UniformGapScheduler sched(Duration(1), Duration(4), /*seed=*/99);
  const SmmOutcome out = run_smm_once(spec, constraints, factory, sched);
  ASSERT_TRUE(out.run.completed);
  const ReplayReport report =
      replay_smm(out.run.trace, spec, constraints, factory);
  EXPECT_TRUE(report.match) << report.detail;
}

TEST(ReplayTest, MpmReplayMatchesIncludingDelays) {
  const ProblemSpec spec{4, 3, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(0), Duration(6));
  SporadicMpmFactory factory;
  BurstyScheduler sched(Duration(1), 1, 4, 9, /*seed=*/7);
  UniformRandomDelay delay(Duration(0), Duration(6), /*seed=*/8);
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, sched, delay);
  ASSERT_TRUE(out.run.completed);

  const ReplayReport report =
      replay_mpm(out.run.trace, spec, constraints, factory);
  EXPECT_TRUE(report.match) << report.detail;
}

TEST(ReplayTest, SurvivesSerializationRoundTrip) {
  const ProblemSpec spec{3, 3, 2};
  const auto constraints = TimingConstraints::asynchronous(2, 5);
  AsyncMpmFactory factory;
  FixedPeriodScheduler sched(spec.n, Duration(2));
  FixedDelay delay{Duration(5)};
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, sched, delay);
  ASSERT_TRUE(out.run.completed);

  std::string error;
  const auto parsed = trace_from_text(to_text(out.run.trace), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const ReplayReport report = replay_mpm(*parsed, spec, constraints, factory);
  EXPECT_TRUE(report.match) << report.detail;
}

TEST(ReplayTest, DetectsWrongAlgorithm) {
  // A trace recorded from A(sp) does not replay as the sync algorithm.
  const ProblemSpec spec{3, 3, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(4));
  SporadicMpmFactory recorded_with;
  FixedPeriodScheduler sched(spec.n, Duration(1));
  FixedDelay delay{Duration(4)};
  const MpmOutcome out =
      run_mpm_once(spec, constraints, recorded_with, sched, delay);
  ASSERT_TRUE(out.run.completed);

  SyncMpmFactory impostor;
  const ReplayReport report =
      replay_mpm(out.run.trace, spec, constraints, impostor);
  EXPECT_FALSE(report.match);
  EXPECT_FALSE(report.detail.empty());
}

TEST(ReplayTest, DetectsTamperedTrace) {
  const ProblemSpec spec{2, 4, 2};
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  const auto constraints = TimingConstraints::periodic(
      std::vector<Duration>(static_cast<std::size_t>(total), Duration(1)));
  PeriodicSmmFactory factory;
  FixedPeriodScheduler sched(total, Duration(1));
  SmmOutcome out = run_smm_once(spec, constraints, factory, sched);
  ASSERT_TRUE(out.run.completed);

  // Tamper: claim a different digest on some mid-trace step.
  TimedComputation tampered(Substrate::kSharedMemory,
                            out.run.trace.num_processes(),
                            out.run.trace.num_ports());
  for (std::size_t i = 0; i < out.run.trace.steps().size(); ++i) {
    StepRecord st = out.run.trace.steps()[i];
    if (i == out.run.trace.steps().size() / 2) st.value_after_digest ^= 1;
    tampered.append(st);
  }
  const ReplayReport report =
      replay_smm(tampered, spec, constraints, factory);
  EXPECT_FALSE(report.match);
  EXPECT_EQ(report.divergence, out.run.trace.steps().size() / 2);
}

}  // namespace
}  // namespace sesp
