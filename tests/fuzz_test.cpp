// Randomized adversary sweeps ("fuzzing" within the admissible space):
// every correct algorithm must solve its instance under many seeded random
// schedules and delay assignments, and every produced trace must pass the
// admissibility checker. Failures print the seed for reproduction.

#include <gtest/gtest.h>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/async_alg.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/p2p/knowledge_algs.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "p2p/p2p_simulator.hpp"
#include "sim/experiment.hpp"
#include "support/test_support.hpp"
#include "util/rng.hpp"

namespace sesp {
namespace {

using test_support::expect_contract;
using test_support::random_spec;
using test_support::random_topology;

class FuzzSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeeds, SporadicMpmUnderRandomBurstsAndDelays) {
  const std::uint64_t seed = 0xF022ULL + 7919ULL * GetParam();
  Rng meta(seed);
  const ProblemSpec spec = random_spec(meta, 2, 6, 2, 4);
  const Duration c1(1);
  const Duration d1(meta.next_int(0, 6));
  const Duration d2 = d1 + Ratio(meta.next_int(0, 12));
  const auto constraints = TimingConstraints::sporadic(c1, d1, d2);

  SporadicMpmFactory factory;
  BurstyScheduler sched(c1, 1, 5, 1 + meta.next_int(1, 20), seed + 1);
  UniformRandomDelay delay(d1, d2, seed + 2);
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, sched, delay);
  EXPECT_TRUE(out.run.completed) << "seed=" << seed;
  EXPECT_TRUE(out.verdict.admissible)
      << "seed=" << seed << ": " << out.verdict.admissibility_violation;
  EXPECT_TRUE(out.verdict.solves)
      << "seed=" << seed << " sessions=" << out.verdict.sessions
      << " need=" << spec.s;
}

TEST_P(FuzzSeeds, SemiSyncMpmUnderRandomSchedules) {
  const std::uint64_t seed = 0x5E15ULL + 104729ULL * GetParam();
  Rng meta(seed);
  const ProblemSpec spec = random_spec(meta, 1, 7, 2, 5);
  const Duration c1(1);
  const Duration c2 = c1 + Ratio(meta.next_int(0, 15));
  const Duration d2(meta.next_int(1, 30));
  const auto constraints = TimingConstraints::semi_synchronous(c1, c2, d2);

  SemiSyncMpmFactory factory;  // auto strategy
  UniformGapScheduler sched(c1, c2, seed + 3);
  UniformRandomDelay delay(Duration(0), d2, seed + 4);
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, sched, delay);
  EXPECT_TRUE(out.verdict.admissible)
      << "seed=" << seed << ": " << out.verdict.admissibility_violation;
  EXPECT_TRUE(out.verdict.solves)
      << "seed=" << seed << " sessions=" << out.verdict.sessions;
}

TEST_P(FuzzSeeds, AsyncMpmUnderRandomSchedules) {
  const std::uint64_t seed = 0xA51CULL + 15485863ULL * GetParam();
  Rng meta(seed);
  const ProblemSpec spec = random_spec(meta, 1, 6, 2, 6);
  const Duration c2(4), d2(meta.next_int(1, 20));
  const auto constraints = TimingConstraints::asynchronous(c2, d2);

  AsyncMpmFactory factory;
  UniformGapScheduler sched(Duration(1, 4), c2, seed + 5);
  UniformRandomDelay delay(Duration(0), d2, seed + 6);
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, sched, delay);
  EXPECT_TRUE(out.verdict.admissible)
      << "seed=" << seed << ": " << out.verdict.admissibility_violation;
  EXPECT_TRUE(out.verdict.solves) << "seed=" << seed;
}

TEST_P(FuzzSeeds, PeriodicSmmUnderRandomPeriods) {
  const std::uint64_t seed = 0x9E210DULL + 6700417ULL * GetParam();
  Rng meta(seed);
  const ProblemSpec spec = random_spec(meta, 1, 5, 2, 7, 2, 3);
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  std::vector<Duration> periods;
  periods.reserve(static_cast<std::size_t>(total));
  for (std::int32_t i = 0; i < total; ++i)
    periods.push_back(Ratio(meta.next_int(1, 8), meta.next_int(1, 3)));
  const auto constraints = TimingConstraints::periodic(periods);

  PeriodicSmmFactory factory;
  FixedPeriodScheduler sched(periods);
  const SmmOutcome out = run_smm_once(spec, constraints, factory, sched);
  EXPECT_TRUE(out.run.completed) << "seed=" << seed;
  EXPECT_TRUE(out.verdict.admissible)
      << "seed=" << seed << ": " << out.verdict.admissibility_violation;
  EXPECT_TRUE(out.verdict.solves)
      << "seed=" << seed << " sessions=" << out.verdict.sessions;
}

TEST_P(FuzzSeeds, SemiSyncSmmUnderRandomSchedules) {
  const std::uint64_t seed = 0x53A11ULL + 32452843ULL * GetParam();
  Rng meta(seed);
  const ProblemSpec spec = random_spec(meta, 1, 5, 2, 5);
  const Duration c1(1);
  const Duration c2 = c1 + Ratio(meta.next_int(0, 10));
  const auto constraints = TimingConstraints::semi_synchronous(c1, c2);

  SemiSyncSmmFactory factory;  // auto
  UniformGapScheduler sched(c1, c2, seed + 7);
  const SmmOutcome out = run_smm_once(spec, constraints, factory, sched);
  EXPECT_TRUE(out.verdict.admissible)
      << "seed=" << seed << ": " << out.verdict.admissibility_violation;
  EXPECT_TRUE(out.verdict.solves)
      << "seed=" << seed << " sessions=" << out.verdict.sessions;
}

TEST_P(FuzzSeeds, P2pRoundsOnRandomTopology) {
  const std::uint64_t seed = 0x292ULL + 49979687ULL * GetParam();
  Rng meta(seed);
  const std::int32_t n = 2 + static_cast<std::int32_t>(meta.next_below(10));
  const ProblemSpec spec{1 + static_cast<std::int64_t>(meta.next_below(4)),
                         n, 2};
  const Topology topo = random_topology(meta, n);
  const Duration c2(2), d2(meta.next_int(1, 8));
  const auto constraints = TimingConstraints::asynchronous(c2, d2);

  P2pRoundsFactory factory;
  UniformGapScheduler sched(Duration(1, 2), c2, seed + 8);
  UniformRandomDelay delay(Duration(0), d2, seed + 9);
  P2pSimulator sim(spec, constraints, topo, factory, sched, delay);
  const P2pRunResult run = sim.run();
  const Verdict verdict = verify(run.trace, spec, constraints);
  EXPECT_TRUE(verdict.admissible)
      << "seed=" << seed << " " << topo.name() << ": "
      << verdict.admissibility_violation;
  EXPECT_TRUE(verdict.solves)
      << "seed=" << seed << " " << topo.name()
      << " sessions=" << verdict.sessions;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(0, 20));

// --- Fault-injection fuzz ---------------------------------------------------
//
// Chaos sweep: every seeded random fault plan — crashes, loss, duplication,
// extra delays, timing violations, write corruption — must leave the run in
// exactly one of the three contract buckets: solved, degraded with an
// admissible partial verdict, or diagnosed with a localized inadmissibility /
// structured SimError. Never an abort, never a silent wrong answer. Limits
// are kept small so injected livelocks are cut fast by the watchdogs.

class FaultFuzzSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzzSeeds, MpmChaosAlwaysClassified) {
  const std::uint64_t seed = 0xFA17'F0DDULL + 2654435761ULL * GetParam();
  Rng meta(seed);
  const ProblemSpec spec = random_spec(meta, 1, 4, 2, 4);
  const Duration c1(1);
  const Duration c2 = c1 + Ratio(meta.next_int(0, 6));
  const Duration d2(meta.next_int(1, 10));
  const auto constraints = TimingConstraints::semi_synchronous(c1, c2, d2);

  FaultInjector injector(FaultPlan::random(seed, spec.n));
  SemiSyncMpmFactory factory;
  UniformGapScheduler sched(c1, c2, seed + 11);
  UniformRandomDelay delay(Duration(0), d2, seed + 12);
  MpmRunLimits limits;
  limits.max_steps = 20'000;
  const MpmOutcome out = run_mpm_once(spec, constraints, factory, sched,
                                      delay, limits, &injector);
  expect_contract(out.run, out.verdict, seed);
}

TEST_P(FaultFuzzSeeds, SmmChaosAlwaysClassified) {
  const std::uint64_t seed = 0x53A1'F0DDULL + 1099511628211ULL * GetParam();
  Rng meta(seed);
  const ProblemSpec spec = random_spec(meta, 1, 4, 2, 4, 2, 2);
  const Duration c1(1);
  const Duration c2 = c1 + Ratio(meta.next_int(0, 5));
  const auto constraints = TimingConstraints::semi_synchronous(c1, c2);
  const std::int32_t total = smm_total_processes(spec.n, spec.b);

  FaultInjector injector(FaultPlan::random(seed, total));
  SemiSyncSmmFactory factory;
  UniformGapScheduler sched(c1, c2, seed + 13);
  SmmRunLimits limits;
  limits.max_steps = 20'000;
  const SmmOutcome out =
      run_smm_once(spec, constraints, factory, sched, limits, &injector);
  expect_contract(out.run, out.verdict, seed);
}

TEST_P(FaultFuzzSeeds, P2pChaosAlwaysClassified) {
  const std::uint64_t seed = 0x1292'F0DDULL + 40503'86429ULL * GetParam();
  Rng meta(seed);
  const std::int32_t n = 2 + static_cast<std::int32_t>(meta.next_below(6));
  const ProblemSpec spec{1 + static_cast<std::int64_t>(meta.next_below(3)),
                         n, 2};
  const Topology topo = random_topology(meta, n, 4);
  const Duration c2(2), d2(meta.next_int(1, 6));
  const auto constraints = TimingConstraints::asynchronous(c2, d2);

  FaultInjector injector(FaultPlan::random(seed, n));
  P2pRoundsFactory factory;
  UniformGapScheduler sched(Duration(1, 2), c2, seed + 14);
  UniformRandomDelay delay(Duration(0), d2, seed + 15);
  P2pRunLimits limits;
  limits.max_steps = 20'000;
  const P2pOutcome out = run_p2p_once(spec, constraints, topo, factory, sched,
                                      delay, limits, &injector);
  expect_contract(out.run, out.verdict, seed);
}

INSTANTIATE_TEST_SUITE_P(ChaosSeeds, FaultFuzzSeeds, ::testing::Range(0, 200));

}  // namespace
}  // namespace sesp
