#include "smm/shared_memory.hpp"

#include <gtest/gtest.h>

namespace sesp {
namespace {

TEST(SharedMemoryTest, CreateAndAccess) {
  SharedMemory mem(2);
  const VarId v = mem.create_var({0, 1}, "x");
  EXPECT_EQ(mem.num_vars(), 1);
  EXPECT_EQ(mem.label(v), "x");
  EXPECT_EQ(mem.accessors(v).size(), 2u);

  Knowledge& val = mem.access(v, 0);
  val.record(0, PortInfo{1, 0, false});
  EXPECT_EQ(mem.peek(v).about(0).steps, 1);
  // The other registered accessor sees the write.
  EXPECT_EQ(mem.access(v, 1).about(0).steps, 1);
}

TEST(SharedMemoryTest, VariablesAreIndependent) {
  SharedMemory mem(2);
  const VarId a = mem.create_var({0}, "a");
  const VarId b = mem.create_var({0}, "b");
  mem.access(a, 0).record(0, PortInfo{7, 0, false});
  EXPECT_EQ(mem.peek(b).about(0).steps, 0);
  EXPECT_EQ(mem.peek(a).about(0).steps, 7);
}

TEST(SharedMemoryDeath, RejectsTooManyAccessors) {
  EXPECT_DEATH(
      {
        SharedMemory mem(2);
        mem.create_var({0, 1, 2}, "too-wide");
      },
      "accessors");
}

TEST(SharedMemoryDeath, RejectsUnregisteredAccessor) {
  EXPECT_DEATH(
      {
        SharedMemory mem(2);
        const VarId v = mem.create_var({0, 1}, "x");
        mem.access(v, 2);
      },
      "not an accessor");
}

TEST(SharedMemoryDeath, RejectsUnknownVariable) {
  EXPECT_DEATH(
      {
        SharedMemory mem(2);
        mem.access(3, 0);
      },
      "unknown variable");
}

}  // namespace
}  // namespace sesp
