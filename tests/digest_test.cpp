// Unit tests for util/digest — the one FNV-1a definition shared by the run
// journal's header guard / frame checksums, the shard leases, and the serve
// result-cache keys. The reference vectors pin the exact hash function: if
// either constant drifted, every persisted journal and manifest digest
// would silently stop verifying.

#include "util/digest.hpp"

#include <gtest/gtest.h>

#include "recovery/journal.hpp"

namespace sesp {
namespace {

// Pinned vectors for the repo's digest (the historical offset basis every
// persisted journal header was written with — see digest.hpp). If either
// constant drifts, these catch it before any on-disk digest stops verifying.
TEST(DigestTest, MatchesPinnedVectors) {
  EXPECT_EQ(util::fnv1a(""), util::kFnv1aOffsetBasis);
  EXPECT_EQ(util::fnv1a("a"), 4953267810257967366ULL);
  EXPECT_EQ(util::fnv1a("foobar"), 0x88fad7c0a8ff07f2ULL);
}

TEST(DigestTest, ChainingEqualsConcatenation) {
  const std::uint64_t chained = util::fnv1a("world", util::fnv1a("hello"));
  EXPECT_EQ(chained, util::fnv1a("helloworld"));
  EXPECT_NE(chained, util::fnv1a("worldhello"));
}

TEST(DigestTest, HexRenderingIsCanonical16Lowercase) {
  EXPECT_EQ(util::fnv1a_hex(0), "0000000000000000");
  EXPECT_EQ(util::fnv1a_hex(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(util::fnv1a_hex(0xFFFFFFFFFFFFFFFFULL), "ffffffffffffffff");
  EXPECT_EQ(util::fnv1a_hex(util::fnv1a("foobar")), "88fad7c0a8ff07f2");
}

TEST(DigestTest, HexRoundTripsThroughParse) {
  const std::uint64_t cases[] = {0ULL, 1ULL, 0x0123456789abcdefULL,
                                 0xffffffffffffffffULL, util::fnv1a("sesp")};
  for (const std::uint64_t v : cases) {
    std::uint64_t parsed = 0;
    ASSERT_TRUE(util::parse_fnv1a_hex(util::fnv1a_hex(v), &parsed));
    EXPECT_EQ(parsed, v);
  }
}

TEST(DigestTest, ParseRejectsNonCanonicalRenderings) {
  std::uint64_t out = 0;
  EXPECT_FALSE(util::parse_fnv1a_hex("", &out));
  EXPECT_FALSE(util::parse_fnv1a_hex("123", &out));                  // short
  EXPECT_FALSE(util::parse_fnv1a_hex("0000000000000000ff", &out));   // long
  EXPECT_FALSE(util::parse_fnv1a_hex("00000000DEADBEEF", &out));  // uppercase
  EXPECT_FALSE(util::parse_fnv1a_hex("000000000000000g", &out));  // non-hex
  EXPECT_FALSE(util::parse_fnv1a_hex(" 000000000000000", &out));
}

// The recovery:: aliases must be the same function — a journal written
// through one spelling verifies through the other.
TEST(DigestTest, RecoveryAliasesForwardToTheOneDefinition) {
  const std::string text = "substrate|model|3|4|2|1|2|0|4|1992";
  EXPECT_EQ(recovery::fnv1a(text), util::fnv1a(text));
  EXPECT_EQ(recovery::fnv1a(text, 42), util::fnv1a(text, 42));
  EXPECT_EQ(recovery::fnv1a_hex(recovery::fnv1a(text)),
            util::fnv1a_hex(util::fnv1a(text)));
}

TEST(DigestTest, DistinctConfigStringsGetDistinctDigests) {
  // Not a collision-resistance claim — a regression guard that the digest
  // actually covers its whole input (no truncation, no early exit).
  EXPECT_NE(util::fnv1a("mpm|semisync|3|3|2"), util::fnv1a("mpm|semisync|3|3|3"));
  EXPECT_NE(util::fnv1a("a|b"), util::fnv1a("a|b|"));
  EXPECT_NE(util::fnv1a(std::string(1000, 'x')),
            util::fnv1a(std::string(1001, 'x')));
}

}  // namespace
}  // namespace sesp
