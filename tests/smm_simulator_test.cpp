#include "smm/smm_simulator.hpp"

#include <gtest/gtest.h>

#include <map>

#include "adversary/step_schedulers.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "algorithms/smm/sync_alg.hpp"
#include "session/session_counter.hpp"
#include "timing/admissibility.hpp"

namespace sesp {
namespace {

TEST(SmmSimulatorTest, SyncAlgorithmLockstep) {
  const ProblemSpec spec{/*s=*/3, /*n=*/4, /*b=*/3};
  const auto constraints = TimingConstraints::synchronous(/*c2=*/2);
  SyncSmmFactory factory;
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  FixedPeriodScheduler sched(total, constraints.c2);
  SmmSimulator sim(spec, constraints, factory, sched);
  const SmmRunResult run = sim.run();

  EXPECT_TRUE(run.completed);
  EXPECT_TRUE(check_admissible(run.trace, constraints));
  EXPECT_EQ(count_sessions(run.trace).sessions, 3);
  EXPECT_EQ(*run.trace.termination_time(), Time(6));  // s * c2
}

TEST(SmmSimulatorTest, PortStepsOnlyOnPortVariable) {
  const ProblemSpec spec{2, 3, 3};
  const auto constraints = TimingConstraints::synchronous(1);
  SyncSmmFactory factory;
  FixedPeriodScheduler sched(smm_total_processes(spec.n, spec.b), Duration(1));
  const SmmRunResult run =
      SmmSimulator(spec, constraints, factory, sched).run();
  std::map<PortIndex, VarId> port_var;
  for (const StepRecord& st : run.trace.steps()) {
    if (st.port == kNoPort) continue;
    EXPECT_EQ(st.port, st.process);  // port steps by the port process only
    auto [it, inserted] = port_var.try_emplace(st.port, st.var);
    if (!inserted) {
      EXPECT_EQ(it->second, st.var);  // always the same variable
    }
  }
  EXPECT_EQ(port_var.size(), 3u);  // one port variable per port process
}

TEST(SmmSimulatorTest, EveryStepTouchesExactlyOneVariable) {
  const ProblemSpec spec{2, 5, 3};
  const auto constraints = TimingConstraints::periodic(std::vector<Duration>(
      static_cast<std::size_t>(smm_total_processes(spec.n, spec.b)),
      Duration(1)));
  PeriodicSmmFactory factory;
  FixedPeriodScheduler sched(constraints.periods);
  const SmmRunResult run =
      SmmSimulator(spec, constraints, factory, sched).run();
  EXPECT_TRUE(run.completed);
  for (const StepRecord& st : run.trace.steps()) {
    ASSERT_TRUE(st.is_compute());
    EXPECT_NE(st.var, kNoVar);
  }
}

TEST(SmmSimulatorTest, GossipPropagatesThroughTree) {
  // A(p) only terminates if every process's "done" fact reaches every other
  // leaf through the relay tree, so completion proves propagation for a
  // non-trivial (n, b).
  const ProblemSpec spec{3, 9, 3};
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  const auto constraints = TimingConstraints::periodic(
      std::vector<Duration>(static_cast<std::size_t>(total), Duration(1)));
  PeriodicSmmFactory factory;
  FixedPeriodScheduler sched(constraints.periods);
  const SmmRunResult run =
      SmmSimulator(spec, constraints, factory, sched).run();
  EXPECT_TRUE(run.completed);
  EXPECT_GE(count_sessions(run.trace).sessions, 3);
  EXPECT_GT(run.num_relays, 0);
  EXPECT_GT(run.tree_depth, 0);
}

TEST(SmmSimulatorTest, PropagationLatencyWithinBound) {
  // Measure: time from the first leaf's "done" advertisement until the last
  // leaf idles must fit inside the documented tree latency bound plus the
  // algorithm's own port steps.
  const ProblemSpec spec{2, 16, 3};
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  const auto constraints = TimingConstraints::periodic(
      std::vector<Duration>(static_cast<std::size_t>(total), Duration(1)));
  PeriodicSmmFactory factory;
  FixedPeriodScheduler sched(constraints.periods);
  const SmmRunResult run =
      SmmSimulator(spec, constraints, factory, sched).run();
  ASSERT_TRUE(run.completed);
  // s*c_max for the port steps plus (latency + 6 bracketing steps) * c_max.
  const Time bound = Ratio(spec.s) * Duration(1) +
                     Ratio(run.tree_latency_steps + 6) * Duration(1);
  EXPECT_LE(*run.trace.termination_time(), bound);
}

TEST(SmmSimulatorTest, SingleProcessInstance) {
  const ProblemSpec spec{4, 1, 2};
  const auto constraints = TimingConstraints::periodic({Duration(3)});
  PeriodicSmmFactory factory;
  FixedPeriodScheduler sched(1, Duration(3));
  const SmmRunResult run =
      SmmSimulator(spec, constraints, factory, sched).run();
  EXPECT_TRUE(run.completed);
  EXPECT_GE(count_sessions(run.trace).sessions, 4);
  EXPECT_EQ(run.num_relays, 0);
}

TEST(SmmSimulatorTest, RunLimitGuards) {
  const ProblemSpec spec{1'000'000, 2, 2};
  const auto constraints = TimingConstraints::synchronous(1);
  SyncSmmFactory factory;
  FixedPeriodScheduler sched(smm_total_processes(spec.n, spec.b), Duration(1));
  SmmRunLimits limits;
  limits.max_steps = 100;
  const SmmRunResult run =
      SmmSimulator(spec, constraints, factory, sched).run(limits);
  EXPECT_FALSE(run.completed);
  EXPECT_TRUE(run.hit_limit);
}

TEST(SmmSimulatorTest, DigestsChainPerVariable) {
  const ProblemSpec spec{2, 4, 3};
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  const auto constraints = TimingConstraints::periodic(
      std::vector<Duration>(static_cast<std::size_t>(total), Duration(1)));
  PeriodicSmmFactory factory;
  FixedPeriodScheduler sched(constraints.periods);
  const SmmRunResult run =
      SmmSimulator(spec, constraints, factory, sched).run();
  std::map<VarId, std::uint64_t> last;
  for (const StepRecord& st : run.trace.steps()) {
    if (st.var == kNoVar) continue;
    const auto it = last.find(st.var);
    if (it != last.end()) {
      EXPECT_EQ(it->second, st.value_before_digest);
    }
    last[st.var] = st.value_after_digest;
  }
}

}  // namespace
}  // namespace sesp
