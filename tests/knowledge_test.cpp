#include "smm/knowledge.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace sesp {
namespace {

TEST(PortInfoTest, JoinIsPointwiseMax) {
  const PortInfo a{3, 1, false};
  const PortInfo b{2, 4, true};
  const PortInfo j = join(a, b);
  EXPECT_EQ(j.steps, 3);
  EXPECT_EQ(j.session, 4);
  EXPECT_TRUE(j.done);
}

TEST(KnowledgeTest, AboutUnknownIsDefault) {
  Knowledge k;
  EXPECT_TRUE(k.empty());
  EXPECT_EQ(k.about(5).steps, 0);
  EXPECT_FALSE(k.has(5));
}

TEST(KnowledgeTest, RecordJoins) {
  Knowledge k;
  k.record(1, PortInfo{5, 0, false});
  k.record(1, PortInfo{3, 2, true});
  EXPECT_EQ(k.about(1).steps, 5);
  EXPECT_EQ(k.about(1).session, 2);
  EXPECT_TRUE(k.about(1).done);
}

TEST(KnowledgeTest, ThresholdQueries) {
  Knowledge k;
  k.record(0, PortInfo{4, 1, true});
  k.record(1, PortInfo{2, 1, false});
  EXPECT_TRUE(k.all_have_steps(2, 2));
  EXPECT_FALSE(k.all_have_steps(2, 3));
  EXPECT_TRUE(k.all_have_steps(2, 4, /*except=*/1));
  EXPECT_TRUE(k.all_have_session(2, 1));
  EXPECT_FALSE(k.all_done(2));
  EXPECT_TRUE(k.all_done(2, /*except=*/1));
  // Missing process fails the quantifier.
  EXPECT_FALSE(k.all_have_steps(3, 1));
}

TEST(KnowledgeTest, DigestChangesWithContent) {
  Knowledge a, b;
  EXPECT_EQ(a.digest(), b.digest());
  a.record(0, PortInfo{1, 0, false});
  EXPECT_NE(a.digest(), b.digest());
  b.record(0, PortInfo{1, 0, false});
  EXPECT_EQ(a.digest(), b.digest());
  b.record(0, PortInfo{1, 0, true});
  EXPECT_NE(a.digest(), b.digest());
}

// CRDT join-semilattice laws, parameterized over small knowledge values.
Knowledge make(int steps0, int sess1, bool done2) {
  Knowledge k;
  if (steps0 >= 0) k.record(0, PortInfo{steps0, 0, false});
  if (sess1 >= 0) k.record(1, PortInfo{0, sess1, false});
  k.record(2, PortInfo{0, 0, done2});
  return k;
}

class KnowledgeLattice
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(KnowledgeLattice, MergeIsCommutativeAssociativeIdempotent) {
  const auto [i, j, l] = GetParam();
  const Knowledge a = make(i, j, l % 2 == 0);
  const Knowledge b = make(j, l, i % 2 == 0);
  const Knowledge c = make(l, i, j % 2 == 0);

  Knowledge ab = a;
  ab.merge(b);
  Knowledge ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);

  Knowledge ab_c = ab;
  ab_c.merge(c);
  Knowledge bc = b;
  bc.merge(c);
  Knowledge a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);

  Knowledge aa = a;
  aa.merge(a);
  EXPECT_EQ(aa, a);
}

TEST_P(KnowledgeLattice, MergeIsMonotone) {
  const auto [i, j, l] = GetParam();
  Knowledge a = make(i, j, false);
  const Knowledge b = make(j, l, true);
  const PortInfo before = a.about(0);
  a.merge(b);
  EXPECT_GE(a.about(0).steps, before.steps);
  EXPECT_GE(a.about(1).session, 0);
}

INSTANTIATE_TEST_SUITE_P(Grid, KnowledgeLattice,
                         ::testing::Combine(::testing::Values(-1, 0, 2, 7),
                                            ::testing::Values(-1, 1, 5),
                                            ::testing::Values(0, 3, 9)));

}  // namespace
}  // namespace sesp
