#include "sim/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "util/rng.hpp"

namespace sesp {
namespace {

using Lane = CalendarQueue::Lane;
using Popped = CalendarQueue::Popped;

// Reference model: the old simulator event heap — min (time, kind, seq),
// compute steps before deliveries at equal times, FIFO within a kind. The
// calendar queue must reproduce its pop order bit-for-bit; this is the
// determinism contract the replay oracle and golden corpus rest on.
struct RefEvent {
  Time time;
  int kind;  // 0 = compute, 1 = deliver
  std::uint64_t seq;
  ProcessId process;
  MsgId message;
};

struct RefAfter {
  bool operator()(const RefEvent& a, const RefEvent& b) const {
    if (a.time != b.time) return b.time < a.time;
    if (a.kind != b.kind) return a.kind == 1;
    return a.seq > b.seq;
  }
};

class RefQueue {
 public:
  void push_compute(const Time& t, ProcessId p) {
    q_.push(RefEvent{t, 0, seq_++, p, kNoMsg});
  }
  void push_deliver(const Time& t, ProcessId p, MsgId m) {
    q_.push(RefEvent{t, 1, seq_++, p, m});
  }
  bool empty() const { return q_.empty(); }
  RefEvent pop() {
    RefEvent e = q_.top();
    q_.pop();
    return e;
  }

 private:
  std::priority_queue<RefEvent, std::vector<RefEvent>, RefAfter> q_;
  std::uint64_t seq_ = 0;
};

void expect_same_pop(CalendarQueue& cq, RefQueue& ref) {
  ASSERT_FALSE(cq.empty());
  ASSERT_FALSE(ref.empty());
  const RefEvent want = ref.pop();
  const Lane want_lane = want.kind == 0 ? Lane::kCompute : Lane::kDeliver;
  EXPECT_EQ(cq.peek_lane(), want_lane);
  Popped got;
  ASSERT_TRUE(cq.pop(got));
  ASSERT_EQ(got.time, want.time) << "t=" << want.time.to_string();
  ASSERT_EQ(got.lane, want_lane);
  ASSERT_EQ(got.process, want.process);
  ASSERT_EQ(got.message, want.message);
}

TEST(CalendarQueueTest, EmptyQueueBehaves) {
  CalendarQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  Popped out;
  EXPECT_FALSE(q.pop(out));
}

TEST(CalendarQueueTest, ComputesBeforeDeliversAtEqualTime) {
  CalendarQueue q;
  q.push_deliver(Time(1), 7, 42);
  q.push_compute(Time(1), 3);
  q.push_deliver(Time(1), 8, 43);
  q.push_compute(Time(1), 4);

  Popped out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.lane, Lane::kCompute);
  EXPECT_EQ(out.process, 3);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.lane, Lane::kCompute);
  EXPECT_EQ(out.process, 4);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.lane, Lane::kDeliver);
  EXPECT_EQ(out.message, 42);
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.lane, Lane::kDeliver);
  EXPECT_EQ(out.message, 43);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, FifoStableWithinLaneAcrossInterleavedPushes) {
  // Pushes at the time currently being drained append behind the un-popped
  // events of their lane — the (time, kind, seq) heap's order exactly.
  CalendarQueue q;
  RefQueue ref;
  for (int i = 0; i < 4; ++i) {
    q.push_compute(Time(2), i);
    ref.push_compute(Time(2), i);
  }
  // Drain two, then push more at the same time into both lanes.
  expect_same_pop(q, ref);
  expect_same_pop(q, ref);
  q.push_compute(Time(2), 50);
  ref.push_compute(Time(2), 50);
  q.push_deliver(Time(2), 9, 77);
  ref.push_deliver(Time(2), 9, 77);
  while (!ref.empty()) expect_same_pop(q, ref);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, AllSameTimestampAdversarialDistribution) {
  CalendarQueue q;
  RefQueue ref;
  Rng rng(0xca1e'0001ULL);
  const Time t(7, 3);
  for (int i = 0; i < 2'000; ++i) {
    if (rng.next_bool(1, 2)) {
      q.push_compute(t, i);
      ref.push_compute(t, i);
    } else {
      q.push_deliver(t, i, i);
      ref.push_deliver(t, i, i);
    }
  }
  // One bucket, one distinct time: the degenerate case the bucket design
  // exists for.
  EXPECT_EQ(q.distinct_times(), 1u);
  while (!ref.empty()) expect_same_pop(q, ref);
}

TEST(CalendarQueueTest, PowerLawGapsFallBackToHeapOrder) {
  // Every event on its own timestamp with wildly skewed gaps: the calendar
  // queue degrades to a comparison heap and must still agree with it.
  CalendarQueue q;
  RefQueue ref;
  Rng rng(0xca1e'0002ULL);
  Time t(0);
  std::vector<Time> times;
  for (int i = 0; i < 500; ++i) {
    // Gap ~ 2^k for k in [0, 30): a power-law-ish spread.
    t += Duration(std::int64_t{1} << rng.next_below(30));
    times.push_back(t);
  }
  // Push in shuffled order so the heap actually has to sort.
  for (std::size_t i = times.size(); i > 1;) {
    const std::size_t j = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint32_t>(i)));
    --i;
    std::swap(times[i], times[j]);
  }
  for (std::size_t i = 0; i < times.size(); ++i) {
    q.push_compute(times[i], static_cast<ProcessId>(i));
    ref.push_compute(times[i], static_cast<ProcessId>(i));
  }
  while (!ref.empty()) expect_same_pop(q, ref);
}

TEST(CalendarQueueTest, DenominatorBlowupsUseThePool) {
  // Times that cannot fit the inline PackedRatio encoding: distinct huge
  // denominators force pooled keys; order must stay exact where doubles
  // would collapse the differences.
  CalendarQueue q;
  RefQueue ref;
  const std::int64_t kDen = (std::int64_t{1} << 23);  // past the inline field
  for (int i = 0; i < 64; ++i) {
    const Time t(kDen + 1 + i, kDen + i);  // slightly > 1, all distinct
    q.push_compute(t, i);
    ref.push_compute(t, i);
  }
  EXPECT_GT(q.interned_times(), 0u);
  while (!ref.empty()) expect_same_pop(q, ref);
}

TEST(CalendarQueueTest, RandomizedDifferentialAgainstReferenceHeap) {
  // Interleaved pushes and pops over a mix of dense and sparse timelines —
  // bucket creation, draining, reuse, and index rehash all churn here.
  CalendarQueue q;
  RefQueue ref;
  Rng rng(0xca1e'0003ULL);
  Time now(0);
  int pushed = 0;
  for (int round = 0; round < 5'000; ++round) {
    const std::uint32_t action = rng.next_below(4);
    if (action < 2 || q.empty()) {
      // Push times are nondecreasing (like a simulator's schedules), so a
      // push is never earlier than the bucket being drained; the stray
      // earlier push is exercised separately below.
      const Duration gap = rng.next_bool(3, 5)
                               ? Duration(0)
                               : Duration(rng.next_int(1, 50),
                                          rng.next_int(1, 8));
      now += gap;
      if (rng.next_bool(1, 2)) {
        q.push_compute(now, pushed);
        ref.push_compute(now, pushed);
      } else {
        q.push_deliver(now, pushed, pushed);
        ref.push_deliver(now, pushed, pushed);
      }
      ++pushed;
    } else {
      ASSERT_FALSE(ref.empty());
      const std::size_t before = q.size();
      {
        SCOPED_TRACE("round " + std::to_string(round));
        expect_same_pop(q, ref);
      }
      EXPECT_EQ(q.size(), before - 1);
    }
  }
  while (!ref.empty()) expect_same_pop(q, ref);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, EarlierPushWhileDrainingFallsBackGracefully) {
  // Pathological: an event pushed BEFORE the time being drained (possible
  // only for exotic delay strategies). The heap fallback must re-settle.
  CalendarQueue q;
  q.push_compute(Time(10), 1);
  q.push_compute(Time(10), 2);
  Popped out;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.process, 1);
  q.push_compute(Time(5), 3);  // earlier than the bucket being drained
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.process, 3);
  EXPECT_EQ(out.time, Time(5));
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out.process, 2);
  EXPECT_EQ(out.time, Time(10));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, ArenaReusesBucketsAfterDrain) {
  CalendarQueue q;
  Popped out;
  // Phase 1: allocate a handful of buckets.
  for (int i = 0; i < 8; ++i) q.push_compute(Time(i), i);
  while (q.pop(out)) {
  }
  const std::size_t allocated = q.buckets_allocated();
  EXPECT_GE(allocated, 8u);
  EXPECT_EQ(q.buckets_reused(), 0);
  // Phase 2: fresh distinct times; drained buckets must be recycled, not
  // newly allocated.
  for (int i = 0; i < 8; ++i) q.push_compute(Time(100 + i), i);
  while (q.pop(out)) {
  }
  EXPECT_EQ(q.buckets_allocated(), allocated);
  EXPECT_EQ(q.buckets_reused(), 8);
}

TEST(CalendarQueueTest, BucketIndexSurvivesResizeAndTombstoneChurn) {
  // Many more distinct times than the initial index capacity (64), pushed
  // and drained in waves: forces index growth, tombstone accumulation from
  // released buckets, and rehash — while staying differential-correct.
  CalendarQueue q;
  RefQueue ref;
  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 0; i < 100; ++i) {
      const Time t(wave * 1000 + i);
      q.push_compute(t, i);
      ref.push_compute(t, i);
      if (i % 3 == 0) {
        q.push_compute(t, 1000 + i);  // same bucket, FIFO behind
        ref.push_compute(t, 1000 + i);
      }
    }
    while (!ref.empty()) expect_same_pop(q, ref);
    ASSERT_TRUE(q.empty());
  }
  // 2000 distinct times passed through a queue that never held more than
  // ~133 at once: allocation stays bounded by the high-water mark.
  EXPECT_LE(q.buckets_allocated(), 200u);
  EXPECT_GT(q.buckets_reused(), 0);
}

// ASan-visible lifetime exercise: references returned by pop() are values
// (no pointers into released buckets), and bucket/lane storage recycled
// through the free list is written and read across thousands of
// release/reuse cycles. Under the ASan preset any stale pointer into a
// released bucket or the rehashed index turns into a hard failure here.
TEST(CalendarQueueTest, LifetimeChurnUnderSanitizers) {
  CalendarQueue q;
  Rng rng(0xca1e'0004ULL);
  std::int64_t live = 0;
  std::int64_t pushes = 0;
  Time now(0);
  std::int64_t popped_total = 0;
  Time last_time(0);
  for (int round = 0; round < 20'000; ++round) {
    if (live == 0 || rng.next_bool(11, 20)) {
      now += rng.next_bool(7, 10) ? Duration(0) : Duration(1, 3);
      q.push_compute(now, round);
      ++live;
      ++pushes;
    } else {
      Popped out;
      ASSERT_TRUE(q.pop(out));
      // Times never regress (all pushes are >= the drained time).
      EXPECT_LE(last_time, out.time);
      last_time = out.time;
      --live;
      ++popped_total;
    }
  }
  Popped out;
  while (q.pop(out)) ++popped_total;
  EXPECT_EQ(popped_total, pushes);  // every push popped exactly once
}

}  // namespace
}  // namespace sesp
