// Unit and property tests for the conformance subsystem itself: generator
// determinism and admissibility-by-construction, the zero-failure contract
// of the oracle stack on correct algorithms, job-count invariance of the
// harness report, witness round-tripping, shrinker determinism, and the
// mutated-reference self-test that proves the differential oracles can
// actually fire.

#include <gtest/gtest.h>

#include <string>

#include "conformance/harness.hpp"
#include "conformance/oracles.hpp"
#include "conformance/shrinker.hpp"
#include "conformance/witness.hpp"
#include "model/trace_io.hpp"
#include "support/test_support.hpp"

namespace sesp {
namespace {

using conformance::CaseDescriptor;
using conformance::CaseResult;
using conformance::ConformanceConfig;
using conformance::ConformanceReport;
using test_support::JobsGuard;

// --- Generator ---------------------------------------------------------------

TEST(ConformanceGenerator, DescriptorsAreSeedDeterministic) {
  for (const TimingModel model : conformance::all_models()) {
    for (const Substrate substrate : conformance::all_substrates()) {
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const CaseDescriptor a =
            conformance::generate_case(model, substrate, seed);
        const CaseDescriptor b =
            conformance::generate_case(model, substrate, seed);
        EXPECT_EQ(a.to_string(), b.to_string());
      }
    }
  }
}

TEST(ConformanceGenerator, RunsAreByteDeterministic) {
  const CaseDescriptor c = conformance::generate_case(
      TimingModel::kSporadic, Substrate::kMessagePassing, 42);
  const conformance::GeneratedRun a = conformance::run_case(c);
  const conformance::GeneratedRun b = conformance::run_case(c);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_TRUE(a.trace.has_value());
  ASSERT_TRUE(b.trace.has_value());
  EXPECT_EQ(to_text(*a.trace), to_text(*b.trace));
}

TEST(ConformanceGenerator, GeneratedCasesAreAdmissibleByConstruction) {
  for (const TimingModel model : conformance::all_models()) {
    for (const Substrate substrate : conformance::all_substrates()) {
      for (std::uint64_t seed = 100; seed < 110; ++seed) {
        const CaseDescriptor c = conformance::generate_case(
            model, substrate, conformance::case_seed(3, 0, seed));
        const conformance::GeneratedRun run = conformance::run_case(c);
        ASSERT_TRUE(run.ok) << c.to_string() << ": " << run.error;
        EXPECT_TRUE(run.verdict.admissible)
            << c.to_string() << ": " << run.verdict.admissibility_violation;
      }
    }
  }
}

TEST(ConformanceGenerator, CaseSeedsAreDistinctAcrossCellsAndIndices) {
  // Not a cryptographic claim — just a guard against accidentally feeding
  // every cell the same stream.
  const std::uint64_t a = conformance::case_seed(1, 0, 0);
  const std::uint64_t b = conformance::case_seed(1, 0, 1);
  const std::uint64_t c = conformance::case_seed(1, 1, 0);
  const std::uint64_t d = conformance::case_seed(2, 0, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(b, c);
}

// --- Oracle stack ------------------------------------------------------------

TEST(ConformanceOracles, CorrectAlgorithmsPassTheFullStack) {
  const conformance::OracleOptions options;
  for (const TimingModel model : conformance::all_models()) {
    for (const Substrate substrate : conformance::all_substrates()) {
      for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const CaseDescriptor c = conformance::generate_case(
            model, substrate, conformance::case_seed(11, 5, seed));
        const CaseResult result = conformance::check_case(c, options);
        EXPECT_TRUE(result.ok())
            << c.to_string() << ": [" << result.first_oracle() << "] "
            << (result.failures.empty() ? std::string()
                                        : result.failures[0].detail);
      }
    }
  }
}

TEST(ConformanceOracles, MutatedReferenceIsDetected) {
  conformance::OracleOptions options;
  options.mutate_reference = true;
  bool fired = false;
  for (std::uint64_t seed = 0; seed < 20 && !fired; ++seed) {
    const CaseDescriptor c = conformance::generate_case(
        TimingModel::kSemiSynchronous, Substrate::kSharedMemory,
        conformance::case_seed(5, 4, seed));
    const CaseResult result = conformance::check_case(c, options);
    if (!result.ok()) {
      EXPECT_EQ(result.first_oracle(), "sessions-ref");
      fired = true;
    }
  }
  EXPECT_TRUE(fired) << "planted reference bug never detected";
}

// --- Harness -----------------------------------------------------------------

ConformanceConfig small_config() {
  ConformanceConfig config;
  config.seed = 2026;
  config.cases_per_cell = 25;
  return config;
}

TEST(ConformanceHarness, QuickRunIsCleanOnCorrectAlgorithms) {
  ConformanceConfig config = small_config();
  config.jobs = 2;
  const ConformanceReport report = conformance::run_conformance(config);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.total_cases,
            config.cases_per_cell *
                static_cast<std::int64_t>(report.cells.size()));
  EXPECT_EQ(report.cells.size(),
            conformance::all_models().size() *
                conformance::all_substrates().size());
  EXPECT_FALSE(report.digest.empty());
}

TEST(ConformanceHarness, ReportIsJobCountInvariant) {
  ConformanceConfig config = small_config();
  config.jobs = 1;
  const ConformanceReport reference = conformance::run_conformance(config);
  for (const int jobs : {2, 8}) {
    config.jobs = jobs;
    const ConformanceReport report = conformance::run_conformance(config);
    EXPECT_EQ(report.digest, reference.digest) << "jobs=" << jobs;
    EXPECT_EQ(report.total_cases, reference.total_cases);
    EXPECT_EQ(report.total_failures, reference.total_failures);
    ASSERT_EQ(report.cells.size(), reference.cells.size());
    for (std::size_t i = 0; i < report.cells.size(); ++i) {
      EXPECT_EQ(report.cells[i].digest, reference.cells[i].digest)
          << "jobs=" << jobs << " cell=" << i;
      EXPECT_EQ(report.cells[i].sessions_total,
                reference.cells[i].sessions_total);
      EXPECT_EQ(report.cells[i].steps_total, reference.cells[i].steps_total);
    }
  }
}

TEST(ConformanceHarness, RespectsExecDefaultJobs) {
  // jobs=0 resolves through the exec:: default; the report must still match
  // the explicit serial run.
  ConformanceConfig config = small_config();
  config.cases_per_cell = 10;
  config.jobs = 1;
  const ConformanceReport reference = conformance::run_conformance(config);
  JobsGuard guard(4);
  config.jobs = 0;
  const ConformanceReport report = conformance::run_conformance(config);
  EXPECT_EQ(report.digest, reference.digest);
}

// --- Witness and shrinker ----------------------------------------------------

TEST(ConformanceWitness, RoundTripsThroughText) {
  CaseDescriptor c = conformance::generate_case(
      TimingModel::kPeriodic, Substrate::kMessagePassing, 77);
  c.algorithm_override = "broken-nowait";
  const conformance::GeneratedRun run = conformance::run_case(c);
  ASSERT_TRUE(run.ok) << run.error;
  ASSERT_TRUE(run.trace.has_value());

  conformance::Witness w;
  w.descriptor = c;
  w.oracle = "solves";
  w.trace_text = to_text(*run.trace);
  const std::string text = conformance::write_witness(w);

  std::string error;
  const auto parsed = conformance::parse_witness(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->oracle, w.oracle);
  EXPECT_EQ(parsed->trace_text, w.trace_text);
  EXPECT_EQ(parsed->descriptor.to_string(), c.to_string());
}

TEST(ConformanceWitness, ParseRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(conformance::parse_witness("", &error).has_value());
  EXPECT_FALSE(
      conformance::parse_witness("not a witness\n", &error).has_value());
  EXPECT_FALSE(error.empty());
}

// Finds a failing broken-algorithm case for the shrinker tests.
std::optional<CaseDescriptor> find_failing_case(
    const conformance::OracleOptions& options) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    CaseDescriptor c = conformance::generate_case(
        TimingModel::kSemiSynchronous, Substrate::kSharedMemory,
        conformance::case_seed(9, 6, seed));
    c.algorithm_override = "broken-toofewsteps:1";
    if (!conformance::check_case(c, options).ok()) return c;
  }
  return std::nullopt;
}

TEST(ConformanceShrinker, MinimizesAndPreservesTheFailureMode) {
  const conformance::OracleOptions options;
  const auto failing = find_failing_case(options);
  ASSERT_TRUE(failing.has_value());
  const CaseResult original = conformance::check_case(*failing, options);

  const auto shrunk = conformance::shrink_case(*failing, options);
  ASSERT_TRUE(shrunk.has_value());
  EXPECT_EQ(shrunk->oracle, original.first_oracle());
  EXPECT_LE(shrunk->steps, original.steps);
  EXPECT_LE(shrunk->minimized.spec.s, failing->spec.s);
  EXPECT_LE(shrunk->minimized.spec.n, failing->spec.n);

  // The minimized descriptor still fails with the same oracle.
  const CaseResult re = conformance::check_case(shrunk->minimized, options);
  EXPECT_EQ(re.first_oracle(), shrunk->oracle);
}

TEST(ConformanceShrinker, IsDeterministic) {
  const conformance::OracleOptions options;
  const auto failing = find_failing_case(options);
  ASSERT_TRUE(failing.has_value());
  const auto a = conformance::shrink_case(*failing, options);
  const auto b = conformance::shrink_case(*failing, options);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->minimized.to_string(), b->minimized.to_string());
  EXPECT_EQ(a->attempts, b->attempts);
  EXPECT_EQ(a->accepted, b->accepted);
}

TEST(ConformanceShrinker, RefusesPassingCases) {
  const conformance::OracleOptions options;
  const CaseDescriptor c = conformance::generate_case(
      TimingModel::kSynchronous, Substrate::kSharedMemory,
      conformance::case_seed(1, 0, 0));
  EXPECT_FALSE(conformance::shrink_case(c, options).has_value());
}

}  // namespace
}  // namespace sesp
