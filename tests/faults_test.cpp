// Fault-injection subsystem tests: the FaultPlan grammar, the FaultInjector
// hook semantics, and the fault-class x substrate grid — every injected
// fault class must end in {solved, degraded-with-verdict, diagnosed-SimError}
// on every substrate it applies to, with the diagnosis localizing the fault.

#include <gtest/gtest.h>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/p2p/knowledge_algs.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "faults/degradation.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "sim/experiment.hpp"

namespace sesp {
namespace {

// --- FaultPlan grammar ------------------------------------------------------

TEST(FaultPlanTest, ParsesFullGrammar) {
  std::string error;
  const auto plan = FaultPlan::parse(
      "crash:0@3,crash:2@5,timing:1@4*8,drop:10%,drop:#7,dup:5%,delay:20%,"
      "extra:3/2,corrupt:15%,corrupt:@9,seed:42",
      &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->crashes.size(), 2u);
  EXPECT_EQ(plan->crashes[0].process, 0);
  EXPECT_EQ(plan->crashes[0].at_step, 3);
  EXPECT_EQ(plan->crashes[1].process, 2);
  ASSERT_EQ(plan->timing.size(), 1u);
  EXPECT_EQ(plan->timing[0].process, 1);
  EXPECT_EQ(plan->timing[0].gap_scale, Ratio(8));
  EXPECT_EQ(plan->messages.drop_percent, 10u);
  ASSERT_EQ(plan->messages.drop_ids.size(), 1u);
  EXPECT_EQ(plan->messages.drop_ids[0], 7);
  EXPECT_EQ(plan->messages.dup_percent, 5u);
  EXPECT_EQ(plan->messages.delay_percent, 20u);
  EXPECT_EQ(plan->messages.extra_delay, Ratio(3, 2));
  EXPECT_EQ(plan->writes.corrupt_percent, 15u);
  ASSERT_EQ(plan->writes.corrupt_at.size(), 1u);
  EXPECT_EQ(plan->writes.corrupt_at[0], 9);
  EXPECT_EQ(plan->seed, 42u);
  EXPECT_FALSE(plan->empty());
}

TEST(FaultPlanTest, RoundTripsThroughToString) {
  const auto plan =
      FaultPlan::parse("crash:1@2,timing:0@3*1/4,drop:25%,seed:7");
  ASSERT_TRUE(plan.has_value());
  const auto again = FaultPlan::parse(plan->to_string());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->to_string(), plan->to_string());
}

TEST(FaultPlanTest, RejectsMalformedClauses) {
  std::string error;
  EXPECT_FALSE(FaultPlan::parse("crash:xyz", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FaultPlan::parse("drop:150%").has_value());
  EXPECT_FALSE(FaultPlan::parse("timing:0@1", nullptr).has_value());
  EXPECT_FALSE(FaultPlan::parse("timing:0@1*0").has_value());
  EXPECT_FALSE(FaultPlan::parse("gremlins:3").has_value());
  EXPECT_FALSE(FaultPlan::parse("noclausehere").has_value());
}

TEST(FaultPlanTest, EmptyTextIsEmptyPlan) {
  const auto plan = FaultPlan::parse("");
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->empty());
  EXPECT_EQ(plan->to_string(), "(no faults)");
}

TEST(FaultPlanTest, RandomIsDeterministicPerSeed) {
  const FaultPlan a = FaultPlan::random(99, 5);
  const FaultPlan b = FaultPlan::random(99, 5);
  EXPECT_EQ(a.to_string(), b.to_string());
}

// --- FaultInjector hook semantics -------------------------------------------

TEST(FaultInjectorTest, CrashIsAbsorbingAndLoggedOnce) {
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{0, 3});
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.crash_now(0, 2, Time(1)));
  EXPECT_FALSE(inj.crashed(0));
  EXPECT_TRUE(inj.crash_now(0, 3, Time(2)));
  EXPECT_TRUE(inj.crashed(0));
  EXPECT_TRUE(inj.crash_now(0, 4, Time(3)));  // absorbing
  EXPECT_FALSE(inj.crash_now(1, 10, Time(3)));
  EXPECT_EQ(inj.crash_count(), 1);
  EXPECT_EQ(inj.injected(FaultKind::kCrash), 1);
}

TEST(FaultInjectorTest, DropWinsOverDuplicateForSameId) {
  FaultPlan plan;
  plan.messages.drop_ids.push_back(7);
  plan.messages.dup_ids.push_back(7);
  FaultInjector inj(plan);
  const MessageAction act = inj.on_send(7, 0, 1, Time(1));
  EXPECT_TRUE(act.drop);
  EXPECT_FALSE(act.duplicate);
  const MessageAction other = inj.on_send(8, 0, 1, Time(1));
  EXPECT_FALSE(other.drop);
  EXPECT_FALSE(other.duplicate);
  EXPECT_EQ(inj.injected(FaultKind::kDropMessage), 1);
}

TEST(FaultInjectorTest, PerturbScalesTheMatchingGapOnly) {
  FaultPlan plan;
  plan.timing.push_back(TimingFault{0, 1, Ratio(2)});
  FaultInjector inj(plan);
  // Gap 2 scaled by 2: prev 2, scheduled 4 -> 6.
  EXPECT_EQ(inj.perturb_step_time(0, 1, Time(2), Time(4)), Time(6));
  // Wrong step index / process: unchanged.
  EXPECT_EQ(inj.perturb_step_time(0, 2, Time(6), Time(8)), Time(8));
  EXPECT_EQ(inj.perturb_step_time(1, 1, Time(2), Time(4)), Time(4));
  EXPECT_EQ(inj.injected(FaultKind::kTimingViolation), 1);
}

TEST(FaultInjectorTest, CorruptAtIndexesEligibleWrites) {
  FaultPlan plan;
  plan.writes.corrupt_at.push_back(1);
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.corrupt_write(0, 0, Time(1)));
  EXPECT_TRUE(inj.corrupt_write(0, 0, Time(2)));
  EXPECT_FALSE(inj.corrupt_write(0, 0, Time(3)));
  EXPECT_EQ(inj.injected(FaultKind::kWriteCorruption), 1);
}

// --- Outcome classification -------------------------------------------------

TEST(ClassifyOutcomeTest, BucketsAreExhaustiveAndCorrect) {
  Verdict ok;
  ok.admissible = true;
  ok.solves = true;
  EXPECT_EQ(classify_outcome(std::nullopt, ok), RunOutcome::kSolved);

  Verdict partial;
  partial.admissible = true;
  partial.solves = false;
  EXPECT_EQ(classify_outcome(std::nullopt, partial), RunOutcome::kDegraded);

  SimError watchdog;
  watchdog.code = SimErrorCode::kStepLimitExceeded;
  EXPECT_EQ(classify_outcome(watchdog, partial), RunOutcome::kDegraded);
  watchdog.code = SimErrorCode::kNoProgress;
  EXPECT_EQ(classify_outcome(watchdog, partial), RunOutcome::kDegraded);

  SimError structural;
  structural.code = SimErrorCode::kUnknownMessage;
  EXPECT_EQ(classify_outcome(structural, partial), RunOutcome::kDiagnosed);

  Verdict inadmissible;
  inadmissible.admissible = false;
  EXPECT_EQ(classify_outcome(std::nullopt, inadmissible),
            RunOutcome::kDiagnosed);
  // Inadmissibility dominates even a watchdog error.
  watchdog.code = SimErrorCode::kStepLimitExceeded;
  EXPECT_EQ(classify_outcome(watchdog, inadmissible), RunOutcome::kDiagnosed);
}

// --- Fault class x substrate grid -------------------------------------------

// Small semi-synchronous MPM instance used by the MPM grid rows.
struct MpmFixture {
  ProblemSpec spec{3, 3, 2};
  TimingConstraints constraints =
      TimingConstraints::semi_synchronous(Ratio(1), Ratio(2), Ratio(4));
  // The communicating branch, so message faults have traffic to hit (the
  // step-counting branch sends nothing and trivially shrugs off loss).
  SemiSyncMpmFactory factory{SemiSyncStrategy::kCommunicate};
  MpmRunLimits limits;

  MpmFixture() { limits.max_steps = 30'000; }

  MpmOutcome run(const std::string& faults_text, FaultInjector* out = nullptr,
                 std::vector<ProcessId>* crashed = nullptr) {
    const auto plan = FaultPlan::parse(faults_text);
    EXPECT_TRUE(plan.has_value()) << faults_text;
    FaultInjector local(*plan);
    FaultInjector& inj = out ? *out : local;
    FixedPeriodScheduler sched(spec.n, constraints.c2);
    FixedDelay delay(constraints.d2);
    const MpmOutcome o = run_mpm_once(spec, constraints, factory, sched,
                                      delay, limits, &inj);
    if (crashed) *crashed = o.run.crashed;
    return o;
  }
};

TEST(FaultGridMpm, BaselineSolves) {
  MpmFixture f;
  const MpmOutcome out = f.run("");
  EXPECT_EQ(classify_outcome(out.run.error, out.verdict), RunOutcome::kSolved);
}

TEST(FaultGridMpm, CrashDegrades) {
  MpmFixture f;
  std::vector<ProcessId> crashed;
  const MpmOutcome out = f.run("crash:0@1", nullptr, &crashed);
  ASSERT_EQ(crashed.size(), 1u);
  EXPECT_EQ(crashed[0], 0);
  EXPECT_TRUE(out.verdict.admissible)
      << out.verdict.admissibility_violation;  // crash does not bend time
  EXPECT_FALSE(out.verdict.solves);
  EXPECT_EQ(classify_outcome(out.run.error, out.verdict),
            RunOutcome::kDegraded);
}

TEST(FaultGridMpm, TotalLossHitsWatchdogAndDegrades) {
  FaultPlan plan;
  plan.messages.drop_percent = 100;
  FaultInjector inj(plan);
  MpmFixture f;
  FixedPeriodScheduler sched(f.spec.n, f.constraints.c2);
  FixedDelay delay(f.constraints.d2);
  const MpmOutcome out = run_mpm_once(f.spec, f.constraints, f.factory, sched,
                                      delay, f.limits, &inj);
  ASSERT_TRUE(out.run.error.has_value());
  EXPECT_TRUE(out.run.hit_limit);
  EXPECT_FALSE(out.verdict.solves);
  EXPECT_GT(inj.injected(FaultKind::kDropMessage), 0);
  EXPECT_EQ(classify_outcome(out.run.error, out.verdict),
            RunOutcome::kDegraded);
}

TEST(FaultGridMpm, DuplicationNeverAborts) {
  FaultPlan plan;
  plan.messages.dup_percent = 100;
  plan.messages.extra_delay = Duration(0);
  FaultInjector inj(plan);
  MpmFixture f;
  FixedPeriodScheduler sched(f.spec.n, f.constraints.c2);
  FixedDelay delay(f.constraints.d2);
  const MpmOutcome out = run_mpm_once(f.spec, f.constraints, f.factory, sched,
                                      delay, f.limits, &inj);
  EXPECT_GT(inj.injected(FaultKind::kDuplicateMessage), 0);
  // Duplicates are cloned trace messages, so the trace stays structurally
  // valid; whatever the verdict, the run is classified, never aborted.
  const RunOutcome oc = classify_outcome(out.run.error, out.verdict);
  EXPECT_TRUE(oc == RunOutcome::kSolved || oc == RunOutcome::kDegraded ||
              oc == RunOutcome::kDiagnosed);
  // Every duplicate is a distinct trace message, counted as sent.
  EXPECT_EQ(out.run.trace.messages().size(),
            static_cast<std::size_t>(out.run.messages_sent));
  EXPECT_GE(out.run.messages_sent,
            2 * inj.injected(FaultKind::kDuplicateMessage));
}

TEST(FaultGridMpm, ExtraDelayIsDiagnosedWithSite) {
  FaultPlan plan;
  plan.messages.delay_percent = 100;
  plan.messages.extra_delay = Duration(10);  // pushes past d2 = 4
  FaultInjector inj(plan);
  MpmFixture f;
  FixedPeriodScheduler sched(f.spec.n, f.constraints.c2);
  FixedDelay delay(f.constraints.d2);
  const MpmOutcome out = run_mpm_once(f.spec, f.constraints, f.factory, sched,
                                      delay, f.limits, &inj);
  EXPECT_GT(inj.injected(FaultKind::kDelayMessage), 0);
  EXPECT_FALSE(out.verdict.admissible);
  ASSERT_TRUE(out.verdict.violation_site.has_value());
  EXPECT_NE(out.verdict.violation_site->message, kNoMsg);
  EXPECT_EQ(classify_outcome(out.run.error, out.verdict),
            RunOutcome::kDiagnosed);
}

TEST(FaultGridMpm, TimingViolationIsDiagnosedAtTheProcess) {
  MpmFixture f;
  const MpmOutcome out = f.run("timing:1@3*8");
  EXPECT_FALSE(out.verdict.admissible);
  ASSERT_TRUE(out.verdict.violation_site.has_value());
  EXPECT_EQ(out.verdict.violation_site->process, 1);
  EXPECT_EQ(classify_outcome(out.run.error, out.verdict),
            RunOutcome::kDiagnosed);
}

TEST(FaultGridMpm, TooFastTimingViolationIsDiagnosed) {
  MpmFixture f;
  const MpmOutcome out = f.run("timing:0@2*1/8");  // gap below c1
  EXPECT_FALSE(out.verdict.admissible);
  EXPECT_EQ(classify_outcome(out.run.error, out.verdict),
            RunOutcome::kDiagnosed);
}

// Small semi-synchronous SMM instance for the SMM grid rows.
struct SmmFixture {
  ProblemSpec spec{2, 4, 2};
  TimingConstraints constraints =
      TimingConstraints::semi_synchronous(Ratio(1), Ratio(2));
  // Communicating branch: port knowledge flows through the broadcast tree,
  // so write corruption and relay crashes have propagation to break.
  SemiSyncSmmFactory factory{SmmSemiSyncStrategy::kCommunicate};
  SmmRunLimits limits;

  SmmFixture() { limits.max_steps = 30'000; }

  SmmOutcome run(FaultInjector* inj) {
    const std::int32_t total = smm_total_processes(spec.n, spec.b);
    FixedPeriodScheduler sched(total, constraints.c2);
    return run_smm_once(spec, constraints, factory, sched, limits, inj);
  }
};

TEST(FaultGridSmm, BaselineSolves) {
  SmmFixture f;
  const SmmOutcome out = f.run(nullptr);
  EXPECT_EQ(classify_outcome(out.run.error, out.verdict), RunOutcome::kSolved);
}

TEST(FaultGridSmm, PortCrashDegrades) {
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{0, 1});
  FaultInjector inj(plan);
  SmmFixture f;
  const SmmOutcome out = f.run(&inj);
  EXPECT_FALSE(out.run.crashed.empty());
  EXPECT_FALSE(out.verdict.solves);
  EXPECT_EQ(classify_outcome(out.run.error, out.verdict),
            RunOutcome::kDegraded);
}

TEST(FaultGridSmm, RelayCrashStarvesTheTreeGracefully) {
  SmmFixture f;
  FaultPlan plan;
  // Relays are laid out after the n ports; crash the first relay.
  plan.crashes.push_back(CrashFault{f.spec.n, 1});
  FaultInjector inj(plan);
  const SmmOutcome out = f.run(&inj);
  EXPECT_FALSE(out.run.crashed.empty());
  const RunOutcome oc = classify_outcome(out.run.error, out.verdict);
  EXPECT_NE(oc, RunOutcome::kDiagnosed);  // schedule itself stays admissible
}

TEST(FaultGridSmm, TotalWriteCorruptionDegrades) {
  FaultPlan plan;
  plan.writes.corrupt_percent = 100;
  FaultInjector inj(plan);
  SmmFixture f;
  const SmmOutcome out = f.run(&inj);
  EXPECT_GT(inj.injected(FaultKind::kWriteCorruption), 0);
  EXPECT_NE(classify_outcome(out.run.error, out.verdict), RunOutcome::kSolved);
}

TEST(FaultGridSmm, TimingViolationIsDiagnosed) {
  FaultPlan plan;
  plan.timing.push_back(TimingFault{1, 2, Ratio(8)});
  FaultInjector inj(plan);
  SmmFixture f;
  const SmmOutcome out = f.run(&inj);
  EXPECT_FALSE(out.verdict.admissible);
  ASSERT_TRUE(out.verdict.violation_site.has_value());
  EXPECT_EQ(out.verdict.violation_site->process, 1);
  EXPECT_EQ(classify_outcome(out.run.error, out.verdict),
            RunOutcome::kDiagnosed);
}

// Asynchronous P2P ring for the P2P grid rows.
struct P2pFixture {
  ProblemSpec spec{2, 4, 2};
  Topology topo = Topology::ring(4);
  TimingConstraints constraints =
      TimingConstraints::asynchronous(Ratio(2), Ratio(4));
  P2pRoundsFactory factory;
  P2pRunLimits limits;

  P2pFixture() { limits.max_steps = 30'000; }

  P2pOutcome run(FaultInjector* inj) {
    FixedPeriodScheduler sched(spec.n, constraints.c2);
    FixedDelay delay(constraints.d2);
    return run_p2p_once(spec, constraints, topo, factory, sched, delay,
                        limits, inj);
  }
};

TEST(FaultGridP2p, BaselineSolves) {
  P2pFixture f;
  const P2pOutcome out = f.run(nullptr);
  EXPECT_EQ(classify_outcome(out.run.error, out.verdict), RunOutcome::kSolved);
}

TEST(FaultGridP2p, CrashDegrades) {
  FaultPlan plan;
  plan.crashes.push_back(CrashFault{1, 1});
  FaultInjector inj(plan);
  P2pFixture f;
  const P2pOutcome out = f.run(&inj);
  ASSERT_FALSE(out.run.crashed.empty());
  EXPECT_EQ(out.run.crashed[0], 1);
  EXPECT_FALSE(out.verdict.solves);
  EXPECT_EQ(classify_outcome(out.run.error, out.verdict),
            RunOutcome::kDegraded);
}

TEST(FaultGridP2p, TotalLossDegradesViaWatchdog) {
  FaultPlan plan;
  plan.messages.drop_percent = 100;
  FaultInjector inj(plan);
  P2pFixture f;
  const P2pOutcome out = f.run(&inj);
  ASSERT_TRUE(out.run.error.has_value());
  EXPECT_GT(inj.injected(FaultKind::kDropMessage), 0);
  EXPECT_EQ(classify_outcome(out.run.error, out.verdict),
            RunOutcome::kDegraded);
}

TEST(FaultGridP2p, ExtraDelayIsDiagnosed) {
  FaultPlan plan;
  plan.messages.delay_percent = 100;
  plan.messages.extra_delay = Duration(10);
  FaultInjector inj(plan);
  P2pFixture f;
  const P2pOutcome out = f.run(&inj);
  EXPECT_FALSE(out.verdict.admissible);
  EXPECT_EQ(classify_outcome(out.run.error, out.verdict),
            RunOutcome::kDiagnosed);
}

TEST(FaultGridP2p, TimingViolationIsDiagnosed) {
  FaultPlan plan;
  plan.timing.push_back(TimingFault{2, 2, Ratio(8)});
  FaultInjector inj(plan);
  P2pFixture f;
  const P2pOutcome out = f.run(&inj);
  EXPECT_FALSE(out.verdict.admissible);
  ASSERT_TRUE(out.verdict.violation_site.has_value());
  EXPECT_EQ(out.verdict.violation_site->process, 2);
}

// --- Invalid specs are diagnosed, not aborted -------------------------------

TEST(InvalidSpecTest, MpmRejectsNonPositiveN) {
  ProblemSpec bad{2, 0, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Ratio(1), Ratio(2), Ratio(4));
  SemiSyncMpmFactory factory;
  FixedPeriodScheduler sched(1, Ratio(2));
  FixedDelay delay(Ratio(4));
  const MpmOutcome out =
      run_mpm_once(bad, constraints, factory, sched, delay);
  ASSERT_TRUE(out.run.error.has_value());
  EXPECT_EQ(out.run.error->code, SimErrorCode::kInvalidSpec);
  EXPECT_FALSE(out.run.completed);
}

TEST(InvalidSpecTest, P2pRejectsTopologyMismatch) {
  ProblemSpec spec{2, 5, 2};
  Topology topo = Topology::ring(4);  // 4 nodes for n = 5
  const auto constraints =
      TimingConstraints::asynchronous(Ratio(2), Ratio(4));
  P2pRoundsFactory factory;
  FixedPeriodScheduler sched(5, Ratio(2));
  FixedDelay delay(Ratio(4));
  const P2pOutcome out =
      run_p2p_once(spec, constraints, topo, factory, sched, delay);
  ASSERT_TRUE(out.run.error.has_value());
  EXPECT_EQ(out.run.error->code, SimErrorCode::kInvalidSpec);
}

// --- WorstCase limit propagation --------------------------------------------

TEST(WorstCaseLimitTest, LimitHitAlwaysNamesAdversaryAndLimit) {
  const ProblemSpec spec{3, 3, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Ratio(1), Ratio(2), Ratio(4));
  SemiSyncMpmFactory factory;
  MpmRunLimits tiny;
  tiny.max_steps = 5;  // every adversary trips the step budget
  const WorstCase wc =
      mpm_worst_case(spec, constraints, factory, 2, 1234, tiny);
  EXPECT_TRUE(wc.any_hit_limit);
  EXPECT_FALSE(wc.all_solved);
  ASSERT_FALSE(wc.first_limit_hit.empty());
  EXPECT_NE(wc.first_limit_hit.find(to_string(SimErrorCode::kStepLimitExceeded)),
            std::string::npos)
      << wc.first_limit_hit;
  EXPECT_FALSE(wc.first_failure.empty());
}

// --- Degradation sweeps -----------------------------------------------------

TEST(DegradationTest, MpmGridClassifiesEveryCell) {
  const ProblemSpec spec{3, 3, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Ratio(1), Ratio(2), Ratio(4));
  SemiSyncMpmFactory factory;
  MpmRunLimits limits;
  limits.max_steps = 20'000;
  const DegradationReport report = mpm_degradation(
      spec, constraints, factory, {0, 1}, {0, 20}, 0x0FA17'1992ULL, limits);
  EXPECT_EQ(report.substrate, "mpm");
  ASSERT_EQ(report.cells.size(), 4u);
  // Fault-free cell is the baseline and must solve.
  EXPECT_EQ(report.cells[0].crashes, 0);
  EXPECT_EQ(report.cells[0].fault_percent, 0);
  EXPECT_EQ(report.cells[0].outcome, RunOutcome::kSolved);
  EXPECT_EQ(report.cells[0].injected, 0);
  // Crash cells cannot fully solve: the crashed port never idles.
  for (const DegradationCell& cell : report.cells) {
    if (cell.crashes > 0) EXPECT_NE(cell.outcome, RunOutcome::kSolved);
    EXPECT_FALSE(cell.diagnostic.empty());
  }
  EXPECT_EQ(report.count(RunOutcome::kSolved) +
                report.count(RunOutcome::kDegraded) +
                report.count(RunOutcome::kDiagnosed),
            static_cast<std::int32_t>(report.cells.size()));
  EXPECT_NE(report.to_string().find("mpm"), std::string::npos);
}

TEST(DegradationTest, SmmGridClassifiesEveryCell) {
  const ProblemSpec spec{2, 4, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Ratio(1), Ratio(2));
  SemiSyncSmmFactory factory;
  SmmRunLimits limits;
  limits.max_steps = 20'000;
  const DegradationReport report = smm_degradation(
      spec, constraints, factory, {0, 1}, {0, 20}, 0x0FA17'1992ULL, limits);
  EXPECT_EQ(report.substrate, "smm");
  ASSERT_EQ(report.cells.size(), 4u);
  EXPECT_EQ(report.cells[0].outcome, RunOutcome::kSolved);
  for (const DegradationCell& cell : report.cells) {
    if (cell.crashes > 0) EXPECT_NE(cell.outcome, RunOutcome::kSolved);
    EXPECT_FALSE(cell.diagnostic.empty());
  }
}

}  // namespace
}  // namespace sesp
