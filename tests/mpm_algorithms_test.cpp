#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/async_alg.hpp"
#include "algorithms/mpm/broken_algs.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/mpm/sync_alg.hpp"
#include "analysis/bounds.hpp"
#include "sim/experiment.hpp"

namespace sesp {
namespace {

using InstanceParam = std::tuple<int, int>;  // (s, n)

ProblemSpec spec_of(const InstanceParam& p) {
  return ProblemSpec{std::get<0>(p), std::get<1>(p), 2};
}

const auto kInstances =
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(2, 3, 5, 8));

// --- Synchronous ------------------------------------------------------------

class SyncMpmConformance : public ::testing::TestWithParam<InstanceParam> {};

TEST_P(SyncMpmConformance, SolvesExactlyAtTheBound) {
  const ProblemSpec spec = spec_of(GetParam());
  const auto constraints = TimingConstraints::synchronous(Duration(3),
                                                          Duration(7));
  SyncMpmFactory factory;
  const WorstCase wc = mpm_worst_case(spec, constraints, factory);
  EXPECT_TRUE(wc.all_admissible) << wc.first_failure;
  EXPECT_TRUE(wc.all_solved) << wc.first_failure;
  // L = U = s*c2, and the algorithm is exactly tight.
  EXPECT_EQ(wc.max_termination, bounds::sync_tight(spec, Duration(3)));
}

INSTANTIATE_TEST_SUITE_P(Grid, SyncMpmConformance, kInstances);

// --- Periodic: A(p) ---------------------------------------------------------

class PeriodicMpmConformance : public ::testing::TestWithParam<InstanceParam> {
};

TEST_P(PeriodicMpmConformance, SolvesWithinTheoremBound) {
  const ProblemSpec spec = spec_of(GetParam());
  // Heterogeneous periods: process i gets period 1 + i/2 (c_max grows with n).
  std::vector<Duration> periods;
  for (std::int32_t i = 0; i < spec.n; ++i)
    periods.push_back(Duration(1) + Ratio(i, 2));
  const auto constraints = TimingConstraints::periodic(periods, Duration(5));
  PeriodicMpmFactory factory;
  const WorstCase wc = mpm_worst_case(spec, constraints, factory);
  EXPECT_TRUE(wc.all_admissible) << wc.first_failure;
  EXPECT_TRUE(wc.all_solved) << wc.first_failure;
  const Time upper =
      bounds::periodic_mp_upper(spec, constraints.c_max(), Duration(5));
  EXPECT_LE(wc.max_termination, upper);
  // The lower bound of Theorem 4.2 is respected by the measured worst case
  // when s >= 2 (for s == 1 the algorithm may finish before d2 elapses
  // everywhere, but never before s*c_max).
  EXPECT_GE(wc.max_termination, Ratio(spec.s) * constraints.c_max());
}

TEST_P(PeriodicMpmConformance, NoWaitVariantMissesSessionsUnderSlowOne) {
  const ProblemSpec spec = spec_of(GetParam());
  if (spec.s < 2) GTEST_SKIP() << "one session needs no coordination";
  // One process is much slower than the rest: without waiting, the fast
  // processes idle before the slow one has taken s-1 steps.
  std::vector<Duration> periods(static_cast<std::size_t>(spec.n), Duration(1));
  periods[0] = Duration(100);
  const auto constraints = TimingConstraints::periodic(periods, Duration(1));
  NoWaitPeriodicMpmFactory broken;
  FixedPeriodScheduler sched(periods);
  FixedDelay delay(Duration(1));
  const MpmOutcome out = run_mpm_once(spec, constraints, broken, sched, delay);
  EXPECT_TRUE(out.verdict.admissible);
  EXPECT_LT(out.verdict.sessions, spec.s)
      << "broken algorithm unexpectedly survived";
}

INSTANTIATE_TEST_SUITE_P(Grid, PeriodicMpmConformance, kInstances);

// --- Semi-synchronous -------------------------------------------------------

class SemiSyncMpmConformance
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SemiSyncMpmConformance, BothStrategiesWithinBound) {
  const auto [s, n, c2v, d2v] = GetParam();
  const ProblemSpec spec{s, n, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(c2v),
                                          Duration(d2v));
  for (const SemiSyncStrategy strategy :
       {SemiSyncStrategy::kAuto, SemiSyncStrategy::kStepCount,
        SemiSyncStrategy::kCommunicate}) {
    SemiSyncMpmFactory factory(strategy);
    const WorstCase wc = mpm_worst_case(spec, constraints, factory,
                                        /*random_runs=*/4);
    EXPECT_TRUE(wc.all_admissible) << factory.name() << ": "
                                   << wc.first_failure;
    EXPECT_TRUE(wc.all_solved) << factory.name() << ": " << wc.first_failure;
    if (strategy == SemiSyncStrategy::kAuto) {
      const Time upper = bounds::semisync_mp_upper(
          spec, Duration(1), Duration(c2v), Duration(d2v));
      EXPECT_LE(wc.max_termination, upper) << factory.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SemiSyncMpmConformance,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(2, 5),
                       ::testing::Values(2, 3, 8),
                       ::testing::Values(1, 10)));

// --- Sporadic: A(sp) --------------------------------------------------------

class SporadicMpmConformance
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SporadicMpmConformance, SolvesUnderAdversaries) {
  const auto [s, n, d1v, d2v] = GetParam();
  if (d1v > d2v) GTEST_SKIP();
  const ProblemSpec spec{s, n, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(d1v), Duration(d2v));
  SporadicMpmFactory factory;
  const WorstCase wc = mpm_worst_case(spec, constraints, factory,
                                      /*random_runs=*/4);
  EXPECT_TRUE(wc.all_admissible) << wc.first_failure;
  EXPECT_TRUE(wc.all_solved) << wc.first_failure;
}

TEST_P(SporadicMpmConformance, TimeWithinGammaBound) {
  const auto [s, n, d1v, d2v] = GetParam();
  if (d1v > d2v) GTEST_SKIP();
  const ProblemSpec spec{s, n, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(d1v), Duration(d2v));
  SporadicMpmFactory factory;
  // Deterministic worst case: all steps at c1, delays at d2.
  FixedPeriodScheduler sched(spec.n, Duration(1));
  FixedDelay delay{Duration(d2v)};
  const MpmOutcome out = run_mpm_once(spec, constraints, factory, sched, delay);
  ASSERT_TRUE(out.run.completed);
  ASSERT_TRUE(out.verdict.admissible) << out.verdict.admissibility_violation;
  EXPECT_GE(out.verdict.sessions, spec.s);
  if (spec.s >= 2 && out.verdict.gamma) {
    const Time upper = bounds::sporadic_mp_upper(
        spec, Duration(1), Duration(d1v), Duration(d2v), *out.verdict.gamma);
    EXPECT_LE(*out.verdict.termination_time, upper);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SporadicMpmConformance,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(2, 4),
                       ::testing::Values(0, 2, 5),
                       ::testing::Values(5, 6, 12)));

// --- Asynchronous -----------------------------------------------------------

class AsyncMpmConformance : public ::testing::TestWithParam<InstanceParam> {};

TEST_P(AsyncMpmConformance, SolvesWithinBound) {
  const ProblemSpec spec = spec_of(GetParam());
  const auto constraints = TimingConstraints::asynchronous(/*c2=*/2,
                                                           /*d2=*/5);
  AsyncMpmFactory factory;
  const WorstCase wc = mpm_worst_case(spec, constraints, factory,
                                      /*random_runs=*/4);
  EXPECT_TRUE(wc.all_admissible) << wc.first_failure;
  EXPECT_TRUE(wc.all_solved) << wc.first_failure;
  EXPECT_LE(wc.max_termination,
            bounds::async_mp_upper(spec, Duration(2), Duration(5)));
}

INSTANTIATE_TEST_SUITE_P(Grid, AsyncMpmConformance, kInstances);

// --- Message-content sanity across all algorithms ---------------------------

TEST(MpmAlgorithmsTest, FactoriesReportNames) {
  EXPECT_STREQ(SyncMpmFactory{}.name(), "sync-mpm");
  EXPECT_STREQ(PeriodicMpmFactory{}.name(), "A(p)-mpm");
  EXPECT_STREQ(SporadicMpmFactory{}.name(), "A(sp)-mpm");
  EXPECT_STREQ(AsyncMpmFactory{}.name(), "async-mpm");
  EXPECT_STREQ(SemiSyncMpmFactory{SemiSyncStrategy::kStepCount}.name(),
               "semisync-mpm(steps)");
}

TEST(MpmAlgorithmsTest, SemiSyncAutoPicksCheaperBranch) {
  // Cheap communication: d2 small.
  EXPECT_EQ(SemiSyncMpmFactory::pick(
                TimingConstraints::semi_synchronous(1, 100, 1)),
            SemiSyncStrategy::kCommunicate);
  // Cheap stepping: c2/c1 small, d2 huge.
  EXPECT_EQ(SemiSyncMpmFactory::pick(
                TimingConstraints::semi_synchronous(1, 2, 1000)),
            SemiSyncStrategy::kStepCount);
}

}  // namespace
}  // namespace sesp
