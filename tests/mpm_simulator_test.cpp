#include "mpm/mpm_simulator.hpp"

#include <gtest/gtest.h>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/async_alg.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "algorithms/mpm/sync_alg.hpp"
#include "session/session_counter.hpp"
#include "timing/admissibility.hpp"

namespace sesp {
namespace {

TEST(MpmSimulatorTest, SyncAlgorithmProducesLockstepTrace) {
  const ProblemSpec spec{/*s=*/3, /*n=*/2, /*b=*/2};
  const auto constraints = TimingConstraints::synchronous(/*c2=*/2, /*d2=*/5);
  SyncMpmFactory factory;
  FixedPeriodScheduler sched(spec.n, constraints.c2);
  FixedDelay delay(constraints.d2);
  MpmSimulator sim(spec, constraints, factory, sched, delay);
  const MpmRunResult run = sim.run();

  EXPECT_TRUE(run.completed);
  EXPECT_FALSE(run.hit_limit);
  EXPECT_EQ(run.compute_steps, 6);  // 2 processes x 3 steps
  EXPECT_EQ(run.messages_sent, 0);
  EXPECT_TRUE(check_admissible(run.trace, constraints));
  EXPECT_EQ(count_sessions(run.trace).sessions, 3);
  EXPECT_EQ(*run.trace.termination_time(), Time(6));  // s * c2
}

TEST(MpmSimulatorTest, EveryComputeStepIsAPortStep) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints = TimingConstraints::synchronous(1, 1);
  SyncMpmFactory factory;
  FixedPeriodScheduler sched(spec.n, constraints.c2);
  FixedDelay delay(constraints.d2);
  const MpmRunResult run =
      MpmSimulator(spec, constraints, factory, sched, delay).run();
  for (const StepRecord& st : run.trace.steps())
    if (st.is_compute()) {
      EXPECT_EQ(st.port, st.process);
    }
}

TEST(MpmSimulatorTest, BroadcastReachesEveryoneIncludingSelf) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints = TimingConstraints::periodic(
      std::vector<Duration>(3, Duration(1)), /*d2=*/2);
  PeriodicMpmFactory factory;
  FixedPeriodScheduler sched(constraints.periods);
  FixedDelay delay(Duration(2));
  const MpmRunResult run =
      MpmSimulator(spec, constraints, factory, sched, delay).run();
  EXPECT_TRUE(run.completed);
  // A(p) broadcasts once per process; each broadcast fans out to n
  // recipients (self included).
  EXPECT_EQ(run.messages_sent, 3 * 3);
  int self_deliveries = 0;
  for (const MessageRecord& m : run.trace.messages())
    if (m.sender == m.recipient && m.delivered()) ++self_deliveries;
  EXPECT_EQ(self_deliveries, 3);
}

TEST(MpmSimulatorTest, MessageDelayIsSendToDeliver) {
  const ProblemSpec spec{2, 2, 2};
  const auto constraints = TimingConstraints::periodic(
      std::vector<Duration>(2, Duration(1)), /*d2=*/Duration(7, 2));
  PeriodicMpmFactory factory;
  FixedPeriodScheduler sched(constraints.periods);
  FixedDelay delay(Duration(7, 2));
  const MpmRunResult run =
      MpmSimulator(spec, constraints, factory, sched, delay).run();
  for (const MessageRecord& m : run.trace.messages()) {
    if (!m.delivered()) continue;
    const Duration d = run.trace.steps()[m.deliver_step].time -
                       run.trace.steps()[m.send_step].time;
    EXPECT_EQ(d, Duration(7, 2));
    if (m.received()) {
      EXPECT_GE(m.receive_step, m.deliver_step);
    }
  }
}

TEST(MpmSimulatorTest, ComputeBeforeDeliverAtEqualTime) {
  // With c2 = 1 and d2 = 1, deliveries land exactly on step times; the
  // adversarial tie-break must make the receiving step the *next* one.
  const ProblemSpec spec{3, 2, 2};
  const auto constraints = TimingConstraints::asynchronous(/*c2=*/1, /*d2=*/1);
  AsyncMpmFactory factory;
  FixedPeriodScheduler sched(spec.n, Duration(1));
  FixedDelay delay(Duration(1));
  const MpmRunResult run =
      MpmSimulator(spec, constraints, factory, sched, delay).run();
  EXPECT_TRUE(run.completed);
  for (const MessageRecord& m : run.trace.messages()) {
    if (!m.received()) continue;
    const Time deliver_t = run.trace.steps()[m.deliver_step].time;
    const Time receive_t = run.trace.steps()[m.receive_step].time;
    EXPECT_GT(receive_t, deliver_t);
  }
}

TEST(MpmSimulatorTest, RunLimitStopsNonTerminatingRun) {
  // A(p) with a huge d2 and a delay adversary that never delivers in time is
  // emulated by a tiny step limit instead.
  const ProblemSpec spec{100000, 2, 2};
  const auto constraints = TimingConstraints::synchronous(1, 1);
  SyncMpmFactory factory;
  FixedPeriodScheduler sched(spec.n, Duration(1));
  FixedDelay delay(Duration(1));
  MpmRunLimits limits;
  limits.max_steps = 50;
  const MpmRunResult run =
      MpmSimulator(spec, constraints, factory, sched, delay).run(limits);
  EXPECT_FALSE(run.completed);
  EXPECT_TRUE(run.hit_limit);
}

TEST(MpmSimulatorTest, StructurallyValidTraces) {
  const ProblemSpec spec{4, 3, 2};
  const auto constraints = TimingConstraints::asynchronous(2, 3);
  AsyncMpmFactory factory;
  UniformGapScheduler sched(Duration(1, 2), Duration(2), /*seed=*/5);
  UniformRandomDelay delay(Duration(0), Duration(3), /*seed=*/6);
  const MpmRunResult run =
      MpmSimulator(spec, constraints, factory, sched, delay).run();
  EXPECT_TRUE(run.completed);
  EXPECT_FALSE(run.trace.structural_error().has_value());
  EXPECT_TRUE(check_admissible(run.trace, constraints));
}

}  // namespace
}  // namespace sesp
