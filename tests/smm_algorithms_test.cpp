#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "adversary/step_schedulers.hpp"
#include "algorithms/smm/async_alg.hpp"
#include "algorithms/smm/broken_algs.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "algorithms/smm/sync_alg.hpp"
#include "analysis/bounds.hpp"
#include "sim/experiment.hpp"

namespace sesp {
namespace {

using InstanceParam = std::tuple<int, int, int>;  // (s, n, b)

ProblemSpec spec_of(const InstanceParam& p) {
  return ProblemSpec{std::get<0>(p), std::get<1>(p), std::get<2>(p)};
}

const auto kInstances = ::testing::Combine(::testing::Values(1, 2, 3, 6),
                                           ::testing::Values(2, 4, 9),
                                           ::testing::Values(2, 3));

// --- Synchronous ------------------------------------------------------------

class SyncSmmConformance : public ::testing::TestWithParam<InstanceParam> {};

TEST_P(SyncSmmConformance, SolvesExactlyAtTheBound) {
  const ProblemSpec spec = spec_of(GetParam());
  const auto constraints = TimingConstraints::synchronous(Duration(2));
  SyncSmmFactory factory;
  const WorstCase wc = smm_worst_case(spec, constraints, factory);
  EXPECT_TRUE(wc.all_admissible) << wc.first_failure;
  EXPECT_TRUE(wc.all_solved) << wc.first_failure;
  EXPECT_EQ(wc.max_termination, bounds::sync_tight(spec, Duration(2)));
}

INSTANTIATE_TEST_SUITE_P(Grid, SyncSmmConformance, kInstances);

// --- Periodic: A(p) ---------------------------------------------------------

class PeriodicSmmConformance
    : public ::testing::TestWithParam<InstanceParam> {};

TEST_P(PeriodicSmmConformance, SolvesWithinTheoremBound) {
  const ProblemSpec spec = spec_of(GetParam());
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  // Heterogeneous periods, port 0 slowest.
  std::vector<Duration> periods(static_cast<std::size_t>(total), Duration(1));
  periods[0] = Duration(2);
  const auto constraints = TimingConstraints::periodic(periods);
  PeriodicSmmFactory factory;
  const WorstCase wc = smm_worst_case(spec, constraints, factory);
  EXPECT_TRUE(wc.all_admissible) << wc.first_failure;
  EXPECT_TRUE(wc.all_solved) << wc.first_failure;
  const Time upper = bounds::periodic_sm_upper(
      spec, constraints.c_max(),
      smm_tree_latency_steps(spec.n, spec.b));
  EXPECT_LE(wc.max_termination, upper);
  EXPECT_GE(wc.max_termination, Ratio(spec.s) * constraints.c_max());
}

TEST_P(PeriodicSmmConformance, NoWaitVariantMissesSessionsUnderSlowOne) {
  const ProblemSpec spec = spec_of(GetParam());
  if (spec.s < 2) GTEST_SKIP();
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  std::vector<Duration> periods(static_cast<std::size_t>(total), Duration(1));
  periods[0] = Duration(64);
  const auto constraints = TimingConstraints::periodic(periods);
  NoWaitPeriodicSmmFactory broken;
  FixedPeriodScheduler sched(periods);
  const SmmOutcome out = run_smm_once(spec, constraints, broken, sched);
  EXPECT_TRUE(out.verdict.admissible);
  EXPECT_LT(out.verdict.sessions, spec.s);
}

INSTANTIATE_TEST_SUITE_P(Grid, PeriodicSmmConformance, kInstances);

// --- Semi-synchronous -------------------------------------------------------

class SemiSyncSmmConformance
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SemiSyncSmmConformance, BothStrategiesWithinBound) {
  const auto [s, n, b, c2v] = GetParam();
  const ProblemSpec spec{s, n, b};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(c2v));
  for (const SmmSemiSyncStrategy strategy :
       {SmmSemiSyncStrategy::kAuto, SmmSemiSyncStrategy::kStepCount,
        SmmSemiSyncStrategy::kCommunicate}) {
    SemiSyncSmmFactory factory(strategy);
    const WorstCase wc = smm_worst_case(spec, constraints, factory,
                                        /*random_runs=*/3);
    EXPECT_TRUE(wc.all_admissible) << factory.name() << ": "
                                   << wc.first_failure;
    EXPECT_TRUE(wc.all_solved) << factory.name() << ": " << wc.first_failure;
    if (strategy == SmmSemiSyncStrategy::kAuto) {
      const Time upper = bounds::semisync_sm_upper(
          spec, Duration(1), Duration(c2v),
          smm_tree_latency_steps(spec.n, spec.b));
      EXPECT_LE(wc.max_termination, upper) << factory.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SemiSyncSmmConformance,
    ::testing::Combine(::testing::Values(1, 2, 4), ::testing::Values(2, 6),
                       ::testing::Values(2, 3), ::testing::Values(2, 3, 9)));

// --- Asynchronous (rounds measure) ------------------------------------------

class AsyncSmmConformance : public ::testing::TestWithParam<InstanceParam> {};

TEST_P(AsyncSmmConformance, SolvesWithinRoundBound) {
  const ProblemSpec spec = spec_of(GetParam());
  const auto constraints = TimingConstraints::asynchronous();
  AsyncSmmFactory factory;
  const WorstCase wc = smm_worst_case(spec, constraints, factory,
                                      /*random_runs=*/3);
  EXPECT_TRUE(wc.all_admissible) << wc.first_failure;
  EXPECT_TRUE(wc.all_solved) << wc.first_failure;
  EXPECT_LE(wc.max_rounds,
            bounds::async_sm_upper_rounds(
                spec, smm_tree_latency_steps(spec.n, spec.b)));
}

INSTANTIATE_TEST_SUITE_P(Grid, AsyncSmmConformance, kInstances);

// --- Strategy picker ---------------------------------------------------------

TEST(SmmAlgorithmsTest, SemiSyncAutoPicksCheaperBranch) {
  const ProblemSpec small{2, 2, 3};
  // c2/c1 tiny -> stepping cheap.
  EXPECT_EQ(SemiSyncSmmFactory::pick(
                small, TimingConstraints::semi_synchronous(1, 2)),
            SmmSemiSyncStrategy::kStepCount);
  // c2/c1 enormous -> communication cheap.
  EXPECT_EQ(SemiSyncSmmFactory::pick(
                small, TimingConstraints::semi_synchronous(1, 10'000)),
            SmmSemiSyncStrategy::kCommunicate);
}

TEST(SmmAlgorithmsTest, FactoriesReportNames) {
  EXPECT_STREQ(SyncSmmFactory{}.name(), "sync-smm");
  EXPECT_STREQ(PeriodicSmmFactory{}.name(), "A(p)-smm");
  EXPECT_STREQ(AsyncSmmFactory{}.name(), "async-smm");
}

}  // namespace
}  // namespace sesp
