#include "support/test_support.hpp"

#include "adversary/step_schedulers.hpp"

namespace sesp::test_support {

ProblemSpec random_spec(Rng& meta, std::int64_t s_min, std::uint64_t s_range,
                        std::int32_t n_min, std::uint64_t n_range,
                        std::int32_t b_min, std::uint64_t b_range) {
  ProblemSpec spec;
  spec.s = s_min + static_cast<std::int64_t>(meta.next_below(s_range));
  spec.n = n_min + static_cast<std::int32_t>(meta.next_below(n_range));
  spec.b = b_min;
  if (b_range > 1)
    spec.b = b_min + static_cast<std::int32_t>(meta.next_below(b_range));
  return spec;
}

Topology random_topology(Rng& meta, std::int32_t n, std::uint64_t choices) {
  switch (meta.next_below(choices)) {
    case 1: return Topology::ring(n);
    case 2: return Topology::line(n);
    case 3: return Topology::star(n);
    case 4: return Topology::tree(n, 2);
    default: return Topology::complete(n);
  }
}

SmmOutcome run_smm_lockstep(const ProblemSpec& spec,
                            const TimingConstraints& constraints,
                            const SmmAlgorithmFactory& factory) {
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  FixedPeriodScheduler lockstep(total, constraints.c2);
  return run_smm_once(spec, constraints, factory, lockstep);
}

}  // namespace sesp::test_support
