#pragma once

// Shared randomized-input helpers for the test suites. Everything seeded
// here derives from a caller-owned Rng, so a test failure always prints a
// seed that reproduces the exact instance; nothing in this library has
// hidden global state.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "exec/jobs.hpp"
#include "faults/degradation.hpp"
#include "model/ids.hpp"
#include "mpm/topology.hpp"
#include "session/verifier.hpp"
#include "sim/experiment.hpp"
#include "smm/algorithm.hpp"
#include "timing/constraints.hpp"
#include "util/rng.hpp"

namespace sesp::test_support {

// Random (s, n, b) drawn as min + next_below(range) — the draw pattern the
// seeded suites standardize on. `b` consumes a draw only when b_range > 1,
// so MPM specs (fixed b) don't perturb the stream.
ProblemSpec random_spec(Rng& meta, std::int64_t s_min, std::uint64_t s_range,
                        std::int32_t n_min, std::uint64_t n_range,
                        std::int32_t b_min = 2, std::uint64_t b_range = 1);

// One of the canonical topologies, uniformly over the first `choices`
// entries of {complete, ring, line, star, tree(b=2)}.
Topology random_topology(Rng& meta, std::int32_t n,
                         std::uint64_t choices = 5);

// Runs an SMM algorithm under the lockstep round-robin schedule (every
// process with period exactly c2) — the base schedule of the Theorem 5.1
// retimer and of every synchronous experiment.
SmmOutcome run_smm_lockstep(const ProblemSpec& spec,
                            const TimingConstraints& constraints,
                            const SmmAlgorithmFactory& factory);

// Restores the explicit exec:: job count on scope exit so tests compose.
class JobsGuard {
 public:
  explicit JobsGuard(int jobs) : saved_(exec::set_default_jobs(jobs)) {}
  ~JobsGuard() { exec::set_default_jobs(saved_); }

  JobsGuard(const JobsGuard&) = delete;
  JobsGuard& operator=(const JobsGuard&) = delete;

 private:
  int saved_;
};

// The three-bucket fault-tolerance contract shared by all substrates: a
// chaos run is solved, degraded-but-admissible, or diagnosed — never an
// abort, never a silent wrong answer.
template <typename RunResult>
void expect_contract(const RunResult& run, const Verdict& v,
                     std::uint64_t seed) {
  const RunOutcome oc = classify_outcome(run.error, v);
  switch (oc) {
    case RunOutcome::kSolved:
      EXPECT_TRUE(v.admissible) << "seed=" << seed;
      EXPECT_TRUE(v.solves) << "seed=" << seed;
      EXPECT_FALSE(run.error.has_value()) << "seed=" << seed;
      break;
    case RunOutcome::kDegraded:
      // Partial result: the trace up to the stop point is still admissible.
      EXPECT_TRUE(v.admissible)
          << "seed=" << seed << ": " << v.admissibility_violation;
      break;
    case RunOutcome::kDiagnosed:
      EXPECT_TRUE(!v.admissible || run.error.has_value()) << "seed=" << seed;
      if (!v.admissible) {
        EXPECT_FALSE(v.admissibility_violation.empty()) << "seed=" << seed;
      }
      break;
  }
  if (run.error) {
    EXPECT_FALSE(run.error->to_string().empty()) << "seed=" << seed;
    EXPECT_FALSE(run.completed) << "seed=" << seed;
  }
}

}  // namespace sesp::test_support
