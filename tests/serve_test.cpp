// Tests for the serve layer (src/serve/, docs/serving.md): admission
// primitives driven deterministically with synthetic clocks, the hardened
// protocol parser under fuzzed input, and the full Server over real
// localhost sockets — byte-identical bound replies, structured overload
// and timeout degradation, coalescing, sweep tickets with journaled
// resume, and fd-stable drain/restart cycles.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace sesp::serve {
namespace {

namespace fs = std::filesystem;
using clock_tp = TokenBucket::clock::time_point;
using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// Admission primitives (no sockets, no real time)

TEST(TokenBucketTest, BurstThenRefusalThenRefill) {
  TokenBucket bucket(10.0, 3.0);  // 10 tokens/sec, burst of 3
  clock_tp now{};
  now += milliseconds(1);
  EXPECT_TRUE(bucket.admit(now));
  EXPECT_TRUE(bucket.admit(now));
  EXPECT_TRUE(bucket.admit(now));
  EXPECT_FALSE(bucket.admit(now));  // burst exhausted
  const std::int64_t retry = bucket.retry_after_ms(now);
  EXPECT_GT(retry, 0);
  EXPECT_LE(retry, 101);  // one token at 10/sec is 100ms away
  now += milliseconds(150);
  EXPECT_TRUE(bucket.admit(now));  // refilled
  EXPECT_FALSE(bucket.admit(now));
}

TEST(TokenBucketTest, TokensCapAtBurst) {
  TokenBucket bucket(1000.0, 2.0);
  clock_tp now{};
  now += milliseconds(1);
  EXPECT_TRUE(bucket.admit(now));
  now += std::chrono::seconds(60);  // a long idle gap must not bank tokens
  EXPECT_TRUE(bucket.admit(now));
  EXPECT_TRUE(bucket.admit(now));
  EXPECT_FALSE(bucket.admit(now));
}

TEST(BoundedCounterTest, LimitPeakRejectedRelease) {
  BoundedCounter gate(2);
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_FALSE(gate.try_acquire());
  EXPECT_FALSE(gate.try_acquire());
  EXPECT_EQ(gate.count(), 2);
  EXPECT_EQ(gate.peak(), 2);
  EXPECT_EQ(gate.rejected(), 2);
  gate.release();
  EXPECT_EQ(gate.count(), 1);
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_EQ(gate.limit(), 2);
}

TEST(ResultCacheTest, LruEvictionAndRecencyRefresh) {
  ResultCache cache(2);
  cache.insert(1, "one");
  cache.insert(2, "two");
  std::string out;
  ASSERT_TRUE(cache.lookup(1, &out));  // refreshes 1; 2 is now oldest
  EXPECT_EQ(out, "one");
  cache.insert(3, "three");  // evicts 2
  EXPECT_FALSE(cache.lookup(2, &out));
  EXPECT_TRUE(cache.lookup(1, &out));
  EXPECT_TRUE(cache.lookup(3, &out));
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 1);
}

TEST(ResultCacheTest, FirstInsertionWins) {
  ResultCache cache(4);
  cache.insert(7, "first");
  cache.insert(7, "second");  // concurrent recompute renders identical bytes
  std::string out;
  ASSERT_TRUE(cache.lookup(7, &out));
  EXPECT_EQ(out, "first");
}

// ---------------------------------------------------------------------------
// Protocol parser: validation, canonical rendering, digests, fuzz

TEST(ProtocolTest, ParsesMinimalRequests) {
  const ProtocolLimits limits;
  Request r;
  std::string error;
  ASSERT_TRUE(parse_request(R"({"id":7,"op":"health"})", limits, &r, &error))
      << error;
  EXPECT_EQ(r.id, 7);
  EXPECT_EQ(r.op, Op::kHealth);
  ASSERT_TRUE(parse_request(
      R"({"id":1,"op":"bound","model":"semisync","side":"mp"})", limits, &r,
      &error))
      << error;
  EXPECT_EQ(r.op, Op::kBound);
  EXPECT_EQ(r.bound_side, "mp");
}

TEST(ProtocolTest, RejectsMalformedRequests) {
  const ProtocolLimits limits;
  Request r;
  std::string error;
  const char* bad[] = {
      "",                                         // empty
      "not json",                                 // not JSON
      "[1,2,3]",                                  // not an object
      R"({"id":1})",                              // missing op
      R"({"id":1,"op":"warp"})",                  // unknown op
      R"({"id":1,"op":"bound","side":"both"})",   // bad side
      R"({"id":1,"op":"bound","model":"tachyon"})",  // unknown model
      R"({"id":1,"op":"run","substrate":"p2p"})",    // unserved substrate
      R"({"id":1,"op":"run","adversary":"gentle"})",  // unknown adversary
      R"({"id":1,"op":"bound","s":100000})",      // s over cap
      R"({"id":1,"op":"bound","n":9999})",        // n over cap
      R"({"id":1,"op":"bound","c1":"3","c2":"2"})",  // c1 > c2
      R"({"id":1,"op":"bound","c2":"0"})",        // c2 must be positive
      R"({"id":1,"op":"bound","c1":"x/y"})",      // unparseable ratio
      R"({"id":1,"op":"replay"})",                // replay without trace
      R"({"id":1,"op":"poll"})",                  // poll without ticket
      R"({"id":1,"op":"poll","ticket":"zz"})",    // malformed ticket
      R"({"id":1,"op":"health","deadline_ms":999999999})",  // over cap
  };
  for (const char* line : bad) {
    EXPECT_FALSE(parse_request(line, limits, &r, &error))
        << "accepted: " << line;
    EXPECT_FALSE(error.empty()) << line;
  }
}

TEST(ProtocolTest, BestEffortIdOnBadRequests) {
  const ProtocolLimits limits;
  Request r;
  std::string error;
  EXPECT_FALSE(parse_request(R"({"id":42,"op":"warp"})", limits, &r, &error));
  EXPECT_EQ(r.id, 42);  // the reply can still echo the id
}

TEST(ProtocolTest, DepthCapIsEnforced) {
  const ProtocolLimits limits;
  std::string deep = R"({"id":1,"op":"health","x":)";
  for (int i = 0; i < 64; ++i) deep += "[";
  for (int i = 0; i < 64; ++i) deep += "]";
  deep += "}";
  Request r;
  std::string error;
  EXPECT_FALSE(parse_request(deep, limits, &r, &error));
}

TEST(ProtocolTest, RenderRequestRoundTrips) {
  const ProtocolLimits limits;
  Request r;
  r.id = 9;
  r.op = Op::kSweep;
  r.substrate = "smm";
  r.model = "periodic";
  r.spec = ProblemSpec{4, 5, 2};
  r.c1 = Ratio(1, 3);
  r.c2 = Ratio(7, 2);
  r.d1 = Ratio(1, 4);
  r.d2 = Ratio(9, 2);
  r.seed = 777;
  r.deadline_ms = 2'500;
  const std::string line = render_request(r);
  Request back;
  std::string error;
  ASSERT_TRUE(parse_request(line, limits, &back, &error)) << error << "\n"
                                                          << line;
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.op, r.op);
  EXPECT_EQ(back.substrate, r.substrate);
  EXPECT_EQ(back.model, r.model);
  EXPECT_EQ(back.spec.s, r.spec.s);
  EXPECT_EQ(back.spec.n, r.spec.n);
  EXPECT_EQ(back.spec.b, r.spec.b);
  EXPECT_EQ(back.c1, r.c1);
  EXPECT_EQ(back.c2, r.c2);
  EXPECT_EQ(back.d1, r.d1);
  EXPECT_EQ(back.d2, r.d2);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.deadline_ms, r.deadline_ms);
  EXPECT_EQ(request_digest(back), request_digest(r));
}

TEST(ProtocolTest, DigestIgnoresIdAndDeadline) {
  Request a;
  a.op = Op::kRun;
  a.id = 1;
  Request b = a;
  b.id = 999;
  b.deadline_ms = 5'000;
  EXPECT_EQ(request_digest(a), request_digest(b));
  Request c = a;
  c.seed = a.seed + 1;
  EXPECT_NE(request_digest(a), request_digest(c));
}

TEST(ProtocolTest, BoundDigestIgnoresAdversaryAndSeed) {
  Request a;
  a.op = Op::kBound;
  Request b = a;
  b.adversary = "lockstep";
  b.seed = a.seed + 123;
  EXPECT_EQ(request_digest(a), request_digest(b));
  Request c = a;
  c.bound_side = "sm";
  EXPECT_NE(request_digest(a), request_digest(c));
}

// Fuzz the parser the way obs_test fuzzes the JSON round-trip: random byte
// garbage, structural JSON noise, and random mutations of a valid request.
// The contract is "false + error, never a crash".
TEST(ProtocolTest, FuzzedInputNeverCrashes) {
  const ProtocolLimits limits;
  std::mt19937_64 rng(0x5e59'f022);
  const std::string valid = render_request(Request{});
  for (int iter = 0; iter < 2'000; ++iter) {
    std::string line;
    switch (iter % 3) {
      case 0: {  // raw bytes, any value
        const std::size_t len = rng() % 200;
        for (std::size_t i = 0; i < len; ++i)
          line.push_back(static_cast<char>(rng() & 0xff));
        break;
      }
      case 1: {  // JSON-ish token soup
        static const char* tokens[] = {"{",  "}",    "[",    "]",   ":",
                                       ",",  "\"a\"", "1e99", "-0",  "null",
                                       "true", "\"op\"", "\"id\"", "1992"};
        const std::size_t len = 1 + rng() % 40;
        for (std::size_t i = 0; i < len; ++i)
          line += tokens[rng() % (sizeof tokens / sizeof *tokens)];
        break;
      }
      default: {  // valid request with random byte mutations
        line = valid;
        const std::size_t flips = 1 + rng() % 6;
        for (std::size_t i = 0; i < flips; ++i)
          line[rng() % line.size()] = static_cast<char>(rng() & 0xff);
        break;
      }
    }
    Request r;
    std::string error;
    if (!parse_request(line, limits, &r, &error)) {
      EXPECT_FALSE(error.empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Socket-level tests: a minimal line-framed client for the in-process server

class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
      return;
    }
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }

  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool send_raw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t k = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (k < 0 && errno == EINTR) continue;
      if (k <= 0) return false;
      off += static_cast<std::size_t>(k);
    }
    return true;
  }

  bool send_line(const std::string& line) { return send_raw(line + "\n"); }

  std::optional<std::string> read_line(std::int64_t timeout_ms = 10'000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
      pollfd p{fd_, POLLIN, 0};
      const int pr = ::poll(&p, 1, 100);
      if (pr < 0 && errno != EINTR) return std::nullopt;
      if (pr <= 0) continue;
      char chunk[4096];
      const ssize_t k = ::recv(fd_, chunk, sizeof chunk, 0);
      if (k == 0) return std::nullopt;  // peer closed
      if (k < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        return std::nullopt;
      }
      buffer_.append(chunk, static_cast<std::size_t>(k));
    }
  }

  // Sends one request line and returns the parsed reply.
  std::optional<obs::JsonValue> call(const std::string& line,
                                     std::int64_t timeout_ms = 10'000) {
    if (!send_line(line)) return std::nullopt;
    const auto reply = read_line(timeout_ms);
    if (!reply) return std::nullopt;
    return obs::parse_json(*reply);
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

std::string reply_status(const obs::JsonValue& doc) {
  const auto* status = doc.find("status");
  return status != nullptr && status->is_string() ? status->string : "";
}

fs::path fresh_dir(const std::string& stem) {
  const fs::path dir =
      fs::temp_directory_path() /
      (stem + "-" + std::to_string(::getpid()) + "-" +
       std::to_string(
           std::chrono::steady_clock::now().time_since_epoch().count()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Polls a sweep ticket until done; returns the rendered report text.
std::optional<std::string> wait_report(TestClient& client,
                                       const std::string& ticket,
                                       std::int64_t timeout_ms = 60'000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::int64_t id = 100;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto doc = client.call("{\"id\":" + std::to_string(id++) +
                                 ",\"op\":\"poll\",\"ticket\":\"" + ticket +
                                 "\"}");
    if (!doc || reply_status(*doc) != "Ok") return std::nullopt;
    const auto* result = doc->find("result");
    if (result == nullptr) return std::nullopt;
    const auto* state = result->find("state");
    if (state == nullptr || !state->is_string()) return std::nullopt;
    if (state->string == "done") {
      const auto* report = result->find("report");
      if (report == nullptr || !report->is_string()) return std::nullopt;
      return report->string;
    }
    if (state->string == "interrupted") return std::nullopt;
    std::this_thread::sleep_for(milliseconds(50));
  }
  return std::nullopt;
}

struct ServeEnv : ::testing::Environment {
  void SetUp() override { ::setenv("SESP_JOURNAL_FSYNC", "0", 1); }
};
const auto* const kServeEnv =
    ::testing::AddGlobalTestEnvironment(new ServeEnv);

TEST(ServerTest, BoundRepliesAreByteIdenticalAndCached) {
  Server server(ServerConfig{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  const std::string req =
      R"({"id":1,"op":"bound","model":"semisync","side":"mp"})";
  ASSERT_TRUE(client.send_line(req));
  ASSERT_TRUE(client.send_line(req));
  ASSERT_TRUE(client.send_line(req));
  const auto first = client.read_line();
  const auto second = client.read_line();
  const auto third = client.read_line();
  ASSERT_TRUE(first && second && third);
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(*second, *third);
  const auto doc = obs::parse_json(*first);
  ASSERT_TRUE(doc);
  EXPECT_EQ(reply_status(*doc), "Ok");

  server.stop();
  EXPECT_GE(server.cache_stats().hits, 2);
  EXPECT_EQ(server.counters().ok.load(), 3);
  EXPECT_FALSE(server.interrupted());
}

TEST(ServerTest, AllTableOneCellsServe) {
  Server server(ServerConfig{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const char* models[] = {"sync", "periodic", "semisync", "async"};
  std::int64_t id = 1;
  for (const char* model : models) {
    for (const char* side : {"sm", "mp"}) {
      const auto doc = client.call(
          "{\"id\":" + std::to_string(id++) +
          ",\"op\":\"bound\",\"model\":\"" + model + "\",\"side\":\"" + side +
          "\"}");
      ASSERT_TRUE(doc) << model << "/" << side;
      EXPECT_EQ(reply_status(*doc), "Ok") << model << "/" << side;
    }
  }
  // Sporadic is MP-only (Table 1, row 4): mp serves, sm is a BadRequest.
  auto doc = client.call(
      R"({"id":90,"op":"bound","model":"sporadic","side":"mp","c1":"1","d1":"1","d2":"4"})");
  ASSERT_TRUE(doc);
  EXPECT_EQ(reply_status(*doc), "Ok");
  doc = client.call(
      R"({"id":91,"op":"bound","model":"sporadic","side":"sm","c1":"1","d1":"1","d2":"4"})");
  ASSERT_TRUE(doc);
  EXPECT_EQ(reply_status(*doc), "BadRequest");
  server.stop();
}

TEST(ServerTest, DeadlineExpiryIsStructuredTimeout) {
  ServerConfig config;
  config.admission.test_heavy_delay_ms = 500;
  Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  const auto doc = client.call(
      R"({"id":5,"op":"run","adversary":"lockstep","deadline_ms":50})");
  ASSERT_TRUE(doc);
  EXPECT_EQ(reply_status(*doc), "Timeout");
  const auto* err = doc->find("error");
  ASSERT_NE(err, nullptr);
  EXPECT_NE(err->string.find("deadline"), std::string::npos);
  server.stop();
  EXPECT_EQ(server.counters().timeout.load(), 1);
}

TEST(ServerTest, RateLimitShedsWithRetryAfter) {
  ServerConfig config;
  config.admission.rate_per_sec = 0.001;  // effectively no refill
  config.admission.burst = 3.0;
  Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  int ok = 0, overloaded = 0;
  for (int i = 0; i < 10; ++i) {
    const auto doc = client.call("{\"id\":" + std::to_string(i) +
                                 ",\"op\":\"health\"}");
    ASSERT_TRUE(doc);
    const std::string status = reply_status(*doc);
    if (status == "Ok") ++ok;
    if (status == "Overloaded") {
      ++overloaded;
      const auto* retry = doc->find("retry_after_ms");
      ASSERT_NE(retry, nullptr);
      EXPECT_GT(retry->number, 0);
    }
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(overloaded, 7);
  server.stop();
  EXPECT_EQ(server.counters().rate_limited.load(), 7);
}

TEST(ServerTest, ConnectionCapShedsExtraClients) {
  ServerConfig config;
  config.admission.max_connections = 2;
  Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TestClient first(server.port());
  TestClient second(server.port());
  ASSERT_TRUE(first.connected() && second.connected());
  ASSERT_TRUE(first.call(R"({"id":1,"op":"health"})"));
  ASSERT_TRUE(second.call(R"({"id":1,"op":"health"})"));
  // The third connection gets a best-effort Overloaded notice, then EOF.
  TestClient third(server.port());
  ASSERT_TRUE(third.connected());
  const auto line = third.read_line(5'000);
  if (line) {  // the shed notice races the close; both shapes are legal
    const auto doc = obs::parse_json(*line);
    ASSERT_TRUE(doc);
    EXPECT_EQ(reply_status(*doc), "Overloaded");
  }
  EXPECT_FALSE(third.read_line(2'000));  // connection is closed
  server.stop();
  EXPECT_GE(server.counters().connections_shed.load(), 1);
}

TEST(ServerTest, OverloadFloodDegradesStructurally) {
  ServerConfig config;
  config.admission.heavy_workers = 1;
  config.admission.max_queue = 1;
  config.admission.test_heavy_delay_ms = 300;
  Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Prime the bound cache before the flood.
  TestClient probe(server.port());
  ASSERT_TRUE(probe.connected());
  const std::string bound_req =
      R"({"id":1,"op":"bound","model":"semisync","side":"mp"})";
  ASSERT_TRUE(probe.send_line(bound_req));
  const auto bound_before = probe.read_line();
  ASSERT_TRUE(bound_before);

  // Flood distinct run requests (distinct seeds defeat coalescing) from
  // parallel connections so the one worker and one queue slot overflow.
  constexpr int kFlood = 8;
  std::vector<std::string> replies(kFlood);
  std::vector<std::thread> clients;
  for (int i = 0; i < kFlood; ++i) {
    clients.emplace_back([&, i] {
      TestClient c(server.port());
      if (!c.connected()) return;
      const auto reply = c.call(
          "{\"id\":1,\"op\":\"run\",\"adversary\":\"lockstep\",\"seed\":" +
          std::to_string(1000 + i) + "}", 30'000);
      if (reply) replies[static_cast<std::size_t>(i)] = reply_status(*reply);
    });
  }
  // Mid-flood, the cached bound cell must still serve byte-identically.
  std::this_thread::sleep_for(milliseconds(100));
  ASSERT_TRUE(probe.send_line(bound_req));
  const auto bound_during = probe.read_line();
  for (auto& t : clients) t.join();
  ASSERT_TRUE(bound_during);

  int ok = 0, overloaded = 0, other = 0;
  for (const std::string& status : replies) {
    if (status == "Ok") ++ok;
    else if (status == "Overloaded") ++overloaded;
    else ++other;
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(overloaded, 0);  // past worker + queue, requests shed
  EXPECT_EQ(other, 0);       // every reply was structured, none dropped

  ASSERT_TRUE(probe.send_line(bound_req));
  const auto bound_after = probe.read_line();
  ASSERT_TRUE(bound_after);
  EXPECT_EQ(*bound_before, *bound_during);
  EXPECT_EQ(*bound_before, *bound_after);
  server.stop();
  EXPECT_GE(server.counters().overloaded.load(), overloaded);
}

TEST(ServerTest, IdenticalConcurrentRunsCoalesce) {
  ServerConfig config;
  config.admission.test_heavy_delay_ms = 300;
  Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  const std::string req = R"({"id":1,"op":"run","adversary":"lockstep"})";
  std::vector<std::string> replies(3);
  std::vector<std::thread> clients;
  for (int i = 0; i < 3; ++i) {
    clients.emplace_back([&, i] {
      TestClient c(server.port());
      if (!c.connected() || !c.send_line(req)) return;
      const auto reply = c.read_line(30'000);
      if (reply) replies[static_cast<std::size_t>(i)] = *reply;
    });
  }
  for (auto& t : clients) t.join();
  ASSERT_FALSE(replies[0].empty());
  EXPECT_EQ(replies[0], replies[1]);
  EXPECT_EQ(replies[0], replies[2]);
  server.stop();
  EXPECT_GE(server.counters().coalesced.load(), 1);
}

TEST(ServerTest, MalformedSocketFloodSurvives) {
  Server server(ServerConfig{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  std::mt19937_64 rng(0xbadf'00d5);
  for (int i = 0; i < 100; ++i) {
    std::string line;
    const std::size_t len = 1 + rng() % 120;
    for (std::size_t j = 0; j < len; ++j) {
      char c = static_cast<char>(rng() & 0xff);
      if (c == '\n') c = '?';  // keep one request per line
      line.push_back(c);
    }
    ASSERT_TRUE(client.send_line(line));
    const auto reply = client.read_line();
    ASSERT_TRUE(reply) << "connection died on garbage line " << i;
    const auto doc = obs::parse_json(*reply);
    ASSERT_TRUE(doc) << "unparseable reply: " << *reply;
    EXPECT_EQ(reply_status(*doc), "BadRequest");
  }
  // The server is still healthy afterwards.
  const auto doc = client.call(R"({"id":1,"op":"health"})");
  ASSERT_TRUE(doc);
  EXPECT_EQ(reply_status(*doc), "Ok");
  server.stop();
}

TEST(ServerTest, OversizedLineIsShedAndDropped) {
  ServerConfig config;
  config.limits.max_line_bytes = 1024;
  Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_raw(std::string(4096, 'a')));  // no newline ever
  const auto reply = client.read_line(5'000);
  ASSERT_TRUE(reply);  // a BadRequest notice precedes the drop
  const auto doc = obs::parse_json(*reply);
  ASSERT_TRUE(doc);
  EXPECT_EQ(reply_status(*doc), "BadRequest");
  EXPECT_FALSE(client.read_line(2'000));  // the connection is closed
  server.stop();
  EXPECT_GE(server.counters().connections_dropped.load(), 1);
}

TEST(ServerTest, SweepTicketLifecycleAndJournaledReport) {
  const fs::path dir = fresh_dir("sesp-serve-sweep");
  ServerConfig config;
  config.journal_dir = dir.string();
  Server server(config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());

  const std::string sweep_req =
      R"({"id":1,"op":"sweep","substrate":"mpm","model":"semisync","seed":1992})";
  const auto submitted = client.call(sweep_req);
  ASSERT_TRUE(submitted);
  ASSERT_EQ(reply_status(*submitted), "Ok");
  const auto* ticket = submitted->find("result")->find("ticket");
  ASSERT_NE(ticket, nullptr);
  const std::string ticket_hex = ticket->string;
  ASSERT_EQ(ticket_hex.size(), 16u);

  // Resubmitting the same sweep coalesces onto the same ticket.
  const auto again = client.call(sweep_req);
  ASSERT_TRUE(again);
  EXPECT_EQ(again->find("result")->find("ticket")->string, ticket_hex);

  const auto report = wait_report(client, ticket_hex);
  ASSERT_TRUE(report);
  EXPECT_NE(report->find("algorithm:"), std::string::npos);
  EXPECT_NE(report->find("solved/degraded/diagnosed:"), std::string::npos);

  // The journal holds the request and the finished report.
  EXPECT_TRUE(fs::exists(dir / ("sweep-" + ticket_hex + ".journal")));

  // Polling after completion replays the identical rendered result.
  const auto poll_req = "{\"id\":7,\"op\":\"poll\",\"ticket\":\"" +
                        ticket_hex + "\"}";
  ASSERT_TRUE(client.send_line(poll_req));
  const auto poll1 = client.read_line();
  ASSERT_TRUE(client.send_line(poll_req));
  const auto poll2 = client.read_line();
  ASSERT_TRUE(poll1 && poll2);
  // ids match, so entire reply lines must be byte-identical
  EXPECT_EQ(*poll1, *poll2);

  server.stop();
  EXPECT_EQ(server.counters().sweeps_completed.load(), 1);
  EXPECT_FALSE(server.interrupted());
  fs::remove_all(dir);
}

TEST(ServerTest, ChaosInterruptThenResumeIsByteIdentical) {
  const std::string sweep_req =
      R"({"id":1,"op":"sweep","substrate":"mpm","model":"periodic","seed":41})";

  // Reference: the same sweep completed without interference.
  const fs::path ref_dir = fresh_dir("sesp-serve-ref");
  std::string reference;
  {
    ServerConfig config;
    config.journal_dir = ref_dir.string();
    Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    const auto submitted = client.call(sweep_req);
    ASSERT_TRUE(submitted);
    const std::string ticket =
        submitted->find("result")->find("ticket")->string;
    const auto report = wait_report(client, ticket);
    ASSERT_TRUE(report);
    reference = *report;
    server.stop();
  }
  fs::remove_all(ref_dir);

  // Chaos: stop the sweep's supervisor after one journal append, which
  // drains the server exactly as a SIGTERM would.
  const fs::path dir = fresh_dir("sesp-serve-chaos");
  std::string ticket_hex;
  {
    ServerConfig config;
    config.journal_dir = dir.string();
    config.chaos_stop_after = 1;
    Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    const auto submitted = client.call(sweep_req);
    ASSERT_TRUE(submitted);
    ticket_hex = submitted->find("result")->find("ticket")->string;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!server.draining() &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(milliseconds(20));
    EXPECT_TRUE(server.draining());
    server.stop();
    EXPECT_TRUE(server.interrupted());  // the tool's exit-75 signal
    EXPECT_GE(server.counters().sweeps_interrupted.load(), 1);
  }

  // Resume: a fresh server re-enqueues the journaled sweep and finishes it;
  // the report must be byte-identical to the uninterrupted reference.
  {
    ServerConfig config;
    config.journal_dir = dir.string();
    config.resume = true;
    Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    EXPECT_EQ(server.resumed_sweeps(), 1);
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    const auto report = wait_report(client, ticket_hex);
    ASSERT_TRUE(report);
    EXPECT_EQ(*report, reference);
    server.stop();
    EXPECT_EQ(server.counters().sweeps_completed.load(), 1);
    EXPECT_FALSE(server.interrupted());
  }
  fs::remove_all(dir);
}

TEST(ServerTest, DrainShedsComputeButAnswersHealth) {
  Server server(ServerConfig{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  // Make sure the server has accepted this connection before draining
  // closes the listener (connect() alone only reaches the backlog).
  ASSERT_TRUE(client.call(R"({"id":0,"op":"health"})"));
  server.request_drain();
  const auto health = client.call(R"({"id":1,"op":"health"})");
  ASSERT_TRUE(health);
  EXPECT_EQ(reply_status(*health), "Ok");
  const auto run = client.call(R"({"id":2,"op":"run","adversary":"lockstep"})");
  ASSERT_TRUE(run);
  EXPECT_EQ(reply_status(*run), "Overloaded");
  server.stop();
}

// Three full start → traffic → drain → stop cycles must return every file
// descriptor: listener, wake pipe, and every accepted connection.
TEST(ServerTest, DrainRestartCyclesDoNotLeakFds) {
  const auto count_fds = [] {
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& entry :
         fs::directory_iterator("/proc/self/fd"))
      ++n;
    return n;
  };

  const auto run_cycle = [] {
    Server server(ServerConfig{});
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    TestClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_TRUE(client.call(R"({"id":1,"op":"health"})"));
    ASSERT_TRUE(client.call(
        R"({"id":2,"op":"bound","model":"semisync","side":"mp"})"));
    ASSERT_TRUE(client.call(R"({"id":3,"op":"run","adversary":"lockstep"})"));
    server.request_drain();
    server.stop();
  };

  run_cycle();  // absorb any one-time lazy initialization
  const std::size_t baseline = count_fds();
  for (int i = 0; i < 3; ++i) run_cycle();
  EXPECT_EQ(count_fds(), baseline);
}

TEST(ServerTest, StatsExposeCountersAndQueues) {
  Server server(ServerConfig{});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.call(R"({"id":1,"op":"health"})"));
  const auto doc = client.call(R"({"id":2,"op":"stats"})");
  ASSERT_TRUE(doc);
  ASSERT_EQ(reply_status(*doc), "Ok");
  const auto* result = doc->find("result");
  ASSERT_NE(result, nullptr);
  const auto* schema = result->find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->string, kProtocolSchema);
  ASSERT_NE(result->find("counters"), nullptr);
  ASSERT_NE(result->find("cache"), nullptr);
  ASSERT_NE(result->find("connections"), nullptr);
  ASSERT_NE(result->find("queues"), nullptr);
  EXPECT_GE(result->find("counters")->find("requests")->number, 2.0);
  server.stop();
}

}  // namespace
}  // namespace sesp::serve
