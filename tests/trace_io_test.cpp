#include "model/trace_io.hpp"

#include <gtest/gtest.h>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "sim/experiment.hpp"

namespace sesp {
namespace {

TEST(RatioTextTest, RoundTrip) {
  for (const Ratio r : {Ratio(0), Ratio(7), Ratio(-3), Ratio(7, 2),
                        Ratio(-22, 7), Ratio(1, 1000000)}) {
    const auto back = ratio_from_text(ratio_to_text(r));
    ASSERT_TRUE(back.has_value()) << r.to_string();
    EXPECT_EQ(*back, r);
  }
}

TEST(RatioTextTest, RejectsGarbage) {
  EXPECT_FALSE(ratio_from_text("").has_value());
  EXPECT_FALSE(ratio_from_text("abc").has_value());
  EXPECT_FALSE(ratio_from_text("1/0").has_value());
  EXPECT_FALSE(ratio_from_text("1/2/3").has_value());
  EXPECT_FALSE(ratio_from_text("1.5").has_value());
}

bool traces_equal(const TimedComputation& a, const TimedComputation& b) {
  if (a.substrate() != b.substrate() ||
      a.num_processes() != b.num_processes() ||
      a.num_ports() != b.num_ports() ||
      a.steps().size() != b.steps().size() ||
      a.messages().size() != b.messages().size())
    return false;
  for (std::size_t i = 0; i < a.steps().size(); ++i) {
    const StepRecord& x = a.steps()[i];
    const StepRecord& y = b.steps()[i];
    if (x.kind != y.kind || x.process != y.process || x.time != y.time ||
        x.port != y.port || x.var != y.var || x.delivered != y.delivered ||
        x.idle_after != y.idle_after ||
        x.value_before_digest != y.value_before_digest ||
        x.value_after_digest != y.value_after_digest)
      return false;
  }
  for (std::size_t i = 0; i < a.messages().size(); ++i) {
    const MessageRecord& x = a.messages()[i];
    const MessageRecord& y = b.messages()[i];
    if (x.sender != y.sender || x.recipient != y.recipient ||
        x.send_step != y.send_step || x.deliver_step != y.deliver_step ||
        x.receive_step != y.receive_step || x.session != y.session ||
        x.steps != y.steps || x.done != y.done)
      return false;
  }
  return true;
}

TEST(TraceIoTest, MpmRoundTrip) {
  const ProblemSpec spec{3, 3, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(7, 2));
  SporadicMpmFactory factory;
  FixedPeriodScheduler sched(spec.n, Duration(1));
  FixedDelay delay{Duration(7, 2)};
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, sched, delay);
  ASSERT_TRUE(out.run.completed);

  const std::string text = to_text(out.run.trace);
  std::string error;
  const auto parsed = trace_from_text(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(traces_equal(out.run.trace, *parsed));
  // Re-serializing is byte-identical (canonical form).
  EXPECT_EQ(to_text(*parsed), text);
}

TEST(TraceIoTest, SmmRoundTrip) {
  const ProblemSpec spec{2, 4, 3};
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  const auto constraints = TimingConstraints::periodic(
      std::vector<Duration>(static_cast<std::size_t>(total), Duration(3, 2)));
  PeriodicSmmFactory factory;
  FixedPeriodScheduler sched(total, Duration(3, 2));
  const SmmOutcome out = run_smm_once(spec, constraints, factory, sched);
  ASSERT_TRUE(out.run.completed);

  const std::string text = to_text(out.run.trace);
  std::string error;
  const auto parsed = trace_from_text(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(traces_equal(out.run.trace, *parsed));
}

TEST(TraceIoTest, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(trace_from_text("", &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);

  EXPECT_FALSE(trace_from_text("sesp-trace v1\n", &error).has_value());
  EXPECT_NE(error.find("meta"), std::string::npos);

  EXPECT_FALSE(
      trace_from_text("sesp-trace v1\nmeta,xxx,2,2\n", &error).has_value());

  EXPECT_FALSE(trace_from_text(
                   "sesp-trace v1\nmeta,smm,2,2\nstep,c,0\n", &error)
                   .has_value());
  EXPECT_NE(error.find("10 fields"), std::string::npos);

  EXPECT_FALSE(trace_from_text(
                   "sesp-trace v1\nmeta,smm,2,2\nbogus,1,2\n", &error)
                   .has_value());
  EXPECT_NE(error.find("unknown record"), std::string::npos);
}

TEST(ConstraintsTextTest, RoundTripAllModels) {
  const TimingConstraints cases[] = {
      TimingConstraints::synchronous(Duration(3, 2), Duration(4)),
      TimingConstraints::periodic({Duration(1), Duration(5, 3)}, Duration(2)),
      TimingConstraints::semi_synchronous(Duration(1), Duration(9, 2),
                                          Duration(11)),
      TimingConstraints::sporadic(Duration(2), Duration(1), Duration(8)),
      TimingConstraints::asynchronous(Duration(2), Duration(6)),
  };
  for (const TimingConstraints& tc : cases) {
    std::string error;
    const auto back = constraints_from_text(to_text(tc), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->model, tc.model);
    EXPECT_EQ(back->c1, tc.c1);
    EXPECT_EQ(back->c2, tc.c2);
    EXPECT_EQ(back->d1, tc.d1);
    EXPECT_EQ(back->d2, tc.d2);
    EXPECT_EQ(back->periods, tc.periods);
  }
}

TEST(ConstraintsTextTest, RejectsBadInput) {
  std::string error;
  EXPECT_FALSE(constraints_from_text("nope", &error).has_value());
  EXPECT_FALSE(
      constraints_from_text("constraints,warp,1,2,0,4", &error).has_value());
  EXPECT_NE(error.find("unknown timing model"), std::string::npos);
  EXPECT_FALSE(
      constraints_from_text("constraints,sporadic,x,2,0,4", &error)
          .has_value());
}

}  // namespace
}  // namespace sesp
