#include "mpm/network.hpp"

#include <gtest/gtest.h>

namespace sesp {
namespace {

TEST(NetworkTest, SendDeliverDrain) {
  Network net(3);
  EXPECT_EQ(net.in_transit(), 0u);
  EXPECT_FALSE(net.send(0, MpmMessage{0, 1, 2, false}, 1));
  EXPECT_FALSE(net.send(1, MpmMessage{0, 1, 2, false}, 2));
  EXPECT_EQ(net.in_transit(), 2u);
  EXPECT_EQ(net.buffered(1), 0u);

  EXPECT_FALSE(net.deliver(0));
  EXPECT_EQ(net.in_transit(), 1u);
  EXPECT_EQ(net.buffered(1), 1u);

  const auto msgs = net.drain_buffer(1);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].sender, 0);
  EXPECT_EQ(msgs[0].session, 1);
  EXPECT_EQ(net.buffered(1), 0u);
  // Draining again yields nothing.
  EXPECT_TRUE(net.drain_buffer(1).empty());
}

TEST(NetworkTest, MultipleDeliveriesAccumulate) {
  Network net(2);
  EXPECT_FALSE(net.send(0, MpmMessage{0, 0, 0, false}, 1));
  EXPECT_FALSE(net.send(1, MpmMessage{1, 0, 0, false}, 1));
  EXPECT_FALSE(net.deliver(1));
  EXPECT_FALSE(net.deliver(0));
  EXPECT_EQ(net.buffered(1), 2u);
  EXPECT_EQ(net.drain_buffer(1).size(), 2u);
}

// The former abort paths now return structured diagnostics: delivering a
// MsgId that is not in transit and addressing a recipient outside the
// process range both yield a SimError naming the offending id, and leave the
// network usable.
TEST(NetworkTest, DeliverUnknownReturnsDiagnostic) {
  Network net(2);
  const auto err = net.deliver(42);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, SimErrorCode::kUnknownMessage);
  EXPECT_EQ(err->message, 42);
  EXPECT_NE(err->to_string().find("42"), std::string::npos);
  // The network is still functional after the failed call.
  EXPECT_FALSE(net.send(0, MpmMessage{}, 1));
  EXPECT_FALSE(net.deliver(0));
  EXPECT_EQ(net.buffered(1), 1u);
}

TEST(NetworkTest, BadRecipientReturnsDiagnostic) {
  Network net(2);
  const auto err = net.send(0, MpmMessage{}, 5);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, SimErrorCode::kBadRecipient);
  EXPECT_EQ(err->message, 0);
  EXPECT_EQ(net.in_transit(), 0u);

  // Negative recipients are equally rejected; only [0, n) is addressable.
  const auto err2 = net.send(1, MpmMessage{}, -3);
  ASSERT_TRUE(err2.has_value());
  EXPECT_EQ(err2->code, SimErrorCode::kBadRecipient);
}

TEST(NetworkTest, DoubleDeliverIsDiagnosed) {
  Network net(2);
  EXPECT_FALSE(net.send(0, MpmMessage{}, 1));
  EXPECT_FALSE(net.deliver(0));
  const auto err = net.deliver(0);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, SimErrorCode::kUnknownMessage);
}

}  // namespace
}  // namespace sesp
