#include "mpm/network.hpp"

#include <gtest/gtest.h>

namespace sesp {
namespace {

TEST(NetworkTest, SendDeliverDrain) {
  Network net(3);
  EXPECT_EQ(net.in_transit(), 0u);
  net.send(0, MpmMessage{0, 1, 2, false}, 1);
  net.send(1, MpmMessage{0, 1, 2, false}, 2);
  EXPECT_EQ(net.in_transit(), 2u);
  EXPECT_EQ(net.buffered(1), 0u);

  net.deliver(0);
  EXPECT_EQ(net.in_transit(), 1u);
  EXPECT_EQ(net.buffered(1), 1u);

  const auto msgs = net.drain_buffer(1);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].sender, 0);
  EXPECT_EQ(msgs[0].session, 1);
  EXPECT_EQ(net.buffered(1), 0u);
  // Draining again yields nothing.
  EXPECT_TRUE(net.drain_buffer(1).empty());
}

TEST(NetworkTest, MultipleDeliveriesAccumulate) {
  Network net(2);
  net.send(0, MpmMessage{0, 0, 0, false}, 1);
  net.send(1, MpmMessage{1, 0, 0, false}, 1);
  net.deliver(1);
  net.deliver(0);
  EXPECT_EQ(net.buffered(1), 2u);
  EXPECT_EQ(net.drain_buffer(1).size(), 2u);
}

TEST(NetworkDeath, DeliverUnknownAborts) {
  EXPECT_DEATH(
      {
        Network net(2);
        net.deliver(42);
      },
      "not in transit");
}

TEST(NetworkDeath, BadRecipientAborts) {
  EXPECT_DEATH(
      {
        Network net(2);
        net.send(0, MpmMessage{}, 5);
      },
      "bad recipient");
}

}  // namespace
}  // namespace sesp
