#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/broken_algs.hpp"
#include "algorithms/mpm/sync_alg.hpp"
#include "algorithms/smm/sync_alg.hpp"
#include "analysis/report.hpp"

namespace sesp {
namespace {

TEST(ExperimentTest, WorstCaseAggregatesSyncMpm) {
  const ProblemSpec spec{3, 3, 2};
  const auto constraints = TimingConstraints::synchronous(2, 4);
  SyncMpmFactory factory;
  const WorstCase wc = mpm_worst_case(spec, constraints, factory);
  EXPECT_EQ(wc.runs, 1);  // synchronous has a unique schedule
  EXPECT_TRUE(wc.all_admissible);
  EXPECT_TRUE(wc.all_solved);
  EXPECT_FALSE(wc.any_hit_limit);
  EXPECT_EQ(wc.min_sessions, 3);
  EXPECT_EQ(wc.max_termination, Time(6));
  EXPECT_TRUE(wc.first_failure.empty());
}

TEST(ExperimentTest, WorstCaseRecordsFailures) {
  const ProblemSpec spec{4, 3, 2};
  // Broken algorithm under the periodic model: one process slowed.
  std::vector<Duration> periods(3, Duration(1));
  periods[0] = Duration(50);
  const auto constraints = TimingConstraints::periodic(periods, Duration(1));
  NoWaitPeriodicMpmFactory broken;
  const WorstCase wc = mpm_worst_case(spec, constraints, broken);
  EXPECT_TRUE(wc.all_admissible);
  EXPECT_FALSE(wc.all_solved);
  EXPECT_LT(wc.min_sessions, 4);
  EXPECT_FALSE(wc.first_failure.empty());
}

TEST(ExperimentTest, SmmWorstCaseRuns) {
  const ProblemSpec spec{2, 4, 3};
  const auto constraints = TimingConstraints::synchronous(1);
  SyncSmmFactory factory;
  const WorstCase wc = smm_worst_case(spec, constraints, factory);
  EXPECT_TRUE(wc.all_solved);
  EXPECT_EQ(wc.max_termination, Time(2));
  EXPECT_GT(wc.max_gamma, Duration(0));
}

TEST(ExperimentTest, RunOnceReturnsTraceAndVerdict) {
  const ProblemSpec spec{2, 2, 2};
  const auto constraints = TimingConstraints::synchronous(1, 1);
  SyncMpmFactory factory;
  FixedPeriodScheduler sched(2, Duration(1));
  FixedDelay delay(Duration(1));
  const MpmOutcome out = run_mpm_once(spec, constraints, factory, sched, delay);
  EXPECT_TRUE(out.run.completed);
  EXPECT_TRUE(out.verdict.admissible);
  EXPECT_EQ(out.verdict.sessions, 2);
  EXPECT_TRUE(out.verdict.solves);
  EXPECT_EQ(out.verdict.rounds.rounds_ceiling(), 2);
}

TEST(BoundReportTest, RowsAndVerdict) {
  BoundReport report("test");
  WorstCase wc;
  wc.runs = 1;
  wc.all_admissible = true;
  wc.all_solved = true;
  wc.max_termination = Time(5);
  report.add_time_row("cell-a", Ratio(4), wc, Ratio(6));
  EXPECT_TRUE(report.all_ok());

  report.add_time_row("cell-b", Ratio(1), wc, Ratio(4));  // measured above U
  EXPECT_FALSE(report.all_ok());

  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("cell-a"), std::string::npos);
  EXPECT_NE(os.str().find("[FAIL]"), std::string::npos);
}

TEST(BoundReportTest, RoundsRow) {
  BoundReport report("rounds");
  WorstCase wc;
  wc.all_admissible = true;
  wc.all_solved = true;
  wc.max_rounds = 7;
  report.add_rounds_row("cell", 2, wc, 10);
  EXPECT_TRUE(report.all_ok());
  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("rounds"), std::string::npos);
}

}  // namespace
}  // namespace sesp
