// The crash-safe supervised-execution contracts (docs/robustness.md):
//
//  1. Codec: payload key=value framing round-trips arbitrary bytes, and the
//     reserved task-failure payload survives encode/decode.
//  2. Journal: append/open_resume round-trips records, tolerates a torn
//     tail, and refuses a different tool or configuration.
//  3. Supervisor: replayed slots never recompute; throwing and
//     deadline-overrunning slots retry and then become structured
//     TaskFailure payloads, never aborts; SESP_STOP_AFTER-style stops skip
//     pending slots.
//  4. Kill-and-resume determinism: every sweep driver, hard-interrupted at
//     randomized checkpoints and resumed any number of times at any job
//     count, produces a report identical to an uninterrupted serial run.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "adversary/exhaustive.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "conformance/harness.hpp"
#include "recovery/journal.hpp"
#include "recovery/payload.hpp"
#include "recovery/supervisor.hpp"
#include "sim/experiment.hpp"
#include "support/test_support.hpp"

namespace sesp {
namespace {

using test_support::JobsGuard;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// --- payload codec ----------------------------------------------------------

TEST(PayloadTest, RoundTripsEscapedBytes) {
  recovery::PayloadWriter w;
  w.put("plain", "value");
  w.put("newlines", "a\nb\r\nc");
  w.put("backslash", "C:\\path\\n not a newline");
  w.put("equals", "k=v=w");
  w.put("empty", "");
  w.put_int("neg", -42);
  w.put_uint("big", 0xFFFFFFFFFFFFFFFFULL);
  w.put_bool("yes", true);
  w.put_bool("no", false);

  const recovery::PayloadReader r(w.str());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.get("plain"), "value");
  EXPECT_EQ(r.get("newlines"), "a\nb\r\nc");
  EXPECT_EQ(r.get("backslash"), "C:\\path\\n not a newline");
  EXPECT_EQ(r.get("equals"), "k=v=w");
  EXPECT_TRUE(r.has("empty"));
  EXPECT_EQ(r.get("empty"), "");
  EXPECT_EQ(r.get_int("neg", 0), -42);
  EXPECT_EQ(r.get_uint("big", 0), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_TRUE(r.get_bool("yes", false));
  EXPECT_FALSE(r.get_bool("no", true));
}

TEST(PayloadTest, MissingKeysFallBack) {
  recovery::PayloadWriter w;
  w.put("present", "x");
  const recovery::PayloadReader r(w.str());
  EXPECT_FALSE(r.has("absent"));
  EXPECT_EQ(r.get("absent", "fallback"), "fallback");
  EXPECT_EQ(r.get_int("absent", 7), 7);
  EXPECT_TRUE(r.get_bool("absent", true));
}

TEST(PayloadTest, TaskFailureRoundTripsAndRejectsLookalikes) {
  recovery::TaskFailure f;
  f.kind = recovery::TaskFailure::Kind::kDeadline;
  f.attempts = 3;
  f.detail = "slot 7 took 2.5s\nsecond line";
  const std::string payload = recovery::encode_task_failure(f);

  const auto decoded = recovery::decode_task_failure(payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, recovery::TaskFailure::Kind::kDeadline);
  EXPECT_EQ(decoded->attempts, 3);
  EXPECT_EQ(decoded->detail, f.detail);
  EXPECT_NE(decoded->to_string().find("deadline"), std::string::npos);

  // Ordinary payloads — including ones whose first key merely extends the
  // reserved marker — must not decode as failures.
  recovery::PayloadWriter ordinary;
  ordinary.put("label", "run 3");
  EXPECT_FALSE(recovery::decode_task_failure(ordinary.str()).has_value());
  recovery::PayloadWriter lookalike;
  lookalike.put("__task_failureX", "1");
  EXPECT_FALSE(recovery::decode_task_failure(lookalike.str()).has_value());
}

// --- journal ----------------------------------------------------------------

TEST(JournalTest, AppendAndResumeRoundTrip) {
  const std::string path = temp_path("journal_roundtrip.journal");
  std::remove(path.c_str());
  std::string error;
  {
    auto journal = recovery::RunJournal::create(path, "unit", 0xDEADBEEF,
                                                &error);
    ASSERT_NE(journal, nullptr) << error;
    journal->set_fsync(false);
    // Raw payloads exercise the framing, including embedded "." lines and
    // trailing newlines the loader must not confuse with the terminator.
    EXPECT_TRUE(journal->append("stage_a", 0, "k=v\nline2"));
    EXPECT_TRUE(journal->append("stage_a", 2, "one\n.\ntwo\n"));
    EXPECT_TRUE(journal->append("stage_b", 0, ""));
    EXPECT_EQ(journal->records(), 3);
  }
  auto resumed = recovery::RunJournal::open_resume(path, &error);
  ASSERT_NE(resumed, nullptr) << error;
  EXPECT_TRUE(resumed->matches("unit", 0xDEADBEEF));
  EXPECT_FALSE(resumed->matches("other", 0xDEADBEEF));
  EXPECT_FALSE(resumed->matches("unit", 0xDEADBEF0));
  EXPECT_EQ(resumed->records(), 3);
  EXPECT_EQ(resumed->dropped_on_load(), 0);
  ASSERT_NE(resumed->lookup("stage_a", 0), nullptr);
  EXPECT_EQ(*resumed->lookup("stage_a", 0), "k=v\nline2");
  ASSERT_NE(resumed->lookup("stage_a", 2), nullptr);
  EXPECT_EQ(*resumed->lookup("stage_a", 2), "one\n.\ntwo\n");
  ASSERT_NE(resumed->lookup("stage_b", 0), nullptr);
  EXPECT_EQ(*resumed->lookup("stage_b", 0), "");
  EXPECT_EQ(resumed->lookup("stage_a", 1), nullptr);
  std::remove(path.c_str());
}

TEST(JournalTest, TornTailIsDroppedIntactPrefixSurvives) {
  const std::string path = temp_path("journal_torn.journal");
  std::remove(path.c_str());
  std::string error;
  {
    auto journal =
        recovery::RunJournal::create(path, "unit", 1, &error);
    ASSERT_NE(journal, nullptr) << error;
    journal->set_fsync(false);
    ASSERT_TRUE(journal->append("s", 0, "payload zero"));
    ASSERT_TRUE(journal->append("s", 1, "payload one"));
    ASSERT_TRUE(journal->append("s", 2, "payload two"));
  }
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  // Chop at several depths into the last record: frame line, payload,
  // terminator. Every cut must resume to the intact two-record prefix.
  const std::size_t last_frame = text.rfind("S s 2");
  ASSERT_NE(last_frame, std::string::npos);
  for (const std::size_t keep :
       {last_frame + 3, last_frame + 20, text.size() - 1}) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << text.substr(0, keep);
    }
    auto resumed = recovery::RunJournal::open_resume(path, &error);
    ASSERT_NE(resumed, nullptr) << "keep=" << keep << ": " << error;
    EXPECT_EQ(resumed->records(), 2) << "keep=" << keep;
    EXPECT_EQ(resumed->dropped_on_load(), 1) << "keep=" << keep;
    ASSERT_NE(resumed->lookup("s", 1), nullptr);
    EXPECT_EQ(*resumed->lookup("s", 1), "payload one");
    EXPECT_EQ(resumed->lookup("s", 2), nullptr);
    // The reopened journal keeps accepting appends after the repair.
    resumed->set_fsync(false);
    EXPECT_TRUE(resumed->append("s", 2, "payload two again"));
  }
  std::remove(path.c_str());
}

TEST(JournalTest, MissingFileAndCorruptHeaderAreErrors) {
  std::string error;
  EXPECT_EQ(recovery::RunJournal::open_resume(
                temp_path("definitely_missing.journal"), &error),
            nullptr);
  EXPECT_FALSE(error.empty());

  const std::string path = temp_path("journal_bad_header.journal");
  {
    std::ofstream out(path, std::ios::trunc);
    out << "not-a-journal-header\n";
  }
  EXPECT_EQ(recovery::RunJournal::open_resume(path, &error), nullptr);
  std::remove(path.c_str());
}

TEST(JournalTest, LeaseRecordsRoundTripAndNeverAffectReplay) {
  const std::string path = temp_path("journal_leases.journal");
  std::remove(path.c_str());
  std::string error;
  {
    auto journal = recovery::RunJournal::create(path, "unit", 5, &error);
    ASSERT_NE(journal, nullptr) << error;
    journal->set_fsync(false);
    recovery::LeaseRecord claim;
    claim.worker = 2;
    claim.stage = "sweep";
    claim.lo = 0;
    claim.len = 4;
    claim.deadline_ms = 123456789;
    claim.event = "claim";
    ASSERT_TRUE(journal->append_lease(claim));
    ASSERT_TRUE(journal->append("sweep", 0, "payload 0"));
    recovery::LeaseRecord done = claim;
    done.deadline_ms = 0;
    done.event = "done";
    ASSERT_TRUE(journal->append_lease(done));
  }

  // open_resume replays slots only; lease events surface via leases().
  auto journal = recovery::RunJournal::open_resume(path, &error);
  ASSERT_NE(journal, nullptr) << error;
  EXPECT_EQ(journal->records(), 1);
  ASSERT_NE(journal->lookup("sweep", 0), nullptr);
  EXPECT_EQ(*journal->lookup("sweep", 0), "payload 0");
  const std::vector<recovery::LeaseRecord> leases = journal->leases();
  ASSERT_EQ(leases.size(), 2u);
  EXPECT_EQ(leases[0].worker, 2);
  EXPECT_EQ(leases[0].stage, "sweep");
  EXPECT_EQ(leases[0].lo, 0u);
  EXPECT_EQ(leases[0].len, 4u);
  EXPECT_EQ(leases[0].deadline_ms, 123456789);
  EXPECT_EQ(leases[0].event, "claim");
  EXPECT_EQ(leases[1].event, "done");
  EXPECT_EQ(leases[1].deadline_ms, 0);

  // The snapshot loader sees the same picture, and a torn lease tail (a
  // mid-append kill) drops cleanly without taking the intact prefix along.
  recovery::JournalSnapshot snap = recovery::read_journal_snapshot(path);
  ASSERT_TRUE(snap.ok) << snap.error;
  EXPECT_EQ(snap.records.size(), 1u);
  EXPECT_EQ(snap.leases.size(), 2u);
  {
    std::ofstream out(path, std::ios::app);
    out << "L 2 sweep 4 4 99";  // torn: no event, checksum, or newline
  }
  snap = recovery::read_journal_snapshot(path);
  ASSERT_TRUE(snap.ok) << snap.error;
  EXPECT_EQ(snap.records.size(), 1u);
  EXPECT_EQ(snap.leases.size(), 2u);
  EXPECT_EQ(snap.dropped, 1);
  std::remove(path.c_str());
}

// --- supervisor -------------------------------------------------------------

std::unique_ptr<recovery::RunJournal> fresh_journal(const std::string& path,
                                                    std::uint64_t digest) {
  std::remove(path.c_str());
  std::string error;
  auto journal = recovery::RunJournal::create(path, "recovery_test", digest,
                                              &error);
  EXPECT_NE(journal, nullptr) << error;
  if (journal) journal->set_fsync(false);
  return journal;
}

TEST(SupervisorTest, ReplayedSlotsNeverRecompute) {
  const std::string path = temp_path("supervisor_replay.journal");
  {
    recovery::Supervisor sup(fresh_journal(path, 2), {});
    sup.for_each_slot(
        "stage", 6,
        [](std::size_t i) { return "value " + std::to_string(i); },
        [](std::size_t, const std::string&) {}, 2);
    EXPECT_EQ(sup.stats().slots_executed, 6);
  }
  std::string error;
  auto journal = recovery::RunJournal::open_resume(path, &error);
  ASSERT_NE(journal, nullptr) << error;
  journal->set_fsync(false);
  recovery::Supervisor sup(std::move(journal), {});
  std::vector<std::string> applied(6);
  sup.for_each_slot(
      "stage", 6,
      [](std::size_t i) -> std::string {
        ADD_FAILURE() << "slot " << i << " recomputed on resume";
        return "";
      },
      [&](std::size_t i, const std::string& payload) {
        applied[i] = payload;
      },
      2);
  const recovery::SupervisorStats stats = sup.stats();
  EXPECT_EQ(stats.slots_replayed, 6);
  EXPECT_EQ(stats.slots_executed, 0);
  for (std::size_t i = 0; i < applied.size(); ++i)
    EXPECT_EQ(applied[i], "value " + std::to_string(i));
  std::remove(path.c_str());
}

TEST(SupervisorTest, SameStageNameGetsDistinctJournalNamespaces) {
  const std::string path = temp_path("supervisor_dedup.journal");
  {
    recovery::Supervisor sup(fresh_journal(path, 3), {});
    sup.for_each_slot(
        "sweep", 2, [](std::size_t i) { return "first " + std::to_string(i); },
        [](std::size_t, const std::string&) {}, 1);
    sup.for_each_slot(
        "sweep", 2,
        [](std::size_t i) { return "second " + std::to_string(i); },
        [](std::size_t, const std::string&) {}, 1);
  }
  std::string error;
  auto journal = recovery::RunJournal::open_resume(path, &error);
  ASSERT_NE(journal, nullptr) << error;
  recovery::Supervisor sup(std::move(journal), {});
  std::vector<std::string> first(2), second(2);
  sup.for_each_slot(
      "sweep", 2,
      [](std::size_t) -> std::string { return "MISS"; },
      [&](std::size_t i, const std::string& p) { first[i] = p; }, 1);
  sup.for_each_slot(
      "sweep", 2,
      [](std::size_t) -> std::string { return "MISS"; },
      [&](std::size_t i, const std::string& p) { second[i] = p; }, 1);
  EXPECT_EQ(first[0], "first 0");
  EXPECT_EQ(first[1], "first 1");
  EXPECT_EQ(second[0], "second 0");
  EXPECT_EQ(second[1], "second 1");
  std::remove(path.c_str());
}

TEST(SupervisorTest, ThrowingSlotRetriesThenSucceeds) {
  recovery::TaskPolicy policy;
  policy.max_retries = 2;
  policy.backoff_ms = 1;
  recovery::Supervisor sup(nullptr, policy);
  std::vector<std::atomic<int>> attempts(4);
  std::vector<std::string> applied(4);
  sup.for_each_slot(
      "flaky", 4,
      [&](std::size_t i) -> std::string {
        if (attempts[i].fetch_add(1) == 0)
          throw std::runtime_error("first attempt fails");
        return "ok " + std::to_string(i);
      },
      [&](std::size_t i, const std::string& p) { applied[i] = p; }, 2);
  const recovery::SupervisorStats stats = sup.stats();
  EXPECT_EQ(stats.retries, 4);
  EXPECT_EQ(stats.failures, 0);
  for (std::size_t i = 0; i < applied.size(); ++i) {
    EXPECT_EQ(applied[i], "ok " + std::to_string(i));
    EXPECT_FALSE(recovery::decode_task_failure(applied[i]).has_value());
  }
}

TEST(SupervisorTest, ExhaustedRetriesBecomeStructuredFailure) {
  recovery::TaskPolicy policy;
  policy.max_retries = 1;
  policy.backoff_ms = 1;
  recovery::Supervisor sup(nullptr, policy);
  std::string applied;
  sup.for_each_slot(
      "doomed", 1,
      [](std::size_t) -> std::string {
        throw std::runtime_error("always broken");
      },
      [&](std::size_t, const std::string& p) { applied = p; }, 1);
  const auto failure = recovery::decode_task_failure(applied);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->kind, recovery::TaskFailure::Kind::kException);
  EXPECT_EQ(failure->attempts, 2);
  EXPECT_EQ(failure->detail, "always broken");
  EXPECT_EQ(sup.stats().failures, 1);
  EXPECT_EQ(sup.stats().retries, 1);
  EXPECT_FALSE(sup.interrupted());  // isolation, not interruption
}

TEST(SupervisorTest, DeadlineOverrunBecomesStructuredFailure) {
  recovery::TaskPolicy policy;
  policy.deadline_seconds = 1e-6;
  policy.max_retries = 1;
  policy.backoff_ms = 1;
  recovery::Supervisor sup(nullptr, policy);
  std::string applied;
  sup.for_each_slot(
      "slow", 1,
      [](std::size_t) -> std::string {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return "finished anyway";
      },
      [&](std::size_t, const std::string& p) { applied = p; }, 1);
  const auto failure = recovery::decode_task_failure(applied);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->kind, recovery::TaskFailure::Kind::kDeadline);
  EXPECT_EQ(failure->attempts, 2);
  EXPECT_GE(sup.stats().deadline_exceeded, 1);
}

TEST(SupervisorTest, RetryBackoffIsDeterministicJitteredAndCapped) {
  recovery::TaskPolicy policy;
  policy.backoff_ms = 100;

  // The first attempt never waits; retries do.
  EXPECT_EQ(recovery::retry_backoff_ms(policy, 7, 3, 0), 0);
  EXPECT_EQ(recovery::retry_backoff_ms(policy, 7, 3, 1), 0);

  // Pure function of (policy, digest, slot, attempt): identical across
  // resumes and shard workers — no clock, no global state.
  for (std::int32_t attempt = 2; attempt <= 6; ++attempt) {
    const std::int64_t a = recovery::retry_backoff_ms(policy, 7, 3, attempt);
    const std::int64_t b = recovery::retry_backoff_ms(policy, 7, 3, attempt);
    EXPECT_EQ(a, b) << "attempt " << attempt;
    // Base doubles per retry, capped at 1s; jitter adds at most 25%.
    const std::int64_t base = std::min<std::int64_t>(
        policy.backoff_ms << (attempt - 2), 1000);
    EXPECT_GE(a, base) << "attempt " << attempt;
    EXPECT_LE(a, base + base / 4) << "attempt " << attempt;
  }

  // Distinct slots and configs decorrelate: at least one of a handful of
  // neighbours lands on a different jitter.
  const std::int64_t here = recovery::retry_backoff_ms(policy, 7, 3, 2);
  bool differs = false;
  for (std::size_t slot = 0; slot < 16 && !differs; ++slot)
    differs = recovery::retry_backoff_ms(policy, 7, slot, 2) != here ||
              recovery::retry_backoff_ms(policy, 8, slot, 2) != here;
  EXPECT_TRUE(differs);

  // Tiny bases stay exact (jitter range collapses to base/4 = 0).
  policy.backoff_ms = 1;
  EXPECT_EQ(recovery::retry_backoff_ms(policy, 7, 0, 2), 1);
}

TEST(SupervisorTest, StopAfterSkipsPendingSlots) {
  const std::string path = temp_path("supervisor_stop.journal");
  recovery::Supervisor sup(fresh_journal(path, 4), {});
  sup.set_stop_after(3);
  std::vector<bool> applied(10, false);
  sup.for_each_slot(
      "stage", 10,
      [](std::size_t i) { return std::to_string(i); },
      [&](std::size_t i, const std::string&) { applied[i] = true; }, 1);
  EXPECT_TRUE(sup.interrupted());
  const recovery::SupervisorStats stats = sup.stats();
  EXPECT_EQ(stats.slots_executed, 3);
  EXPECT_EQ(stats.slots_skipped, 7);
  // Serial execution stops in order: the first three slots applied, the
  // rest pending for the resume.
  for (std::size_t i = 0; i < applied.size(); ++i)
    EXPECT_EQ(applied[i], i < 3) << "slot " << i;
  std::remove(path.c_str());
}

// --- kill-and-resume determinism for every sweep driver ---------------------
//
// run_to_completion() hard-interrupts the driver after `stop_after`
// checkpoints, then resumes from the journal — repeatedly, until a round
// finishes uninterrupted — and returns that final result. The byte-identity
// contract says it must equal the plain serial run for any job count and
// any interruption cadence.

template <typename Result>
Result run_to_completion(const std::string& name, std::int64_t stop_after,
                         const std::function<Result()>& run,
                         int* interrupted_rounds = nullptr) {
  const std::string path = temp_path(name);
  std::remove(path.c_str());
  for (int round = 0; round < 500; ++round) {
    std::string error;
    auto journal =
        round == 0
            ? recovery::RunJournal::create(path, "recovery_test", 99, &error)
            : recovery::RunJournal::open_resume(path, &error);
    if (!journal) {
      ADD_FAILURE() << "round " << round << ": " << error;
      return Result{};
    }
    journal->set_fsync(false);
    recovery::Supervisor sup(std::move(journal), {});
    sup.set_stop_after(stop_after);
    recovery::Supervisor* prev = recovery::Supervisor::install(&sup);
    Result result = run();
    recovery::Supervisor::install(prev);
    if (!sup.interrupted()) {
      if (interrupted_rounds) *interrupted_rounds = round;
      std::remove(path.c_str());
      return result;
    }
  }
  ADD_FAILURE() << name << " never completed";
  std::remove(path.c_str());
  return Result{};
}

TEST(KillResumeTest, WorstCaseFamiliesAreByteIdentical) {
  const ProblemSpec spec{2, 3, 2};
  const auto mpm_constraints = TimingConstraints::semi_synchronous(
      Duration(1), Duration(2), Duration(3));
  const auto smm_constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(2));
  SemiSyncMpmFactory mpm_factory;
  SemiSyncSmmFactory smm_factory;

  JobsGuard serial(1);
  const WorstCase mpm_ref =
      mpm_worst_case(spec, mpm_constraints, mpm_factory, 4);
  const WorstCase smm_ref =
      smm_worst_case(spec, smm_constraints, smm_factory, 4);
  ASSERT_GT(mpm_ref.runs, 0);

  for (const int jobs : {1, 2, 8}) {
    for (const std::int64_t stop_after : {1, 3}) {
      JobsGuard guard(jobs);
      int rounds = 0;
      const WorstCase mpm_got = run_to_completion<WorstCase>(
          "kr_mpm_worst.journal", stop_after,
          [&] {
            return mpm_worst_case(spec, mpm_constraints, mpm_factory, 4);
          },
          &rounds);
      EXPECT_EQ(mpm_got, mpm_ref)
          << "jobs=" << jobs << " stop_after=" << stop_after;
      EXPECT_GT(rounds, 0) << "interruption hook never fired";
      EXPECT_EQ(run_to_completion<WorstCase>(
                    "kr_smm_worst.journal", stop_after,
                    [&] {
                      return smm_worst_case(spec, smm_constraints,
                                            smm_factory, 4);
                    }),
                smm_ref)
          << "jobs=" << jobs << " stop_after=" << stop_after;
    }
  }
}

TEST(KillResumeTest, DegradationGridIsByteIdentical) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints = TimingConstraints::semi_synchronous(
      Duration(1), Duration(2), Duration(3));
  SemiSyncMpmFactory factory;

  JobsGuard serial(1);
  const DegradationReport reference =
      mpm_degradation(spec, constraints, factory);
  ASSERT_FALSE(reference.cells.empty());

  for (const int jobs : {1, 2, 8}) {
    JobsGuard guard(jobs);
    EXPECT_EQ(run_to_completion<DegradationReport>(
                  "kr_degradation.journal", 2,
                  [&] { return mpm_degradation(spec, constraints, factory); }),
              reference)
        << "jobs=" << jobs;
  }
}

TEST(KillResumeTest, ChaosSweepDigestIsByteIdentical) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints = TimingConstraints::semi_synchronous(
      Duration(1), Duration(3), Duration(4));
  SemiSyncMpmFactory factory;
  MpmRunLimits limits;
  limits.max_steps = 20'000;

  JobsGuard serial(1);
  const ChaosReport reference =
      mpm_chaos_sweep(spec, constraints, factory, 16, 0xC4A05ULL, limits);
  ASSERT_EQ(reference.runs, 16);

  for (const int jobs : {1, 2, 8}) {
    JobsGuard guard(jobs);
    EXPECT_EQ(run_to_completion<ChaosReport>(
                  "kr_chaos.journal", 3,
                  [&] {
                    return mpm_chaos_sweep(spec, constraints, factory, 16,
                                           0xC4A05ULL, limits);
                  }),
              reference)
        << "jobs=" << jobs;
  }
}

TEST(KillResumeTest, ExhaustiveEnumerationIsByteIdentical) {
  const ProblemSpec spec{2, 2, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(0), Duration(2));
  SporadicMpmFactory factory;
  const std::vector<Duration> gaps{Duration(1), Duration(2)};
  const std::vector<Duration> delays{Duration(0), Duration(1), Duration(2)};

  // Both a complete walk and a budget-truncated one: the truncation point
  // reconstructs the serial order, so it must survive interruption too.
  for (const std::int64_t budget : {500'000, 50}) {
    JobsGuard serial(1);
    const ExhaustiveResult reference =
        explore_mpm(spec, constraints, factory, gaps, delays, budget);
    for (const int jobs : {1, 2, 8}) {
      JobsGuard guard(jobs);
      EXPECT_EQ(run_to_completion<ExhaustiveResult>(
                    "kr_exhaustive.journal", 2,
                    [&] {
                      return explore_mpm(spec, constraints, factory, gaps,
                                         delays, budget);
                    }),
                reference)
          << "jobs=" << jobs << " budget=" << budget;
    }
  }
}

TEST(KillResumeTest, ConformanceCampaignIsByteIdentical) {
  conformance::ConformanceConfig config;
  config.cases_per_cell = 5;
  config.seed = 11;
  config.minimize = false;

  JobsGuard serial(1);
  config.jobs = 1;
  const conformance::ConformanceReport reference =
      conformance::run_conformance(config);
  ASSERT_GT(reference.total_cases, 0);

  for (const int jobs : {1, 2, 8}) {
    config.jobs = jobs;
    const conformance::ConformanceReport got =
        run_to_completion<conformance::ConformanceReport>(
            "kr_conformance.journal", 4,
            [&] { return conformance::run_conformance(config); });
    EXPECT_EQ(got.digest, reference.digest) << "jobs=" << jobs;
    EXPECT_EQ(got.summary(), reference.summary()) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace sesp
