#include "adversary/certificate.hpp"

#include <gtest/gtest.h>

#include "adversary/semisync_retimer.hpp"
#include "adversary/sporadic_retimer.hpp"
#include "algorithms/mpm/broken_algs.hpp"
#include "algorithms/smm/broken_algs.hpp"

namespace sesp {
namespace {

ViolationCertificate semisync_cert() {
  const ProblemSpec spec{4, 8, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(12));
  TooFewStepsSmmFactory broken(2);
  const SemiSyncRetimingResult result =
      attack_semisync_smm(spec, constraints, broken);
  EXPECT_TRUE(result.certificate) << result.to_string();
  return make_certificate(result, broken.name(), spec, constraints);
}

ViolationCertificate sporadic_cert() {
  const ProblemSpec spec{4, 3, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(2), Duration(42));
  TooFewStepsMpmFactory broken(8);
  const SporadicRetimingResult result =
      attack_sporadic_mpm(spec, constraints, broken);
  EXPECT_TRUE(result.certificate) << result.to_string();
  return make_certificate(result, broken.name(), spec, constraints);
}

TEST(CertificateTest, SemiSyncCertificateValidates) {
  const ViolationCertificate cert = semisync_cert();
  const CertificateCheck check = check_certificate(cert);
  EXPECT_TRUE(check.valid) << check.detail;
  EXPECT_LT(check.sessions, cert.spec.s);
  EXPECT_EQ(cert.construction, "theorem-5.1-retiming");
}

TEST(CertificateTest, SporadicCertificateValidates) {
  const ViolationCertificate cert = sporadic_cert();
  const CertificateCheck check = check_certificate(cert);
  EXPECT_TRUE(check.valid) << check.detail;
  EXPECT_LT(check.sessions, cert.spec.s);
  EXPECT_EQ(cert.construction, "theorem-6.5-retiming");
}

TEST(CertificateTest, TextRoundTripPreservesValidity) {
  for (const ViolationCertificate& cert :
       {semisync_cert(), sporadic_cert()}) {
    const std::string text = to_text(cert);
    std::string error;
    const auto parsed = certificate_from_text(text, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->construction, cert.construction);
    EXPECT_EQ(parsed->algorithm, cert.algorithm);
    EXPECT_EQ(parsed->spec.s, cert.spec.s);
    EXPECT_EQ(parsed->spec.n, cert.spec.n);
    const CertificateCheck check = check_certificate(*parsed);
    EXPECT_TRUE(check.valid) << check.detail;
  }
}

TEST(CertificateTest, TamperedCertificateRejected) {
  ViolationCertificate cert = semisync_cert();

  // Tamper 1: claim a smaller s so the session deficit disappears.
  ViolationCertificate weaker = cert;
  weaker.spec.s = 1;
  const CertificateCheck c1 = check_certificate(weaker);
  EXPECT_FALSE(c1.valid);
  EXPECT_NE(c1.detail.find("sessions"), std::string::npos);

  // Tamper 2: tighten the constraints so the computation is inadmissible.
  ViolationCertificate tighter = cert;
  tighter.constraints.c1 = tighter.constraints.c2;  // forces lockstep gaps
  const CertificateCheck c2 = check_certificate(tighter);
  EXPECT_FALSE(c2.valid);
  EXPECT_NE(c2.detail.find("inadmissible"), std::string::npos);
}

TEST(CertificateTest, ParserRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(certificate_from_text("", &error).has_value());
  EXPECT_FALSE(certificate_from_text("sesp-certificate v1\n", &error)
                   .has_value());
  EXPECT_FALSE(certificate_from_text(
                   "sesp-certificate v1\nconstruction,x\nalgorithm,y\n"
                   "spec,notanumber,2,2\n",
                   &error)
                   .has_value());
}

}  // namespace
}  // namespace sesp
