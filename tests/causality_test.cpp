#include "analysis/causality.hpp"

#include <gtest/gtest.h>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/async_alg.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "sim/experiment.hpp"

namespace sesp {
namespace {

StepRecord smm_step(ProcessId p, VarId v, std::int64_t t) {
  StepRecord st;
  st.kind = StepKind::kCompute;
  st.process = p;
  st.var = v;
  st.time = Time(t);
  return st;
}

TEST(CausalityTest, ProgramOrderEdges) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  tc.append(smm_step(0, 0, 1));
  tc.append(smm_step(1, 1, 2));
  tc.append(smm_step(0, 0, 3));
  const CausalOrder order(tc);
  EXPECT_TRUE(order.happens_before(0, 2));   // same process
  EXPECT_FALSE(order.happens_before(0, 1));  // concurrent
  EXPECT_FALSE(order.happens_before(1, 2));
  EXPECT_TRUE(order.happens_before(1, 1));   // reflexive
}

TEST(CausalityTest, SharedVariableEdges) {
  TimedComputation tc(Substrate::kSharedMemory, 3, 3);
  tc.append(smm_step(0, 7, 1));  // p0 writes var 7
  tc.append(smm_step(1, 7, 2));  // p1 reads var 7 -> depends on p0
  tc.append(smm_step(2, 9, 3));  // unrelated
  tc.append(smm_step(2, 7, 4));  // p2 touches var 7 -> depends on both
  const CausalOrder order(tc);
  EXPECT_TRUE(order.happens_before(0, 1));
  EXPECT_TRUE(order.happens_before(0, 3));
  EXPECT_TRUE(order.happens_before(1, 3));
  EXPECT_FALSE(order.happens_before(0, 2));
  EXPECT_TRUE(order.happens_before(2, 3));  // p2's program order
}

TEST(CausalityTest, MessageEdges) {
  TimedComputation tc(Substrate::kMessagePassing, 2, 2);
  tc.append(smm_step(0, kNoVar, 1));  // send step (index 0)
  StepRecord deliver;
  deliver.kind = StepKind::kDeliver;
  deliver.process = kNetworkProcess;
  deliver.time = Time(3);
  deliver.delivered = 0;
  tc.append(deliver);                 // index 1
  tc.append(smm_step(1, kNoVar, 4));  // receive step (index 2)
  MessageRecord m;
  m.sender = 0;
  m.recipient = 1;
  m.send_step = 0;
  m.deliver_step = 1;
  m.receive_step = 2;
  tc.append_message(m);

  const CausalOrder order(tc);
  EXPECT_TRUE(order.happens_before(0, 1));
  EXPECT_TRUE(order.happens_before(0, 2));
  EXPECT_TRUE(order.happens_before(1, 2));
  EXPECT_FALSE(order.happens_before(2, 0));
}

TEST(CausalityTest, DepthsAndCriticalPath) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  tc.append(smm_step(0, 0, 1));  // depth 1
  tc.append(smm_step(1, 1, 1));  // depth 1 (independent)
  tc.append(smm_step(0, 1, 2));  // depends on both chains -> depth 2
  tc.append(smm_step(1, 1, 3));  // depth 3
  const CausalOrder order(tc);
  EXPECT_EQ(order.depths()[0], 1u);
  EXPECT_EQ(order.depths()[1], 1u);
  EXPECT_EQ(order.depths()[2], 2u);
  EXPECT_EQ(order.depths()[3], 3u);
  const auto path = order.critical_path();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path.back(), 3u);
  // Each consecutive pair on the path is ordered.
  for (std::size_t i = 1; i < path.size(); ++i)
    EXPECT_TRUE(order.happens_before(path[i - 1], path[i]));
}

TEST(CausalityTest, AncestorsMirrorDescendants) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  tc.append(smm_step(0, 0, 1));
  tc.append(smm_step(1, 0, 2));
  tc.append(smm_step(0, 1, 3));
  tc.append(smm_step(1, 1, 4));
  const CausalOrder order(tc);
  for (std::size_t i = 0; i < order.num_steps(); ++i) {
    const auto desc = order.descendants(i);
    for (std::size_t j = 0; j < order.num_steps(); ++j)
      EXPECT_EQ(desc[j], order.ancestors(j)[i])
          << "asymmetry between " << i << " and " << j;
  }
}

TEST(CausalityTest, EarliestInfluence) {
  TimedComputation tc(Substrate::kSharedMemory, 3, 3);
  tc.append(smm_step(0, 0, 1));  // 0: p0 writes var 0
  tc.append(smm_step(1, 2, 2));  // 1: p1 elsewhere
  tc.append(smm_step(1, 0, 3));  // 2: p1 reads var 0 <- influenced
  tc.append(smm_step(2, 5, 4));  // 3: p2 never touches var 0
  const CausalOrder order(tc);
  const auto hit = order.earliest_influence(0, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 2u);
  EXPECT_FALSE(order.earliest_influence(0, 2).has_value());
}

TEST(CausalityTest, RealMpmTraceIsCausallyConsistent) {
  const ProblemSpec spec{3, 3, 2};
  const auto constraints = TimingConstraints::asynchronous(2, 5);
  AsyncMpmFactory factory;
  FixedPeriodScheduler sched(spec.n, Duration(2));
  FixedDelay delay{Duration(5)};
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, sched, delay);
  ASSERT_TRUE(out.run.completed);

  const CausalOrder order(out.run.trace);
  // Every direct predecessor edge points strictly backward and respects
  // trace time.
  const auto& steps = out.run.trace.steps();
  for (std::size_t i = 0; i < steps.size(); ++i) {
    for (const std::size_t p : order.predecessors(i)) {
      EXPECT_LT(p, i);
      EXPECT_LE(steps[p].time, steps[i].time);
    }
  }
  // The critical path is at least as long as one process's step count (its
  // program order is a chain).
  const auto path = order.critical_path();
  EXPECT_GE(path.size(), out.run.trace.compute_indices(0).size());
}

TEST(CausalityTest, SmmInformationFlowMatchesTreeDepth) {
  // In a lockstep A(p) run, influence from port 0 must reach every other
  // port (that is how they learn "done").
  const ProblemSpec spec{2, 8, 2};
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  const auto constraints = TimingConstraints::periodic(
      std::vector<Duration>(static_cast<std::size_t>(total), Duration(1)));
  PeriodicSmmFactory factory;
  FixedPeriodScheduler sched(total, Duration(1));
  const SmmOutcome out = run_smm_once(spec, constraints, factory, sched);
  ASSERT_TRUE(out.run.completed);

  const CausalOrder order(out.run.trace);
  // Find port 0's first tree access (non-port variable step).
  std::optional<std::size_t> first_tree;
  for (std::size_t i = 0; i < out.run.trace.steps().size(); ++i) {
    const StepRecord& st = out.run.trace.steps()[i];
    if (st.process == 0 && st.is_compute() && st.port == kNoPort) {
      first_tree = i;
      break;
    }
  }
  ASSERT_TRUE(first_tree.has_value());
  for (ProcessId q = 1; q < spec.n; ++q)
    EXPECT_TRUE(order.earliest_influence(*first_tree, q).has_value())
        << "no influence path from port 0 to port " << q;
}

}  // namespace
}  // namespace sesp
