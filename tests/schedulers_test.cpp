#include <gtest/gtest.h>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"

namespace sesp {
namespace {

TEST(FixedPeriodSchedulerTest, ExactGrid) {
  FixedPeriodScheduler sched({Duration(2), Duration(3)});
  EXPECT_EQ(sched.next_step_time(0, std::nullopt, 0), Time(2));
  EXPECT_EQ(sched.next_step_time(0, Time(2), 1), Time(4));
  EXPECT_EQ(sched.next_step_time(1, std::nullopt, 0), Time(3));
  EXPECT_EQ(sched.next_step_time(1, Time(3), 1), Time(6));
}

TEST(FixedPeriodSchedulerTest, UniformConstructor) {
  FixedPeriodScheduler sched(3, Duration(5, 2));
  for (ProcessId p = 0; p < 3; ++p)
    EXPECT_EQ(sched.next_step_time(p, std::nullopt, 0), Time(5, 2));
}

TEST(UniformGapSchedulerTest, GapsWithinWindow) {
  UniformGapScheduler sched(Duration(1), Duration(3), /*seed=*/11);
  Time prev(0);
  for (int i = 0; i < 200; ++i) {
    const Time next = sched.next_step_time(0, i == 0 ? std::nullopt
                                                     : std::optional<Time>(prev),
                                           i);
    const Duration gap = next - prev;
    EXPECT_GE(gap, Duration(1));
    EXPECT_LE(gap, Duration(3));
    prev = next;
  }
}

TEST(BurstySchedulerTest, GapsAtLeastC1AndSometimesStall) {
  BurstyScheduler sched(Duration(2), 1, 4, 10, /*seed=*/3);
  Time prev(0);
  bool stalled = false;
  for (int i = 0; i < 300; ++i) {
    const Time next = sched.next_step_time(
        0, i == 0 ? std::nullopt : std::optional<Time>(prev), i);
    const Duration gap = next - prev;
    EXPECT_GE(gap, Duration(2));
    if (gap == Duration(20)) stalled = true;
    prev = next;
  }
  EXPECT_TRUE(stalled);
}

TEST(SlowOneSchedulerTest, OnlyVictimSlowed) {
  SlowOneScheduler sched(3, Duration(1), /*slow=*/1, Duration(7));
  EXPECT_EQ(sched.next_step_time(0, std::nullopt, 0), Time(1));
  EXPECT_EQ(sched.next_step_time(1, std::nullopt, 0), Time(7));
  EXPECT_EQ(sched.next_step_time(2, Time(4), 4), Time(5));
  EXPECT_EQ(sched.next_step_time(1, Time(7), 1), Time(14));
}

TEST(ScriptedSchedulerTest, FollowsScriptThenTail) {
  ScriptedScheduler sched({{0, {Time(1), Time(5), Time(6)}}}, Duration(2));
  EXPECT_EQ(sched.next_step_time(0, std::nullopt, 0), Time(1));
  EXPECT_EQ(sched.next_step_time(0, Time(1), 1), Time(5));
  EXPECT_EQ(sched.next_step_time(0, Time(5), 2), Time(6));
  // Script exhausted: tail gap.
  EXPECT_EQ(sched.next_step_time(0, Time(6), 3), Time(8));
  // Unknown process: tail gap from the start.
  EXPECT_EQ(sched.next_step_time(9, std::nullopt, 0), Time(2));
}

TEST(FixedDelayTest, Constant) {
  FixedDelay d(Duration(4));
  EXPECT_EQ(d.delay(0, 1, Time(10), 0), Duration(4));
}

TEST(UniformRandomDelayTest, WithinWindow) {
  UniformRandomDelay d(Duration(1), Duration(4), /*seed=*/17);
  for (int i = 0; i < 200; ++i) {
    const Duration v = d.delay(0, 1, Time(i), i);
    EXPECT_GE(v, Duration(1));
    EXPECT_LE(v, Duration(4));
  }
}

TEST(UniformRandomDelayTest, DegenerateWindow) {
  UniformRandomDelay d(Duration(3), Duration(3), 1);
  EXPECT_EQ(d.delay(0, 1, Time(0), 0), Duration(3));
}

TEST(StragglerDelayTest, VictimGetsSlowPath) {
  StragglerDelay d(/*victim=*/2, Duration(1), Duration(9));
  EXPECT_EQ(d.delay(0, 2, Time(0), 0), Duration(9));
  EXPECT_EQ(d.delay(0, 1, Time(0), 1), Duration(1));
  EXPECT_EQ(d.delay(2, 0, Time(0), 2), Duration(1));
}

}  // namespace
}  // namespace sesp
