#include "session/round_counter.hpp"

#include <gtest/gtest.h>

namespace sesp {
namespace {

StepRecord step(ProcessId p, std::int64_t t, bool idle = false) {
  StepRecord st;
  st.kind = StepKind::kCompute;
  st.process = p;
  st.time = Time(t);
  st.idle_after = idle;
  return st;
}

StepRecord port_step(ProcessId p, std::int64_t t, bool idle = false) {
  StepRecord st = step(p, t, idle);
  st.port = p;
  return st;
}

TEST(RoundCounterTest, EmptyTrace) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  const RoundDecomposition d = count_rounds(tc);
  EXPECT_EQ(d.full_rounds, 0);
  EXPECT_FALSE(d.partial_tail);
  EXPECT_EQ(d.rounds_ceiling(), 0);
}

TEST(RoundCounterTest, OneRoundPerFullSweep) {
  TimedComputation tc(Substrate::kSharedMemory, 3, 3);
  for (std::int64_t r = 0; r < 4; ++r)
    for (ProcessId p = 0; p < 3; ++p) tc.append(step(p, 3 * r + p + 1));
  EXPECT_EQ(count_rounds(tc).full_rounds, 4);
  EXPECT_FALSE(count_rounds(tc).partial_tail);
}

TEST(RoundCounterTest, PartialTailCounted) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  tc.append(step(0, 1));
  tc.append(step(1, 2));
  tc.append(step(0, 3));
  const RoundDecomposition d = count_rounds(tc);
  EXPECT_EQ(d.full_rounds, 1);
  EXPECT_TRUE(d.partial_tail);
  EXPECT_EQ(d.rounds_ceiling(), 2);
}

TEST(RoundCounterTest, SlowProcessStretchesRounds) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  // p0 steps 5 times before p1 appears once: that is one round.
  for (std::int64_t i = 1; i <= 5; ++i) tc.append(step(0, i));
  tc.append(step(1, 6));
  EXPECT_EQ(count_rounds(tc).full_rounds, 1);
}

TEST(RoundCounterTest, IdleProcessExcusedFromLaterRounds) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  tc.append(port_step(0, 1, /*idle=*/false));
  tc.append(port_step(1, 2, /*idle=*/true));  // p1 idles
  tc.append(port_step(0, 3, /*idle=*/false));
  tc.append(port_step(0, 4, /*idle=*/true));  // p0 idles -> prefix ends
  const RoundDecomposition d = count_rounds(tc);
  // Round 1 = {p0, p1}; afterwards p1 is idle so p0 alone completes rounds.
  EXPECT_EQ(d.full_rounds, 3);
}

TEST(RoundCounterTest, CountsOnlyActivePrefix) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  tc.append(port_step(0, 1, /*idle=*/true));
  tc.append(port_step(1, 2, /*idle=*/true));  // all ports idle here
  // Relay-ish non-port process churning afterwards is beyond the prefix.
  TimedComputation tc2(Substrate::kSharedMemory, 3, 2);
  tc2.append(port_step(0, 1, true));
  tc2.append(port_step(1, 2, true));
  tc2.append(step(2, 3));
  tc2.append(step(2, 4));
  EXPECT_EQ(count_rounds(tc).rounds_ceiling(),
            count_rounds(tc2).rounds_ceiling());
}

TEST(RoundCounterTest, DeliverStepsDoNotParticipate) {
  TimedComputation tc(Substrate::kMessagePassing, 2, 2);
  StepRecord d;
  d.kind = StepKind::kDeliver;
  d.process = kNetworkProcess;
  d.time = Time(1);
  tc.append(port_step(0, 1));
  tc.append(d);
  tc.append(port_step(1, 2));
  EXPECT_EQ(count_rounds(tc).full_rounds, 1);
}

}  // namespace
}  // namespace sesp
