// Differential equivalence suite for the simulator core rewrite
// (docs/performance.md): the calendar-queue/SoA executors must be
// observationally identical to the recorded-trace semantics — byte-identical
// traces run to run, replay-exact schedules, verdicts stable through a text
// round-trip, and job-count-invariant sweep digests — across every timing
// model, both substrates, random fault plans, and the event-time
// distributions that are adversarial for a calendar queue (same-time storms,
// power-law gaps, denominator blowups past the interned-Ratio inline range).

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/p2p/knowledge_algs.hpp"
#include "conformance/generator.hpp"
#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "model/trace_io.hpp"
#include "mpm/topology.hpp"
#include "session/round_counter.hpp"
#include "session/session_counter.hpp"
#include "session/verifier.hpp"
#include "sim/experiment.hpp"
#include "sim/replay.hpp"
#include "support/test_support.hpp"
#include "timing/admissibility.hpp"
#include "util/packed_ratio.hpp"
#include "util/rng.hpp"

namespace sesp {
namespace {

using conformance::CaseDescriptor;
using test_support::JobsGuard;

void expect_verdict_eq(const Verdict& a, const Verdict& b) {
  EXPECT_EQ(a.admissible, b.admissible);
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.all_ports_idle, b.all_ports_idle);
  EXPECT_EQ(a.solves, b.solves);
  EXPECT_EQ(a.termination_time, b.termination_time);
  EXPECT_EQ(a.rounds.full_rounds, b.rounds.full_rounds);
  EXPECT_EQ(a.rounds.partial_tail, b.rounds.partial_tail);
  EXPECT_EQ(a.gamma, b.gamma);
}

// Replays the trace's recorded schedule through the matching simulator and
// requires step-by-step agreement.
void expect_replay_exact(const CaseDescriptor& c, const TimedComputation& t) {
  const std::string name = conformance::resolved_algorithm(c);
  if (c.substrate == Substrate::kSharedMemory) {
    const auto factory = conformance::make_smm_factory(name);
    ASSERT_TRUE(factory) << name;
    const ReplayReport rep = replay_smm(t, c.spec, c.constraints, *factory);
    EXPECT_TRUE(rep.match) << c.to_string() << ": " << rep.detail;
  } else {
    const auto factory = conformance::make_mpm_factory(name);
    ASSERT_TRUE(factory) << name;
    const ReplayReport rep = replay_mpm(t, c.spec, c.constraints, *factory);
    EXPECT_TRUE(rep.match) << c.to_string() << ": " << rep.detail;
  }
}

// --- Conformance sweep: 5 models x 2 substrates -----------------------------

TEST(SimCoreEquiv, ConformanceCellsAreByteStableAndReplayExact) {
  for (const TimingModel model : conformance::all_models()) {
    for (const Substrate substrate : conformance::all_substrates()) {
      for (std::uint64_t seed = 0; seed < 6; ++seed) {
        const CaseDescriptor c = conformance::generate_case(
            model, substrate, conformance::case_seed(31, 7, seed));
        const conformance::GeneratedRun a = conformance::run_case(c);
        const conformance::GeneratedRun b = conformance::run_case(c);
        ASSERT_TRUE(a.ok) << c.to_string() << ": " << a.error;
        ASSERT_TRUE(b.ok) << c.to_string() << ": " << b.error;
        ASSERT_TRUE(a.trace.has_value());
        ASSERT_TRUE(b.trace.has_value());

        // Two executions of one descriptor are byte-identical.
        const std::string text = to_text(*a.trace);
        EXPECT_EQ(text, to_text(*b.trace)) << c.to_string();
        expect_verdict_eq(a.verdict, b.verdict);

        // The recorded schedule replays to the same computation.
        expect_replay_exact(c, *a.trace);

        // The verdict survives a text round-trip of the trace: the fused
        // verifier sees exactly what the original pass saw.
        std::string error;
        const std::optional<TimedComputation> parsed =
            trace_from_text(text, &error);
        ASSERT_TRUE(parsed.has_value()) << error;
        expect_verdict_eq(a.verdict,
                          verify(*parsed, c.spec, c.constraints));
      }
    }
  }
}

// The fused single-pass verdict (verifier.cpp count_all) must be
// value-identical to the standalone routines it replaced, on every cell.
TEST(SimCoreEquiv, FusedVerdictMatchesStandaloneCounters) {
  for (const TimingModel model : conformance::all_models()) {
    for (const Substrate substrate : conformance::all_substrates()) {
      for (std::uint64_t seed = 0; seed < 4; ++seed) {
        const CaseDescriptor c = conformance::generate_case(
            model, substrate, conformance::case_seed(17, 3, seed));
        const conformance::GeneratedRun run = conformance::run_case(c);
        ASSERT_TRUE(run.ok) << c.to_string() << ": " << run.error;
        ASSERT_TRUE(run.trace.has_value());
        const TimedComputation& t = *run.trace;
        const Verdict v = verify(t, c.spec, c.constraints);
        EXPECT_EQ(v.sessions, count_sessions(t).sessions) << c.to_string();
        EXPECT_EQ(v.all_ports_idle, t.all_ports_idle()) << c.to_string();
        EXPECT_EQ(v.termination_time, t.termination_time()) << c.to_string();
        const RoundDecomposition rounds = count_rounds(t);
        EXPECT_EQ(v.rounds.full_rounds, rounds.full_rounds) << c.to_string();
        EXPECT_EQ(v.rounds.partial_tail, rounds.partial_tail)
            << c.to_string();
        EXPECT_EQ(v.gamma, t.gamma()) << c.to_string();
      }
    }
  }
}

// --- Fault plans -------------------------------------------------------------

TEST(SimCoreEquiv, MpmFaultPlansReproduceByteIdenticalRuns) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Ratio(1), Ratio(2), Ratio(1));
  const auto factory = conformance::make_mpm_factory("semisync");
  ASSERT_TRUE(factory);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, spec.n);
    const auto once = [&] {
      UniformGapScheduler sched(Ratio(1), Ratio(2), seed);
      FixedDelay delay{Duration(1)};
      FaultInjector faults(plan);
      return run_mpm_once(spec, constraints, *factory, sched, delay,
                          MpmRunLimits{}, &faults);
    };
    const MpmOutcome a = once();
    const MpmOutcome b = once();
    EXPECT_EQ(to_text(a.run.trace), to_text(b.run.trace))
        << "seed=" << seed << " plan=" << plan.to_string();
    EXPECT_EQ(a.run.completed, b.run.completed);
    EXPECT_EQ(a.run.crashed, b.run.crashed);
    EXPECT_EQ(a.run.error.has_value(), b.run.error.has_value());
    expect_verdict_eq(a.verdict, b.verdict);
  }
}

TEST(SimCoreEquiv, SmmFaultPlansReproduceByteIdenticalRuns) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Ratio(1), Ratio(2));
  const auto factory = conformance::make_smm_factory("semisync");
  ASSERT_TRUE(factory);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, spec.n);
    const auto once = [&] {
      UniformGapScheduler sched(Ratio(1), Ratio(2), seed);
      FaultInjector faults(plan);
      return run_smm_once(spec, constraints, *factory, sched, SmmRunLimits{},
                          &faults);
    };
    const SmmOutcome a = once();
    const SmmOutcome b = once();
    EXPECT_EQ(to_text(a.run.trace), to_text(b.run.trace))
        << "seed=" << seed << " plan=" << plan.to_string();
    EXPECT_EQ(a.run.completed, b.run.completed);
    EXPECT_EQ(a.run.crashed, b.run.crashed);
    expect_verdict_eq(a.verdict, b.verdict);
  }
}

TEST(SimCoreEquiv, ChaosSweepReportsAreJobCountInvariant) {
  const ProblemSpec spec{2, 3, 2};
  const auto mpm_constraints =
      TimingConstraints::semi_synchronous(Ratio(1), Ratio(2), Ratio(1));
  const auto smm_constraints =
      TimingConstraints::semi_synchronous(Ratio(1), Ratio(2));
  const auto mpm_factory = conformance::make_mpm_factory("semisync");
  const auto smm_factory = conformance::make_smm_factory("semisync");
  ASSERT_TRUE(mpm_factory);
  ASSERT_TRUE(smm_factory);

  ChaosReport mpm_ref, smm_ref;
  {
    JobsGuard guard(1);
    mpm_ref = mpm_chaos_sweep(spec, mpm_constraints, *mpm_factory, 16);
    smm_ref = smm_chaos_sweep(spec, smm_constraints, *smm_factory, 16);
  }
  for (const int jobs : {2, 8}) {
    JobsGuard guard(jobs);
    EXPECT_EQ(mpm_chaos_sweep(spec, mpm_constraints, *mpm_factory, 16),
              mpm_ref)
        << "jobs=" << jobs;
    EXPECT_EQ(smm_chaos_sweep(spec, smm_constraints, *smm_factory, 16),
              smm_ref)
        << "jobs=" << jobs;
  }
}

// --- Adversarial event-time distributions ------------------------------------

// Synchronous period-1 schedule: every tick lands all n computes (and, one
// delay later, all n^2 deliveries) in a single calendar bucket — the
// same-time storm that dominates bench_faults.
TEST(SimCoreEquiv, SameTimeStormMatchesReplayOnBothSubstrates) {
  const ProblemSpec spec{3, 4, 2};
  {
    const auto constraints = TimingConstraints::synchronous(1, 1);
    const auto factory = conformance::make_mpm_factory("sync");
    ASSERT_TRUE(factory);
    const auto once = [&] {
      FixedPeriodScheduler sched(spec.n, Duration(1));
      FixedDelay delay{Duration(1)};
      return run_mpm_once(spec, constraints, *factory, sched, delay);
    };
    const MpmOutcome a = once();
    const MpmOutcome b = once();
    ASSERT_TRUE(a.run.completed) << to_text(a.run.trace);
    EXPECT_TRUE(a.verdict.admissible) << a.verdict.admissibility_violation;
    EXPECT_TRUE(a.verdict.solves);
    EXPECT_EQ(to_text(a.run.trace), to_text(b.run.trace));
    const auto rep = replay_mpm(a.run.trace, spec, constraints, *factory);
    EXPECT_TRUE(rep.match) << rep.detail;
  }
  {
    const auto constraints = TimingConstraints::synchronous(1);
    const auto factory = conformance::make_smm_factory("sync");
    ASSERT_TRUE(factory);
    const auto once = [&] {
      FixedPeriodScheduler sched(smm_total_processes(spec.n, spec.b),
                                 Duration(1));
      return run_smm_once(spec, constraints, *factory, sched);
    };
    const SmmOutcome a = once();
    const SmmOutcome b = once();
    ASSERT_TRUE(a.run.completed) << to_text(a.run.trace);
    EXPECT_TRUE(a.verdict.admissible) << a.verdict.admissibility_violation;
    EXPECT_TRUE(a.verdict.solves);
    EXPECT_EQ(to_text(a.run.trace), to_text(b.run.trace));
    const auto rep = replay_smm(a.run.trace, spec, constraints, *factory);
    EXPECT_TRUE(rep.match) << rep.detail;
  }
}

// Gaps of 2^k spread events over exponentially growing distances — the
// distribution where a naive bucket array degenerates and the queue must
// fall back to its comparison heap.
class PowerLawScheduler final : public StepScheduler {
 public:
  explicit PowerLawScheduler(std::uint64_t seed) : rng_(seed) {}
  Time next_step_time(ProcessId, std::optional<Time> prev,
                      std::int64_t) override {
    const Time base = prev ? *prev : Time(0);
    return base + Duration(std::int64_t{1} << rng_.next_below(7));
  }

 private:
  Rng rng_;
};

TEST(SimCoreEquiv, PowerLawGapScheduleIsReplayExact) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints =
      TimingConstraints::sporadic(Ratio(1), Ratio(1), Ratio(1));
  const auto factory = conformance::make_mpm_factory("sporadic");
  ASSERT_TRUE(factory);
  const auto once = [&] {
    PowerLawScheduler sched(0x9e3779b97f4a7c15ULL);
    FixedDelay delay{Duration(1)};
    return run_mpm_once(spec, constraints, *factory, sched, delay);
  };
  const MpmOutcome a = once();
  const MpmOutcome b = once();
  ASSERT_TRUE(a.run.completed) << to_text(a.run.trace);
  EXPECT_TRUE(a.verdict.admissible) << a.verdict.admissibility_violation;
  EXPECT_EQ(to_text(a.run.trace), to_text(b.run.trace));
  const auto rep = replay_mpm(a.run.trace, spec, constraints, *factory);
  EXPECT_TRUE(rep.match) << rep.detail;
}

// Periods of 3 + 1/q with q past the PackedRatio inline-denominator limit:
// every event time takes the interned-pool path of the calendar queue's
// bucket index, and each process pins a distinct pooled key.
TEST(SimCoreEquiv, DenominatorBlowupsTakeThePooledPathAndStayExact) {
  const ProblemSpec spec{2, 3, 2};
  const auto constraints =
      TimingConstraints::sporadic(Ratio(1), Ratio(1), Ratio(1));
  const auto factory = conformance::make_mpm_factory("sporadic");
  ASSERT_TRUE(factory);
  std::vector<Duration> periods;
  for (std::int32_t p = 0; p < spec.n; ++p) {
    const std::int64_t q = PackedRatio::kDenMax + 1 + p;
    periods.push_back(Duration(3 * q + 1, q));  // 3 + 1/q, den > inline max
    ASSERT_FALSE(PackedRatio::fits_inline(periods.back().num(),
                                          periods.back().den()));
  }
  const auto once = [&] {
    FixedPeriodScheduler sched(periods);
    FixedDelay delay{Duration(1)};
    return run_mpm_once(spec, constraints, *factory, sched, delay);
  };
  const MpmOutcome a = once();
  const MpmOutcome b = once();
  ASSERT_TRUE(a.run.completed) << to_text(a.run.trace);
  EXPECT_TRUE(a.verdict.admissible) << a.verdict.admissibility_violation;
  EXPECT_TRUE(a.verdict.solves);
  EXPECT_EQ(to_text(a.run.trace), to_text(b.run.trace));
  const auto rep = replay_mpm(a.run.trace, spec, constraints, *factory);
  EXPECT_TRUE(rep.match) << rep.detail;
}

// --- P2P substrate -----------------------------------------------------------

TEST(SimCoreEquiv, P2pSameTimeStormIsDeterministicAndSolves) {
  const ProblemSpec spec{3, 4, 2};
  const auto constraints = TimingConstraints::synchronous(2, 4);
  const Topology topo = Topology::complete(spec.n);
  const P2pSyncFactory factory;
  const auto once = [&] {
    FixedPeriodScheduler sched(spec.n, Duration(2));
    FixedDelay delay{Duration(4)};
    return run_p2p_once(spec, constraints, topo, factory, sched, delay);
  };
  const P2pOutcome a = once();
  const P2pOutcome b = once();
  ASSERT_TRUE(a.run.completed) << to_text(a.run.trace);
  EXPECT_TRUE(a.verdict.admissible) << a.verdict.admissibility_violation;
  EXPECT_TRUE(a.verdict.solves);
  EXPECT_EQ(to_text(a.run.trace), to_text(b.run.trace));
  expect_verdict_eq(a.verdict, b.verdict);
}

}  // namespace
}  // namespace sesp
