#include <gtest/gtest.h>

#include <sstream>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace sesp {
namespace {

TEST(SummaryTest, TracksMinMaxMeanCount) {
  Summary s;
  EXPECT_TRUE(s.empty());
  s.add(Ratio(3));
  s.add(Ratio(1, 2));
  s.add(Ratio(5));
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.min(), Ratio(1, 2));
  EXPECT_EQ(s.max(), Ratio(5));
  EXPECT_NEAR(s.mean(), (3 + 0.5 + 5) / 3.0, 1e-12);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.add(Ratio(-7, 3));
  EXPECT_EQ(s.min(), s.max());
  EXPECT_NEAR(s.mean(), -7.0 / 3.0, 1e-12);
}

TEST(MaxOfTest, ExactMaximum) {
  EXPECT_EQ(max_of({Ratio(1, 3), Ratio(2, 5), Ratio(1, 7)}), Ratio(2, 5));
  EXPECT_EQ(max_of({Ratio(-1)}), Ratio(-1));
}

TEST(TextTableTest, PadsShortRows) {
  TextTable t({"a", "bb", "ccc"});
  t.add_row({"1"});
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("ccc"), std::string::npos);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"x", "y"});
  t.add_row({"long-cell", "1"});
  t.add_row({"s", "2"});
  std::ostringstream os;
  t.print(os);
  // Each printed row has the same width.
  std::istringstream lines(os.str());
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(FormatTest, Helpers) {
  EXPECT_EQ(fmt(Ratio(7, 2)), "7/2");
  EXPECT_EQ(fmt_approx(Ratio(7, 2)), "3.500");
  EXPECT_EQ(fmt_ratio_of(Ratio(1), Ratio(2)), "0.500");
  EXPECT_EQ(fmt_ratio_of(Ratio(0), Ratio(0)), "1.000");
  EXPECT_EQ(fmt_ratio_of(Ratio(1), Ratio(0)), "inf");
}

}  // namespace
}  // namespace sesp
