#include "p2p/p2p_simulator.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/p2p/knowledge_algs.hpp"
#include "session/session_counter.hpp"
#include "session/verifier.hpp"
#include "timing/admissibility.hpp"

namespace sesp {
namespace {

P2pRunResult run(const ProblemSpec& spec, const TimingConstraints& constraints,
                 const Topology& topo, const P2pAlgorithmFactory& factory,
                 const Duration& period, const Duration& delay_value) {
  FixedPeriodScheduler sched(spec.n, period);
  FixedDelay delay{delay_value};
  P2pSimulator sim(spec, constraints, topo, factory, sched, delay);
  return sim.run();
}

TEST(P2pSimulatorTest, SyncOnCompleteGraph) {
  const ProblemSpec spec{3, 4, 2};
  const auto constraints = TimingConstraints::synchronous(2, 4);
  const Topology topo = Topology::complete(4);
  P2pSyncFactory factory;
  const P2pRunResult result =
      run(spec, constraints, topo, factory, Duration(2), Duration(4));
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(check_admissible(result.trace, constraints));
  EXPECT_EQ(count_sessions(result.trace).sessions, 3);
  EXPECT_EQ(*result.trace.termination_time(), Time(6));
}

TEST(P2pSimulatorTest, MessagesOnlyCrossEdges) {
  const ProblemSpec spec{2, 6, 2};
  const auto constraints = TimingConstraints::asynchronous(1, 2);
  const Topology topo = Topology::ring(6);
  P2pRoundsFactory factory;
  const P2pRunResult result =
      run(spec, constraints, topo, factory, Duration(1), Duration(2));
  ASSERT_TRUE(result.completed);
  for (const MessageRecord& m : result.trace.messages())
    EXPECT_TRUE(topo.has_edge(m.sender, m.recipient))
        << m.sender << " -> " << m.recipient;
}

TEST(P2pSimulatorTest, GossipRelaysAcrossTheDiameter) {
  // The rounds algorithm can only finish if endpoint knowledge crosses the
  // whole line through intermediate nodes.
  const ProblemSpec spec{3, 7, 2};
  const auto constraints = TimingConstraints::asynchronous(1, 3);
  const Topology topo = Topology::line(7);
  P2pRoundsFactory factory;
  const P2pRunResult result =
      run(spec, constraints, topo, factory, Duration(1), Duration(3));
  EXPECT_TRUE(result.completed);
  const Verdict verdict = verify(result.trace, spec, constraints);
  EXPECT_TRUE(verdict.admissible) << verdict.admissibility_violation;
  EXPECT_TRUE(verdict.solves);
}

TEST(P2pSimulatorTest, PerSessionCostScalesWithDiameter) {
  const ProblemSpec spec{4, 8, 2};
  const auto constraints = TimingConstraints::asynchronous(1, 4);
  P2pRoundsFactory factory;
  const Topology complete = Topology::complete(8);
  const Topology line = Topology::line(8);
  const P2pRunResult fast =
      run(spec, constraints, complete, factory, Duration(1), Duration(4));
  const P2pRunResult slow =
      run(spec, constraints, line, factory, Duration(1), Duration(4));
  ASSERT_TRUE(fast.completed);
  ASSERT_TRUE(slow.completed);
  // Diameter 7 vs 1: the line must be several times slower.
  EXPECT_GE(*slow.trace.termination_time(),
            *fast.trace.termination_time() * Ratio(3));
}

class P2pConformance
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(P2pConformance, AllAlgorithmsSolveOnAllTopologies) {
  const auto [s, n, which] = GetParam();
  const ProblemSpec spec{s, n, 2};
  Topology topo = Topology::complete(n);
  switch (which) {
    case 0: topo = Topology::complete(n); break;
    case 1: topo = Topology::ring(n); break;
    case 2: topo = Topology::star(n); break;
    case 3: topo = Topology::tree(n, 2); break;
  }

  {
    const auto constraints = TimingConstraints::synchronous(1, 2);
    P2pSyncFactory factory;
    const P2pRunResult result =
        run(spec, constraints, topo, factory, Duration(1), Duration(2));
    const Verdict v = verify(result.trace, spec, constraints);
    EXPECT_TRUE(v.solves && v.admissible)
        << "sync on " << topo.name() << ": " << v.admissibility_violation;
  }
  {
    const auto constraints = TimingConstraints::periodic(
        std::vector<Duration>(static_cast<std::size_t>(n), Duration(1)),
        Duration(2));
    P2pPeriodicFactory factory;
    const P2pRunResult result =
        run(spec, constraints, topo, factory, Duration(1), Duration(2));
    const Verdict v = verify(result.trace, spec, constraints);
    EXPECT_TRUE(v.solves && v.admissible)
        << "periodic on " << topo.name() << ": " << v.admissibility_violation;
  }
  {
    const auto constraints = TimingConstraints::asynchronous(1, 2);
    P2pRoundsFactory factory;
    const P2pRunResult result =
        run(spec, constraints, topo, factory, Duration(1), Duration(2));
    const Verdict v = verify(result.trace, spec, constraints);
    EXPECT_TRUE(v.solves && v.admissible)
        << "rounds on " << topo.name() << ": " << v.admissibility_violation;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, P2pConformance,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(2, 5, 8),
                                            ::testing::Values(0, 1, 2, 3)));

TEST(P2pSimulatorTest, HeterogeneousPeriodsStillSolve) {
  const ProblemSpec spec{5, 4, 2};
  std::vector<Duration> periods{Duration(3), Duration(1), Duration(1),
                                Duration(2)};
  const auto constraints = TimingConstraints::periodic(periods, Duration(2));
  P2pPeriodicFactory factory;
  FixedPeriodScheduler sched(periods);
  FixedDelay delay{Duration(2)};
  const Topology topo = Topology::ring(4);
  P2pSimulator sim(spec, constraints, topo, factory, sched, delay);
  const P2pRunResult result = sim.run();
  const Verdict v = verify(result.trace, spec, constraints);
  EXPECT_TRUE(v.admissible) << v.admissibility_violation;
  EXPECT_TRUE(v.solves) << "sessions=" << v.sessions;
}

}  // namespace
}  // namespace sesp
