// End-to-end tests of the command-line tools, exercised as real
// subprocesses (paths injected by CMake): every substrate/model combination
// runs admissibly, certificates round-trip between sesp_attack and
// sesp_cli, and usage errors exit with status 2.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace sesp {
namespace {

struct CommandResult {
  int status = -1;
  std::string output;
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (!pipe) return result;
  std::array<char, 4096> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe))
    result.output += buffer.data();
  const int rc = pclose(pipe);
  result.status = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  return result;
}

const std::string kCli = SESP_CLI_PATH;
const std::string kAttack = SESP_ATTACK_PATH;

TEST(CliTest, RunsEveryModelOnMpm) {
  for (const std::string model :
       {"sync", "periodic", "semisync", "sporadic", "async"}) {
    const auto r = run_command(kCli + " --substrate=mpm --model=" + model +
                               " --s=3 --n=3 --c1=1 --c2=4 --d1=1 --d2=6" +
                               " --adversary=worst");
    EXPECT_EQ(r.status, 0) << model << "\n" << r.output;
    EXPECT_NE(r.output.find("all solved:  yes"), std::string::npos)
        << model << "\n" << r.output;
  }
}

TEST(CliTest, LockstepAndRandomAdversariesAdmissible) {
  for (const std::string adversary : {"lockstep", "random"}) {
    for (const std::string model : {"periodic", "semisync", "sporadic"}) {
      const auto r = run_command(
          kCli + " --substrate=mpm --model=" + model + " --adversary=" +
          adversary + " --s=3 --n=3 --c1=1 --c2=4 --d1=1 --d2=6");
      EXPECT_EQ(r.status, 0) << model << "/" << adversary << "\n" << r.output;
      EXPECT_NE(r.output.find("admissible:  yes"), std::string::npos)
          << model << "/" << adversary << "\n" << r.output;
    }
  }
}

TEST(CliTest, SmmAndP2pRun) {
  const auto smm = run_command(
      kCli + " --substrate=smm --model=periodic --s=3 --n=6 --b=3"
             " --c1=1 --c2=2 --adversary=lockstep --stats");
  EXPECT_EQ(smm.status, 0) << smm.output;
  EXPECT_NE(smm.output.find("stats:"), std::string::npos);

  const auto p2p = run_command(
      kCli + " --substrate=p2p --model=async --topology=ring --s=2 --n=6"
             " --c2=1 --d2=3 --timeline");
  EXPECT_EQ(p2p.status, 0) << p2p.output;
  EXPECT_NE(p2p.output.find("diameter 3"), std::string::npos);
  EXPECT_NE(p2p.output.find("sessions"), std::string::npos);
}

TEST(CliTest, CertificatePipelineRoundTrips) {
  const std::string cert = ::testing::TempDir() + "/sesp_cli_test_cert.txt";
  const auto attack = run_command(
      kAttack + " --construction=semisync-sm --alg=too-few-steps:2"
                " --s=4 --n=8 --c1=1 --c2=12 --out=" + cert);
  ASSERT_EQ(attack.status, 0) << attack.output;
  EXPECT_NE(attack.output.find("certificate=YES"), std::string::npos);

  const auto check = run_command(kCli + " --check-certificate=" + cert);
  EXPECT_EQ(check.status, 0) << check.output;
  EXPECT_NE(check.output.find("VALID"), std::string::npos);
  std::remove(cert.c_str());
}

TEST(CliTest, AttackReportsSurvivorsWithExpectSurvive) {
  const auto r = run_command(
      kAttack + " --construction=sporadic-mp --alg=asp --s=3 --n=3"
                " --c1=1 --d1=2 --d2=42 --expect-survive");
  EXPECT_EQ(r.status, 0) << r.output;
  EXPECT_NE(r.output.find("certificate=no"), std::string::npos);
}

TEST(CliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run_command(kCli + " --bogus-flag").status, 2);
  EXPECT_EQ(run_command(kCli + " --substrate=carrier-pigeon").status, 2);
  EXPECT_EQ(run_command(kAttack + " --construction=nope").status, 2);
  EXPECT_EQ(
      run_command(kCli + " --check-certificate=/definitely/missing").status,
      2);
}

TEST(CliTest, TraceDumpParsesBack) {
  const std::string trace = ::testing::TempDir() + "/sesp_cli_test_trace.txt";
  const auto r = run_command(
      kCli + " --substrate=mpm --model=sporadic --s=3 --n=3 --c1=1 --d1=1"
             " --d2=4 --adversary=lockstep --dump-trace=" + trace);
  ASSERT_EQ(r.status, 0) << r.output;
  std::FILE* f = std::fopen(trace.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[16] = {};
  ASSERT_NE(std::fgets(header, sizeof header, f), nullptr);
  EXPECT_EQ(std::string(header).rfind("sesp-trace", 0), 0u);
  std::fclose(f);
  std::remove(trace.c_str());
}

}  // namespace
}  // namespace sesp
