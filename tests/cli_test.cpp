// End-to-end tests of the command-line tools, exercised as real
// subprocesses (paths injected by CMake): every substrate/model combination
// runs admissibly, certificates round-trip between sesp_attack and
// sesp_cli, and usage errors exit with status 2.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace sesp {
namespace {

struct CommandResult {
  int status = -1;
  std::string output;
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (!pipe) return result;
  std::array<char, 4096> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe))
    result.output += buffer.data();
  const int rc = pclose(pipe);
  result.status = WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
  return result;
}

const std::string kCli = SESP_CLI_PATH;
const std::string kAttack = SESP_ATTACK_PATH;
const std::string kConformance = SESP_CONFORMANCE_PATH;
const std::string kBenchMerge = SESP_BENCH_MERGE_PATH;
const std::string kShard = SESP_SHARD_PATH;
const std::string kPerf = SESP_PERF_PATH;
const std::string kTraceMerge = SESP_TRACE_MERGE_PATH;

// Drops the tool's stderr (resume hints, recovery chatter) so the captured
// output is exactly the stdout the byte-identity contract covers.
std::string stdout_only(const std::string& command) {
  return "( " + command + " 2>/dev/null )";
}

void write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

TEST(CliTest, RunsEveryModelOnMpm) {
  for (const std::string model :
       {"sync", "periodic", "semisync", "sporadic", "async"}) {
    const auto r = run_command(kCli + " --substrate=mpm --model=" + model +
                               " --s=3 --n=3 --c1=1 --c2=4 --d1=1 --d2=6" +
                               " --adversary=worst");
    EXPECT_EQ(r.status, 0) << model << "\n" << r.output;
    EXPECT_NE(r.output.find("all solved:  yes"), std::string::npos)
        << model << "\n" << r.output;
  }
}

TEST(CliTest, LockstepAndRandomAdversariesAdmissible) {
  for (const std::string adversary : {"lockstep", "random"}) {
    for (const std::string model : {"periodic", "semisync", "sporadic"}) {
      const auto r = run_command(
          kCli + " --substrate=mpm --model=" + model + " --adversary=" +
          adversary + " --s=3 --n=3 --c1=1 --c2=4 --d1=1 --d2=6");
      EXPECT_EQ(r.status, 0) << model << "/" << adversary << "\n" << r.output;
      EXPECT_NE(r.output.find("admissible:  yes"), std::string::npos)
          << model << "/" << adversary << "\n" << r.output;
    }
  }
}

TEST(CliTest, SmmAndP2pRun) {
  const auto smm = run_command(
      kCli + " --substrate=smm --model=periodic --s=3 --n=6 --b=3"
             " --c1=1 --c2=2 --adversary=lockstep --stats");
  EXPECT_EQ(smm.status, 0) << smm.output;
  EXPECT_NE(smm.output.find("stats:"), std::string::npos);

  const auto p2p = run_command(
      kCli + " --substrate=p2p --model=async --topology=ring --s=2 --n=6"
             " --c2=1 --d2=3 --timeline");
  EXPECT_EQ(p2p.status, 0) << p2p.output;
  EXPECT_NE(p2p.output.find("diameter 3"), std::string::npos);
  EXPECT_NE(p2p.output.find("sessions"), std::string::npos);
}

TEST(CliTest, CertificatePipelineRoundTrips) {
  const std::string cert = ::testing::TempDir() + "/sesp_cli_test_cert.txt";
  const auto attack = run_command(
      kAttack + " --construction=semisync-sm --alg=too-few-steps:2"
                " --s=4 --n=8 --c1=1 --c2=12 --out=" + cert);
  ASSERT_EQ(attack.status, 0) << attack.output;
  EXPECT_NE(attack.output.find("certificate=YES"), std::string::npos);

  const auto check = run_command(kCli + " --check-certificate=" + cert);
  EXPECT_EQ(check.status, 0) << check.output;
  EXPECT_NE(check.output.find("VALID"), std::string::npos);
  std::remove(cert.c_str());
}

TEST(CliTest, AttackReportsSurvivorsWithExpectSurvive) {
  const auto r = run_command(
      kAttack + " --construction=sporadic-mp --alg=asp --s=3 --n=3"
                " --c1=1 --d1=2 --d2=42 --expect-survive");
  EXPECT_EQ(r.status, 0) << r.output;
  EXPECT_NE(r.output.find("certificate=no"), std::string::npos);
}

TEST(CliTest, UsageErrorsExitTwo) {
  EXPECT_EQ(run_command(kCli + " --bogus-flag").status, 2);
  EXPECT_EQ(run_command(kCli + " --substrate=carrier-pigeon").status, 2);
  EXPECT_EQ(run_command(kAttack + " --construction=nope").status, 2);
  EXPECT_EQ(
      run_command(kCli + " --check-certificate=/definitely/missing").status,
      2);
}

// The crash-safe execution contract end to end (docs/robustness.md): a run
// interrupted mid-sweep exits 75 with a resume hint, and --resume completes
// it to a stdout byte-identical to the uninterrupted run's.
TEST(CliTest, InterruptAndResumeIsByteIdentical) {
  const std::string journal = ::testing::TempDir() + "/cli_resume.journal";
  std::remove(journal.c_str());
  const std::string sweep =
      kCli + " --substrate=mpm --model=sporadic --adversary=worst"
             " --s=3 --n=3 --c1=1 --d1=1 --d2=4 --jobs=2";

  const auto plain = run_command(stdout_only(sweep));
  ASSERT_EQ(plain.status, 0) << plain.output;

  const auto interrupted = run_command(
      "SESP_STOP_AFTER=2 SESP_JOURNAL_FSYNC=0 " + sweep +
      " --journal=" + journal);
  ASSERT_EQ(interrupted.status, 75) << interrupted.output;
  EXPECT_NE(interrupted.output.find("resume with --resume="),
            std::string::npos)
      << interrupted.output;
  // The partial run never prints the report.
  EXPECT_EQ(interrupted.output.find("all solved"), std::string::npos)
      << interrupted.output;

  // Resume (repeatedly, in case another stop fires) until completion; the
  // final stdout must match the uninterrupted run byte for byte.
  CommandResult resumed;
  for (int i = 0; i < 50; ++i) {
    resumed = run_command(
        stdout_only("SESP_JOURNAL_FSYNC=0 " + sweep + " --resume=" + journal));
    if (resumed.status != 75) break;
  }
  ASSERT_EQ(resumed.status, 0) << resumed.output;
  EXPECT_EQ(resumed.output, plain.output);
  std::remove(journal.c_str());
}

TEST(CliTest, ConformanceResumeMatchesUninterruptedRun) {
  const std::string journal =
      ::testing::TempDir() + "/conformance_resume.journal";
  std::remove(journal.c_str());
  const std::string campaign =
      kConformance + " --cases=10 --seed=5 --jobs=2 --no-minimize"
                     " --substrate=smm --model=semisync";

  const auto plain = run_command(stdout_only(campaign));
  ASSERT_EQ(plain.status, 0) << plain.output;

  const auto interrupted = run_command(
      "SESP_STOP_AFTER=3 SESP_JOURNAL_FSYNC=0 " + campaign +
      " --journal=" + journal);
  ASSERT_EQ(interrupted.status, 75) << interrupted.output;

  CommandResult resumed;
  for (int i = 0; i < 50; ++i) {
    resumed = run_command(stdout_only(
        "SESP_JOURNAL_FSYNC=0 " + campaign + " --resume=" + journal));
    if (resumed.status != 75) break;
  }
  ASSERT_EQ(resumed.status, 0) << resumed.output;
  EXPECT_EQ(resumed.output, plain.output);

  // Resuming under a different configuration must be refused up front.
  const auto mismatch = run_command(
      kConformance + " --cases=11 --seed=5 --jobs=2 --no-minimize"
                     " --substrate=smm --model=semisync --resume=" + journal);
  EXPECT_EQ(mismatch.status, 2) << mismatch.output;
  EXPECT_NE(mismatch.output.find("different"), std::string::npos)
      << mismatch.output;
  std::remove(journal.c_str());
}

TEST(CliTest, BenchMergeSkipsTruncatedRecords) {
  const std::string dir = ::testing::TempDir();
  const std::string good = dir + "/BENCH_merge_good.json";
  const std::string torn = dir + "/BENCH_merge_torn.json";
  const std::string out = dir + "/bench_results_test.json";
  const std::string record =
      "{\"schema\":\"sesp-bench/1\",\"bench\":\"unit\",\"ok\":true,"
      "\"wall_seconds\":0.1,\"steps\":10,\"steps_per_sec\":100,\"runs\":1,"
      "\"rows\":[],\"notes\":{},\"metrics\":{}}";
  write_file(good, record);
  write_file(torn, record.substr(0, record.size() / 2));

  // Truncated-only blemish: skipped with a warning, distinct exit code 3.
  const auto warn = run_command(kBenchMerge + " --out=" + out + " " + good +
                                " " + torn);
  EXPECT_EQ(warn.status, 3) << warn.output;
  EXPECT_NE(warn.output.find("skipped truncated record"), std::string::npos)
      << warn.output;
  EXPECT_NE(warn.output.find("truncated: 1"), std::string::npos)
      << warn.output;

  // Clean inputs still exit 0; a malformed record still fails with 1.
  EXPECT_EQ(run_command(kBenchMerge + " --out=" + out + " " + good).status,
            0);
  const std::string bad = dir + "/BENCH_merge_bad.json";
  write_file(bad, "{\"schema\":\"other/1\"}");
  EXPECT_EQ(run_command(kBenchMerge + " --out=" + out + " " + good + " " +
                        bad).status,
            1);
  std::remove(good.c_str());
  std::remove(torn.c_str());
  std::remove(bad.c_str());
  std::remove(out.c_str());
}

// Sharded execution end to end (docs/robustness.md "Sharded execution"):
// real worker processes lease disjoint slot ranges through a shared shard
// directory, and the coordinator's merged replay prints a stdout
// byte-identical to the plain run — with and without a worker SIGKILLed
// mid-sweep.
TEST(CliTest, ShardedSweepMatchesPlainRunEvenUnderSigkill) {
  const std::string sweep =
      kCli + " --substrate=mpm --model=sporadic --adversary=worst"
             " --s=3 --n=3 --c1=1 --d1=1 --d2=4 --jobs=2";
  const auto plain = run_command(stdout_only(sweep));
  ASSERT_EQ(plain.status, 0) << plain.output;

  // Coordinator mode: the tool spawns its own workers and replays the
  // merge.
  const std::string dir1 = ::testing::TempDir() + "/cli_shard_coord";
  run_command("rm -rf " + dir1);
  const auto coord = run_command(stdout_only(
      "SESP_JOURNAL_FSYNC=0 " + sweep + " --shard-dir=" + dir1 +
      " --workers=3"));
  EXPECT_EQ(coord.status, 0) << coord.output;
  EXPECT_EQ(coord.output, plain.output);

  // Chaos harness: SIGKILL one worker mid-sweep; survivors steal its
  // ranges and the final replay is still byte-identical.
  const std::string dir2 = ::testing::TempDir() + "/cli_shard_kill";
  run_command("rm -rf " + dir2);
  const auto chaos = run_command(stdout_only(
      "SESP_JOURNAL_FSYNC=0 " + kShard + " --shard-dir=" + dir2 +
      " --workers=3 --kill-after=2 --kill-signal=KILL --kill-worker=1"
      " -- " + sweep));
  EXPECT_EQ(chaos.status, 0) << chaos.output;
  EXPECT_EQ(chaos.output, plain.output);

  // The standalone merge of the same shard directory is deterministic.
  const auto merge = run_command(kShard + " merge --shard-dir=" + dir2);
  EXPECT_EQ(merge.status, 0) << merge.output;
  EXPECT_NE(merge.output.find("merged"), std::string::npos) << merge.output;

  run_command("rm -rf " + dir1 + " " + dir2);
}

TEST(CliTest, JournalInspectDescribesRecordsAndLeases) {
  const std::string journal =
      ::testing::TempDir() + "/cli_inspect.journal";
  std::remove(journal.c_str());
  const std::string sweep =
      kCli + " --substrate=mpm --model=sporadic --adversary=worst"
             " --s=3 --n=3 --c1=1 --d1=1 --d2=4";
  const auto interrupted = run_command(
      "SESP_STOP_AFTER=2 SESP_JOURNAL_FSYNC=0 " + sweep +
      " --journal=" + journal);
  ASSERT_EQ(interrupted.status, 75) << interrupted.output;

  const auto human =
      run_command(kCli + " --journal-inspect=" + journal);
  EXPECT_EQ(human.status, 0) << human.output;
  EXPECT_NE(human.output.find("tool:"), std::string::npos) << human.output;
  EXPECT_NE(human.output.find("sesp_cli"), std::string::npos);
  EXPECT_NE(human.output.find("records:"), std::string::npos);
  EXPECT_NE(human.output.find("torn tail:"), std::string::npos);

  const auto json =
      run_command(kCli + " --journal-inspect=" + journal + " --json");
  EXPECT_EQ(json.status, 0) << json.output;
  EXPECT_NE(json.output.find("\"schema\":\"sesp-journal-inspect/1\""),
            std::string::npos)
      << json.output;
  EXPECT_NE(json.output.find("\"records\":2"), std::string::npos)
      << json.output;

  // Bare --json only modifies --journal-inspect; alone it is an error
  // (metric output stays --json=FILE).
  EXPECT_EQ(run_command(kCli + " --json").status, 2);
  // Inspecting a missing or headerless file is an error, not a crash.
  EXPECT_EQ(
      run_command(kCli + " --journal-inspect=/definitely/missing").status,
      2);
  std::remove(journal.c_str());
}

TEST(CliTest, ShardFlagValidationExitsTwo) {
  // Worker/coordinator flags require --shard-dir and vice versa.
  EXPECT_EQ(run_command(kCli + " --workers=2").status, 2);
  EXPECT_EQ(run_command(kCli + " --worker-id=0").status, 2);
  EXPECT_EQ(run_command(kCli + " --shard-dir=/tmp/nope_sd").status, 2);
  // Sharding and single-file journaling are mutually exclusive, as are the
  // two shard roles.
  EXPECT_EQ(run_command(kCli + " --shard-dir=/tmp/nope_sd --workers=2"
                               " --journal=/tmp/nope.journal").status,
            2);
  EXPECT_EQ(run_command(kCli + " --shard-dir=/tmp/nope_sd --workers=2"
                               " --worker-id=0").status,
            2);
  // sesp_shard itself: no tool command after -- is a usage error.
  EXPECT_EQ(run_command(kShard + " --shard-dir=/tmp/nope_sd").status, 2);
  EXPECT_EQ(run_command(kShard + " --bogus").status, 2);
}

// Profiling must never disturb report bytes (docs/observability.md
// "Profiling"): --profile at any --jobs value, and across a sharded
// 3-worker run, leaves stdout byte-identical to the unprofiled run. The
// profile table itself rides on stderr.
TEST(CliTest, ProfiledRunsKeepStdoutByteIdentical) {
  const std::string sweep =
      kCli + " --substrate=mpm --model=sporadic --adversary=worst"
             " --s=3 --n=3 --c1=1 --d1=1 --d2=4";
  const auto plain = run_command(stdout_only(sweep));
  ASSERT_EQ(plain.status, 0) << plain.output;

  for (const std::string jobs : {" --jobs=1", " --jobs=2", " --jobs=8"}) {
    const auto profiled =
        run_command(stdout_only(sweep + jobs + " --profile"));
    EXPECT_EQ(profiled.status, 0) << profiled.output;
    EXPECT_EQ(profiled.output, plain.output) << "jobs variant:" << jobs;
  }

  // With stderr kept, the per-phase table appears (and only there).
  const auto noisy = run_command(sweep + " --profile");
  EXPECT_EQ(noisy.status, 0) << noisy.output;
  EXPECT_NE(noisy.output.find("profile (phase / count"), std::string::npos)
      << noisy.output;

  const std::string dir = ::testing::TempDir() + "/cli_profile_shard";
  run_command("rm -rf " + dir);
  const auto sharded = run_command(stdout_only(
      "SESP_JOURNAL_FSYNC=0 " + sweep + " --profile --jobs=2 --shard-dir=" +
      dir + " --workers=3"));
  EXPECT_EQ(sharded.status, 0) << sharded.output;
  EXPECT_EQ(sharded.output, plain.output);
  run_command("rm -rf " + dir);
}

// Cross-process trace aggregation end to end (docs/observability.md "Trace
// aggregation"): a sharded run leaves per-participant trace JSONL files in
// the shard directory, and sesp_trace_merge folds them into one Chrome
// trace-event document with a pid lane per participant.
TEST(CliTest, TraceMergeFoldsCoordinatorAndWorkerTraces) {
  const std::string dir = ::testing::TempDir() + "/cli_trace_merge";
  run_command("rm -rf " + dir);
  const auto coord = run_command(stdout_only(
      "SESP_JOURNAL_FSYNC=0 " + kCli +
      " --substrate=mpm --model=sporadic --adversary=worst"
      " --s=3 --n=3 --c1=1 --d1=1 --d2=4 --trace-events=trace.jsonl"
      " --shard-dir=" + dir + " --workers=3"));
  ASSERT_EQ(coord.status, 0) << coord.output;

  const std::string merged = dir + "/merged_trace.json";
  const auto merge =
      run_command(kTraceMerge + " --shard-dir=" + dir + " --out=" + merged);
  ASSERT_EQ(merge.status, 0) << merge.output;
  EXPECT_NE(merge.output.find("merged"), std::string::npos) << merge.output;

  std::ifstream in(merged);
  ASSERT_TRUE(in.good()) << merged;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  const auto doc = obs::parse_json(buf.str(), &error);
  ASSERT_TRUE(doc) << error;
  const obs::JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->array.size(), 0u);

  // One process_name metadata lane per participant, distinct pids, and the
  // coordinator's worker-lifecycle instants all survive the merge.
  int lanes = 0;
  bool saw_coordinator = false, saw_worker = false, saw_spawn = false;
  for (const obs::JsonValue& ev : events->array) {
    const obs::JsonValue* name = ev.find("name");
    if (!name) continue;
    if (name->string == "process_name") {
      ++lanes;
      const std::string label = ev.find("args")->find("name")->string;
      saw_coordinator = saw_coordinator || label == "coordinator";
      saw_worker = saw_worker || label.rfind("worker-", 0) == 0;
    }
    saw_spawn = saw_spawn || name->string == "shard.worker.spawn";
  }
  EXPECT_EQ(lanes, 4) << buf.str().substr(0, 400);
  EXPECT_TRUE(saw_coordinator);
  EXPECT_TRUE(saw_worker);
  EXPECT_TRUE(saw_spawn);

  // Merging an empty directory is an error, not an empty document.
  const std::string empty_dir = ::testing::TempDir() + "/cli_trace_empty";
  run_command("rm -rf " + empty_dir + " && mkdir -p " + empty_dir);
  EXPECT_EQ(run_command(kTraceMerge + " --shard-dir=" + empty_dir).status,
            2);
  run_command("rm -rf " + dir + " " + empty_dir);
}

// The bench-history regression gate end to end (docs/observability.md
// "Bench history & regression gate"): the self-test proves the gate flags
// an injected 2x slowdown, and record/check round-trip through a real
// ledger file — steady history passes, a slow newest entry fails.
TEST(CliTest, PerfGateSelfTestAndRecordCheckRoundTrip) {
  const auto self_test = run_command(kPerf + " self-test");
  EXPECT_EQ(self_test.status, 0) << self_test.output;
  EXPECT_NE(self_test.output.find("[OK]"), std::string::npos)
      << self_test.output;

  const std::string dir = ::testing::TempDir();
  const std::string history = dir + "/cli_perf_history.jsonl";
  std::remove(history.c_str());

  // A missing ledger never gates.
  const auto fresh = run_command(kPerf + " check --history=" + history);
  EXPECT_EQ(fresh.status, 0) << fresh.output;

  const auto results_doc = [&](double rate) {
    return "{\"schema\":\"sesp-bench-results/1\",\"benches\":[{"
           "\"schema\":\"sesp-bench/1\",\"bench\":\"unit\",\"ok\":true,"
           "\"wall_seconds\":1.0,\"steps\":1000,\"steps_per_sec\":" +
           std::to_string(rate) +
           ",\"runs\":1,\"rows\":[],\"notes\":{},\"metrics\":{}}]}";
  };
  const std::string results = dir + "/cli_perf_results.json";
  for (const double rate : {1000.0, 1020.0, 990.0, 1010.0}) {
    write_file(results, results_doc(rate));
    const auto rec = run_command(kPerf + " record --results=" + results +
                                 " --history=" + history +
                                 " --commit=test");
    ASSERT_EQ(rec.status, 0) << rec.output;
  }
  const auto steady = run_command(kPerf + " check --history=" + history);
  EXPECT_EQ(steady.status, 0) << steady.output;
  EXPECT_NE(steady.output.find("[ OK ]"), std::string::npos)
      << steady.output;

  // Inject a 2x slowdown; the gate must exit nonzero and say why.
  write_file(results, results_doc(500.0));
  ASSERT_EQ(run_command(kPerf + " record --results=" + results +
                        " --history=" + history + " --commit=test")
                .status,
            0);
  const auto slow = run_command(kPerf + " check --history=" + history);
  EXPECT_EQ(slow.status, 1) << slow.output;
  EXPECT_NE(slow.output.find("[FAIL]"), std::string::npos) << slow.output;

  // Usage errors keep the distinct exit code.
  EXPECT_EQ(run_command(kPerf + " record").status, 2);
  EXPECT_EQ(run_command(kPerf + " --bogus").status, 2);
  std::remove(results.c_str());
  std::remove(history.c_str());
}

// The sim-core floor inside self-test: the newest full-mode "faults" entry
// must hold >= 5x the seeded first entry (docs/performance.md).
TEST(CliTest, PerfSelfTestHoldsTheSimCoreFloor) {
  const std::string history =
      ::testing::TempDir() + "/cli_perf_floor_history.jsonl";
  const auto faults_line = [](double rate) {
    return "{\"schema\":\"sesp-perf/1\",\"bench\":\"faults\","
           "\"commit\":\"t\",\"recorded_unix_ms\":0,\"quick\":false,"
           "\"ok\":true,\"wall_seconds\":1.0,\"steps\":1000,"
           "\"steps_per_sec\":" +
           std::to_string(rate) + ",\"runs\":1,\"profile\":{}}\n";
  };

  // Newest >= 5x seeded: passes and says so.
  write_file(history, faults_line(1.0e6) + faults_line(5.5e6));
  auto r = run_command(kPerf + " self-test --history=" + history);
  EXPECT_EQ(r.status, 0) << r.output;
  EXPECT_NE(r.output.find("sim-core floor"), std::string::npos) << r.output;

  // Newest below the floor: self-test fails.
  write_file(history, faults_line(1.0e6) + faults_line(4.0e6));
  r = run_command(kPerf + " self-test --history=" + history);
  EXPECT_EQ(r.status, 1) << r.output;
  EXPECT_NE(r.output.find("[FAIL] sim-core floor"), std::string::npos)
      << r.output;

  // A single-entry (or absent) ledger skips the floor rather than failing.
  write_file(history, faults_line(1.0e6));
  r = run_command(kPerf + " self-test --history=" + history);
  EXPECT_EQ(r.status, 0) << r.output;
  EXPECT_NE(r.output.find("[SKIP] sim-core floor"), std::string::npos)
      << r.output;
  std::remove(history.c_str());

  // And the repo ledger contract itself: a quick-flag flip away from all
  // priors reports "no baseline" instead of a bare short-series pass.
  const std::string flip =
      ::testing::TempDir() + "/cli_perf_flip_history.jsonl";
  std::string text;
  for (const double rate : {1.0e6, 1.01e6, 0.99e6, 1.0e6})
    text += faults_line(rate);
  text +=
      "{\"schema\":\"sesp-perf/1\",\"bench\":\"faults\",\"commit\":\"t\","
      "\"recorded_unix_ms\":0,\"quick\":true,\"ok\":true,"
      "\"wall_seconds\":1.0,\"steps\":1000,\"steps_per_sec\":300000.0,"
      "\"runs\":1,\"profile\":{}}\n";
  write_file(flip, text);
  r = run_command(kPerf + " check --history=" + flip);
  EXPECT_EQ(r.status, 0) << r.output;
  EXPECT_NE(r.output.find("no baseline"), std::string::npos) << r.output;
  std::remove(flip.c_str());
}

TEST(CliTest, TraceDumpParsesBack) {
  const std::string trace = ::testing::TempDir() + "/sesp_cli_test_trace.txt";
  const auto r = run_command(
      kCli + " --substrate=mpm --model=sporadic --s=3 --n=3 --c1=1 --d1=1"
             " --d2=4 --adversary=lockstep --dump-trace=" + trace);
  ASSERT_EQ(r.status, 0) << r.output;
  std::FILE* f = std::fopen(trace.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char header[16] = {};
  ASSERT_NE(std::fgets(header, sizeof header, f), nullptr);
  EXPECT_EQ(std::string(header).rfind("sesp-trace", 0), 0u);
  std::fclose(f);
  std::remove(trace.c_str());
}

}  // namespace
}  // namespace sesp
