#include "analysis/session_stats.hpp"

#include <gtest/gtest.h>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "sim/experiment.hpp"

namespace sesp {
namespace {

StepRecord port_step(ProcessId p, PortIndex port, std::int64_t t) {
  StepRecord st;
  st.kind = StepKind::kCompute;
  st.process = p;
  st.port = port;
  st.time = Time(t);
  return st;
}

TEST(SessionStatsTest, EmptyTrace) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  const SessionStats stats = compute_session_stats(tc);
  EXPECT_EQ(stats.sessions, 0);
  EXPECT_TRUE(stats.gaps.empty());
  EXPECT_EQ(stats.most_frequent_closer, kNoPort);
  EXPECT_EQ(stats.port_steps, (std::vector<std::int64_t>{0, 0}));
}

TEST(SessionStatsTest, GapsAndClosers) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  // Session 1 closes at t=3 (port 1), session 2 at t=10 (port 0).
  tc.append(port_step(0, 0, 1));
  tc.append(port_step(1, 1, 3));
  tc.append(port_step(1, 1, 6));
  tc.append(port_step(0, 0, 10));
  const SessionStats stats = compute_session_stats(tc);
  ASSERT_EQ(stats.sessions, 2);
  EXPECT_EQ(stats.close_times[0], Time(3));
  EXPECT_EQ(stats.close_times[1], Time(10));
  EXPECT_EQ(stats.gaps[0], Duration(3));
  EXPECT_EQ(stats.gaps[1], Duration(7));
  EXPECT_EQ(stats.min_gap, Duration(3));
  EXPECT_EQ(stats.max_gap, Duration(7));
  EXPECT_NEAR(stats.mean_gap, 5.0, 1e-12);
  EXPECT_EQ(stats.closers[0], 1);
  EXPECT_EQ(stats.closers[1], 0);
  EXPECT_EQ(stats.port_steps, (std::vector<std::int64_t>{2, 2}));
}

TEST(SessionStatsTest, SlowestProcessClosesSessions) {
  // Under the periodic model with one slow port, that port's steps pace the
  // sessions — the stats should identify it as the dominant closer.
  const ProblemSpec spec{6, 3, 2};
  std::vector<Duration> periods{Duration(5), Duration(1), Duration(1)};
  const auto constraints = TimingConstraints::periodic(periods, Duration(2));
  PeriodicMpmFactory factory;
  FixedPeriodScheduler sched(periods);
  FixedDelay delay{Duration(2)};
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, sched, delay);
  ASSERT_TRUE(out.run.completed);

  const SessionStats stats = compute_session_stats(out.run.trace);
  EXPECT_GE(stats.sessions, spec.s);
  EXPECT_EQ(stats.most_frequent_closer, 0);  // the slow port
  // Gap extremes track the slow period.
  EXPECT_GE(stats.max_gap, Duration(5));
  // The fast ports took several times more port steps.
  EXPECT_GT(stats.port_steps[1], stats.port_steps[0]);
  const std::string text = stats.to_string();
  EXPECT_NE(text.find("closed mostly by port 0"), std::string::npos);
}

TEST(SessionStatsTest, SumOfGapsIsLastCloseTime) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  for (std::int64_t k = 0; k < 5; ++k) {
    tc.append(port_step(0, 0, 2 * k + 1));
    tc.append(port_step(1, 1, 2 * k + 2));
  }
  const SessionStats stats = compute_session_stats(tc);
  ASSERT_EQ(stats.sessions, 5);
  Ratio sum(0);
  for (const Duration& g : stats.gaps) sum += g;
  EXPECT_EQ(sum, stats.close_times.back());
}

}  // namespace
}  // namespace sesp
