#include "smm/tree_network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <tuple>
#include <vector>

#include "analysis/bounds.hpp"

namespace sesp {
namespace {

TEST(TreeNetworkTest, SingleLeafNeedsNoTree) {
  SharedMemory mem(2);
  TreeNetwork tree(1, 2, mem, 1);
  EXPECT_EQ(tree.num_relays(), 0);
  EXPECT_EQ(tree.depth(), 0);
  EXPECT_EQ(tree.uplink(0), kNoVar);
}

TEST(TreeNetworkTest, TwoLeavesOneRelay) {
  SharedMemory mem(3);
  TreeNetwork tree(2, 3, mem, 2);
  EXPECT_EQ(tree.num_relays(), 1);
  EXPECT_EQ(tree.depth(), 1);
  // Both leaves share the relay's single family variable.
  EXPECT_EQ(tree.uplink(0), tree.uplink(1));
  EXPECT_EQ(tree.relays()[0].rotation.size(), 1u);
}

TEST(TreeNetworkTest, BinaryCaseUsesEdgeVariables) {
  SharedMemory mem(2);
  TreeNetwork tree(2, 2, mem, 2);
  EXPECT_EQ(tree.num_relays(), 1);
  // b == 2: one variable per child edge.
  EXPECT_NE(tree.uplink(0), tree.uplink(1));
  EXPECT_EQ(tree.relays()[0].rotation.size(), 2u);
}

// Structural invariants across a parameter sweep of (n, b).
class TreeNetworkSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreeNetworkSweep, StructuralInvariants) {
  const auto [n, b] = GetParam();
  SharedMemory mem(b);
  TreeNetwork tree(n, b, mem, n);

  // Every leaf has an uplink (n >= 2).
  for (ProcessId p = 0; p < n; ++p) {
    const VarId v = tree.uplink(p);
    ASSERT_NE(v, kNoVar);
    // The leaf is a registered accessor of its uplink.
    const auto& acc = mem.accessors(v);
    EXPECT_NE(std::find(acc.begin(), acc.end(), p), acc.end());
    // The b-bound holds (SharedMemory enforces it on creation; re-check).
    EXPECT_LE(static_cast<int>(acc.size()), b);
  }

  // Relay pids are n..n+R-1 and each relay's rotation is non-empty; each
  // relay is an accessor of every variable in its rotation.
  std::set<ProcessId> pids;
  for (const RelaySpec& r : tree.relays()) {
    EXPECT_GE(r.pid, n);
    EXPECT_TRUE(pids.insert(r.pid).second);
    ASSERT_FALSE(r.rotation.empty());
    for (const VarId v : r.rotation) {
      const auto& acc = mem.accessors(v);
      EXPECT_NE(std::find(acc.begin(), acc.end(), r.pid), acc.end());
    }
  }

  // Connectivity: union-find over shared variables joins all leaves and
  // relays into one component.
  const std::int32_t total = n + tree.num_relays();
  std::vector<int> parent(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) parent[static_cast<std::size_t>(i)] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x)
      x = parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
    return x;
  };
  for (VarId v = 0; v < mem.num_vars(); ++v) {
    const auto& acc = mem.accessors(v);
    for (std::size_t i = 1; i < acc.size(); ++i)
      parent[static_cast<std::size_t>(find(acc[i]))] = find(acc[0]);
  }
  const int root = find(0);
  for (int p = 1; p < total; ++p) EXPECT_EQ(find(p), root) << "process " << p;

  // Depth is logarithmic: depth <= ceil(log_a n) + 1 for arity a =
  // max(2, b-1).
  const int arity = std::max(2, b - 1);
  std::int64_t log_bound = 1;
  std::int64_t power = 1;
  while (power < n) {
    power *= arity;
    ++log_bound;
  }
  EXPECT_LE(tree.depth(), log_bound + 1);
  EXPECT_GE(tree.latency_steps_bound(), 2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TreeNetworkSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 8, 16, 17, 33, 64, 100),
                       ::testing::Values(2, 3, 4, 6)));

}  // namespace
}  // namespace sesp
