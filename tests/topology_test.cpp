#include "mpm/topology.hpp"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

namespace sesp {
namespace {

TEST(TopologyTest, CompleteGraph) {
  const Topology t = Topology::complete(5);
  EXPECT_EQ(t.num_nodes(), 5);
  EXPECT_EQ(t.num_edges(), 10);
  EXPECT_EQ(t.diameter(), 1);
  EXPECT_TRUE(t.has_edge(0, 4));
  EXPECT_FALSE(t.has_edge(2, 2));
}

TEST(TopologyTest, Ring) {
  const Topology t = Topology::ring(8);
  EXPECT_EQ(t.num_edges(), 8);
  EXPECT_EQ(t.diameter(), 4);
  EXPECT_EQ(t.distance(0, 3), 3);
  EXPECT_EQ(t.distance(0, 5), 3);  // the short way around
  for (ProcessId p = 0; p < 8; ++p) EXPECT_EQ(t.neighbors(p).size(), 2u);
}

TEST(TopologyTest, RingOfTwoHasSingleEdge) {
  const Topology t = Topology::ring(2);
  EXPECT_EQ(t.num_edges(), 1);
  EXPECT_EQ(t.diameter(), 1);
}

TEST(TopologyTest, Line) {
  const Topology t = Topology::line(6);
  EXPECT_EQ(t.num_edges(), 5);
  EXPECT_EQ(t.diameter(), 5);
  EXPECT_EQ(t.distance(0, 5), 5);
}

TEST(TopologyTest, Star) {
  const Topology t = Topology::star(7);
  EXPECT_EQ(t.num_edges(), 6);
  EXPECT_EQ(t.diameter(), 2);
  EXPECT_EQ(t.neighbors(0).size(), 6u);
  EXPECT_EQ(t.neighbors(3).size(), 1u);
}

TEST(TopologyTest, BalancedTree) {
  const Topology t = Topology::tree(7, 2);
  EXPECT_EQ(t.num_edges(), 6);
  // Node 0 root, children 1,2; 1's children 3,4; 2's children 5,6.
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_TRUE(t.has_edge(1, 3));
  EXPECT_TRUE(t.has_edge(2, 6));
  EXPECT_EQ(t.diameter(), 4);  // leaf to leaf across the root
}

TEST(TopologyTest, Grid) {
  const Topology t = Topology::grid(3, 4);
  EXPECT_EQ(t.num_nodes(), 12);
  EXPECT_EQ(t.num_edges(), 3 * 3 + 2 * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(t.diameter(), 2 + 3);           // manhattan across corners
}

TEST(TopologyTest, SingleNode) {
  const Topology t = Topology::line(1);
  EXPECT_EQ(t.num_edges(), 0);
  EXPECT_EQ(t.diameter(), 0);
  EXPECT_TRUE(t.connected());
}

class TopologySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TopologySweep, AllFamiliesConnectedAndSymmetric) {
  const auto [n, which] = GetParam();
  Topology t = Topology::complete(n);
  switch (which) {
    case 0: t = Topology::complete(n); break;
    case 1: t = Topology::ring(n); break;
    case 2: t = Topology::line(n); break;
    case 3: t = Topology::star(n); break;
    case 4: t = Topology::tree(n, 3); break;
  }
  EXPECT_TRUE(t.connected()) << t.name();
  // Symmetry: b in adj(a) iff a in adj(b); no self loops or duplicates.
  for (ProcessId a = 0; a < n; ++a) {
    std::set<ProcessId> seen;
    for (const ProcessId b : t.neighbors(a)) {
      EXPECT_NE(a, b);
      EXPECT_TRUE(seen.insert(b).second) << "duplicate edge " << a << "-" << b;
      EXPECT_TRUE(t.has_edge(b, a));
    }
  }
  // Diameter sanity: 0 iff n == 1, and <= n-1 always.
  if (n == 1) EXPECT_EQ(t.diameter(), 0);
  else EXPECT_GE(t.diameter(), 1);
  EXPECT_LE(t.diameter(), n - 1 + (n == 1 ? 1 : 0));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TopologySweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 9, 16),
                       ::testing::Values(0, 1, 2, 3, 4)));

}  // namespace
}  // namespace sesp
