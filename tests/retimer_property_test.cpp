// Property suites for the lower-bound constructions, swept over instance
// grids: the dichotomy (sub-bound cheater => certificate, at-or-above-bound
// algorithm => no certificate), permutation/structure invariants of the
// reordered computations, and cross-validation of the retimer's
// dependency handling against the global CausalOrder.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "adversary/semisync_retimer.hpp"
#include "adversary/sporadic_retimer.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/smm/broken_algs.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "algorithms/mpm/broken_algs.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "analysis/causality.hpp"
#include "sim/experiment.hpp"
#include "support/test_support.hpp"

namespace sesp {
namespace {

using test_support::run_smm_lockstep;

// --- Semi-synchronous retimer dichotomy --------------------------------------

class SemiSyncDichotomy
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SemiSyncDichotomy, CheaterCertifiedIffBelowBound) {
  const auto [s, ratio, per_session] = GetParam();
  const ProblemSpec spec{s, 8, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(ratio));
  const std::int64_t B = semisync_safe_B(spec, Duration(1), Duration(ratio));
  if (B < 1) GTEST_SKIP() << "trivial bound";

  TooFewStepsSmmFactory algorithm(per_session);
  const SemiSyncRetimingResult result =
      attack_semisync_smm(spec, constraints, algorithm);
  ASSERT_TRUE(result.constructed) << result.failure;

  // Proof obligations hold regardless of the target.
  EXPECT_TRUE(result.order_consistent);
  EXPECT_TRUE(result.replay_ok);
  EXPECT_TRUE(result.split_properties_ok);
  EXPECT_TRUE(result.admissibility.admissible)
      << result.admissibility.violation;
  EXPECT_LE(result.sessions, result.chunks);

  // Dichotomy: the step counter runs per_session*(s-1)+1 lockstep rounds; it
  // is certified iff that is at most B*(s-1) rounds (then chunks <= s-1).
  const std::int64_t rounds = per_session * (s - 1) + 1;
  const bool below_bound = rounds <= B * (s - 1);
  EXPECT_EQ(result.certificate, below_bound)
      << "rounds=" << rounds << " B=" << B << " " << result.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SemiSyncDichotomy,
    ::testing::Combine(::testing::Values(2, 3, 5, 8),
                       ::testing::Values(9, 13, 25),
                       ::testing::Values(1, 2, 3, 5, 13)));

// --- Structural invariants of the reordering --------------------------------

TEST(SemiSyncRetimerProperties, ReorderedIsAPermutationWithSameMultiset) {
  const ProblemSpec spec{4, 8, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(12));
  TooFewStepsSmmFactory cheater(2);

  const SmmOutcome base = run_smm_lockstep(spec, constraints, cheater);
  ASSERT_TRUE(base.run.completed);
  const SemiSyncRetimingResult result =
      semisync_retime(base.run.trace, spec, constraints);
  ASSERT_TRUE(result.constructed) << result.failure;

  ASSERT_EQ(result.reordered.size(), base.run.trace.steps().size());
  // Per-process step subsequences are identical (variables, ports, digests).
  std::map<ProcessId, std::vector<std::pair<VarId, std::uint64_t>>> orig, re;
  for (const StepRecord& st : base.run.trace.steps())
    orig[st.process].push_back({st.var, st.value_after_digest});
  for (const StepRecord& st : result.reordered)
    re[st.process].push_back({st.var, st.value_after_digest});
  EXPECT_EQ(orig, re);
  // Times are nondecreasing in the reordered sequence.
  for (std::size_t i = 1; i < result.reordered.size(); ++i)
    EXPECT_LE(result.reordered[i - 1].time, result.reordered[i].time);
}

TEST(SemiSyncRetimerProperties, ReorderRespectsGlobalCausality) {
  // Cross-validation: the retimer's chunk-local dependency handling must
  // agree with the global CausalOrder built independently — every
  // happens-before pair keeps its relative order after the reorder.
  const ProblemSpec spec{3, 4, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(9));
  SemiSyncSmmFactory algorithm(SmmSemiSyncStrategy::kCommunicate);

  const SmmOutcome base = run_smm_lockstep(spec, constraints, algorithm);
  ASSERT_TRUE(base.run.completed);
  const SemiSyncRetimingResult result =
      semisync_retime(base.run.trace, spec, constraints);
  if (!result.constructed) GTEST_SKIP() << result.failure;
  ASSERT_TRUE(result.order_consistent);

  // Map original step -> reordered position via (process, per-process
  // occurrence index), which the retimer preserves.
  std::map<ProcessId, std::int64_t> occurrence;
  std::map<std::pair<ProcessId, std::int64_t>, std::size_t> new_pos;
  for (std::size_t i = 0; i < result.reordered.size(); ++i) {
    const ProcessId p = result.reordered[i].process;
    new_pos[{p, occurrence[p]++}] = i;
  }
  occurrence.clear();
  std::vector<std::size_t> position(base.run.trace.steps().size());
  for (std::size_t i = 0; i < base.run.trace.steps().size(); ++i) {
    const ProcessId p = base.run.trace.steps()[i].process;
    position[i] = new_pos.at({p, occurrence[p]++});
  }

  const CausalOrder order(base.run.trace);
  for (std::size_t i = 0; i < order.num_steps(); ++i)
    for (const std::size_t pred : order.predecessors(i))
      EXPECT_LT(position[pred], position[i])
          << "dependency " << pred << " -> " << i << " inverted";
}

// --- Sporadic retimer dichotomy ----------------------------------------------

class SporadicDichotomy
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SporadicDichotomy, CheaterCertifiedIffBelowBound) {
  const auto [s, per_session] = GetParam();
  const ProblemSpec spec{s, 3, 2};
  const Duration c1(1), d1(2), d2(42);
  const auto constraints = TimingConstraints::sporadic(c1, d1, d2);
  const std::int64_t B = ((d2 - d1) / (c1 * 4)).floor();  // 10
  ASSERT_GE(B, 1);

  TooFewStepsMpmFactory algorithm(per_session);
  const SporadicRetimingResult result =
      attack_sporadic_mpm(spec, constraints, algorithm);
  ASSERT_TRUE(result.constructed) << result.failure;
  EXPECT_TRUE(result.order_consistent);
  EXPECT_TRUE(result.receives_preserved);
  EXPECT_TRUE(result.admissibility.admissible)
      << result.admissibility.violation;
  EXPECT_LE(result.sessions, result.chunks);

  const std::int64_t rounds = per_session * (s - 1) + 1;
  const bool below_bound = rounds <= B * (s - 1);
  EXPECT_EQ(result.certificate, below_bound)
      << "rounds=" << rounds << " B=" << B << " " << result.to_string();
}

INSTANTIATE_TEST_SUITE_P(Grid, SporadicDichotomy,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8),
                                            ::testing::Values(3, 8, 9, 12,
                                                              20)));

TEST(SporadicRetimerProperties, ReorderKeepsMessageLifecycles) {
  const ProblemSpec spec{4, 3, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(2), Duration(42));
  SporadicMpmFactory algorithm;
  const SporadicRetimingResult result =
      attack_sporadic_mpm(spec, constraints, algorithm);
  ASSERT_TRUE(result.constructed) << result.failure;
  ASSERT_TRUE(result.reordered_trace.has_value());

  const TimedComputation& tc = *result.reordered_trace;
  EXPECT_FALSE(tc.structural_error().has_value())
      << *tc.structural_error();
  for (const MessageRecord& m : tc.messages()) {
    if (!m.delivered()) continue;
    // Send before deliver before receive, in the new order.
    EXPECT_LT(m.send_step, m.deliver_step);
    if (m.received()) {
      EXPECT_LT(m.deliver_step, m.receive_step);
    }
    // Delay within the sporadic window.
    const Duration delay =
        tc.steps()[m.deliver_step].time - tc.steps()[m.send_step].time;
    EXPECT_GE(delay, constraints.d1);
    EXPECT_LE(delay, constraints.d2);
  }
}

}  // namespace
}  // namespace sesp
