// End-to-end flows across module boundaries: run -> verify -> serialize ->
// parse -> replay -> analyze for each substrate, and the full adversary ->
// certificate -> third-party-revalidation pipeline. These are the flows a
// downstream user strings together; each assertion crosses at least two
// modules.

#include <gtest/gtest.h>

#include "adversary/certificate.hpp"
#include "adversary/contamination.hpp"
#include "adversary/delay_strategies.hpp"
#include "adversary/semisync_retimer.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/p2p/knowledge_algs.hpp"
#include "algorithms/smm/broken_algs.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "analysis/causality.hpp"
#include "analysis/session_stats.hpp"
#include "analysis/timeline.hpp"
#include "model/trace_io.hpp"
#include "p2p/p2p_simulator.hpp"
#include "sim/experiment.hpp"
#include "sim/replay.hpp"

namespace sesp {
namespace {

TEST(IntegrationTest, MpmFullPipeline) {
  // 1. Run A(sp) under a mixed adversary.
  const ProblemSpec spec{4, 3, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(5));
  SporadicMpmFactory factory;
  BurstyScheduler sched(Duration(1), 1, 6, 7, /*seed=*/42);
  UniformRandomDelay delay(Duration(1), Duration(5), /*seed=*/43);
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, sched, delay);
  ASSERT_TRUE(out.run.completed);
  ASSERT_TRUE(out.verdict.solves);

  // 2. Serialize and parse.
  std::string error;
  const auto parsed = trace_from_text(to_text(out.run.trace), &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  // 3. The parsed trace verifies identically.
  const Verdict v2 = verify(*parsed, spec, constraints);
  EXPECT_EQ(v2.sessions, out.verdict.sessions);
  EXPECT_EQ(v2.admissible, out.verdict.admissible);
  EXPECT_EQ(*v2.termination_time, *out.verdict.termination_time);

  // 4. It replays against the same algorithm.
  const ReplayReport replay = replay_mpm(*parsed, spec, constraints, factory);
  EXPECT_TRUE(replay.match) << replay.detail;

  // 5. Analyses run on it.
  const SessionStats stats = compute_session_stats(*parsed);
  EXPECT_EQ(stats.sessions, v2.sessions);
  const CausalOrder order(*parsed);
  EXPECT_EQ(order.num_steps(), parsed->steps().size());
  EXPECT_FALSE(render_timeline(*parsed).empty());
}

TEST(IntegrationTest, SmmAdversaryToCertifiedCounterexample) {
  // Broken algorithm -> retimer -> certificate -> serialize -> parse ->
  // independent re-validation, all in one flow.
  const ProblemSpec spec{5, 8, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(9));
  TooFewStepsSmmFactory broken(2);

  const SemiSyncRetimingResult attack =
      attack_semisync_smm(spec, constraints, broken);
  ASSERT_TRUE(attack.certificate) << attack.to_string();

  const ViolationCertificate cert =
      make_certificate(attack, broken.name(), spec, constraints);
  std::string error;
  const auto parsed = certificate_from_text(to_text(cert), &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  const CertificateCheck check = check_certificate(*parsed);
  EXPECT_TRUE(check.valid) << check.detail;
  EXPECT_LT(check.sessions, spec.s);

  // The certified computation's session stats agree with the check.
  const SessionStats stats = compute_session_stats(parsed->computation);
  EXPECT_EQ(stats.sessions, check.sessions);
}

TEST(IntegrationTest, SmmRunSurvivesSerializationAndReplay) {
  const ProblemSpec spec{3, 6, 3};
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  std::vector<Duration> periods(static_cast<std::size_t>(total), Duration(1));
  periods[2] = Duration(7, 2);
  const auto constraints = TimingConstraints::periodic(periods);
  PeriodicSmmFactory factory;
  FixedPeriodScheduler sched(periods);
  const SmmOutcome out = run_smm_once(spec, constraints, factory, sched);
  ASSERT_TRUE(out.verdict.solves);

  std::string error;
  const auto parsed = trace_from_text(to_text(out.run.trace), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const ReplayReport replay = replay_smm(*parsed, spec, constraints, factory);
  EXPECT_TRUE(replay.match) << replay.detail;
}

TEST(IntegrationTest, P2pRunVerifiesAndAnalyzes) {
  const ProblemSpec spec{3, 6, 2};
  const Topology topo = Topology::grid(2, 3);
  const auto constraints = TimingConstraints::asynchronous(2, 4);
  P2pRoundsFactory factory;
  FixedPeriodScheduler sched(spec.n, Duration(2));
  FixedDelay delay{Duration(4)};
  P2pSimulator sim(spec, constraints, topo, factory, sched, delay);
  const P2pRunResult run = sim.run();
  ASSERT_TRUE(run.completed);

  const Verdict verdict = verify(run.trace, spec, constraints);
  EXPECT_TRUE(verdict.solves);

  // Causality: some step of p0 influences every other process (gossip works
  // across the grid).
  const CausalOrder order(run.trace);
  const auto first_p0 = run.trace.compute_indices(0);
  ASSERT_FALSE(first_p0.empty());
  for (ProcessId q = 1; q < spec.n; ++q)
    EXPECT_TRUE(order.earliest_influence(first_p0.front(), q).has_value())
        << "no causal path from p0's first step to p" << q;

  // Trace round-trips.
  std::string error;
  const auto parsed = trace_from_text(to_text(run.trace), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(verify(*parsed, spec, constraints).sessions, verdict.sessions);
}

TEST(IntegrationTest, ContaminationAgreesWithCausality) {
  // The contamination taint of Theorem 4.3 over-approximates causal
  // influence from the slowed process: every port reachable from one of
  // p0's steps in the causal order must be tainted (tainted ports are
  // reported via untainted_ports' complement).
  const ProblemSpec spec{3, 6, 3};
  const auto base = TimingConstraints::periodic(std::vector<Duration>(
      static_cast<std::size_t>(smm_total_processes(spec.n, spec.b)),
      Duration(1)));
  PeriodicSmmFactory factory;
  const ContaminationReport report =
      run_contamination_experiment(spec, base, factory, Duration(1));
  // A(p) communicates, so influence reaches everyone: no untainted ports.
  EXPECT_EQ(report.untainted_ports, 0) << report.to_string();
  EXPECT_TRUE(report.within_bound) << report.to_string();
}

}  // namespace
}  // namespace sesp
