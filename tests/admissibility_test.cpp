#include "timing/admissibility.hpp"

#include <gtest/gtest.h>

namespace sesp {
namespace {

StepRecord step(ProcessId p, const Time& t) {
  StepRecord st;
  st.kind = StepKind::kCompute;
  st.process = p;
  st.time = t;
  return st;
}

TimedComputation two_proc_trace(const std::vector<std::pair<ProcessId, Time>>&
                                    entries,
                                Substrate sub = Substrate::kSharedMemory) {
  TimedComputation tc(sub, 2, 2);
  for (const auto& [p, t] : entries) tc.append(step(p, t));
  return tc;
}

TEST(AdmissibilityTest, SynchronousExactGapsAccepted) {
  const auto tc = two_proc_trace(
      {{0, Time(2)}, {1, Time(2)}, {0, Time(4)}, {1, Time(4)}});
  EXPECT_TRUE(check_admissible(tc, TimingConstraints::synchronous(2)));
}

TEST(AdmissibilityTest, SynchronousRejectsFirstStepOffGrid) {
  // The first step must also be exactly c2 after time 0.
  const auto tc = two_proc_trace({{0, Time(1)}, {1, Time(2)}});
  const auto rep = check_admissible(tc, TimingConstraints::synchronous(2));
  EXPECT_FALSE(rep.admissible);
  EXPECT_NE(rep.violation.find("synchronous"), std::string::npos);
}

TEST(AdmissibilityTest, SynchronousRejectsJitter) {
  const auto tc = two_proc_trace({{0, Time(2)}, {0, Time(5)}});
  EXPECT_FALSE(check_admissible(tc, TimingConstraints::synchronous(2)));
}

TEST(AdmissibilityTest, PeriodicPerProcessPeriods) {
  auto constraints = TimingConstraints::periodic({Duration(2), Duration(3)});
  const auto ok = two_proc_trace(
      {{0, Time(2)}, {1, Time(3)}, {0, Time(4)}, {1, Time(6)}});
  EXPECT_TRUE(check_admissible(ok, constraints));
  const auto bad = two_proc_trace({{0, Time(2)}, {1, Time(2)}});
  EXPECT_FALSE(check_admissible(bad, constraints));
}

TEST(AdmissibilityTest, PeriodicNeedsPeriodPerProcess) {
  auto constraints = TimingConstraints::periodic({Duration(2)});
  const auto tc = two_proc_trace({{0, Time(2)}, {1, Time(2)}});
  const auto rep = check_admissible(tc, constraints);
  EXPECT_FALSE(rep.admissible);
  EXPECT_NE(rep.violation.find("fewer periods"), std::string::npos);
}

TEST(AdmissibilityTest, SemiSynchronousWindow) {
  auto constraints = TimingConstraints::semi_synchronous(1, 3);
  EXPECT_TRUE(check_admissible(
      two_proc_trace({{0, Time(1)}, {1, Time(3)}, {0, Time(4)}}),
      constraints));
  // Gap below c1.
  EXPECT_FALSE(check_admissible(
      two_proc_trace({{0, Time(1)}, {0, Time(3, 2)}}), constraints));
  // Gap above c2.
  EXPECT_FALSE(check_admissible(
      two_proc_trace({{0, Time(1)}, {0, Time(5)}}), constraints));
}

TEST(AdmissibilityTest, SporadicOnlyLowerBound) {
  auto constraints = TimingConstraints::sporadic(2, 0, 10);
  EXPECT_TRUE(check_admissible(
      two_proc_trace({{0, Time(2)}, {0, Time(1000)}, {1, Time(1000)}}),
      constraints));
  EXPECT_FALSE(check_admissible(
      two_proc_trace({{0, Time(1)}}), constraints));
}

TEST(AdmissibilityTest, AsynchronousSmmUnconstrained) {
  auto constraints = TimingConstraints::asynchronous();
  EXPECT_TRUE(check_admissible(
      two_proc_trace({{0, Time(1, 100)}, {0, Time(1'000'000)}}),
      constraints));
}

TEST(AdmissibilityTest, AsynchronousMpmBoundedAbove) {
  auto constraints = TimingConstraints::asynchronous(/*c2=*/2, /*d2=*/5);
  EXPECT_TRUE(check_admissible(
      two_proc_trace({{0, Time(1)}, {1, Time(2)}},
                     Substrate::kMessagePassing),
      constraints));
  EXPECT_FALSE(check_admissible(
      two_proc_trace({{0, Time(3)}}, Substrate::kMessagePassing),
      constraints));
}

TimedComputation trace_with_message(const Duration& delay) {
  TimedComputation tc(Substrate::kMessagePassing, 2, 2);
  tc.append(step(0, Time(1)));
  StepRecord d;
  d.kind = StepKind::kDeliver;
  d.process = kNetworkProcess;
  d.time = Time(1) + delay;
  d.delivered = 0;
  tc.append(d);
  MessageRecord m;
  m.sender = 0;
  m.recipient = 1;
  m.send_step = 0;
  m.deliver_step = 1;
  tc.append_message(m);
  return tc;
}

TEST(AdmissibilityTest, SporadicDelayWindow) {
  auto constraints = TimingConstraints::sporadic(/*c1=*/1, /*d1=*/2, /*d2=*/4);
  EXPECT_TRUE(check_admissible(trace_with_message(Duration(3)), constraints));
  EXPECT_TRUE(check_admissible(trace_with_message(Duration(2)), constraints));
  EXPECT_TRUE(check_admissible(trace_with_message(Duration(4)), constraints));
  EXPECT_FALSE(check_admissible(trace_with_message(Duration(1)), constraints));
  EXPECT_FALSE(check_admissible(trace_with_message(Duration(5)), constraints));
}

TEST(AdmissibilityTest, SynchronousDelayMustBeExact) {
  auto constraints = TimingConstraints::synchronous(/*c2=*/1, /*d2=*/4);
  EXPECT_TRUE(check_admissible(trace_with_message(Duration(4)), constraints));
  EXPECT_FALSE(check_admissible(trace_with_message(Duration(3)), constraints));
}

TEST(AdmissibilityTest, UndeliveredMessagesAllowed) {
  TimedComputation tc(Substrate::kMessagePassing, 2, 2);
  tc.append(step(0, Time(1)));
  MessageRecord m;
  m.sender = 0;
  m.recipient = 1;
  m.send_step = 0;
  tc.append_message(m);
  EXPECT_TRUE(
      check_admissible(tc, TimingConstraints::sporadic(1, 0, 100)));
}

TEST(AdmissibilityTest, InvalidConstraintsRejected) {
  TimingConstraints bad = TimingConstraints::semi_synchronous(1, 3);
  bad.c1 = 0;
  const auto tc = two_proc_trace({{0, Time(1)}});
  const auto rep = check_admissible(tc, bad);
  EXPECT_FALSE(rep.admissible);
  EXPECT_NE(rep.violation.find("invalid constraints"), std::string::npos);
}

TEST(AdmissibilityTest, StructuralErrorsSurface) {
  TimedComputation tc(Substrate::kSharedMemory, 2, 2);
  auto s0 = step(0, Time(2));
  s0.idle_after = true;
  tc.append(s0);
  auto s1 = step(0, Time(4));
  s1.idle_after = false;
  tc.append(s1);
  const auto rep = check_admissible(tc, TimingConstraints::synchronous(2));
  EXPECT_FALSE(rep.admissible);
  EXPECT_NE(rep.violation.find("structural"), std::string::npos);
}

}  // namespace
}  // namespace sesp
