#include "util/ratio.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

namespace sesp {
namespace {

TEST(RatioTest, DefaultIsZero) {
  Ratio r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(RatioTest, NormalizesToLowestTerms) {
  EXPECT_EQ(Ratio(6, 4), Ratio(3, 2));
  EXPECT_EQ(Ratio(-6, 4), Ratio(-3, 2));
  EXPECT_EQ(Ratio(6, -4), Ratio(-3, 2));
  EXPECT_EQ(Ratio(-6, -4), Ratio(3, 2));
  EXPECT_EQ(Ratio(0, 7), Ratio(0));
}

TEST(RatioTest, DenominatorAlwaysPositive) {
  EXPECT_GT(Ratio(1, -3).den(), 0);
  EXPECT_EQ(Ratio(1, -3).num(), -1);
}

TEST(RatioTest, Arithmetic) {
  EXPECT_EQ(Ratio(1, 2) + Ratio(1, 3), Ratio(5, 6));
  EXPECT_EQ(Ratio(1, 2) - Ratio(1, 3), Ratio(1, 6));
  EXPECT_EQ(Ratio(2, 3) * Ratio(3, 4), Ratio(1, 2));
  EXPECT_EQ(Ratio(2, 3) / Ratio(4, 3), Ratio(1, 2));
  EXPECT_EQ(-Ratio(2, 3), Ratio(-2, 3));
}

TEST(RatioTest, IntegerInterop) {
  Ratio r = 5;
  EXPECT_TRUE(r.is_integer());
  EXPECT_EQ(r + 2, Ratio(7));
  EXPECT_EQ(r * Ratio(1, 5), Ratio(1));
}

TEST(RatioTest, Comparisons) {
  EXPECT_LT(Ratio(1, 3), Ratio(1, 2));
  EXPECT_GT(Ratio(-1, 3), Ratio(-1, 2));
  EXPECT_LE(Ratio(2, 4), Ratio(1, 2));
  EXPECT_EQ(Ratio(2, 4) <=> Ratio(1, 2), std::strong_ordering::equal);
  EXPECT_LT(Ratio(-1), Ratio(0));
}

TEST(RatioTest, FloorCeil) {
  EXPECT_EQ(Ratio(7, 2).floor(), 3);
  EXPECT_EQ(Ratio(7, 2).ceil(), 4);
  EXPECT_EQ(Ratio(-7, 2).floor(), -4);
  EXPECT_EQ(Ratio(-7, 2).ceil(), -3);
  EXPECT_EQ(Ratio(6).floor(), 6);
  EXPECT_EQ(Ratio(6).ceil(), 6);
  EXPECT_EQ(Ratio(0).floor(), 0);
}

TEST(RatioTest, ToString) {
  EXPECT_EQ(Ratio(3).to_string(), "3");
  EXPECT_EQ(Ratio(7, 2).to_string(), "7/2");
  EXPECT_EQ(Ratio(-1, 3).to_string(), "-1/3");
}

TEST(RatioTest, MinMaxAbs) {
  EXPECT_EQ(min(Ratio(1, 2), Ratio(1, 3)), Ratio(1, 3));
  EXPECT_EQ(max(Ratio(1, 2), Ratio(1, 3)), Ratio(1, 2));
  EXPECT_EQ(abs(Ratio(-5, 7)), Ratio(5, 7));
  EXPECT_EQ(abs(Ratio(5, 7)), Ratio(5, 7));
}

TEST(RatioTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Ratio(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Ratio(-3, 4).to_double(), -0.75);
}

TEST(RatioTest, LargeIntermediatesDoNotOverflow) {
  // Sum whose cross-multiplication exceeds 64 bits before reduction.
  const Ratio a(1, 3'000'000'019LL);
  const Ratio b(1, 3'000'000'019LL);
  EXPECT_EQ(a + b, Ratio(2, 3'000'000'019LL));
  const Ratio c(1'000'000'007LL, 3);
  EXPECT_EQ(c * Ratio(3, 1'000'000'007LL), Ratio(1));
}

// Field-axiom spot checks over a grid of rationals.
class RatioAxioms
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RatioAxioms, RingLaws) {
  const auto [i, j, k] = GetParam();
  const Ratio a(i, 7), b(j, 5), c(k, 3);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, Ratio(0));
  if (!b.is_zero()) {
    EXPECT_EQ((a / b) * b, a);
  }
}

TEST_P(RatioAxioms, OrderCompatibleWithArithmetic) {
  const auto [i, j, k] = GetParam();
  const Ratio a(i, 7), b(j, 5), c(k, 3);
  if (a < b) {
    EXPECT_LT(a + c, b + c);
    if (c.is_positive()) {
      EXPECT_LT(a * c, b * c);
    }
    if (c.is_negative()) {
      EXPECT_GT(a * c, b * c);
    }
  }
}

TEST_P(RatioAxioms, FloorCeilBracket) {
  const auto [i, j, k] = GetParam();
  (void)j;
  (void)k;
  const Ratio a(i, 7);
  EXPECT_LE(Ratio(a.floor()), a);
  EXPECT_LT(a - Ratio(a.floor()), Ratio(1));
  EXPECT_GE(Ratio(a.ceil()), a);
  EXPECT_LT(Ratio(a.ceil()) - a, Ratio(1));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RatioAxioms,
    ::testing::Combine(::testing::Values(-9, -2, 0, 1, 5, 14),
                       ::testing::Values(-7, -1, 0, 2, 10),
                       ::testing::Values(-3, 0, 1, 4)));

// Misuse is a hard failure, never silent wraparound: model time must stay
// exact or the admissibility checker means nothing.
TEST(RatioDeath, ZeroDenominatorAborts) {
  EXPECT_DEATH({ Ratio bad(1, 0); (void)bad; }, "zero denominator");
}

TEST(RatioDeath, DivisionByZeroAborts) {
  EXPECT_DEATH(
      {
        Ratio r = Ratio(1) / Ratio(0);
        (void)r;
      },
      "division by zero");
}

TEST(RatioDeath, OverflowAborts) {
  EXPECT_DEATH(
      {
        Ratio big(INT64_MAX, 1);
        Ratio r = big * big;
        (void)r;
      },
      "overflow");
}

}  // namespace
}  // namespace sesp
