#include "util/ratio.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "util/packed_ratio.hpp"
#include "util/rng.hpp"

namespace sesp {
namespace {

TEST(RatioTest, DefaultIsZero) {
  Ratio r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(RatioTest, NormalizesToLowestTerms) {
  EXPECT_EQ(Ratio(6, 4), Ratio(3, 2));
  EXPECT_EQ(Ratio(-6, 4), Ratio(-3, 2));
  EXPECT_EQ(Ratio(6, -4), Ratio(-3, 2));
  EXPECT_EQ(Ratio(-6, -4), Ratio(3, 2));
  EXPECT_EQ(Ratio(0, 7), Ratio(0));
}

TEST(RatioTest, DenominatorAlwaysPositive) {
  EXPECT_GT(Ratio(1, -3).den(), 0);
  EXPECT_EQ(Ratio(1, -3).num(), -1);
}

TEST(RatioTest, Arithmetic) {
  EXPECT_EQ(Ratio(1, 2) + Ratio(1, 3), Ratio(5, 6));
  EXPECT_EQ(Ratio(1, 2) - Ratio(1, 3), Ratio(1, 6));
  EXPECT_EQ(Ratio(2, 3) * Ratio(3, 4), Ratio(1, 2));
  EXPECT_EQ(Ratio(2, 3) / Ratio(4, 3), Ratio(1, 2));
  EXPECT_EQ(-Ratio(2, 3), Ratio(-2, 3));
}

TEST(RatioTest, IntegerInterop) {
  Ratio r = 5;
  EXPECT_TRUE(r.is_integer());
  EXPECT_EQ(r + 2, Ratio(7));
  EXPECT_EQ(r * Ratio(1, 5), Ratio(1));
}

TEST(RatioTest, Comparisons) {
  EXPECT_LT(Ratio(1, 3), Ratio(1, 2));
  EXPECT_GT(Ratio(-1, 3), Ratio(-1, 2));
  EXPECT_LE(Ratio(2, 4), Ratio(1, 2));
  EXPECT_EQ(Ratio(2, 4) <=> Ratio(1, 2), std::strong_ordering::equal);
  EXPECT_LT(Ratio(-1), Ratio(0));
}

TEST(RatioTest, FloorCeil) {
  EXPECT_EQ(Ratio(7, 2).floor(), 3);
  EXPECT_EQ(Ratio(7, 2).ceil(), 4);
  EXPECT_EQ(Ratio(-7, 2).floor(), -4);
  EXPECT_EQ(Ratio(-7, 2).ceil(), -3);
  EXPECT_EQ(Ratio(6).floor(), 6);
  EXPECT_EQ(Ratio(6).ceil(), 6);
  EXPECT_EQ(Ratio(0).floor(), 0);
}

TEST(RatioTest, ToString) {
  EXPECT_EQ(Ratio(3).to_string(), "3");
  EXPECT_EQ(Ratio(7, 2).to_string(), "7/2");
  EXPECT_EQ(Ratio(-1, 3).to_string(), "-1/3");
}

TEST(RatioTest, MinMaxAbs) {
  EXPECT_EQ(min(Ratio(1, 2), Ratio(1, 3)), Ratio(1, 3));
  EXPECT_EQ(max(Ratio(1, 2), Ratio(1, 3)), Ratio(1, 2));
  EXPECT_EQ(abs(Ratio(-5, 7)), Ratio(5, 7));
  EXPECT_EQ(abs(Ratio(5, 7)), Ratio(5, 7));
}

TEST(RatioTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Ratio(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Ratio(-3, 4).to_double(), -0.75);
}

TEST(RatioTest, LargeIntermediatesDoNotOverflow) {
  // Sum whose cross-multiplication exceeds 64 bits before reduction.
  const Ratio a(1, 3'000'000'019LL);
  const Ratio b(1, 3'000'000'019LL);
  EXPECT_EQ(a + b, Ratio(2, 3'000'000'019LL));
  const Ratio c(1'000'000'007LL, 3);
  EXPECT_EQ(c * Ratio(3, 1'000'000'007LL), Ratio(1));
}

// Field-axiom spot checks over a grid of rationals.
class RatioAxioms
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RatioAxioms, RingLaws) {
  const auto [i, j, k] = GetParam();
  const Ratio a(i, 7), b(j, 5), c(k, 3);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, Ratio(0));
  if (!b.is_zero()) {
    EXPECT_EQ((a / b) * b, a);
  }
}

TEST_P(RatioAxioms, OrderCompatibleWithArithmetic) {
  const auto [i, j, k] = GetParam();
  const Ratio a(i, 7), b(j, 5), c(k, 3);
  if (a < b) {
    EXPECT_LT(a + c, b + c);
    if (c.is_positive()) {
      EXPECT_LT(a * c, b * c);
    }
    if (c.is_negative()) {
      EXPECT_GT(a * c, b * c);
    }
  }
}

TEST_P(RatioAxioms, FloorCeilBracket) {
  const auto [i, j, k] = GetParam();
  (void)j;
  (void)k;
  const Ratio a(i, 7);
  EXPECT_LE(Ratio(a.floor()), a);
  EXPECT_LT(a - Ratio(a.floor()), Ratio(1));
  EXPECT_GE(Ratio(a.ceil()), a);
  EXPECT_LT(Ratio(a.ceil()) - a, Ratio(1));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RatioAxioms,
    ::testing::Combine(::testing::Values(-9, -2, 0, 1, 5, 14),
                       ::testing::Values(-7, -1, 0, 2, 10),
                       ::testing::Values(-3, 0, 1, 4)));

// --- Fast-path vs reference cross-checks ------------------------------------
//
// The inline hot paths (den==1 add/sub/mul, same-denominator add, same-den
// compare) must be indistinguishable from a shape-blind reference that
// always cross-multiplies in 128 bits and normalizes with a full Euclid
// pass. The pairs below are drawn to hit every shape: integer/integer
// (fast), same denominator (semi-fast), mixed (slow), negatives and zero
// throughout.

Ratio ref_combine(const Ratio& a, const Ratio& b, int sign) {
  const __int128 n = static_cast<__int128>(a.num()) * b.den() +
                     sign * static_cast<__int128>(b.num()) * a.den();
  const __int128 d = static_cast<__int128>(a.den()) * b.den();
  __int128 x = n < 0 ? -n : n;
  __int128 y = d;
  while (y != 0) {
    const __int128 t = x % y;
    x = y;
    y = t;
  }
  if (x == 0) x = 1;
  return Ratio(static_cast<std::int64_t>(n / x),
               static_cast<std::int64_t>(d / x));
}

Ratio ref_mul(const Ratio& a, const Ratio& b) {
  const __int128 n = static_cast<__int128>(a.num()) * b.num();
  const __int128 d = static_cast<__int128>(a.den()) * b.den();
  __int128 x = n < 0 ? -n : n;
  __int128 y = d;
  while (y != 0) {
    const __int128 t = x % y;
    x = y;
    y = t;
  }
  if (x == 0) x = 1;
  return Ratio(static_cast<std::int64_t>(n / x),
               static_cast<std::int64_t>(d / x));
}

std::strong_ordering ref_compare(const Ratio& a, const Ratio& b) {
  const __int128 lhs = static_cast<__int128>(a.num()) * b.den();
  const __int128 rhs = static_cast<__int128>(b.num()) * a.den();
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

// Draws a value whose shape exercises a specific path: pure integers, a
// shared denominator, or an arbitrary small rational.
Ratio draw(Rng& rng, std::int64_t shared_den) {
  const std::int64_t num = rng.next_int(0, 2'000'000) - 1'000'000;
  switch (rng.next_below(4)) {
    case 0: return Ratio(num % 1000);          // den == 1 fast shapes
    case 1: return Ratio(num, shared_den);     // same-den shapes
    case 2: return Ratio(num, rng.next_int(1, 1000));
    default: return Ratio(num);
  }
}

TEST(RatioCrossCheck, RandomizedFastPathsMatchReference) {
  Rng rng(0x2a710'cafeULL);
  for (int iter = 0; iter < 20'000; ++iter) {
    const std::int64_t shared_den = rng.next_int(1, 64);
    const Ratio a = draw(rng, shared_den);
    const Ratio b = draw(rng, shared_den);
    ASSERT_EQ(a + b, ref_combine(a, b, +1))
        << a.to_string() << " + " << b.to_string();
    ASSERT_EQ(a - b, ref_combine(a, b, -1))
        << a.to_string() << " - " << b.to_string();
    ASSERT_EQ(a * b, ref_mul(a, b))
        << a.to_string() << " * " << b.to_string();
    ASSERT_EQ(a <=> b, ref_compare(a, b))
        << a.to_string() << " <=> " << b.to_string();
    if (!b.is_zero()) {
      const Ratio q = a / b;
      ASSERT_EQ(q * b, a) << a.to_string() << " / " << b.to_string();
    }
  }
}

TEST(RatioCrossCheck, EndpointValuesCompareExactly) {
  // Near-extreme numerators: the same-den comparison fast path and the
  // 128-bit cross-multiply must agree where doubles could not even
  // represent the difference.
  const std::vector<Ratio> edge = {
      Ratio(INT64_MAX, 1),          Ratio(INT64_MAX - 1, 1),
      Ratio(INT64_MAX, 2),          Ratio(-INT64_MAX, 1),
      Ratio(-INT64_MAX, 3),         Ratio(INT64_MAX, INT64_MAX - 1),
      Ratio(INT64_MAX - 1, INT64_MAX),
      Ratio(0),                     Ratio(1, INT64_MAX),
      Ratio(-1, INT64_MAX)};
  for (const Ratio& a : edge)
    for (const Ratio& b : edge)
      EXPECT_EQ(a <=> b, ref_compare(a, b))
          << a.to_string() << " <=> " << b.to_string();
}

TEST(RatioCrossCheck, IntegerOverflowFallsBackNotWraps) {
  // den==1 + den==1 whose sum exceeds int64: the inline path must hand off
  // to the slow path, which diagnoses the overflow instead of wrapping.
  EXPECT_DEATH(
      {
        Ratio r = Ratio(INT64_MAX) + Ratio(1);
        (void)r;
      },
      "overflow");
  // Near the edge but representable: fast path must produce the exact sum.
  EXPECT_EQ(Ratio(INT64_MAX - 1) + Ratio(1), Ratio(INT64_MAX));
  EXPECT_EQ(Ratio(INT64_MIN + 1) - Ratio(1), Ratio(INT64_MIN));
}

TEST(RatioCrossCheck, SameDenominatorAddStaysOnGrid) {
  // Times on a period grid keep their denominator (or reduce): the shape
  // the same-den fast path is for.
  const Ratio a(7, 12), b(11, 12);
  EXPECT_EQ(a + b, Ratio(18, 12));
  EXPECT_EQ(a + b, Ratio(3, 2));
  EXPECT_EQ(Ratio(5, 12) + Ratio(7, 12), Ratio(1));
  EXPECT_EQ(Ratio(-7, 12) + Ratio(7, 12), Ratio(0));
  EXPECT_EQ(Ratio(-5, 12) - Ratio(7, 12), Ratio(-1));
}

// Misuse is a hard failure, never silent wraparound: model time must stay
// exact or the admissibility checker means nothing.
TEST(RatioDeath, ZeroDenominatorAborts) {
  EXPECT_DEATH({ Ratio bad(1, 0); (void)bad; }, "zero denominator");
}

TEST(RatioDeath, DivisionByZeroAborts) {
  EXPECT_DEATH(
      {
        Ratio r = Ratio(1) / Ratio(0);
        (void)r;
      },
      "division by zero");
}

TEST(RatioDeath, OverflowAborts) {
  EXPECT_DEATH(
      {
        Ratio big(INT64_MAX, 1);
        Ratio r = big * big;
        (void)r;
      },
      "overflow");
}

// --- Interned representation (PackedRatio / RatioIntern) --------------------
//
// The calendar queue keys buckets on PackedRatio words, so the interned
// form must round-trip exactly, compare exactly like Ratio, and keep
// equality == word equality across the inline/pooled boundary.

TEST(PackedRatioTest, DefaultIsInlineZero) {
  const PackedRatio zero;
  EXPECT_TRUE(zero.is_inline());
  EXPECT_EQ(zero.inline_num(), 0);
  EXPECT_EQ(zero.inline_den(), 1);
  RatioIntern intern;
  EXPECT_EQ(intern.unpack(zero), Ratio(0));
  EXPECT_EQ(intern.pack(Ratio(0)), zero);
}

TEST(PackedRatioTest, InlineOverflowBoundaries) {
  RatioIntern intern;
  // Extremes of the inline numerator field, exact round-trip.
  const Ratio num_max(PackedRatio::kNumMax);
  const Ratio num_min(PackedRatio::kNumMin);
  EXPECT_TRUE(intern.pack(num_max).is_inline());
  EXPECT_TRUE(intern.pack(num_min).is_inline());
  EXPECT_EQ(intern.unpack(intern.pack(num_max)), num_max);
  EXPECT_EQ(intern.unpack(intern.pack(num_min)), num_min);
  // One past the field: promotion to the pooled exact form.
  const Ratio num_over(PackedRatio::kNumMax + 1);
  const Ratio num_under(PackedRatio::kNumMin - 1);
  EXPECT_TRUE(intern.pack(num_over).is_pooled());
  EXPECT_TRUE(intern.pack(num_under).is_pooled());
  EXPECT_EQ(intern.unpack(intern.pack(num_over)), num_over);
  EXPECT_EQ(intern.unpack(intern.pack(num_under)), num_under);
  // Same for the denominator field (prime-ish values dodge normalization).
  const Ratio den_max(1, PackedRatio::kDenMax);
  const Ratio den_over(1, PackedRatio::kDenMax + 1);
  EXPECT_TRUE(intern.pack(den_max).is_inline());
  EXPECT_TRUE(intern.pack(den_over).is_pooled());
  EXPECT_EQ(intern.unpack(intern.pack(den_max)), den_max);
  EXPECT_EQ(intern.unpack(intern.pack(den_over)), den_over);
}

TEST(PackedRatioTest, PromotionToPoolAndBack) {
  RatioIntern intern;
  // A pooled value whose arithmetic lands back on an inline value: the two
  // representations must agree through the round trip.
  const Ratio big(PackedRatio::kNumMax + 5);
  const PackedRatio packed_big = intern.pack(big);
  ASSERT_TRUE(packed_big.is_pooled());
  const Ratio back = intern.unpack(packed_big) - Ratio(5);
  const PackedRatio packed_back = intern.pack(back);
  EXPECT_TRUE(packed_back.is_inline());
  EXPECT_EQ(intern.unpack(packed_back), Ratio(PackedRatio::kNumMax));
}

TEST(PackedRatioTest, PoolDedupesToIdenticalWords) {
  RatioIntern intern;
  const Ratio huge(INT64_MAX / 3, 7);
  const PackedRatio a = intern.pack(huge);
  const PackedRatio b = intern.pack(Ratio(INT64_MAX / 3, 7));
  EXPECT_TRUE(a.is_pooled());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.word(), b.word());
  EXPECT_EQ(intern.pool_size(), 1u);
  // A different value gets a different word even with an equal hash bucket.
  const PackedRatio c = intern.pack(Ratio(INT64_MAX / 3, 11));
  EXPECT_NE(a.word(), c.word());
  EXPECT_EQ(intern.pool_size(), 2u);
}

TEST(PackedRatioTest, HashAndCompareConsistentWithEquality) {
  RatioIntern intern;
  Rng rng(0x9ac7'ed01ULL);
  std::vector<Ratio> values;
  for (int i = 0; i < 200; ++i) {
    const std::int64_t num = rng.next_int(0, 2'000'000) - 1'000'000;
    switch (rng.next_below(3)) {
      case 0:
        values.push_back(Ratio(num, rng.next_int(1, 1000)));
        break;
      case 1:  // outside the inline numerator field
        values.push_back(Ratio(PackedRatio::kNumMax + 1 + (num & 0xffff)));
        break;
      default:  // outside the inline denominator field
        values.push_back(
            Ratio(num | 1, PackedRatio::kDenMax + rng.next_int(1, 1000)));
        break;
    }
  }
  for (const Ratio& a : values)
    for (const Ratio& b : values) {
      const PackedRatio pa = intern.pack(a);
      const PackedRatio pb = intern.pack(b);
      ASSERT_EQ(a == b, pa == pb)
          << a.to_string() << " vs " << b.to_string();
      ASSERT_EQ(a <=> b, intern.compare(pa, pb))
          << a.to_string() << " <=> " << b.to_string();
      ASSERT_EQ(intern.less(pa, pb), a < b);
      if (a == b) ASSERT_EQ(pa.hash(), pb.hash());
    }
}

TEST(PackedRatioTest, FuzzMixedInlineAndPooledExpressions) {
  // Mixed expressions: accumulate times the way the simulator does (t +
  // delay), alternating inline-size and pool-size operands, and check the
  // packed comparisons track the exact Ratio order at every step.
  RatioIntern intern;
  Rng rng(0x51c7'beefULL);
  Ratio t(0);
  PackedRatio packed_t = intern.pack(t);
  // One fixed oversize denominator: repeated adds stay on its grid, so the
  // exact accumulator never overflows while every touch of it is pooled.
  const std::int64_t big_den = PackedRatio::kDenMax + 98;
  for (int iter = 0; iter < 2'000; ++iter) {
    Ratio delta;
    switch (rng.next_below(4)) {
      case 0:  // power-of-two grid: denominators stay bounded under lcm
        delta = Ratio(rng.next_int(0, 1000),
                      std::int64_t{1} << rng.next_below(7));
        break;
      case 1:  // denominator blowup: forces pooled intermediates
        delta = Ratio(rng.next_int(1, 7), big_den);
        break;
      case 2:
        delta = Ratio(rng.next_int(0, 3));
        break;
      default:
        delta = Ratio(rng.next_int(0, 10'000), 3);
        break;
    }
    const Ratio next = t + delta;
    const PackedRatio packed_next = intern.pack(next);
    ASSERT_EQ(intern.unpack(packed_next), next);
    ASSERT_EQ(intern.compare(packed_t, packed_next), t <=> next);
    ASSERT_EQ(intern.less(packed_t, packed_next), t < next);
    ASSERT_EQ(packed_t == packed_next, t == next);
    t = next;
    packed_t = packed_next;
  }
  // The pool only ever saw the pooled forms; inline values never intern.
  EXPECT_GT(intern.pool_size(), 0u);
}

}  // namespace
}  // namespace sesp
