#include "util/ratio.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace sesp {
namespace {

TEST(RatioTest, DefaultIsZero) {
  Ratio r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(RatioTest, NormalizesToLowestTerms) {
  EXPECT_EQ(Ratio(6, 4), Ratio(3, 2));
  EXPECT_EQ(Ratio(-6, 4), Ratio(-3, 2));
  EXPECT_EQ(Ratio(6, -4), Ratio(-3, 2));
  EXPECT_EQ(Ratio(-6, -4), Ratio(3, 2));
  EXPECT_EQ(Ratio(0, 7), Ratio(0));
}

TEST(RatioTest, DenominatorAlwaysPositive) {
  EXPECT_GT(Ratio(1, -3).den(), 0);
  EXPECT_EQ(Ratio(1, -3).num(), -1);
}

TEST(RatioTest, Arithmetic) {
  EXPECT_EQ(Ratio(1, 2) + Ratio(1, 3), Ratio(5, 6));
  EXPECT_EQ(Ratio(1, 2) - Ratio(1, 3), Ratio(1, 6));
  EXPECT_EQ(Ratio(2, 3) * Ratio(3, 4), Ratio(1, 2));
  EXPECT_EQ(Ratio(2, 3) / Ratio(4, 3), Ratio(1, 2));
  EXPECT_EQ(-Ratio(2, 3), Ratio(-2, 3));
}

TEST(RatioTest, IntegerInterop) {
  Ratio r = 5;
  EXPECT_TRUE(r.is_integer());
  EXPECT_EQ(r + 2, Ratio(7));
  EXPECT_EQ(r * Ratio(1, 5), Ratio(1));
}

TEST(RatioTest, Comparisons) {
  EXPECT_LT(Ratio(1, 3), Ratio(1, 2));
  EXPECT_GT(Ratio(-1, 3), Ratio(-1, 2));
  EXPECT_LE(Ratio(2, 4), Ratio(1, 2));
  EXPECT_EQ(Ratio(2, 4) <=> Ratio(1, 2), std::strong_ordering::equal);
  EXPECT_LT(Ratio(-1), Ratio(0));
}

TEST(RatioTest, FloorCeil) {
  EXPECT_EQ(Ratio(7, 2).floor(), 3);
  EXPECT_EQ(Ratio(7, 2).ceil(), 4);
  EXPECT_EQ(Ratio(-7, 2).floor(), -4);
  EXPECT_EQ(Ratio(-7, 2).ceil(), -3);
  EXPECT_EQ(Ratio(6).floor(), 6);
  EXPECT_EQ(Ratio(6).ceil(), 6);
  EXPECT_EQ(Ratio(0).floor(), 0);
}

TEST(RatioTest, ToString) {
  EXPECT_EQ(Ratio(3).to_string(), "3");
  EXPECT_EQ(Ratio(7, 2).to_string(), "7/2");
  EXPECT_EQ(Ratio(-1, 3).to_string(), "-1/3");
}

TEST(RatioTest, MinMaxAbs) {
  EXPECT_EQ(min(Ratio(1, 2), Ratio(1, 3)), Ratio(1, 3));
  EXPECT_EQ(max(Ratio(1, 2), Ratio(1, 3)), Ratio(1, 2));
  EXPECT_EQ(abs(Ratio(-5, 7)), Ratio(5, 7));
  EXPECT_EQ(abs(Ratio(5, 7)), Ratio(5, 7));
}

TEST(RatioTest, ToDouble) {
  EXPECT_DOUBLE_EQ(Ratio(1, 2).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(Ratio(-3, 4).to_double(), -0.75);
}

TEST(RatioTest, LargeIntermediatesDoNotOverflow) {
  // Sum whose cross-multiplication exceeds 64 bits before reduction.
  const Ratio a(1, 3'000'000'019LL);
  const Ratio b(1, 3'000'000'019LL);
  EXPECT_EQ(a + b, Ratio(2, 3'000'000'019LL));
  const Ratio c(1'000'000'007LL, 3);
  EXPECT_EQ(c * Ratio(3, 1'000'000'007LL), Ratio(1));
}

// Field-axiom spot checks over a grid of rationals.
class RatioAxioms
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RatioAxioms, RingLaws) {
  const auto [i, j, k] = GetParam();
  const Ratio a(i, 7), b(j, 5), c(k, 3);
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
  EXPECT_EQ(a * b, b * a);
  EXPECT_EQ((a * b) * c, a * (b * c));
  EXPECT_EQ(a * (b + c), a * b + a * c);
  EXPECT_EQ(a - a, Ratio(0));
  if (!b.is_zero()) {
    EXPECT_EQ((a / b) * b, a);
  }
}

TEST_P(RatioAxioms, OrderCompatibleWithArithmetic) {
  const auto [i, j, k] = GetParam();
  const Ratio a(i, 7), b(j, 5), c(k, 3);
  if (a < b) {
    EXPECT_LT(a + c, b + c);
    if (c.is_positive()) {
      EXPECT_LT(a * c, b * c);
    }
    if (c.is_negative()) {
      EXPECT_GT(a * c, b * c);
    }
  }
}

TEST_P(RatioAxioms, FloorCeilBracket) {
  const auto [i, j, k] = GetParam();
  (void)j;
  (void)k;
  const Ratio a(i, 7);
  EXPECT_LE(Ratio(a.floor()), a);
  EXPECT_LT(a - Ratio(a.floor()), Ratio(1));
  EXPECT_GE(Ratio(a.ceil()), a);
  EXPECT_LT(Ratio(a.ceil()) - a, Ratio(1));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RatioAxioms,
    ::testing::Combine(::testing::Values(-9, -2, 0, 1, 5, 14),
                       ::testing::Values(-7, -1, 0, 2, 10),
                       ::testing::Values(-3, 0, 1, 4)));

// --- Fast-path vs reference cross-checks ------------------------------------
//
// The inline hot paths (den==1 add/sub/mul, same-denominator add, same-den
// compare) must be indistinguishable from a shape-blind reference that
// always cross-multiplies in 128 bits and normalizes with a full Euclid
// pass. The pairs below are drawn to hit every shape: integer/integer
// (fast), same denominator (semi-fast), mixed (slow), negatives and zero
// throughout.

Ratio ref_combine(const Ratio& a, const Ratio& b, int sign) {
  const __int128 n = static_cast<__int128>(a.num()) * b.den() +
                     sign * static_cast<__int128>(b.num()) * a.den();
  const __int128 d = static_cast<__int128>(a.den()) * b.den();
  __int128 x = n < 0 ? -n : n;
  __int128 y = d;
  while (y != 0) {
    const __int128 t = x % y;
    x = y;
    y = t;
  }
  if (x == 0) x = 1;
  return Ratio(static_cast<std::int64_t>(n / x),
               static_cast<std::int64_t>(d / x));
}

Ratio ref_mul(const Ratio& a, const Ratio& b) {
  const __int128 n = static_cast<__int128>(a.num()) * b.num();
  const __int128 d = static_cast<__int128>(a.den()) * b.den();
  __int128 x = n < 0 ? -n : n;
  __int128 y = d;
  while (y != 0) {
    const __int128 t = x % y;
    x = y;
    y = t;
  }
  if (x == 0) x = 1;
  return Ratio(static_cast<std::int64_t>(n / x),
               static_cast<std::int64_t>(d / x));
}

std::strong_ordering ref_compare(const Ratio& a, const Ratio& b) {
  const __int128 lhs = static_cast<__int128>(a.num()) * b.den();
  const __int128 rhs = static_cast<__int128>(b.num()) * a.den();
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

// Draws a value whose shape exercises a specific path: pure integers, a
// shared denominator, or an arbitrary small rational.
Ratio draw(Rng& rng, std::int64_t shared_den) {
  const std::int64_t num = rng.next_int(0, 2'000'000) - 1'000'000;
  switch (rng.next_below(4)) {
    case 0: return Ratio(num % 1000);          // den == 1 fast shapes
    case 1: return Ratio(num, shared_den);     // same-den shapes
    case 2: return Ratio(num, rng.next_int(1, 1000));
    default: return Ratio(num);
  }
}

TEST(RatioCrossCheck, RandomizedFastPathsMatchReference) {
  Rng rng(0x2a710'cafeULL);
  for (int iter = 0; iter < 20'000; ++iter) {
    const std::int64_t shared_den = rng.next_int(1, 64);
    const Ratio a = draw(rng, shared_den);
    const Ratio b = draw(rng, shared_den);
    ASSERT_EQ(a + b, ref_combine(a, b, +1))
        << a.to_string() << " + " << b.to_string();
    ASSERT_EQ(a - b, ref_combine(a, b, -1))
        << a.to_string() << " - " << b.to_string();
    ASSERT_EQ(a * b, ref_mul(a, b))
        << a.to_string() << " * " << b.to_string();
    ASSERT_EQ(a <=> b, ref_compare(a, b))
        << a.to_string() << " <=> " << b.to_string();
    if (!b.is_zero()) {
      const Ratio q = a / b;
      ASSERT_EQ(q * b, a) << a.to_string() << " / " << b.to_string();
    }
  }
}

TEST(RatioCrossCheck, EndpointValuesCompareExactly) {
  // Near-extreme numerators: the same-den comparison fast path and the
  // 128-bit cross-multiply must agree where doubles could not even
  // represent the difference.
  const std::vector<Ratio> edge = {
      Ratio(INT64_MAX, 1),          Ratio(INT64_MAX - 1, 1),
      Ratio(INT64_MAX, 2),          Ratio(-INT64_MAX, 1),
      Ratio(-INT64_MAX, 3),         Ratio(INT64_MAX, INT64_MAX - 1),
      Ratio(INT64_MAX - 1, INT64_MAX),
      Ratio(0),                     Ratio(1, INT64_MAX),
      Ratio(-1, INT64_MAX)};
  for (const Ratio& a : edge)
    for (const Ratio& b : edge)
      EXPECT_EQ(a <=> b, ref_compare(a, b))
          << a.to_string() << " <=> " << b.to_string();
}

TEST(RatioCrossCheck, IntegerOverflowFallsBackNotWraps) {
  // den==1 + den==1 whose sum exceeds int64: the inline path must hand off
  // to the slow path, which diagnoses the overflow instead of wrapping.
  EXPECT_DEATH(
      {
        Ratio r = Ratio(INT64_MAX) + Ratio(1);
        (void)r;
      },
      "overflow");
  // Near the edge but representable: fast path must produce the exact sum.
  EXPECT_EQ(Ratio(INT64_MAX - 1) + Ratio(1), Ratio(INT64_MAX));
  EXPECT_EQ(Ratio(INT64_MIN + 1) - Ratio(1), Ratio(INT64_MIN));
}

TEST(RatioCrossCheck, SameDenominatorAddStaysOnGrid) {
  // Times on a period grid keep their denominator (or reduce): the shape
  // the same-den fast path is for.
  const Ratio a(7, 12), b(11, 12);
  EXPECT_EQ(a + b, Ratio(18, 12));
  EXPECT_EQ(a + b, Ratio(3, 2));
  EXPECT_EQ(Ratio(5, 12) + Ratio(7, 12), Ratio(1));
  EXPECT_EQ(Ratio(-7, 12) + Ratio(7, 12), Ratio(0));
  EXPECT_EQ(Ratio(-5, 12) - Ratio(7, 12), Ratio(-1));
}

// Misuse is a hard failure, never silent wraparound: model time must stay
// exact or the admissibility checker means nothing.
TEST(RatioDeath, ZeroDenominatorAborts) {
  EXPECT_DEATH({ Ratio bad(1, 0); (void)bad; }, "zero denominator");
}

TEST(RatioDeath, DivisionByZeroAborts) {
  EXPECT_DEATH(
      {
        Ratio r = Ratio(1) / Ratio(0);
        (void)r;
      },
      "division by zero");
}

TEST(RatioDeath, OverflowAborts) {
  EXPECT_DEATH(
      {
        Ratio big(INT64_MAX, 1);
        Ratio r = big * big;
        (void)r;
      },
      "overflow");
}

}  // namespace
}  // namespace sesp
