#include "adversary/exhaustive.hpp"

#include <gtest/gtest.h>

#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/mpm/sync_alg.hpp"
#include "analysis/bounds.hpp"
#include "sim/experiment.hpp"

namespace sesp {
namespace {

TEST(ExhaustiveTest, SynchronousHasExactlyOneSchedule) {
  const ProblemSpec spec{3, 2, 2};
  const auto constraints = TimingConstraints::synchronous(Duration(2),
                                                          Duration(3));
  SyncMpmFactory factory;
  const ExhaustiveResult result = explore_mpm(
      spec, constraints, factory, {Duration(2)}, {Duration(3)});
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.runs, 1);
  EXPECT_TRUE(result.all_solved);
  EXPECT_EQ(result.max_termination, Time(6));
}

TEST(ExhaustiveTest, SemiSyncStepCountingSolvesOnEveryGridSchedule) {
  const ProblemSpec spec{2, 2, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(3),
                                          Duration(2));
  SemiSyncMpmFactory factory(SemiSyncStrategy::kStepCount);
  const ExhaustiveResult result =
      explore_mpm(spec, constraints, factory,
                  {Duration(1), Duration(2), Duration(3)}, {Duration(2)});
  EXPECT_TRUE(result.complete) << result.runs;
  EXPECT_TRUE(result.all_solved) << result.first_failure;
  EXPECT_TRUE(result.all_admissible) << result.first_failure;
  EXPECT_GE(result.min_sessions, spec.s);
  // The true worst case on the grid respects the step-counting branch's
  // bound (floor(c2/c1)+1)*c2*(s-1) + c2 = 4*3*1 + 3 = 15...
  const Ratio step_branch_upper =
      Ratio((Duration(3) / Duration(1)).floor() + 1) * Duration(3) *
          Ratio(spec.s - 1) +
      Duration(3);
  EXPECT_LE(result.max_termination, step_branch_upper);
  // ...and the all-slow schedule is on the grid, so the worst case is
  // exactly that bound: 5 steps at gap 3.
  EXPECT_EQ(result.max_termination, Time(15));
}

TEST(ExhaustiveTest, TrueWorstDominatesSampledFamily) {
  const ProblemSpec spec{2, 2, 2};
  const auto constraints =
      TimingConstraints::semi_synchronous(Duration(1), Duration(4),
                                          Duration(1));
  SemiSyncMpmFactory factory(SemiSyncStrategy::kStepCount);
  const ExhaustiveResult exhaustive = explore_mpm(
      spec, constraints, factory, {Duration(1), Duration(4)}, {Duration(1)});
  ASSERT_TRUE(exhaustive.complete);
  ASSERT_TRUE(exhaustive.all_solved) << exhaustive.first_failure;

  const WorstCase sampled = mpm_worst_case(spec, constraints, factory, 4);
  EXPECT_GE(exhaustive.max_termination, sampled.max_termination);
}

TEST(ExhaustiveTest, SporadicAspAgainstAllGridSchedules) {
  // A(sp) broadcasts at every step, so every message would be a decision
  // point; fixing the delay at d2 keeps the tree to step interleavings
  // (still every combination of fast/stalled gaps for every process).
  const ProblemSpec spec{2, 2, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(3));
  SporadicMpmFactory factory;
  const ExhaustiveResult result = explore_mpm(
      spec, constraints, factory, {Duration(1), Duration(5)},
      {Duration(3)}, /*max_runs=*/500'000);
  EXPECT_TRUE(result.complete) << "runs=" << result.runs;
  EXPECT_TRUE(result.all_solved) << result.first_failure;
  EXPECT_TRUE(result.all_admissible) << result.first_failure;
  EXPECT_GE(result.min_sessions, spec.s);
}

TEST(ExhaustiveTest, IncompleteEnumerationIsReported) {
  const ProblemSpec spec{3, 3, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(0), Duration(4));
  SporadicMpmFactory factory;
  const ExhaustiveResult result =
      explore_mpm(spec, constraints, factory, {Duration(1), Duration(2)},
                  {Duration(0), Duration(4)}, /*max_runs=*/50);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.runs, 50);
}

}  // namespace
}  // namespace sesp
