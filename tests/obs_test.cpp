// Tests for the observability layer: metric instrument semantics, span
// nesting, JSON/JSONL round-trips through the in-tree parser, the
// zero-observer no-op contract, bench perf records (BENCH_*.json) and their
// aggregation, and the BoundReport / Summary JSON mirrors of the rendered
// tables.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "analysis/report.hpp"
#include "exec/jobs.hpp"
#include "obs/bench_record.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/perf_history.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "sim/experiment.hpp"
#include "util/stats.hpp"

namespace sesp {
namespace {

// --- metrics ---------------------------------------------------------------

TEST(MetricsTest, CounterIncrements) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(MetricsTest, GaugeTracksHighWaterMark) {
  obs::Gauge g;
  g.set(3);
  g.set(10);
  g.set(4);
  EXPECT_EQ(g.value(), 4);
  EXPECT_EQ(g.max(), 10);
}

TEST(MetricsTest, HistogramKeepsExactExtremes) {
  obs::Histogram h;
  EXPECT_TRUE(h.empty());
  h.observe(Ratio(7, 2));
  h.observe(Ratio(1, 3));
  h.observe(Ratio(5));
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.min(), Ratio(1, 3));
  EXPECT_EQ(h.max(), Ratio(5));
  EXPECT_NEAR(h.mean(), (3.5 + 1.0 / 3.0 + 5.0) / 3.0, 1e-12);
  std::int64_t total = 0;
  for (const std::int64_t b : h.buckets()) total += b;
  EXPECT_EQ(total, 3);
}

TEST(MetricsTest, RegistryHandlesAreStable) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("sim.steps");
  reg.counter("zzz.other");  // later insertions must not move `a`
  obs::Counter& b = reg.counter("sim.steps");
  EXPECT_EQ(&a, &b);
  a.inc(5);
  EXPECT_EQ(reg.counters().at("sim.steps").value(), 5);
}

TEST(MetricsTest, JsonlLinesParse) {
  obs::MetricsRegistry reg;
  reg.counter("sim.steps").inc(7);
  reg.gauge("sim.pending.depth").set(3);
  reg.histogram("verify.termination_time").observe(Ratio(9, 2));
  std::ostringstream os;
  reg.write_jsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    std::string error;
    const auto v = obs::parse_json(line, &error);
    ASSERT_TRUE(v) << error << " in: " << line;
    ASSERT_TRUE(v->find("metric"));
    ++parsed;
  }
  EXPECT_EQ(parsed, 3);
}

TEST(MetricsTest, GoldenHumanRendering) {
  // Pins the --metrics table byte-for-byte: aligned names, gauge current
  // value with its high-water mark, histogram count with exact-Ratio
  // extrema.
  obs::MetricsRegistry reg;
  reg.counter("sim.steps").inc(42);
  reg.gauge("sim.queue.depth").set(9);
  reg.gauge("sim.queue.depth").set(3);
  reg.histogram("verify.termination_time").observe(Ratio(7, 2));
  reg.histogram("verify.termination_time").observe(Ratio(1, 2));
  EXPECT_EQ(
      reg.to_string(),
      "  sim.steps                counter    42\n"
      "  sim.queue.depth          gauge      3 (max 9)\n"
      "  verify.termination_time  histogram  count=2 min=1/2 max=7/2"
      " mean=2\n");
}

// --- json ------------------------------------------------------------------

TEST(JsonTest, WriterParserRoundTrip) {
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    w.begin_object();
    w.field("name", "quote \" backslash \\ tab \t");
    w.field("ratio", Ratio(7, 2));
    w.field("count", std::int64_t{42});
    w.field("ok", true);
    w.key("list");
    w.begin_array();
    w.value(1.5);
    w.null_value();
    w.end_array();
    w.end_object();
  }
  std::string error;
  const auto v = obs::parse_json(os.str(), &error);
  ASSERT_TRUE(v) << error;
  EXPECT_EQ(v->find("name")->string, "quote \" backslash \\ tab \t");
  EXPECT_EQ(v->find("ratio")->string, "7/2");
  EXPECT_EQ(v->find("count")->as_int64(), 42);
  EXPECT_TRUE(v->find("ok")->boolean);
  ASSERT_EQ(v->find("list")->array.size(), 2u);
  EXPECT_DOUBLE_EQ(v->find("list")->array[0].number, 1.5);
  EXPECT_TRUE(v->find("list")->array[1].is_null());
}

TEST(JsonTest, RejectsTrailingGarbage) {
  std::string error;
  EXPECT_FALSE(obs::parse_json("{} x", &error));
  EXPECT_FALSE(obs::parse_json("{\"a\":}", &error));
}

TEST(JsonTest, DepthCapFailsCleanlyAsMalformed) {
  // 300 unclosed arrays trip the nesting cap — reported as corruption at
  // an interior offset, never as a torn tail (the cap fires before the
  // parser reaches end of input).
  const std::string deep(300, '[');
  std::string error;
  std::size_t offset = 0;
  EXPECT_FALSE(obs::parse_json(deep, &error, &offset));
  EXPECT_EQ(error.rfind("nesting too deep", 0), 0u) << error;
  EXPECT_LT(offset, deep.size());

  // Just under the cap still parses.
  std::string ok_doc(200, '[');
  ok_doc += std::string(200, ']');
  EXPECT_TRUE(obs::parse_json(ok_doc, &error)) << error;
}

TEST(JsonTest, TruncatedPrefixesAllFailCleanly) {
  const std::string doc =
      "{\"a\":[1,2,{\"b\":\"x\\\"y\"}],\"r\":\"7/2\",\"c\":3.5}";
  ASSERT_TRUE(obs::parse_json(doc));
  for (std::size_t cut = 0; cut < doc.size(); ++cut) {
    std::string error;
    const auto v = obs::parse_json(doc.substr(0, cut), &error);
    EXPECT_FALSE(v) << "prefix of length " << cut << " parsed";
    EXPECT_FALSE(error.empty());
  }
}

// Random JsonValue trees for the round-trip fuzz below.
obs::JsonValue fuzz_value(std::mt19937_64& rng, int depth) {
  obs::JsonValue v;
  const auto pick = [&rng](int n) {
    return static_cast<int>(rng() % static_cast<std::uint64_t>(n));
  };
  const int kind = depth >= 4 ? pick(4) : pick(6);
  switch (kind) {
    case 0:
      v.kind = obs::JsonValue::Kind::kNull;
      break;
    case 1:
      v.kind = obs::JsonValue::Kind::kBool;
      v.boolean = pick(2) == 0;
      break;
    case 2: {
      v.kind = obs::JsonValue::Kind::kNumber;
      switch (pick(6)) {
        case 0: v.number = static_cast<double>(pick(1000) - 500); break;
        case 1: v.number = 0.125 * pick(1000); break;
        case 2: v.number = 1.0e20; break;     // outside int64 — stays double
        case 3: v.number = -9.0e18; break;    // integral int64 edge
        case 4: v.number = std::numeric_limits<double>::quiet_NaN(); break;
        case 5: v.number = std::numeric_limits<double>::infinity(); break;
      }
      break;
    }
    case 3: {
      v.kind = obs::JsonValue::Kind::kString;
      // Exact-Ratio strings, quotes, backslashes, control chars.
      const char* samples[] = {"7/2", "-13/4", "q\"q", "b\\b", "\ttab\n",
                               "plain", ""};
      v.string = samples[pick(7)];
      break;
    }
    case 4: {
      v.kind = obs::JsonValue::Kind::kArray;
      const int n = pick(4);
      for (int i = 0; i < n; ++i)
        v.array.push_back(fuzz_value(rng, depth + 1));
      break;
    }
    default: {
      v.kind = obs::JsonValue::Kind::kObject;
      const int n = pick(4);
      for (int i = 0; i < n; ++i)
        v.object.emplace_back("k" + std::to_string(i),
                              fuzz_value(rng, depth + 1));
      break;
    }
  }
  return v;
}

std::string render_value(const obs::JsonValue& v) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  obs::write_json_value(w, v);
  return os.str();
}

TEST(JsonTest, FuzzedValuesRoundTripThroughWriteAndParse) {
  // write → parse → write is a fixpoint: whatever the first render chose
  // (int64 vs double, null for non-finite), the second render repeats
  // byte-for-byte. Seeds fixed for reproducibility.
  std::mt19937_64 rng(0x5e5510'1992ULL);
  for (int trial = 0; trial < 500; ++trial) {
    const obs::JsonValue original = fuzz_value(rng, 0);
    const std::string first = render_value(original);
    std::string error;
    const auto reparsed = obs::parse_json(first, &error);
    ASSERT_TRUE(reparsed) << error << " in: " << first;
    EXPECT_EQ(render_value(*reparsed), first) << "trial " << trial;
  }
}

TEST(JsonTest, WriteJsonValuePreservesMemberOrderAndIntegers) {
  const std::string doc =
      "{\"z\":1,\"a\":[true,null,\"7/2\"],\"n\":-42,\"d\":0.5}";
  const auto v = obs::parse_json(doc);
  ASSERT_TRUE(v);
  // Integral doubles in int64 range re-render as integers, so the exact
  // input text survives the round trip (member order included).
  EXPECT_EQ(render_value(*v), doc);
}

// --- tracing ---------------------------------------------------------------

TEST(TraceTest, SpansNestAndRecordDepth) {
  obs::TraceSink sink;
  {
    obs::Span outer(&sink, "outer", "sim");
    {
      obs::Span inner(&sink, "inner", "sim");
      sink.instant("fault.crash", "fault");
    }
  }
  ASSERT_EQ(sink.events().size(), 3u);
  // Events are recorded at close: instant, inner, outer.
  EXPECT_EQ(sink.events()[0].name, "fault.crash");
  EXPECT_EQ(sink.events()[0].depth, 2);
  EXPECT_EQ(sink.events()[1].name, "inner");
  EXPECT_EQ(sink.events()[1].depth, 1);
  EXPECT_EQ(sink.events()[2].name, "outer");
  EXPECT_EQ(sink.events()[2].depth, 0);
  EXPECT_EQ(sink.depth(), 0);
}

TEST(TraceTest, NullSinkSpanIsANoOp) {
  obs::Span span(nullptr, "nothing", "sim");
  span.set_args(obs::args_object({obs::arg_int("x", 1)}));
  // Nothing to assert beyond "does not crash".
}

TEST(TraceTest, EventCapCountsDrops) {
  obs::TraceSink sink;
  sink.set_max_events(2);
  for (int i = 0; i < 5; ++i) sink.instant("e", "sim");
  EXPECT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.dropped(), 3);
}

TEST(TraceTest, JsonlRoundTripsThroughParser) {
  obs::TraceSink sink;
  {
    obs::Span span(&sink, "mpm.run", "sim",
                   obs::args_object({obs::arg_int("n", 4),
                                     obs::arg_str("adv", "worst \"case\"")}));
  }
  sink.instant("error.no_progress", "error");
  std::ostringstream os;
  sink.write_jsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  int parsed = 0;
  bool meta_seen = false;
  while (std::getline(lines, line)) {
    std::string error;
    const auto v = obs::parse_json(line, &error);
    ASSERT_TRUE(v) << error << " in: " << line;
    ASSERT_TRUE(v->find("name"));
    ASSERT_TRUE(v->find("ph"));
    if (v->find("name")->string == "trace.meta") {
      // The leading wall-clock anchor sesp_trace_merge aligns files with.
      EXPECT_EQ(parsed, 0);
      EXPECT_EQ(v->find("ph")->string, "M");
      const obs::JsonValue* args = v->find("args");
      ASSERT_TRUE(args);
      ASSERT_TRUE(args->find("epoch_unix_us"));
      EXPECT_EQ(args->find("epoch_unix_us")->as_int64(),
                sink.epoch_unix_us());
      meta_seen = true;
    }
    if (v->find("name")->string == "mpm.run") {
      const obs::JsonValue* args = v->find("args");
      ASSERT_TRUE(args);
      EXPECT_EQ(args->find("n")->as_int64(), 4);
      EXPECT_EQ(args->find("adv")->string, "worst \"case\"");
    }
    ++parsed;
  }
  EXPECT_TRUE(meta_seen);
  EXPECT_EQ(parsed, 3);  // trace.meta anchor + 2 events
}

// A caller-rendered args fragment is normalized through parse_json +
// write_json_value at serialization time: a malformed fragment must not
// poison the line (it travels as an escaped string), and a well-formed one
// must re-render byte-identically.
TEST(TraceTest, MalformedArgsFragmentCannotPoisonTheLine) {
  obs::TraceSink sink;
  sink.instant("bad", "sim", "{broken");
  sink.instant("good", "sim",
               obs::args_object({obs::arg_int("k", 7),
                                 obs::arg_str("s", "a\"b\\c")}));
  std::ostringstream os;
  sink.write_jsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  int seen = 0;
  while (std::getline(lines, line)) {
    std::string error;
    const auto v = obs::parse_json(line, &error);
    ASSERT_TRUE(v) << error << " in: " << line;
    if (v->find("name")->string == "bad") {
      // The fragment survives, quoted, for post-mortem inspection.
      ASSERT_TRUE(v->find("args"));
      EXPECT_TRUE(v->find("args")->is_string());
      EXPECT_EQ(v->find("args")->string, "{broken");
      ++seen;
    }
    if (v->find("name")->string == "good") {
      ASSERT_TRUE(v->find("args"));
      ASSERT_TRUE(v->find("args")->is_object());
      EXPECT_EQ(v->find("args")->find("k")->as_int64(), 7);
      EXPECT_EQ(v->find("args")->find("s")->string, "a\"b\\c");
      // Byte-identity of the normalized well-formed fragment.
      EXPECT_NE(line.find("\"args\":{\"k\":7,\"s\":\"a\\\"b\\\\c\"}"),
                std::string::npos)
          << line;
      ++seen;
    }
  }
  EXPECT_EQ(seen, 2);
}

// --- profiler --------------------------------------------------------------

TEST(ProfilerTest, RecordsCountsTotalsAndExtremes) {
  obs::Profiler prof;
  EXPECT_TRUE(prof.empty());
  prof.record(obs::ProfilePhase::kProcessStep, 100);
  prof.record(obs::ProfilePhase::kProcessStep, 40);
  prof.record(obs::ProfilePhase::kProcessStep, 260);
  prof.record(obs::ProfilePhase::kDeliver, 7);
  EXPECT_FALSE(prof.empty());
  const obs::PhaseStat& step = prof.stat(obs::ProfilePhase::kProcessStep);
  EXPECT_EQ(step.count, 3);
  EXPECT_EQ(step.total_ns, 400);
  EXPECT_EQ(step.min_ns, 40);
  EXPECT_EQ(step.max_ns, 260);
  EXPECT_EQ(prof.total_ns(), 407);
  EXPECT_EQ(prof.stat(obs::ProfilePhase::kSchedule).count, 0);
}

TEST(ProfilerTest, NullProfileScopeIsANoOp) {
  obs::ProfileScope scope(nullptr, obs::ProfilePhase::kEventQueuePop);
  // Nothing to assert beyond "does not crash / records nothing".
}

TEST(ProfilerTest, ScopeRecordsOneSample) {
  obs::Profiler prof;
  { obs::ProfileScope scope(&prof, obs::ProfilePhase::kAdmissibility); }
  const obs::PhaseStat& s = prof.stat(obs::ProfilePhase::kAdmissibility);
  EXPECT_EQ(s.count, 1);
  EXPECT_GE(s.total_ns, 0);
  EXPECT_EQ(s.total_ns, s.min_ns);
  EXPECT_EQ(s.total_ns, s.max_ns);
}

TEST(ProfilerTest, RingKeepsLastSamplesInChronologicalOrder) {
  obs::PhaseStat stat;
  const int n = obs::PhaseStat::kRecentSamples + 5;
  for (int i = 1; i <= n; ++i) stat.record(i);
  EXPECT_EQ(stat.count, n);
  const auto recent = stat.recent();
  // Oldest surviving sample first: n - kRecentSamples + 1 ... n.
  for (int i = 0; i < obs::PhaseStat::kRecentSamples; ++i)
    EXPECT_EQ(recent[static_cast<std::size_t>(i)],
              n - obs::PhaseStat::kRecentSamples + 1 + i);
}

TEST(ProfilerTest, MergeFoldsCountsExtremaAndRing) {
  obs::Profiler a;
  obs::Profiler b;
  a.record(obs::ProfilePhase::kProcessStep, 50);
  b.record(obs::ProfilePhase::kProcessStep, 10);
  b.record(obs::ProfilePhase::kProcessStep, 90);
  b.record(obs::ProfilePhase::kShardGather, 5);
  a.merge_from(b);
  const obs::PhaseStat& step = a.stat(obs::ProfilePhase::kProcessStep);
  EXPECT_EQ(step.count, 3);
  EXPECT_EQ(step.total_ns, 150);
  EXPECT_EQ(step.min_ns, 10);
  EXPECT_EQ(step.max_ns, 90);
  const auto recent = step.recent();
  EXPECT_EQ(recent[0], 50);  // ours first, other's appended after
  EXPECT_EQ(recent[1], 10);
  EXPECT_EQ(recent[2], 90);
  EXPECT_EQ(a.stat(obs::ProfilePhase::kShardGather).count, 1);
}

TEST(ProfilerTest, MergedCountsAreSplitInvariant) {
  // The job-count invariance in miniature: the same 60 samples split 1 / 2
  // / 6 ways merge to identical counts, totals and extrema.
  const auto run_split = [](int shards) {
    obs::Profiler parent;
    for (int s = 0; s < shards; ++s) {
      obs::Profiler shard;
      for (int i = 0; i < 60 / shards; ++i) {
        const int k = s * (60 / shards) + i;
        shard.record(obs::ProfilePhase::kProcessStep, 10 + k);
        if (k % 3 == 0) shard.record(obs::ProfilePhase::kDeliver, 5);
      }
      parent.merge_from(shard);
    }
    return parent;
  };
  const obs::Profiler one = run_split(1);
  for (const int shards : {2, 6}) {
    const obs::Profiler split = run_split(shards);
    for (int p = 0; p < obs::kProfilePhases; ++p) {
      const auto phase = static_cast<obs::ProfilePhase>(p);
      EXPECT_EQ(split.stat(phase).count, one.stat(phase).count);
      EXPECT_EQ(split.stat(phase).total_ns, one.stat(phase).total_ns);
      EXPECT_EQ(split.stat(phase).min_ns, one.stat(phase).min_ns);
      EXPECT_EQ(split.stat(phase).max_ns, one.stat(phase).max_ns);
    }
  }
}

TEST(ProfilerTest, WriteJsonEmitsEveryPhaseKey) {
  obs::Profiler prof;
  prof.record(obs::ProfilePhase::kEventQueuePop, 12);
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    prof.write_json(w);
  }
  std::string error;
  const auto v = obs::parse_json(os.str(), &error);
  ASSERT_TRUE(v) << error;
  for (int p = 0; p < obs::kProfilePhases; ++p) {
    const auto phase = static_cast<obs::ProfilePhase>(p);
    const obs::JsonValue* stat = v->find(obs::profile_phase_name(phase));
    ASSERT_TRUE(stat) << obs::profile_phase_name(phase);
    ASSERT_TRUE(stat->find("count"));
    if (phase == obs::ProfilePhase::kEventQueuePop) {
      EXPECT_EQ(stat->find("count")->as_int64(), 1);
      EXPECT_EQ(stat->find("total_ns")->as_int64(), 12);
      ASSERT_TRUE(stat->find("recent_ns"));
      ASSERT_EQ(stat->find("recent_ns")->array.size(), 1u);
    } else {
      EXPECT_EQ(stat->find("count")->as_int64(), 0);
      // Zero phases carry only the count — schema-stable but compact.
      EXPECT_FALSE(stat->find("total_ns"));
    }
  }
}

TEST(ProfilerTest, ToStringSortsByTotalAndHandlesEmpty) {
  obs::Profiler prof;
  EXPECT_NE(prof.to_string().find("(no phases recorded)"), std::string::npos);
  prof.record(obs::ProfilePhase::kDeliver, 1'000'000);
  prof.record(obs::ProfilePhase::kProcessStep, 9'000'000);
  const std::string table = prof.to_string();
  const std::size_t step_at = table.find("sim.step");
  const std::size_t deliver_at = table.find("sim.deliver");
  ASSERT_NE(step_at, std::string::npos);
  ASSERT_NE(deliver_at, std::string::npos);
  EXPECT_LT(step_at, deliver_at);  // larger total first
  EXPECT_EQ(table.find("sim.queue_pop"), std::string::npos);  // count 0
}

TEST(ProfilerTest, ObservationShardMirrorsAndMergesProfiler) {
  obs::MetricsRegistry registry;
  obs::Profiler profiler;
  obs::Observer parent(&registry, nullptr);
  parent.profiler = &profiler;
  {
    obs::ObservationShard shard(&parent);
    ASSERT_NE(shard.observer(), nullptr);
    ASSERT_NE(shard.observer()->profiler, nullptr);
    EXPECT_NE(shard.observer()->profiler, &profiler);  // task-private
    shard.observer()->profiler->record(obs::ProfilePhase::kExecTask, 77);
    shard.merge_into_parent();
  }
  EXPECT_EQ(profiler.stat(obs::ProfilePhase::kExecTask).count, 1);
  EXPECT_EQ(profiler.stat(obs::ProfilePhase::kExecTask).total_ns, 77);

  // A parent without a profiler yields shards without one.
  obs::Observer bare(&registry, nullptr);
  obs::ObservationShard bare_shard(&bare);
  EXPECT_EQ(bare_shard.observer()->profiler, nullptr);
}

TEST(ProfilerTest, SweepProfileCountsAreJobCountInvariant) {
  // The real invariance: a profiled worst-case sweep records identical
  // per-phase *counts* at --jobs=1/2/8 (durations differ, counts cannot).
  const ProblemSpec spec{3, 3, 3};
  const TimingConstraints constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(5));
  SporadicMpmFactory factory;

  std::array<std::int64_t, obs::kProfilePhases> baseline{};
  for (const int jobs : {1, 2, 8}) {
    obs::MetricsRegistry registry;
    obs::Profiler profiler;
    obs::Observer observer(&registry, nullptr);
    observer.profiler = &profiler;
    obs::Observer* const prev = obs::set_default_observer(&observer);
    const int prev_jobs = exec::set_default_jobs(jobs);
    mpm_worst_case(spec, constraints, factory, 4);
    exec::set_default_jobs(prev_jobs);
    obs::set_default_observer(prev);
    for (int p = 0; p < obs::kProfilePhases; ++p) {
      const auto phase = static_cast<obs::ProfilePhase>(p);
      if (jobs == 1) {
        baseline[static_cast<std::size_t>(p)] = profiler.stat(phase).count;
      } else {
        EXPECT_EQ(profiler.stat(phase).count,
                  baseline[static_cast<std::size_t>(p)])
            << "phase " << obs::profile_phase_name(phase) << " at jobs="
            << jobs;
      }
    }
    // The sweep must actually have been profiled.
    EXPECT_GT(profiler.stat(obs::ProfilePhase::kExecTask).count, 0);
    EXPECT_GT(profiler.stat(obs::ProfilePhase::kProcessStep).count, 0);
  }
}

// --- observer --------------------------------------------------------------

TEST(ObserverTest, NullObserverHooksAreNoOps) {
  obs::observe_fault(nullptr, "crash", 0, Time(1));
  SimError err;
  err.code = SimErrorCode::kNoProgress;
  obs::observe_error(nullptr, err);
  obs::observe_watchdog_margins(nullptr, 10, 100, Time(5), Time(50));
}

TEST(ObserverTest, ResolveFallsBackToDefault) {
  ASSERT_EQ(obs::default_observer(), nullptr) << "test leaked a default";
  EXPECT_EQ(obs::resolve(nullptr), nullptr);

  obs::MetricsRegistry reg;
  obs::Observer observer(&reg);
  obs::Observer* previous = obs::set_default_observer(&observer);
  EXPECT_EQ(previous, nullptr);
  EXPECT_EQ(obs::resolve(nullptr), &observer);

  obs::Observer explicit_observer;
  EXPECT_EQ(obs::resolve(&explicit_observer), &explicit_observer);
  obs::set_default_observer(nullptr);
  EXPECT_EQ(obs::resolve(nullptr), nullptr);
}

TEST(ObserverTest, HooksFeedTheNamedInstruments) {
  obs::MetricsRegistry reg;
  obs::TraceSink sink;
  obs::Observer observer(&reg, &sink);
  ASSERT_NE(observer.faults_injected, nullptr);

  obs::observe_fault(&observer, "drop", 2, Time(3));
  SimError err;
  err.code = SimErrorCode::kStepLimitExceeded;
  obs::observe_error(&observer, err);
  obs::observe_watchdog_margins(&observer, 25, 100, Time(30), Time(40));

  EXPECT_EQ(reg.counters().at("faults.injected").value(), 1);
  EXPECT_EQ(reg.counters().at("sim.errors").value(), 1);
  EXPECT_EQ(reg.histograms().at("sim.watchdog.step_margin").min(),
            Ratio(3, 4));
  EXPECT_EQ(reg.histograms().at("sim.watchdog.time_margin").min(),
            Ratio(1, 4));
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].name, "fault.drop");
  EXPECT_EQ(sink.events()[0].category, "fault");
  EXPECT_EQ(sink.events()[1].category, "error");
}

// A full experiment run with an observer installed populates the simulator
// and verifier metrics; the same run with none leaves no trace of the obs
// layer (the zero-observer contract the hot path is built around).
TEST(ObserverTest, ExperimentRunPopulatesMetricsOnlyWhenObserved) {
  ASSERT_EQ(obs::default_observer(), nullptr);
  const ProblemSpec spec{3, 3, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(5));
  SporadicMpmFactory factory;

  // Unobserved run: nothing installed, nothing recorded anywhere.
  {
    FixedPeriodScheduler sched(spec.n, Duration(1));
    FixedDelay delay(Duration(5));
    const MpmOutcome out =
        run_mpm_once(spec, constraints, factory, sched, delay);
    EXPECT_TRUE(out.verdict.solves);
  }

  obs::MetricsRegistry reg;
  obs::TraceSink sink;
  obs::Observer observer(&reg, &sink);
  {
    FixedPeriodScheduler sched(spec.n, Duration(1));
    FixedDelay delay(Duration(5));
    const MpmOutcome out = run_mpm_once(spec, constraints, factory, sched,
                                        delay, MpmRunLimits{}, nullptr,
                                        &observer);
    EXPECT_TRUE(out.verdict.solves);
  }
  EXPECT_EQ(reg.counters().at("sim.runs").value(), 1);
  EXPECT_GT(reg.counters().at("sim.steps").value(), 0);
  EXPECT_GT(reg.counters().at("sim.messages.delivered").value(), 0);
  EXPECT_EQ(reg.counters().at("verify.runs").value(), 1);
  EXPECT_GE(reg.counters().at("verify.sessions").value(), spec.s);
  EXPECT_EQ(reg.histograms().at("verify.termination_time").count(), 1);
  bool saw_run_span = false, saw_verify_span = false;
  for (const obs::TraceEvent& ev : sink.events()) {
    saw_run_span = saw_run_span || ev.name == "mpm.run";
    saw_verify_span = saw_verify_span || ev.name == "verify.run";
  }
  EXPECT_TRUE(saw_run_span);
  EXPECT_TRUE(saw_verify_span);
}

// --- bench records ---------------------------------------------------------

class BenchRecordTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sesp_obs_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    ::setenv("SESP_BENCH_JSON_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    ::unsetenv("SESP_BENCH_JSON_DIR");
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
};

obs::PerfRow sample_row(bool ok) {
  obs::PerfRow row;
  row.cell = "s=2 n=2";
  row.measure = "time";
  row.lower = Ratio(3, 2);
  row.measured = Ratio(2);
  row.upper = Ratio(3);
  row.solved = ok;
  row.admissible = true;
  row.upper_ok = ok;
  row.lower_reached = true;
  return row;
}

TEST_F(BenchRecordTest, FinishWritesValidatedRecord) {
  {
    obs::BenchRecorder recorder("unit");
    recorder.add_row(sample_row(true));
    recorder.note("mode", std::string("test"));
    recorder.note("reps", std::int64_t{3});
    recorder.note("rate", 1.5);
    EXPECT_EQ(recorder.finish(true), 0);
  }
  std::ifstream in(dir_ / "BENCH_unit.json");
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  EXPECT_TRUE(obs::validate_bench_record(buf.str(), &error)) << error;
  const auto v = obs::parse_json(buf.str());
  ASSERT_TRUE(v);
  EXPECT_EQ(v->find("schema")->string, "sesp-bench/2");
  EXPECT_EQ(v->find("bench")->string, "unit");
  EXPECT_TRUE(v->find("ok")->boolean);
  ASSERT_EQ(v->find("rows")->array.size(), 1u);
  const obs::JsonValue& row = v->find("rows")->array[0];
  EXPECT_EQ(row.find("lower")->string, "3/2");
  EXPECT_DOUBLE_EQ(row.find("lower_approx")->number, 1.5);
  EXPECT_TRUE(row.find("upper_ok")->boolean);
  EXPECT_EQ(v->find("notes")->find("mode")->string, "test");
  EXPECT_EQ(v->find("notes")->find("reps")->as_int64(), 3);
  ASSERT_TRUE(v->find("metrics"));
  // /2 always carries the profile section (all-zero counts when the
  // profiler saw nothing — SESP_BENCH_PROFILE=0 included).
  const obs::JsonValue* profile = v->find("profile");
  ASSERT_TRUE(profile);
  EXPECT_TRUE(profile->is_object());
  ASSERT_TRUE(profile->find("sim.step"));
}

TEST_F(BenchRecordTest, FirstFinishWins) {
  obs::BenchRecorder recorder("unit_twice");
  EXPECT_EQ(recorder.finish(false), 1);
  EXPECT_EQ(recorder.finish(true), 1);  // still the first verdict
  std::ifstream in(dir_ / "BENCH_unit_twice.json");
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto v = obs::parse_json(buf.str());
  ASSERT_TRUE(v);
  EXPECT_FALSE(v->find("ok")->boolean);
}

TEST_F(BenchRecordTest, RecorderRestoresPreviousDefaultObserver) {
  ASSERT_EQ(obs::default_observer(), nullptr);
  {
    obs::BenchRecorder recorder("unit_scope");
    EXPECT_EQ(obs::default_observer(), &recorder.observer());
    recorder.finish(true);
  }
  EXPECT_EQ(obs::default_observer(), nullptr);
}

TEST_F(BenchRecordTest, AggregateDerivesVerdictFromStructuredFields) {
  obs::BenchRecorder good("agg_good");
  good.add_row(sample_row(true));
  obs::BenchRecorder bad("agg_bad");
  bad.add_row(sample_row(false));

  const obs::BenchAggregate agg = obs::aggregate_bench_records(
      {{"good.json", good.render(true)},
       {"bad.json", bad.render(false)},
       {"broken.json", "{not json"}});
  EXPECT_EQ(agg.records, 2);  // the malformed file never becomes a record
  EXPECT_EQ(agg.failed, 1);
  EXPECT_EQ(agg.malformed, 1);
  EXPECT_FALSE(agg.all_ok());
  ASSERT_EQ(agg.failures.size(), 2u);

  std::string error;
  const auto merged = obs::parse_json(agg.results_json, &error);
  ASSERT_TRUE(merged) << error;
  EXPECT_EQ(merged->find("schema")->string, "sesp-bench-results/1");
  EXPECT_FALSE(merged->find("all_ok")->boolean);
  EXPECT_EQ(merged->find("benches")->array.size(), 2u);

  const obs::BenchAggregate ok_agg =
      obs::aggregate_bench_records({{"good.json", good.render(true)}});
  EXPECT_TRUE(ok_agg.all_ok());

  good.finish(true);
  bad.finish(false);
}

TEST_F(BenchRecordTest, ValidateRejectsWrongSchemaAndMissingFields) {
  std::string error;
  EXPECT_FALSE(obs::validate_bench_record("{\"schema\":\"other/1\"}", &error));
  EXPECT_FALSE(obs::validate_bench_record("[]", &error));
  EXPECT_FALSE(obs::validate_bench_record("", &error));
}

// A record torn by a killed writer is every proper prefix of a valid one;
// the classifier must separate those (recoverable: rerun the bench) from
// mid-text corruption and schema violations (malformed: a real bug).
TEST_F(BenchRecordTest, ClassifySeparatesTruncatedFromMalformed) {
  obs::BenchRecorder recorder("classify");
  recorder.add_row(sample_row(true));
  recorder.note("mode", std::string("test"));
  const std::string full = recorder.render(true);
  recorder.finish(true);

  std::string error;
  EXPECT_EQ(obs::classify_bench_record(full, &error),
            obs::BenchRecordCheck::kValid)
      << error;

  // Cut anywhere strictly inside the payload (before the closing brace of
  // the top-level object): always truncated, never malformed.
  const std::size_t last_brace = full.find_last_of('}');
  ASSERT_NE(last_brace, std::string::npos);
  for (const std::size_t keep :
       {std::size_t{1}, full.size() / 4, full.size() / 2,
        (3 * full.size()) / 4, last_brace}) {
    EXPECT_EQ(obs::classify_bench_record(full.substr(0, keep), &error),
              obs::BenchRecordCheck::kTruncated)
        << "keep=" << keep;
  }
  // The empty file a writer creates and never fills is truncated too.
  EXPECT_EQ(obs::classify_bench_record("", &error),
            obs::BenchRecordCheck::kTruncated);
  EXPECT_EQ(obs::classify_bench_record("  \n", &error),
            obs::BenchRecordCheck::kTruncated);

  // Mid-text corruption parses wrong before the end: malformed.
  std::string corrupt = full;
  corrupt[corrupt.find(':')] = ';';
  EXPECT_EQ(obs::classify_bench_record(corrupt, &error),
            obs::BenchRecordCheck::kMalformed);
  // Complete JSON of the wrong shape: malformed, not truncated.
  EXPECT_EQ(obs::classify_bench_record("{\"schema\":\"other/1\"}", &error),
            obs::BenchRecordCheck::kMalformed);
  EXPECT_EQ(obs::classify_bench_record("[]", &error),
            obs::BenchRecordCheck::kMalformed);
}

TEST_F(BenchRecordTest, AggregateSkipsTruncatedRecordsWithoutFailing) {
  obs::BenchRecorder good("agg_torn_good");
  good.add_row(sample_row(true));
  const std::string full = good.render(true);
  const std::string torn = full.substr(0, full.size() / 2);
  good.finish(true);

  const obs::BenchAggregate agg = obs::aggregate_bench_records(
      {{"good.json", full}, {"torn.json", torn}});
  EXPECT_EQ(agg.records, 1);
  EXPECT_EQ(agg.failed, 0);
  EXPECT_EQ(agg.malformed, 0);
  EXPECT_EQ(agg.truncated, 1);
  ASSERT_EQ(agg.skipped.size(), 1u);
  EXPECT_EQ(agg.skipped[0].rfind("torn.json", 0), 0u) << agg.skipped[0];
  // Truncation degrades the merge (distinct exit code at the tool level)
  // but does not fail it.
  EXPECT_TRUE(agg.all_ok());

  std::string error;
  const auto merged = obs::parse_json(agg.results_json, &error);
  ASSERT_TRUE(merged) << error;
  EXPECT_EQ(merged->find("truncated")->as_int64(), 1);
  ASSERT_EQ(merged->find("skipped")->array.size(), 1u);
  EXPECT_TRUE(merged->find("all_ok")->boolean);

  // All inputs torn: nothing merged, and that cannot count as success.
  const obs::BenchAggregate empty =
      obs::aggregate_bench_records({{"torn.json", torn}});
  EXPECT_EQ(empty.records, 0);
  EXPECT_EQ(empty.truncated, 1);
  EXPECT_FALSE(empty.all_ok());
}

// sesp_bench_merge maps all_ok()+truncated>0 to exit 3 and !all_ok() to
// exit 1; a malformed record must take the failure path even when torn
// records were also skipped, or corruption could hide behind a kill.
TEST_F(BenchRecordTest, MalformedRecordFailsAggregateDespiteTruncation) {
  obs::BenchRecorder good("agg_mixed_good");
  good.add_row(sample_row(true));
  const std::string full = good.render(true);
  const std::string torn = full.substr(0, full.size() / 2);
  std::string corrupt = full;
  corrupt[corrupt.find(':')] = ';';
  good.finish(true);

  const obs::BenchAggregate agg = obs::aggregate_bench_records(
      {{"good.json", full},
       {"torn.json", torn},
       {"corrupt.json", corrupt}});
  EXPECT_EQ(agg.records, 1);
  EXPECT_EQ(agg.failed, 0);
  EXPECT_EQ(agg.truncated, 1);
  EXPECT_EQ(agg.malformed, 1);
  EXPECT_FALSE(agg.all_ok());
  ASSERT_EQ(agg.failures.size(), 1u);
  EXPECT_EQ(agg.failures[0].rfind("corrupt.json", 0), 0u)
      << agg.failures[0];
}

// Notes are emitted through the one JsonWriter pass, not spliced into the
// rendered text afterwards — so a row or note whose *value* happens to
// contain the old splice marker ("notes":{}) can no longer corrupt the
// record, and every note type round-trips with full escaping.
TEST_F(BenchRecordTest, MarkerLookalikeValuesCannotCorruptTheRecord) {
  obs::BenchRecorder rec("marker_lookalike");
  obs::PerfRow row = sample_row(true);
  row.cell = "evil \"notes\":{} cell";
  rec.add_row(row);
  rec.note("payload", std::string("also \"notes\":{} here \\ \n"));
  rec.note("count", std::int64_t{-7});
  rec.note("ratio", 0.1);  // no exact double rendering surprises
  const std::string text = rec.render(true);
  rec.finish(true);

  std::string error;
  ASSERT_TRUE(obs::validate_bench_record(text, &error)) << error;
  const auto v = obs::parse_json(text, &error);
  ASSERT_TRUE(v) << error;
  EXPECT_EQ(v->find("rows")->array[0].find("cell")->string,
            "evil \"notes\":{} cell");
  const obs::JsonValue* notes = v->find("notes");
  ASSERT_TRUE(notes && notes->is_object());
  EXPECT_EQ(notes->find("payload")->string, "also \"notes\":{} here \\ \n");
  EXPECT_EQ(notes->find("count")->as_int64(), -7);
  EXPECT_DOUBLE_EQ(notes->find("ratio")->number, 0.1);
  // Member order is insertion order — the schema contract for notes.
  ASSERT_EQ(notes->object.size(), 3u);
  EXPECT_EQ(notes->object[0].first, "payload");
  EXPECT_EQ(notes->object[2].first, "ratio");
}

// --- bench history / regression gate ---------------------------------------

TEST_F(BenchRecordTest, PerfEntriesFoldFromMergedResults) {
  obs::BenchRecorder rec("perf_fold");
  rec.add_row(sample_row(true));
  rec.profiler().record(obs::ProfilePhase::kProcessStep, 1234);
  const obs::BenchAggregate agg =
      obs::aggregate_bench_records({{"perf_fold.json", rec.render(true)}});
  rec.finish(true);

  std::vector<obs::PerfEntry> entries;
  std::string error;
  ASSERT_TRUE(obs::entries_from_results(agg.results_json, "abc1234", 1000,
                                        false, &entries, &error))
      << error;
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].bench, "perf_fold");
  EXPECT_EQ(entries[0].commit, "abc1234");
  EXPECT_TRUE(entries[0].ok);
  ASSERT_EQ(entries[0].profile.size(), 1u);
  EXPECT_EQ(entries[0].profile[0].name, "sim.step");
  EXPECT_EQ(entries[0].profile[0].count, 1);
  EXPECT_EQ(entries[0].profile[0].total_ns, 1234);

  // Ledger line round-trips.
  const std::string line = obs::render_perf_entry(entries[0]);
  obs::PerfEntry parsed;
  ASSERT_TRUE(obs::parse_perf_entry(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.bench, entries[0].bench);
  EXPECT_EQ(parsed.steps_per_sec, entries[0].steps_per_sec);
  ASSERT_EQ(parsed.profile.size(), 1u);
  EXPECT_EQ(parsed.profile[0].total_ns, 1234);

  // And a ledger text with a torn last line loads the intact entries.
  std::int64_t skipped = 0;
  const std::vector<obs::PerfEntry> loaded = obs::parse_perf_ledger(
      line + "\n" + line.substr(0, line.size() / 2), &skipped);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_EQ(skipped, 1);
}

TEST(PerfHistoryTest, GateFlagsSlowdownAndToleratesNoise) {
  const auto entry = [](const char* bench, double rate, bool ok = true) {
    obs::PerfEntry e;
    e.bench = bench;
    e.ok = ok;
    e.steps_per_sec = rate;
    return e;
  };
  obs::PerfCheckOptions opt;

  // Steady series, steady tail: pass.
  std::vector<obs::PerfEntry> entries;
  for (const double r : {1.00e6, 1.03e6, 0.98e6, 1.01e6, 1.00e6})
    entries.push_back(entry("a", r));
  auto checks = obs::check_history(entries, opt);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_FALSE(checks[0].regression);
  EXPECT_EQ(checks[0].samples, 4);

  // Injected 2x slowdown: flagged.
  entries.push_back(entry("a", 0.5e6));
  checks = obs::check_history(entries, opt);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_TRUE(checks[0].regression);

  // A failing (ok=false) entry is excluded from baselines but flags
  // itself when newest.
  entries.push_back(entry("a", 1.0e6, /*ok=*/false));
  checks = obs::check_history(entries, opt);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_TRUE(checks[0].regression);

  // Too-short series never gates.
  std::vector<obs::PerfEntry> young{entry("b", 1.0e6), entry("b", 0.1e6)};
  checks = obs::check_history(young, opt);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_FALSE(checks[0].regression);
  EXPECT_EQ(checks[0].samples, 1);

  // Quick and full runs form separate series.
  std::vector<obs::PerfEntry> mixed;
  for (int i = 0; i < 4; ++i) mixed.push_back(entry("c", 1.0e6));
  obs::PerfEntry quick = entry("c", 0.2e6);  // slow, but its own series
  quick.quick = true;
  mixed.push_back(quick);
  checks = obs::check_history(mixed, opt);
  ASSERT_EQ(checks.size(), 2u);
  EXPECT_FALSE(checks[0].regression);
  EXPECT_FALSE(checks[1].regression);  // 0 quick priors — pass, but loudly
}

TEST(PerfHistoryTest, QuickFlagFlipReportsNoBaseline) {
  const auto entry = [](const char* bench, double rate, bool quick) {
    obs::PerfEntry e;
    e.bench = bench;
    e.ok = true;
    e.quick = quick;
    e.steps_per_sec = rate;
    return e;
  };
  obs::PerfCheckOptions opt;

  // Full-mode history, then a single quick-mode candidate: its series has
  // no priors at all, and the verdict must say "no baseline" by name — a
  // flipped recording mode must not read like a healthy gated pass.
  std::vector<obs::PerfEntry> flipped;
  for (const double r : {1.00e6, 1.01e6, 0.99e6, 1.00e6})
    flipped.push_back(entry("faults", r, /*quick=*/false));
  flipped.push_back(entry("faults", 0.3e6, /*quick=*/true));
  auto checks = obs::check_history(flipped, opt);
  ASSERT_EQ(checks.size(), 2u);
  EXPECT_FALSE(checks[1].regression);
  EXPECT_TRUE(checks[1].quick);
  EXPECT_EQ(checks[1].samples, 0);
  EXPECT_NE(checks[1].note.find("no baseline"), std::string::npos)
      << checks[1].note;
  EXPECT_NE(checks[1].note.find("quick=false"), std::string::npos)
      << checks[1].note;

  // The reverse flip (quick history, full candidate) names the other
  // flavor too.
  std::vector<obs::PerfEntry> reverse;
  for (const double r : {1.00e6, 1.01e6})
    reverse.push_back(entry("faults", r, /*quick=*/true));
  reverse.push_back(entry("faults", 1.0e6, /*quick=*/false));
  checks = obs::check_history(reverse, opt);
  ASSERT_EQ(checks.size(), 2u);
  const obs::PerfCheck& full = checks[1];
  EXPECT_FALSE(full.quick);
  EXPECT_NE(full.note.find("no baseline"), std::string::npos) << full.note;
  EXPECT_NE(full.note.find("quick=true"), std::string::npos) << full.note;

  // A genuinely young series (same flavor throughout) keeps the plain
  // short-series note — "no baseline" is reserved for the flag flip.
  std::vector<obs::PerfEntry> young{entry("young", 1.0e6, false),
                                    entry("young", 0.9e6, false)};
  checks = obs::check_history(young, opt);
  ASSERT_EQ(checks.size(), 1u);
  EXPECT_EQ(checks[0].note.find("no baseline"), std::string::npos)
      << checks[0].note;
  EXPECT_NE(checks[0].note.find("prior sample"), std::string::npos)
      << checks[0].note;
}

// --- report / summary JSON mirrors -----------------------------------------

TEST(ReportJsonTest, WriteJsonMatchesRenderedTable) {
  BoundReport report("json mirror");
  WorstCase wc;
  wc.runs = 3;
  wc.all_solved = true;
  wc.all_admissible = true;
  wc.max_termination = Ratio(7, 2);
  report.add_time_row("s=2 n=2", Ratio(3), wc, Ratio(4));
  wc.all_solved = false;
  wc.max_termination = Ratio(9);
  report.add_time_row("s=4 n=2", Ratio(3), wc, Ratio(4));
  EXPECT_FALSE(report.all_ok());

  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    report.write_json(w);
  }
  const auto v = obs::parse_json(os.str());
  ASSERT_TRUE(v);
  EXPECT_EQ(v->find("title")->string, "json mirror");
  EXPECT_FALSE(v->find("all_ok")->boolean);
  ASSERT_EQ(v->find("rows")->array.size(), report.rows().size());
  for (std::size_t i = 0; i < report.rows().size(); ++i) {
    const BoundRow& row = report.rows()[i];
    const obs::JsonValue& j = v->find("rows")->array[i];
    EXPECT_EQ(j.find("cell")->string, row.cell);
    EXPECT_EQ(j.find("lower")->string, row.lower.to_string());
    EXPECT_EQ(j.find("measured")->string, row.measured.to_string());
    EXPECT_EQ(j.find("upper")->string, row.upper.to_string());
    EXPECT_EQ(j.find("solved")->boolean, row.solved);
    EXPECT_EQ(j.find("upper_ok")->boolean, row.upper_ok());
    EXPECT_EQ(j.find("lower_reached")->boolean, row.lower_reached());
  }
  // The structured verdict and the rendered verdict line must agree.
  std::ostringstream table;
  report.print(table);
  EXPECT_NE(table.str().find("[FAIL]"), std::string::npos);
}

TEST(ReportJsonTest, AppendRowsMirrorsIntoBenchRecorder) {
  BoundReport report("recorder mirror");
  WorstCase wc;
  wc.all_solved = true;
  wc.all_admissible = true;
  wc.max_termination = Ratio(2);
  report.add_time_row("cell", Ratio(1), wc, Ratio(2));

  ::setenv("SESP_BENCH_JSON_DIR", std::filesystem::temp_directory_path().c_str(),
           1);
  obs::BenchRecorder recorder("mirror_unit");
  report.append_rows(recorder);
  const std::string text = recorder.render(report.all_ok());
  recorder.finish(report.all_ok());
  ::unsetenv("SESP_BENCH_JSON_DIR");
  std::error_code ec;
  std::filesystem::remove(
      std::filesystem::temp_directory_path() / "BENCH_mirror_unit.json", ec);

  const auto v = obs::parse_json(text);
  ASSERT_TRUE(v);
  ASSERT_EQ(v->find("rows")->array.size(), 1u);
  EXPECT_EQ(v->find("rows")->array[0].find("cell")->string, "cell");
  EXPECT_TRUE(v->find("ok")->boolean);
}

TEST(ReportJsonTest, SummaryJsonMatchesExactExtremes) {
  Summary summary;
  summary.add(Ratio(1, 2));
  summary.add(Ratio(5, 2));
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    summary.write_json(w);
  }
  const auto v = obs::parse_json(os.str());
  ASSERT_TRUE(v);
  EXPECT_EQ(v->find("count")->as_int64(), 2);
  EXPECT_EQ(v->find("min")->string, "1/2");
  EXPECT_EQ(v->find("max")->string, "5/2");
  EXPECT_DOUBLE_EQ(v->find("mean")->number, 1.5);
}

}  // namespace
}  // namespace sesp
