// Tests for the observability layer: metric instrument semantics, span
// nesting, JSON/JSONL round-trips through the in-tree parser, the
// zero-observer no-op contract, bench perf records (BENCH_*.json) and their
// aggregation, and the BoundReport / Summary JSON mirrors of the rendered
// tables.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "analysis/report.hpp"
#include "obs/bench_record.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "sim/experiment.hpp"
#include "util/stats.hpp"

namespace sesp {
namespace {

// --- metrics ---------------------------------------------------------------

TEST(MetricsTest, CounterIncrements) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(MetricsTest, GaugeTracksHighWaterMark) {
  obs::Gauge g;
  g.set(3);
  g.set(10);
  g.set(4);
  EXPECT_EQ(g.value(), 4);
  EXPECT_EQ(g.max(), 10);
}

TEST(MetricsTest, HistogramKeepsExactExtremes) {
  obs::Histogram h;
  EXPECT_TRUE(h.empty());
  h.observe(Ratio(7, 2));
  h.observe(Ratio(1, 3));
  h.observe(Ratio(5));
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.min(), Ratio(1, 3));
  EXPECT_EQ(h.max(), Ratio(5));
  EXPECT_NEAR(h.mean(), (3.5 + 1.0 / 3.0 + 5.0) / 3.0, 1e-12);
  std::int64_t total = 0;
  for (const std::int64_t b : h.buckets()) total += b;
  EXPECT_EQ(total, 3);
}

TEST(MetricsTest, RegistryHandlesAreStable) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("sim.steps");
  reg.counter("zzz.other");  // later insertions must not move `a`
  obs::Counter& b = reg.counter("sim.steps");
  EXPECT_EQ(&a, &b);
  a.inc(5);
  EXPECT_EQ(reg.counters().at("sim.steps").value(), 5);
}

TEST(MetricsTest, JsonlLinesParse) {
  obs::MetricsRegistry reg;
  reg.counter("sim.steps").inc(7);
  reg.gauge("sim.pending.depth").set(3);
  reg.histogram("verify.termination_time").observe(Ratio(9, 2));
  std::ostringstream os;
  reg.write_jsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    std::string error;
    const auto v = obs::parse_json(line, &error);
    ASSERT_TRUE(v) << error << " in: " << line;
    ASSERT_TRUE(v->find("metric"));
    ++parsed;
  }
  EXPECT_EQ(parsed, 3);
}

// --- json ------------------------------------------------------------------

TEST(JsonTest, WriterParserRoundTrip) {
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    w.begin_object();
    w.field("name", "quote \" backslash \\ tab \t");
    w.field("ratio", Ratio(7, 2));
    w.field("count", std::int64_t{42});
    w.field("ok", true);
    w.key("list");
    w.begin_array();
    w.value(1.5);
    w.null_value();
    w.end_array();
    w.end_object();
  }
  std::string error;
  const auto v = obs::parse_json(os.str(), &error);
  ASSERT_TRUE(v) << error;
  EXPECT_EQ(v->find("name")->string, "quote \" backslash \\ tab \t");
  EXPECT_EQ(v->find("ratio")->string, "7/2");
  EXPECT_EQ(v->find("count")->as_int64(), 42);
  EXPECT_TRUE(v->find("ok")->boolean);
  ASSERT_EQ(v->find("list")->array.size(), 2u);
  EXPECT_DOUBLE_EQ(v->find("list")->array[0].number, 1.5);
  EXPECT_TRUE(v->find("list")->array[1].is_null());
}

TEST(JsonTest, RejectsTrailingGarbage) {
  std::string error;
  EXPECT_FALSE(obs::parse_json("{} x", &error));
  EXPECT_FALSE(obs::parse_json("{\"a\":}", &error));
}

// --- tracing ---------------------------------------------------------------

TEST(TraceTest, SpansNestAndRecordDepth) {
  obs::TraceSink sink;
  {
    obs::Span outer(&sink, "outer", "sim");
    {
      obs::Span inner(&sink, "inner", "sim");
      sink.instant("fault.crash", "fault");
    }
  }
  ASSERT_EQ(sink.events().size(), 3u);
  // Events are recorded at close: instant, inner, outer.
  EXPECT_EQ(sink.events()[0].name, "fault.crash");
  EXPECT_EQ(sink.events()[0].depth, 2);
  EXPECT_EQ(sink.events()[1].name, "inner");
  EXPECT_EQ(sink.events()[1].depth, 1);
  EXPECT_EQ(sink.events()[2].name, "outer");
  EXPECT_EQ(sink.events()[2].depth, 0);
  EXPECT_EQ(sink.depth(), 0);
}

TEST(TraceTest, NullSinkSpanIsANoOp) {
  obs::Span span(nullptr, "nothing", "sim");
  span.set_args(obs::args_object({obs::arg_int("x", 1)}));
  // Nothing to assert beyond "does not crash".
}

TEST(TraceTest, EventCapCountsDrops) {
  obs::TraceSink sink;
  sink.set_max_events(2);
  for (int i = 0; i < 5; ++i) sink.instant("e", "sim");
  EXPECT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.dropped(), 3);
}

TEST(TraceTest, JsonlRoundTripsThroughParser) {
  obs::TraceSink sink;
  {
    obs::Span span(&sink, "mpm.run", "sim",
                   obs::args_object({obs::arg_int("n", 4),
                                     obs::arg_str("adv", "worst \"case\"")}));
  }
  sink.instant("error.no_progress", "error");
  std::ostringstream os;
  sink.write_jsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    std::string error;
    const auto v = obs::parse_json(line, &error);
    ASSERT_TRUE(v) << error << " in: " << line;
    ASSERT_TRUE(v->find("name"));
    ASSERT_TRUE(v->find("ph"));
    if (v->find("name")->string == "mpm.run") {
      const obs::JsonValue* args = v->find("args");
      ASSERT_TRUE(args);
      EXPECT_EQ(args->find("n")->as_int64(), 4);
      EXPECT_EQ(args->find("adv")->string, "worst \"case\"");
    }
    ++parsed;
  }
  EXPECT_EQ(parsed, 2);
}

// --- observer --------------------------------------------------------------

TEST(ObserverTest, NullObserverHooksAreNoOps) {
  obs::observe_fault(nullptr, "crash", 0, Time(1));
  SimError err;
  err.code = SimErrorCode::kNoProgress;
  obs::observe_error(nullptr, err);
  obs::observe_watchdog_margins(nullptr, 10, 100, Time(5), Time(50));
}

TEST(ObserverTest, ResolveFallsBackToDefault) {
  ASSERT_EQ(obs::default_observer(), nullptr) << "test leaked a default";
  EXPECT_EQ(obs::resolve(nullptr), nullptr);

  obs::MetricsRegistry reg;
  obs::Observer observer(&reg);
  obs::Observer* previous = obs::set_default_observer(&observer);
  EXPECT_EQ(previous, nullptr);
  EXPECT_EQ(obs::resolve(nullptr), &observer);

  obs::Observer explicit_observer;
  EXPECT_EQ(obs::resolve(&explicit_observer), &explicit_observer);
  obs::set_default_observer(nullptr);
  EXPECT_EQ(obs::resolve(nullptr), nullptr);
}

TEST(ObserverTest, HooksFeedTheNamedInstruments) {
  obs::MetricsRegistry reg;
  obs::TraceSink sink;
  obs::Observer observer(&reg, &sink);
  ASSERT_NE(observer.faults_injected, nullptr);

  obs::observe_fault(&observer, "drop", 2, Time(3));
  SimError err;
  err.code = SimErrorCode::kStepLimitExceeded;
  obs::observe_error(&observer, err);
  obs::observe_watchdog_margins(&observer, 25, 100, Time(30), Time(40));

  EXPECT_EQ(reg.counters().at("faults.injected").value(), 1);
  EXPECT_EQ(reg.counters().at("sim.errors").value(), 1);
  EXPECT_EQ(reg.histograms().at("sim.watchdog.step_margin").min(),
            Ratio(3, 4));
  EXPECT_EQ(reg.histograms().at("sim.watchdog.time_margin").min(),
            Ratio(1, 4));
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].name, "fault.drop");
  EXPECT_EQ(sink.events()[0].category, "fault");
  EXPECT_EQ(sink.events()[1].category, "error");
}

// A full experiment run with an observer installed populates the simulator
// and verifier metrics; the same run with none leaves no trace of the obs
// layer (the zero-observer contract the hot path is built around).
TEST(ObserverTest, ExperimentRunPopulatesMetricsOnlyWhenObserved) {
  ASSERT_EQ(obs::default_observer(), nullptr);
  const ProblemSpec spec{3, 3, 2};
  const auto constraints =
      TimingConstraints::sporadic(Duration(1), Duration(1), Duration(5));
  SporadicMpmFactory factory;

  // Unobserved run: nothing installed, nothing recorded anywhere.
  {
    FixedPeriodScheduler sched(spec.n, Duration(1));
    FixedDelay delay(Duration(5));
    const MpmOutcome out =
        run_mpm_once(spec, constraints, factory, sched, delay);
    EXPECT_TRUE(out.verdict.solves);
  }

  obs::MetricsRegistry reg;
  obs::TraceSink sink;
  obs::Observer observer(&reg, &sink);
  {
    FixedPeriodScheduler sched(spec.n, Duration(1));
    FixedDelay delay(Duration(5));
    const MpmOutcome out = run_mpm_once(spec, constraints, factory, sched,
                                        delay, MpmRunLimits{}, nullptr,
                                        &observer);
    EXPECT_TRUE(out.verdict.solves);
  }
  EXPECT_EQ(reg.counters().at("sim.runs").value(), 1);
  EXPECT_GT(reg.counters().at("sim.steps").value(), 0);
  EXPECT_GT(reg.counters().at("sim.messages.delivered").value(), 0);
  EXPECT_EQ(reg.counters().at("verify.runs").value(), 1);
  EXPECT_GE(reg.counters().at("verify.sessions").value(), spec.s);
  EXPECT_EQ(reg.histograms().at("verify.termination_time").count(), 1);
  bool saw_run_span = false, saw_verify_span = false;
  for (const obs::TraceEvent& ev : sink.events()) {
    saw_run_span = saw_run_span || ev.name == "mpm.run";
    saw_verify_span = saw_verify_span || ev.name == "verify.run";
  }
  EXPECT_TRUE(saw_run_span);
  EXPECT_TRUE(saw_verify_span);
}

// --- bench records ---------------------------------------------------------

class BenchRecordTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sesp_obs_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    ::setenv("SESP_BENCH_JSON_DIR", dir_.c_str(), 1);
  }
  void TearDown() override {
    ::unsetenv("SESP_BENCH_JSON_DIR");
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::filesystem::path dir_;
};

obs::PerfRow sample_row(bool ok) {
  obs::PerfRow row;
  row.cell = "s=2 n=2";
  row.measure = "time";
  row.lower = Ratio(3, 2);
  row.measured = Ratio(2);
  row.upper = Ratio(3);
  row.solved = ok;
  row.admissible = true;
  row.upper_ok = ok;
  row.lower_reached = true;
  return row;
}

TEST_F(BenchRecordTest, FinishWritesValidatedRecord) {
  {
    obs::BenchRecorder recorder("unit");
    recorder.add_row(sample_row(true));
    recorder.note("mode", std::string("test"));
    recorder.note("reps", std::int64_t{3});
    recorder.note("rate", 1.5);
    EXPECT_EQ(recorder.finish(true), 0);
  }
  std::ifstream in(dir_ / "BENCH_unit.json");
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  EXPECT_TRUE(obs::validate_bench_record(buf.str(), &error)) << error;
  const auto v = obs::parse_json(buf.str());
  ASSERT_TRUE(v);
  EXPECT_EQ(v->find("schema")->string, "sesp-bench/1");
  EXPECT_EQ(v->find("bench")->string, "unit");
  EXPECT_TRUE(v->find("ok")->boolean);
  ASSERT_EQ(v->find("rows")->array.size(), 1u);
  const obs::JsonValue& row = v->find("rows")->array[0];
  EXPECT_EQ(row.find("lower")->string, "3/2");
  EXPECT_DOUBLE_EQ(row.find("lower_approx")->number, 1.5);
  EXPECT_TRUE(row.find("upper_ok")->boolean);
  EXPECT_EQ(v->find("notes")->find("mode")->string, "test");
  EXPECT_EQ(v->find("notes")->find("reps")->as_int64(), 3);
  ASSERT_TRUE(v->find("metrics"));
}

TEST_F(BenchRecordTest, FirstFinishWins) {
  obs::BenchRecorder recorder("unit_twice");
  EXPECT_EQ(recorder.finish(false), 1);
  EXPECT_EQ(recorder.finish(true), 1);  // still the first verdict
  std::ifstream in(dir_ / "BENCH_unit_twice.json");
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto v = obs::parse_json(buf.str());
  ASSERT_TRUE(v);
  EXPECT_FALSE(v->find("ok")->boolean);
}

TEST_F(BenchRecordTest, RecorderRestoresPreviousDefaultObserver) {
  ASSERT_EQ(obs::default_observer(), nullptr);
  {
    obs::BenchRecorder recorder("unit_scope");
    EXPECT_EQ(obs::default_observer(), &recorder.observer());
    recorder.finish(true);
  }
  EXPECT_EQ(obs::default_observer(), nullptr);
}

TEST_F(BenchRecordTest, AggregateDerivesVerdictFromStructuredFields) {
  obs::BenchRecorder good("agg_good");
  good.add_row(sample_row(true));
  obs::BenchRecorder bad("agg_bad");
  bad.add_row(sample_row(false));

  const obs::BenchAggregate agg = obs::aggregate_bench_records(
      {{"good.json", good.render(true)},
       {"bad.json", bad.render(false)},
       {"broken.json", "{not json"}});
  EXPECT_EQ(agg.records, 2);  // the malformed file never becomes a record
  EXPECT_EQ(agg.failed, 1);
  EXPECT_EQ(agg.malformed, 1);
  EXPECT_FALSE(agg.all_ok());
  ASSERT_EQ(agg.failures.size(), 2u);

  std::string error;
  const auto merged = obs::parse_json(agg.results_json, &error);
  ASSERT_TRUE(merged) << error;
  EXPECT_EQ(merged->find("schema")->string, "sesp-bench-results/1");
  EXPECT_FALSE(merged->find("all_ok")->boolean);
  EXPECT_EQ(merged->find("benches")->array.size(), 2u);

  const obs::BenchAggregate ok_agg =
      obs::aggregate_bench_records({{"good.json", good.render(true)}});
  EXPECT_TRUE(ok_agg.all_ok());

  good.finish(true);
  bad.finish(false);
}

TEST_F(BenchRecordTest, ValidateRejectsWrongSchemaAndMissingFields) {
  std::string error;
  EXPECT_FALSE(obs::validate_bench_record("{\"schema\":\"other/1\"}", &error));
  EXPECT_FALSE(obs::validate_bench_record("[]", &error));
  EXPECT_FALSE(obs::validate_bench_record("", &error));
}

// A record torn by a killed writer is every proper prefix of a valid one;
// the classifier must separate those (recoverable: rerun the bench) from
// mid-text corruption and schema violations (malformed: a real bug).
TEST_F(BenchRecordTest, ClassifySeparatesTruncatedFromMalformed) {
  obs::BenchRecorder recorder("classify");
  recorder.add_row(sample_row(true));
  recorder.note("mode", std::string("test"));
  const std::string full = recorder.render(true);
  recorder.finish(true);

  std::string error;
  EXPECT_EQ(obs::classify_bench_record(full, &error),
            obs::BenchRecordCheck::kValid)
      << error;

  // Cut anywhere strictly inside the payload (before the closing brace of
  // the top-level object): always truncated, never malformed.
  const std::size_t last_brace = full.find_last_of('}');
  ASSERT_NE(last_brace, std::string::npos);
  for (const std::size_t keep :
       {std::size_t{1}, full.size() / 4, full.size() / 2,
        (3 * full.size()) / 4, last_brace}) {
    EXPECT_EQ(obs::classify_bench_record(full.substr(0, keep), &error),
              obs::BenchRecordCheck::kTruncated)
        << "keep=" << keep;
  }
  // The empty file a writer creates and never fills is truncated too.
  EXPECT_EQ(obs::classify_bench_record("", &error),
            obs::BenchRecordCheck::kTruncated);
  EXPECT_EQ(obs::classify_bench_record("  \n", &error),
            obs::BenchRecordCheck::kTruncated);

  // Mid-text corruption parses wrong before the end: malformed.
  std::string corrupt = full;
  corrupt[corrupt.find(':')] = ';';
  EXPECT_EQ(obs::classify_bench_record(corrupt, &error),
            obs::BenchRecordCheck::kMalformed);
  // Complete JSON of the wrong shape: malformed, not truncated.
  EXPECT_EQ(obs::classify_bench_record("{\"schema\":\"other/1\"}", &error),
            obs::BenchRecordCheck::kMalformed);
  EXPECT_EQ(obs::classify_bench_record("[]", &error),
            obs::BenchRecordCheck::kMalformed);
}

TEST_F(BenchRecordTest, AggregateSkipsTruncatedRecordsWithoutFailing) {
  obs::BenchRecorder good("agg_torn_good");
  good.add_row(sample_row(true));
  const std::string full = good.render(true);
  const std::string torn = full.substr(0, full.size() / 2);
  good.finish(true);

  const obs::BenchAggregate agg = obs::aggregate_bench_records(
      {{"good.json", full}, {"torn.json", torn}});
  EXPECT_EQ(agg.records, 1);
  EXPECT_EQ(agg.failed, 0);
  EXPECT_EQ(agg.malformed, 0);
  EXPECT_EQ(agg.truncated, 1);
  ASSERT_EQ(agg.skipped.size(), 1u);
  EXPECT_EQ(agg.skipped[0].rfind("torn.json", 0), 0u) << agg.skipped[0];
  // Truncation degrades the merge (distinct exit code at the tool level)
  // but does not fail it.
  EXPECT_TRUE(agg.all_ok());

  std::string error;
  const auto merged = obs::parse_json(agg.results_json, &error);
  ASSERT_TRUE(merged) << error;
  EXPECT_EQ(merged->find("truncated")->as_int64(), 1);
  ASSERT_EQ(merged->find("skipped")->array.size(), 1u);
  EXPECT_TRUE(merged->find("all_ok")->boolean);

  // All inputs torn: nothing merged, and that cannot count as success.
  const obs::BenchAggregate empty =
      obs::aggregate_bench_records({{"torn.json", torn}});
  EXPECT_EQ(empty.records, 0);
  EXPECT_EQ(empty.truncated, 1);
  EXPECT_FALSE(empty.all_ok());
}

// sesp_bench_merge maps all_ok()+truncated>0 to exit 3 and !all_ok() to
// exit 1; a malformed record must take the failure path even when torn
// records were also skipped, or corruption could hide behind a kill.
TEST_F(BenchRecordTest, MalformedRecordFailsAggregateDespiteTruncation) {
  obs::BenchRecorder good("agg_mixed_good");
  good.add_row(sample_row(true));
  const std::string full = good.render(true);
  const std::string torn = full.substr(0, full.size() / 2);
  std::string corrupt = full;
  corrupt[corrupt.find(':')] = ';';
  good.finish(true);

  const obs::BenchAggregate agg = obs::aggregate_bench_records(
      {{"good.json", full},
       {"torn.json", torn},
       {"corrupt.json", corrupt}});
  EXPECT_EQ(agg.records, 1);
  EXPECT_EQ(agg.failed, 0);
  EXPECT_EQ(agg.truncated, 1);
  EXPECT_EQ(agg.malformed, 1);
  EXPECT_FALSE(agg.all_ok());
  ASSERT_EQ(agg.failures.size(), 1u);
  EXPECT_EQ(agg.failures[0].rfind("corrupt.json", 0), 0u)
      << agg.failures[0];
}

// --- report / summary JSON mirrors -----------------------------------------

TEST(ReportJsonTest, WriteJsonMatchesRenderedTable) {
  BoundReport report("json mirror");
  WorstCase wc;
  wc.runs = 3;
  wc.all_solved = true;
  wc.all_admissible = true;
  wc.max_termination = Ratio(7, 2);
  report.add_time_row("s=2 n=2", Ratio(3), wc, Ratio(4));
  wc.all_solved = false;
  wc.max_termination = Ratio(9);
  report.add_time_row("s=4 n=2", Ratio(3), wc, Ratio(4));
  EXPECT_FALSE(report.all_ok());

  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    report.write_json(w);
  }
  const auto v = obs::parse_json(os.str());
  ASSERT_TRUE(v);
  EXPECT_EQ(v->find("title")->string, "json mirror");
  EXPECT_FALSE(v->find("all_ok")->boolean);
  ASSERT_EQ(v->find("rows")->array.size(), report.rows().size());
  for (std::size_t i = 0; i < report.rows().size(); ++i) {
    const BoundRow& row = report.rows()[i];
    const obs::JsonValue& j = v->find("rows")->array[i];
    EXPECT_EQ(j.find("cell")->string, row.cell);
    EXPECT_EQ(j.find("lower")->string, row.lower.to_string());
    EXPECT_EQ(j.find("measured")->string, row.measured.to_string());
    EXPECT_EQ(j.find("upper")->string, row.upper.to_string());
    EXPECT_EQ(j.find("solved")->boolean, row.solved);
    EXPECT_EQ(j.find("upper_ok")->boolean, row.upper_ok());
    EXPECT_EQ(j.find("lower_reached")->boolean, row.lower_reached());
  }
  // The structured verdict and the rendered verdict line must agree.
  std::ostringstream table;
  report.print(table);
  EXPECT_NE(table.str().find("[FAIL]"), std::string::npos);
}

TEST(ReportJsonTest, AppendRowsMirrorsIntoBenchRecorder) {
  BoundReport report("recorder mirror");
  WorstCase wc;
  wc.all_solved = true;
  wc.all_admissible = true;
  wc.max_termination = Ratio(2);
  report.add_time_row("cell", Ratio(1), wc, Ratio(2));

  ::setenv("SESP_BENCH_JSON_DIR", std::filesystem::temp_directory_path().c_str(),
           1);
  obs::BenchRecorder recorder("mirror_unit");
  report.append_rows(recorder);
  const std::string text = recorder.render(report.all_ok());
  recorder.finish(report.all_ok());
  ::unsetenv("SESP_BENCH_JSON_DIR");
  std::error_code ec;
  std::filesystem::remove(
      std::filesystem::temp_directory_path() / "BENCH_mirror_unit.json", ec);

  const auto v = obs::parse_json(text);
  ASSERT_TRUE(v);
  ASSERT_EQ(v->find("rows")->array.size(), 1u);
  EXPECT_EQ(v->find("rows")->array[0].find("cell")->string, "cell");
  EXPECT_TRUE(v->find("ok")->boolean);
}

TEST(ReportJsonTest, SummaryJsonMatchesExactExtremes) {
  Summary summary;
  summary.add(Ratio(1, 2));
  summary.add(Ratio(5, 2));
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    summary.write_json(w);
  }
  const auto v = obs::parse_json(os.str());
  ASSERT_TRUE(v);
  EXPECT_EQ(v->find("count")->as_int64(), 2);
  EXPECT_EQ(v->find("min")->string, "1/2");
  EXPECT_EQ(v->find("max")->string, "5/2");
  EXPECT_DOUBLE_EQ(v->find("mean")->number, 1.5);
}

}  // namespace
}  // namespace sesp
