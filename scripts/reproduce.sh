#!/usr/bin/env bash
# Full reproduction: build, test, run every experiment, and collect the
# outputs next to the repository root (test_output.txt / bench_output.txt).
#
# Sweep parallelism: --jobs=N (or SESP_JOBS=N) sets the worker-thread count
# for the sweep engine in every test and bench below; results are
# bit-identical for any value (docs/parallelism.md). Default: hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

for arg in "$@"; do
  case "$arg" in
    --jobs=*) export SESP_JOBS="${arg#--jobs=}" ;;
    *) echo "unknown argument: $arg (supported: --jobs=N)" >&2; exit 2 ;;
  esac
done

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Sanitizer stage: the fault-injection fuzz (and everything else) must run
# clean under ASan + UBSan. Skip with SESP_SKIP_SANITIZE=1.
if [ "${SESP_SKIP_SANITIZE:-0}" != "1" ]; then
  cmake -B build-asan -G Ninja -DSESP_SANITIZE=ON
  cmake --build build-asan
  ctest --test-dir build-asan 2>&1 | tee -a test_output.txt
fi

# Bench stage: every bench binary writes a machine-readable perf record
# (BENCH_<name>.json, schema sesp-bench/1); the verdict comes from the
# structured ok / solved / admissible / upper_ok fields via sesp_bench_merge,
# not from grepping the tables. SESP_BENCH_QUICK=1 shrinks the substrate
# microbenchmark sweeps (CI uses it); the BoundReport benches are unaffected.
rm -f BENCH_*.json bench_results.json
: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "######## $b" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo
echo "Verdicts (from BENCH_*.json):"
build/tools/sesp_bench_merge --out=bench_results.json BENCH_*.json
