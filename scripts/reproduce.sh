#!/usr/bin/env bash
# Full reproduction: build, test, run every experiment, and collect the
# outputs next to the repository root (test_output.txt / bench_output.txt).
#
# Sweep parallelism: --jobs=N (or SESP_JOBS=N) sets the worker-thread count
# for the sweep engine in every test and bench below; results are
# bit-identical for any value (docs/parallelism.md). Default: hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

for arg in "$@"; do
  case "$arg" in
    --jobs=*) export SESP_JOBS="${arg#--jobs=}" ;;
    *) echo "unknown argument: $arg (supported: --jobs=N)" >&2; exit 2 ;;
  esac
done

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Sanitizer stage: the fault-injection fuzz (and everything else) must run
# clean under ASan + UBSan. Skip with SESP_SKIP_SANITIZE=1.
if [ "${SESP_SKIP_SANITIZE:-0}" != "1" ]; then
  cmake -B build-asan -G Ninja -DSESP_SANITIZE=ON
  cmake --build build-asan
  ctest --test-dir build-asan 2>&1 | tee -a test_output.txt
fi

# Resume smoke: interrupt a checkpointed sweep deterministically, resume it,
# and require the resumed stdout to be byte-identical to an uninterrupted
# run (docs/robustness.md). Skip with SESP_SKIP_RESUME_SMOKE=1.
if [ "${SESP_SKIP_RESUME_SMOKE:-0}" != "1" ]; then
  smoke_cmd=(build/tools/sesp_cli --substrate=mpm --model=sporadic
             --adversary=worst --s=3 --n=4 --c1=1 --d1=1 --d2=4 --jobs=2)
  "${smoke_cmd[@]}" > resume_expected.out
  rm -f resume_smoke.journal
  rc=0
  SESP_STOP_AFTER=2 SESP_JOURNAL_FSYNC=0 \
    "${smoke_cmd[@]}" --journal=resume_smoke.journal > /dev/null 2>&1 || rc=$?
  [ "$rc" -eq 75 ] || { echo "resume smoke: expected exit 75, got $rc" >&2; exit 1; }
  for _ in $(seq 1 50); do
    rc=0
    SESP_JOURNAL_FSYNC=0 "${smoke_cmd[@]}" --resume=resume_smoke.journal \
      > resume_actual.out 2>/dev/null || rc=$?
    [ "$rc" -ne 75 ] && break
  done
  [ "$rc" -eq 0 ] || { echo "resume smoke: resume failed with $rc" >&2; exit 1; }
  diff resume_expected.out resume_actual.out
  rm -f resume_smoke.journal resume_expected.out resume_actual.out
  echo "resume smoke: interrupted run resumed byte-identically"
fi

# Shard smoke: run the same sweep through three worker processes with one
# worker SIGTERMed mid-sweep and restarted; the coordinator's merged replay
# must be byte-identical to the plain run (docs/robustness.md "Sharded
# execution"). Skip with SESP_SKIP_SHARD_SMOKE=1.
if [ "${SESP_SKIP_SHARD_SMOKE:-0}" != "1" ]; then
  smoke_cmd=(build/tools/sesp_cli --substrate=mpm --model=sporadic
             --s=4 --n=4 --degradation --jobs=2)
  "${smoke_cmd[@]}" > shard_expected.out
  rm -rf shard_smoke_dir
  SESP_JOURNAL_FSYNC=0 build/tools/sesp_shard --shard-dir=shard_smoke_dir \
    --workers=3 --kill-after=1 --kill-signal=TERM --kill-worker=1 \
    -- "${smoke_cmd[@]}" > shard_actual.out
  diff shard_expected.out shard_actual.out
  rm -rf shard_smoke_dir shard_expected.out shard_actual.out
  echo "shard smoke: killed-worker sharded run merged byte-identically"
fi

# Serve smoke: chaos-interrupt a served sweep mid-flight, resume the server,
# and require the served report to be byte-identical to the offline CLI run
# (docs/serving.md). Skip with SESP_SKIP_SERVE_SMOKE=1.
if [ "${SESP_SKIP_SERVE_SMOKE:-0}" != "1" ]; then
  scripts/serve_smoke.sh build
fi

# Bench stage: every bench binary writes a machine-readable perf record
# (BENCH_<name>.json, schema sesp-bench/2); the verdict comes from the
# structured ok / solved / admissible / upper_ok fields via sesp_bench_merge,
# not from grepping the tables. SESP_BENCH_QUICK=1 shrinks the substrate
# microbenchmark sweeps (CI uses it); the BoundReport benches are unaffected.
rm -f BENCH_*.json bench_results.json
: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "######## $b" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo
echo "Verdicts (from BENCH_*.json):"
build/tools/sesp_bench_merge --out=bench_results.json BENCH_*.json

# Perf-history stage: fold the merged results into the append-only ledger
# and gate against the rolling baseline (docs/observability.md "Bench
# history & regression gate"). The check is a soft warning here — local
# machines are not comparable to the ledger's baseline hardware.
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
build/tools/sesp_perf record --results=bench_results.json \
  --history=bench_history.jsonl --commit="$commit"
build/tools/sesp_perf check --history=bench_history.jsonl \
  || echo "warning: sesp_perf flagged a perf regression against the ledger"
