#!/usr/bin/env bash
# Serve smoke (docs/serving.md): end-to-end proof of the serve layer's
# restart-under-load contract.
#
#   1. Start sesp_serve with a journal dir and --chaos=1: the first sweep's
#      supervisor stops after one journal append, draining the server
#      exactly as a SIGTERM would (deterministic kill point).
#   2. Submit that sweep plus mixed traffic (bounds, runs, malformed lines)
#      through sesp_client; every reply must be structured.
#   3. The server drains and exits 75 (EX_TEMPFAIL) with the sweep
#      journaled and resumable.
#   4. Restart with --resume: the sweep finishes and its report must be
#      byte-identical to an offline `sesp_cli --degradation` run.
#   5. The restarted server also writes a span trace (--trace-events),
#      uploaded as a CI artifact.
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
serve="$build/tools/sesp_serve"
client="$build/tools/sesp_client"
cli="$build/tools/sesp_cli"
for bin in "$serve" "$client" "$cli"; do
  [ -x "$bin" ] || { echo "serve smoke: missing $bin" >&2; exit 2; }
done

workdir="serve-smoke"
rm -rf "$workdir"
mkdir -p "$workdir"

# Offline reference: the identical sweep through sesp_cli (the served
# report starts at the algorithm line, which is line 4 of the CLI output).
"$cli" --substrate=mpm --model=semisync --degradation --seed=1992 \
  | tail -n +4 > "$workdir/expected_report.txt"

start_server() {  # start_server <logfile> <extra flags...>
  local log="$1"; shift
  SESP_JOURNAL_FSYNC=0 "$serve" --port=0 --journal-dir="$workdir/journals" \
    "$@" > "$log" 2>&1 &
  server_pid=$!
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log")"
    [ -n "$port" ] && return 0
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
  done
  echo "serve smoke: server did not come up; log:" >&2
  cat "$log" >&2
  return 1
}

# --- 1+2: chaos server; mixed traffic first (served before the chaos kill
# point, which only arms once the sweep below starts executing), then the
# sweep whose supervisor the chaos hook stops.
start_server "$workdir/server-chaos.log" --chaos=1
summary="$("$client" --port="$port" --timeout-ms=10000 --summary \
  --send='{"id":2,"op":"health"}' \
  --send='{"id":3,"op":"bound","model":"semisync","side":"mp"}' \
  --send='{"id":4,"op":"bound","model":"async","side":"sm"}' \
  --send='{"id":5,"op":"run","adversary":"lockstep"}' \
  --send='this is not json' \
  --send='{"id":6,"op":"warp"}')"
echo "serve smoke: mixed traffic: $summary"
test "$summary" = "Ok=4 BadRequest=2 Overloaded=0 Timeout=0"

sweep='{"id":1,"op":"sweep","substrate":"mpm","model":"semisync","seed":1992}'
ticket="$("$client" --port="$port" --send="$sweep" --print-field=result.ticket)"
[ -n "$ticket" ] || { echo "serve smoke: no sweep ticket" >&2; exit 1; }
echo "serve smoke: sweep ticket $ticket"

# --- 3: the chaos drain exits 75 with the sweep journaled ------------------
rc=0; wait "$server_pid" || rc=$?
echo "serve smoke: chaos server exit $rc"
test "$rc" -eq 75
ls "$workdir/journals/sweep-"*.journal > /dev/null

# --- 4+5: resume, finish the sweep, compare byte-for-byte ------------------
start_server "$workdir/server-resume.log" --resume \
  --trace-events="$workdir/serve_trace.jsonl"
"$client" --port="$port" --timeout-ms=120000 \
  --wait-ticket="$ticket" --report > "$workdir/actual_report.txt"
diff "$workdir/expected_report.txt" "$workdir/actual_report.txt"
echo "serve smoke: resumed sweep report is byte-identical"

kill -TERM "$server_pid"
rc=0; wait "$server_pid" || rc=$?
test "$rc" -eq 0
[ -s "$workdir/serve_trace.jsonl" ] || {
  echo "serve smoke: empty serve trace" >&2; exit 1; }
echo "serve smoke: OK"
