#pragma once

// Small summary-statistics helpers for experiment reports. Experiment
// measurements are exact Ratios; summaries keep the max/min exact (those are
// the quantities compared against the paper's bounds) and report the mean as
// a double for display only.

#include <cstddef>
#include <optional>
#include <vector>

#include "util/ratio.hpp"

namespace sesp {

namespace obs {
class JsonWriter;
}  // namespace obs

class Summary {
 public:
  void add(const Ratio& value);

  std::size_t count() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  // Terminate on empty (harness bug); callers check empty() when unsure.
  const Ratio& min() const;
  const Ratio& max() const;
  double mean() const;

  // One JSON object: {"count":N,"min":"a/b","max":"c/d","min_approx":...,
  // "max_approx":...,"mean":...}; min/max/mean omitted when empty.
  void write_json(obs::JsonWriter& w) const;

 private:
  std::size_t count_ = 0;
  std::optional<Ratio> min_;
  std::optional<Ratio> max_;
  double sum_ = 0.0;
};

// Exact max over a non-empty vector; terminates on empty input.
Ratio max_of(const std::vector<Ratio>& values);

}  // namespace sesp
