#include "util/ratio.hpp"

#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <ostream>

namespace sesp {

namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "sesp::Ratio fatal: %s\n", what);
  std::abort();
}

std::int64_t checked_narrow(__int128 v, const char* what) {
  if (v > INT64_MAX || v < INT64_MIN) fail(what);
  return static_cast<std::int64_t>(v);
}

}  // namespace

Ratio::Ratio(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  if (den_ == 0) fail("zero denominator");
  if (den_ < 0) {
    if (num_ == INT64_MIN || den_ == INT64_MIN) fail("overflow negating");
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

double Ratio::to_double() const noexcept {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::int64_t Ratio::floor() const noexcept {
  std::int64_t q = num_ / den_;
  if (num_ % den_ != 0 && num_ < 0) --q;
  return q;
}

std::int64_t Ratio::ceil() const noexcept {
  std::int64_t q = num_ / den_;
  if (num_ % den_ != 0 && num_ > 0) ++q;
  return q;
}

Ratio Ratio::operator-() const {
  if (num_ == INT64_MIN) fail("overflow negating");
  Ratio r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

Ratio& Ratio::operator+=(const Ratio& rhs) {
  const __int128 n = static_cast<__int128>(num_) * rhs.den_ +
                     static_cast<__int128>(rhs.num_) * den_;
  const __int128 d = static_cast<__int128>(den_) * rhs.den_;
  // Normalize in 128 bits before narrowing so intermediate growth is benign.
  __int128 a = n < 0 ? -n : n;
  __int128 b = d;
  while (b != 0) {
    const __int128 t = a % b;
    a = b;
    b = t;
  }
  const __int128 g = a == 0 ? 1 : a;
  num_ = checked_narrow(n / g, "overflow in +");
  den_ = checked_narrow(d / g, "overflow in +");
  return *this;
}

Ratio& Ratio::operator-=(const Ratio& rhs) {
  Ratio neg = -rhs;
  return *this += neg;
}

Ratio& Ratio::operator*=(const Ratio& rhs) {
  // Cross-reduce first to keep intermediates small.
  const std::int64_t g1 = std::gcd(num_, rhs.den_);
  const std::int64_t g2 = std::gcd(rhs.num_, den_);
  const __int128 n =
      static_cast<__int128>(num_ / g1) * (rhs.num_ / g2);
  const __int128 d =
      static_cast<__int128>(den_ / g2) * (rhs.den_ / g1);
  num_ = checked_narrow(n, "overflow in *");
  den_ = checked_narrow(d, "overflow in *");
  return *this;
}

Ratio& Ratio::operator/=(const Ratio& rhs) {
  if (rhs.num_ == 0) fail("division by zero");
  Ratio inv;
  if (rhs.num_ < 0) {
    if (rhs.num_ == INT64_MIN || rhs.den_ == INT64_MIN) fail("overflow in /");
    inv.num_ = -rhs.den_;
    inv.den_ = -rhs.num_;
  } else {
    inv.num_ = rhs.den_;
    inv.den_ = rhs.num_;
  }
  return *this *= inv;
}

std::strong_ordering operator<=>(const Ratio& a, const Ratio& b) noexcept {
  const __int128 lhs = static_cast<__int128>(a.num_) * b.den_;
  const __int128 rhs = static_cast<__int128>(b.num_) * a.den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::string Ratio::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Ratio& r) {
  return os << r.to_string();
}

Ratio abs(const Ratio& r) { return r.is_negative() ? -r : r; }

}  // namespace sesp
