#include "util/ratio.hpp"

#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <ostream>

namespace sesp {

namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "sesp::Ratio fatal: %s\n", what);
  std::abort();
}

std::int64_t checked_narrow(__int128 v, const char* what) {
  if (v > INT64_MAX || v < INT64_MIN) fail(what);
  return static_cast<std::int64_t>(v);
}

}  // namespace

Ratio::Ratio(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  if (den_ == 1) return;  // already normalized; the dominant call shape
  if (den_ == 0) fail("zero denominator");
  if (den_ < 0) {
    if (num_ == INT64_MIN || den_ == INT64_MIN) fail("overflow negating");
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
}

double Ratio::to_double() const noexcept {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::int64_t Ratio::floor() const noexcept {
  std::int64_t q = num_ / den_;
  if (num_ % den_ != 0 && num_ < 0) --q;
  return q;
}

std::int64_t Ratio::ceil() const noexcept {
  std::int64_t q = num_ / den_;
  if (num_ % den_ != 0 && num_ > 0) ++q;
  return q;
}

Ratio Ratio::operator-() const {
  if (num_ == INT64_MIN) fail("overflow negating");
  Ratio r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

namespace {

// Knuth TAOCP 4.5.1 reduced addition, sign = +1 or -1 for subtraction. The
// only gcds taken are gcd(d1, d2) and a gcd against that — both 64-bit —
// instead of the old 128-bit Euclid loop over the raw cross-products.
void combine(std::int64_t& num, std::int64_t& den, const Ratio& rhs,
             int sign, const char* what) {
  const std::int64_t rn = rhs.num();
  const std::int64_t rd = rhs.den();
  if (den == rd) {
    // Same-denominator fast path: times on one period grid stay there.
    const __int128 n = sign > 0 ? static_cast<__int128>(num) + rn
                                : static_cast<__int128>(num) - rn;
    const std::int64_t g = std::gcd(static_cast<std::int64_t>(n % den), den);
    num = checked_narrow(n / g, what);
    den = den / g;
    return;
  }
  const std::int64_t g0 = std::gcd(den, rd);
  if (g0 == 1) {
    // Coprime denominators: the result is already in lowest terms.
    const __int128 a = static_cast<__int128>(num) * rd;
    const __int128 b = static_cast<__int128>(rn) * den;
    num = checked_narrow(sign > 0 ? a + b : a - b, what);
    den = checked_narrow(static_cast<__int128>(den) * rd, what);
    return;
  }
  const __int128 a = static_cast<__int128>(num) * (rd / g0);
  const __int128 b = static_cast<__int128>(rn) * (den / g0);
  const __int128 t = sign > 0 ? a + b : a - b;
  const std::int64_t g1 = std::gcd(static_cast<std::int64_t>(t % g0), g0);
  num = checked_narrow(t / g1, what);
  den = checked_narrow(static_cast<__int128>(den / g0) * (rd / g1), what);
}

}  // namespace

Ratio& Ratio::add_slow(const Ratio& rhs) {
  combine(num_, den_, rhs, +1, "overflow in +");
  return *this;
}

Ratio& Ratio::sub_slow(const Ratio& rhs) {
  combine(num_, den_, rhs, -1, "overflow in -");
  return *this;
}

Ratio& Ratio::mul_slow(const Ratio& rhs) {
  // Cross-reduce first to keep intermediates small.
  const std::int64_t g1 = std::gcd(num_, rhs.den_);
  const std::int64_t g2 = std::gcd(rhs.num_, den_);
  const __int128 n =
      static_cast<__int128>(num_ / g1) * (rhs.num_ / g2);
  const __int128 d =
      static_cast<__int128>(den_ / g2) * (rhs.den_ / g1);
  num_ = checked_narrow(n, "overflow in *");
  den_ = checked_narrow(d, "overflow in *");
  return *this;
}

Ratio& Ratio::operator/=(const Ratio& rhs) {
  if (rhs.num_ == 0) fail("division by zero");
  Ratio inv;
  if (rhs.num_ < 0) {
    if (rhs.num_ == INT64_MIN || rhs.den_ == INT64_MIN) fail("overflow in /");
    inv.num_ = -rhs.den_;
    inv.den_ = -rhs.num_;
  } else {
    inv.num_ = rhs.den_;
    inv.den_ = rhs.num_;
  }
  return *this *= inv;
}

std::string Ratio::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

std::ostream& operator<<(std::ostream& os, const Ratio& r) {
  return os << r.to_string();
}

Ratio abs(const Ratio& r) { return r.is_negative() ? -r : r; }

}  // namespace sesp
