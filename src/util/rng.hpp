#pragma once

// Deterministic, seedable PRNG (xoshiro256**) for adversary schedule
// generation. std::mt19937_64 would also work; we use xoshiro for speed and
// a guaranteed-stable stream across standard libraries, so recorded
// experiment seeds reproduce byte-identical schedules anywhere.

#include <cstdint>

#include "util/ratio.hpp"

namespace sesp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  std::uint64_t next_u64() noexcept;

  // Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform integer in the closed interval [lo, hi].
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept;

  // True with probability p_num/p_den.
  bool next_bool(std::uint32_t p_num, std::uint32_t p_den) noexcept;

  // Uniform rational in [lo, hi] on a grid of `grid` equal subintervals
  // (grid >= 1). Exact arithmetic: result = lo + k*(hi-lo)/grid.
  Ratio next_ratio(const Ratio& lo, const Ratio& hi,
                   std::uint32_t grid = 128) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace sesp
