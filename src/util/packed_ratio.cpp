#include "util/packed_ratio.hpp"

namespace sesp {

namespace {

std::uint64_t pair_hash(std::int64_t num, std::int64_t den) noexcept {
  std::uint64_t x = static_cast<std::uint64_t>(num) * 0x9e3779b97f4a7c15ULL;
  x ^= static_cast<std::uint64_t>(den) + 0x517cc1b727220a95ULL +
       (x << 6) + (x >> 2);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return x ^ (x >> 27);
}

}  // namespace

RatioIntern::RatioIntern() { rehash(64); }

void RatioIntern::rehash(std::size_t capacity) {
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    std::size_t slot = pair_hash(pool_[i].num(), pool_[i].den()) & mask_;
    while (slots_[slot] != 0) slot = (slot + 1) & mask_;
    slots_[slot] = static_cast<std::uint32_t>(i + 1);
  }
}

PackedRatio RatioIntern::pack(const Ratio& r) {
  if (PackedRatio::fits_inline(r.num(), r.den())) {
    const std::uint64_t word =
        (static_cast<std::uint64_t>(r.num()) << PackedRatio::kNumShift) |
        (static_cast<std::uint64_t>(r.den()) << 1);
    return PackedRatio(word);
  }
  std::size_t slot = pair_hash(r.num(), r.den()) & mask_;
  while (slots_[slot] != 0) {
    const Ratio& held = pool_[slots_[slot] - 1];
    if (held.num() == r.num() && held.den() == r.den())
      return PackedRatio(
          (static_cast<std::uint64_t>(slots_[slot] - 1) << 1) | 1u);
    slot = (slot + 1) & mask_;
  }
  pool_.push_back(r);
  slots_[slot] = static_cast<std::uint32_t>(pool_.size());
  const PackedRatio packed(
      (static_cast<std::uint64_t>(pool_.size() - 1) << 1) | 1u);
  if (pool_.size() * 2 > slots_.size()) rehash(slots_.size() * 2);
  return packed;
}

}  // namespace sesp
