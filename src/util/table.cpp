#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace sesp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    std::fprintf(stderr, "TextTable fatal: row wider than header\n");
    std::abort();
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t pad = 0; pad < widths[c] + 2; ++pad) os << '-';
    os << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(const Ratio& r) { return r.to_string(); }

std::string fmt_approx(const Ratio& r) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", r.to_double());
  return buf;
}

std::string fmt_ratio_of(const Ratio& measured, const Ratio& predicted) {
  if (predicted.is_zero()) return measured.is_zero() ? "1.000" : "inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f",
                measured.to_double() / predicted.to_double());
  return buf;
}

}  // namespace sesp
