#pragma once

// Interned one-word representation of exact rationals, for the simulator
// core's hot data structures (docs/performance.md "Ratio interning").
//
// A PackedRatio is a single 64-bit word. Small rationals — numerator in
// [-2^39, 2^39), denominator in [1, 2^23) — are stored inline (tag bit 0),
// extending PR 3's den==1 fast paths: virtually every model time produced by
// the Table-1 schedules fits. Everything else is promoted to an exact Ratio
// held in a RatioIntern pool and represented by its pool index (tag bit 1).
// The pool dedupes, so two PackedRatios made from equal Ratios by the same
// pool are ALWAYS the same word:
//
//   * equality is one integer compare (Ratio normalization makes the inline
//     encoding canonical; interning makes the pooled encoding canonical),
//   * hashing is a mix of the word, consistent with equality by
//     construction,
//   * ordering compares inline pairs with 64-bit cross-multiplies (40-bit
//     numerators times 23-bit denominators cannot overflow) and falls back
//     to exact Ratio comparison only when a pooled value is involved.
//
// The pool is single-writer, same as the simulators that own one; the
// calendar queue keys its exact-time buckets on these words.

#include <cstdint>
#include <vector>

#include "util/ratio.hpp"

namespace sesp {

class RatioIntern;

class PackedRatio {
 public:
  // Zero, inline. (0/1 encodes to den bits = 1, num bits = 0.)
  constexpr PackedRatio() noexcept : word_(kDenOne) {}

  constexpr bool is_inline() const noexcept { return (word_ & 1u) == 0; }
  constexpr bool is_pooled() const noexcept { return (word_ & 1u) != 0; }
  constexpr std::uint64_t word() const noexcept { return word_; }

  // Inline fields; meaningful only when is_inline().
  constexpr std::int64_t inline_num() const noexcept {
    return static_cast<std::int64_t>(word_) >> kNumShift;
  }
  constexpr std::int64_t inline_den() const noexcept {
    return static_cast<std::int64_t>((word_ >> 1) & kDenMask);
  }
  // Pool index; meaningful only when is_pooled().
  constexpr std::uint64_t pool_index() const noexcept { return word_ >> 1; }

  // Equal packs (from one pool) are equal words and vice versa.
  friend bool operator==(PackedRatio a, PackedRatio b) noexcept {
    return a.word_ == b.word_;
  }

  // Mix of the word (splitmix64 finalizer); equality-consistent.
  std::uint64_t hash() const noexcept {
    std::uint64_t x = word_ + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  static constexpr int kNumShift = 24;
  static constexpr std::int64_t kNumMin = -(std::int64_t{1} << 39);
  static constexpr std::int64_t kNumMax = (std::int64_t{1} << 39) - 1;
  static constexpr std::int64_t kDenMax = (std::int64_t{1} << 23) - 1;

  // True iff a normalized num/den pair fits the inline encoding.
  static constexpr bool fits_inline(std::int64_t num,
                                    std::int64_t den) noexcept {
    return num >= kNumMin && num <= kNumMax && den >= 1 && den <= kDenMax;
  }

 private:
  friend class RatioIntern;
  static constexpr std::uint64_t kDenMask = (1u << 23) - 1;
  static constexpr std::uint64_t kDenOne = 2;  // den=1 field, num=0, tag=0

  constexpr explicit PackedRatio(std::uint64_t word) noexcept : word_(word) {}

  std::uint64_t word_;
};

// Dedup pool giving PackedRatio its canonical pooled form. Single-writer;
// pack() is O(1) amortized (one open-addressing probe sequence), unpack()
// is an array read. pool_size() only ever grows — entries live as long as
// the pool, so PackedRatios are trivially copyable handles.
class RatioIntern {
 public:
  RatioIntern();

  PackedRatio pack(const Ratio& r);
  Ratio unpack(PackedRatio p) const {
    if (p.is_inline()) return make_ratio(p.inline_num(), p.inline_den());
    return pool_[static_cast<std::size_t>(p.pool_index())];
  }

  // Exact comparison of two packs from this pool.
  std::strong_ordering compare(PackedRatio a, PackedRatio b) const {
    if (a.word() == b.word()) return std::strong_ordering::equal;
    if (a.is_inline() && b.is_inline()) {
      const std::int64_t ad = a.inline_den(), bd = b.inline_den();
      if (ad == bd) return a.inline_num() <=> b.inline_num();
      // 40-bit num x 23-bit den: |product| < 2^62, no overflow.
      return a.inline_num() * bd <=> b.inline_num() * ad;
    }
    return unpack(a) <=> unpack(b);
  }

  bool less(PackedRatio a, PackedRatio b) const {
    return compare(a, b) == std::strong_ordering::less;
  }

  std::size_t pool_size() const noexcept { return pool_.size(); }

 private:
  static Ratio make_ratio(std::int64_t num, std::int64_t den) noexcept {
    // The inline fields came from a normalized Ratio, so reconstruct
    // without re-normalizing (den == 1 short-circuits in the ctor; other
    // dens share no factor with num by construction — but go through the
    // ctor anyway for its invariants; gcd of a reduced pair is 1, cheap).
    return den == 1 ? Ratio(num) : Ratio(num, den);
  }

  void rehash(std::size_t capacity);

  std::vector<Ratio> pool_;
  // Open-addressing index over pool_: slot -> pool index + 1 (0 = empty).
  std::vector<std::uint32_t> slots_;
  std::size_t mask_ = 0;
};

}  // namespace sesp
