#include "util/rng.hpp"

namespace sesp {

namespace {

// splitmix64, used to expand the seed into the xoshiro state.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& word : s_) word = splitmix64(seed);
  // Avoid the all-zero state, which xoshiro cannot leave.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::next_bool(std::uint32_t p_num, std::uint32_t p_den) noexcept {
  return next_below(p_den) < p_num;
}

Ratio Rng::next_ratio(const Ratio& lo, const Ratio& hi,
                      std::uint32_t grid) noexcept {
  if (!(lo < hi) || grid == 0) return lo;
  const auto k = static_cast<std::int64_t>(next_below(grid + 1));
  return lo + (hi - lo) * Ratio(k, static_cast<std::int64_t>(grid));
}

}  // namespace sesp
