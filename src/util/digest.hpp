#pragma once

// The one config/content digest of the codebase: 64-bit FNV-1a plus its
// canonical 16-hex-digit rendering. One definition serves every fingerprint
// that must agree across subsystems — the run-journal header guard and frame
// checksums (src/recovery), the shard lease checksums and claim names
// (src/shard), the conformance campaign digests, the tools' config digests,
// and the serve-layer result-cache keys (src/serve) — so a digest computed
// by one layer can always be recomputed and verified by another.
//
// The hash is stable by construction (fixed offset basis and prime, byte
// order independent of platform): digests persisted in journals, manifests
// and cache keys stay comparable across runs and machines.

#include <cstdint>
#include <string>
#include <string_view>

namespace sesp::util {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

// FNV-1a over `text`, continuing from `h` — chain calls to fold multiple
// fragments into one digest.
constexpr std::uint64_t fnv1a(std::string_view text,
                              std::uint64_t h = kFnv1aOffsetBasis) noexcept {
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnv1aPrime;
  }
  return h;
}

// Canonical 16-hex-digit (lowercase, zero-padded) rendering used in journal
// headers, frames, manifests and serve tickets.
std::string fnv1a_hex(std::uint64_t h);

// Parses the canonical rendering back; false on anything that is not
// exactly 16 lowercase hex digits (the strictness is deliberate — digests
// embedded in journals and tickets are machine-written).
bool parse_fnv1a_hex(std::string_view hex, std::uint64_t* out) noexcept;

}  // namespace sesp::util
