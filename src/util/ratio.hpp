#pragma once

// Exact rational arithmetic used for all model time in the library.
//
// The bound formulas of Rhee & Welch 1992 (e.g. K = 2*d2*c1 / (d2 - u/2) in
// Theorem 6.5) and the retiming constructions in the lower-bound proofs
// require exact comparisons: a timed computation is admissible iff step gaps
// and message delays lie in closed rational intervals, and the proofs place
// steps exactly on interval endpoints. Floating point would make the
// admissibility checker flaky, so time is a normalized int64 fraction with
// __int128 intermediates.
//
// Hot-path layout: most model-time values in practice are integers (den ==
// 1) or share a denominator (steps on a common period grid), so +, -, * and
// <=> take inline fast paths for those shapes — an overflow-checked int64
// op, no gcd, no division — and fall back to the out-of-line slow paths
// (Knuth 4.5.1 reduced arithmetic on __int128) only when the shapes are
// mixed or the fast op would overflow. ratio_test cross-checks both paths
// against a normalize-always reference.

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace sesp {

class Ratio {
 public:
  // Value-initializes to 0/1.
  constexpr Ratio() noexcept : num_(0), den_(1) {}

  // Implicit from integers so call sites can write `t + 3`.
  constexpr Ratio(std::int64_t value) noexcept : num_(value), den_(1) {}

  // num/den, normalized to lowest terms with den > 0. Terminates the process
  // on den == 0 or overflow (model time never legitimately overflows int64
  // after normalization; overflow indicates a harness bug).
  Ratio(std::int64_t num, std::int64_t den);

  constexpr std::int64_t num() const noexcept { return num_; }
  constexpr std::int64_t den() const noexcept { return den_; }

  bool is_integer() const noexcept { return den_ == 1; }
  bool is_zero() const noexcept { return num_ == 0; }
  bool is_negative() const noexcept { return num_ < 0; }
  bool is_positive() const noexcept { return num_ > 0; }

  double to_double() const noexcept;

  // Largest integer <= this (mathematical floor, correct for negatives).
  std::int64_t floor() const noexcept;
  // Smallest integer >= this.
  std::int64_t ceil() const noexcept;

  Ratio operator-() const;

  Ratio& operator+=(const Ratio& rhs) {
    if (den_ == 1 && rhs.den_ == 1) {
      std::int64_t sum;
      if (!__builtin_add_overflow(num_, rhs.num_, &sum)) {
        num_ = sum;
        return *this;
      }
    }
    return add_slow(rhs);
  }

  Ratio& operator-=(const Ratio& rhs) {
    if (den_ == 1 && rhs.den_ == 1) {
      std::int64_t diff;
      if (!__builtin_sub_overflow(num_, rhs.num_, &diff)) {
        num_ = diff;
        return *this;
      }
    }
    return sub_slow(rhs);
  }

  Ratio& operator*=(const Ratio& rhs) {
    if (den_ == 1 && rhs.den_ == 1) {
      std::int64_t prod;
      if (!__builtin_mul_overflow(num_, rhs.num_, &prod)) {
        num_ = prod;
        return *this;
      }
    }
    return mul_slow(rhs);
  }

  // Terminates on division by zero.
  Ratio& operator/=(const Ratio& rhs);

  friend Ratio operator+(Ratio lhs, const Ratio& rhs) { return lhs += rhs; }
  friend Ratio operator-(Ratio lhs, const Ratio& rhs) { return lhs -= rhs; }
  friend Ratio operator*(Ratio lhs, const Ratio& rhs) { return lhs *= rhs; }
  friend Ratio operator/(Ratio lhs, const Ratio& rhs) { return lhs /= rhs; }

  friend bool operator==(const Ratio& a, const Ratio& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  // Denominators are always positive, so equal denominators (the common
  // shape: integers, or times on one period grid) compare by numerator
  // alone; only mixed shapes pay the 128-bit cross-multiply.
  friend std::strong_ordering operator<=>(const Ratio& a,
                                          const Ratio& b) noexcept {
    if (a.den_ == b.den_) return a.num_ <=> b.num_;
    const __int128 lhs = static_cast<__int128>(a.num_) * b.den_;
    const __int128 rhs = static_cast<__int128>(b.num_) * a.den_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  // "3", "7/2", "-1/3".
  std::string to_string() const;

 private:
  Ratio& add_slow(const Ratio& rhs);
  Ratio& sub_slow(const Ratio& rhs);
  Ratio& mul_slow(const Ratio& rhs);

  std::int64_t num_;
  std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Ratio& r);

inline Ratio min(const Ratio& a, const Ratio& b) { return a < b ? a : b; }
inline Ratio max(const Ratio& a, const Ratio& b) { return a < b ? b : a; }
Ratio abs(const Ratio& r);

// Model time and durations share the representation; the aliases mark intent.
using Time = Ratio;
using Duration = Ratio;

}  // namespace sesp
