#pragma once

// Exact rational arithmetic used for all model time in the library.
//
// The bound formulas of Rhee & Welch 1992 (e.g. K = 2*d2*c1 / (d2 - u/2) in
// Theorem 6.5) and the retiming constructions in the lower-bound proofs
// require exact comparisons: a timed computation is admissible iff step gaps
// and message delays lie in closed rational intervals, and the proofs place
// steps exactly on interval endpoints. Floating point would make the
// admissibility checker flaky, so time is a normalized int64 fraction with
// __int128 intermediates.

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace sesp {

class Ratio {
 public:
  // Value-initializes to 0/1.
  constexpr Ratio() noexcept : num_(0), den_(1) {}

  // Implicit from integers so call sites can write `t + 3`.
  constexpr Ratio(std::int64_t value) noexcept : num_(value), den_(1) {}

  // num/den, normalized to lowest terms with den > 0. Terminates the process
  // on den == 0 or overflow (model time never legitimately overflows int64
  // after normalization; overflow indicates a harness bug).
  Ratio(std::int64_t num, std::int64_t den);

  constexpr std::int64_t num() const noexcept { return num_; }
  constexpr std::int64_t den() const noexcept { return den_; }

  bool is_integer() const noexcept { return den_ == 1; }
  bool is_zero() const noexcept { return num_ == 0; }
  bool is_negative() const noexcept { return num_ < 0; }
  bool is_positive() const noexcept { return num_ > 0; }

  double to_double() const noexcept;

  // Largest integer <= this (mathematical floor, correct for negatives).
  std::int64_t floor() const noexcept;
  // Smallest integer >= this.
  std::int64_t ceil() const noexcept;

  Ratio operator-() const;
  Ratio& operator+=(const Ratio& rhs);
  Ratio& operator-=(const Ratio& rhs);
  Ratio& operator*=(const Ratio& rhs);
  // Terminates on division by zero.
  Ratio& operator/=(const Ratio& rhs);

  friend Ratio operator+(Ratio lhs, const Ratio& rhs) { return lhs += rhs; }
  friend Ratio operator-(Ratio lhs, const Ratio& rhs) { return lhs -= rhs; }
  friend Ratio operator*(Ratio lhs, const Ratio& rhs) { return lhs *= rhs; }
  friend Ratio operator/(Ratio lhs, const Ratio& rhs) { return lhs /= rhs; }

  friend bool operator==(const Ratio& a, const Ratio& b) noexcept {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Ratio& a,
                                          const Ratio& b) noexcept;

  // "3", "7/2", "-1/3".
  std::string to_string() const;

 private:
  std::int64_t num_;
  std::int64_t den_;
};

std::ostream& operator<<(std::ostream& os, const Ratio& r);

inline Ratio min(const Ratio& a, const Ratio& b) { return a < b ? a : b; }
inline Ratio max(const Ratio& a, const Ratio& b) { return a < b ? b : a; }
Ratio abs(const Ratio& r);

// Model time and durations share the representation; the aliases mark intent.
using Time = Ratio;
using Duration = Ratio;

}  // namespace sesp
