#include "util/stats.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/json.hpp"

namespace sesp {

namespace {
[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "sesp::Summary fatal: %s\n", what);
  std::abort();
}
}  // namespace

void Summary::add(const Ratio& value) {
  ++count_;
  sum_ += value.to_double();
  if (!min_ || value < *min_) min_ = value;
  if (!max_ || *max_ < value) max_ = value;
}

const Ratio& Summary::min() const {
  if (!min_) fail("min() on empty summary");
  return *min_;
}

const Ratio& Summary::max() const {
  if (!max_) fail("max() on empty summary");
  return *max_;
}

double Summary::mean() const {
  if (count_ == 0) fail("mean() on empty summary");
  return sum_ / static_cast<double>(count_);
}

void Summary::write_json(obs::JsonWriter& w) const {
  w.begin_object();
  w.field("count", static_cast<std::int64_t>(count_));
  if (count_ > 0) {
    w.field("min", *min_);
    w.field("max", *max_);
    w.field("min_approx", min_->to_double());
    w.field("max_approx", max_->to_double());
    w.field("mean", mean());
  }
  w.end_object();
}

Ratio max_of(const std::vector<Ratio>& values) {
  if (values.empty()) fail("max_of on empty vector");
  Ratio best = values.front();
  for (const Ratio& v : values)
    if (best < v) best = v;
  return best;
}

}  // namespace sesp
