#include "util/stats.hpp"

#include <cstdio>
#include <cstdlib>

namespace sesp {

namespace {
[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "sesp::Summary fatal: %s\n", what);
  std::abort();
}
}  // namespace

void Summary::add(const Ratio& value) {
  ++count_;
  sum_ += value.to_double();
  if (!min_ || value < *min_) min_ = value;
  if (!max_ || *max_ < value) max_ = value;
}

const Ratio& Summary::min() const {
  if (!min_) fail("min() on empty summary");
  return *min_;
}

const Ratio& Summary::max() const {
  if (!max_) fail("max() on empty summary");
  return *max_;
}

double Summary::mean() const {
  if (count_ == 0) fail("mean() on empty summary");
  return sum_ / static_cast<double>(count_);
}

Ratio max_of(const std::vector<Ratio>& values) {
  if (values.empty()) fail("max_of on empty vector");
  Ratio best = values.front();
  for (const Ratio& v : values)
    if (best < v) best = v;
  return best;
}

}  // namespace sesp
