#include "util/digest.hpp"

namespace sesp::util {

std::string fnv1a_hex(std::uint64_t h) {
  static const char digits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[h & 0xF];
    h >>= 4;
  }
  return out;
}

bool parse_fnv1a_hex(std::string_view hex, std::uint64_t* out) noexcept {
  if (hex.size() != 16) return false;
  std::uint64_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return false;
  }
  *out = v;
  return true;
}

}  // namespace sesp::util
