#pragma once

// Plain-text table formatter used by the bench binaries to print
// paper-style rows (Table 1 reproductions, sweeps, crossovers).

#include <iosfwd>
#include <string>
#include <vector>

#include "util/ratio.hpp"

namespace sesp {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Rows shorter than the header are padded with empty cells; longer rows
  // are a harness bug and terminate.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  // Renders with a header rule and column alignment.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers shared by benches.
std::string fmt(const Ratio& r);          // exact, e.g. "7/2"
std::string fmt_approx(const Ratio& r);   // fixed 3-decimal double
std::string fmt_ratio_of(const Ratio& measured, const Ratio& predicted);

}  // namespace sesp
