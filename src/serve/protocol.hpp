#pragma once

// Wire protocol of the serve layer (docs/serving.md): sesp-serve/1, a
// line-delimited JSON request/reply protocol over localhost TCP. One
// request per line, one reply line per request, always in order:
//
//   -> {"id":1,"op":"bound","model":"semisync","substrate":"sm",
//       "s":3,"n":3,"b":2,"c1":"1","c2":"2"}
//   <- {"id":1,"status":"Ok","result":{...}}
//
// Every reply carries the request's id and one of four statuses:
//
//   Ok          the result object follows in "result"
//   BadRequest  the line was not a well-formed request ("error" explains);
//               the connection survives unless the framing itself is
//               untrustworthy (oversized line)
//   Overloaded  admission control shed the request; "retry_after_ms" tells
//               the client when to try again
//   Timeout     the request was accepted but its deadline expired before
//               the result was ready ("error" explains; for coalescable
//               work the result may land in the cache anyway)
//
// The parser is the hardened edge of the server: byte-capped lines, capped
// JSON nesting depth, capped instance sizes, and strictly typed fields —
// every violation is a structured BadRequest, never a crash or an abort
// (serve_test drives it with the obs JSON fuzz corpus).

#include <cstdint>
#include <string>
#include <string_view>

#include "model/ids.hpp"
#include "util/ratio.hpp"

namespace sesp::serve {

inline constexpr char kProtocolSchema[] = "sesp-serve/1";

// Hard caps the parser enforces before any interpretation. The line cap is
// checked by the connection reader as bytes arrive, so an unbounded sender
// cannot grow a buffer; the rest are checked on the parsed document.
struct ProtocolLimits {
  std::size_t max_line_bytes = 256 * 1024;  // replay traces ride in lines
  int max_depth = 16;                       // JSON nesting, caps parser work
  std::int64_t max_deadline_ms = 120'000;
  std::int64_t max_s = 64;       // instance caps: serve-side work is
  std::int32_t max_n = 64;       // bounded even before admission control
  std::int32_t max_chaos_runs = 256;
};

enum class Op : std::uint8_t {
  kBound,   // Table-1 cell (cached, byte-stable)
  kRun,     // one simulator run (pooled, coalesced)
  kReplay,  // differential replay of a recorded trace (pooled)
  kSweep,   // degradation sweep (journaled, resumable, ticketed)
  kPoll,    // sweep ticket status / report
  kHealth,  // liveness + drain state
  kStats,   // serve counters, cache stats, admission state
};

const char* op_name(Op op) noexcept;

enum class Status : std::uint8_t { kOk, kBadRequest, kOverloaded, kTimeout };

const char* status_name(Status status) noexcept;

// One parsed request. Fields beyond (id, op) are op-specific; unused ones
// keep their defaults and are excluded from the digest where irrelevant.
struct Request {
  std::int64_t id = 0;
  Op op = Op::kHealth;

  std::string substrate = "mpm";   // run/sweep/replay: mpm | smm
  std::string bound_side = "mp";   // bound: sm | mp
  std::string model = "semisync";  // sync|periodic|semisync|sporadic|async
  std::string adversary = "worst";  // run: worst | lockstep | random
  ProblemSpec spec{3, 3, 2};
  Ratio c1 = 1, c2 = 2, d1 = 0, d2 = 4;
  std::uint64_t seed = 1992;
  std::int64_t deadline_ms = 0;  // 0 = server default

  std::string ticket;      // poll: sweep ticket (16 hex digits)
  std::string trace_text;  // replay: sesp-trace text
};

// Parses one request line. On failure returns false and fills *error with
// the BadRequest detail; *out is partially filled best-effort so the caller
// can still echo the id when it parsed (id 0 otherwise).
bool parse_request(std::string_view line, const ProtocolLimits& limits,
                   Request* out, std::string* error);

// Fingerprint of every result-affecting request field (never the id or the
// deadline): the bound-cache key, the run-coalescing key, and the sweep
// ticket. Shares the repo digest (util/digest) so tickets and journal
// guards verify across layers.
std::uint64_t request_digest(const Request& r);

// Canonical rendering of a request (fixed field order, exact rationals as
// strings): parse_request(render_request(r)) reproduces r. This is the
// journaled form of a sweep request (stage "serve.request"), what --resume
// re-parses, and what sesp_client emits.
std::string render_request(const Request& r);

// --- Reply builders (one line each, no trailing newline) -------------------

// {"id":N,"status":"Ok","result":<result_json>} — result_json must be a
// rendered JSON value; cached result bytes are spliced verbatim, which is
// what makes repeated bound replies byte-identical.
std::string ok_reply(std::int64_t id, const std::string& result_json);

// {"id":N,"status":"<status>","error":"<detail>"[,"retry_after_ms":N]}
std::string error_reply(std::int64_t id, Status status,
                        const std::string& detail,
                        std::int64_t retry_after_ms = 0);

}  // namespace sesp::serve
