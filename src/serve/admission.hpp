#pragma once

// Admission control for the serve layer (docs/serving.md "Degradation
// matrix"): every resource a client can consume is bounded up front —
// connections, queued heavy jobs, request rate, reply-write time — and
// every bound degrades to a structured reply (Overloaded with a
// retry-after hint), never to an unbounded buffer or a blocked thread.
//
// The primitives are deliberately clock-injectable (TokenBucket) and
// lock-simple (BoundedCounter): serve_test drives them to their limits
// deterministically without real time or real sockets.

#include <chrono>
#include <cstdint>
#include <mutex>

namespace sesp::serve {

// Every admission knob of the server in one struct, so the tool's flag
// parsing, the tests and the docs share a single source of truth.
struct AdmissionConfig {
  std::int32_t max_connections = 64;   // concurrent client connections
  std::int32_t heavy_workers = 2;      // run/replay executor threads
  std::int32_t max_queue = 8;          // queued heavy jobs past the workers
  std::int32_t max_sweep_queue = 4;    // queued sweeps past the executor
  double rate_per_sec = 200.0;         // per-connection request rate
  double burst = 40.0;                 // per-connection burst allowance
  std::int64_t default_deadline_ms = 10'000;  // per-request wall clock
  std::int64_t retry_after_ms = 250;   // hint in Overloaded replies
  std::int64_t write_timeout_ms = 5'000;  // slow-client reply writes
  std::int64_t idle_timeout_ms = 60'000;  // silent connections are dropped
  std::size_t cache_capacity = 1024;   // bound-result LRU entries
  // Test hook: artificial per-heavy-job delay, so overload tests can fill
  // queues and expire deadlines deterministically. Never set in production.
  std::int64_t test_heavy_delay_ms = 0;
};

// Token-bucket rate limiter, one per connection. Not thread-safe (each
// connection thread owns its own). The clock is passed in, so tests drive
// it with synthetic time.
class TokenBucket {
 public:
  using clock = std::chrono::steady_clock;

  TokenBucket(double rate_per_sec, double burst) noexcept
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  // Consumes one token if available at `now`; false = rate-limited.
  bool admit(clock::time_point now) noexcept {
    if (last_ == clock::time_point{}) last_ = now;
    const double elapsed =
        std::chrono::duration_cast<std::chrono::duration<double>>(now - last_)
            .count();
    last_ = now;
    tokens_ = tokens_ + elapsed * rate_;
    if (tokens_ > burst_) tokens_ = burst_;
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  // Milliseconds until one token accrues (the retry-after hint); 0 when a
  // token is already available.
  std::int64_t retry_after_ms(clock::time_point now) const noexcept {
    if (tokens_ >= 1.0 || rate_ <= 0.0) return 0;
    const double need = 1.0 - tokens_;
    (void)now;
    return static_cast<std::int64_t>(need / rate_ * 1000.0) + 1;
  }

  double tokens() const noexcept { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  clock::time_point last_{};
};

// Bounded occupancy counter — the admission gate in front of a queue or a
// connection set. try_acquire() never blocks; the bound is the contract.
class BoundedCounter {
 public:
  explicit BoundedCounter(std::int32_t limit) noexcept : limit_(limit) {}

  bool try_acquire() noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    if (count_ >= limit_) {
      ++rejected_;
      return false;
    }
    ++count_;
    if (count_ > peak_) peak_ = count_;
    return true;
  }

  void release() noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    if (count_ > 0) --count_;
  }

  std::int32_t count() const noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    return count_;
  }
  std::int32_t peak() const noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    return peak_;
  }
  std::int64_t rejected() const noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    return rejected_;
  }
  std::int32_t limit() const noexcept { return limit_; }

 private:
  mutable std::mutex mu_;
  std::int32_t limit_;
  std::int32_t count_ = 0;
  std::int32_t peak_ = 0;
  std::int64_t rejected_ = 0;
};

}  // namespace sesp::serve
