#pragma once

// The sesp serve core (docs/serving.md): a multi-threaded localhost TCP
// server speaking sesp-serve/1, built so that *every* resource a client can
// consume is bounded and every bound degrades to a structured reply:
//
//   * bound    — Table-1 cells from a digest-keyed LRU of rendered result
//                bytes; replies are byte-identical on every hit.
//   * run      — simulator runs on a small heavy-worker pool, coalesced by
//                request digest (identical concurrent requests share one
//                execution); adversary=worst routes to the exclusive
//                executor because the worst-case family drivers merge into
//                the process-default observer (single-writer contract).
//   * replay   — differential trace replay on the heavy pool.
//   * sweep    — degradation sweeps on ONE exclusive executor thread under
//                a recovery::Supervisor with a per-sweep journal
//                (journal_dir/sweep-<digest>.journal); the reply is a
//                ticket, poll returns the report. Interrupted sweeps
//                (SIGTERM, chaos) stay resumable; --resume re-enqueues
//                them and finished reports replay byte-identically.
//   * health / stats — inline, never queued.
//
// Robustness contract (serve_test, scripts/serve_smoke.sh):
//   - malformed input of any shape gets BadRequest, never a crash;
//   - past any admission bound (connections, queues, rate, drain) the
//     reply is Overloaded with retry_after_ms, never an unbounded buffer;
//   - an accepted request is answered within its deadline or with a
//     structured Timeout;
//   - request_drain() stops accepting, finishes or journals in-flight
//     work, and interrupted() tells the tool to exit 75 (EX_TEMPFAIL).
//
// Threading: one accept thread, one OS thread per connection (bounded by
// max_connections), heavy_workers run/replay executors, and exactly one
// exclusive executor that owns Supervisor::install — supervisors and the
// default observer are process-global singletons, so everything that
// touches them is serialized on that thread by construction.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/profiler.hpp"
#include "serve/admission.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"

namespace sesp::recovery {
class Supervisor;
}  // namespace sesp::recovery

namespace sesp::serve {

struct ServerConfig {
  std::uint16_t port = 0;  // 0 = ephemeral; port() reports the bound one
  AdmissionConfig admission;
  ProtocolLimits limits;
  std::string journal_dir;  // empty = sweeps run without durability
  bool resume = false;      // re-enqueue journaled sweeps at start()
  // Chaos hook: the first executed sweep's supervisor stops after N journal
  // appends, after which the server drains as if SIGTERM'd (exit-75 path).
  // < 0 disables. Deterministic: the kill point is an append count.
  std::int64_t chaos_stop_after = -1;
};

// Lock-free request-path counters (the serve.* metrics). Exposed by the
// stats op and folded into the process-default observer at stop().
struct ServeCounters {
  std::atomic<std::int64_t> connections_accepted{0};
  std::atomic<std::int64_t> connections_shed{0};   // over the connection cap
  std::atomic<std::int64_t> connections_dropped{0};  // slow writes, oversize
  std::atomic<std::int64_t> requests{0};
  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> bad_request{0};
  std::atomic<std::int64_t> overloaded{0};
  std::atomic<std::int64_t> timeout{0};
  std::atomic<std::int64_t> rate_limited{0};
  std::atomic<std::int64_t> coalesced{0};  // run/replay joins on in-flight
  std::atomic<std::int64_t> sweeps_completed{0};
  std::atomic<std::int64_t> sweeps_interrupted{0};
  std::atomic<std::int64_t> sweeps_resumed{0};
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds 127.0.0.1, starts every thread, and (with resume set) re-enqueues
  // journaled sweeps. False + *error on bind/listen failure.
  bool start(std::string* error);

  std::uint16_t port() const noexcept { return port_; }

  // SIGTERM path: stop accepting, shed new requests with Overloaded
  // ("draining"), stop the running sweep through its supervisor (journaled,
  // resumable). Idempotent, safe from any thread.
  void request_drain();

  // Full shutdown: drains, joins every thread, folds the server's private
  // observability into the process-default observer. Idempotent.
  void stop();

  // True when any sweep was interrupted (drain or chaos) — the tool's
  // exit-75 signal.
  bool interrupted() const noexcept;

  bool draining() const noexcept { return draining_.load(); }
  const ServeCounters& counters() const noexcept { return counters_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  std::int64_t resumed_sweeps() const noexcept { return resumed_; }

  // Rendered stats result object (the stats op's result bytes).
  std::string stats_json() const;

 private:
  // A queued heavy job (run/replay): fulfilled with the rendered result
  // object (kOk), or a status + detail the waiter turns into an error reply.
  struct JobResult {
    Status status = Status::kOk;
    std::string body;  // result bytes (kOk) or error detail otherwise
  };
  struct HeavyJob {
    Request request;
    std::uint64_t digest = 0;
    std::shared_ptr<std::promise<JobResult>> promise;
  };
  // Exclusive-executor job: a ticketed sweep or a synchronous worst-case
  // run (shares the thread because both touch process-global singletons).
  struct ExclusiveJob {
    enum class Kind : std::uint8_t { kSweep, kWorstCase };
    Kind kind = Kind::kSweep;
    Request request;
    std::uint64_t digest = 0;
    std::shared_ptr<std::promise<JobResult>> promise;  // kWorstCase only
  };

  struct Ticket {
    enum class State : std::uint8_t { kQueued, kRunning, kDone, kInterrupted };
    State state = State::kQueued;
    std::string result_json;  // kDone: rendered poll result bytes
  };

  void accept_loop();
  void reap_finished_connections();
  void connection_loop(int fd, std::uint64_t conn_id);
  void heavy_worker_loop();
  void exclusive_loop();

  // One request line end-to-end; returns the reply line (no newline).
  std::string handle_line(const std::string& line, TokenBucket& bucket,
                          obs::Profiler* profiler);
  std::string dispatch(const Request& request, obs::Profiler* profiler);

  std::string handle_bound(const Request& request);
  std::string handle_poll(const Request& request);
  std::string handle_health(const Request& request);
  std::string submit_heavy(const Request& request);
  std::string submit_exclusive_run(const Request& request);
  std::string submit_sweep(const Request& request);

  // Waits on a heavy/exclusive job future under the request deadline.
  std::string await_job(const Request& request, std::uint64_t digest,
                        std::shared_future<JobResult> future);

  JobResult compute_run(const Request& request);
  JobResult compute_replay(const Request& request);
  JobResult compute_worst_case(const Request& request);
  void execute_sweep(const Request& request, std::uint64_t digest);

  // Creates (or resumes) the sweep journal and guarantees the original
  // request is journaled under the "serve.request" stage.
  std::string sweep_journal_path(std::uint64_t digest) const;

  bool load_resumable_sweeps(std::string* error);

  ServerConfig config_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> sweep_interrupted_{false};
  std::atomic<bool> chaos_armed_{false};
  std::int64_t resumed_ = 0;

  ServeCounters counters_;
  ResultCache cache_;
  BoundedCounter connection_gate_;

  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::map<std::uint64_t, std::thread> connections_;  // id -> thread
  std::vector<std::uint64_t> finished_conn_ids_;      // reaped by accept loop
  std::uint64_t next_conn_id_ = 0;

  // The running sweep's supervisor, registered by the exclusive executor so
  // request_drain() can stop it from any thread.
  std::mutex sup_mu_;
  recovery::Supervisor* active_sup_ = nullptr;

  mutable std::mutex heavy_mu_;
  std::condition_variable heavy_cv_;
  std::deque<HeavyJob> heavy_queue_;
  std::vector<std::thread> heavy_threads_;

  mutable std::mutex excl_mu_;
  std::condition_variable excl_cv_;
  std::deque<ExclusiveJob> excl_queue_;
  std::thread excl_thread_;

  // In-flight run/replay coalescing: digest -> shared future.
  std::mutex inflight_mu_;
  std::map<std::uint64_t, std::shared_future<JobResult>> inflight_;

  mutable std::mutex ticket_mu_;
  std::map<std::uint64_t, Ticket> tickets_;

  // Server-private observability, folded into the process default at
  // stop(): heavy jobs observe through ObservationShards parented here
  // (merged under obs_mu_), connection profilers fold here at close.
  mutable std::mutex obs_mu_;
  obs::MetricsRegistry metrics_;
  obs::Profiler profiler_;
  obs::Observer observer_;
};

}  // namespace sesp::serve
