#pragma once

// Bound-result cache (docs/serving.md "Bound cache"): a mutex-guarded LRU
// keyed by the request digest (util/digest), holding the *rendered* result
// object bytes. Replies splice the cached bytes verbatim, so a cell's reply
// is byte-identical on every hit, before/during/after overload, and across
// server restarts (the bytes are a pure function of the request) — the
// property serve_test pins.

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace sesp::serve {

struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t evictions = 0;
  std::int64_t entries = 0;
};

class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Copies the cached rendered bytes into *out and refreshes recency.
  bool lookup(std::uint64_t key, std::string* out) {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return false;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    *out = it->second->rendered;
    return true;
  }

  // Inserts (or refreshes) a rendered result; evicts the least recently
  // used entry past capacity. First insertion wins on a race — concurrent
  // computations of the same key rendered identical bytes anyway.
  void insert(std::uint64_t key, const std::string& rendered) {
    std::lock_guard<std::mutex> lk(mu_);
    if (capacity_ == 0) return;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.push_front(Entry{key, rendered});
    map_[key] = order_.begin();
    if (map_.size() > capacity_) {
      const Entry& oldest = order_.back();
      map_.erase(oldest.key);
      order_.pop_back();
      ++evictions_;
    }
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    CacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.entries = static_cast<std::int64_t>(map_.size());
    return s;
  }

 private:
  struct Entry {
    std::uint64_t key;
    std::string rendered;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
};

}  // namespace sesp::serve
