#include "serve/protocol.hpp"

#include <cmath>
#include <sstream>

#include "model/trace_io.hpp"
#include "obs/json.hpp"
#include "util/digest.hpp"

namespace sesp::serve {

namespace {

// Nesting depth of a parsed value (scalar = 1). The parser's own hard cap
// (256) bounds the recursion here; the protocol cap is much lower.
int depth_of(const obs::JsonValue& v) {
  int deepest = 0;
  if (v.is_array()) {
    for (const obs::JsonValue& e : v.array)
      deepest = std::max(deepest, depth_of(e));
  } else if (v.is_object()) {
    for (const auto& [key, e] : v.object)
      deepest = std::max(deepest, depth_of(e));
  } else {
    return 1;
  }
  return 1 + deepest;
}

bool fail(std::string* error, const std::string& detail) {
  if (error) *error = detail;
  return false;
}

// Integer field: JSON number with an exactly-representable integral value.
bool read_int(const obs::JsonValue& doc, const char* name, std::int64_t lo,
              std::int64_t hi, std::int64_t* out, std::string* error) {
  const obs::JsonValue* v = doc.find(name);
  if (!v) return true;  // keep default
  if (!v->is_number() || v->number != std::floor(v->number) ||
      std::abs(v->number) > 9e15)
    return fail(error, std::string("field \"") + name +
                           "\" must be an integer");
  const std::int64_t n = v->as_int64();
  if (n < lo || n > hi)
    return fail(error, std::string("field \"") + name + "\" out of range [" +
                           std::to_string(lo) + "," + std::to_string(hi) +
                           "]");
  *out = n;
  return true;
}

// Rational field: "7/2" / "3" strings (exact) or integral JSON numbers.
bool read_ratio(const obs::JsonValue& doc, const char* name, Ratio* out,
                std::string* error) {
  const obs::JsonValue* v = doc.find(name);
  if (!v) return true;
  if (v->is_string()) {
    const auto r = ratio_from_text(v->string);
    if (!r)
      return fail(error, std::string("field \"") + name +
                             "\" is not a rational (want \"p/q\")");
    *out = *r;
    return true;
  }
  if (v->is_number() && v->number == std::floor(v->number) &&
      std::abs(v->number) <= 9e15) {
    *out = Ratio(v->as_int64());
    return true;
  }
  return fail(error, std::string("field \"") + name +
                         "\" must be a rational string or an integer");
}

bool read_string(const obs::JsonValue& doc, const char* name,
                 std::string* out, std::string* error) {
  const obs::JsonValue* v = doc.find(name);
  if (!v) return true;
  if (!v->is_string())
    return fail(error, std::string("field \"") + name + "\" must be a string");
  *out = v->string;
  return true;
}

bool one_of(const std::string& value, std::initializer_list<const char*> set) {
  for (const char* s : set)
    if (value == s) return true;
  return false;
}

}  // namespace

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kBound: return "bound";
    case Op::kRun: return "run";
    case Op::kReplay: return "replay";
    case Op::kSweep: return "sweep";
    case Op::kPoll: return "poll";
    case Op::kHealth: return "health";
    case Op::kStats: return "stats";
  }
  return "unknown";
}

const char* status_name(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "Ok";
    case Status::kBadRequest: return "BadRequest";
    case Status::kOverloaded: return "Overloaded";
    case Status::kTimeout: return "Timeout";
  }
  return "unknown";
}

bool parse_request(std::string_view line, const ProtocolLimits& limits,
                   Request* out, std::string* error) {
  *out = Request{};
  if (line.size() > limits.max_line_bytes)
    return fail(error, "request line exceeds " +
                           std::to_string(limits.max_line_bytes) + " bytes");

  std::string parse_error;
  const auto doc = obs::parse_json(line, &parse_error);
  if (!doc) return fail(error, "malformed JSON: " + parse_error);
  if (!doc->is_object())
    return fail(error, "request must be a JSON object");
  if (depth_of(*doc) > limits.max_depth)
    return fail(error, "request exceeds nesting depth " +
                           std::to_string(limits.max_depth));

  // The id is recovered first so even otherwise-bad requests get a reply
  // carrying their id.
  if (!read_int(*doc, "id", 0, 9'000'000'000'000'000, &out->id, error))
    return false;

  std::string op;
  if (!read_string(*doc, "op", &op, error)) return false;
  if (op.empty()) return fail(error, "missing field \"op\"");
  if (op == "bound") out->op = Op::kBound;
  else if (op == "run") out->op = Op::kRun;
  else if (op == "replay") out->op = Op::kReplay;
  else if (op == "sweep") out->op = Op::kSweep;
  else if (op == "poll") out->op = Op::kPoll;
  else if (op == "health") out->op = Op::kHealth;
  else if (op == "stats") out->op = Op::kStats;
  else return fail(error, "unknown op \"" + op + "\"");

  std::int64_t n = out->spec.n, b = out->spec.b;
  if (!read_int(*doc, "s", 1, limits.max_s, &out->spec.s, error) ||
      !read_int(*doc, "n", 1, limits.max_n, &n, error) ||
      !read_int(*doc, "b", 1, limits.max_n, &b, error))
    return false;
  out->spec.n = static_cast<std::int32_t>(n);
  out->spec.b = static_cast<std::int32_t>(b);

  if (!read_ratio(*doc, "c1", &out->c1, error) ||
      !read_ratio(*doc, "c2", &out->c2, error) ||
      !read_ratio(*doc, "d1", &out->d1, error) ||
      !read_ratio(*doc, "d2", &out->d2, error))
    return false;
  if (out->c1.is_negative() || out->d1.is_negative() ||
      !out->c2.is_positive() || !out->d2.is_positive())
    return fail(error, "timing constants must satisfy c1,d1 >= 0 and c2,d2 > 0");
  if (out->c2 < out->c1 || out->d2 < out->d1)
    return fail(error, "timing constants must satisfy c1 <= c2 and d1 <= d2");

  std::int64_t seed = static_cast<std::int64_t>(out->seed);
  if (!read_int(*doc, "seed", 0, 9'000'000'000'000'000, &seed, error))
    return false;
  out->seed = static_cast<std::uint64_t>(seed);
  if (!read_int(*doc, "deadline_ms", 0, limits.max_deadline_ms,
                &out->deadline_ms, error))
    return false;

  if (!read_string(*doc, "substrate", &out->substrate, error) ||
      !read_string(*doc, "side", &out->bound_side, error) ||
      !read_string(*doc, "model", &out->model, error) ||
      !read_string(*doc, "adversary", &out->adversary, error) ||
      !read_string(*doc, "ticket", &out->ticket, error) ||
      !read_string(*doc, "trace", &out->trace_text, error))
    return false;

  if (!one_of(out->model,
              {"sync", "periodic", "semisync", "sporadic", "async"}))
    return fail(error, "unknown model \"" + out->model + "\"");

  switch (out->op) {
    case Op::kBound:
      if (!one_of(out->bound_side, {"sm", "mp"}))
        return fail(error, "bound needs side=sm|mp");
      break;
    case Op::kRun:
    case Op::kSweep:
      if (!one_of(out->substrate, {"mpm", "smm"}))
        return fail(error, "substrate must be mpm|smm");
      if (out->op == Op::kRun &&
          !one_of(out->adversary, {"worst", "lockstep", "random"}))
        return fail(error, "adversary must be worst|lockstep|random");
      break;
    case Op::kReplay: {
      if (!one_of(out->substrate, {"mpm", "smm"}))
        return fail(error, "substrate must be mpm|smm");
      if (out->trace_text.empty())
        return fail(error, "replay needs a \"trace\" field");
      break;
    }
    case Op::kPoll: {
      std::uint64_t parsed = 0;
      if (!util::parse_fnv1a_hex(out->ticket, &parsed))
        return fail(error, "poll needs a 16-hex-digit \"ticket\"");
      break;
    }
    case Op::kHealth:
    case Op::kStats:
      break;
  }
  return true;
}

std::uint64_t request_digest(const Request& r) {
  // Canonical '|'-joined text of every result-affecting field of the op —
  // the same construction the tools' config_digest() functions use, so a
  // ticket can be recomputed from a journaled request by any layer.
  std::ostringstream os;
  os << op_name(r.op) << '|';
  switch (r.op) {
    case Op::kBound:
      os << r.bound_side << '|' << r.model << '|' << r.spec.s << '|'
         << r.spec.n << '|' << r.spec.b << '|' << ratio_to_text(r.c1) << '|'
         << ratio_to_text(r.c2) << '|' << ratio_to_text(r.d1) << '|'
         << ratio_to_text(r.d2);
      break;
    case Op::kRun:
      os << r.substrate << '|' << r.model << '|' << r.adversary << '|'
         << r.spec.s << '|' << r.spec.n << '|' << r.spec.b << '|'
         << ratio_to_text(r.c1) << '|' << ratio_to_text(r.c2) << '|'
         << ratio_to_text(r.d1) << '|' << ratio_to_text(r.d2) << '|'
         << r.seed;
      break;
    case Op::kSweep:
      os << r.substrate << '|' << r.model << '|' << r.spec.s << '|'
         << r.spec.n << '|' << r.spec.b << '|' << ratio_to_text(r.c1) << '|'
         << ratio_to_text(r.c2) << '|' << ratio_to_text(r.d1) << '|'
         << ratio_to_text(r.d2) << '|' << r.seed;
      break;
    case Op::kReplay:
      os << r.substrate << '|' << r.model << '|' << r.spec.s << '|'
         << r.spec.n << '|' << r.spec.b << '|' << ratio_to_text(r.c1) << '|'
         << ratio_to_text(r.c2) << '|' << ratio_to_text(r.d1) << '|'
         << ratio_to_text(r.d2) << '|'
         << util::fnv1a_hex(util::fnv1a(r.trace_text));
      break;
    case Op::kPoll:
      os << r.ticket;
      break;
    case Op::kHealth:
    case Op::kStats:
      break;
  }
  return util::fnv1a(os.str());
}

std::string render_request(const Request& r) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("id", r.id);
  w.field("op", op_name(r.op));
  w.field("substrate", r.substrate);
  w.field("side", r.bound_side);
  w.field("model", r.model);
  w.field("adversary", r.adversary);
  w.field("s", r.spec.s);
  w.field("n", static_cast<std::int64_t>(r.spec.n));
  w.field("b", static_cast<std::int64_t>(r.spec.b));
  w.field("c1", ratio_to_text(r.c1));
  w.field("c2", ratio_to_text(r.c2));
  w.field("d1", ratio_to_text(r.d1));
  w.field("d2", ratio_to_text(r.d2));
  w.field("seed", static_cast<std::int64_t>(r.seed));
  if (r.deadline_ms > 0) w.field("deadline_ms", r.deadline_ms);
  if (!r.ticket.empty()) w.field("ticket", r.ticket);
  if (!r.trace_text.empty()) w.field("trace", r.trace_text);
  w.end_object();
  return os.str();
}

std::string ok_reply(std::int64_t id, const std::string& result_json) {
  // The result fragment is spliced verbatim by design: it is always
  // JsonWriter-rendered by this process (result_json() in the server), and
  // reusing the cached bytes unchanged is what makes repeated bound replies
  // byte-identical across cache hits, overload and restarts.
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"status\":\"" << status_name(Status::kOk)
     << "\",\"result\":" << result_json << '}';
  return os.str();
}

std::string error_reply(std::int64_t id, Status status,
                        const std::string& detail,
                        std::int64_t retry_after_ms) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("id", id);
  w.field("status", status_name(status));
  w.field("error", detail);
  if (retry_after_ms > 0) w.field("retry_after_ms", retry_after_ms);
  w.end_object();
  return os.str();
}

}  // namespace sesp::serve
