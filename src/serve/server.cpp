#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <utility>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/async_alg.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/mpm/sync_alg.hpp"
#include "algorithms/smm/async_alg.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "algorithms/smm/sync_alg.hpp"
#include "analysis/bounds.hpp"
#include "model/trace_io.hpp"
#include "obs/json.hpp"
#include "recovery/supervisor.hpp"
#include "sim/experiment.hpp"
#include "sim/replay.hpp"
#include "smm/smm_simulator.hpp"

namespace sesp::serve {

namespace {

constexpr char kJournalTool[] = "sesp_serve";
constexpr char kRequestStage[] = "serve.request";
constexpr char kReportStage[] = "serve.report";

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

// Timing constraints exactly as sesp_cli builds them — the sweep report's
// byte-identity with the offline tool depends on this mirroring.
TimingConstraints request_constraints(const Request& r,
                                      std::int32_t total_processes) {
  if (r.model == "sync") return TimingConstraints::synchronous(r.c2, r.d2);
  if (r.model == "periodic") {
    std::vector<Duration> periods;
    for (std::int32_t i = 0; i < total_processes; ++i) {
      const Ratio frac = total_processes > 1
                             ? Ratio(i, std::max(total_processes - 1, 1))
                             : Ratio(0);
      periods.push_back(r.c1 + (r.c2 - r.c1) * frac);
    }
    return TimingConstraints::periodic(periods, r.d2);
  }
  if (r.model == "semisync")
    return TimingConstraints::semi_synchronous(r.c1, r.c2, r.d2);
  if (r.model == "sporadic")
    return TimingConstraints::sporadic(r.c1, r.d1, r.d2);
  return TimingConstraints::asynchronous(r.c2, r.d2);
}

std::unique_ptr<MpmAlgorithmFactory> make_mpm_factory(const std::string& m) {
  if (m == "sync") return std::make_unique<SyncMpmFactory>();
  if (m == "periodic") return std::make_unique<PeriodicMpmFactory>();
  if (m == "semisync") return std::make_unique<SemiSyncMpmFactory>();
  if (m == "sporadic") return std::make_unique<SporadicMpmFactory>();
  return std::make_unique<AsyncMpmFactory>();
}

// No sporadic SMM algorithm exists (Table 1's sporadic row is MP-only);
// sesp_cli falls back to the async algorithm there, and so do we.
std::unique_ptr<SmmAlgorithmFactory> make_smm_factory(const std::string& m) {
  if (m == "sync") return std::make_unique<SyncSmmFactory>();
  if (m == "periodic") return std::make_unique<PeriodicSmmFactory>();
  if (m == "semisync") return std::make_unique<SemiSyncSmmFactory>();
  return std::make_unique<AsyncSmmFactory>();
}

const char* ticket_state_name(std::uint8_t state) {
  switch (state) {
    case 0: return "queued";
    case 1: return "running";
    case 2: return "done";
    case 3: return "interrupted";
  }
  return "unknown";
}

// Nonblocking write with a wall-clock budget; false = slow/dead client.
bool write_with_timeout(int fd, std::string_view data,
                        std::int64_t timeout_ms) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t k =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const auto now = clock::now();
      if (now >= deadline) return false;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - now)
                            .count();
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, static_cast<int>(std::min<std::int64_t>(left, 100)));
      continue;
    }
    return false;
  }
  return true;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.admission.cache_capacity),
      connection_gate_(config_.admission.max_connections),
      observer_(&metrics_) {
  observer_.profiler = &profiler_;
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    if (error) *error = errno_text("socket");
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 64) < 0) {
    if (error) *error = errno_text("bind/listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  if (::pipe(wake_pipe_) < 0) {
    if (error) *error = errno_text("pipe");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  if (!config_.journal_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.journal_dir, ec);
    if (config_.resume && !load_resumable_sweeps(error)) return false;
  }

  running_.store(true);
  accept_thread_ = std::thread(&Server::accept_loop, this);
  for (std::int32_t i = 0; i < config_.admission.heavy_workers; ++i)
    heavy_threads_.emplace_back(&Server::heavy_worker_loop, this);
  excl_thread_ = std::thread(&Server::exclusive_loop, this);
  return true;
}

void Server::request_drain() {
  if (draining_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lk(sup_mu_);
    if (active_sup_ != nullptr) active_sup_->request_stop();
  }
  if (wake_pipe_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] const ssize_t k = ::write(wake_pipe_[1], &b, 1);
  }
  excl_cv_.notify_all();
}

void Server::stop() {
  if (stopping_.exchange(true)) {
    // A second caller still waits for the first teardown to complete by
    // joining nothing — teardown is single-owner via the exchange above.
    return;
  }
  request_drain();
  heavy_cv_.notify_all();
  excl_cv_.notify_all();

  if (accept_thread_.joinable()) accept_thread_.join();
  std::map<std::uint64_t, std::thread> conns;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    conns.swap(connections_);
    finished_conn_ids_.clear();
  }
  for (auto& [id, t] : conns)
    if (t.joinable()) t.join();
  for (std::thread& t : heavy_threads_)
    if (t.joinable()) t.join();
  heavy_threads_.clear();
  if (excl_thread_.joinable()) excl_thread_.join();

  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  running_.store(false);

  // Fold the server-private observability into the process default. Every
  // worker thread is joined above, so this is the single-writer moment.
  obs::Observer* def = obs::default_observer();
  if (def == nullptr) return;
  std::lock_guard<std::mutex> lk(obs_mu_);
  if (def->metrics != nullptr) {
    def->metrics->merge_from(metrics_);
    auto put = [&](const char* name, const std::atomic<std::int64_t>& v) {
      def->metrics->counter(name).inc(v.load());
    };
    put("serve.connections.accepted", counters_.connections_accepted);
    put("serve.connections.shed", counters_.connections_shed);
    put("serve.connections.dropped", counters_.connections_dropped);
    put("serve.requests", counters_.requests);
    put("serve.ok", counters_.ok);
    put("serve.bad_request", counters_.bad_request);
    put("serve.overloaded", counters_.overloaded);
    put("serve.timeout", counters_.timeout);
    put("serve.rate_limited", counters_.rate_limited);
    put("serve.coalesced", counters_.coalesced);
    put("serve.sweeps.completed", counters_.sweeps_completed);
    put("serve.sweeps.interrupted", counters_.sweeps_interrupted);
    put("serve.sweeps.resumed", counters_.sweeps_resumed);
    const CacheStats cs = cache_.stats();
    def->metrics->counter("serve.cache.hits").inc(cs.hits);
    def->metrics->counter("serve.cache.misses").inc(cs.misses);
    def->metrics->counter("serve.cache.evictions").inc(cs.evictions);
  }
  if (def->profiler != nullptr) def->profiler->merge_from(profiler_);
}

bool Server::interrupted() const noexcept {
  return sweep_interrupted_.load();
}

// --- Accept / connection threads -------------------------------------------

void Server::reap_finished_connections() {
  std::vector<std::uint64_t> done;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    done.swap(finished_conn_ids_);
  }
  for (const std::uint64_t id : done) {
    std::thread t;
    {
      std::lock_guard<std::mutex> lk(conn_mu_);
      const auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      t = std::move(it->second);
      connections_.erase(it);
    }
    if (t.joinable()) t.join();
  }
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    // Draining closes the listener: no new connections, existing ones keep
    // getting structured replies until stop().
    if (draining_.load() && listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int nfds = listen_fd_ >= 0 ? 2 : 1;
    pollfd* base = listen_fd_ >= 0 ? fds : fds + 1;
    if (::poll(base, nfds, 200) < 0 && errno != EINTR) break;
    char buf[64];
    while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
    }
    if (listen_fd_ >= 0 && (fds[0].revents & POLLIN) != 0) {
      const int cfd = ::accept(listen_fd_, nullptr, nullptr);
      if (cfd >= 0) {
        set_nonblocking(cfd);
        int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        if (!connection_gate_.try_acquire()) {
          ++counters_.connections_shed;
          write_with_timeout(
              cfd,
              error_reply(0, Status::kOverloaded, "connection limit reached",
                          config_.admission.retry_after_ms) +
                  "\n",
              config_.admission.write_timeout_ms);
          ::close(cfd);
        } else {
          ++counters_.connections_accepted;
          std::lock_guard<std::mutex> lk(conn_mu_);
          const std::uint64_t id = next_conn_id_++;
          connections_.emplace(
              id, std::thread(&Server::connection_loop, this, cfd, id));
        }
      }
    }
    reap_finished_connections();
  }
}

void Server::connection_loop(int fd, std::uint64_t conn_id) {
  using clock = std::chrono::steady_clock;
  TokenBucket bucket(config_.admission.rate_per_sec, config_.admission.burst);
  obs::Profiler profiler;
  std::string buffer;
  auto last_activity = clock::now();
  bool drop = false;
  char chunk[4096];

  while (!stopping_.load() && !drop) {
    pollfd p{fd, POLLIN, 0};
    const int pr = ::poll(&p, 1, 200);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) {
      const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                            clock::now() - last_activity)
                            .count();
      if (idle >= config_.admission.idle_timeout_ms) break;
      continue;
    }
    const ssize_t k = ::recv(fd, chunk, sizeof chunk, 0);
    if (k == 0) break;
    if (k < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    last_activity = clock::now();
    buffer.append(chunk, static_cast<std::size_t>(k));

    std::size_t nl;
    while (!drop && (nl = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string reply = handle_line(line, bucket, &profiler) + "\n";
      if (!write_with_timeout(fd, reply, config_.admission.write_timeout_ms)) {
        ++counters_.connections_dropped;
        drop = true;
      }
    }
    // A partial line past the cap can never become a valid request; the
    // framing is untrustworthy, so reply once and cut the connection.
    if (!drop && buffer.size() > config_.limits.max_line_bytes) {
      ++counters_.requests;
      ++counters_.bad_request;
      ++counters_.connections_dropped;
      write_with_timeout(
          fd,
          error_reply(0, Status::kBadRequest,
                      "request line exceeds " +
                          std::to_string(config_.limits.max_line_bytes) +
                          " bytes") +
              "\n",
          config_.admission.write_timeout_ms);
      drop = true;
    }
  }
  ::close(fd);
  {
    std::lock_guard<std::mutex> lk(obs_mu_);
    profiler_.merge_from(profiler);
  }
  connection_gate_.release();
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    finished_conn_ids_.push_back(conn_id);
  }
}

// --- Request path ----------------------------------------------------------

std::string Server::handle_line(const std::string& line, TokenBucket& bucket,
                                obs::Profiler* profiler) {
  obs::ProfileScope scope(profiler, obs::ProfilePhase::kServeRequest);
  ++counters_.requests;
  Request r;
  std::string err;
  if (!parse_request(line, config_.limits, &r, &err)) {
    ++counters_.bad_request;
    return error_reply(r.id, Status::kBadRequest, err);
  }
  const auto now = TokenBucket::clock::now();
  if (!bucket.admit(now)) {
    ++counters_.rate_limited;
    ++counters_.overloaded;
    return error_reply(r.id, Status::kOverloaded, "rate limited",
                       bucket.retry_after_ms(now));
  }
  return dispatch(r, profiler);
}

std::string Server::dispatch(const Request& r, obs::Profiler* profiler) {
  (void)profiler;
  if (r.op == Op::kHealth) return handle_health(r);
  if (r.op == Op::kStats) {
    ++counters_.ok;
    return ok_reply(r.id, stats_json());
  }
  if (r.op == Op::kPoll) return handle_poll(r);
  if (draining_.load()) {
    ++counters_.overloaded;
    return error_reply(r.id, Status::kOverloaded, "draining",
                       config_.admission.retry_after_ms);
  }
  switch (r.op) {
    case Op::kBound: return handle_bound(r);
    case Op::kRun:
      return r.adversary == "worst" ? submit_exclusive_run(r)
                                    : submit_heavy(r);
    case Op::kReplay: return submit_heavy(r);
    case Op::kSweep: return submit_sweep(r);
    default: break;
  }
  ++counters_.bad_request;
  return error_reply(r.id, Status::kBadRequest, "unhandled op");
}

std::string Server::handle_health(const Request& r) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("schema", kProtocolSchema);
  w.field("state", draining_.load() ? "draining" : "ok");
  w.end_object();
  ++counters_.ok;
  return ok_reply(r.id, os.str());
}

std::string Server::handle_bound(const Request& r) {
  const std::uint64_t digest = request_digest(r);
  std::string cached;
  if (cache_.lookup(digest, &cached)) {
    ++counters_.ok;
    return ok_reply(r.id, cached);
  }
  if (r.model == "sporadic" && r.bound_side == "sm") {
    ++counters_.bad_request;
    return error_reply(r.id, Status::kBadRequest,
                       "sporadic bounds are MP-only (Table 1, row 4)");
  }

  const bool sm = r.bound_side == "sm";
  const std::int64_t tree = smm_tree_latency_steps(r.spec.n, r.spec.b);
  bool in_rounds = false;
  Time lower = 0, upper = 0;
  std::int64_t lower_rounds = 0, upper_rounds = 0;
  std::optional<Ratio> gamma;
  if (r.model == "sync") {
    lower = upper = bounds::sync_tight(r.spec, r.c2);
  } else if (r.model == "periodic") {
    if (sm) {
      lower = bounds::periodic_sm_lower(r.spec, r.c2, r.c1);
      upper = bounds::periodic_sm_upper(r.spec, r.c2, tree);
    } else {
      lower = bounds::periodic_mp_lower(r.spec, r.c2, r.d2);
      upper = bounds::periodic_mp_upper(r.spec, r.c2, r.d2);
    }
  } else if (r.model == "semisync") {
    if (sm) {
      lower = bounds::semisync_sm_lower(r.spec, r.c1, r.c2);
      upper = bounds::semisync_sm_upper(r.spec, r.c1, r.c2, tree);
    } else {
      lower = bounds::semisync_mp_lower(r.spec, r.c1, r.c2, r.d2);
      upper = bounds::semisync_mp_upper(r.spec, r.c1, r.c2, r.d2);
    }
  } else if (r.model == "sporadic") {
    gamma = bounds::sporadic_K(r.c1, r.d1, r.d2);
    lower = bounds::sporadic_mp_lower(r.spec, r.c1, r.d1, r.d2);
    upper = bounds::sporadic_mp_upper(r.spec, r.c1, r.d1, r.d2, *gamma);
  } else {  // async
    if (sm) {
      in_rounds = true;
      lower_rounds = bounds::async_sm_lower_rounds(r.spec);
      upper_rounds = bounds::async_sm_upper_rounds(r.spec, tree);
    } else {
      lower = bounds::async_mp_lower(r.spec, r.d2);
      upper = bounds::async_mp_upper(r.spec, r.c2, r.d2);
    }
  }

  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("op", "bound");
  w.field("model", r.model);
  w.field("side", r.bound_side);
  w.field("s", r.spec.s);
  w.field("n", static_cast<std::int64_t>(r.spec.n));
  w.field("b", static_cast<std::int64_t>(r.spec.b));
  w.field("c1", r.c1);
  w.field("c2", r.c2);
  w.field("d1", r.d1);
  w.field("d2", r.d2);
  w.field("measure", in_rounds ? "rounds" : "time");
  if (in_rounds) {
    w.field("lower", lower_rounds);
    w.field("upper", upper_rounds);
    w.field("lower_approx", static_cast<double>(lower_rounds));
    w.field("upper_approx", static_cast<double>(upper_rounds));
  } else {
    w.field("lower", lower);
    w.field("upper", upper);
    w.field("lower_approx", lower.to_double());
    w.field("upper_approx", upper.to_double());
  }
  if (gamma) {
    // The closed-form upper is per-computation in gamma; the served cell
    // instantiates gamma = K (Theorem 6.5's bound on any computation).
    w.field("K", *gamma);
    w.field("gamma", *gamma);
  }
  w.end_object();
  const std::string result = os.str();
  cache_.insert(digest, result);
  ++counters_.ok;
  return ok_reply(r.id, result);
}

std::string Server::handle_poll(const Request& r) {
  std::uint64_t key = 0;
  util::parse_fnv1a_hex(r.ticket, &key);  // validated by parse_request
  std::lock_guard<std::mutex> lk(ticket_mu_);
  const auto it = tickets_.find(key);
  if (it == tickets_.end()) {
    ++counters_.bad_request;
    return error_reply(r.id, Status::kBadRequest, "unknown ticket");
  }
  if (it->second.state == Ticket::State::kDone) {
    ++counters_.ok;
    return ok_reply(r.id, it->second.result_json);
  }
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("ticket", r.ticket);
  w.field("state",
          ticket_state_name(static_cast<std::uint8_t>(it->second.state)));
  if (it->second.state == Ticket::State::kInterrupted)
    w.field("resumable", !config_.journal_dir.empty());
  w.end_object();
  ++counters_.ok;
  return ok_reply(r.id, os.str());
}

std::string Server::submit_heavy(const Request& r) {
  const std::uint64_t digest = request_digest(r);
  std::shared_future<JobResult> fut;
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    const auto it = inflight_.find(digest);
    if (it != inflight_.end()) {
      ++counters_.coalesced;
      fut = it->second;
    } else {
      {
        std::lock_guard<std::mutex> qk(heavy_mu_);
        if (static_cast<std::int32_t>(heavy_queue_.size()) >=
            config_.admission.max_queue) {
          ++counters_.overloaded;
          return error_reply(r.id, Status::kOverloaded, "run queue full",
                             config_.admission.retry_after_ms);
        }
        auto prom = std::make_shared<std::promise<JobResult>>();
        fut = prom->get_future().share();
        inflight_[digest] = fut;
        heavy_queue_.push_back(HeavyJob{r, digest, std::move(prom)});
      }
      heavy_cv_.notify_one();
    }
  }
  return await_job(r, digest, fut);
}

std::string Server::submit_exclusive_run(const Request& r) {
  const std::uint64_t digest = request_digest(r);
  std::shared_future<JobResult> fut;
  {
    std::lock_guard<std::mutex> lk(inflight_mu_);
    const auto it = inflight_.find(digest);
    if (it != inflight_.end()) {
      ++counters_.coalesced;
      fut = it->second;
    } else {
      {
        std::lock_guard<std::mutex> qk(excl_mu_);
        if (static_cast<std::int32_t>(excl_queue_.size()) >=
            config_.admission.max_sweep_queue) {
          ++counters_.overloaded;
          return error_reply(r.id, Status::kOverloaded,
                             "exclusive queue full",
                             config_.admission.retry_after_ms);
        }
        auto prom = std::make_shared<std::promise<JobResult>>();
        fut = prom->get_future().share();
        inflight_[digest] = fut;
        excl_queue_.push_back(ExclusiveJob{ExclusiveJob::Kind::kWorstCase, r,
                                           digest, std::move(prom)});
      }
      excl_cv_.notify_one();
    }
  }
  return await_job(r, digest, fut);
}

std::string Server::submit_sweep(const Request& r) {
  const std::uint64_t digest = request_digest(r);
  const std::string hex = util::fnv1a_hex(digest);
  {
    std::lock_guard<std::mutex> tk(ticket_mu_);
    const auto it = tickets_.find(digest);
    if (it != tickets_.end()) {
      // Identical sweep already known: reply with its current state (the
      // ticket dedup form of request coalescing).
      ++counters_.coalesced;
      if (it->second.state == Ticket::State::kDone) {
        ++counters_.ok;
        return ok_reply(r.id, it->second.result_json);
      }
      std::ostringstream os;
      obs::JsonWriter w(os);
      w.begin_object();
      w.field("ticket", hex);
      w.field("state",
              ticket_state_name(static_cast<std::uint8_t>(it->second.state)));
      w.end_object();
      ++counters_.ok;
      return ok_reply(r.id, os.str());
    }
    {
      std::lock_guard<std::mutex> qk(excl_mu_);
      if (static_cast<std::int32_t>(excl_queue_.size()) >=
          config_.admission.max_sweep_queue) {
        ++counters_.overloaded;
        return error_reply(r.id, Status::kOverloaded, "sweep queue full",
                           config_.admission.retry_after_ms);
      }
      tickets_[digest] = Ticket{};
      // Journal the request at enqueue time: a queued sweep is durable (and
      // --resume re-enqueues it) even if the server dies before it runs.
      if (!config_.journal_dir.empty()) {
        std::string jerr;
        auto j = recovery::RunJournal::create(sweep_journal_path(digest),
                                              kJournalTool, digest, &jerr);
        if (j) j->append(kRequestStage, 0, render_request(r));
      }
      excl_queue_.push_back(
          ExclusiveJob{ExclusiveJob::Kind::kSweep, r, digest, nullptr});
    }
    excl_cv_.notify_one();
  }
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("ticket", hex);
  w.field("state", "queued");
  w.end_object();
  ++counters_.ok;
  return ok_reply(r.id, os.str());
}

std::string Server::await_job(const Request& r, std::uint64_t digest,
                              std::shared_future<JobResult> future) {
  (void)digest;
  using clock = std::chrono::steady_clock;
  std::int64_t deadline_ms = r.deadline_ms > 0
                                 ? r.deadline_ms
                                 : config_.admission.default_deadline_ms;
  deadline_ms = std::min(deadline_ms, config_.limits.max_deadline_ms);
  const auto deadline = clock::now() + std::chrono::milliseconds(deadline_ms);
  for (;;) {
    const auto now = clock::now();
    if (now >= deadline) {
      ++counters_.timeout;
      return error_reply(r.id, Status::kTimeout,
                         "deadline of " + std::to_string(deadline_ms) +
                             " ms expired before the result was ready");
    }
    auto slice =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    if (slice > std::chrono::milliseconds(100))
      slice = std::chrono::milliseconds(100);
    if (future.wait_for(slice) == std::future_status::ready) break;
    if (stopping_.load()) {
      ++counters_.overloaded;
      return error_reply(r.id, Status::kOverloaded, "draining",
                         config_.admission.retry_after_ms);
    }
  }
  const JobResult& res = future.get();
  if (res.status == Status::kOk) {
    ++counters_.ok;
    return ok_reply(r.id, res.body);
  }
  if (res.status == Status::kBadRequest) ++counters_.bad_request;
  else if (res.status == Status::kOverloaded) ++counters_.overloaded;
  else ++counters_.timeout;
  return error_reply(
      r.id, res.status, res.body,
      res.status == Status::kOverloaded ? config_.admission.retry_after_ms
                                        : 0);
}

// --- Workers ---------------------------------------------------------------

void Server::heavy_worker_loop() {
  for (;;) {
    HeavyJob job;
    {
      std::unique_lock<std::mutex> lk(heavy_mu_);
      heavy_cv_.wait(lk, [&] {
        return stopping_.load() || !heavy_queue_.empty();
      });
      if (heavy_queue_.empty()) break;  // stopping with nothing queued
      job = std::move(heavy_queue_.front());
      heavy_queue_.pop_front();
    }
    if (config_.admission.test_heavy_delay_ms > 0)
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.admission.test_heavy_delay_ms));
    JobResult res = job.request.op == Op::kReplay ? compute_replay(job.request)
                                                  : compute_run(job.request);
    job.promise->set_value(std::move(res));
    {
      std::lock_guard<std::mutex> lk(inflight_mu_);
      inflight_.erase(job.digest);
    }
  }
}

void Server::exclusive_loop() {
  for (;;) {
    ExclusiveJob job;
    {
      std::unique_lock<std::mutex> lk(excl_mu_);
      excl_cv_.wait(lk, [&] {
        return stopping_.load() || draining_.load() || !excl_queue_.empty();
      });
      if (stopping_.load() || draining_.load()) break;
      job = std::move(excl_queue_.front());
      excl_queue_.pop_front();
    }
    if (job.kind == ExclusiveJob::Kind::kSweep) {
      if (config_.admission.test_heavy_delay_ms > 0)
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config_.admission.test_heavy_delay_ms));
      execute_sweep(job.request, job.digest);
    } else {
      JobResult res = compute_worst_case(job.request);
      job.promise->set_value(std::move(res));
      std::lock_guard<std::mutex> lk(inflight_mu_);
      inflight_.erase(job.digest);
    }
  }
  // Drain: abandoned worst-case jobs get a structured Overloaded; queued
  // sweeps stay journaled on disk and resumable (the exit-75 contract).
  std::deque<ExclusiveJob> leftover;
  {
    std::lock_guard<std::mutex> lk(excl_mu_);
    leftover.swap(excl_queue_);
  }
  for (ExclusiveJob& job : leftover) {
    if (job.kind == ExclusiveJob::Kind::kWorstCase) {
      job.promise->set_value(JobResult{Status::kOverloaded, "draining"});
      std::lock_guard<std::mutex> lk(inflight_mu_);
      inflight_.erase(job.digest);
    } else {
      sweep_interrupted_.store(true);
      ++counters_.sweeps_interrupted;
    }
  }
}

// --- Compute ---------------------------------------------------------------

Server::JobResult Server::compute_run(const Request& r) {
  obs::Profiler local;
  JobResult res;
  obs::ObservationShard shard(&observer_);
  try {
    obs::ProfileScope scope(&local, obs::ProfilePhase::kServeExec);
    std::string algorithm;
    Verdict verdict;
    if (r.substrate == "mpm") {
      const auto constraints = request_constraints(r, r.spec.n);
      const auto factory = make_mpm_factory(r.model);
      algorithm = factory->name();
      std::unique_ptr<StepScheduler> sched;
      std::unique_ptr<DelayStrategy> delay;
      if (r.model == "periodic") {
        sched = std::make_unique<FixedPeriodScheduler>(constraints.periods);
        delay = std::make_unique<FixedDelay>(r.d2);
      } else if (r.adversary == "lockstep") {
        sched = std::make_unique<FixedPeriodScheduler>(
            r.spec.n, r.model == "sporadic" ? r.c1 : r.c2);
        delay = std::make_unique<FixedDelay>(r.d2);
      } else {
        const Duration lo = r.c1.is_positive() ? r.c1 : r.c2 / 8;
        sched = std::make_unique<UniformGapScheduler>(
            lo, r.model == "sporadic" ? r.c1 * 8 : r.c2, r.seed);
        delay = std::make_unique<UniformRandomDelay>(r.d1, r.d2, r.seed + 1);
      }
      const MpmOutcome out =
          run_mpm_once(r.spec, constraints, *factory, *sched, *delay,
                       MpmRunLimits{}, nullptr, shard.observer());
      verdict = out.verdict;
    } else {
      const std::int32_t total = smm_total_processes(r.spec.n, r.spec.b);
      const auto constraints = request_constraints(r, total);
      const auto factory = make_smm_factory(r.model);
      algorithm = factory->name();
      std::unique_ptr<StepScheduler> sched;
      if (r.model == "periodic") {
        sched = std::make_unique<FixedPeriodScheduler>(constraints.periods);
      } else if (r.adversary == "lockstep") {
        sched = std::make_unique<FixedPeriodScheduler>(total, r.c2);
      } else {
        const Duration lo = r.c1.is_positive() ? r.c1 : r.c2 / 8;
        sched = std::make_unique<UniformGapScheduler>(lo, r.c2, r.seed);
      }
      const SmmOutcome out =
          run_smm_once(r.spec, constraints, *factory, *sched, SmmRunLimits{},
                       nullptr, shard.observer());
      verdict = out.verdict;
    }
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.begin_object();
    w.field("op", "run");
    w.field("substrate", r.substrate);
    w.field("model", r.model);
    w.field("adversary", r.adversary);
    w.field("algorithm", algorithm);
    w.field("s", r.spec.s);
    w.field("n", static_cast<std::int64_t>(r.spec.n));
    w.field("b", static_cast<std::int64_t>(r.spec.b));
    w.field("seed", static_cast<std::int64_t>(r.seed));
    w.field("sessions", verdict.sessions);
    w.field("admissible", verdict.admissible);
    w.field("solves", verdict.solves);
    if (verdict.termination_time)
      w.field("termination", *verdict.termination_time);
    w.field("rounds", verdict.rounds.rounds_ceiling());
    if (verdict.gamma) w.field("gamma", *verdict.gamma);
    w.end_object();
    res = JobResult{Status::kOk, os.str()};
  } catch (const std::exception& e) {
    res = JobResult{Status::kBadRequest, std::string("run failed: ") +
                                             e.what()};
  }
  {
    std::lock_guard<std::mutex> lk(obs_mu_);
    shard.merge_into_parent();
    profiler_.merge_from(local);
  }
  return res;
}

Server::JobResult Server::compute_replay(const Request& r) {
  obs::Profiler local;
  JobResult res;
  try {
    obs::ProfileScope scope(&local, obs::ProfilePhase::kServeExec);
    std::string err;
    const auto trace = trace_from_text(r.trace_text, &err);
    if (!trace) {
      res = JobResult{Status::kBadRequest, "bad trace: " + err};
    } else {
      ReplayReport report;
      if (r.substrate == "mpm") {
        const auto constraints = request_constraints(r, r.spec.n);
        const auto factory = make_mpm_factory(r.model);
        report = replay_mpm(*trace, r.spec, constraints, *factory);
      } else {
        const std::int32_t total = smm_total_processes(r.spec.n, r.spec.b);
        const auto constraints = request_constraints(r, total);
        const auto factory = make_smm_factory(r.model);
        report = replay_smm(*trace, r.spec, constraints, *factory);
      }
      std::ostringstream os;
      obs::JsonWriter w(os);
      w.begin_object();
      w.field("op", "replay");
      w.field("substrate", r.substrate);
      w.field("model", r.model);
      w.field("match", report.match);
      w.field("divergence", static_cast<std::int64_t>(report.divergence));
      if (!report.detail.empty()) w.field("detail", report.detail);
      w.end_object();
      res = JobResult{Status::kOk, os.str()};
    }
  } catch (const std::exception& e) {
    res = JobResult{Status::kBadRequest, std::string("replay failed: ") +
                                             e.what()};
  }
  {
    std::lock_guard<std::mutex> lk(obs_mu_);
    profiler_.merge_from(local);
  }
  return res;
}

Server::JobResult Server::compute_worst_case(const Request& r) {
  obs::Profiler local;
  JobResult res;
  try {
    obs::ProfileScope scope(&local, obs::ProfilePhase::kServeExec);
    std::string algorithm;
    WorstCase wc;
    if (r.substrate == "mpm") {
      const auto constraints = request_constraints(r, r.spec.n);
      const auto factory = make_mpm_factory(r.model);
      algorithm = factory->name();
      wc = mpm_worst_case(r.spec, constraints, *factory, 4, r.seed);
    } else {
      const std::int32_t total = smm_total_processes(r.spec.n, r.spec.b);
      const auto constraints = request_constraints(r, total);
      const auto factory = make_smm_factory(r.model);
      algorithm = factory->name();
      wc = smm_worst_case(r.spec, constraints, *factory, 4, r.seed);
    }
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.begin_object();
    w.field("op", "run");
    w.field("substrate", r.substrate);
    w.field("model", r.model);
    w.field("adversary", "worst");
    w.field("algorithm", algorithm);
    w.field("s", r.spec.s);
    w.field("n", static_cast<std::int64_t>(r.spec.n));
    w.field("b", static_cast<std::int64_t>(r.spec.b));
    w.field("seed", static_cast<std::int64_t>(r.seed));
    w.field("runs", static_cast<std::int64_t>(wc.runs));
    w.field("all_solved", wc.all_solved);
    w.field("min_sessions", wc.min_sessions);
    w.field("max_time", wc.max_termination);
    w.field("max_rounds", wc.max_rounds);
    if (!wc.first_failure.empty()) w.field("first_failure", wc.first_failure);
    w.end_object();
    res = JobResult{Status::kOk, os.str()};
  } catch (const std::exception& e) {
    res = JobResult{Status::kBadRequest,
                    std::string("worst-case run failed: ") + e.what()};
  }
  {
    std::lock_guard<std::mutex> lk(obs_mu_);
    profiler_.merge_from(local);
  }
  return res;
}

void Server::execute_sweep(const Request& r, std::uint64_t digest) {
  {
    std::lock_guard<std::mutex> lk(ticket_mu_);
    tickets_[digest].state = Ticket::State::kRunning;
  }
  std::unique_ptr<recovery::RunJournal> journal;
  if (!config_.journal_dir.empty()) {
    std::string jerr;
    journal = recovery::RunJournal::open_resume(sweep_journal_path(digest),
                                                &jerr);
    if (journal && !journal->matches(kJournalTool, digest)) journal.reset();
  }
  if (journal) {
    // A journaled report replays verbatim: byte-identical across restarts
    // without recomputation.
    if (const std::string* stored = journal->lookup(kReportStage, 0)) {
      std::lock_guard<std::mutex> lk(ticket_mu_);
      Ticket& t = tickets_[digest];
      t.state = Ticket::State::kDone;
      t.result_json = *stored;
      ++counters_.sweeps_completed;
      return;
    }
  }

  obs::Profiler local;
  recovery::Supervisor sup(std::move(journal));
  bool chaos_here = false;
  if (config_.chaos_stop_after >= 0 && !chaos_armed_.exchange(true)) {
    sup.set_stop_after(config_.chaos_stop_after);
    chaos_here = true;
  }
  {
    std::lock_guard<std::mutex> lk(sup_mu_);
    active_sup_ = &sup;
  }
  recovery::Supervisor* prev = recovery::Supervisor::install(&sup);
  // request_drain between the active_sup_ registration races above would
  // have set draining_ first; re-check so a drained server never starts a
  // sweep it cannot stop.
  if (draining_.load()) sup.request_stop();

  std::string algorithm;
  DegradationReport report;
  {
    obs::ProfileScope scope(&local, obs::ProfilePhase::kServeExec);
    const std::vector<std::int32_t> crashes{0, 1, 2};
    const std::vector<std::int32_t> percents{0, 5, 20};
    if (r.substrate == "mpm") {
      const auto constraints = request_constraints(r, r.spec.n);
      const auto factory = make_mpm_factory(r.model);
      algorithm = factory->name();
      MpmRunLimits limits;
      limits.max_steps = 150'000;  // same cutover as sesp_cli --degradation
      report = mpm_degradation(r.spec, constraints, *factory, crashes,
                               percents, r.seed, limits);
    } else {
      const std::int32_t total = smm_total_processes(r.spec.n, r.spec.b);
      const auto constraints = request_constraints(r, total);
      const auto factory = make_smm_factory(r.model);
      algorithm = factory->name();
      SmmRunLimits limits;
      limits.max_steps = 150'000;
      report = smm_degradation(r.spec, constraints, *factory, crashes,
                               percents, r.seed, limits);
    }
  }
  recovery::Supervisor::install(prev);
  {
    std::lock_guard<std::mutex> lk(sup_mu_);
    active_sup_ = nullptr;
  }
  {
    std::lock_guard<std::mutex> lk(obs_mu_);
    profiler_.merge_from(local);
  }

  if (sup.interrupted()) {
    {
      std::lock_guard<std::mutex> lk(ticket_mu_);
      tickets_[digest].state = Ticket::State::kInterrupted;
    }
    sweep_interrupted_.store(true);
    ++counters_.sweeps_interrupted;
    // A chaos trip drains the whole server, exactly like SIGTERM: the
    // journal holds the completed slots, --resume finishes the sweep.
    if (chaos_here) request_drain();
    return;
  }

  // Report text identical (from the algorithm line on) to
  //   sesp_cli --degradation --substrate=... --model=... --seed=...
  std::ostringstream text;
  text << "algorithm:   " << algorithm << "\n"
       << report.to_string() << "solved/degraded/diagnosed: "
       << report.count(RunOutcome::kSolved) << "/"
       << report.count(RunOutcome::kDegraded) << "/"
       << report.count(RunOutcome::kDiagnosed) << "\n";
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("ticket", util::fnv1a_hex(digest));
  w.field("state", "done");
  w.field("op", "sweep");
  w.field("substrate", r.substrate);
  w.field("model", r.model);
  w.field("algorithm", algorithm);
  w.field("solved",
          static_cast<std::int64_t>(report.count(RunOutcome::kSolved)));
  w.field("degraded",
          static_cast<std::int64_t>(report.count(RunOutcome::kDegraded)));
  w.field("diagnosed",
          static_cast<std::int64_t>(report.count(RunOutcome::kDiagnosed)));
  w.field("report", text.str());
  w.end_object();
  const std::string result = os.str();
  if (sup.journal() != nullptr) sup.journal()->append(kReportStage, 0, result);
  {
    std::lock_guard<std::mutex> lk(ticket_mu_);
    Ticket& t = tickets_[digest];
    t.state = Ticket::State::kDone;
    t.result_json = result;
  }
  ++counters_.sweeps_completed;
}

// --- Journal / resume ------------------------------------------------------

std::string Server::sweep_journal_path(std::uint64_t digest) const {
  return config_.journal_dir + "/sweep-" + util::fnv1a_hex(digest) +
         ".journal";
}

bool Server::load_resumable_sweeps(std::string* error) {
  (void)error;
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> paths;
  for (fs::directory_iterator it(config_.journal_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind("sweep-", 0) == 0 &&
        name.size() > 14 &&
        name.compare(name.size() - 8, 8, ".journal") == 0)
      paths.push_back(it->path().string());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    const recovery::JournalSnapshot snap =
        recovery::read_journal_snapshot(path);
    if (!snap.ok || snap.tool != kJournalTool) continue;
    const std::string* request_payload = nullptr;
    const std::string* report_payload = nullptr;
    for (const recovery::JournalRecord& rec : snap.records) {
      if (rec.slot != 0) continue;
      if (rec.stage == kRequestStage) request_payload = &rec.payload;
      if (rec.stage == kReportStage) report_payload = &rec.payload;
    }
    if (request_payload == nullptr) continue;
    Request req;
    std::string err;
    if (!parse_request(*request_payload, config_.limits, &req, &err)) continue;
    if (req.op != Op::kSweep) continue;
    const std::uint64_t digest = request_digest(req);
    if (digest != snap.config_digest) continue;  // journal guard

    std::lock_guard<std::mutex> tk(ticket_mu_);
    if (tickets_.count(digest) != 0) continue;
    Ticket& t = tickets_[digest];
    if (report_payload != nullptr) {
      t.state = Ticket::State::kDone;
      t.result_json = *report_payload;
    } else {
      t.state = Ticket::State::kQueued;
      std::lock_guard<std::mutex> qk(excl_mu_);
      excl_queue_.push_back(
          ExclusiveJob{ExclusiveJob::Kind::kSweep, req, digest, nullptr});
      ++resumed_;
      ++counters_.sweeps_resumed;
    }
  }
  return true;
}

// --- Stats -----------------------------------------------------------------

std::string Server::stats_json() const {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("op", "stats");
  w.field("schema", kProtocolSchema);
  w.field("draining", draining_.load());
  w.key("counters");
  w.begin_object();
  w.field("connections_accepted", counters_.connections_accepted.load());
  w.field("connections_shed", counters_.connections_shed.load());
  w.field("connections_dropped", counters_.connections_dropped.load());
  w.field("requests", counters_.requests.load());
  w.field("ok", counters_.ok.load());
  w.field("bad_request", counters_.bad_request.load());
  w.field("overloaded", counters_.overloaded.load());
  w.field("timeout", counters_.timeout.load());
  w.field("rate_limited", counters_.rate_limited.load());
  w.field("coalesced", counters_.coalesced.load());
  w.field("sweeps_completed", counters_.sweeps_completed.load());
  w.field("sweeps_interrupted", counters_.sweeps_interrupted.load());
  w.field("sweeps_resumed", counters_.sweeps_resumed.load());
  w.end_object();
  const CacheStats cs = cache_.stats();
  w.key("cache");
  w.begin_object();
  w.field("hits", cs.hits);
  w.field("misses", cs.misses);
  w.field("evictions", cs.evictions);
  w.field("entries", cs.entries);
  w.end_object();
  w.key("connections");
  w.begin_object();
  w.field("count", static_cast<std::int64_t>(connection_gate_.count()));
  w.field("peak", static_cast<std::int64_t>(connection_gate_.peak()));
  w.field("limit", static_cast<std::int64_t>(connection_gate_.limit()));
  w.field("rejected", connection_gate_.rejected());
  w.end_object();
  w.key("queues");
  w.begin_object();
  {
    std::lock_guard<std::mutex> lk(heavy_mu_);
    w.field("heavy", static_cast<std::int64_t>(heavy_queue_.size()));
  }
  w.field("heavy_limit",
          static_cast<std::int64_t>(config_.admission.max_queue));
  {
    std::lock_guard<std::mutex> lk(excl_mu_);
    w.field("exclusive", static_cast<std::int64_t>(excl_queue_.size()));
  }
  w.field("exclusive_limit",
          static_cast<std::int64_t>(config_.admission.max_sweep_queue));
  w.end_object();
  w.key("tickets");
  w.begin_object();
  {
    std::int64_t by_state[4] = {0, 0, 0, 0};
    std::lock_guard<std::mutex> lk(ticket_mu_);
    for (const auto& [key, t] : tickets_)
      ++by_state[static_cast<std::uint8_t>(t.state)];
    w.field("queued", by_state[0]);
    w.field("running", by_state[1]);
    w.field("done", by_state[2]);
    w.field("interrupted", by_state[3]);
  }
  w.end_object();
  w.end_object();
  return os.str();
}

}  // namespace sesp::serve
