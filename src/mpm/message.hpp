#pragma once

// Message payloads for the MPM algorithms. The paper's messages are m(i, V)
// — sender plus a session value (A(sp)); the other algorithms additionally
// need a step counter and a done flag. One struct covers all of them, so the
// network layer is algorithm-agnostic.

#include <cstdint>
#include <string>

#include "model/ids.hpp"

namespace sesp {

struct MpmMessage {
  ProcessId sender = 0;
  std::int64_t session = 0;  // V of m(i, V)
  std::int64_t steps = 0;    // sender's step count at send time
  bool done = false;         // "I have taken my s-1 steps" (A(p))

  std::string to_string() const {
    return "m(" + std::to_string(sender) + "," + std::to_string(session) +
           ",steps=" + std::to_string(steps) + (done ? ",done)" : ")");
  }
};

}  // namespace sesp
