#include "mpm/topology.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <queue>

namespace sesp {

namespace {
[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "sesp::Topology fatal: %s\n", what);
  std::abort();
}
}  // namespace

Topology::Topology(std::string name, std::int32_t n)
    : name_(std::move(name)), adj_(static_cast<std::size_t>(n)) {
  if (n < 1) fail("need at least one node");
}

void Topology::add_edge(ProcessId a, ProcessId b) {
  if (a == b || a < 0 || b < 0 || a >= num_nodes() || b >= num_nodes())
    fail("bad edge");
  if (has_edge(a, b)) return;
  adj_[static_cast<std::size_t>(a)].push_back(b);
  adj_[static_cast<std::size_t>(b)].push_back(a);
}

Topology Topology::complete(std::int32_t n) {
  Topology t("complete(" + std::to_string(n) + ")", n);
  for (ProcessId a = 0; a < n; ++a)
    for (ProcessId b = a + 1; b < n; ++b) t.add_edge(a, b);
  return t;
}

Topology Topology::ring(std::int32_t n) {
  Topology t("ring(" + std::to_string(n) + ")", n);
  if (n == 1) return t;
  for (ProcessId a = 0; a < n; ++a) t.add_edge(a, (a + 1) % n);
  return t;
}

Topology Topology::line(std::int32_t n) {
  Topology t("line(" + std::to_string(n) + ")", n);
  for (ProcessId a = 0; a + 1 < n; ++a) t.add_edge(a, a + 1);
  return t;
}

Topology Topology::star(std::int32_t n) {
  Topology t("star(" + std::to_string(n) + ")", n);
  for (ProcessId a = 1; a < n; ++a) t.add_edge(0, a);
  return t;
}

Topology Topology::tree(std::int32_t n, std::int32_t arity) {
  if (arity < 2) fail("tree arity must be >= 2");
  Topology t("tree(" + std::to_string(n) + "," + std::to_string(arity) + ")",
             n);
  for (ProcessId a = 1; a < n; ++a) t.add_edge(a, (a - 1) / arity);
  return t;
}

Topology Topology::grid(std::int32_t rows, std::int32_t cols) {
  if (rows < 1 || cols < 1) fail("grid needs positive dimensions");
  Topology t("grid(" + std::to_string(rows) + "x" + std::to_string(cols) + ")",
             rows * cols);
  auto id = [cols](std::int32_t r, std::int32_t c) { return r * cols + c; };
  for (std::int32_t r = 0; r < rows; ++r) {
    for (std::int32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) t.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) t.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return t;
}

const std::vector<ProcessId>& Topology::neighbors(ProcessId p) const {
  if (p < 0 || p >= num_nodes()) fail("neighbors of unknown node");
  return adj_[static_cast<std::size_t>(p)];
}

bool Topology::has_edge(ProcessId a, ProcessId b) const {
  if (a < 0 || a >= num_nodes()) return false;
  const auto& nb = adj_[static_cast<std::size_t>(a)];
  return std::find(nb.begin(), nb.end(), b) != nb.end();
}

std::int64_t Topology::num_edges() const {
  std::int64_t total = 0;
  for (const auto& nb : adj_) total += static_cast<std::int64_t>(nb.size());
  return total / 2;
}

std::int32_t Topology::distance(ProcessId from, ProcessId to) const {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes())
    fail("distance of unknown node");
  std::vector<std::int32_t> dist(adj_.size(), -1);
  std::queue<ProcessId> queue;
  dist[static_cast<std::size_t>(from)] = 0;
  queue.push(from);
  while (!queue.empty()) {
    const ProcessId at = queue.front();
    queue.pop();
    if (at == to) return dist[static_cast<std::size_t>(at)];
    for (const ProcessId nb : adj_[static_cast<std::size_t>(at)]) {
      if (dist[static_cast<std::size_t>(nb)] < 0) {
        dist[static_cast<std::size_t>(nb)] =
            dist[static_cast<std::size_t>(at)] + 1;
        queue.push(nb);
      }
    }
  }
  return -1;  // disconnected
}

std::int32_t Topology::diameter() const {
  std::int32_t best = 0;
  for (ProcessId from = 0; from < num_nodes(); ++from) {
    for (ProcessId to = from + 1; to < num_nodes(); ++to) {
      const std::int32_t d = distance(from, to);
      if (d < 0) fail("diameter of disconnected graph");
      best = std::max(best, d);
    }
  }
  return best;
}

bool Topology::connected() const {
  if (num_nodes() == 1) return true;
  for (ProcessId to = 1; to < num_nodes(); ++to)
    if (distance(0, to) < 0) return false;
  return true;
}

}  // namespace sesp
