#pragma once

// The MPM communication substrate (Section 2.1.2): the shared variables
// `net` (messages in transit, as (m, q) pairs) and `buf_p` (delivered but
// not yet received). The network process N takes delivery steps moving one
// (m, q) from net to buf_q; a regular process's compute step empties its
// buf. This class is pure state — the simulator drives it and records steps.
//
// Error handling: operations on ids or processes outside the model return a
// structured SimError instead of terminating, so a harness bug or an
// injected fault surfaces as a diagnosed run, never an abort.

#include <cstdint>
#include <optional>
#include <vector>

#include "faults/sim_error.hpp"
#include "model/ids.hpp"
#include "mpm/message.hpp"

namespace sesp {

class Network {
 public:
  explicit Network(std::int32_t num_regular);

  std::int32_t num_regular() const noexcept { return num_regular_; }

  // Adds (m, q) to net; the caller (simulator) owns MsgId assignment so
  // handles match the trace's MessageRecord ids. Returns a SimError (and
  // leaves net unchanged) if the recipient is outside the process range.
  [[nodiscard]] std::optional<SimError> send(MsgId id, const MpmMessage& m,
                                             ProcessId recipient);

  // Network step: moves the identified (m, q) from net to buf_q. Returns a
  // SimError if the id is not in transit (double delivery or harness bug).
  [[nodiscard]] std::optional<SimError> deliver(MsgId id);

  // Regular-process step, receive half: removes and returns buf_p. A
  // process id outside the range has an empty buffer by definition.
  std::vector<MpmMessage> drain_buffer(ProcessId p);

  // Allocation-free variant for the simulator's per-step loop: replaces the
  // contents of `out` with buf_p and empties buf_p, both sides keeping
  // their capacity, so steady-state steps do no heap traffic.
  void drain_buffer_into(ProcessId p, std::vector<MpmMessage>& out);

  std::size_t in_transit() const noexcept { return net_ids_.size(); }
  std::size_t buffered(ProcessId p) const;

 private:
  bool valid(ProcessId p) const noexcept {
    return p >= 0 && p < num_regular_;
  }

  std::int32_t num_regular_;
  // net, structure-of-arrays: slot i holds message i's id, payload, and
  // recipient in parallel vectors (docs/performance.md "Data layout").
  // deliver() touches only ids_/recipients_ plus one payload copy, so the
  // hot columns stay dense in cache; removal is swap-with-back per column.
  std::vector<MsgId> net_ids_;
  std::vector<MpmMessage> net_messages_;
  std::vector<ProcessId> net_recipients_;
  std::vector<std::vector<MpmMessage>> bufs_;
  // MsgId -> slot (-1 when not in transit), so deliver() is O(1) instead of
  // a scan of everything in flight. Ids are assigned densely by the trace,
  // so a flat vector indexed by id works; out-of-range or negative ids fall
  // back to the scan (and its structured error).
  std::vector<std::int32_t> slot_of_;
};

}  // namespace sesp
