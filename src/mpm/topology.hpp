#pragma once

// Network topologies for the point-to-point message-passing variant.
//
// The paper's main MPM is an abstract reliable strongly-connected network
// whose d2 "subsumes the diameter factor" of [4]'s point-to-point model
// (conversion note (1) before Table 1). This module restores the
// point-to-point view: processes only exchange messages with neighbours,
// information crosses the network by gossip relay, and end-to-end
// propagation costs diameter * (per-hop delay + step time). The
// bench_diameter experiment regenerates exactly that factor.

#include <cstdint>
#include <string>
#include <vector>

#include "model/ids.hpp"

namespace sesp {

class Topology {
 public:
  // Named constructors. All graphs are undirected and connected.
  static Topology complete(std::int32_t n);
  static Topology ring(std::int32_t n);
  static Topology line(std::int32_t n);
  static Topology star(std::int32_t n);  // node 0 is the hub
  // Balanced tree with the given branching factor (>= 2).
  static Topology tree(std::int32_t n, std::int32_t arity);
  // r x c grid with 4-neighbourhoods.
  static Topology grid(std::int32_t rows, std::int32_t cols);

  std::int32_t num_nodes() const noexcept {
    return static_cast<std::int32_t>(adj_.size());
  }
  const std::vector<ProcessId>& neighbors(ProcessId p) const;

  bool has_edge(ProcessId a, ProcessId b) const;
  std::int64_t num_edges() const;  // undirected edge count

  // Graph diameter (max over BFS eccentricities). The factor the paper's d2
  // subsumes.
  std::int32_t diameter() const;
  // BFS distance between two nodes.
  std::int32_t distance(ProcessId from, ProcessId to) const;

  bool connected() const;

  const std::string& name() const noexcept { return name_; }

 private:
  Topology(std::string name, std::int32_t n);
  void add_edge(ProcessId a, ProcessId b);

  std::string name_;
  std::vector<std::vector<ProcessId>> adj_;
};

}  // namespace sesp
