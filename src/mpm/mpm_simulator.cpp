#include "mpm/mpm_simulator.hpp"

#include <cstdio>
#include <cstdlib>
#include <queue>
#include <vector>

#include "mpm/network.hpp"

namespace sesp {

namespace {

enum class EventKind : std::uint8_t { kProcessStep = 0, kDeliver = 1 };

struct Event {
  Time time;
  EventKind kind;
  std::uint64_t seq;  // FIFO among equal (time, kind)
  ProcessId process = 0;
  MsgId message = kNoMsg;
};

// Min-heap order: earliest time first; at equal time compute steps before
// deliveries; then FIFO.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return b.time < a.time;
    if (a.kind != b.kind) return a.kind == EventKind::kDeliver;
    return a.seq > b.seq;
  }
};

}  // namespace

MpmSimulator::MpmSimulator(const ProblemSpec& spec,
                           const TimingConstraints& constraints,
                           const MpmAlgorithmFactory& factory,
                           StepScheduler& scheduler, DelayStrategy& delays)
    : spec_(spec),
      constraints_(constraints),
      factory_(factory),
      scheduler_(scheduler),
      delays_(delays) {
  if (spec_.n <= 0) {
    std::fprintf(stderr, "MpmSimulator fatal: need n >= 1\n");
    std::abort();
  }
}

MpmRunResult MpmSimulator::run(const MpmRunLimits& limits) {
  const std::int32_t n = spec_.n;
  MpmRunResult result{
      TimedComputation(Substrate::kMessagePassing, n, n), false, false, 0, 0};
  TimedComputation& trace = result.trace;

  Network network(n);
  std::vector<std::unique_ptr<MpmAlgorithm>> algs;
  algs.reserve(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p)
    algs.push_back(factory_.create(p, spec_, constraints_));

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue;
  std::uint64_t seq = 0;

  std::vector<Time> last_step_time(static_cast<std::size_t>(n));
  std::vector<std::int64_t> step_count(static_cast<std::size_t>(n), 0);
  // Messages delivered to each process but not yet picked up by a step.
  std::vector<std::vector<MsgId>> pending(static_cast<std::size_t>(n));
  std::int32_t non_idle = n;

  for (ProcessId p = 0; p < n; ++p) {
    const Time t = scheduler_.next_step_time(p, std::nullopt, 0);
    queue.push(Event{t, EventKind::kProcessStep, seq++, p, kNoMsg});
  }

  while (!queue.empty() && non_idle > 0) {
    const Event ev = queue.top();
    queue.pop();

    if (result.compute_steps >= limits.max_steps ||
        limits.max_time < ev.time) {
      result.hit_limit = true;
      break;
    }

    if (ev.kind == EventKind::kDeliver) {
      network.deliver(ev.message);
      StepRecord st;
      st.kind = StepKind::kDeliver;
      st.process = kNetworkProcess;
      st.time = ev.time;
      st.delivered = ev.message;
      const std::size_t index = trace.append(st);
      MessageRecord& rec =
          trace.mutable_messages()[static_cast<std::size_t>(ev.message)];
      rec.deliver_step = index;
      pending[static_cast<std::size_t>(rec.recipient)].push_back(ev.message);
      continue;
    }

    const ProcessId p = ev.process;
    const auto pi = static_cast<std::size_t>(p);
    const std::vector<MpmMessage> received = network.drain_buffer(p);
    const MpmStepResult action = algs[pi]->on_step(
        std::span<const MpmMessage>(received.data(), received.size()));

    StepRecord st;
    st.kind = StepKind::kCompute;
    st.process = p;
    st.time = ev.time;
    st.port = p;  // in the MPM every compute step of p involves buf_p
    st.idle_after = action.idle;
    const std::size_t step_index = trace.append(st);
    ++result.compute_steps;

    // Mark receipt of everything drained at this step.
    for (const MsgId id : pending[pi])
      trace.mutable_messages()[static_cast<std::size_t>(id)].receive_step =
          step_index;
    pending[pi].clear();

    if (action.broadcast) {
      for (ProcessId q = 0; q < n; ++q) {
        MessageRecord rec;
        rec.sender = p;
        rec.recipient = q;
        rec.send_step = step_index;
        rec.session = action.message.session;
        rec.steps = action.message.steps;
        rec.done = action.message.done;
        const MsgId id = trace.append_message(rec);
        network.send(id, action.message, q);
        const Duration delay = delays_.delay(p, q, ev.time, id);
        queue.push(
            Event{ev.time + delay, EventKind::kDeliver, seq++, q, id});
        ++result.messages_sent;
      }
    }

    last_step_time[pi] = ev.time;
    ++step_count[pi];

    if (action.idle) {
      --non_idle;
    } else {
      const Time next =
          scheduler_.next_step_time(p, ev.time, step_count[pi]);
      queue.push(Event{next, EventKind::kProcessStep, seq++, p, kNoMsg});
    }
  }

  result.completed = non_idle == 0;
  return result;
}

}  // namespace sesp
