#include "mpm/mpm_simulator.hpp"

#include <algorithm>
#include <vector>

#include "mpm/message.hpp"
#include "sim/calendar_queue.hpp"

namespace sesp {

// The hot loop drains the calendar queue in same-time lane runs: all compute
// steps at a timestamp, then all deliveries (docs/performance.md). The pop
// order — and with it every observable: trace bytes, fault-hook RNG
// consumption, watchdog trip points, gauge values — is bit-identical to the
// old (time, kind, seq) comparison heap, because delivery events never spawn
// events and a compute step only ever schedules at or after its own time.
// sim_core_equiv_test and the golden corpus pin this.

MpmSimulator::MpmSimulator(const ProblemSpec& spec,
                           const TimingConstraints& constraints,
                           const MpmAlgorithmFactory& factory,
                           StepScheduler& scheduler, DelayStrategy& delays,
                           FaultInjector* faults, obs::Observer* observer)
    : spec_(spec),
      constraints_(constraints),
      factory_(factory),
      scheduler_(scheduler),
      delays_(delays),
      faults_(faults),
      observer_(observer) {}

MpmRunResult MpmSimulator::run(const MpmRunLimits& limits) {
  const std::int32_t n = spec_.n;
  obs::Observer* const o = obs::resolve(observer_);
  obs::Profiler* const prof = o ? o->profiler : nullptr;
  obs::Span run_span(o ? o->trace : nullptr, "mpm.run", "sim",
                     o && o->trace
                         ? obs::args_object(
                               {obs::arg_int("n", n),
                                obs::arg_int("s", spec_.s)})
                         : std::string());
  if (o && o->runs) o->runs->inc();
  MpmRunResult result{
      TimedComputation(Substrate::kMessagePassing, std::max(n, 0),
                       std::max(n, 0)),
      false, false, 0, 0, std::nullopt, {}};
  if (n <= 0) {
    SimError err;
    err.code = SimErrorCode::kInvalidSpec;
    err.detail = "MPM needs n >= 1 port processes, got " + std::to_string(n);
    result.error = std::move(err);
    obs::observe_error(o, *result.error);
    return result;
  }
  TimedComputation& trace = result.trace;
  // Pre-size the logs to the step budget: a budget-bounded run otherwise
  // reallocates the step log ~18 times, and the final doublings memcpy tens
  // of megabytes (docs/performance.md "Data layout"). Capped so unbounded
  // budgets stay lazy; untouched reserved pages cost only address space.
  if (limits.max_steps > 0) {
    const auto budget = static_cast<std::size_t>(
        std::min<std::int64_t>(limits.max_steps, std::int64_t{1} << 17));
    trace.reserve(3 * budget, 3 * budget);
  }

  std::vector<std::unique_ptr<MpmAlgorithm>> algs;
  algs.reserve(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p)
    algs.push_back(factory_.create(p, spec_, constraints_));

  CalendarQueue queue;
  obs::SampledPhaseTimer pop_timer(prof, obs::ProfilePhase::kEventQueuePop);
  obs::SampledPhaseTimer deliver_timer(prof, obs::ProfilePhase::kDeliver);
  obs::SampledPhaseTimer step_timer(prof, obs::ProfilePhase::kProcessStep);
  obs::SampledPhaseTimer sched_timer(prof, obs::ProfilePhase::kSchedule);

  std::vector<std::int64_t> step_count(static_cast<std::size_t>(n), 0);
  // Messages delivered to each process but not yet picked up by a step (the
  // paper's buf_p, as message ids). The Network substrate is bypassed: a
  // step reconstructs each payload from the trace's own MessageRecord — the
  // same cache line the loop writes deliver_step into — so the hot loop
  // maintains no separate in-transit structure (docs/performance.md "Data
  // layout"). Per-process vectors are cleared, never destroyed: capacity is
  // reused across the whole run.
  std::vector<std::vector<MsgId>> pending(static_cast<std::size_t>(n));
  std::int32_t non_idle = n;
  // Per-step receive scratch, reused across the whole run so the steady
  // state allocates nothing.
  std::vector<MpmMessage> received;
  // Hot-loop observer instruments, resolved once (the compiler cannot hoist
  // the loads past the loop's stores itself).
  obs::Gauge* const g_queue_depth = o ? o->event_queue_depth : nullptr;
  obs::Gauge* const g_pending_depth = o ? o->pending_depth : nullptr;
  obs::Counter* const c_delivered = o ? o->messages_delivered : nullptr;
  obs::Counter* const c_steps = o ? o->steps : nullptr;
  obs::Counter* const c_sent = o ? o->messages_sent : nullptr;
  obs::Counter* const c_dropped = o ? o->messages_dropped : nullptr;

  // Schedules p's next compute step, applying any injected timing violation
  // and rejecting schedules that run backwards in time.
  auto schedule_step = [&](ProcessId p, std::optional<Time> prev,
                           std::int64_t index) -> bool {
    sched_timer.begin();
    Time t = scheduler_.next_step_time(p, prev, index);
    const Time floor = prev.value_or(Time(0));
    if (faults_) {
      const Time scheduled = t;
      t = faults_->perturb_step_time(p, index, floor, t);
      if (t != scheduled) obs::observe_fault(o, "timing", p, t);
    }
    if (t < floor) {
      SimError err;
      err.code = SimErrorCode::kNonMonotonicSchedule;
      err.detail = "scheduled t=" + t.to_string() + " before t=" +
                   floor.to_string();
      err.process = p;
      err.step_index = static_cast<std::int64_t>(trace.steps().size());
      err.time = floor;
      result.error = std::move(err);
      sched_timer.end();
      return false;
    }
    queue.push_compute(t, p);
    sched_timer.end();
    return true;
  };

  for (ProcessId p = 0; p < n; ++p)
    if (!schedule_step(p, std::nullopt, 0)) {
      obs::observe_error(o, *result.error);
      return result;
    }

  Time last_event_time(0);
  std::int64_t stagnant_events = 0;
  bool stop = false;
  CalendarQueue::Popped ev;

  // Per-event bookkeeping shared by both lanes, in the exact order of the
  // old loop: depth gauge (pre-pop queue size), then budget watchdogs, then
  // the no-progress watchdog. True means a watchdog tripped.
  auto watchdogs = [&]() -> bool {
    if (g_queue_depth)
      g_queue_depth->set(static_cast<std::int64_t>(queue.size()) + 1);
    if (result.compute_steps >= limits.max_steps ||
        limits.max_time < ev.time) {
      result.hit_limit = true;
      SimError err;
      const bool steps = result.compute_steps >= limits.max_steps;
      err.code = steps ? SimErrorCode::kStepLimitExceeded
                       : SimErrorCode::kTimeLimitExceeded;
      err.detail = steps ? "compute-step budget " +
                               std::to_string(limits.max_steps) + " exhausted"
                         : "model-time budget " + limits.max_time.to_string() +
                               " exhausted";
      err.step_index = static_cast<std::int64_t>(trace.steps().size());
      err.time = ev.time;
      result.error = std::move(err);
      return true;
    }
    if (ev.time == last_event_time) {
      if (++stagnant_events > limits.max_stagnant_events) {
        result.hit_limit = true;
        SimError err;
        err.code = SimErrorCode::kNoProgress;
        err.detail = "time pinned at t=" + ev.time.to_string() + " for " +
                     std::to_string(stagnant_events) + " events";
        err.step_index = static_cast<std::int64_t>(trace.steps().size());
        err.time = ev.time;
        result.error = std::move(err);
        return true;
      }
    } else {
      last_event_time = ev.time;
      stagnant_events = 0;
    }
    return false;
  };

  while (!stop && !queue.empty() && non_idle > 0) {
    pop_timer.begin();
    const CalendarQueue::Lane lane = queue.peek_lane();
    pop_timer.end();

    if (lane == CalendarQueue::Lane::kDeliver) {
      deliver_timer.begin();
      do {
        queue.pop(ev);
        if (watchdogs()) {
          stop = true;
          break;
        }
        StepRecord& st = trace.append_slot();
        st.kind = StepKind::kDeliver;
        st.process = kNetworkProcess;
        st.time = ev.time;
        st.delivered = ev.message;
        const std::size_t index = trace.steps().size() - 1;
        MessageRecord& rec =
            trace.mutable_messages()[static_cast<std::size_t>(ev.message)];
        rec.deliver_step = index;
        pending[static_cast<std::size_t>(rec.recipient)].push_back(
            ev.message);
        if (c_delivered) {
          c_delivered->inc();
          g_pending_depth->set(static_cast<std::int64_t>(
              pending[static_cast<std::size_t>(rec.recipient)].size()));
        }
      } while (!queue.empty() &&
               queue.peek_lane() == CalendarQueue::Lane::kDeliver);
      deliver_timer.end();
      continue;
    }

    step_timer.begin();
    do {
      queue.pop(ev);
      if (watchdogs()) {
        stop = true;
        break;
      }

      const ProcessId p = ev.process;
      const auto pi = static_cast<std::size_t>(p);

      // Crash-stop: the process halts in place of this step; it never idles
      // and takes no further steps. Messages already in flight to it still
      // deliver into its (never drained) buffer.
      if (faults_ && faults_->crash_now(p, step_count[pi], ev.time)) {
        obs::observe_fault(o, "crash", p, ev.time);
        result.crashed.push_back(p);
        --non_idle;
        continue;
      }

      // Receive half of the step: rebuild buf_p's payloads from the trace's
      // message records, in delivery order (the scratch vector keeps its
      // capacity, so steady-state steps do no heap traffic).
      received.clear();
      for (const MsgId id : pending[pi]) {
        const MessageRecord& m =
            trace.messages()[static_cast<std::size_t>(id)];
        received.push_back(MpmMessage{m.sender, m.session, m.steps, m.done});
      }
      const MpmStepResult action = algs[pi]->on_step(
          std::span<const MpmMessage>(received.data(), received.size()));

      StepRecord& st = trace.append_slot();
      st.kind = StepKind::kCompute;
      st.process = p;
      st.time = ev.time;
      st.port = p;  // in the MPM every compute step of p involves buf_p
      st.idle_after = action.idle;
      const std::size_t step_index = trace.steps().size() - 1;
      ++result.compute_steps;
      if (c_steps) c_steps->inc();

      // Mark receipt of everything drained at this step.
      for (const MsgId id : pending[pi])
        trace.mutable_messages()[static_cast<std::size_t>(id)].receive_step =
            step_index;
      pending[pi].clear();

      if (action.broadcast) {
        for (ProcessId q = 0; q < n && !result.error; ++q) {
          MsgId id;
          {
            MessageRecord& rec = trace.append_message_slot();
            rec.sender = p;
            rec.recipient = q;
            rec.send_step = step_index;
            rec.session = action.message.session;
            rec.steps = action.message.steps;
            rec.done = action.message.done;
            id = rec.id;
          }
          ++result.messages_sent;
          if (c_sent) c_sent->inc();

          const MessageAction act =
              faults_ ? faults_->on_send(id, p, q, ev.time) : MessageAction{};
          if (act.drop) {  // lost: sent but never enters the net
            if (c_dropped) c_dropped->inc();
            obs::observe_fault(o, "drop", p, ev.time);
            continue;
          }
          if (act.extra_delay.is_positive())
            obs::observe_fault(o, "delay", p, ev.time);

          const Duration delay =
              delays_.delay(p, q, ev.time, id) + act.extra_delay;
          queue.push_deliver(ev.time + delay, q, id);

          if (act.duplicate) {
            // The duplicate is a distinct trace message with the same
            // payload, delivered after an extra delay (copied before the
            // append so the source reference cannot dangle).
            obs::observe_fault(o, "duplicate", p, ev.time);
            MessageRecord dup =
                trace.messages()[static_cast<std::size_t>(id)];
            const MsgId dup_id = trace.append_message(dup);
            queue.push_deliver(ev.time + delay + act.extra_delay, q, dup_id);
            ++result.messages_sent;
            if (c_sent) c_sent->inc();
          }
        }
        if (result.error) {
          stop = true;
          break;
        }
      }

      ++step_count[pi];

      if (action.idle) {
        --non_idle;
      } else if (!schedule_step(p, ev.time, step_count[pi])) {
        stop = true;
        break;
      }
    } while (non_idle > 0 && !queue.empty() &&
             queue.peek_lane() == CalendarQueue::Lane::kCompute);
    step_timer.end();
  }

  result.completed = non_idle == 0 && !result.error;
  if (result.error) obs::observe_error(o, *result.error);
  obs::observe_watchdog_margins(o, result.compute_steps, limits.max_steps,
                                last_event_time, limits.max_time);
  if (o && o->trace)
    run_span.set_args(obs::args_object(
        {obs::arg_int("n", n), obs::arg_int("s", spec_.s),
         obs::arg_int("steps", result.compute_steps),
         obs::arg_int("messages", result.messages_sent),
         obs::arg_int("completed", result.completed ? 1 : 0)}));
  return result;
}

}  // namespace sesp
