#pragma once

// Event-driven executor of the message-passing model. The adversary (a
// StepScheduler and a DelayStrategy) fixes the timed schedule; the simulator
// runs the algorithm under it and records the full timed computation for the
// counters / checkers.
//
// Tie-breaking at equal times is adversarial for upper bounds: compute steps
// are ordered before delivery steps carrying the same timestamp, so a
// message delivered "at" a step time is only seen at the process's *next*
// step — the worst admissible interleaving.

#include <cstdint>
#include <memory>

#include "adversary/schedulers.hpp"
#include "model/ids.hpp"
#include "model/timed_computation.hpp"
#include "mpm/algorithm.hpp"
#include "timing/constraints.hpp"

namespace sesp {

struct MpmRunLimits {
  // Stop the run (and flag it) if it exceeds either limit before all port
  // processes idle; guards against broken non-terminating algorithms.
  std::int64_t max_steps = 2'000'000;
  Time max_time = Time(1'000'000'000);
};

struct MpmRunResult {
  TimedComputation trace;
  bool completed = false;     // all port processes idled
  bool hit_limit = false;     // stopped by MpmRunLimits instead
  std::int64_t compute_steps = 0;
  std::int64_t messages_sent = 0;
};

class MpmSimulator {
 public:
  // Every regular process is a port process in the MPM (its buf is its
  // port), so the system has spec.n regular processes plus the network.
  MpmSimulator(const ProblemSpec& spec, const TimingConstraints& constraints,
               const MpmAlgorithmFactory& factory, StepScheduler& scheduler,
               DelayStrategy& delays);

  MpmRunResult run(const MpmRunLimits& limits = MpmRunLimits{});

 private:
  ProblemSpec spec_;
  TimingConstraints constraints_;
  const MpmAlgorithmFactory& factory_;
  StepScheduler& scheduler_;
  DelayStrategy& delays_;
};

}  // namespace sesp
