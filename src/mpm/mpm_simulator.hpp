#pragma once

// Event-driven executor of the message-passing model. The adversary (a
// StepScheduler and a DelayStrategy) fixes the timed schedule; the simulator
// runs the algorithm under it and records the full timed computation for the
// counters / checkers.
//
// Tie-breaking at equal times is adversarial for upper bounds: compute steps
// are ordered before delivery steps carrying the same timestamp, so a
// message delivered "at" a step time is only seen at the process's *next*
// step — the worst admissible interleaving.
//
// An optional FaultInjector turns the executor into a chaos harness:
// crash-stops, message drop/duplication/extra delay and timing violations
// are applied at the corresponding hook points. Ill-formed situations —
// injected or not — end the run with a structured SimError in the result
// instead of terminating the process, and watchdogs (step budget, time
// budget, no-progress detection) bound every run.
//
// An optional obs::Observer (same nullable pattern) instruments the run:
// step/message counters, queue-depth gauges, watchdog-margin histograms, a
// run span, and a trace event per injected fault and per SimError. With no
// observer attached (explicit or process default) every hook is a single
// null check.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "adversary/schedulers.hpp"
#include "faults/fault_injector.hpp"
#include "faults/sim_error.hpp"
#include "model/ids.hpp"
#include "model/timed_computation.hpp"
#include "mpm/algorithm.hpp"
#include "obs/observer.hpp"
#include "timing/constraints.hpp"

namespace sesp {

struct MpmRunLimits {
  // Stop the run (and flag it) if it exceeds either limit before all port
  // processes idle; guards against broken non-terminating algorithms.
  std::int64_t max_steps = 2'000'000;
  Time max_time = Time(1'000'000'000);
  // No-progress watchdog: maximum consecutive events at one model time
  // before the run is declared livelocked (zero-gap schedules).
  std::int64_t max_stagnant_events = 100'000;
};

struct MpmRunResult {
  TimedComputation trace;
  bool completed = false;     // every port process idled or crash-stopped
  bool hit_limit = false;     // stopped by MpmRunLimits instead
  std::int64_t compute_steps = 0;
  std::int64_t messages_sent = 0;
  // Structured diagnostics: set when the run left the well-formed space
  // (limit/watchdog trip, network anomaly, bad spec). Never aborts.
  std::optional<SimError> error;
  // Processes crash-stopped by fault injection, in crash order.
  std::vector<ProcessId> crashed;
};

class MpmSimulator {
 public:
  // Every regular process is a port process in the MPM (its buf is its
  // port), so the system has spec.n regular processes plus the network.
  // `faults` (optional, unowned) injects the chaos plan into the run;
  // `observer` (optional, unowned) instruments it — when null, the process
  // default observer (if any) is used.
  MpmSimulator(const ProblemSpec& spec, const TimingConstraints& constraints,
               const MpmAlgorithmFactory& factory, StepScheduler& scheduler,
               DelayStrategy& delays, FaultInjector* faults = nullptr,
               obs::Observer* observer = nullptr);

  MpmRunResult run(const MpmRunLimits& limits = MpmRunLimits{});

 private:
  ProblemSpec spec_;
  TimingConstraints constraints_;
  const MpmAlgorithmFactory& factory_;
  StepScheduler& scheduler_;
  DelayStrategy& delays_;
  FaultInjector* faults_;
  obs::Observer* observer_;
};

}  // namespace sesp
