#include "mpm/network.hpp"

#include <algorithm>

namespace sesp {

Network::Network(std::int32_t num_regular)
    : num_regular_(std::max(num_regular, 0)),
      bufs_(static_cast<std::size_t>(num_regular_)) {}

std::optional<SimError> Network::send(MsgId id, const MpmMessage& m,
                                      ProcessId recipient) {
  if (!valid(recipient)) {
    SimError err;
    err.code = SimErrorCode::kBadRecipient;
    err.detail = "send to process " + std::to_string(recipient) +
                 " outside [0, " + std::to_string(num_regular_) + ")";
    err.message = id;
    err.process = m.sender;
    return err;
  }
  net_ids_.push_back(id);
  net_messages_.push_back(m);
  net_recipients_.push_back(recipient);
  if (id >= 0) {
    if (static_cast<std::size_t>(id) >= slot_of_.size())
      slot_of_.resize(static_cast<std::size_t>(id) + 1, -1);
    slot_of_[static_cast<std::size_t>(id)] =
        static_cast<std::int32_t>(net_ids_.size() - 1);
  }
  return std::nullopt;
}

std::optional<SimError> Network::deliver(MsgId id) {
  std::size_t i = net_ids_.size();
  if (id >= 0 && static_cast<std::size_t>(id) < slot_of_.size()) {
    const std::int32_t slot = slot_of_[static_cast<std::size_t>(id)];
    if (slot >= 0) i = static_cast<std::size_t>(slot);
  } else {
    // Ids outside the dense range (never produced by the trace, but
    // reachable through injected faults) take the old scan.
    for (i = 0; i < net_ids_.size(); ++i)
      if (net_ids_[i] == id) break;
  }
  if (i < net_ids_.size() && net_ids_[i] == id) {
    bufs_[static_cast<std::size_t>(net_recipients_[i])].push_back(
        net_messages_[i]);
    if (net_ids_[i] >= 0) slot_of_[static_cast<std::size_t>(id)] = -1;
    net_ids_[i] = net_ids_.back();
    net_messages_[i] = net_messages_.back();
    net_recipients_[i] = net_recipients_.back();
    net_ids_.pop_back();
    net_messages_.pop_back();
    net_recipients_.pop_back();
    if (i < net_ids_.size() && net_ids_[i] >= 0)
      slot_of_[static_cast<std::size_t>(net_ids_[i])] =
          static_cast<std::int32_t>(i);
    return std::nullopt;
  }
  SimError err;
  err.code = SimErrorCode::kUnknownMessage;
  err.detail = "deliver of message not in transit";
  err.message = id;
  return err;
}

std::vector<MpmMessage> Network::drain_buffer(ProcessId p) {
  if (!valid(p)) return {};
  std::vector<MpmMessage> out;
  out.swap(bufs_[static_cast<std::size_t>(p)]);
  return out;
}

void Network::drain_buffer_into(ProcessId p, std::vector<MpmMessage>& out) {
  out.clear();
  if (!valid(p)) return;
  std::vector<MpmMessage>& buf = bufs_[static_cast<std::size_t>(p)];
  out.insert(out.end(), buf.begin(), buf.end());
  buf.clear();
}

std::size_t Network::buffered(ProcessId p) const {
  if (!valid(p)) return 0;
  return bufs_[static_cast<std::size_t>(p)].size();
}

}  // namespace sesp
