#include "mpm/network.hpp"

#include <algorithm>

namespace sesp {

Network::Network(std::int32_t num_regular)
    : num_regular_(std::max(num_regular, 0)),
      bufs_(static_cast<std::size_t>(num_regular_)) {}

std::optional<SimError> Network::send(MsgId id, const MpmMessage& m,
                                      ProcessId recipient) {
  if (!valid(recipient)) {
    SimError err;
    err.code = SimErrorCode::kBadRecipient;
    err.detail = "send to process " + std::to_string(recipient) +
                 " outside [0, " + std::to_string(num_regular_) + ")";
    err.message = id;
    err.process = m.sender;
    return err;
  }
  net_.push_back(InTransit{id, m, recipient});
  return std::nullopt;
}

std::optional<SimError> Network::deliver(MsgId id) {
  for (std::size_t i = 0; i < net_.size(); ++i) {
    if (net_[i].id == id) {
      bufs_[static_cast<std::size_t>(net_[i].recipient)].push_back(
          net_[i].message);
      net_[i] = net_.back();
      net_.pop_back();
      return std::nullopt;
    }
  }
  SimError err;
  err.code = SimErrorCode::kUnknownMessage;
  err.detail = "deliver of message not in transit";
  err.message = id;
  return err;
}

std::vector<MpmMessage> Network::drain_buffer(ProcessId p) {
  if (!valid(p)) return {};
  std::vector<MpmMessage> out;
  out.swap(bufs_[static_cast<std::size_t>(p)]);
  return out;
}

std::size_t Network::buffered(ProcessId p) const {
  if (!valid(p)) return 0;
  return bufs_[static_cast<std::size_t>(p)].size();
}

}  // namespace sesp
