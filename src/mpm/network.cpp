#include "mpm/network.hpp"

#include <cstdio>
#include <cstdlib>

namespace sesp {

namespace {
[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "sesp::Network fatal: %s\n", what);
  std::abort();
}
}  // namespace

Network::Network(std::int32_t num_regular)
    : num_regular_(num_regular),
      bufs_(static_cast<std::size_t>(num_regular)) {
  if (num_regular <= 0) fail("need at least one regular process");
}

void Network::send(MsgId id, const MpmMessage& m, ProcessId recipient) {
  if (recipient < 0 || recipient >= num_regular_) fail("bad recipient");
  net_.push_back(InTransit{id, m, recipient});
}

void Network::deliver(MsgId id) {
  for (std::size_t i = 0; i < net_.size(); ++i) {
    if (net_[i].id == id) {
      bufs_[static_cast<std::size_t>(net_[i].recipient)].push_back(
          net_[i].message);
      net_[i] = net_.back();
      net_.pop_back();
      return;
    }
  }
  fail("deliver of message not in transit");
}

std::vector<MpmMessage> Network::drain_buffer(ProcessId p) {
  if (p < 0 || p >= num_regular_) fail("bad process in drain_buffer");
  std::vector<MpmMessage> out;
  out.swap(bufs_[static_cast<std::size_t>(p)]);
  return out;
}

std::size_t Network::buffered(ProcessId p) const {
  if (p < 0 || p >= num_regular_) fail("bad process in buffered");
  return bufs_[static_cast<std::size_t>(p)].size();
}

}  // namespace sesp
