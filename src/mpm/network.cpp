#include "mpm/network.hpp"

#include <algorithm>

namespace sesp {

Network::Network(std::int32_t num_regular)
    : num_regular_(std::max(num_regular, 0)),
      bufs_(static_cast<std::size_t>(num_regular_)) {}

std::optional<SimError> Network::send(MsgId id, const MpmMessage& m,
                                      ProcessId recipient) {
  if (!valid(recipient)) {
    SimError err;
    err.code = SimErrorCode::kBadRecipient;
    err.detail = "send to process " + std::to_string(recipient) +
                 " outside [0, " + std::to_string(num_regular_) + ")";
    err.message = id;
    err.process = m.sender;
    return err;
  }
  net_.push_back(InTransit{id, m, recipient});
  if (id >= 0) {
    if (static_cast<std::size_t>(id) >= slot_of_.size())
      slot_of_.resize(static_cast<std::size_t>(id) + 1, -1);
    slot_of_[static_cast<std::size_t>(id)] =
        static_cast<std::int32_t>(net_.size() - 1);
  }
  return std::nullopt;
}

std::optional<SimError> Network::deliver(MsgId id) {
  std::size_t i = net_.size();
  if (id >= 0 && static_cast<std::size_t>(id) < slot_of_.size()) {
    const std::int32_t slot = slot_of_[static_cast<std::size_t>(id)];
    if (slot >= 0) i = static_cast<std::size_t>(slot);
  } else {
    // Ids outside the dense range (never produced by the trace, but
    // reachable through injected faults) take the old scan.
    for (i = 0; i < net_.size(); ++i)
      if (net_[i].id == id) break;
  }
  if (i < net_.size() && net_[i].id == id) {
    bufs_[static_cast<std::size_t>(net_[i].recipient)].push_back(
        net_[i].message);
    if (net_[i].id >= 0) slot_of_[static_cast<std::size_t>(net_[i].id)] = -1;
    net_[i] = net_.back();
    net_.pop_back();
    if (i < net_.size() && net_[i].id >= 0)
      slot_of_[static_cast<std::size_t>(net_[i].id)] =
          static_cast<std::int32_t>(i);
    return std::nullopt;
  }
  SimError err;
  err.code = SimErrorCode::kUnknownMessage;
  err.detail = "deliver of message not in transit";
  err.message = id;
  return err;
}

std::vector<MpmMessage> Network::drain_buffer(ProcessId p) {
  if (!valid(p)) return {};
  std::vector<MpmMessage> out;
  out.swap(bufs_[static_cast<std::size_t>(p)]);
  return out;
}

void Network::drain_buffer_into(ProcessId p, std::vector<MpmMessage>& out) {
  out.clear();
  if (!valid(p)) return;
  std::vector<MpmMessage>& buf = bufs_[static_cast<std::size_t>(p)];
  out.insert(out.end(), buf.begin(), buf.end());
  buf.clear();
}

std::size_t Network::buffered(ProcessId p) const {
  if (!valid(p)) return 0;
  return bufs_[static_cast<std::size_t>(p)].size();
}

}  // namespace sesp
