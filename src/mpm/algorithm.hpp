#pragma once

// Algorithm interface for the message-passing model (Section 2.1.2). A step
// of a regular process p atomically: receives the set M of messages in
// buf_p, updates its local state based only on M and the current state, and
// broadcasts at most one message to all regular processes. Processes know
// the problem spec and whatever constants the timing model declares "known"
// (passed at construction); they cannot read the clock.

#include <memory>
#include <span>

#include "model/ids.hpp"
#include "mpm/message.hpp"
#include "timing/constraints.hpp"

namespace sesp {

struct MpmStepResult {
  bool broadcast = false;
  MpmMessage message;  // meaningful only if broadcast
  bool idle = false;   // process is in an idle state after this step
};

class MpmAlgorithm {
 public:
  virtual ~MpmAlgorithm() = default;

  // One compute step; `received` is the (possibly empty) content of buf_p.
  virtual MpmStepResult on_step(std::span<const MpmMessage> received) = 0;

  // True once the process has entered an idle state (absorbing).
  virtual bool is_idle() const = 0;
};

// Creates the local algorithm instance for each regular process.
class MpmAlgorithmFactory {
 public:
  virtual ~MpmAlgorithmFactory() = default;
  virtual std::unique_ptr<MpmAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const = 0;
  // Short name for reports.
  virtual const char* name() const = 0;
};

}  // namespace sesp
