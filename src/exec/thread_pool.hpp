#pragma once

// Fixed-size thread pool and the parallel_for_each primitive underneath
// every sweep layer (docs/parallelism.md).
//
// Design constraints, in order:
//   1. Determinism. parallel_for_each(count, fn) runs fn(i) exactly once
//      for every i in [0, count); callers write results into slot i of a
//      pre-sized vector, so the output is independent of which worker ran
//      which index and of the worker count. Nothing in this layer hands a
//      task a shared RNG, clock, or accumulator.
//   2. Zero-cost serial path. With jobs <= 1 (or count <= 1) the loop runs
//      inline on the caller's thread — no threads, no atomics, no
//      allocation — so SESP_JOBS=1 is exactly the pre-parallel hot path.
//   3. Safe nesting. A parallel_for_each issued from inside a pool task
//      runs inline (the sweep layers compose: a degradation grid whose
//      cells are themselves swept never deadlocks, it just stays on the
//      outer level's workers).
//
// Workers are lazily spawned on first parallel use and shared process-wide;
// indices are handed out with an atomic cursor (dynamic load balancing is
// invisible to results by constraint 1).

#include <cstddef>
#include <functional>

namespace sesp::exec {

// Runs fn(0) .. fn(count-1), all indices exactly once, returning after the
// last completes. Uses up to `jobs` threads including the caller's
// (jobs <= 0 resolves via default_jobs()). The library reports failures
// through structured results, not exceptions — but a task that does throw
// is contained, not fatal: every remaining slot still runs (so the
// exception choice is deterministic), and the exception from the
// smallest-index throwing slot is rethrown at the barrier, on the caller's
// thread, for every job count including the serial path. The pool stays
// usable afterwards.
void parallel_for_each(std::size_t count,
                       const std::function<void(std::size_t)>& fn,
                       int jobs = 0);

// True while the calling thread is executing a pool task; nested
// parallel_for_each calls observe this and run inline.
bool inside_pool_worker() noexcept;

}  // namespace sesp::exec
