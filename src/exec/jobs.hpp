#pragma once

// Job-count policy for the parallel sweep engine (docs/parallelism.md).
//
// Every parallel layer — the worst-case adversary families, the degradation
// grids, the chaos sweeps, the exhaustive enumerator's branch fan-out —
// resolves its worker count through default_jobs(): an explicit
// set_default_jobs() value (the CLI --jobs flag), else the SESP_JOBS
// environment variable, else the hardware concurrency. Job count is a
// throughput knob only: results are bit-identical for every value,
// including 1 (the serial path).
//
// Jobs compose with process-level sharding (src/shard/): --jobs sets the
// thread count inside one worker, --workers the number of worker processes
// leasing slot ranges of the same sweep; the byte-identity contract holds
// along both axes (docs/robustness.md "Sharded execution").

namespace sesp::exec {

// max(1, std::thread::hardware_concurrency()).
int hardware_jobs() noexcept;

// Resolution order: set_default_jobs() > SESP_JOBS env > hardware_jobs().
// A malformed or non-positive SESP_JOBS is ignored.
int default_jobs() noexcept;

// Installs an explicit job count (clamped to >= 1); 0 resets to the
// env/hardware default. Returns the previous explicit value (0 if none).
// Call from the main thread before sweeps start, like
// obs::set_default_observer.
int set_default_jobs(int jobs) noexcept;

}  // namespace sesp::exec
