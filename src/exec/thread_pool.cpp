#include "exec/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/jobs.hpp"

namespace sesp::exec {

namespace {

thread_local bool tls_inside_worker = false;

// First-in-slot-order exception capture: every slot still runs (the
// which-exception-wins choice must not depend on worker scheduling), the
// smallest throwing index is kept, and the barrier rethrows it.
struct ErrorSlot {
  std::mutex mu;
  std::exception_ptr error;
  std::size_t slot = static_cast<std::size_t>(-1);

  void note(std::size_t i, std::exception_ptr e) {
    std::lock_guard<std::mutex> lk(mu);
    if (i < slot) {
      slot = i;
      error = std::move(e);
    }
  }

  void reset() {
    std::lock_guard<std::mutex> lk(mu);
    error = nullptr;
    slot = static_cast<std::size_t>(-1);
  }

  std::exception_ptr take() {
    std::lock_guard<std::mutex> lk(mu);
    std::exception_ptr e = error;
    error = nullptr;
    slot = static_cast<std::size_t>(-1);
    return e;
  }
};

void run_slot(const std::function<void(std::size_t)>& fn, std::size_t i,
              ErrorSlot& errors) {
  try {
    fn(i);
  } catch (...) {
    errors.note(i, std::current_exception());
  }
}

// One job at a time: run() holds run_mu_ for its whole duration, workers
// synchronize on mu_. The job is described by (fn_, count_) and consumed
// through the atomic cursor next_; helpers_wanted_ caps how many workers
// may join, so a jobs=2 sweep on a 16-thread pool really uses two threads.
class Pool {
 public:
  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_job_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& fn,
           int max_workers) {
    std::lock_guard<std::mutex> run_lk(run_mu_);
    const int helpers_goal = max_workers - 1;
    errors_.reset();
    std::unique_lock<std::mutex> lk(mu_);
    ensure_workers(helpers_goal);
    const int helpers =
        static_cast<int>(workers_.size()) < helpers_goal
            ? static_cast<int>(workers_.size())
            : helpers_goal;
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    helpers_wanted_ = helpers;
    helpers_done_ = 0;
    ++generation_;
    lk.unlock();
    cv_job_.notify_all();

    // The caller participates as a worker; marking it inside-pool makes a
    // nested parallel_for_each from its own slice run inline instead of
    // re-entering run() and deadlocking on run_mu_.
    const bool was_inside = tls_inside_worker;
    tls_inside_worker = true;
    work();
    tls_inside_worker = was_inside;

    lk.lock();
    // Workers that never woke must not join a job whose fn is about to go
    // out of scope; zeroing helpers_wanted_ under the lock closes the door.
    const int joined = helpers - helpers_wanted_;
    helpers_wanted_ = 0;
    cv_done_.wait(lk, [&] { return helpers_done_ == joined; });
    fn_ = nullptr;
    lk.unlock();

    // Rethrow the first (slot-order) task exception on the caller's thread,
    // after the barrier, with all pool state already reset for the next job.
    if (std::exception_ptr e = errors_.take()) std::rethrow_exception(e);
  }

 private:
  void ensure_workers(int wanted) {
    // Capped well above any sane SESP_JOBS; the pool exists for sweeps,
    // not for thousands of threads.
    constexpr int kMaxWorkers = 256;
    if (wanted > kMaxWorkers) wanted = kMaxWorkers;
    while (static_cast<int>(workers_.size()) < wanted)
      workers_.emplace_back([this] { worker_loop(); });
  }

  void work() {
    const std::function<void(std::size_t)>& fn = *fn_;
    const std::size_t count = count_;
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      run_slot(fn, i, errors_);
    }
  }

  void worker_loop() {
    tls_inside_worker = true;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      cv_job_.wait(lk, [&] {
        return stop_ || (generation_ != seen && helpers_wanted_ > 0);
      });
      if (stop_) return;
      seen = generation_;
      --helpers_wanted_;
      lk.unlock();
      work();
      lk.lock();
      ++helpers_done_;
      cv_done_.notify_all();
    }
  }

  std::mutex run_mu_;  // serializes concurrent run() callers

  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  int helpers_wanted_ = 0;
  int helpers_done_ = 0;

  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  ErrorSlot errors_;
};

Pool& shared_pool() {
  static Pool pool;
  return pool;
}

}  // namespace

bool inside_pool_worker() noexcept { return tls_inside_worker; }

void parallel_for_each(std::size_t count,
                       const std::function<void(std::size_t)>& fn, int jobs) {
  if (count == 0) return;
  int k = jobs > 0 ? jobs : default_jobs();
  if (static_cast<std::size_t>(k) > count) k = static_cast<int>(count);
  if (k <= 1 || tls_inside_worker) {
    // Same containment contract as the pool path: run every slot, then
    // rethrow the smallest-index exception.
    ErrorSlot errors;
    for (std::size_t i = 0; i < count; ++i) run_slot(fn, i, errors);
    if (std::exception_ptr e = errors.take()) std::rethrow_exception(e);
    return;
  }
  shared_pool().run(count, fn, k);
}

}  // namespace sesp::exec
