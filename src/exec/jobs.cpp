#include "exec/jobs.hpp"

#include <cstdlib>
#include <thread>

namespace sesp::exec {

namespace {

int explicit_jobs = 0;

int env_jobs() noexcept {
  const char* env = std::getenv("SESP_JOBS");
  if (!env || !*env) return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 1 || v > 1024) return 0;
  return static_cast<int>(v);
}

}  // namespace

int hardware_jobs() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int default_jobs() noexcept {
  if (explicit_jobs > 0) return explicit_jobs;
  const int env = env_jobs();
  return env > 0 ? env : hardware_jobs();
}

int set_default_jobs(int jobs) noexcept {
  const int previous = explicit_jobs;
  explicit_jobs = jobs > 0 ? jobs : 0;
  return previous;
}

}  // namespace sesp::exec
