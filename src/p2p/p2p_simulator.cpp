#include "p2p/p2p_simulator.hpp"

#include <memory>
#include <vector>

#include "sim/calendar_queue.hpp"

namespace sesp {

namespace {

// In-flight / delivered-but-unreceived gossip payloads, as a MsgId-indexed
// slot arena (docs/performance.md "Data layout"). Payload slots are
// released when a message is received and reassigned to later sends;
// because reassignment copy-assigns into the retired Knowledge, its entry
// buffer's capacity is reused — the steady state allocates nothing, where
// the old std::map<MsgId, Knowledge> paid a node allocation plus a fresh
// Knowledge copy per message sent.
class PayloadArena {
 public:
  enum : std::uint8_t { kNone = 0, kInFlight = 1, kBuffered = 2 };

  std::uint8_t state(MsgId id) const noexcept {
    return id >= 0 && static_cast<std::size_t>(id) < state_.size()
               ? state_[static_cast<std::size_t>(id)]
               : static_cast<std::uint8_t>(kNone);
  }

  void send(MsgId id, const Knowledge& payload) {
    const auto i = static_cast<std::size_t>(id);
    if (i >= state_.size()) {
      state_.resize(i + 1, kNone);
      slot_of_.resize(i + 1, -1);
    }
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slots_[slot] = payload;  // reuses the retired Knowledge's capacity
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(payload);
    }
    slot_of_[i] = static_cast<std::int32_t>(slot);
    state_[i] = kInFlight;
  }

  void mark_delivered(MsgId id) noexcept {
    state_[static_cast<std::size_t>(id)] = kBuffered;
  }

  const Knowledge& payload(MsgId id) const noexcept {
    return slots_[static_cast<std::size_t>(
        slot_of_[static_cast<std::size_t>(id)])];
  }

  void release(MsgId id) noexcept {
    const auto i = static_cast<std::size_t>(id);
    free_.push_back(static_cast<std::uint32_t>(slot_of_[i]));
    slot_of_[i] = -1;
    state_[i] = kNone;
  }

 private:
  std::vector<std::uint8_t> state_;    // MsgId -> lifecycle state
  std::vector<std::int32_t> slot_of_;  // MsgId -> slot (-1 when kNone)
  std::vector<Knowledge> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace

// Same calendar-queue lane-run structure as MpmSimulator::run — see the
// equivalence note there; the golden corpus and sim_core_equiv_test pin
// bit-identical traces.

P2pSimulator::P2pSimulator(const ProblemSpec& spec,
                           const TimingConstraints& constraints,
                           const Topology& topology,
                           const P2pAlgorithmFactory& factory,
                           StepScheduler& scheduler, DelayStrategy& delays,
                           FaultInjector* faults, obs::Observer* observer)
    : spec_(spec),
      constraints_(constraints),
      topology_(topology),
      factory_(factory),
      scheduler_(scheduler),
      delays_(delays),
      faults_(faults),
      observer_(observer) {}

P2pRunResult P2pSimulator::run(const P2pRunLimits& limits) {
  const std::int32_t n = spec_.n;
  obs::Observer* const o = obs::resolve(observer_);
  obs::Profiler* const prof = o ? o->profiler : nullptr;
  obs::Span run_span(o ? o->trace : nullptr, "p2p.run", "sim",
                     o && o->trace
                         ? obs::args_object(
                               {obs::arg_int("n", n),
                                obs::arg_int("s", spec_.s)})
                         : std::string());
  if (o && o->runs) o->runs->inc();
  P2pRunResult result{TimedComputation(Substrate::kMessagePassing,
                                       std::max(n, 0), std::max(n, 0)),
                      false,
                      false,
                      0,
                      0,
                      topology_.num_nodes() == n ? topology_.diameter() : 0,
                      std::nullopt,
                      {}};
  if (n <= 0 || topology_.num_nodes() != n || !topology_.connected()) {
    SimError err;
    err.code = SimErrorCode::kInvalidSpec;
    err.detail = "topology must have n=" + std::to_string(n) +
                 " connected nodes (has " +
                 std::to_string(topology_.num_nodes()) + ")";
    result.error = std::move(err);
    obs::observe_error(o, *result.error);
    return result;
  }
  TimedComputation& trace = result.trace;

  std::vector<std::unique_ptr<P2pAlgorithm>> algs;
  algs.reserve(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p)
    algs.push_back(factory_.create(p, spec_, constraints_));

  // Accumulated gossip view per process, and in-flight message payloads.
  std::vector<Knowledge> view(static_cast<std::size_t>(n));
  PayloadArena payloads;
  // Delivered-but-not-received payloads per process.
  std::vector<std::vector<MsgId>> pending(static_cast<std::size_t>(n));

  CalendarQueue queue;
  obs::SampledPhaseTimer pop_timer(prof, obs::ProfilePhase::kEventQueuePop);
  obs::SampledPhaseTimer deliver_timer(prof, obs::ProfilePhase::kDeliver);
  obs::SampledPhaseTimer step_timer(prof, obs::ProfilePhase::kProcessStep);
  obs::SampledPhaseTimer sched_timer(prof, obs::ProfilePhase::kSchedule);

  std::vector<std::int64_t> step_count(static_cast<std::size_t>(n), 0);
  std::int32_t non_idle = n;

  auto schedule_step = [&](ProcessId p, std::optional<Time> prev,
                           std::int64_t index) -> bool {
    sched_timer.begin();
    Time t = scheduler_.next_step_time(p, prev, index);
    const Time floor = prev.value_or(Time(0));
    if (faults_) {
      const Time scheduled = t;
      t = faults_->perturb_step_time(p, index, floor, t);
      if (t != scheduled) obs::observe_fault(o, "timing", p, t);
    }
    if (t < floor) {
      SimError err;
      err.code = SimErrorCode::kNonMonotonicSchedule;
      err.detail = "scheduled t=" + t.to_string() + " before t=" +
                   floor.to_string();
      err.process = p;
      err.step_index = static_cast<std::int64_t>(trace.steps().size());
      err.time = floor;
      result.error = std::move(err);
      sched_timer.end();
      return false;
    }
    queue.push_compute(t, p);
    sched_timer.end();
    return true;
  };

  for (ProcessId p = 0; p < n; ++p)
    if (!schedule_step(p, std::nullopt, 0)) {
      obs::observe_error(o, *result.error);
      return result;
    }

  Time last_event_time(0);
  std::int64_t stagnant_events = 0;
  bool stop = false;
  CalendarQueue::Popped ev;

  auto watchdogs = [&]() -> bool {
    if (o && o->event_queue_depth)
      o->event_queue_depth->set(static_cast<std::int64_t>(queue.size()) + 1);
    if (result.compute_steps >= limits.max_steps ||
        limits.max_time < ev.time) {
      result.hit_limit = true;
      SimError err;
      const bool steps = result.compute_steps >= limits.max_steps;
      err.code = steps ? SimErrorCode::kStepLimitExceeded
                       : SimErrorCode::kTimeLimitExceeded;
      err.detail = steps ? "compute-step budget " +
                               std::to_string(limits.max_steps) + " exhausted"
                         : "model-time budget " + limits.max_time.to_string() +
                               " exhausted";
      err.step_index = static_cast<std::int64_t>(trace.steps().size());
      err.time = ev.time;
      result.error = std::move(err);
      return true;
    }
    if (ev.time == last_event_time) {
      if (++stagnant_events > limits.max_stagnant_events) {
        result.hit_limit = true;
        SimError err;
        err.code = SimErrorCode::kNoProgress;
        err.detail = "time pinned at t=" + ev.time.to_string() + " for " +
                     std::to_string(stagnant_events) + " events";
        err.step_index = static_cast<std::int64_t>(trace.steps().size());
        err.time = ev.time;
        result.error = std::move(err);
        return true;
      }
    } else {
      last_event_time = ev.time;
      stagnant_events = 0;
    }
    return false;
  };

  while (!stop && !queue.empty() && non_idle > 0) {
    pop_timer.begin();
    const CalendarQueue::Lane lane = queue.peek_lane();
    pop_timer.end();

    if (lane == CalendarQueue::Lane::kDeliver) {
      deliver_timer.begin();
      do {
        queue.pop(ev);
        if (watchdogs()) {
          stop = true;
          break;
        }
        if (payloads.state(ev.message) != PayloadArena::kInFlight) {
          SimError err;
          err.code = SimErrorCode::kUnknownMessage;
          err.detail = "deliver of message not in transit";
          err.message = ev.message;
          err.step_index = static_cast<std::int64_t>(trace.steps().size());
          err.time = ev.time;
          result.error = std::move(err);
          stop = true;
          break;
        }
        StepRecord st;
        st.kind = StepKind::kDeliver;
        st.process = kNetworkProcess;
        st.time = ev.time;
        st.delivered = ev.message;
        const std::size_t index = trace.append(st);
        MessageRecord& rec =
            trace.mutable_messages()[static_cast<std::size_t>(ev.message)];
        rec.deliver_step = index;
        pending[static_cast<std::size_t>(rec.recipient)].push_back(
            ev.message);
        if (o && o->messages_delivered) {
          o->messages_delivered->inc();
          o->pending_depth->set(static_cast<std::int64_t>(
              pending[static_cast<std::size_t>(rec.recipient)].size()));
        }
        payloads.mark_delivered(ev.message);
      } while (!queue.empty() &&
               queue.peek_lane() == CalendarQueue::Lane::kDeliver);
      deliver_timer.end();
      continue;
    }

    step_timer.begin();
    do {
      queue.pop(ev);
      if (watchdogs()) {
        stop = true;
        break;
      }

      const ProcessId p = ev.process;
      const auto pi = static_cast<std::size_t>(p);

      // Crash-stop: the process halts; its knowledge stops spreading.
      if (faults_ && faults_->crash_now(p, step_count[pi], ev.time)) {
        obs::observe_fault(o, "crash", p, ev.time);
        result.crashed.push_back(p);
        --non_idle;
        continue;
      }

      // Receive: merge all delivered payloads. The step is appended after
      // the algorithm runs (its idle flag is part of the record), so the
      // index is the prospective one.
      const std::size_t step_index = trace.steps().size();
      for (const MsgId id : pending[pi]) {
        view[pi].merge(payloads.payload(id));
        payloads.release(id);
        trace.mutable_messages()[static_cast<std::size_t>(id)].receive_step =
            step_index;
      }
      pending[pi].clear();

      P2pAlgorithm& alg = *algs[pi];
      alg.on_step(view[pi]);
      const PortInfo own = alg.advertised();
      view[pi].record(p, own);
      const bool idle = alg.is_idle();

      StepRecord st;
      st.kind = StepKind::kCompute;
      st.process = p;
      st.time = ev.time;
      st.port = p;  // every step of a port process involves its buf
      st.idle_after = idle;
      trace.append(st);

      // Gossip the full view to every neighbour.
      for (const ProcessId q : topology_.neighbors(p)) {
        MessageRecord rec;
        rec.sender = p;
        rec.recipient = q;
        rec.send_step = step_index;
        rec.session = own.session;
        rec.steps = own.steps;
        rec.done = own.done;
        const MsgId id = trace.append_message(rec);
        ++result.messages_sent;
        if (o && o->messages_sent) o->messages_sent->inc();

        const MessageAction act =
            faults_ ? faults_->on_send(id, p, q, ev.time) : MessageAction{};
        if (act.drop) {  // lost: sent but never delivered
          if (o && o->messages_dropped) o->messages_dropped->inc();
          obs::observe_fault(o, "drop", p, ev.time);
          continue;
        }
        if (act.extra_delay.is_positive())
          obs::observe_fault(o, "delay", p, ev.time);

        const Duration delay =
            delays_.delay(p, q, ev.time, id) + act.extra_delay;
        payloads.send(id, view[pi]);
        queue.push_deliver(ev.time + delay, q, id);

        if (act.duplicate) {
          obs::observe_fault(o, "duplicate", p, ev.time);
          MessageRecord dup = rec;
          const MsgId dup_id = trace.append_message(dup);
          payloads.send(dup_id, view[pi]);
          queue.push_deliver(ev.time + delay + act.extra_delay, q, dup_id);
          ++result.messages_sent;
          if (o && o->messages_sent) o->messages_sent->inc();
        }
      }

      ++result.compute_steps;
      if (o && o->steps) o->steps->inc();
      ++step_count[pi];
      if (idle) {
        --non_idle;
      } else if (!schedule_step(p, ev.time, step_count[pi])) {
        stop = true;
        break;
      }
    } while (non_idle > 0 && !queue.empty() &&
             queue.peek_lane() == CalendarQueue::Lane::kCompute);
    step_timer.end();
  }

  result.completed = non_idle == 0 && !result.error;
  if (result.error) obs::observe_error(o, *result.error);
  obs::observe_watchdog_margins(o, result.compute_steps, limits.max_steps,
                                last_event_time, limits.max_time);
  if (o && o->trace)
    run_span.set_args(obs::args_object(
        {obs::arg_int("n", n), obs::arg_int("s", spec_.s),
         obs::arg_int("steps", result.compute_steps),
         obs::arg_int("messages", result.messages_sent),
         obs::arg_int("diameter", result.diameter),
         obs::arg_int("completed", result.completed ? 1 : 0)}));
  return result;
}

}  // namespace sesp
