#include "p2p/p2p_simulator.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <queue>
#include <vector>

namespace sesp {

namespace {

enum class EventKind : std::uint8_t { kProcessStep = 0, kDeliver = 1 };

struct Event {
  Time time;
  EventKind kind;
  std::uint64_t seq;
  ProcessId process = 0;
  MsgId message = kNoMsg;
};

// Compute steps before deliveries at equal times (worst admissible
// interleaving), then FIFO — same convention as MpmSimulator.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return b.time < a.time;
    if (a.kind != b.kind) return a.kind == EventKind::kDeliver;
    return a.seq > b.seq;
  }
};

}  // namespace

P2pSimulator::P2pSimulator(const ProblemSpec& spec,
                           const TimingConstraints& constraints,
                           const Topology& topology,
                           const P2pAlgorithmFactory& factory,
                           StepScheduler& scheduler, DelayStrategy& delays)
    : spec_(spec),
      constraints_(constraints),
      topology_(topology),
      factory_(factory),
      scheduler_(scheduler),
      delays_(delays) {
  if (topology_.num_nodes() != spec_.n || !topology_.connected()) {
    std::fprintf(stderr,
                 "P2pSimulator fatal: topology must have n connected nodes\n");
    std::abort();
  }
}

P2pRunResult P2pSimulator::run(const P2pRunLimits& limits) {
  const std::int32_t n = spec_.n;
  P2pRunResult result{TimedComputation(Substrate::kMessagePassing, n, n),
                      false,
                      false,
                      0,
                      0,
                      topology_.diameter()};
  TimedComputation& trace = result.trace;

  std::vector<std::unique_ptr<P2pAlgorithm>> algs;
  algs.reserve(static_cast<std::size_t>(n));
  for (ProcessId p = 0; p < n; ++p)
    algs.push_back(factory_.create(p, spec_, constraints_));

  // Accumulated gossip view per process, and in-flight message payloads.
  std::vector<Knowledge> view(static_cast<std::size_t>(n));
  std::map<MsgId, Knowledge> in_flight;
  // Delivered-but-not-received payloads per process.
  std::vector<std::vector<MsgId>> pending(static_cast<std::size_t>(n));
  std::map<MsgId, Knowledge> buffered;

  std::priority_queue<Event, std::vector<Event>, EventAfter> queue;
  std::uint64_t seq = 0;
  std::vector<std::int64_t> step_count(static_cast<std::size_t>(n), 0);
  std::int32_t non_idle = n;

  for (ProcessId p = 0; p < n; ++p)
    queue.push(Event{scheduler_.next_step_time(p, std::nullopt, 0),
                     EventKind::kProcessStep, seq++, p, kNoMsg});

  while (!queue.empty() && non_idle > 0) {
    const Event ev = queue.top();
    queue.pop();
    if (result.compute_steps >= limits.max_steps ||
        limits.max_time < ev.time) {
      result.hit_limit = true;
      break;
    }

    if (ev.kind == EventKind::kDeliver) {
      StepRecord st;
      st.kind = StepKind::kDeliver;
      st.process = kNetworkProcess;
      st.time = ev.time;
      st.delivered = ev.message;
      const std::size_t index = trace.append(st);
      MessageRecord& rec =
          trace.mutable_messages()[static_cast<std::size_t>(ev.message)];
      rec.deliver_step = index;
      pending[static_cast<std::size_t>(rec.recipient)].push_back(ev.message);
      auto node = in_flight.extract(ev.message);
      buffered.insert(std::move(node));
      continue;
    }

    const ProcessId p = ev.process;
    const auto pi = static_cast<std::size_t>(p);

    // Receive: merge all delivered payloads. The step is appended after the
    // algorithm runs (its idle flag is part of the record), so the index is
    // the prospective one.
    const std::size_t step_index = trace.steps().size();
    for (const MsgId id : pending[pi]) {
      const auto it = buffered.find(id);
      view[pi].merge(it->second);
      buffered.erase(it);
      trace.mutable_messages()[static_cast<std::size_t>(id)].receive_step =
          step_index;
    }
    pending[pi].clear();

    P2pAlgorithm& alg = *algs[pi];
    alg.on_step(view[pi]);
    const PortInfo own = alg.advertised();
    view[pi].record(p, own);
    const bool idle = alg.is_idle();

    StepRecord st;
    st.kind = StepKind::kCompute;
    st.process = p;
    st.time = ev.time;
    st.port = p;  // every step of a port process involves its buf
    st.idle_after = idle;
    trace.append(st);

    // Gossip the full view to every neighbour.
    for (const ProcessId q : topology_.neighbors(p)) {
      MessageRecord rec;
      rec.sender = p;
      rec.recipient = q;
      rec.send_step = step_index;
      rec.session = own.session;
      rec.steps = own.steps;
      rec.done = own.done;
      const MsgId id = trace.append_message(rec);
      in_flight.emplace(id, view[pi]);
      const Duration delay = delays_.delay(p, q, ev.time, id);
      queue.push(Event{ev.time + delay, EventKind::kDeliver, seq++, q, id});
      ++result.messages_sent;
    }

    ++result.compute_steps;
    ++step_count[pi];
    if (idle) {
      --non_idle;
    } else {
      queue.push(Event{scheduler_.next_step_time(p, ev.time, step_count[pi]),
                       EventKind::kProcessStep, seq++, p, kNoMsg});
    }
  }

  result.completed = non_idle == 0;
  return result;
}

}  // namespace sesp
