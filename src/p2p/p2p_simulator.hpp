#pragma once

// Event-driven executor of the point-to-point message-passing model: like
// MpmSimulator, but a step's broadcast only reaches the process's topology
// neighbours, carrying the sender's full accumulated knowledge (gossip
// relay). Information crosses the network in diameter hops; the
// bench_diameter experiment measures exactly that factor, which the
// abstract model's d2 subsumes (conversion note (1) of the paper).
//
// Supports the same FaultInjector hooks and watchdog/SimError hardening as
// MpmSimulator: crash-stop, message drop/duplication/extra delay, timing
// violations, structured diagnostics instead of aborts. An optional
// obs::Observer (same nullable pattern) instruments the run with the shared
// metric/trace vocabulary (see docs/observability.md).

#include <cstdint>
#include <optional>
#include <vector>

#include "adversary/schedulers.hpp"
#include "faults/fault_injector.hpp"
#include "faults/sim_error.hpp"
#include "model/ids.hpp"
#include "model/timed_computation.hpp"
#include "mpm/topology.hpp"
#include "obs/observer.hpp"
#include "p2p/algorithm.hpp"
#include "timing/constraints.hpp"

namespace sesp {

struct P2pRunLimits {
  std::int64_t max_steps = 2'000'000;
  Time max_time = Time(1'000'000'000);
  std::int64_t max_stagnant_events = 100'000;
};

struct P2pRunResult {
  TimedComputation trace;
  bool completed = false;  // every port process idled or crash-stopped
  bool hit_limit = false;
  std::int64_t compute_steps = 0;
  std::int64_t messages_sent = 0;
  std::int32_t diameter = 0;
  // Structured diagnostics (see MpmRunResult::error).
  std::optional<SimError> error;
  std::vector<ProcessId> crashed;
};

class P2pSimulator {
 public:
  // The topology must have exactly spec.n nodes and be connected (checked at
  // run() time; a mismatch yields an invalid-spec SimError, not an abort).
  P2pSimulator(const ProblemSpec& spec, const TimingConstraints& constraints,
               const Topology& topology, const P2pAlgorithmFactory& factory,
               StepScheduler& scheduler, DelayStrategy& delays,
               FaultInjector* faults = nullptr,
               obs::Observer* observer = nullptr);

  P2pRunResult run(const P2pRunLimits& limits = P2pRunLimits{});

 private:
  ProblemSpec spec_;
  TimingConstraints constraints_;
  const Topology& topology_;
  const P2pAlgorithmFactory& factory_;
  StepScheduler& scheduler_;
  DelayStrategy& delays_;
  FaultInjector* faults_;
  obs::Observer* observer_;
};

}  // namespace sesp
