#pragma once

// Algorithm interface for the point-to-point MPM variant. Processes gossip
// their accumulated Knowledge to their topology neighbours at every step
// (the model's messages have no size bound, so a step's single message
// carries the full monotone view). As in the abstract MPM, every compute
// step of a port process involves its buf and is a port step.

#include <memory>

#include "model/ids.hpp"
#include "smm/knowledge.hpp"
#include "timing/constraints.hpp"

namespace sesp {

class P2pAlgorithm {
 public:
  virtual ~P2pAlgorithm() = default;

  // One compute step; `view` is the process's accumulated knowledge (all
  // facts received so far, merged), refreshed with this step's receipts.
  virtual void on_step(const Knowledge& view) = 0;

  // The fact about this process gossiped to neighbours after the step.
  virtual PortInfo advertised() const = 0;

  // True once idle (absorbing).
  virtual bool is_idle() const = 0;
};

class P2pAlgorithmFactory {
 public:
  virtual ~P2pAlgorithmFactory() = default;
  virtual std::unique_ptr<P2pAlgorithm> create(
      ProcessId p, const ProblemSpec& spec,
      const TimingConstraints& constraints) const = 0;
  virtual const char* name() const = 0;
};

}  // namespace sesp
