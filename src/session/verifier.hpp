#pragma once

// End-to-end verdict for one timed computation against the (s, n)-session
// problem (Section 2.3): admissibility under the timing model, session
// count, termination, and the running-time measures (real time, rounds, γ).

#include <cstdint>
#include <optional>
#include <string>

#include "model/ids.hpp"
#include "model/timed_computation.hpp"
#include "obs/observer.hpp"
#include "session/round_counter.hpp"
#include "session/session_counter.hpp"
#include "timing/admissibility.hpp"

namespace sesp {

struct Verdict {
  bool admissible = false;
  std::string admissibility_violation;
  // Exact first violating step (process, index, time, message) when the
  // inadmissibility maps to a step — the detection half of the fault model.
  std::optional<ViolationSite> violation_site;

  std::int64_t sessions = 0;
  bool all_ports_idle = false;
  // sessions >= s and every port process idles.
  bool solves = false;

  // Real-time measure: time of the last port process's idling step.
  std::optional<Time> termination_time;
  // Round measure over the active prefix (asynchronous / sporadic models).
  RoundDecomposition rounds;
  // Largest observed step gap before termination (the paper's γ).
  std::optional<Duration> gamma;
};

// `observer` (optional, unowned) records a "verify.run" span plus session /
// verified-run counters and the termination-time histogram; when null the
// process default observer (if any) is used.
Verdict verify(const TimedComputation& tc, const ProblemSpec& spec,
               const TimingConstraints& constraints,
               obs::Observer* observer = nullptr);

}  // namespace sesp
