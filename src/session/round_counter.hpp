#pragma once

// Round counting (Section 2.3): a round is a minimal computation fragment in
// which every process appears at least once; an algorithm runs in r rounds
// if, in every admissible computation, the prefix before all port processes
// are idle decomposes into at most r disjoint rounds. As with sessions, the
// greedy left-to-right decomposition maximizes the number of disjoint
// rounds, which is exactly the quantity the asynchronous bounds cap.

#include <cstdint>
#include <vector>

#include "model/timed_computation.hpp"

namespace sesp {

struct RoundDecomposition {
  std::int64_t full_rounds = 0;
  // True if a trailing partial round (some processes stepped, not all)
  // remains after the last full round.
  bool partial_tail = false;

  // Rounds "required until termination": full rounds plus the partial tail.
  std::int64_t rounds_ceiling() const {
    return full_rounds + (partial_tail ? 1 : 0);
  }
};

// Counts rounds over the trace's active prefix (through the step at which
// the last port process idles). A process that has become idle no longer
// needs to appear for a round to complete: the prefix "before all processes
// are idle" in the paper precedes any idle stuttering, and our simulators
// stop scheduling idle processes. Deliver steps (network) don't participate.
RoundDecomposition count_rounds(const TimedComputation& tc);

}  // namespace sesp
