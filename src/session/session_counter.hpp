#pragma once

// Session counting (Section 2.3). A session is a minimal computation
// fragment containing at least one port step for every port; the problem
// asks for at least s *disjoint* sessions. The maximum number of disjoint
// sessions in a fixed sequence is computed greedily: scan left to right and
// cut as soon as every port has been seen since the previous cut. Greedy is
// optimal (an exchange argument: moving any cut earlier never decreases the
// number of later cuts), so `count_sessions` returns the best decomposition
// and "trace has >= s sessions" is equivalent to `count_sessions >= s`.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/timed_computation.hpp"

namespace sesp {

struct SessionDecomposition {
  std::int64_t sessions = 0;
  // steps()-index one past each session's last step (the greedy cut points).
  std::vector<std::size_t> cut_points;
  // Time of each session's closing step.
  std::vector<Time> close_times;
};

// Counts disjoint sessions over steps [begin, end) of the trace. Defaults to
// the whole trace.
SessionDecomposition count_sessions(const TimedComputation& tc,
                                    std::size_t begin = 0,
                                    std::size_t end = static_cast<std::size_t>(-1));

// Convenience: session count over an arbitrary step sequence (used by the
// lower-bound constructions on reordered computations that were never run
// through a simulator). `num_ports` gives the port universe; steps with
// port == kNoPort are ignored.
std::int64_t count_sessions_in(const std::vector<StepRecord>& steps,
                               std::int32_t num_ports);

}  // namespace sesp
