#include "session/round_counter.hpp"

namespace sesp {

RoundDecomposition count_rounds(const TimedComputation& tc) {
  RoundDecomposition out;
  const std::size_t prefix = tc.active_prefix_length();
  const auto n = static_cast<std::size_t>(tc.num_processes());
  if (n == 0) return out;

  std::vector<bool> idle(n, false);
  std::vector<bool> seen(n, false);
  std::size_t distinct = 0;

  auto round_complete = [&]() {
    for (std::size_t p = 0; p < n; ++p)
      if (!seen[p] && !idle[p]) return false;
    return true;
  };

  for (std::size_t i = 0; i < prefix; ++i) {
    const StepRecord& st = tc.steps()[i];
    if (!st.is_compute()) continue;
    const auto p = static_cast<std::size_t>(st.process);
    if (!seen[p]) {
      seen[p] = true;
      ++distinct;
    }
    if (st.idle_after) idle[p] = true;
    if (round_complete()) {
      ++out.full_rounds;
      seen.assign(n, false);
      distinct = 0;
    }
  }
  out.partial_tail = distinct > 0;
  return out;
}

}  // namespace sesp
