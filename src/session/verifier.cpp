#include "session/verifier.hpp"

namespace sesp {

Verdict verify(const TimedComputation& tc, const ProblemSpec& spec,
               const TimingConstraints& constraints,
               obs::Observer* observer) {
  obs::Observer* const o = obs::resolve(observer);
  obs::Profiler* const prof = o ? o->profiler : nullptr;
  obs::Span span(o ? o->trace : nullptr, "verify.run", "verify");
  Verdict v;
  {
    obs::ProfileScope ps(prof, obs::ProfilePhase::kAdmissibility);
    const AdmissibilityReport adm = check_admissible(tc, constraints);
    v.admissible = adm.admissible;
    v.admissibility_violation = adm.violation;
    v.violation_site = adm.site;
  }

  {
    obs::ProfileScope ps(prof, obs::ProfilePhase::kSessionCount);
    v.sessions = count_sessions(tc).sessions;
    v.all_ports_idle = tc.all_ports_idle();
    v.solves = v.sessions >= spec.s && v.all_ports_idle;
    v.termination_time = tc.termination_time();
    v.rounds = count_rounds(tc);
    v.gamma = tc.gamma();
  }
  if (o) {
    if (o->verified_runs) o->verified_runs->inc();
    if (o->sessions && v.sessions > 0) o->sessions->inc(v.sessions);
    if (o->termination_time && v.termination_time)
      o->termination_time->observe(*v.termination_time);
  }
  if (o && o->trace)
    span.set_args(obs::args_object(
        {obs::arg_int("sessions", v.sessions),
         obs::arg_int("admissible", v.admissible ? 1 : 0),
         obs::arg_int("solves", v.solves ? 1 : 0)}));
  return v;
}

}  // namespace sesp
