#include "session/verifier.hpp"

#include <vector>

namespace sesp {

namespace {

// The counting half of a Verdict, fused into one flat pass over the steps
// (docs/performance.md "Verifier hot path"). The separate routines it
// replaces — count_sessions, all_ports_idle, termination_time,
// count_rounds, gamma — each rescan the trace and two of them recompute the
// active prefix; here every per-step update runs once, in the single pass.
// Results are value-identical to calling the standalone routines
// (sim_core_equiv_test cross-checks them against this fusion).
struct CountedVerdict {
  std::int64_t sessions = 0;
  bool all_ports_idle = false;
  std::optional<Time> termination_time;
  RoundDecomposition rounds;
  std::optional<Duration> gamma;
};

// Also feeds every step through `adm` — the single-pass admissibility
// prover — so the admissible case (every grid-sweep trace) costs one scan
// of the trace total instead of one for counting plus one for checking.
#if defined(__GNUC__)
// The scan's step() is worth inlining here — one call per trace step — but
// it is big enough that the inliner passes on it by default.
__attribute__((flatten))
#endif
CountedVerdict count_all(const TimedComputation& tc, AdmissibilityScan& adm) {
  CountedVerdict out;
  const auto& steps = tc.steps();
  const std::int32_t num_ports = tc.num_ports();
  const auto n = static_cast<std::size_t>(
      tc.num_processes() > 0 ? tc.num_processes() : 0);
  const auto ports = static_cast<std::size_t>(num_ports > 0 ? num_ports : 0);

  // Greedy session scan over the full trace (count_sessions). Byte flags
  // throughout, not vector<bool>: this loop runs once per trace step and a
  // predicted byte load beats a read-modify-write bit mask there.
  std::vector<char> session_seen(ports, 0);
  std::int32_t session_missing = num_ports;

  // Port idling: all_ports_idle / termination_time / the active prefix.
  std::vector<char> port_idle(ports, 0);
  std::int32_t ports_remaining = num_ports;
  bool active = true;  // still inside the active prefix

  // Round decomposition over the active prefix (count_rounds). A round is
  // complete when every process is seen-or-idle; `covered` counts processes
  // in that union so the completeness test is one compare instead of a loop
  // (a process enters the union at most once per round, and resetting the
  // seen flags shrinks the union back to the idle set).
  std::vector<char> round_idle(n, 0);
  std::vector<char> round_seen(n, 0);
  std::size_t distinct = 0;
  std::size_t covered = 0;
  std::size_t idle_count = 0;

  // Largest step gap over the active prefix (gamma); time 0 is the virtual
  // predecessor, which zero-initialization encodes. The scan computes the
  // same per-process gaps; reuse its subtraction whenever it offers one
  // (it stops offering after an anomaly, so keep `last` updated regardless).
  std::vector<Time> last(n, Time(0));
  std::optional<Duration> gamma;

  for (std::size_t i = 0; i < steps.size(); ++i) {
    const StepRecord& st = steps[i];
    const Duration* scan_gap = adm.step(st);

    if (num_ports > 0 && st.is_port_step()) {
      const auto port = static_cast<std::size_t>(st.port);
      if (port < session_seen.size() && !session_seen[port]) {
        session_seen[port] = 1;
        if (--session_missing == 0) {
          ++out.sessions;
          session_seen.assign(session_seen.size(), 0);
          session_missing = num_ports;
        }
      }
    }

    if (!st.is_compute()) continue;

    if (active && st.process >= 0 &&
        static_cast<std::size_t>(st.process) < n) {
      const auto p = static_cast<std::size_t>(st.process);
      const Duration gap = scan_gap ? *scan_gap : st.time - last[p];
      if (!gamma || *gamma < gap) gamma = gap;
      last[p] = st.time;

      if (!round_seen[p]) {
        round_seen[p] = 1;
        ++distinct;
        if (!round_idle[p]) ++covered;
      }
      if (st.idle_after && !round_idle[p]) {
        round_idle[p] = 1;
        ++idle_count;
        if (!round_seen[p]) ++covered;
      }
      if (covered == n) {
        ++out.rounds.full_rounds;
        round_seen.assign(n, 0);
        distinct = 0;
        covered = idle_count;
      }
    }

    // The prefix ends ON the step where the last port idles, so this runs
    // after the round/gamma updates for that step.
    if (active && st.idle_after && st.process >= 0 &&
        st.process < num_ports &&
        !port_idle[static_cast<std::size_t>(st.process)]) {
      port_idle[static_cast<std::size_t>(st.process)] = true;
      if (--ports_remaining == 0) {
        out.all_ports_idle = true;
        out.termination_time = st.time;
        active = false;
      }
    }
  }

  out.rounds.partial_tail = distinct > 0;
  out.gamma = gamma;
  return out;
}

}  // namespace

Verdict verify(const TimedComputation& tc, const ProblemSpec& spec,
               const TimingConstraints& constraints,
               obs::Observer* observer) {
  obs::Observer* const o = obs::resolve(observer);
  obs::Profiler* const prof = o ? o->profiler : nullptr;
  obs::Span span(o ? o->trace : nullptr, "verify.run", "verify");
  Verdict v;
  AdmissibilityScan adm_scan(tc, constraints);
  {
    obs::ProfileScope ps(prof, obs::ProfilePhase::kSessionCount);
    CountedVerdict counted = count_all(tc, adm_scan);
    v.sessions = counted.sessions;
    v.all_ports_idle = counted.all_ports_idle;
    v.solves = v.sessions >= spec.s && v.all_ports_idle;
    v.termination_time = counted.termination_time;
    v.rounds = counted.rounds;
    v.gamma = counted.gamma;
  }

  {
    obs::ProfileScope ps(prof, obs::ProfilePhase::kAdmissibility);
    adm_scan.messages();
    if (adm_scan.proven() && !constraints.validate()) {
      // The fused scan proved every admissibility check; the precise path
      // would report no violation, so skip its rescans.
      v.admissible = true;
    } else {
      const AdmissibilityReport adm = check_admissible(tc, constraints);
      v.admissible = adm.admissible;
      v.admissibility_violation = adm.violation;
      v.violation_site = adm.site;
    }
  }
  if (o) {
    if (o->verified_runs) o->verified_runs->inc();
    if (o->sessions && v.sessions > 0) o->sessions->inc(v.sessions);
    if (o->termination_time && v.termination_time)
      o->termination_time->observe(*v.termination_time);
  }
  if (o && o->trace)
    span.set_args(obs::args_object(
        {obs::arg_int("sessions", v.sessions),
         obs::arg_int("admissible", v.admissible ? 1 : 0),
         obs::arg_int("solves", v.solves ? 1 : 0)}));
  return v;
}

}  // namespace sesp
