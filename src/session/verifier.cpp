#include "session/verifier.hpp"

namespace sesp {

Verdict verify(const TimedComputation& tc, const ProblemSpec& spec,
               const TimingConstraints& constraints) {
  Verdict v;
  const AdmissibilityReport adm = check_admissible(tc, constraints);
  v.admissible = adm.admissible;
  v.admissibility_violation = adm.violation;
  v.violation_site = adm.site;

  v.sessions = count_sessions(tc).sessions;
  v.all_ports_idle = tc.all_ports_idle();
  v.solves = v.sessions >= spec.s && v.all_ports_idle;
  v.termination_time = tc.termination_time();
  v.rounds = count_rounds(tc);
  v.gamma = tc.gamma();
  return v;
}

}  // namespace sesp
