#include "session/session_counter.hpp"

namespace sesp {

namespace {

// Shared greedy scan over a step range.
template <typename StepRange>
SessionDecomposition greedy(const StepRange& steps, std::size_t begin,
                            std::size_t end, std::int32_t num_ports) {
  SessionDecomposition out;
  if (num_ports <= 0) return out;
  std::vector<bool> seen(static_cast<std::size_t>(num_ports), false);
  std::int32_t missing = num_ports;
  for (std::size_t i = begin; i < end; ++i) {
    const StepRecord& st = steps[i];
    if (!st.is_port_step()) continue;
    const auto port = static_cast<std::size_t>(st.port);
    if (port >= seen.size()) continue;
    if (!seen[port]) {
      seen[port] = true;
      if (--missing == 0) {
        ++out.sessions;
        out.cut_points.push_back(i + 1);
        out.close_times.push_back(st.time);
        seen.assign(seen.size(), false);
        missing = num_ports;
      }
    }
  }
  return out;
}

}  // namespace

SessionDecomposition count_sessions(const TimedComputation& tc,
                                    std::size_t begin, std::size_t end) {
  if (end > tc.steps().size()) end = tc.steps().size();
  if (begin > end) begin = end;
  return greedy(tc.steps(), begin, end, tc.num_ports());
}

std::int64_t count_sessions_in(const std::vector<StepRecord>& steps,
                               std::int32_t num_ports) {
  return greedy(steps, 0, steps.size(), num_ports).sessions;
}

}  // namespace sesp
