#include "conformance/oracles.hpp"

#include <sstream>
#include <utility>

#include "adversary/semisync_retimer.hpp"
#include "adversary/sporadic_retimer.hpp"
#include "conformance/reference.hpp"
#include "model/trace_io.hpp"
#include "session/session_counter.hpp"
#include "sim/replay.hpp"
#include "timing/admissibility.hpp"

namespace sesp::conformance {

namespace {

void fail(CaseResult& r, std::string oracle, std::string detail) {
  r.failures.push_back({std::move(oracle), std::move(detail)});
}

void check_trace_io_and_replay(const CaseDescriptor& c,
                               const TimedComputation& trace,
                               const Verdict& verdict, CaseResult& r) {
  const std::string text = to_text(trace);
  std::string error;
  const auto parsed = trace_from_text(text, &error);
  if (!parsed) {
    fail(r, "trace-io", "serialized trace does not parse: " + error);
    return;
  }
  if (to_text(*parsed) != text) {
    fail(r, "trace-io", "re-serialization is not byte-exact");
    return;
  }
  // Constraints must round-trip exactly too (witness files embed them).
  const std::string ktext = to_text(c.constraints);
  const auto kparsed = constraints_from_text(ktext, &error);
  if (!kparsed || to_text(*kparsed) != ktext) {
    fail(r, "trace-io", "constraints round-trip failed: " + error);
    return;
  }

  // Replay the parsed trace through the simulator: same algorithm, same
  // schedule (extracted from the trace), bit-equal steps.
  const std::string alg = resolved_algorithm(c);
  ReplayReport report;
  if (c.substrate == Substrate::kSharedMemory) {
    const auto factory = make_smm_factory(alg);
    report = replay_smm(*parsed, c.spec, c.constraints, *factory);
  } else {
    const auto factory = make_mpm_factory(alg);
    report = replay_mpm(*parsed, c.spec, c.constraints, *factory);
  }
  if (!report.match) {
    std::ostringstream os;
    os << "replay diverges at step " << report.divergence << ": "
       << report.detail;
    fail(r, "replay", os.str());
    return;
  }
  // The re-verified verdict of the round-tripped trace must reproduce the
  // original verdict bit for bit.
  const Verdict again = verify(*parsed, c.spec, c.constraints);
  if (again.admissible != verdict.admissible ||
      again.sessions != verdict.sessions || again.solves != verdict.solves ||
      again.all_ports_idle != verdict.all_ports_idle ||
      again.termination_time != verdict.termination_time) {
    std::ostringstream os;
    os << "re-verified verdict differs: sessions " << again.sessions << " vs "
       << verdict.sessions << ", admissible " << again.admissible << " vs "
       << verdict.admissible << ", solves " << again.solves << " vs "
       << verdict.solves;
    fail(r, "replay", os.str());
  }
}

void check_references(const CaseDescriptor& c, const TimedComputation& trace,
                      const Verdict& verdict, bool mutate, CaseResult& r) {
  const std::int64_t ref = reference_count_sessions(trace, mutate);
  const std::int64_t prod = count_sessions(trace).sessions;
  if (ref != prod || prod != verdict.sessions) {
    std::ostringstream os;
    os << "session counts disagree: reference " << ref << ", counter " << prod
       << ", verdict " << verdict.sessions;
    fail(r, "sessions-ref", os.str());
  }
  const auto ref_adm = reference_check_admissible(trace, c.constraints, mutate);
  const AdmissibilityReport prod_adm = check_admissible(trace, c.constraints);
  if (ref_adm.has_value() == prod_adm.admissible) {
    std::ostringstream os;
    os << "admissibility disagrees: reference says "
       << (ref_adm ? *ref_adm : std::string("admissible")) << ", checker says "
       << (prod_adm.admissible ? std::string("admissible")
                               : prod_adm.violation);
    fail(r, "admissibility-ref", os.str());
  }
}

void check_hierarchy(const CaseDescriptor& c, const TimedComputation& trace,
                     bool check_refs, bool mutate, CaseResult& r) {
  for (const auto& [label, weaker] :
       weaker_models(c.constraints, c.substrate, trace.num_processes())) {
    const AdmissibilityReport rep = check_admissible(trace, weaker);
    if (!rep.admissible) {
      fail(r, "hierarchy",
           "not admissible under weaker model " + label + ": " +
               rep.violation);
      continue;
    }
    if (check_refs) {
      const auto ref = reference_check_admissible(trace, weaker, mutate);
      if (ref.has_value()) {
        fail(r, "hierarchy",
             "reference rejects weaker model " + label + ": " + *ref);
      }
    }
  }
}

void check_scaling(const CaseDescriptor& c, const TimedComputation& trace,
                   const Verdict& verdict, CaseResult& r) {
  static const Ratio kFactors[] = {Ratio(2), Ratio(3), Ratio(1, 2)};
  const Ratio factor = kFactors[c.seed % 3];
  const TimedComputation scaled = scale_trace(trace, factor);
  const TimingConstraints sk = scale_constraints(c.constraints, factor);
  const AdmissibilityReport rep = check_admissible(scaled, sk);
  if (!rep.admissible) {
    fail(r, "scaling",
         "time-scaling by " + factor.to_string() +
             " broke admissibility: " + rep.violation);
    return;
  }
  const std::int64_t scaled_sessions = count_sessions(scaled).sessions;
  if (scaled_sessions != verdict.sessions) {
    std::ostringstream os;
    os << "time-scaling changed the session count: " << scaled_sessions
       << " vs " << verdict.sessions;
    fail(r, "scaling", os.str());
  }
}

void check_retimer(const CaseDescriptor& c, const TimedComputation& trace,
                   const Verdict& verdict, CaseResult& r) {
  if (c.substrate == Substrate::kSharedMemory &&
      c.model == TimingModel::kSemiSynchronous && c.schedule == 1) {
    // Lockstep semi-synchronous SMM case: apply the Theorem 5.1 reordering.
    const SemiSyncRetimingResult res =
        semisync_retime(trace, c.spec, c.constraints);
    if (!res.constructed) return;  // B too small for this instance — skip
    if (!res.order_consistent || !res.replay_ok ||
        !res.admissibility.admissible) {
      fail(r, "retimer",
           "semisync retimer obligation failed: " + res.to_string());
      return;
    }
    if (res.sessions > verdict.sessions || res.sessions > res.chunks) {
      std::ostringstream os;
      os << "retiming increased sessions: " << res.sessions << " vs base "
         << verdict.sessions << " (chunks " << res.chunks << ")";
      fail(r, "retimer", os.str());
    }
    return;
  }
  if (c.substrate == Substrate::kMessagePassing &&
      c.model == TimingModel::kSporadic && c.seed % 4 == 0) {
    // Budget-gated: the Theorem 6.5 attack reruns the algorithm under its
    // own base schedule, so only a deterministic quarter of sporadic MPM
    // cases pay for it.
    const auto factory = make_mpm_factory(resolved_algorithm(c));
    const SporadicRetimingResult res =
        attack_sporadic_mpm(c.spec, c.constraints, *factory);
    if (!res.constructed) return;  // B = floor(u/4c1) < 1 — skip
    if (!res.order_consistent || !res.receives_preserved ||
        !res.admissibility.admissible) {
      fail(r, "retimer",
           "sporadic retimer obligation failed: " + res.to_string());
      return;
    }
    if (res.sessions > res.chunks) {
      std::ostringstream os;
      os << "sporadic retiming yields " << res.sessions
         << " sessions in " << res.chunks << " chunks";
      fail(r, "retimer", os.str());
    }
  }
}

}  // namespace

std::string CaseResult::digest_fragment() const {
  std::ostringstream os;
  os << sessions << ':' << steps;
  if (!ran) os << ":norun";
  for (const OracleFailure& f : failures) os << ':' << f.oracle;
  return os.str();
}

std::vector<std::pair<std::string, TimingConstraints>> weaker_models(
    const TimingConstraints& constraints, Substrate substrate,
    std::int32_t num_processes) {
  std::vector<std::pair<std::string, TimingConstraints>> out;
  const bool smm = substrate == Substrate::kSharedMemory;
  const auto add_async = [&](Duration c2, Duration d2) {
    out.emplace_back("asynchronous",
                     smm ? TimingConstraints::asynchronous()
                         : TimingConstraints::asynchronous(c2, d2));
  };
  switch (constraints.model) {
    case TimingModel::kSynchronous: {
      const std::vector<Duration> periods(
          static_cast<std::size_t>(num_processes), constraints.c2);
      out.emplace_back("periodic",
                       TimingConstraints::periodic(periods, constraints.d2));
      out.emplace_back("semi-synchronous",
                       TimingConstraints::semi_synchronous(
                           constraints.c2, constraints.c2, constraints.d2));
      out.emplace_back("sporadic",
                       TimingConstraints::sporadic(constraints.c2, Duration(0),
                                                   constraints.d2));
      add_async(constraints.c2, constraints.d2);
      break;
    }
    case TimingModel::kPeriodic: {
      out.emplace_back("semi-synchronous",
                       TimingConstraints::semi_synchronous(
                           constraints.c_min(), constraints.c_max(),
                           constraints.d2));
      out.emplace_back("sporadic",
                       TimingConstraints::sporadic(constraints.c_min(),
                                                   Duration(0),
                                                   constraints.d2));
      add_async(constraints.c_max(), constraints.d2);
      break;
    }
    case TimingModel::kSemiSynchronous: {
      out.emplace_back("sporadic",
                       TimingConstraints::sporadic(constraints.c1, Duration(0),
                                                   constraints.d2));
      add_async(constraints.c2, constraints.d2);
      break;
    }
    case TimingModel::kSporadic:
      // Sporadic gaps are unbounded; only the unconstrained asynchronous
      // SMM model is weaker.
      if (smm) add_async(constraints.c2, constraints.d2);
      break;
    case TimingModel::kAsynchronous:
      break;
  }
  return out;
}

TimedComputation scale_trace(const TimedComputation& tc, const Ratio& factor) {
  TimedComputation out(tc.substrate(), tc.num_processes(), tc.num_ports());
  for (const StepRecord& st : tc.steps()) {
    StepRecord copy = st;
    copy.time = st.time * factor;
    out.append(std::move(copy));
  }
  for (const MessageRecord& m : tc.messages()) out.append_message(m);
  return out;
}

TimingConstraints scale_constraints(const TimingConstraints& constraints,
                                    const Ratio& factor) {
  TimingConstraints out = constraints;
  out.c1 = constraints.c1 * factor;
  out.c2 = constraints.c2 * factor;
  out.d1 = constraints.d1 * factor;
  out.d2 = constraints.d2 * factor;
  for (Duration& p : out.periods) p = p * factor;
  return out;
}

CaseResult check_case(const CaseDescriptor& c, const OracleOptions& options) {
  CaseResult r;
  GeneratedRun run = run_case(c);
  if (!run.ok || !run.trace) {
    fail(r, "generator", run.error.empty() ? "run failed" : run.error);
    return r;
  }
  r.ran = true;
  const TimedComputation& trace = *run.trace;
  r.sessions = run.verdict.sessions;
  r.steps = static_cast<std::int64_t>(trace.steps().size());

  if (!run.verdict.admissible)
    fail(r, "admissible",
         "generated run is inadmissible: " + run.verdict.admissibility_violation);
  if (run.expect_solves && !run.verdict.solves) {
    std::ostringstream os;
    os << "correct algorithm failed to solve: sessions " << run.verdict.sessions
       << " of " << c.spec.s << ", all idle " << run.verdict.all_ports_idle;
    fail(r, "solves", os.str());
  }

  if (options.check_replay)
    check_trace_io_and_replay(c, trace, run.verdict, r);
  if (options.check_reference)
    check_references(c, trace, run.verdict, options.mutate_reference, r);
  // Hierarchy and metamorphic oracles only make claims about admissible
  // computations; skip them when the run already failed admissibility.
  if (run.verdict.admissible) {
    if (options.check_hierarchy)
      check_hierarchy(c, trace, options.check_reference,
                      options.mutate_reference, r);
    if (options.check_scaling) check_scaling(c, trace, run.verdict, r);
    if (options.check_retimer) check_retimer(c, trace, run.verdict, r);
  }
  return r;
}

}  // namespace sesp::conformance
