#pragma once

// Seeded generator of random admissible timed computations, one cell per
// (timing model × substrate) pair. A generated case is fully described by a
// small CaseDescriptor — model, substrate, algorithm/schedule picks, problem
// spec, timing constraints and the seed every random choice derives from —
// so any case reproduces bit-for-bit from its descriptor alone, which is
// what makes the shrinker and the witness files possible.
//
// The generator only emits (algorithm, schedule, constraints) combinations
// that are admissible by construction: the adversary families it draws from
// are exactly the per-model families of adversary/step_schedulers.hpp, and
// the constraints are sampled so every family stays inside the model's
// envelope. Whether the run really is admissible (and, for the correct
// algorithms, solving) is then *checked*, not assumed — that is oracle
// territory (oracles.hpp).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "model/timed_computation.hpp"
#include "mpm/algorithm.hpp"
#include "session/verifier.hpp"
#include "smm/algorithm.hpp"
#include "timing/constraints.hpp"

namespace sesp::conformance {

// Bounds on generated instances. Conformance runs thousands of cases, so
// instances are kept deliberately tiny; the oracles are about relational
// correctness, not scale (bench/ covers scale).
struct GeneratorLimits {
  std::int64_t max_s = 3;       // sessions required
  std::int32_t max_n = 4;       // ports
  std::int32_t max_b = 3;       // SMM shared-variable bound
  std::int64_t max_constant = 6;  // cap on sampled timing constants
};

// Complete, replayable description of one generated case.
struct CaseDescriptor {
  TimingModel model = TimingModel::kSynchronous;
  Substrate substrate = Substrate::kSharedMemory;
  // Index into the cell's algorithm pool / schedule family (already reduced
  // modulo the pool size, so the value is stable under re-generation).
  std::int32_t algorithm = 0;
  std::int32_t schedule = 0;
  ProblemSpec spec;
  TimingConstraints constraints;
  std::uint64_t seed = 0;
  // When non-empty, overrides the pool pick with a named factory (see
  // make_smm_factory / make_mpm_factory) — used to point the harness at the
  // broken algorithms and by the self-test.
  std::string algorithm_override;

  std::string to_string() const;
};

// Stable per-case seed stream: mixes the run seed with the cell and case
// indices (splitmix64-style) so that any job count observes the same
// per-case randomness.
std::uint64_t case_seed(std::uint64_t base, std::uint64_t cell,
                        std::uint64_t index) noexcept;

// Derives every random choice of the case (spec, constraints, algorithm and
// schedule picks) from `seed`. Deterministic; never fails.
CaseDescriptor generate_case(TimingModel model, Substrate substrate,
                             std::uint64_t seed,
                             const GeneratorLimits& limits = {});

// Named factory registry. Correct algorithms: "sync", "periodic",
// "semisync", "semisync-stepcount", "semisync-communicate", "async",
// "sporadic" (MPM), "sporadic-nocond2" (MPM). Broken algorithms:
// "broken-nowait", "broken-halfslack", "broken-treeonly" (SMM),
// "broken-impatient" (MPM), and "broken-toofewsteps:<K>" (both substrates).
// Returns nullptr for unknown names or substrate mismatches.
std::unique_ptr<SmmAlgorithmFactory> make_smm_factory(const std::string& name);
std::unique_ptr<MpmAlgorithmFactory> make_mpm_factory(const std::string& name);

// The factory name the descriptor resolves to (the override if set,
// otherwise the pool pick for (model, substrate, algorithm)).
std::string resolved_algorithm(const CaseDescriptor& c);

// True when the resolved algorithm is one of the known-correct ones (the
// broken-* family returns false). Note that run_case still sets
// expect_solves for broken algorithms: every generated schedule is
// admissible for the model, so an algorithm that fails to solve is exactly
// what the harness exists to detect and shrink.
bool algorithm_expected_correct(const CaseDescriptor& c);

// The timing model a named algorithm is designed for — the model an
// --algorithm override should be exercised under. nullopt for unknown
// names.
std::optional<TimingModel> native_model(const std::string& algorithm);

// Outcome of executing a descriptor through the real simulators.
struct GeneratedRun {
  bool ok = false;          // simulator completed within limits
  std::string error;        // why not, when !ok
  // Always true today: generated schedules are admissible, so every
  // algorithm under test — including a deliberately broken one — is held to
  // the solvability contract.
  bool expect_solves = true;
  std::optional<TimedComputation> trace;
  Verdict verdict;
};

// Re-executes the case end to end: builds the factory, scheduler and (MPM)
// delay strategy from the descriptor and runs the matching simulator.
// Deterministic: equal descriptors produce byte-identical traces.
GeneratedRun run_case(const CaseDescriptor& c);

// All five models / both substrates, in the fixed order used by harness
// cell indexing and report digests.
const std::vector<TimingModel>& all_models();
const std::vector<Substrate>& all_substrates();

}  // namespace sesp::conformance
