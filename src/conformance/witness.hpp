#pragma once

// Witness files: a failing (usually shrunk) conformance case persisted as
// text. A witness embeds everything needed to re-judge the failure offline:
// the case descriptor (model, substrate, algorithm, schedule, spec, seed),
// the oracle that fired, the exact timing constraints, and the full
// trace_io serialization of the offending computation. `sesp_conformance
// --replay=<file>` re-runs the descriptor through the simulators and checks
// that the same oracle fires on a byte-identical trace.
//
//   sesp-conformance-witness v1
//   case,<smm|mpm>,<algorithm>,<schedule>,<s>,<n>,<b>,<seed>,<override|->
//   oracle,<name>
//   constraints,<model>,...          (trace_io constraints line)
//   sesp-trace v1                    (embedded trace_io trace)
//   ...

#include <optional>
#include <string>

#include "conformance/generator.hpp"
#include "conformance/oracles.hpp"

namespace sesp::conformance {

struct Witness {
  CaseDescriptor descriptor;
  std::string oracle;      // failure mode being witnessed
  std::string trace_text;  // trace_io serialization of the failing run
};

std::string write_witness(const Witness& w);
std::optional<Witness> parse_witness(const std::string& text,
                                     std::string* error);

struct WitnessReplay {
  bool reproduced = false;  // same oracle fired on a byte-identical trace
  std::string oracle;       // oracle observed on re-run ("" = case passed)
  std::string detail;
};

// Re-executes the witness's descriptor and compares against the recorded
// failure: the case must still fail, with the same first oracle, and the
// regenerated trace must serialize byte-identically to the embedded one.
WitnessReplay replay_witness(const Witness& w, const OracleOptions& options);

}  // namespace sesp::conformance
