#include "conformance/harness.hpp"

#include <iomanip>
#include <sstream>

#include "conformance/witness.hpp"
#include "exec/jobs.hpp"
#include "exec/thread_pool.hpp"
#include "model/trace_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "recovery/payload.hpp"
#include "recovery/supervisor.hpp"

namespace sesp::conformance {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) noexcept {
  for (const char ch : s) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= kFnvPrime;
  }
  return h;
}

std::string substrate_name(Substrate s) {
  return s == Substrate::kSharedMemory ? "smm" : "mpm";
}

// Journal codec for one case verdict (docs/robustness.md). The descriptor
// is NOT stored: generate_case() is deterministic in (seed, cell, index),
// so a resumed run regenerates descriptors on demand instead of paying a
// payload per case for them.
std::string encode_case_result(const CaseResult& r) {
  recovery::PayloadWriter w;
  w.put_bool("ran", r.ran);
  w.put_int("sessions", r.sessions);
  w.put_int("steps", r.steps);
  w.put_int("nfail", static_cast<std::int64_t>(r.failures.size()));
  for (std::size_t i = 0; i < r.failures.size(); ++i) {
    const std::string prefix = "f" + std::to_string(i);
    w.put(prefix + ".oracle", r.failures[i].oracle);
    w.put(prefix + ".detail", r.failures[i].detail);
  }
  return w.str();
}

CaseResult decode_case_result(const std::string& payload) {
  CaseResult r;
  if (const auto failure = recovery::decode_task_failure(payload)) {
    r.ran = false;
    r.failures.push_back(OracleFailure{"supervisor", failure->to_string()});
    return r;
  }
  const recovery::PayloadReader reader(payload);
  r.ran = reader.get_bool("ran", false);
  r.sessions = reader.get_int("sessions", 0);
  r.steps = reader.get_int("steps", 0);
  const std::int64_t nfail = reader.get_int("nfail", 0);
  for (std::int64_t i = 0; i < nfail; ++i) {
    const std::string prefix = "f" + std::to_string(i);
    r.failures.push_back(OracleFailure{reader.get(prefix + ".oracle"),
                                       reader.get(prefix + ".detail")});
  }
  return r;
}

}  // namespace

std::string ConformanceReport::summary() const {
  std::ostringstream os;
  os << "conformance: " << total_cases << " cases, " << total_failures
     << " failures, digest " << digest << '\n';
  for (const CellReport& cell : cells) {
    os << "  " << std::setw(16) << std::left << to_string(cell.model)
       << ' ' << substrate_name(cell.substrate) << "  cases " << std::setw(6)
       << cell.cases << " failures " << std::setw(3) << cell.failures
       << " sessions " << std::setw(8) << cell.sessions_total << " steps "
       << std::setw(9) << cell.steps_total << " digest " << std::hex
       << std::setw(16) << std::setfill('0') << cell.digest << std::dec
       << std::setfill(' ') << '\n';
  }
  for (const FailureRecord& f : failures) {
    os << "  FAIL [" << f.oracle << "] " << f.descriptor.to_string() << '\n'
       << "       " << f.detail << '\n';
    if (f.shrink) {
      os << "       shrunk to: " << f.shrink->minimized.to_string() << " ("
         << f.shrink->steps << " steps, " << f.shrink->attempts
         << " attempts)\n";
    }
  }
  return os.str();
}

ConformanceReport run_conformance(const ConformanceConfig& config,
                                  obs::Observer* observer) {
  obs::Observer* parent = obs::resolve(observer);
  std::optional<obs::Span> span;
  if (parent && parent->trace)
    span.emplace(parent->trace, "conformance.run", "conformance",
                 obs::args_object(
                     {obs::arg_int("cases_per_cell", config.cases_per_cell),
                      obs::arg_int("seed",
                                   static_cast<std::int64_t>(config.seed))}));

  ConformanceReport report;
  const std::size_t per_cell =
      static_cast<std::size_t>(config.cases_per_cell);
  const std::size_t num_cells =
      config.models.size() * config.substrates.size();
  const std::size_t total = num_cells * per_cell;

  std::vector<CaseResult> results(total);
  const auto descriptor_at = [&](std::size_t i) {
    const std::size_t cell = i / per_cell;
    const std::size_t index = i % per_cell;
    const TimingModel model = config.models[cell / config.substrates.size()];
    const Substrate substrate =
        config.substrates[cell % config.substrates.size()];
    CaseDescriptor c = generate_case(model, substrate,
                                     case_seed(config.seed, cell, index),
                                     config.limits);
    c.algorithm_override = config.algorithm_override;
    return c;
  };

  // Several reused layers (replay, retimers, verify) observe through the
  // process default observer, which is single-writer; detach it while
  // worker threads run and restore it for the serial phases. Results travel
  // through the journal codec in both the plain and the supervised path, so
  // a checkpointed campaign resumes to a byte-identical report.
  obs::Observer* saved = obs::set_default_observer(nullptr);
  recovery::supervised_sweep(
      "conformance_cases", total,
      [&](std::size_t i) {
        return encode_case_result(check_case(descriptor_at(i),
                                             config.oracles));
      },
      [&](std::size_t i, const std::string& payload) {
        results[i] = decode_case_result(payload);
      },
      config.jobs);
  obs::set_default_observer(saved);

  // A drained interrupt leaves pending cases unchecked; the partial report
  // is never printed (the tools exit kExitInterrupted), so skip the
  // aggregation and the minimizer outright.
  if (recovery::run_interrupted()) return report;

  // Serial aggregation in case order — the digest and the recorded failure
  // list are independent of the job count by construction.
  report.cells.reserve(num_cells);
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    CellReport cr;
    cr.model = config.models[cell / config.substrates.size()];
    cr.substrate = config.substrates[cell % config.substrates.size()];
    cr.digest = kFnvOffset;
    for (std::size_t index = 0; index < per_cell; ++index) {
      const std::size_t i = cell * per_cell + index;
      const CaseResult& r = results[i];
      ++cr.cases;
      cr.sessions_total += r.sessions;
      cr.steps_total += r.steps;
      cr.digest = fnv1a(cr.digest, r.digest_fragment());
      cr.digest = fnv1a(cr.digest, ",");
      if (!r.ok()) {
        ++cr.failures;
        ++report.total_failures;
        if (static_cast<std::int64_t>(report.failures.size()) <
            config.max_failures) {
          FailureRecord f;
          f.descriptor = descriptor_at(i);
          f.oracle = r.first_oracle();
          f.detail = r.failures.empty() ? "did not run: incomplete"
                                        : r.failures[0].detail;
          report.failures.push_back(std::move(f));
        }
      }
    }
    report.total_cases += cr.cases;
    report.cells.push_back(cr);
  }

  std::uint64_t combined = kFnvOffset;
  for (const CellReport& cr : report.cells) {
    std::ostringstream os;
    os << to_string(cr.model) << '/' << substrate_name(cr.substrate) << ':'
       << cr.cases << ':' << cr.failures << ':' << std::hex << cr.digest;
    combined = fnv1a(combined, os.str());
  }
  {
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << combined;
    report.digest = os.str();
  }

  if (config.minimize) {
    for (FailureRecord& f : report.failures) {
      f.shrink = shrink_case(f.descriptor, config.oracles);
      const CaseDescriptor& best =
          f.shrink ? f.shrink->minimized : f.descriptor;
      GeneratedRun run = run_case(best);
      if (run.trace) {
        Witness w;
        w.descriptor = best;
        w.oracle = f.shrink ? f.shrink->oracle : f.oracle;
        w.trace_text = to_text(*run.trace);
        f.witness = write_witness(w);
      }
    }
  }

  if (parent && parent->metrics) {
    parent->metrics->counter("conformance.cases")
        .inc(report.total_cases);
    parent->metrics->counter("conformance.failures")
        .inc(report.total_failures);
  }
  return report;
}

}  // namespace sesp::conformance
