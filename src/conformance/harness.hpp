#pragma once

// Top-level conformance driver: fans `cases_per_cell` seeded cases per
// (timing model × substrate) cell out over the exec:: pool, judges each
// with the full oracle stack, aggregates per-cell statistics plus an
// order-stable digest, and greedily shrinks every recorded failure to a
// replayable witness.
//
// Determinism contract (same as every sweep in sim/experiment.hpp): the
// report — including the digest and every witness — is bit-identical for
// any job count, because each case derives all randomness from
// case_seed(seed, cell, index), results land in per-case slots, and
// aggregation/shrinking run serially in index order.
//
// Observability: the harness records a "conformance.run" span and the
// conformance.{cases,failures} counters on the resolved observer from the
// calling thread only. The process default observer is detached for the
// duration of the parallel phase — several layers the oracles reuse
// (replay, retimers, verify) observe through the *default* observer, which
// is not shard-mergeable from worker threads.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "conformance/generator.hpp"
#include "conformance/oracles.hpp"
#include "conformance/shrinker.hpp"
#include "obs/observer.hpp"

namespace sesp::conformance {

struct ConformanceConfig {
  std::uint64_t seed = 1;
  std::int64_t cases_per_cell = 500;
  GeneratorLimits limits;
  OracleOptions oracles;
  // Shrink recorded failures and attach witnesses.
  bool minimize = true;
  // Cap on recorded (and shrunk) failures; counts beyond it still tally.
  std::int64_t max_failures = 8;
  // Applied to every generated case (e.g. "broken-halfslack").
  std::string algorithm_override;
  // 0 = exec default (SESP_JOBS / hardware).
  std::int32_t jobs = 0;
  std::vector<TimingModel> models = all_models();
  std::vector<Substrate> substrates = all_substrates();
};

struct CellReport {
  TimingModel model = TimingModel::kSynchronous;
  Substrate substrate = Substrate::kSharedMemory;
  std::int64_t cases = 0;
  std::int64_t failures = 0;
  std::int64_t sessions_total = 0;
  std::int64_t steps_total = 0;
  std::uint64_t digest = 0;  // FNV-1a over case fragments in index order
};

struct FailureRecord {
  CaseDescriptor descriptor;  // the original failing case
  std::string oracle;
  std::string detail;
  std::optional<ShrinkOutcome> shrink;  // set when minimization ran
  std::string witness;  // write_witness() text for the minimized case
};

struct ConformanceReport {
  std::vector<CellReport> cells;
  std::int64_t total_cases = 0;
  std::int64_t total_failures = 0;
  std::string digest;  // hex fold of the cell digests, order-stable
  std::vector<FailureRecord> failures;

  bool ok() const { return total_failures == 0; }
  std::string summary() const;
};

ConformanceReport run_conformance(const ConformanceConfig& config,
                                  obs::Observer* observer = nullptr);

}  // namespace sesp::conformance
