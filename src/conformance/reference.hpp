#pragma once

// Deliberately naive reference implementations of the two judgements every
// other layer depends on: the greedy session count (session/) and the
// admissibility predicate (timing/). Written from the paper's definitions
// with no shared code and no cleverness — quadratic rescans, per-process
// list extraction — so that a bug in the production implementations and a
// bug here are unlikely to coincide. The conformance oracles cross-check
// both implementations on every generated case.
//
// The `mutate` flags plant a deliberate off-by-one; the harness self-test
// uses them to prove the differential oracles actually fire (a conformance
// suite that cannot detect a seeded bug is vacuous).

#include <cstdint>
#include <optional>
#include <string>

#include "model/timed_computation.hpp"
#include "timing/constraints.hpp"

namespace sesp::conformance {

// Greedy maximal session count over the whole trace, recomputed by repeated
// forward rescans (O(ports * steps) per session). Must agree with
// count_sessions(tc).sessions. With mutate=true, over-reports by one
// whenever at least one session exists.
std::int64_t reference_count_sessions(const TimedComputation& tc,
                                      bool mutate = false);

// Admissibility judged from scratch: structural sanity, per-process step
// gaps against the model envelope (time 0 as virtual predecessor), message
// delays. Returns a description of the first problem found, or nullopt when
// admissible. Must agree (as a boolean) with check_admissible. With
// mutate=true, waves every computation through as admissible.
std::optional<std::string> reference_check_admissible(
    const TimedComputation& tc, const TimingConstraints& constraints,
    bool mutate = false);

}  // namespace sesp::conformance
