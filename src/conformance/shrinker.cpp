#include "conformance/shrinker.hpp"

#include <vector>

namespace sesp::conformance {

namespace {

// Candidate one-step simplifications of a descriptor, most aggressive
// first. All candidates keep the constraints valid for their model.
std::vector<CaseDescriptor> candidates(const CaseDescriptor& c) {
  std::vector<CaseDescriptor> out;
  const auto push = [&](CaseDescriptor next) { out.push_back(std::move(next)); };

  const auto with_spec = [&](std::int64_t s, std::int32_t n, std::int32_t b) {
    CaseDescriptor next = c;
    next.spec.s = s;
    next.spec.n = n;
    next.spec.b = b;
    if (next.model == TimingModel::kPeriodic) {
      // Periods must still cover every process of the shrunken system; the
      // simplest admissible choice is a single shared period.
      next.constraints.periods.assign(next.constraints.periods.size(),
                                      next.constraints.c_min());
    }
    push(std::move(next));
  };

  if (c.spec.s > 1) {
    with_spec(1, c.spec.n, c.spec.b);
    if (c.spec.s > 2) with_spec(c.spec.s / 2, c.spec.n, c.spec.b);
    with_spec(c.spec.s - 1, c.spec.n, c.spec.b);
  }
  if (c.spec.n > 2) {
    with_spec(c.spec.s, 2, c.spec.b);
    with_spec(c.spec.s, c.spec.n - 1, c.spec.b);
  }
  if (c.substrate == Substrate::kSharedMemory && c.spec.b > 2)
    with_spec(c.spec.s, c.spec.n, c.spec.b - 1);

  // Simplify timing constants without leaving the model's valid space.
  const TimingConstraints& k = c.constraints;
  if (k.model != TimingModel::kPeriodic) {
    if (k.c2 != Duration(1) && !(k.c2 < k.c1) && !(Duration(1) < k.c1) &&
        k.model != TimingModel::kSporadic) {
      CaseDescriptor next = c;
      next.constraints.c2 = Duration(1);
      if (next.constraints.c1 > next.constraints.c2)
        next.constraints.c1 = next.constraints.c2;
      push(std::move(next));
    }
    if (k.model == TimingModel::kSemiSynchronous && k.c1 != k.c2) {
      CaseDescriptor next = c;
      next.constraints.c1 = k.c2;  // collapse [c1, c2] to lockstep
      push(std::move(next));
    }
  } else if (k.periods.size() > 1) {
    bool uniform = true;
    for (const Duration& p : k.periods) uniform = uniform && p == k.periods[0];
    if (!uniform) {
      CaseDescriptor next = c;
      next.constraints.periods.assign(k.periods.size(), k.c_min());
      push(std::move(next));
    }
  }
  if (k.d1 != Duration(0) && k.model == TimingModel::kSporadic) {
    CaseDescriptor next = c;
    next.constraints.d1 = Duration(0);
    push(std::move(next));
  }
  if (Duration(1) < k.d2 && !(k.d1 > Duration(1))) {
    CaseDescriptor next = c;
    next.constraints.d2 = Duration(1);
    push(std::move(next));
  }
  if (c.schedule != 0) {
    CaseDescriptor next = c;
    next.schedule = 0;
    push(std::move(next));
  }
  return out;
}

}  // namespace

std::optional<ShrinkOutcome> shrink_case(const CaseDescriptor& failing,
                                         const OracleOptions& options,
                                         std::int64_t max_attempts) {
  const CaseResult base = check_case(failing, options);
  if (base.ok()) return std::nullopt;

  ShrinkOutcome out;
  out.minimized = failing;
  out.oracle = base.first_oracle();
  out.detail = base.failures.empty() ? std::string() : base.failures[0].detail;
  out.steps = base.steps;

  bool improved = true;
  while (improved && out.attempts < max_attempts) {
    improved = false;
    for (CaseDescriptor& cand : candidates(out.minimized)) {
      if (out.attempts >= max_attempts) break;
      ++out.attempts;
      const CaseResult res = check_case(cand, options);
      if (res.ok() || res.first_oracle() != out.oracle) continue;
      if (res.ran && res.steps > out.steps) continue;  // don't grow the trace
      out.minimized = std::move(cand);
      out.detail = res.failures[0].detail;
      out.steps = res.steps;
      ++out.accepted;
      improved = true;
      break;  // restart mutation scan from the new, smaller case
    }
  }
  return out;
}

}  // namespace sesp::conformance
