#pragma once

// The differential oracle stack: every generated case is executed once and
// then judged by a battery of independent oracles. A case passes only if
// *all* oracles are silent; any noise is a conformance failure carrying the
// oracle's name (stable identifiers, used by the shrinker to preserve the
// failure mode while minimizing).
//
// Oracles, in evaluation order:
//   generator        — the simulator failed to complete the run
//   admissible       — the run left the model's admissible space
//   solves           — a known-correct algorithm failed to solve (s, n)
//   trace-io         — text round-trip is not byte-exact / does not parse
//   replay           — re-executing the recorded schedule diverges, or the
//                      re-verified verdict differs (sessions, termination)
//   sessions-ref     — naive reference session count disagrees
//   admissibility-ref— naive reference admissibility verdict disagrees
//   hierarchy        — the computation fails to verify under a weaker model
//   scaling          — time-scaling (Thm 6.5 step 1) changes admissibility
//                      or the session count
//   retimer          — a retimer obligation fails, or retiming *increases*
//                      the session count (Thms 5.1 / 6.5)

#include <cstdint>
#include <string>
#include <vector>

#include "conformance/generator.hpp"
#include "timing/constraints.hpp"

namespace sesp::conformance {

struct OracleOptions {
  bool check_replay = true;
  bool check_reference = true;
  bool check_hierarchy = true;
  bool check_scaling = true;
  bool check_retimer = true;
  // Self-test: plant an off-by-one in the reference session counter (and
  // blind the reference admissibility checker) so the differential oracles
  // must fire.
  bool mutate_reference = false;
};

struct OracleFailure {
  std::string oracle;  // stable name from the table above
  std::string detail;
};

struct CaseResult {
  bool ran = false;           // simulator completed
  std::int64_t sessions = 0;  // verdict session count
  std::int64_t steps = 0;     // trace length (shrinking metric)
  std::vector<OracleFailure> failures;

  bool ok() const { return ran && failures.empty(); }
  // First failing oracle's name, or "" when the case passed.
  std::string first_oracle() const {
    return failures.empty() ? std::string() : failures.front().oracle;
  }
  // Compact, order-stable fragment folded into the harness report digest.
  std::string digest_fragment() const;
};

// The strictly-weaker timing models a computation admissible under
// `constraints` must also verify under (the containment half of the model
// hierarchy). Sporadic MPM computations have no weaker MPM model: their
// step gaps are unbounded while asynchronous MPM bounds gaps by c2.
std::vector<std::pair<std::string, TimingConstraints>> weaker_models(
    const TimingConstraints& constraints, Substrate substrate,
    std::int32_t num_processes);

// A copy of `tc` with every step time multiplied by `factor` (> 0).
TimedComputation scale_trace(const TimedComputation& tc, const Ratio& factor);
// `constraints` with every timing constant multiplied by `factor`.
TimingConstraints scale_constraints(const TimingConstraints& constraints,
                                    const Ratio& factor);

// Runs the descriptor and evaluates the full oracle stack.
CaseResult check_case(const CaseDescriptor& c, const OracleOptions& options);

}  // namespace sesp::conformance
