#include "conformance/witness.hpp"

#include <sstream>
#include <vector>

#include "model/trace_io.hpp"

namespace sesp::conformance {

namespace {

constexpr const char* kMagic = "sesp-conformance-witness v1";

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, sep)) out.push_back(field);
  return out;
}

bool set_error(std::string* error, const std::string& text) {
  if (error) *error = text;
  return false;
}

}  // namespace

std::string write_witness(const Witness& w) {
  const CaseDescriptor& c = w.descriptor;
  std::ostringstream os;
  os << kMagic << '\n';
  os << "case,"
     << (c.substrate == Substrate::kSharedMemory ? "smm" : "mpm") << ','
     << c.algorithm << ',' << c.schedule << ',' << c.spec.s << ',' << c.spec.n
     << ',' << c.spec.b << ',' << c.seed << ','
     << (c.algorithm_override.empty() ? "-" : c.algorithm_override) << '\n';
  os << "oracle," << w.oracle << '\n';
  os << to_text(c.constraints) << '\n';
  os << w.trace_text;
  return os.str();
}

std::optional<Witness> parse_witness(const std::string& text,
                                     std::string* error) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    set_error(error, "missing witness magic line");
    return std::nullopt;
  }
  Witness w;
  if (!std::getline(is, line)) {
    set_error(error, "missing case line");
    return std::nullopt;
  }
  const auto fields = split(line, ',');
  if (fields.size() != 9 || fields[0] != "case") {
    set_error(error, "malformed case line");
    return std::nullopt;
  }
  CaseDescriptor& c = w.descriptor;
  if (fields[1] == "smm")
    c.substrate = Substrate::kSharedMemory;
  else if (fields[1] == "mpm")
    c.substrate = Substrate::kMessagePassing;
  else {
    set_error(error, "bad substrate: " + fields[1]);
    return std::nullopt;
  }
  try {
    c.algorithm = std::stoi(fields[2]);
    c.schedule = std::stoi(fields[3]);
    c.spec.s = std::stoll(fields[4]);
    c.spec.n = std::stoi(fields[5]);
    c.spec.b = std::stoi(fields[6]);
    c.seed = std::stoull(fields[7]);
  } catch (...) {
    set_error(error, "bad numeric field in case line");
    return std::nullopt;
  }
  if (fields[8] != "-") c.algorithm_override = fields[8];

  if (!std::getline(is, line)) {
    set_error(error, "missing oracle line");
    return std::nullopt;
  }
  const auto oracle_fields = split(line, ',');
  if (oracle_fields.size() != 2 || oracle_fields[0] != "oracle") {
    set_error(error, "malformed oracle line");
    return std::nullopt;
  }
  w.oracle = oracle_fields[1];

  if (!std::getline(is, line)) {
    set_error(error, "missing constraints line");
    return std::nullopt;
  }
  std::string kerr;
  const auto constraints = constraints_from_text(line, &kerr);
  if (!constraints) {
    set_error(error, "bad constraints: " + kerr);
    return std::nullopt;
  }
  c.constraints = *constraints;
  c.model = constraints->model;

  std::ostringstream rest;
  while (std::getline(is, line)) rest << line << '\n';
  w.trace_text = rest.str();
  if (w.trace_text.empty()) {
    set_error(error, "missing embedded trace");
    return std::nullopt;
  }
  // Validate the embedded trace parses at all, so --replay errors are
  // attributed to the right layer.
  std::string terr;
  if (!trace_from_text(w.trace_text, &terr)) {
    set_error(error, "bad embedded trace: " + terr);
    return std::nullopt;
  }
  return w;
}

WitnessReplay replay_witness(const Witness& w, const OracleOptions& options) {
  WitnessReplay out;
  const CaseResult result = check_case(w.descriptor, options);
  out.oracle = result.first_oracle();
  if (result.ok()) {
    out.detail = "case no longer fails";
    return out;
  }
  if (out.oracle != w.oracle) {
    out.detail = "different oracle fired: " + out.oracle + " (recorded " +
                 w.oracle + "): " + result.failures[0].detail;
    return out;
  }
  // The regenerated computation must be the recorded one, byte for byte.
  GeneratedRun run = run_case(w.descriptor);
  if (run.trace && to_text(*run.trace) != w.trace_text) {
    out.detail = "regenerated trace differs from the recorded witness trace";
    return out;
  }
  out.reproduced = true;
  out.detail = result.failures[0].detail;
  return out;
}

}  // namespace sesp::conformance
