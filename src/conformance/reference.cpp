#include "conformance/reference.hpp"

#include <sstream>
#include <vector>

namespace sesp::conformance {

namespace {

// Is there a step of `port` in [from, to)? Linear rescan on purpose.
bool port_occurs(const std::vector<StepRecord>& steps, std::size_t from,
                 std::size_t to, PortIndex port) {
  for (std::size_t i = from; i < to; ++i)
    if (steps[i].is_port_step() && steps[i].port == port) return true;
  return false;
}

// Smallest end > from such that [from, end) contains every port, or 0 if no
// such prefix exists.
std::size_t session_end(const std::vector<StepRecord>& steps, std::size_t from,
                        std::int32_t num_ports) {
  for (std::size_t end = from + 1; end <= steps.size(); ++end) {
    bool all = true;
    for (PortIndex port = 0; port < num_ports; ++port) {
      if (!port_occurs(steps, from, end, port)) {
        all = false;
        break;
      }
    }
    if (all) return end;
  }
  return 0;
}

std::string gap_problem(ProcessId p, std::size_t ordinal, const Duration& gap,
                        const std::string& expected) {
  std::ostringstream os;
  os << "reference: process " << p << " compute step #" << ordinal << " gap "
     << gap << " " << expected;
  return os.str();
}

}  // namespace

std::int64_t reference_count_sessions(const TimedComputation& tc,
                                      bool mutate) {
  const auto& steps = tc.steps();
  std::int64_t sessions = 0;
  if (tc.num_ports() > 0) {
    std::size_t cursor = 0;
    while (cursor < steps.size()) {
      const std::size_t end = session_end(steps, cursor, tc.num_ports());
      if (end == 0) break;
      ++sessions;
      cursor = end;
    }
  }
  if (mutate && sessions > 0) ++sessions;  // planted bug for the self-test
  return sessions;
}

std::optional<std::string> reference_check_admissible(
    const TimedComputation& tc, const TimingConstraints& constraints,
    bool mutate) {
  if (mutate) return std::nullopt;  // planted bug: everything "admissible"

  if (auto err = constraints.validate())
    return "reference: invalid constraints: " + *err;

  const auto& steps = tc.steps();
  const auto& msgs = tc.messages();

  // Structural sanity, spelled out from the definitions.
  for (std::size_t i = 0; i + 1 < steps.size(); ++i)
    if (steps[i + 1].time < steps[i].time)
      return "reference: time decreases at step " + std::to_string(i + 1);
  std::vector<bool> went_idle(static_cast<std::size_t>(tc.num_processes()),
                              false);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const StepRecord& st = steps[i];
    if (!st.is_compute()) continue;
    if (st.process < 0 || st.process >= tc.num_processes())
      return "reference: bad process id at step " + std::to_string(i);
    const auto p = static_cast<std::size_t>(st.process);
    if (went_idle[p] && !st.idle_after)
      return "reference: process " + std::to_string(st.process) +
             " un-idles at step " + std::to_string(i);
    if (st.idle_after) went_idle[p] = true;
  }
  for (const MessageRecord& m : msgs) {
    if (m.send_step >= steps.size())
      return "reference: message " + std::to_string(m.id) + " bad send step";
    if (m.delivered()) {
      if (m.deliver_step >= steps.size() || m.deliver_step < m.send_step)
        return "reference: message " + std::to_string(m.id) +
               " delivered before sent";
      if (steps[m.deliver_step].kind != StepKind::kDeliver ||
          steps[m.deliver_step].delivered != m.id)
        return "reference: message " + std::to_string(m.id) +
               " deliver step mismatch";
    }
    if (m.received()) {
      if (!m.delivered())
        return "reference: message " + std::to_string(m.id) +
               " received but never delivered";
      if (m.receive_step >= steps.size() || m.receive_step < m.deliver_step)
        return "reference: message " + std::to_string(m.id) +
               " received before delivered";
      if (!steps[m.receive_step].is_compute() ||
          steps[m.receive_step].process != m.recipient)
        return "reference: message " + std::to_string(m.id) +
               " receive step mismatch";
    }
  }

  const bool smm = tc.substrate() == Substrate::kSharedMemory;
  if (constraints.model == TimingModel::kPeriodic &&
      constraints.periods.size() < static_cast<std::size_t>(tc.num_processes()))
    return std::string("reference: periodic needs a period per process");

  // Step gaps, judged per process from its extracted compute-time list
  // (structurally different from the checker's single pass over the trace).
  for (ProcessId p = 0; p < tc.num_processes(); ++p) {
    const std::vector<Time> times = tc.compute_times(p);
    Time prev(0);  // the paper's virtual predecessor at time 0
    for (std::size_t k = 0; k < times.size(); ++k) {
      const Duration gap = times[k] - prev;
      prev = times[k];
      switch (constraints.model) {
        case TimingModel::kSynchronous:
          if (gap != constraints.c2)
            return gap_problem(p, k, gap,
                               "!= c2 = " + constraints.c2.to_string());
          break;
        case TimingModel::kPeriodic:
          if (gap != constraints.periods[static_cast<std::size_t>(p)])
            return gap_problem(p, k, gap, "!= its period");
          break;
        case TimingModel::kSemiSynchronous:
          if (gap < constraints.c1 || constraints.c2 < gap)
            return gap_problem(p, k, gap, "outside [c1, c2]");
          break;
        case TimingModel::kSporadic:
          if (gap < constraints.c1)
            return gap_problem(p, k, gap, "< c1");
          break;
        case TimingModel::kAsynchronous:
          if (smm) break;
          if (!gap.is_positive() || constraints.c2 < gap)
            return gap_problem(p, k, gap, "outside (0, c2]");
          break;
      }
    }
  }

  // Message delays, for messages that were actually delivered.
  for (const MessageRecord& m : msgs) {
    if (!m.delivered()) continue;
    const Duration delay = steps[m.deliver_step].time - steps[m.send_step].time;
    bool ok = true;
    switch (constraints.model) {
      case TimingModel::kSynchronous:
        ok = delay == constraints.d2;
        break;
      case TimingModel::kSporadic:
        ok = !(delay < constraints.d1) && !(constraints.d2 < delay);
        break;
      case TimingModel::kPeriodic:
      case TimingModel::kSemiSynchronous:
      case TimingModel::kAsynchronous:
        ok = !delay.is_negative() && !(constraints.d2 < delay);
        break;
    }
    if (!ok) {
      std::ostringstream os;
      os << "reference: message " << m.id << " delay " << delay
         << " violates the model";
      return os.str();
    }
  }

  return std::nullopt;
}

}  // namespace sesp::conformance
