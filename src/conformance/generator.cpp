#include "conformance/generator.hpp"

#include <memory>
#include <sstream>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "algorithms/mpm/async_alg.hpp"
#include "algorithms/mpm/broken_algs.hpp"
#include "algorithms/mpm/periodic_alg.hpp"
#include "algorithms/mpm/semisync_alg.hpp"
#include "algorithms/mpm/sporadic_alg.hpp"
#include "algorithms/mpm/sync_alg.hpp"
#include "algorithms/smm/async_alg.hpp"
#include "algorithms/smm/broken_algs.hpp"
#include "algorithms/smm/periodic_alg.hpp"
#include "algorithms/smm/semisync_alg.hpp"
#include "algorithms/smm/sync_alg.hpp"
#include "model/trace_io.hpp"
#include "sim/experiment.hpp"
#include "smm/smm_simulator.hpp"
#include "util/rng.hpp"

namespace sesp::conformance {

namespace {

// Sub-stream tags so the generator's own draws never collide with the
// scheduler / delay RNG streams derived from the same case seed.
constexpr std::uint64_t kGenStream = 0x67656e6572617465ULL;   // "generate"
constexpr std::uint64_t kSchedStream = 0x7363686564756c65ULL; // "schedule"
constexpr std::uint64_t kDelayStream = 0x64656c6179737472ULL;

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Algorithm pools per cell. The sporadic SMM cell runs the round-based
// asynchronous algorithm: the paper gives no dedicated sporadic SMM
// algorithm, and the async one is correct under every schedule, so the cell
// still exercises sporadic admissibility end to end.
std::vector<std::string> algorithm_pool(TimingModel model,
                                        Substrate substrate) {
  const bool smm = substrate == Substrate::kSharedMemory;
  switch (model) {
    case TimingModel::kSynchronous:
      return {"sync"};
    case TimingModel::kPeriodic:
      return {"periodic"};
    case TimingModel::kSemiSynchronous:
      return {"semisync", "semisync-stepcount", "semisync-communicate"};
    case TimingModel::kSporadic:
      return smm ? std::vector<std::string>{"async"}
                 : std::vector<std::string>{"sporadic", "sporadic-nocond2"};
    case TimingModel::kAsynchronous:
      return {"async"};
  }
  return {"async"};
}

std::int32_t schedule_pool_size(TimingModel model, Substrate substrate) {
  switch (model) {
    case TimingModel::kSynchronous:
      return 1;  // lockstep at exactly c2 is the only admissible schedule
    case TimingModel::kPeriodic:
      return substrate == Substrate::kSharedMemory ? 1 : 2;
    case TimingModel::kSemiSynchronous:
      return 3;
    case TimingModel::kSporadic:
      return 3;
    case TimingModel::kAsynchronous:
      return 2;
  }
  return 1;
}

Ratio small_ratio(Rng& rng, std::int64_t lo, std::int64_t hi,
                  std::uint32_t half_prob_num = 1) {
  const std::int64_t num = rng.next_int(lo, hi);
  const bool halves = rng.next_bool(half_prob_num, 4);
  return halves ? Ratio(num, 2) : Ratio(num);
}

TimingConstraints sample_constraints(TimingModel model,
                                     std::int32_t total_processes, Rng& rng,
                                     const GeneratorLimits& limits) {
  const std::int64_t cap = limits.max_constant;
  switch (model) {
    case TimingModel::kSynchronous: {
      const Ratio c2 = small_ratio(rng, 1, 4);
      const Ratio d2 = small_ratio(rng, 1, cap);
      return TimingConstraints::synchronous(c2, d2);
    }
    case TimingModel::kPeriodic: {
      std::vector<Duration> periods;
      periods.reserve(static_cast<std::size_t>(total_processes));
      for (std::int32_t p = 0; p < total_processes; ++p)
        periods.push_back(small_ratio(rng, 1, cap));
      const Ratio d2 = small_ratio(rng, 1, cap);
      return TimingConstraints::periodic(std::move(periods), d2);
    }
    case TimingModel::kSemiSynchronous: {
      const Ratio c1 = rng.next_bool(1, 3) ? Ratio(1, 2) : Ratio(1);
      const Ratio c2 = c1 + Ratio(rng.next_int(0, cap - 1));
      const Ratio d2 = small_ratio(rng, 1, cap);
      return TimingConstraints::semi_synchronous(c1, c2, d2);
    }
    case TimingModel::kSporadic: {
      const Ratio c1(1);
      const Ratio d1(rng.next_int(0, 2));
      const Ratio d2 = d1 + Ratio(rng.next_int(1, cap));
      return TimingConstraints::sporadic(c1, d1, d2);
    }
    case TimingModel::kAsynchronous: {
      const Ratio c2 = small_ratio(rng, 1, 4);
      const Ratio d2 = small_ratio(rng, 1, cap);
      return TimingConstraints::asynchronous(c2, d2);
    }
  }
  return TimingConstraints::asynchronous();
}

ProcessId slow_victim(const CaseDescriptor& c, std::int32_t total) {
  return static_cast<ProcessId>(mix64(c.seed ^ 0x736c6f77ULL) %
                                static_cast<std::uint64_t>(total));
}

std::unique_ptr<StepScheduler> make_scheduler(const CaseDescriptor& c,
                                              std::int32_t total) {
  const TimingConstraints& k = c.constraints;
  const std::uint64_t seed = mix64(c.seed ^ kSchedStream);
  switch (c.model) {
    case TimingModel::kSynchronous:
      return std::make_unique<FixedPeriodScheduler>(total, k.c2);
    case TimingModel::kPeriodic:
      return std::make_unique<FixedPeriodScheduler>(k.periods);
    case TimingModel::kSemiSynchronous:
      switch (c.schedule) {
        case 1:  // lockstep at c2 — the retimer-compatible subfamily
          return std::make_unique<FixedPeriodScheduler>(total, k.c2);
        case 2:
          return std::make_unique<SlowOneScheduler>(total, k.c1,
                                                    slow_victim(c, total),
                                                    k.c2);
        default:
          return std::make_unique<UniformGapScheduler>(k.c1, k.c2, seed);
      }
    case TimingModel::kSporadic:
      switch (c.schedule) {
        case 1:
          return std::make_unique<FixedPeriodScheduler>(total, k.c1);
        case 2:
          return std::make_unique<SlowOneScheduler>(total, k.c1,
                                                    slow_victim(c, total),
                                                    k.c1 * Ratio(4));
        default:
          return std::make_unique<BurstyScheduler>(
              k.c1, 1, 4, 2 + static_cast<std::int64_t>(seed % 4), seed);
      }
    case TimingModel::kAsynchronous:
      if (c.substrate == Substrate::kSharedMemory) {
        // Unconstrained: any positive gaps are admissible.
        if (c.schedule == 1)
          return std::make_unique<FixedPeriodScheduler>(total, Ratio(1));
        return std::make_unique<UniformGapScheduler>(Ratio(1, 4), Ratio(2),
                                                     seed);
      }
      // MPM: gaps must fall in (0, c2].
      if (c.schedule == 1)
        return std::make_unique<FixedPeriodScheduler>(total, k.c2);
      return std::make_unique<UniformGapScheduler>(k.c2 / Ratio(4), k.c2,
                                                   seed);
  }
  return std::make_unique<FixedPeriodScheduler>(total, Ratio(1));
}

std::unique_ptr<DelayStrategy> make_delays(const CaseDescriptor& c) {
  const TimingConstraints& k = c.constraints;
  const std::uint64_t seed = mix64(c.seed ^ kDelayStream);
  switch (c.model) {
    case TimingModel::kSynchronous:
      return std::make_unique<FixedDelay>(k.d2);  // delay == d2 exactly
    case TimingModel::kSporadic:
      if (c.schedule == 1) return std::make_unique<FixedDelay>(k.d2);
      return std::make_unique<UniformRandomDelay>(k.d1, k.d2, seed);
    default:
      if (c.schedule == 1) return std::make_unique<FixedDelay>(k.d2);
      return std::make_unique<UniformRandomDelay>(Ratio(0), k.d2, seed);
  }
}

std::int64_t parse_toofewsteps(const std::string& name) {
  const auto colon = name.find(':');
  if (colon == std::string::npos) return 1;
  try {
    return std::max<std::int64_t>(1, std::stoll(name.substr(colon + 1)));
  } catch (...) {
    return 1;
  }
}

}  // namespace

std::uint64_t case_seed(std::uint64_t base, std::uint64_t cell,
                        std::uint64_t index) noexcept {
  return mix64(base ^ mix64(cell * 0x100000001b3ULL + index));
}

CaseDescriptor generate_case(TimingModel model, Substrate substrate,
                             std::uint64_t seed,
                             const GeneratorLimits& limits) {
  Rng rng(mix64(seed ^ kGenStream));
  CaseDescriptor c;
  c.model = model;
  c.substrate = substrate;
  c.seed = seed;
  c.spec.s = rng.next_int(1, limits.max_s);
  c.spec.n = static_cast<std::int32_t>(rng.next_int(2, limits.max_n));
  c.spec.b = substrate == Substrate::kSharedMemory
                 ? static_cast<std::int32_t>(rng.next_int(2, limits.max_b))
                 : 2;
  const std::int32_t total = substrate == Substrate::kSharedMemory
                                 ? smm_total_processes(c.spec.n, c.spec.b)
                                 : c.spec.n;
  c.constraints = sample_constraints(model, total, rng, limits);
  const auto pool = algorithm_pool(model, substrate);
  c.algorithm = static_cast<std::int32_t>(
      rng.next_int(0, static_cast<std::int64_t>(pool.size()) - 1));
  c.schedule = static_cast<std::int32_t>(
      rng.next_int(0, schedule_pool_size(model, substrate) - 1));
  return c;
}

std::unique_ptr<SmmAlgorithmFactory> make_smm_factory(
    const std::string& name) {
  if (name == "sync") return std::make_unique<SyncSmmFactory>();
  if (name == "periodic") return std::make_unique<PeriodicSmmFactory>();
  if (name == "semisync") return std::make_unique<SemiSyncSmmFactory>();
  if (name == "semisync-stepcount")
    return std::make_unique<SemiSyncSmmFactory>(SmmSemiSyncStrategy::kStepCount);
  if (name == "semisync-communicate")
    return std::make_unique<SemiSyncSmmFactory>(
        SmmSemiSyncStrategy::kCommunicate);
  if (name == "async") return std::make_unique<AsyncSmmFactory>();
  if (name == "broken-nowait")
    return std::make_unique<NoWaitPeriodicSmmFactory>();
  if (name == "broken-halfslack") return std::make_unique<HalfSlackSmmFactory>();
  if (name == "broken-treeonly")
    return std::make_unique<TreeOnlyWaitPeriodicSmmFactory>();
  if (name.rfind("broken-toofewsteps", 0) == 0)
    return std::make_unique<TooFewStepsSmmFactory>(parse_toofewsteps(name));
  return nullptr;
}

std::unique_ptr<MpmAlgorithmFactory> make_mpm_factory(
    const std::string& name) {
  if (name == "sync") return std::make_unique<SyncMpmFactory>();
  if (name == "periodic") return std::make_unique<PeriodicMpmFactory>();
  if (name == "semisync") return std::make_unique<SemiSyncMpmFactory>();
  if (name == "semisync-stepcount")
    return std::make_unique<SemiSyncMpmFactory>(SemiSyncStrategy::kStepCount);
  if (name == "semisync-communicate")
    return std::make_unique<SemiSyncMpmFactory>(SemiSyncStrategy::kCommunicate);
  if (name == "sporadic") return std::make_unique<SporadicMpmFactory>();
  if (name == "sporadic-nocond2")
    return std::make_unique<SporadicMpmFactory>(-1, false);
  if (name == "async") return std::make_unique<AsyncMpmFactory>();
  if (name == "broken-halfslack") return std::make_unique<HalfSlackMpmFactory>();
  if (name == "broken-nowait")
    return std::make_unique<NoWaitPeriodicMpmFactory>();
  if (name == "broken-impatient")
    return std::make_unique<ImpatientSporadicMpmFactory>();
  if (name.rfind("broken-toofewsteps", 0) == 0)
    return std::make_unique<TooFewStepsMpmFactory>(parse_toofewsteps(name));
  return nullptr;
}

std::string resolved_algorithm(const CaseDescriptor& c) {
  if (!c.algorithm_override.empty()) return c.algorithm_override;
  const auto pool = algorithm_pool(c.model, c.substrate);
  return pool[static_cast<std::size_t>(c.algorithm) % pool.size()];
}

bool algorithm_expected_correct(const CaseDescriptor& c) {
  return resolved_algorithm(c).rfind("broken-", 0) != 0;
}

std::string CaseDescriptor::to_string() const {
  std::ostringstream os;
  os << sesp::to_string(model) << '/'
     << (substrate == Substrate::kSharedMemory ? "smm" : "mpm")
     << " alg=" << resolved_algorithm(*this) << " sched=" << schedule
     << " s=" << spec.s << " n=" << spec.n << " b=" << spec.b << " seed=0x"
     << std::hex << seed << std::dec << ' ' << to_text(constraints);
  return os.str();
}

std::optional<TimingModel> native_model(const std::string& algorithm) {
  std::string base = algorithm;
  const auto colon = base.find(':');
  if (colon != std::string::npos) base = base.substr(0, colon);
  if (base == "sync") return TimingModel::kSynchronous;
  if (base == "periodic" || base == "broken-nowait" ||
      base == "broken-treeonly")
    return TimingModel::kPeriodic;
  if (base.rfind("semisync", 0) == 0 || base == "broken-halfslack" ||
      base == "broken-toofewsteps")
    return TimingModel::kSemiSynchronous;
  if (base.rfind("sporadic", 0) == 0 || base == "broken-impatient")
    return TimingModel::kSporadic;
  if (base == "async") return TimingModel::kAsynchronous;
  return std::nullopt;
}

GeneratedRun run_case(const CaseDescriptor& c) {
  GeneratedRun out;
  out.expect_solves = true;
  const std::string alg = resolved_algorithm(c);
  if (c.substrate == Substrate::kSharedMemory) {
    const auto factory = make_smm_factory(alg);
    if (!factory) {
      out.error = "unknown smm algorithm: " + alg;
      return out;
    }
    const std::int32_t total = smm_total_processes(c.spec.n, c.spec.b);
    const auto scheduler = make_scheduler(c, total);
    SmmRunLimits limits;
    limits.max_steps = 100000;  // broken algorithms may never idle
    SmmOutcome o = run_smm_once(c.spec, c.constraints, *factory, *scheduler,
                                limits);
    if (o.run.error)
      out.error = "smm run error: " + o.run.error->to_string();
    else if (o.run.hit_limit)
      out.error = "smm run hit limit";
    else if (!o.run.completed)
      out.error = "smm run incomplete";
    else
      out.ok = true;
    out.trace.emplace(std::move(o.run.trace));
    out.verdict = o.verdict;
    return out;
  }
  const auto factory = make_mpm_factory(alg);
  if (!factory) {
    out.error = "unknown mpm algorithm: " + alg;
    return out;
  }
  const auto scheduler = make_scheduler(c, c.spec.n);
  const auto delays = make_delays(c);
  MpmRunLimits limits;
  limits.max_steps = 100000;
  MpmOutcome o = run_mpm_once(c.spec, c.constraints, *factory, *scheduler,
                              *delays, limits);
  if (o.run.error)
    out.error = "mpm run error: " + o.run.error->to_string();
  else if (o.run.hit_limit)
    out.error = "mpm run hit limit";
  else if (!o.run.completed)
    out.error = "mpm run incomplete";
  else
    out.ok = true;
  out.trace.emplace(std::move(o.run.trace));
  out.verdict = o.verdict;
  return out;
}

const std::vector<TimingModel>& all_models() {
  static const std::vector<TimingModel> kModels = {
      TimingModel::kSynchronous, TimingModel::kPeriodic,
      TimingModel::kSemiSynchronous, TimingModel::kSporadic,
      TimingModel::kAsynchronous};
  return kModels;
}

const std::vector<Substrate>& all_substrates() {
  static const std::vector<Substrate> kSubstrates = {
      Substrate::kSharedMemory, Substrate::kMessagePassing};
  return kSubstrates;
}

}  // namespace sesp::conformance
