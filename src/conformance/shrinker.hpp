#pragma once

// Greedy descriptor-level shrinker. A failing conformance case is minimized
// by mutating its *descriptor* (smaller s/n/b, simpler timing constants)
// and re-running the full pipeline; a mutation is kept only if the case
// still fails with the same first oracle and does not grow the trace. This
// shrinks at the semantic level — the reproduced witness is always a real
// simulator run, never an edited trace that no algorithm produced.

#include <cstdint>
#include <optional>
#include <string>

#include "conformance/generator.hpp"
#include "conformance/oracles.hpp"

namespace sesp::conformance {

struct ShrinkOutcome {
  CaseDescriptor minimized;
  std::string oracle;          // the preserved failure mode
  std::string detail;          // failure detail of the minimized case
  std::int64_t steps = 0;      // trace length of the minimized case
  std::int64_t attempts = 0;   // candidate evaluations
  std::int64_t accepted = 0;   // candidates that kept the failure
};

// Greedily minimizes `failing` until no candidate mutation preserves the
// failure (or `max_attempts` candidate evaluations are spent). Returns
// nullopt when the case does not fail on re-evaluation — a shrink request
// for a passing case is a caller bug worth surfacing.
std::optional<ShrinkOutcome> shrink_case(const CaseDescriptor& failing,
                                         const OracleOptions& options,
                                         std::int64_t max_attempts = 200);

}  // namespace sesp::conformance
