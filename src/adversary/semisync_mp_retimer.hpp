#pragma once

// Executable form of the semi-synchronous *message-passing* lower bound
// (Table 1 row 3, from Attiya & Mavronicolas [4]):
//
//     min{ floor(c2/2c1) * c2, d2 + c2 } * (s-1).
//
// The construction mirrors Theorem 6.5's shape, with the admissibility
// target changed from "gaps >= c1, delays in [d1, d2]" to "gaps in
// [c1, c2], delays in [0, d2]":
//
//  1. run the algorithm round-robin with period c2 and all delays d2;
//  2. rescale all times by 2*c1/c2 (gaps become 2*c1, delays d2*2c1/c2);
//  3. chunk into B rounds with
//         B = min{ floor((c2-c1)/(2c1)), floor(d2/c2) },
//     so that (a) the upper semi-synchronous gap survives the
//     half-compressions ((2B+1)*c1 <= c2, the same safe-B correction as
//     Theorem 5.1) and (b) every message's scaled delay spans at least one
//     whole chunk (2*B*c1 <= d2*2c1/c2), keeping shifted delays
//     non-negative;
//  4. per chunk pick i_k != i_{k-1}; compress p_{i_k} (and deliveries into
//     it) onto the first half, p_{i_{k-1}} onto the second half; reorder.
//
// Against an algorithm that idles within fewer than B*(s-1) rounds the
// result is an admissible semi-synchronous computation with at most s-1
// sessions. As with the other constructions, every proof obligation is
// machine-checked, and the demonstrated bound B*c2*(s-1) matches the
// paper's min{...}*(s-1) up to the +-1 constants recorded in
// EXPERIMENTS.md.

#include <cstdint>

#include "adversary/sporadic_retimer.hpp"
#include "model/ids.hpp"
#include "mpm/algorithm.hpp"
#include "timing/constraints.hpp"

namespace sesp {

// Chunk size of the MP construction for these constants (0 => trivial
// bound, construction refuses).
std::int64_t semisync_mp_safe_B(const TimingConstraints& constraints);

// Applies the construction to a trace produced by the round-robin(c2) /
// delay-d2 schedule. Shares SporadicRetimingResult: the machine checks are
// identical, only the admissibility target differs.
SporadicRetimingResult semisync_mp_retime(const TimedComputation& trace,
                                          const ProblemSpec& spec,
                                          const TimingConstraints& constraints);

// Convenience driver: runs `factory` under the base schedule, then retimes.
SporadicRetimingResult attack_semisync_mpm(const ProblemSpec& spec,
                                           const TimingConstraints& constraints,
                                           const MpmAlgorithmFactory& factory);

}  // namespace sesp
