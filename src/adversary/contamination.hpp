#pragma once

// Executable form of the Theorem 4.3 lower-bound argument for the periodic
// SMM. The proof perturbs a round-robin computation by slowing one port
// process p' to period L * c_min (L = floor(log_{2b-1}(2n-1))) and shows,
// by counting "contaminated" variables and processes per subround, that
// fewer than n processes can notice before time L * c_min: |P(t)| <=
// P_t = ((2b-1)^t - 1)/2, so any algorithm that would terminate faster has
// an admissible computation with fewer than s sessions.
//
// The mechanization runs the perturbed schedule, then propagates taint on
// the recorded trace: the seed is every variable p' writes (its absence is
// only observable there), a process is tainted when it accesses a tainted
// variable, and a variable when a tainted process accesses it. Taint
// over-approximates the proof's contamination, so checking the measured
// spread against P_t / V_t validates Lemma 4.4 on real executions, and the
// session count of the perturbed run is the violation check.

#include <cstdint>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "smm/algorithm.hpp"
#include "timing/constraints.hpp"
#include "util/ratio.hpp"

namespace sesp {

struct ContaminationReport {
  // The perturbation's parameters.
  ProcessId slowed_process = 0;
  Duration c_min;
  Duration slow_period;
  std::int64_t L = 0;  // floor(log_{2b-1}(2n-1))

  // Lemma 4.4 validation: per subround t, the measured taint spread and the
  // recurrence bound P_t = ((2b-1)^t - 1)/2 (capped at the process count).
  std::vector<std::int64_t> tainted_processes;  // |P(t)|, t = 1..subrounds
  std::vector<std::int64_t> tainted_variables;  // cumulative |V(<=t)|
  std::vector<std::int64_t> bound_Pt;
  bool within_bound = true;

  // The paper's *exact* contamination, computed by aligning the perturbed
  // run against the unperturbed baseline (all periods c_min) and comparing,
  // per process p != p' and per aligned step j, the digest of the accessed
  // variable's value: any mismatch (including p accessing a different
  // variable) contaminates. Only defined when the baseline run completed.
  bool exact_available = false;
  std::vector<std::int64_t> exact_contaminated;  // per subround, cumulative
  // Soundness of the over-approximation: exact set counts never exceed the
  // taint counts, subround by subround.
  bool exact_within_taint = true;
  // And the exact counts respect the recurrence bound too.
  bool exact_within_bound = true;

  // Verdict on the perturbed execution.
  bool completed = false;
  std::int64_t sessions = 0;
  bool survived = false;  // still >= s sessions and terminated
  Time termination;
  // Port processes (other than p') that were never tainted by the end of
  // the trace — in the proof these idle exactly as in the unperturbed run.
  std::int64_t untainted_ports = 0;

  std::string to_string() const;
};

// Runs the slow-one perturbed schedule against `factory` and analyses the
// trace. `c_min` is the fast period; the slowed process (port 0) gets
// period L * c_min, matching the proof (or `slow_period_override` if
// positive).
ContaminationReport run_contamination_experiment(
    const ProblemSpec& spec, const TimingConstraints& base,
    const SmmAlgorithmFactory& factory, Duration c_min,
    Duration slow_period_override = Duration(0));

}  // namespace sesp
