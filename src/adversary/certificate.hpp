#pragma once

// Violation certificates: self-contained, serializable artifacts produced
// by the lower-bound constructions. A certificate packages the adversary-
// built admissible timed computation together with the problem instance and
// the timing constraints; `check_certificate` re-validates it from scratch
// (structure, admissibility, session deficit) with no reference to the
// machinery that produced it — the same trust story as a proof-carrying
// counterexample.

#include <optional>
#include <string>

#include "model/ids.hpp"
#include "model/timed_computation.hpp"
#include "timing/constraints.hpp"

namespace sesp {

struct ViolationCertificate {
  std::string construction;  // e.g. "theorem-5.1-retiming"
  std::string algorithm;     // factory name of the accused algorithm
  ProblemSpec spec;
  TimingConstraints constraints;
  TimedComputation computation;  // admissible, fewer than s sessions
};

struct CertificateCheck {
  bool valid = false;
  std::string detail;            // first problem found, if any
  std::int64_t sessions = -1;    // greedy session count of the computation
};

// Independent re-validation: structural soundness, admissibility under the
// certificate's own constraints, and sessions < spec.s.
CertificateCheck check_certificate(const ViolationCertificate& cert);

// Text round-trip (uses the trace_io format plus header lines).
std::string to_text(const ViolationCertificate& cert);
std::optional<ViolationCertificate> certificate_from_text(
    const std::string& text, std::string* error);

// Builders from the lower-bound construction results. Callers must only
// package results whose `certificate` flag is set; the builder aborts
// otherwise (an unproven certificate is a harness bug).
struct SemiSyncRetimingResult;
struct SporadicRetimingResult;

ViolationCertificate make_certificate(const SemiSyncRetimingResult& result,
                                      const std::string& algorithm,
                                      const ProblemSpec& spec,
                                      const TimingConstraints& constraints);

ViolationCertificate make_certificate(const SporadicRetimingResult& result,
                                      const std::string& algorithm,
                                      const ProblemSpec& spec,
                                      const TimingConstraints& constraints);

}  // namespace sesp
