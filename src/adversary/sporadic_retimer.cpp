#include "adversary/sporadic_retimer.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "analysis/bounds.hpp"
#include "obs/observer.hpp"
#include "session/session_counter.hpp"
#include "sim/experiment.hpp"

namespace sesp {

namespace {

SporadicRetimingResult fail(std::string why) {
  SporadicRetimingResult r;
  r.failure = std::move(why);
  return r;
}

// The process whose half-compression a step follows: the acting process for
// compute steps, the recipient for delivery steps.
ProcessId owner_of(const TimedComputation& trace, std::size_t index) {
  const StepRecord& st = trace.steps()[index];
  if (st.kind == StepKind::kCompute) return st.process;
  return trace.messages()[static_cast<std::size_t>(st.delivered)].recipient;
}

}  // namespace

std::string SporadicRetimingResult::to_string() const {
  std::ostringstream os;
  os << "sporadic retiming: constructed=" << (constructed ? "yes" : "no");
  if (!failure.empty()) os << " (" << failure << ")";
  os << " K=" << K.to_string() << " B=" << B << " chunks=" << chunks
     << " order=" << (order_consistent ? "ok" : "BAD")
     << " receives=" << (receives_preserved ? "ok" : "BAD")
     << " admissible=" << (admissibility.admissible ? "ok" : "BAD");
  if (!admissibility.admissible) os << " [" << admissibility.violation << "]";
  os << " sessions=" << sessions
     << " certificate=" << (certificate ? "YES" : "no");
  return os.str();
}

SporadicRetimingResult sporadic_retime(const TimedComputation& trace,
                                       const ProblemSpec& spec,
                                       const TimingConstraints& constraints) {
  const Duration c1 = constraints.c1;
  const Duration u = constraints.delay_uncertainty();
  const std::int64_t B = (u / (c1 * 4)).floor();
  if (B < 1) return fail("B < 1: the bound degenerates to c1 per session");
  const Ratio K = bounds::sporadic_K(c1, constraints.d1, constraints.d2);
  return half_compression_retime(trace, spec, constraints, K, constraints.d2,
                                 B);
}

SporadicRetimingResult half_compression_retime(
    const TimedComputation& trace, const ProblemSpec& spec,
    const TimingConstraints& check_constraints, const Ratio& base_period,
    const Ratio& expected_delay, std::int64_t B) {
  obs::Observer* const o = obs::default_observer();
  obs::Span obs_span(o ? o->trace : nullptr,
                     "adversary.half_compression_retime", "adversary");
  const Duration c1 = check_constraints.c1;
  if (B < 1) return fail("B < 1: the bound is trivial");
  const Ratio K = base_period;
  const auto& steps = trace.steps();
  const auto& messages = trace.messages();
  if (steps.empty()) return fail("empty trace");

  // Verify the base schedule: compute steps on the base-period grid, delays
  // all equal to expected_delay.
  for (const StepRecord& st : steps) {
    if (st.kind != StepKind::kCompute) continue;
    const Ratio r = st.time / K;
    if (!r.is_integer() || !r.is_positive())
      return fail("trace is not the round-robin(base period) schedule");
  }
  for (const MessageRecord& m : messages) {
    if (!m.delivered()) continue;
    if (steps[m.deliver_step].time - steps[m.send_step].time !=
        expected_delay)
      return fail("trace delays are not uniformly the expected delay");
  }

  SporadicRetimingResult result;
  result.K = K;
  result.B = B;

  const Ratio scale = (c1 * 2) / K;      // T'' = T * scale
  const Duration span = c1 * 2 * Ratio(B);  // chunk length under T''

  // Chunk of a step (by scaled time): T'' in ((k-1)*span, k*span].
  auto chunk_of = [&](const Time& t_scaled) {
    return (t_scaled / span).ceil();
  };

  std::int64_t max_chunk = 0;
  std::vector<Time> scaled(steps.size());
  std::vector<std::int64_t> chunk(steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    scaled[i] = steps[i].time * scale;
    chunk[i] = chunk_of(scaled[i]);
    max_chunk = std::max(max_chunk, chunk[i]);
  }
  result.chunks = max_chunk;

  if (spec.n < 2) return fail("need n >= 2 to alternate i_k");

  // i_0..i_m with i_k != i_{k-1}.
  std::vector<ProcessId> pick(static_cast<std::size_t>(max_chunk) + 1);
  pick[0] = 0;
  for (std::int64_t k = 1; k <= max_chunk; ++k) {
    if (o && o->retimer_iterations) o->retimer_iterations->inc();
    ProcessId cand = static_cast<ProcessId>(k % spec.n);
    if (cand == pick[static_cast<std::size_t>(k - 1)])
      cand = static_cast<ProcessId>((k + 1) % spec.n);
    pick[static_cast<std::size_t>(k)] = cand;
  }

  // Retime: p_{i_k} (and deliveries into it) onto the chunk's first half,
  // p_{i_{k-1}} onto the second half, everything else stays at T''.
  std::vector<Time> retimed(steps.size());
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const std::int64_t k = chunk[i];
    const Time t0 = span * Ratio(k - 1);
    const Time t1 = span * Ratio(k);
    const ProcessId owner = owner_of(trace, i);
    if (owner == pick[static_cast<std::size_t>(k)]) {
      retimed[i] = t0 + (scaled[i] - t0) / 2;
    } else if (owner == pick[static_cast<std::size_t>(k - 1)]) {
      retimed[i] = t1 - (t1 - scaled[i]) / 2;
    } else {
      retimed[i] = scaled[i];
    }
  }

  // Reorder by (new time, class, original index).
  std::vector<std::size_t> order(steps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Tie-break by original index: dependencies (same process, send->deliver,
  // deliver->receive) all point forward in the original order.
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (retimed[x] != retimed[y]) return retimed[x] < retimed[y];
    return x < y;
  });
  std::vector<std::size_t> new_pos(steps.size());
  for (std::size_t np = 0; np < order.size(); ++np) new_pos[order[np]] = np;

  result.reordered.reserve(steps.size());
  for (const std::size_t i : order) {
    StepRecord st = steps[i];
    st.time = retimed[i];
    result.reordered.push_back(st);
  }
  result.constructed = true;

  // --- Check: per-process compute order preserved. -------------------------
  result.order_consistent = true;
  {
    std::map<ProcessId, std::size_t> last;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      if (steps[i].kind != StepKind::kCompute) continue;
      if (auto it = last.find(steps[i].process); it != last.end())
        if (new_pos[it->second] >= new_pos[i]) result.order_consistent = false;
      last[steps[i].process] = i;
    }
  }

  // --- Check: receive sets preserved (Lemma 6.7's state equivalence). ------
  // For each delivered message, the first compute step of the recipient
  // after the delivery in the new order must be the original receive step
  // (or absent in both).
  result.receives_preserved = true;
  {
    // Recipient compute positions in new order, per process, sorted.
    std::map<ProcessId, std::vector<std::size_t>> proc_positions;
    for (std::size_t i = 0; i < steps.size(); ++i)
      if (steps[i].kind == StepKind::kCompute)
        proc_positions[steps[i].process].push_back(new_pos[i]);
    for (auto& [p, positions] : proc_positions) {
      (void)p;
      std::sort(positions.begin(), positions.end());
    }
    for (const MessageRecord& m : messages) {
      if (!m.delivered()) continue;
      const auto& positions = proc_positions[m.recipient];
      const auto it = std::upper_bound(positions.begin(), positions.end(),
                                       new_pos[m.deliver_step]);
      if (m.received()) {
        if (it == positions.end() || *it != new_pos[m.receive_step]) {
          result.receives_preserved = false;
          break;
        }
      } else if (it != positions.end()) {
        // Undelivered-to-a-step in the original (recipient idled first);
        // must stay unreceived.
        result.receives_preserved = false;
        break;
      }
    }
  }

  // --- Check: admissibility under the target constraints. ------------------
  {
    TimedComputation reordered_tc(Substrate::kMessagePassing,
                                  trace.num_processes(), trace.num_ports());
    for (const StepRecord& st : result.reordered) reordered_tc.append(st);
    for (MessageRecord m : messages) {
      m.send_step = new_pos[m.send_step];
      if (m.delivered()) m.deliver_step = new_pos[m.deliver_step];
      if (m.received()) m.receive_step = new_pos[m.receive_step];
      reordered_tc.mutable_messages().push_back(m);
    }
    result.admissibility = check_admissible(reordered_tc, check_constraints);
    result.reordered_trace = std::move(reordered_tc);
  }

  result.sessions = count_sessions_in(result.reordered, spec.n);
  result.certificate = result.order_consistent && result.receives_preserved &&
                       result.admissibility.admissible &&
                       result.sessions < spec.s;
  return result;
}

SporadicRetimingResult attack_sporadic_mpm(const ProblemSpec& spec,
                                           const TimingConstraints& constraints,
                                           const MpmAlgorithmFactory& factory) {
  const Ratio K =
      bounds::sporadic_K(constraints.c1, constraints.d1, constraints.d2);
  FixedPeriodScheduler round_robin(spec.n, K);
  FixedDelay delays(constraints.d2);
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, round_robin, delays);
  if (!out.run.completed) return fail("base run did not terminate");
  if (!out.verdict.admissible)
    return fail("base run inadmissible: " + out.verdict.admissibility_violation);
  return sporadic_retime(out.run.trace, spec, constraints);
}

}  // namespace sesp
