#pragma once

// Concrete message-delay adversaries for the MPM: every message at the upper
// bound d2 (the worst case for all upper-bound experiments and the baseline
// of the sporadic lower-bound construction), uniformly random delays in
// [d1, d2], and a "straggler" strategy that maximizes delay into one victim
// process while keeping everything else fast.

#include <cstdint>

#include "adversary/schedulers.hpp"
#include "util/rng.hpp"

namespace sesp {

class FixedDelay final : public DelayStrategy {
 public:
  explicit FixedDelay(Duration d);

  Duration delay(ProcessId sender, ProcessId recipient, const Time& send_time,
                 MsgId id) override;

 private:
  Duration d_;
};

class UniformRandomDelay final : public DelayStrategy {
 public:
  UniformRandomDelay(Duration d1, Duration d2, std::uint64_t seed,
                     std::uint32_t grid = 64);

  Duration delay(ProcessId sender, ProcessId recipient, const Time& send_time,
                 MsgId id) override;

 private:
  Duration d1_, d2_;
  std::uint32_t grid_;
  Rng rng_;
};

// Messages into `victim` take d2; everything else takes d1 (or the model's
// effective minimum). Starves one process of fresh information for as long
// as the model allows.
class StragglerDelay final : public DelayStrategy {
 public:
  StragglerDelay(ProcessId victim, Duration d_fast, Duration d_slow);

  Duration delay(ProcessId sender, ProcessId recipient, const Time& send_time,
                 MsgId id) override;

 private:
  ProcessId victim_;
  Duration d_fast_, d_slow_;
};

}  // namespace sesp
