#pragma once

// Adversary interfaces. In the paper, "running time" is the maximum over all
// admissible timed computations; the adversary chooses step times (within
// the timing model) and message delays (within [d1, d2]). Simulators consume
// these two interfaces; `step_schedulers.hpp` / `delay_strategies.hpp`
// provide the concrete strategies used by tests and benches, including the
// worst-case families the proofs use.

#include <cstdint>
#include <optional>

#include "model/ids.hpp"
#include "util/ratio.hpp"

namespace sesp {

// Chooses when each process takes its compute steps. `prev` is the time of
// the process's previous step (nullopt before its first step; the virtual
// predecessor is time 0), `step_index` is 0-based. Implementations must
// return times consistent with the timing model they are used under; every
// run is machine-checked by the admissibility checker afterwards.
class StepScheduler {
 public:
  virtual ~StepScheduler() = default;
  virtual Time next_step_time(ProcessId p, std::optional<Time> prev,
                              std::int64_t step_index) = 0;
};

// Chooses each message's network delay (send step -> delivery step).
class DelayStrategy {
 public:
  virtual ~DelayStrategy() = default;
  virtual Duration delay(ProcessId sender, ProcessId recipient,
                         const Time& send_time, MsgId id) = 0;
};

}  // namespace sesp
