#pragma once

// Exhaustive adversary for tiny instances: bounded model checking over all
// timed schedules on a discrete grid. Where the adversary *family* samples
// worst cases and the *constructions* build them for specific theorems,
// this module enumerates every admissible computation whose step gaps and
// message delays are drawn from finite choice sets, establishing the true
// worst case (on the grid) and checking correctness against every schedule
// rather than a sample.
//
// The decision tree is explored with an odometer over the lazily-consumed
// choice sequence: a run is executed with a prefix of explicit choices and
// the first option beyond it; only positions the run actually consumed are
// incremented, so exactly the reachable schedules are visited. Feasible for
// n <= 3, s <= 3 with two or three options per decision (thousands to a few
// hundred thousand runs).
//
// With jobs > 1 the top-level branch fan-out runs in parallel: the subtrees
// under the first min(2, n) gap decisions are explored speculatively and
// re-assembled in serial order, so the result — including the max_runs
// truncation point and the worst_choices tie-breaks — is bit-identical to
// the serial enumeration for every job count (docs/parallelism.md).

#include <cstdint>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "mpm/algorithm.hpp"
#include "timing/constraints.hpp"
#include "util/ratio.hpp"

namespace sesp {

struct ExhaustiveResult {
  bool complete = false;       // enumeration finished within max_runs
  std::int64_t runs = 0;

  bool all_solved = true;      // >= s sessions and termination, every run
  bool all_admissible = true;  // machine-checked, every run
  std::int64_t min_sessions = 0;

  // True worst case over the explored grid.
  Time max_termination;
  std::vector<std::int32_t> worst_choices;  // decision string achieving it

  // First failing run's description, if any.
  std::string first_failure;

  // Decision strings are reported without trailing zeros (the canonical
  // spelling); field-wise equality backs the determinism regressions.
  bool operator==(const ExhaustiveResult&) const = default;
};

// Explores every schedule where each process's consecutive step gap is
// drawn from `gap_choices` (per decision, independently) and each message's
// delay from `delay_choices`. Choices must all be admissible for the model;
// every run is verified. Enumeration stops (complete=false) after max_runs.
ExhaustiveResult explore_mpm(const ProblemSpec& spec,
                             const TimingConstraints& constraints,
                             const MpmAlgorithmFactory& factory,
                             const std::vector<Duration>& gap_choices,
                             const std::vector<Duration>& delay_choices,
                             std::int64_t max_runs = 2'000'000);

}  // namespace sesp
