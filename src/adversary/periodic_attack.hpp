#pragma once

// Executable form of Theorem 4.2 (periodic MP lower bound,
// max{s*c_max, d2}). The two terms have separate arguments, both
// mechanized here:
//
//  * s*c_max: every port process must take s port steps, so no computation
//    terminates before the slowest process's s-th step. Checked directly on
//    a run with all periods c_max.
//  * d2: with every delay pinned to d2, nothing any process hears before
//    time d2 depends on any other process's period. If the algorithm lets
//    some port process idle before d2, rerun with one process slowed so
//    much it has taken no step by the fast processes' idle times: the fast
//    processes receive exactly the same (empty-before-d2) information, so
//    they behave identically, and the slowed process contributes no port
//    steps — fewer than s sessions.
//
// As with the other constructions, the attack yields a machine-checked
// admissible periodic computation; applied to A(p) it finds nothing.

#include <cstdint>
#include <string>

#include "model/ids.hpp"
#include "model/timed_computation.hpp"
#include "mpm/algorithm.hpp"
#include "timing/admissibility.hpp"
#include "timing/constraints.hpp"
#include "util/ratio.hpp"

namespace sesp {

struct PeriodicAttackResult {
  bool ran = false;
  std::string failure;

  // Probe run: uniform fast periods, all delays d2.
  Time probe_termination;
  bool idles_before_d2 = false;  // some port process idles before time d2

  // The slow-one counterexample run (only when idles_before_d2).
  bool constructed = false;
  Duration slow_period;          // period given to process 0
  std::int64_t sessions = 0;     // sessions in the perturbed run
  AdmissibilityReport admissibility;
  bool certificate = false;      // admissible && sessions < s
};

// `fast_period` is the uniform period of the probe run (and of every
// process but 0 in the counterexample run); it must be positive.
PeriodicAttackResult attack_periodic_mpm(const ProblemSpec& spec,
                                         const Duration& fast_period,
                                         const Duration& d2,
                                         const MpmAlgorithmFactory& factory);

}  // namespace sesp
