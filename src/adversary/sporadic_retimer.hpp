#pragma once

// Executable form of the Theorem 6.5 lower-bound construction for the
// sporadic MPM. Starting from the round-robin computation with step period
// K = 2*d2*c1/(d2 - u/2) and every delay exactly d2, the retimer:
//
//  1. rescales all times (compute and delivery steps alike) by 2*c1/K, so
//     steps run every 2*c1 and delays become d2 - u/2 — still admissible;
//  2. splits the run into chunks of B = floor(u/(4*c1)) rounds;
//  3. per chunk k picks i_k != i_{k-1} and compresses p_{i_k}'s steps (and
//     the deliveries into it) onto the chunk's first half, p_{i_{k-1}}'s
//     onto the second half — each step moves by at most u/4, keeping step
//     gaps >= c1 and delays within [d2-u, d2] = [d1, d2];
//  4. reorders by the new times into beta' = phi_1 psi_1 ... phi_m psi_m,
//     where phi_k lacks p_{i_{k-1}} and psi_k lacks p_{i_k}, so at most one
//     session completes per chunk.
//
// As with the semi-synchronous retimer, every obligation is machine-checked:
// per-process order, delivery-before-receipt and unchanged per-step receive
// sets (so every process behaves identically — Lemma 6.7), sporadic
// admissibility, and the greedy session count (Lemma 6.6). Applied to an
// algorithm that terminated in Z < B*K*(s-1), the result is a certified
// admissible computation with fewer than s sessions.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "model/timed_computation.hpp"
#include "mpm/algorithm.hpp"
#include "timing/admissibility.hpp"
#include "timing/constraints.hpp"

namespace sesp {

struct SporadicRetimingResult {
  bool constructed = false;
  std::string failure;

  Ratio K;                // the base schedule's step period
  std::int64_t B = 0;     // rounds per chunk
  std::int64_t chunks = 0;

  // beta' with new times, in the new order (compute and delivery steps).
  std::vector<StepRecord> reordered;
  // The same computation (with re-indexed message records) wrapped as a
  // TimedComputation, ready for certificate packaging.
  std::optional<TimedComputation> reordered_trace;

  bool order_consistent = false;   // per-process order preserved
  bool receives_preserved = false; // every step drains the same messages
  AdmissibilityReport admissibility;
  std::int64_t sessions = 0;

  bool certificate = false;  // all checks pass and sessions < s

  std::string to_string() const;
};

// Applies the construction to a trace produced by the round-robin(K) /
// delay-d2 schedule.
SporadicRetimingResult sporadic_retime(const TimedComputation& trace,
                                       const ProblemSpec& spec,
                                       const TimingConstraints& constraints);

// The construction's parameterized core, shared with the semi-synchronous
// MP variant (adversary/semisync_mp_retimer.hpp): expects a trace from the
// round-robin(base_period) / delay-(expected_delay) schedule, rescales by
// 2*c1/base_period, chunks into B rounds, half-compresses i_k / i_{k-1},
// reorders, and machine-checks against `check_constraints`.
SporadicRetimingResult half_compression_retime(
    const TimedComputation& trace, const ProblemSpec& spec,
    const TimingConstraints& check_constraints, const Ratio& base_period,
    const Ratio& expected_delay, std::int64_t B);

// Convenience driver: runs `factory` under the base schedule, then retimes.
SporadicRetimingResult attack_sporadic_mpm(const ProblemSpec& spec,
                                           const TimingConstraints& constraints,
                                           const MpmAlgorithmFactory& factory);

}  // namespace sesp
