#include "adversary/step_schedulers.hpp"

#include <cstdio>
#include <cstdlib>

namespace sesp {

namespace {
[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "sesp scheduler fatal: %s\n", what);
  std::abort();
}
}  // namespace

FixedPeriodScheduler::FixedPeriodScheduler(std::vector<Duration> periods)
    : periods_(std::move(periods)) {
  if (periods_.empty()) fail("FixedPeriodScheduler: no periods");
  for (const Duration& p : periods_)
    if (!p.is_positive()) fail("FixedPeriodScheduler: non-positive period");
}

FixedPeriodScheduler::FixedPeriodScheduler(std::int32_t num_processes,
                                           Duration period)
    : FixedPeriodScheduler(std::vector<Duration>(
          static_cast<std::size_t>(num_processes), period)) {}

Time FixedPeriodScheduler::next_step_time(ProcessId p,
                                          std::optional<Time> prev,
                                          std::int64_t step_index) {
  if (p < 0 || static_cast<std::size_t>(p) >= periods_.size())
    fail("FixedPeriodScheduler: unknown process");
  const Duration& period = periods_[static_cast<std::size_t>(p)];
  const Time base = prev ? *prev : Time(0);
  (void)step_index;
  return base + period;
}

UniformGapScheduler::UniformGapScheduler(Duration lo, Duration hi,
                                         std::uint64_t seed,
                                         std::uint32_t grid)
    : lo_(lo), hi_(hi), grid_(grid), rng_(seed) {
  if (!lo.is_positive() || hi < lo) fail("UniformGapScheduler: bad [lo, hi]");
}

Time UniformGapScheduler::next_step_time(ProcessId p, std::optional<Time> prev,
                                         std::int64_t step_index) {
  (void)p;
  (void)step_index;
  const Time base = prev ? *prev : Time(0);
  return base + rng_.next_ratio(lo_, hi_, grid_);
}

BurstyScheduler::BurstyScheduler(Duration c1, std::uint32_t stall_num,
                                 std::uint32_t stall_den,
                                 std::int64_t stall_factor, std::uint64_t seed)
    : c1_(c1),
      stall_num_(stall_num),
      stall_den_(stall_den),
      stall_factor_(stall_factor),
      rng_(seed) {
  if (!c1.is_positive()) fail("BurstyScheduler: need c1 > 0");
  if (stall_factor < 1) fail("BurstyScheduler: stall factor must be >= 1");
}

Time BurstyScheduler::next_step_time(ProcessId p, std::optional<Time> prev,
                                     std::int64_t step_index) {
  (void)p;
  (void)step_index;
  const Time base = prev ? *prev : Time(0);
  const bool stall = rng_.next_bool(stall_num_, stall_den_);
  return base + (stall ? c1_ * Ratio(stall_factor_) : c1_);
}

SlowOneScheduler::SlowOneScheduler(std::int32_t num_processes, Duration fast,
                                   ProcessId slow_process, Duration slow)
    : periods_(static_cast<std::size_t>(num_processes), fast) {
  if (slow_process < 0 || slow_process >= num_processes)
    fail("SlowOneScheduler: bad slow process");
  if (!fast.is_positive() || !slow.is_positive())
    fail("SlowOneScheduler: non-positive period");
  periods_[static_cast<std::size_t>(slow_process)] = slow;
}

Time SlowOneScheduler::next_step_time(ProcessId p, std::optional<Time> prev,
                                      std::int64_t step_index) {
  if (p < 0 || static_cast<std::size_t>(p) >= periods_.size())
    fail("SlowOneScheduler: unknown process");
  (void)step_index;
  const Time base = prev ? *prev : Time(0);
  return base + periods_[static_cast<std::size_t>(p)];
}

ScriptedScheduler::ScriptedScheduler(
    std::map<ProcessId, std::vector<Time>> script, Duration tail_gap)
    : script_(std::move(script)), tail_gap_(tail_gap) {
  if (!tail_gap_.is_positive()) fail("ScriptedScheduler: need tail gap > 0");
}

Time ScriptedScheduler::next_step_time(ProcessId p, std::optional<Time> prev,
                                       std::int64_t step_index) {
  const auto it = script_.find(p);
  if (it != script_.end() &&
      static_cast<std::size_t>(step_index) < it->second.size())
    return it->second[static_cast<std::size_t>(step_index)];
  const Time base = prev ? *prev : Time(0);
  return base + tail_gap_;
}

}  // namespace sesp
