#pragma once

// Executable form of the Theorem 5.1 lower-bound construction for the
// semi-synchronous SMM. Given a computation beta produced by the lockstep
// (round-robin, period c2) schedule, the retimer:
//
//  1. splits beta into m chunks of B rounds;
//  2. builds the dependency partial order <=_beta (same process or same
//     variable, transitively closed);
//  3. per chunk, finds a port y_k whose last access sigma_k does not depend
//     on tau_k (the first access to y_{k-1}) — the existence argument from
//     [1];
//  4. retimes: ancestors of sigma_k compress to the chunk's start at c1
//     spacing, descendants of tau_k push to the chunk's end, everything
//     else keeps the uniformly compressed time T'' = T * (2*c1/c2);
//  5. reorders by the new times into beta' = phi_1 psi_1 ... phi_m psi_m.
//
// Every proof obligation is machine-checked rather than assumed: the
// reordering respects <=_beta (Lemma 5.3), replays to the same variable
// digests (Claim 5.2), is admissible for [c1, c2] (Lemma 5.4), and its
// session count is <= m (Lemma 5.5). When the input algorithm terminated in
// time Z < B*c2*(s-1), m <= s-1 and the result is a certified admissible
// computation with fewer than s sessions.
//
// Note on B: the paper uses B = min{floor(c2/2c1), floor(log_b n)}, and its
// Lemma 5.4 bounds the worst cross-chunk gap by c2; the exact worst case is
// (2B+1)*c1, which exceeds c2 by up to c1 when c2/c1 is even. We therefore
// default to the safe B = min{floor((c2-c1)/(2c1)), floor(log_b n)} — one
// step below the paper's on even ratios — and machine-check admissibility
// regardless. EXPERIMENTS.md records this correction.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "model/timed_computation.hpp"
#include "smm/algorithm.hpp"
#include "timing/admissibility.hpp"
#include "timing/constraints.hpp"

namespace sesp {

struct SemiSyncRetimingResult {
  bool constructed = false;  // steps 1-4 succeeded
  std::string failure;       // why not

  std::int64_t B = 0;        // rounds per chunk
  std::int64_t chunks = 0;   // m

  // beta', with the new times, in the new order.
  std::vector<StepRecord> reordered;
  // The same computation wrapped as a TimedComputation (set when
  // constructed), ready for certificate packaging.
  std::optional<TimedComputation> reordered_trace;

  // Machine-checked proof obligations.
  bool order_consistent = false;      // Lemma 5.3
  bool replay_ok = false;             // Claim 5.2 (digest replay)
  bool split_properties_ok = false;   // properties (ii)/(iii)
  AdmissibilityReport admissibility;  // Lemma 5.4
  std::int64_t sessions = 0;          // greedy count on beta'

  // All checks passed and sessions < s: an admissible computation on which
  // the algorithm behaves identically but fewer than s sessions occur.
  bool certificate = false;

  std::string to_string() const;
};

// The safe chunk size for the construction (see note above).
std::int64_t semisync_safe_B(const ProblemSpec& spec, Duration c1,
                             Duration c2);

// Applies the construction to a lockstep trace (every process with period
// exactly c2). `B` == 0 selects semisync_safe_B.
SemiSyncRetimingResult semisync_retime(const TimedComputation& trace,
                                       const ProblemSpec& spec,
                                       const TimingConstraints& constraints,
                                       std::int64_t B = 0);

// Convenience driver: runs `factory` under the lockstep schedule and
// retimes the resulting trace.
SemiSyncRetimingResult attack_semisync_smm(const ProblemSpec& spec,
                                           const TimingConstraints& constraints,
                                           const SmmAlgorithmFactory& factory,
                                           std::int64_t B = 0);

// The asynchronous SM round lower bound of [2] (Theorem 1 there, which the
// Theorem 5.1 proof follows): (s-1)*floor(log_b n) rounds are necessary.
// The asynchronous model has no timing constraints, so the construction is
// the same reordering with synthetic semi-synchronous constants chosen so
// the time branch never binds (c2 = 1, c1 = 1/(2*floor(log_b n)+2), making
// B = floor(log_b n)): any computation admissible under those constants is
// trivially admissible asynchronously. A certificate here witnesses an
// admissible asynchronous computation with fewer than s sessions against an
// algorithm that terminated in fewer than B*(s-1) rounds.
SemiSyncRetimingResult attack_async_smm(const ProblemSpec& spec,
                                        const SmmAlgorithmFactory& factory);

// The synthetic constants attack_async_smm uses (exposed for certificate
// packaging and tests).
TimingConstraints async_attack_constraints(const ProblemSpec& spec);

}  // namespace sesp
