#include "adversary/semisync_retimer.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "adversary/step_schedulers.hpp"
#include "analysis/bounds.hpp"
#include "obs/observer.hpp"
#include "session/session_counter.hpp"
#include "sim/experiment.hpp"
#include "smm/smm_simulator.hpp"

namespace sesp {

namespace {

enum Cls : std::uint8_t { kA = 0, kMid = 1, kZ = 2 };

struct Annotated {
  std::size_t orig_index;
  std::int64_t round;   // 1-based lockstep round
  std::int64_t chunk;   // 1-based chunk id
  Time new_time;
  Cls cls = kMid;
};

SemiSyncRetimingResult fail(std::string why) {
  SemiSyncRetimingResult r;
  r.failure = std::move(why);
  return r;
}

// Reachability within one chunk along direct dependency edges (previous step
// of the same process / previous step on the same variable). `forward` walks
// descendants of `from`; otherwise ancestors.
std::vector<bool> reach(const std::vector<StepRecord>& steps,
                        const std::vector<std::size_t>& chunk_steps,
                        std::size_t from, bool forward) {
  // Position of each original index inside chunk_steps.
  std::map<std::size_t, std::size_t> pos;
  for (std::size_t i = 0; i < chunk_steps.size(); ++i)
    pos[chunk_steps[i]] = i;

  std::vector<bool> mark(chunk_steps.size(), false);
  mark[pos.at(from)] = true;

  if (forward) {
    // One left-to-right sweep suffices: an edge u->v has u earlier in the
    // chunk, and marking v only depends on its nearest same-process /
    // same-variable predecessor.
    std::map<ProcessId, std::size_t> last_proc;
    std::map<VarId, std::size_t> last_var;
    for (std::size_t i = 0; i < chunk_steps.size(); ++i) {
      const StepRecord& st = steps[chunk_steps[i]];
      bool m = mark[i];
      if (auto it = last_proc.find(st.process);
          it != last_proc.end() && mark[it->second])
        m = true;
      if (st.var != kNoVar)
        if (auto it = last_var.find(st.var);
            it != last_var.end() && mark[it->second])
          m = true;
      mark[i] = m;
      last_proc[st.process] = i;
      if (st.var != kNoVar) last_var[st.var] = i;
    }
  } else {
    std::map<ProcessId, std::size_t> next_proc;
    std::map<VarId, std::size_t> next_var;
    for (std::size_t j = chunk_steps.size(); j-- > 0;) {
      const StepRecord& st = steps[chunk_steps[j]];
      bool m = mark[j];
      if (auto it = next_proc.find(st.process);
          it != next_proc.end() && mark[it->second])
        m = true;
      if (st.var != kNoVar)
        if (auto it = next_var.find(st.var);
            it != next_var.end() && mark[it->second])
          m = true;
      mark[j] = m;
      next_proc[st.process] = j;
      if (st.var != kNoVar) next_var[st.var] = j;
    }
  }
  return mark;
}

}  // namespace

std::string SemiSyncRetimingResult::to_string() const {
  std::ostringstream os;
  os << "semisync retiming: constructed=" << (constructed ? "yes" : "no");
  if (!failure.empty()) os << " (" << failure << ")";
  os << " B=" << B << " chunks=" << chunks
     << " order=" << (order_consistent ? "ok" : "BAD")
     << " replay=" << (replay_ok ? "ok" : "BAD")
     << " split=" << (split_properties_ok ? "ok" : "BAD")
     << " admissible=" << (admissibility.admissible ? "ok" : "BAD");
  if (!admissibility.admissible) os << " [" << admissibility.violation << "]";
  os << " sessions=" << sessions
     << " certificate=" << (certificate ? "YES" : "no");
  return os.str();
}

std::int64_t semisync_safe_B(const ProblemSpec& spec, Duration c1,
                             Duration c2) {
  const std::int64_t time_B = ((c2 - c1) / (c1 * 2)).floor();
  const std::int64_t log_B = bounds::floor_log(spec.b, spec.n);
  return std::min(time_B, log_B);
}

SemiSyncRetimingResult semisync_retime(const TimedComputation& trace,
                                       const ProblemSpec& spec,
                                       const TimingConstraints& constraints,
                                       std::int64_t B) {
  obs::Observer* const o = obs::default_observer();
  obs::Span span(o ? o->trace : nullptr, "adversary.semisync_retime",
                 "adversary");
  const Duration c1 = constraints.c1;
  const Duration c2 = constraints.c2;
  if (B == 0) B = semisync_safe_B(spec, c1, c2);
  if (B < 1)
    return fail("B < 1: the bound is trivial (every process needs s steps)");

  const auto& steps = trace.steps();
  if (steps.empty()) return fail("empty trace");

  // Annotate rounds/chunks; require the lockstep schedule the construction
  // assumes.
  std::vector<Annotated> ann(steps.size());
  std::int64_t max_chunk = 0;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (!steps[i].is_compute()) return fail("non-compute step in SMM trace");
    const Ratio r = steps[i].time / c2;
    if (!r.is_integer() || !r.is_positive())
      return fail("trace is not the lockstep schedule");
    ann[i].orig_index = i;
    ann[i].round = r.num();
    ann[i].chunk = (ann[i].round + B - 1) / B;
    max_chunk = std::max(max_chunk, ann[i].chunk);
  }

  SemiSyncRetimingResult result;
  result.B = B;
  result.chunks = max_chunk;

  // Group step indices by chunk (trace order == round order).
  std::vector<std::vector<std::size_t>> by_chunk(
      static_cast<std::size_t>(max_chunk));
  for (std::size_t i = 0; i < steps.size(); ++i)
    by_chunk[static_cast<std::size_t>(ann[i].chunk - 1)].push_back(i);

  const Duration compress = (c1 * 2) / c2;  // T'' = T * 2c1/c2

  PortIndex prev_port = 0;  // y_0: an arbitrary port
  std::vector<std::size_t> sigmas;  // sigma_k original index, or npos
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  for (std::int64_t k = 1; k <= max_chunk; ++k) {
    if (o && o->retimer_iterations) o->retimer_iterations->inc();
    const auto& chunk = by_chunk[static_cast<std::size_t>(k - 1)];
    const Time t0 = c1 * 2 * Ratio(B) * Ratio(k - 1);
    // The descendant suffix is anchored at the chunk's *effective* end —
    // 2*c1 per round actually present. For a partial final chunk (R < B
    // rounds) anchoring at the nominal end t0 + 2*B*c1 would stretch a
    // process's cross-chunk gap to (3B-R+1)*c1 > c2; with the effective end
    // the worst gap stays (2B+1)*c1 <= c2 (the safe-B guarantee).
    std::int64_t rounds_in_chunk = 0;
    for (const std::size_t i : chunk)
      rounds_in_chunk =
          std::max(rounds_in_chunk, ann[i].round - (k - 1) * B);
    const Time t1 = t0 + c1 * 2 * Ratio(rounds_in_chunk);

    // Which ports are accessed in this chunk, and their first/last access.
    std::map<PortIndex, std::pair<std::size_t, std::size_t>> port_access;
    for (const std::size_t i : chunk) {
      if (steps[i].port == kNoPort) continue;
      auto [it, inserted] = port_access.try_emplace(steps[i].port,
                                                    std::make_pair(i, i));
      if (!inserted) it->second.second = i;
    }

    // Default placement: uniformly compressed.
    auto place_mid = [&](std::size_t i) {
      ann[i].new_time = steps[i].time * compress;
      ann[i].cls = kMid;
    };

    // Case 1: some port untouched in this chunk — phi_k empty.
    PortIndex untouched = kNoPort;
    for (PortIndex y = 0; y < spec.n; ++y)
      if (port_access.find(y) == port_access.end()) {
        untouched = y;
        break;
      }
    if (untouched != kNoPort) {
      for (const std::size_t i : chunk) place_mid(i);
      prev_port = untouched;
      sigmas.push_back(kNone);
      continue;
    }

    // Case 2: every port accessed. tau_k = first access to y_{k-1}.
    const std::size_t tau = port_access.at(prev_port).first;
    const std::vector<bool> desc = reach(steps, chunk, tau, true);

    // Find y_k with last access not dependent on tau_k.
    std::map<std::size_t, std::size_t> pos_in_chunk;
    for (std::size_t c = 0; c < chunk.size(); ++c)
      pos_in_chunk[chunk[c]] = c;

    PortIndex chosen = kNoPort;
    std::size_t sigma = kNone;
    for (const auto& [y, firstlast] : port_access) {
      if (!desc[pos_in_chunk.at(firstlast.second)]) {
        chosen = y;
        sigma = firstlast.second;
        break;
      }
    }
    if (chosen == kNoPort) {
      return fail("chunk " + std::to_string(k) +
                  ": every port's last access depends on tau_k (influence "
                  "covered all ports)");
    }
    const std::vector<bool> anc = reach(steps, chunk, sigma, false);

    // Per-process prefix (ancestors of sigma_k) and suffix (descendants of
    // tau_k) placement.
    std::map<ProcessId, std::vector<std::size_t>> per_proc;
    for (const std::size_t i : chunk) per_proc[steps[i].process].push_back(i);

    for (const auto& [p, psteps] : per_proc) {
      (void)p;
      const std::size_t cnt = psteps.size();
      // Ancestor prefix length a, descendant suffix start z.
      std::size_t a = 0;
      for (std::size_t i = 0; i < cnt; ++i)
        if (anc[pos_in_chunk.at(psteps[i])]) a = i + 1;
      std::size_t z = cnt;  // first suffix position
      for (std::size_t i = cnt; i-- > 0;)
        if (desc[pos_in_chunk.at(psteps[i])]) z = i;
      if (a > z)
        return fail("chunk " + std::to_string(k) +
                    ": ancestor prefix overlaps descendant suffix");
      for (std::size_t i = 0; i < cnt; ++i) {
        const std::size_t idx = psteps[i];
        if (i < a) {
          ann[idx].new_time = t0 + c1 * Ratio(static_cast<std::int64_t>(i + 1));
          ann[idx].cls = kA;
        } else if (i >= z) {
          ann[idx].new_time =
              t1 - c1 * Ratio(static_cast<std::int64_t>(cnt - 1 - i));
          ann[idx].cls = kZ;
        } else {
          place_mid(idx);
        }
      }
    }
    prev_port = chosen;
    sigmas.push_back(sigma);
  }

  // --- Reorder by (new_time, class, original index). ----------------------
  std::vector<std::size_t> order(steps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // Tie-break by original index: every <=_beta dependency points forward in
  // the original order, so this can never invert one.
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (ann[x].new_time != ann[y].new_time)
      return ann[x].new_time < ann[y].new_time;
    return x < y;
  });

  result.reordered.reserve(steps.size());
  for (const std::size_t i : order) {
    StepRecord st = steps[i];
    st.time = ann[i].new_time;
    result.reordered.push_back(st);
  }
  result.constructed = true;

  std::vector<std::size_t> new_pos(steps.size());
  for (std::size_t np = 0; np < order.size(); ++np) new_pos[order[np]] = np;

  // --- Check: Lemma 5.3, order consistent with <=_beta (direct edges). ----
  result.order_consistent = true;
  {
    std::map<ProcessId, std::size_t> last_proc;
    std::map<VarId, std::size_t> last_var;
    for (std::size_t i = 0; i < steps.size(); ++i) {
      if (auto it = last_proc.find(steps[i].process); it != last_proc.end())
        if (new_pos[it->second] >= new_pos[i]) result.order_consistent = false;
      if (steps[i].var != kNoVar)
        if (auto it = last_var.find(steps[i].var); it != last_var.end())
          if (new_pos[it->second] >= new_pos[i])
            result.order_consistent = false;
      last_proc[steps[i].process] = i;
      if (steps[i].var != kNoVar) last_var[steps[i].var] = i;
    }
  }

  // --- Check: Claim 5.2, digest replay. ------------------------------------
  result.replay_ok = true;
  {
    std::map<VarId, std::uint64_t> var_digest;
    // Seed with the value each variable had before its first original access.
    for (const StepRecord& st : steps)
      if (st.var != kNoVar) var_digest.try_emplace(st.var, st.value_before_digest);
    for (const StepRecord& st : result.reordered) {
      if (st.var == kNoVar) continue;
      if (var_digest.at(st.var) != st.value_before_digest) {
        result.replay_ok = false;
        break;
      }
      var_digest[st.var] = st.value_after_digest;
    }
  }

  // --- Check: split properties (ii)/(iii). ---------------------------------
  result.split_properties_ok = true;
  {
    PortIndex yprev = 0;
    for (std::int64_t k = 1; k <= max_chunk; ++k) {
      const std::size_t sigma = sigmas[static_cast<std::size_t>(k - 1)];
      PortIndex ycur = kNoPort;
      if (sigma == kNone) {
        // phi_k empty; y_k was the untouched port. Recompute it.
        std::set<PortIndex> touched;
        for (const std::size_t i : by_chunk[static_cast<std::size_t>(k - 1)])
          if (steps[i].port != kNoPort) touched.insert(steps[i].port);
        for (PortIndex y = 0; y < spec.n; ++y)
          if (!touched.count(y)) {
            ycur = y;
            break;
          }
        // (ii)/(iii) hold vacuously.
      } else {
        ycur = steps[sigma].port;
        const std::size_t split = new_pos[sigma];
        for (const std::size_t i : by_chunk[static_cast<std::size_t>(k - 1)]) {
          if (steps[i].port == yprev && new_pos[i] <= split && i != sigma)
            result.split_properties_ok = false;  // (ii) violated
          if (steps[i].port == ycur && new_pos[i] > split)
            result.split_properties_ok = false;  // (iii) violated
        }
      }
      yprev = ycur;
    }
  }

  // --- Check: Lemma 5.4, admissibility. ------------------------------------
  {
    TimedComputation reordered_tc(Substrate::kSharedMemory,
                                  trace.num_processes(), trace.num_ports());
    for (const StepRecord& st : result.reordered) reordered_tc.append(st);
    result.admissibility = check_admissible(reordered_tc, constraints);
    result.reordered_trace = std::move(reordered_tc);
  }

  // --- Lemma 5.5: sessions. -------------------------------------------------
  result.sessions = count_sessions_in(result.reordered, spec.n);

  result.certificate = result.order_consistent && result.replay_ok &&
                       result.split_properties_ok &&
                       result.admissibility.admissible &&
                       result.sessions < spec.s;
  return result;
}

SemiSyncRetimingResult attack_semisync_smm(const ProblemSpec& spec,
                                           const TimingConstraints& constraints,
                                           const SmmAlgorithmFactory& factory,
                                           std::int64_t B) {
  const std::int32_t total = smm_total_processes(spec.n, spec.b);
  FixedPeriodScheduler lockstep(total, constraints.c2);
  const SmmOutcome out = run_smm_once(spec, constraints, factory, lockstep);
  if (!out.run.completed) {
    SemiSyncRetimingResult r = fail("lockstep run did not terminate");
    return r;
  }
  return semisync_retime(out.run.trace, spec, constraints, B);
}

TimingConstraints async_attack_constraints(const ProblemSpec& spec) {
  const std::int64_t L =
      std::max<std::int64_t>(bounds::floor_log(spec.b, spec.n), 1);
  // c2 = 1, c1 = 1/(2L+2): floor((c2-c1)/(2c1)) = floor((2L+1)/2) = L, so
  // the safe B equals the log term and the time branch never binds.
  return TimingConstraints::semi_synchronous(Ratio(1, 2 * L + 2), Ratio(1));
}

SemiSyncRetimingResult attack_async_smm(const ProblemSpec& spec,
                                        const SmmAlgorithmFactory& factory) {
  return attack_semisync_smm(spec, async_attack_constraints(spec), factory);
}

}  // namespace sesp
