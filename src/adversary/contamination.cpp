#include "adversary/contamination.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "adversary/step_schedulers.hpp"
#include "analysis/bounds.hpp"
#include "obs/observer.hpp"
#include "session/session_counter.hpp"
#include "sim/experiment.hpp"
#include "smm/smm_simulator.hpp"

namespace sesp {

namespace {

// ((2b-1)^t - 1) / 2, saturating at cap.
std::int64_t recurrence_bound(std::int32_t b, std::int64_t t,
                              std::int64_t cap) {
  __int128 power = 1;
  for (std::int64_t i = 0; i < t; ++i) {
    power *= 2 * b - 1;
    if (power > 2 * static_cast<__int128>(cap) + 1) return cap;
  }
  const __int128 bound = (power - 1) / 2;
  return bound > cap ? cap : static_cast<std::int64_t>(bound);
}

}  // namespace

std::string ContaminationReport::to_string() const {
  std::ostringstream os;
  os << "contamination: slowed p" << slowed_process << " to "
     << slow_period.to_string() << " (L=" << L << ", c_min=" << c_min
     << ")\n  subround |P(t)| (bound P_t): ";
  for (std::size_t t = 0; t < tainted_processes.size(); ++t)
    os << tainted_processes[t] << "(" << bound_Pt[t] << ") ";
  os << "\n  within_bound=" << (within_bound ? "yes" : "NO")
     << " sessions=" << sessions << " survived=" << (survived ? "yes" : "NO")
     << " untainted_ports=" << untainted_ports;
  if (exact_available) {
    os << "\n  exact |P(t)|: ";
    for (const std::int64_t v : exact_contaminated) os << v << " ";
    os << " exact<=taint=" << (exact_within_taint ? "yes" : "NO")
       << " exact<=P_t=" << (exact_within_bound ? "yes" : "NO");
  }
  os << "\n";
  return os.str();
}

ContaminationReport run_contamination_experiment(
    const ProblemSpec& spec, const TimingConstraints& base,
    const SmmAlgorithmFactory& factory, Duration c_min,
    Duration slow_period_override) {
  obs::Observer* const o = obs::default_observer();
  obs::Span span(o ? o->trace : nullptr, "adversary.contamination",
                 "adversary",
                 o && o->trace
                     ? obs::args_object({obs::arg_int("n", spec.n),
                                         obs::arg_int("b", spec.b)})
                     : std::string());
  ContaminationReport report;
  report.c_min = c_min;
  report.L = bounds::floor_log(2 * spec.b - 1, 2 * spec.n - 1);
  report.slowed_process = 0;
  report.slow_period = slow_period_override.is_positive()
                           ? slow_period_override
                           : c_min * Ratio(std::max<std::int64_t>(report.L, 2));

  const std::int32_t total = smm_total_processes(spec.n, spec.b);

  // The perturbed admissible timed computation (alpha', T'): round robin at
  // c_min except the slowed port process.
  TimingConstraints perturbed = base;
  perturbed.model = TimingModel::kPeriodic;
  perturbed.periods.assign(static_cast<std::size_t>(total), c_min);
  perturbed.periods[0] = report.slow_period;

  SlowOneScheduler scheduler(total, c_min, report.slowed_process,
                             report.slow_period);
  const SmmOutcome out = run_smm_once(spec, perturbed, factory, scheduler);

  report.completed = out.run.completed;
  report.sessions = out.verdict.sessions;
  report.survived = out.verdict.admissible && out.verdict.solves;
  if (out.verdict.termination_time)
    report.termination = *out.verdict.termination_time;

  // --- Taint propagation over the trace -----------------------------------
  // Seed: every variable the slowed process touches (its port/scratch/uplink
  // accesses); the perturbation is only observable where p' would write.
  std::set<VarId> tainted_vars;
  for (const StepRecord& st : out.run.trace.steps())
    if (st.process == report.slowed_process && st.var != kNoVar)
      tainted_vars.insert(st.var);

  std::set<ProcessId> tainted_procs;  // excludes p' itself, as in the proof

  // Subround decomposition: minimal fragments involving every process except
  // p' (idled processes are excused, mirroring the round counter).
  std::vector<bool> idle(static_cast<std::size_t>(total), false);
  std::vector<bool> seen(static_cast<std::size_t>(total), false);
  auto subround_complete = [&]() {
    for (std::int32_t p = 0; p < total; ++p) {
      if (p == report.slowed_process) continue;
      const auto i = static_cast<std::size_t>(p);
      if (!seen[i] && !idle[i]) return false;
    }
    return true;
  };

  for (const StepRecord& st : out.run.trace.steps()) {
    if (!st.is_compute()) continue;
    const auto pi = static_cast<std::size_t>(st.process);
    if (st.idle_after) idle[pi] = true;

    if (st.process != report.slowed_process && st.var != kNoVar) {
      const bool var_tainted = tainted_vars.count(st.var) != 0;
      const bool proc_tainted = tainted_procs.count(st.process) != 0;
      if (var_tainted) tainted_procs.insert(st.process);
      if (proc_tainted || var_tainted) tainted_vars.insert(st.var);
    }

    if (st.process != report.slowed_process) {
      seen[pi] = true;
      if (subround_complete()) {
        report.tainted_processes.push_back(
            static_cast<std::int64_t>(tainted_procs.size()));
        report.tainted_variables.push_back(
            static_cast<std::int64_t>(tainted_vars.size()));
        seen.assign(seen.size(), false);
      }
    }
  }

  for (std::size_t t = 0; t < report.tainted_processes.size(); ++t) {
    const std::int64_t bound = recurrence_bound(
        spec.b, static_cast<std::int64_t>(t) + 1, total);
    report.bound_Pt.push_back(bound);
    if (report.tainted_processes[t] > bound) report.within_bound = false;
  }

  // Port processes never tainted (and not p').
  std::int64_t untainted = 0;
  for (ProcessId p = 1; p < spec.n; ++p)
    if (tainted_procs.count(p) == 0) ++untainted;
  report.untainted_ports = untainted;

  // --- Exact contamination: align against the unperturbed baseline. -------
  // Baseline (alpha): every process at c_min. Each subround of the
  // perturbed run contains exactly one step of every process except p', so
  // a process's j-th step aligns with baseline round j; its reads diverge
  // exactly when the variable it accesses (or that variable's value digest)
  // differs from the baseline's.
  TimingConstraints baseline = base;
  baseline.model = TimingModel::kPeriodic;
  baseline.periods.assign(static_cast<std::size_t>(total), c_min);
  FixedPeriodScheduler baseline_sched(total, c_min);
  const SmmOutcome base_out =
      run_smm_once(spec, baseline, factory, baseline_sched);
  if (base_out.run.completed) {
    report.exact_available = true;
    std::vector<std::int64_t> first_divergence;  // per process, 1-based; 0 = never
    first_divergence.assign(static_cast<std::size_t>(total), 0);
    for (ProcessId p = 0; p < total; ++p) {
      if (p == report.slowed_process) continue;
      const auto in_base = base_out.run.trace.compute_indices(p);
      const auto in_pert = out.run.trace.compute_indices(p);
      const std::size_t common = std::min(in_base.size(), in_pert.size());
      std::int64_t diverged_at = 0;
      for (std::size_t j = 0; j < common; ++j) {
        const StepRecord& a = base_out.run.trace.steps()[in_base[j]];
        const StepRecord& b = out.run.trace.steps()[in_pert[j]];
        if (a.var != b.var || a.value_before_digest != b.value_before_digest) {
          diverged_at = static_cast<std::int64_t>(j) + 1;
          break;
        }
      }
      // A port process with identical reads but a different step count
      // idled at a different point — behavioral divergence. Relays never
      // idle; their step counts just track how long the simulation ran, so
      // only their read prefixes matter.
      if (diverged_at == 0 && p < spec.n && in_base.size() != in_pert.size())
        diverged_at = static_cast<std::int64_t>(common) + 1;
      first_divergence[static_cast<std::size_t>(p)] = diverged_at;
    }
    for (std::size_t t = 0; t < report.tainted_processes.size(); ++t) {
      std::int64_t count = 0;
      for (const std::int64_t j0 : first_divergence)
        if (j0 != 0 && j0 <= static_cast<std::int64_t>(t) + 1) ++count;
      report.exact_contaminated.push_back(count);
      if (count > report.tainted_processes[t])
        report.exact_within_taint = false;
      if (count > report.bound_Pt[t]) report.exact_within_bound = false;
    }
  }
  return report;
}

}  // namespace sesp
