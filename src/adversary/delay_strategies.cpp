#include "adversary/delay_strategies.hpp"

#include <cstdio>
#include <cstdlib>

namespace sesp {

namespace {
[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "sesp delay strategy fatal: %s\n", what);
  std::abort();
}
}  // namespace

FixedDelay::FixedDelay(Duration d) : d_(d) {
  if (d.is_negative()) fail("FixedDelay: negative delay");
}

Duration FixedDelay::delay(ProcessId, ProcessId, const Time&, MsgId) {
  return d_;
}

UniformRandomDelay::UniformRandomDelay(Duration d1, Duration d2,
                                       std::uint64_t seed, std::uint32_t grid)
    : d1_(d1), d2_(d2), grid_(grid), rng_(seed) {
  if (d1.is_negative() || d2 < d1) fail("UniformRandomDelay: bad [d1, d2]");
}

Duration UniformRandomDelay::delay(ProcessId, ProcessId, const Time&, MsgId) {
  if (d1_ == d2_) return d1_;
  return rng_.next_ratio(d1_, d2_, grid_);
}

StragglerDelay::StragglerDelay(ProcessId victim, Duration d_fast,
                               Duration d_slow)
    : victim_(victim), d_fast_(d_fast), d_slow_(d_slow) {
  if (d_fast.is_negative() || d_slow < d_fast)
    fail("StragglerDelay: need 0 <= d_fast <= d_slow");
}

Duration StragglerDelay::delay(ProcessId, ProcessId recipient, const Time&,
                               MsgId) {
  return recipient == victim_ ? d_slow_ : d_fast_;
}

}  // namespace sesp
