#include "adversary/semisync_mp_retimer.hpp"

#include <algorithm>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "sim/experiment.hpp"

namespace sesp {

std::int64_t semisync_mp_safe_B(const TimingConstraints& constraints) {
  const Duration c1 = constraints.c1;
  const Duration c2 = constraints.c2;
  const Duration d2 = constraints.d2;
  if (!(c1 * 4 <= c2)) return 0;  // base period 4*c1 must fit in [c1, c2]
  // Branch A: the gap-window survival bound of Theorem 5.1 (safe form).
  const std::int64_t step_branch = ((c2 - c1) / (c1 * 2)).floor();
  // Branch B: every scaled delay (d2/2) must span a chunk and survive the
  // +-B*c1 shifts within [0, d2] — exactly the Theorem 6.5 analysis with
  // the full window u' = d2: B <= d2 / (4*c1).
  const std::int64_t delay_branch = (d2 / (c1 * 4)).floor();
  return std::max<std::int64_t>(std::min(step_branch, delay_branch), 0);
}

SporadicRetimingResult semisync_mp_retime(
    const TimedComputation& trace, const ProblemSpec& spec,
    const TimingConstraints& constraints) {
  const std::int64_t B = semisync_mp_safe_B(constraints);
  if (B < 1) {
    SporadicRetimingResult r;
    r.failure = "B < 1: constants too tight for the MP construction "
                "(need c2 >= 4*c1 and d2 >= 4*c1)";
    return r;
  }
  // Base period 4*c1: the scaled delay d2 * (2c1 / 4c1) = d2/2 sits exactly
  // mid-window, the [0, d2] analogue of Theorem 6.5's K.
  return half_compression_retime(trace, spec, constraints,
                                 constraints.c1 * 4, constraints.d2, B);
}

SporadicRetimingResult attack_semisync_mpm(
    const ProblemSpec& spec, const TimingConstraints& constraints,
    const MpmAlgorithmFactory& factory) {
  const std::int64_t B = semisync_mp_safe_B(constraints);
  if (B < 1) {
    SporadicRetimingResult r;
    r.failure = "B < 1: constants too tight for the MP construction";
    return r;
  }
  FixedPeriodScheduler round_robin(spec.n, constraints.c1 * 4);
  FixedDelay delays(constraints.d2);
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, round_robin, delays);
  if (!out.run.completed) {
    SporadicRetimingResult r;
    r.failure = "base run did not terminate";
    return r;
  }
  if (!out.verdict.admissible) {
    SporadicRetimingResult r;
    r.failure = "base run inadmissible: " + out.verdict.admissibility_violation;
    return r;
  }
  return semisync_mp_retime(out.run.trace, spec, constraints);
}

}  // namespace sesp
