#pragma once

// Concrete step-schedule adversaries. These are the schedule families the
// paper's arguments use: exact per-process periods (synchronous, periodic,
// and the round-robin baselines of the lower-bound proofs), one slowed
// process (Theorems 4.2/4.3), uniformly random gaps inside [c1, c2]
// (semi-synchronous), bursty stalls with only a lower bound (sporadic), and
// fully scripted step lists (the retiming constructions).

#include <cstdint>
#include <map>
#include <vector>

#include "adversary/schedulers.hpp"
#include "util/rng.hpp"

namespace sesp {

// Process p's k-th step occurs exactly at k * periods[p] (time 0 is the
// virtual 0-th step). Models: synchronous (all periods c2) and periodic.
class FixedPeriodScheduler final : public StepScheduler {
 public:
  explicit FixedPeriodScheduler(std::vector<Duration> periods);
  // All processes share one period.
  FixedPeriodScheduler(std::int32_t num_processes, Duration period);

  Time next_step_time(ProcessId p, std::optional<Time> prev,
                      std::int64_t step_index) override;

  const std::vector<Duration>& periods() const noexcept { return periods_; }

 private:
  std::vector<Duration> periods_;
};

// Gaps drawn uniformly (on an exact rational grid) from [lo, hi].
// Semi-synchronous adversary with [c1, c2]; asynchronous MPM with (0, c2]
// (pass lo = some positive epsilon grid point).
class UniformGapScheduler final : public StepScheduler {
 public:
  UniformGapScheduler(Duration lo, Duration hi, std::uint64_t seed,
                      std::uint32_t grid = 64);

  Time next_step_time(ProcessId p, std::optional<Time> prev,
                      std::int64_t step_index) override;

 private:
  Duration lo_, hi_;
  std::uint32_t grid_;
  Rng rng_;
};

// Sporadic adversary: gaps are usually exactly c1 but, with probability
// stall_num/stall_den per step, stretch to stall_factor * c1. Exercises the
// "no upper bound on step time" clause while keeping runs finite.
class BurstyScheduler final : public StepScheduler {
 public:
  BurstyScheduler(Duration c1, std::uint32_t stall_num,
                  std::uint32_t stall_den, std::int64_t stall_factor,
                  std::uint64_t seed);

  Time next_step_time(ProcessId p, std::optional<Time> prev,
                      std::int64_t step_index) override;

 private:
  Duration c1_;
  std::uint32_t stall_num_, stall_den_;
  std::int64_t stall_factor_;
  Rng rng_;
};

// All processes step with period `fast` except one distinguished process
// with period `slow` — the perturbation of Theorem 4.3 and the worst case
// of Theorem 4.2.
class SlowOneScheduler final : public StepScheduler {
 public:
  SlowOneScheduler(std::int32_t num_processes, Duration fast,
                   ProcessId slow_process, Duration slow);

  Time next_step_time(ProcessId p, std::optional<Time> prev,
                      std::int64_t step_index) override;

  const std::vector<Duration>& periods() const noexcept { return periods_; }

 private:
  std::vector<Duration> periods_;
};

// Fully scripted schedule: process p's k-th step at script[p][k]. Once a
// script is exhausted the schedule continues with `tail_gap` between steps
// (so algorithms that run longer than the script still terminate).
class ScriptedScheduler final : public StepScheduler {
 public:
  ScriptedScheduler(std::map<ProcessId, std::vector<Time>> script,
                    Duration tail_gap);

  Time next_step_time(ProcessId p, std::optional<Time> prev,
                      std::int64_t step_index) override;

 private:
  std::map<ProcessId, std::vector<Time>> script_;
  Duration tail_gap_;
};

}  // namespace sesp
