#include "adversary/certificate.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "adversary/semisync_retimer.hpp"
#include "adversary/sporadic_retimer.hpp"
#include "model/trace_io.hpp"
#include "session/session_counter.hpp"
#include "timing/admissibility.hpp"

namespace sesp {

namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "sesp certificate fatal: %s\n", what);
  std::abort();
}

}  // namespace

CertificateCheck check_certificate(const ViolationCertificate& cert) {
  CertificateCheck out;
  if (auto err = cert.computation.structural_error()) {
    out.detail = "structural: " + *err;
    return out;
  }
  const AdmissibilityReport adm =
      check_admissible(cert.computation, cert.constraints);
  if (!adm.admissible) {
    out.detail = "inadmissible: " + adm.violation;
    return out;
  }
  out.sessions = count_sessions(cert.computation).sessions;
  if (out.sessions >= cert.spec.s) {
    out.detail = "computation has " + std::to_string(out.sessions) +
                 " sessions, needs < " + std::to_string(cert.spec.s);
    return out;
  }
  out.valid = true;
  return out;
}

std::string to_text(const ViolationCertificate& cert) {
  std::ostringstream os;
  os << "sesp-certificate v1\n"
     << "construction," << cert.construction << "\n"
     << "algorithm," << cert.algorithm << "\n"
     << "spec," << cert.spec.s << "," << cert.spec.n << "," << cert.spec.b
     << "\n"
     << to_text(cert.constraints) << "\n"
     << to_text(cert.computation);
  return os.str();
}

std::optional<ViolationCertificate> certificate_from_text(
    const std::string& text, std::string* error) {
  std::istringstream is(text);
  auto bail = [error](const std::string& what) {
    if (error) *error = what;
    return std::nullopt;
  };

  std::string line;
  if (!std::getline(is, line) || line != "sesp-certificate v1")
    return bail("missing certificate header");

  std::string construction, algorithm;
  if (!std::getline(is, line) || line.rfind("construction,", 0) != 0)
    return bail("missing construction line");
  construction = line.substr(13);
  if (!std::getline(is, line) || line.rfind("algorithm,", 0) != 0)
    return bail("missing algorithm line");
  algorithm = line.substr(10);

  if (!std::getline(is, line) || line.rfind("spec,", 0) != 0)
    return bail("missing spec line");
  ProblemSpec spec;
  if (std::sscanf(line.c_str(), "spec,%ld,%d,%d", &spec.s, &spec.n,
                  &spec.b) != 3)
    return bail("malformed spec line");

  if (!std::getline(is, line)) return bail("missing constraints line");
  std::string sub_error;
  const auto constraints = constraints_from_text(line, &sub_error);
  if (!constraints) return bail("constraints: " + sub_error);

  std::string rest;
  std::ostringstream rest_os;
  rest_os << is.rdbuf();
  rest = rest_os.str();
  const auto trace = trace_from_text(rest, &sub_error);
  if (!trace) return bail("trace: " + sub_error);

  ViolationCertificate cert{construction, algorithm, spec, *constraints,
                            *trace};
  return cert;
}

ViolationCertificate make_certificate(const SemiSyncRetimingResult& result,
                                      const std::string& algorithm,
                                      const ProblemSpec& spec,
                                      const TimingConstraints& constraints) {
  if (!result.certificate || !result.reordered_trace)
    fail("semisync result is not a proven violation");
  return ViolationCertificate{"theorem-5.1-retiming", algorithm, spec,
                              constraints, *result.reordered_trace};
}

ViolationCertificate make_certificate(const SporadicRetimingResult& result,
                                      const std::string& algorithm,
                                      const ProblemSpec& spec,
                                      const TimingConstraints& constraints) {
  if (!result.certificate || !result.reordered_trace)
    fail("sporadic result is not a proven violation");
  return ViolationCertificate{"theorem-6.5-retiming", algorithm, spec,
                              constraints, *result.reordered_trace};
}

}  // namespace sesp
