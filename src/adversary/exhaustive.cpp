#include "adversary/exhaustive.hpp"

#include <cstdio>
#include <cstdlib>
#include <deque>

#include "exec/jobs.hpp"
#include "exec/thread_pool.hpp"
#include "model/trace_io.hpp"
#include "mpm/mpm_simulator.hpp"
#include "obs/observer.hpp"
#include "recovery/payload.hpp"
#include "recovery/supervisor.hpp"
#include "session/verifier.hpp"

namespace sesp {

namespace {

// Scheduler / delay strategy driven by a shared choice cursor. Each call
// consumes one decision: an index into the option set, read from the
// explicit prefix or defaulting to 0 past its end. The total number of
// consumed decisions is recorded so the enumerator knows which positions
// can branch.
class ChoiceCursor {
 public:
  ChoiceCursor(const std::vector<std::int32_t>& prefix,
               std::vector<std::int32_t>& consumed_options)
      : prefix_(prefix), consumed_options_(consumed_options) {}

  // Returns the decision at the cursor, recording how many options the
  // decision point offers.
  std::size_t next(std::size_t num_options) {
    const std::size_t position = consumed_options_.size();
    consumed_options_.push_back(static_cast<std::int32_t>(num_options));
    if (position < prefix_.size()) {
      return static_cast<std::size_t>(prefix_[position]) % num_options;
    }
    return 0;
  }

 private:
  const std::vector<std::int32_t>& prefix_;
  std::vector<std::int32_t>& consumed_options_;
};

class ChoiceScheduler final : public StepScheduler {
 public:
  ChoiceScheduler(ChoiceCursor& cursor, const std::vector<Duration>& gaps)
      : cursor_(cursor), gaps_(gaps) {}

  Time next_step_time(ProcessId, std::optional<Time> prev,
                      std::int64_t) override {
    const Time base = prev ? *prev : Time(0);
    return base + gaps_[cursor_.next(gaps_.size())];
  }

 private:
  ChoiceCursor& cursor_;
  const std::vector<Duration>& gaps_;
};

class ChoiceDelay final : public DelayStrategy {
 public:
  ChoiceDelay(ChoiceCursor& cursor, const std::vector<Duration>& delays)
      : cursor_(cursor), delays_(delays) {}

  Duration delay(ProcessId, ProcessId, const Time&, MsgId) override {
    return delays_[cursor_.next(delays_.size())];
  }

 private:
  ChoiceCursor& cursor_;
  const std::vector<Duration>& delays_;
};

// Odometer increment over the consumed positions: bumps the last consumed
// position; on overflow resets it and carries left, never into the first
// `fixed` positions (the enumeration stays inside the subtree whose leading
// decisions are pinned). Returns false when that (sub)tree is exhausted.
bool advance(std::vector<std::int32_t>& prefix,
             const std::vector<std::int32_t>& consumed_options,
             std::size_t fixed) {
  prefix.resize(consumed_options.size(), 0);
  std::size_t at = consumed_options.size();
  while (at-- > fixed) {
    if (prefix[at] + 1 <
        consumed_options[at]) {
      ++prefix[at];
      prefix.resize(at + 1);
      return true;
    }
  }
  return false;
}

// Decision strings are canonical without trailing zeros: the cursor treats
// positions past the prefix end as 0, so [1] and [1,0] name the same
// schedule. Serial and subtree enumeration produce different spellings of
// the same winner; trimming makes worst_choices identical for any job
// count.
void canonicalize(std::vector<std::int32_t>& choices) {
  while (!choices.empty() && choices.back() == 0) choices.pop_back();
}

// The serial enumeration core, restricted to the subtree whose first
// `fixed` decisions are pinned by `start` and budgeted to max_runs runs.
// The full serial enumeration is the fixed=0, empty-start instance; the
// parallel path runs one instance per subtree.
ExhaustiveResult explore_subtree(const ProblemSpec& spec,
                                 const TimingConstraints& constraints,
                                 const MpmAlgorithmFactory& factory,
                                 const std::vector<Duration>& gap_choices,
                                 const std::vector<Duration>& delay_choices,
                                 std::vector<std::int32_t> prefix,
                                 std::size_t fixed, std::int64_t max_runs,
                                 obs::Observer* o) {
  ExhaustiveResult result;
  while (result.runs < max_runs) {
    if (o && o->exhaustive_runs) o->exhaustive_runs->inc();
    std::vector<std::int32_t> consumed;
    ChoiceCursor cursor(prefix, consumed);
    ChoiceScheduler scheduler(cursor, gap_choices);
    ChoiceDelay delays(cursor, delay_choices);

    MpmSimulator sim(spec, constraints, factory, scheduler, delays, nullptr,
                     o);
    const MpmRunResult run = sim.run();
    const Verdict verdict = verify(run.trace, spec, constraints, o);
    ++result.runs;

    if (!verdict.admissible || !verdict.solves || run.hit_limit) {
      result.all_admissible = result.all_admissible && verdict.admissible;
      result.all_solved = false;
      if (result.first_failure.empty()) {
        result.first_failure =
            !verdict.admissible
                ? "inadmissible: " + verdict.admissibility_violation
                : (run.hit_limit
                       ? "hit run limit"
                       : "sessions=" + std::to_string(verdict.sessions));
      }
    }
    if (result.runs == 1 || verdict.sessions < result.min_sessions)
      result.min_sessions = verdict.sessions;
    if (verdict.termination_time &&
        result.max_termination < *verdict.termination_time) {
      result.max_termination = *verdict.termination_time;
      result.worst_choices = prefix;
    }

    if (!advance(prefix, consumed, fixed)) {
      result.complete = true;
      break;
    }
  }
  canonicalize(result.worst_choices);
  return result;
}

// Journal codec for one subtree's aggregate (docs/robustness.md): every
// field the serial-order accounting consumes, exactly — the budgeted walk
// resumes from checkpointed subtrees byte-identically.
std::string encode_exhaustive(const ExhaustiveResult& r) {
  recovery::PayloadWriter w;
  w.put_bool("complete", r.complete);
  w.put_int("runs", r.runs);
  w.put_bool("all_solved", r.all_solved);
  w.put_bool("all_admissible", r.all_admissible);
  w.put_int("min_sessions", r.min_sessions);
  w.put("max_termination", ratio_to_text(r.max_termination));
  std::string choices;
  for (std::size_t i = 0; i < r.worst_choices.size(); ++i) {
    if (i) choices += ',';
    choices += std::to_string(r.worst_choices[i]);
  }
  w.put("worst_choices", choices);
  w.put("first_failure", r.first_failure);
  return w.str();
}

ExhaustiveResult decode_exhaustive(const std::string& payload) {
  ExhaustiveResult r;
  if (const auto failure = recovery::decode_task_failure(payload)) {
    // One budget unit spent on a subtree that never produced an aggregate:
    // visible to the fold (runs > 0) and named in the report.
    r.runs = 1;
    r.all_solved = false;
    r.first_failure = failure->to_string();
    return r;
  }
  const recovery::PayloadReader reader(payload);
  r.complete = reader.get_bool("complete", false);
  r.runs = reader.get_int("runs", 0);
  r.all_solved = reader.get_bool("all_solved", true);
  r.all_admissible = reader.get_bool("all_admissible", true);
  r.min_sessions = reader.get_int("min_sessions", 0);
  if (const auto t = ratio_from_text(reader.get("max_termination")))
    r.max_termination = *t;
  const std::string choices = reader.get("worst_choices");
  for (std::size_t at = 0; at < choices.size();) {
    std::size_t end = choices.find(',', at);
    if (end == std::string::npos) end = choices.size();
    r.worst_choices.push_back(
        static_cast<std::int32_t>(std::atoi(choices.substr(at, end - at).c_str())));
    at = end + 1;
  }
  r.first_failure = reader.get("first_failure");
  return r;
}

// Appends a (whole) subtree result to the serial-order accumulator.
void fold_subtree(ExhaustiveResult& acc, const ExhaustiveResult& sub) {
  if (sub.runs == 0) return;
  acc.all_admissible = acc.all_admissible && sub.all_admissible;
  acc.all_solved = acc.all_solved && sub.all_solved;
  if (acc.first_failure.empty()) acc.first_failure = sub.first_failure;
  if (acc.runs == 0 || sub.min_sessions < acc.min_sessions)
    acc.min_sessions = sub.min_sessions;
  // Strict <: on ties the earlier subtree's winner stands, exactly like the
  // serial loop's strict update.
  if (acc.max_termination < sub.max_termination) {
    acc.max_termination = sub.max_termination;
    acc.worst_choices = sub.worst_choices;
  }
  acc.runs += sub.runs;
}

}  // namespace

ExhaustiveResult explore_mpm(const ProblemSpec& spec,
                             const TimingConstraints& constraints,
                             const MpmAlgorithmFactory& factory,
                             const std::vector<Duration>& gap_choices,
                             const std::vector<Duration>& delay_choices,
                             std::int64_t max_runs) {
  if (gap_choices.empty() || delay_choices.empty()) {
    std::fprintf(stderr, "explore_mpm fatal: empty choice sets\n");
    std::abort();
  }

  obs::Observer* const parent = obs::default_observer();
  obs::Span span(parent ? parent->trace : nullptr, "adversary.explore_mpm",
                 "adversary");

  // The first n decisions of every run are the initial gap choices (one per
  // process, consumed unconditionally before the event loop), so the first
  // K = min(2, n) positions always branch over the full gap set: pinning
  // them partitions the schedule tree into B = |gaps|^K independent
  // subtrees. Each subtree is explored speculatively with the full budget;
  // the serial-order walk below then reconstructs the exact serial result —
  // bit-identical aggregates for every job count.
  const std::size_t gaps = gap_choices.size();
  const std::size_t fan_out =
      spec.n >= 1 ? static_cast<std::size_t>(spec.n < 2 ? spec.n : 2) : 0;
  std::size_t subtrees = 1;
  for (std::size_t i = 0; i < fan_out; ++i) subtrees *= gaps;

  ExhaustiveResult result;
  recovery::Supervisor* const sup = recovery::current_for_sweep();
  // A supervised walk always takes the subtree decomposition (any job
  // count): subtrees are the checkpoint granularity, and the decomposition
  // is already proven bit-identical to the serial enumeration.
  const bool decompose =
      subtrees > 1 && max_runs >= 1 &&
      (sup != nullptr ||
       (exec::default_jobs() > 1 && !exec::inside_pool_worker()));
  if (!decompose) {
    if (sup != nullptr) {
      recovery::supervised_sweep(
          "explore_mpm_serial", 1,
          [&](std::size_t) {
            return encode_exhaustive(
                explore_subtree(spec, constraints, factory, gap_choices,
                                delay_choices, {}, 0, max_runs, parent));
          },
          [&](std::size_t, const std::string& payload) {
            result = decode_exhaustive(payload);
          });
    } else {
      result = explore_subtree(spec, constraints, factory, gap_choices,
                               delay_choices, {}, 0, max_runs, parent);
    }
  } else {
    auto digits_of = [&](std::size_t b) {
      std::vector<std::int32_t> digits(fan_out, 0);
      for (std::size_t at = fan_out; at-- > 0;) {
        digits[at] = static_cast<std::int32_t>(b % gaps);
        b /= gaps;
      }
      return digits;
    };

    std::deque<obs::ObservationShard> shards;
    for (std::size_t b = 0; b < subtrees; ++b) shards.emplace_back(parent);
    std::vector<ExhaustiveResult> subs(subtrees);
    recovery::supervised_sweep(
        "explore_mpm", subtrees,
        [&](std::size_t b) {
          obs::Observer* const o = shards[b].observer();
          obs::ProfileScope exec_scope(o ? o->profiler : nullptr,
                                       obs::ProfilePhase::kExecTask);
          return encode_exhaustive(explore_subtree(
              spec, constraints, factory, gap_choices, delay_choices,
              digits_of(b), fan_out, max_runs, o));
        },
        [&](std::size_t b, const std::string& payload) {
          shards[b].merge_into_parent();
          subs[b] = decode_exhaustive(payload);
        });

    // A drained interrupt leaves subtrees unexplored; return the partial
    // (complete=false, runs=0) aggregate — the tools never print it.
    if (recovery::run_interrupted()) return result;

    // Serial-order accounting: spend the budget subtree by subtree. A
    // subtree the budget cuts into is re-run serially with exactly the
    // remaining budget so the truncation point (and with it every
    // aggregate) matches the serial enumeration run for run.
    std::int64_t remaining = max_runs;
    bool exhausted_all = true;
    for (std::size_t b = 0; b < subtrees; ++b) {
      if (remaining <= 0) {
        exhausted_all = false;
        continue;
      }
      if (subs[b].runs <= remaining) {
        fold_subtree(result, subs[b]);
        remaining -= subs[b].runs;
        if (!subs[b].complete) exhausted_all = false;
      } else {
        const ExhaustiveResult partial = explore_subtree(
            spec, constraints, factory, gap_choices, delay_choices,
            digits_of(b), fan_out, remaining, parent);
        fold_subtree(result, partial);
        remaining = 0;
        exhausted_all = false;
      }
    }
    result.complete = exhausted_all;
  }

  if (parent && parent->trace)
    span.set_args(obs::args_object(
        {obs::arg_int("runs", result.runs),
         obs::arg_int("complete", result.complete ? 1 : 0),
         obs::arg_int("min_sessions", result.min_sessions)}));
  return result;
}

}  // namespace sesp
