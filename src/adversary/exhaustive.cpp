#include "adversary/exhaustive.hpp"

#include <cstdio>
#include <cstdlib>

#include "mpm/mpm_simulator.hpp"
#include "obs/observer.hpp"
#include "session/verifier.hpp"

namespace sesp {

namespace {

// Scheduler / delay strategy driven by a shared choice cursor. Each call
// consumes one decision: an index into the option set, read from the
// explicit prefix or defaulting to 0 past its end. The total number of
// consumed decisions is recorded so the enumerator knows which positions
// can branch.
class ChoiceCursor {
 public:
  ChoiceCursor(const std::vector<std::int32_t>& prefix,
               std::vector<std::int32_t>& consumed_options)
      : prefix_(prefix), consumed_options_(consumed_options) {}

  // Returns the decision at the cursor, recording how many options the
  // decision point offers.
  std::size_t next(std::size_t num_options) {
    const std::size_t position = consumed_options_.size();
    consumed_options_.push_back(static_cast<std::int32_t>(num_options));
    if (position < prefix_.size()) {
      return static_cast<std::size_t>(prefix_[position]) % num_options;
    }
    return 0;
  }

 private:
  const std::vector<std::int32_t>& prefix_;
  std::vector<std::int32_t>& consumed_options_;
};

class ChoiceScheduler final : public StepScheduler {
 public:
  ChoiceScheduler(ChoiceCursor& cursor, const std::vector<Duration>& gaps)
      : cursor_(cursor), gaps_(gaps) {}

  Time next_step_time(ProcessId, std::optional<Time> prev,
                      std::int64_t) override {
    const Time base = prev ? *prev : Time(0);
    return base + gaps_[cursor_.next(gaps_.size())];
  }

 private:
  ChoiceCursor& cursor_;
  const std::vector<Duration>& gaps_;
};

class ChoiceDelay final : public DelayStrategy {
 public:
  ChoiceDelay(ChoiceCursor& cursor, const std::vector<Duration>& delays)
      : cursor_(cursor), delays_(delays) {}

  Duration delay(ProcessId, ProcessId, const Time&, MsgId) override {
    return delays_[cursor_.next(delays_.size())];
  }

 private:
  ChoiceCursor& cursor_;
  const std::vector<Duration>& delays_;
};

// Odometer increment over the consumed positions: bumps the last consumed
// position; on overflow resets it and carries left. Returns false when the
// whole (reachable) tree has been enumerated.
bool advance(std::vector<std::int32_t>& prefix,
             const std::vector<std::int32_t>& consumed_options) {
  prefix.resize(consumed_options.size(), 0);
  std::size_t at = consumed_options.size();
  while (at-- > 0) {
    if (prefix[at] + 1 <
        consumed_options[at]) {
      ++prefix[at];
      prefix.resize(at + 1);
      return true;
    }
  }
  return false;
}

}  // namespace

ExhaustiveResult explore_mpm(const ProblemSpec& spec,
                             const TimingConstraints& constraints,
                             const MpmAlgorithmFactory& factory,
                             const std::vector<Duration>& gap_choices,
                             const std::vector<Duration>& delay_choices,
                             std::int64_t max_runs) {
  if (gap_choices.empty() || delay_choices.empty()) {
    std::fprintf(stderr, "explore_mpm fatal: empty choice sets\n");
    std::abort();
  }

  ExhaustiveResult result;
  std::vector<std::int32_t> prefix;  // explicit decisions for the next run

  obs::Observer* const o = obs::default_observer();
  obs::Span span(o ? o->trace : nullptr, "adversary.explore_mpm", "adversary");

  while (result.runs < max_runs) {
    if (o && o->exhaustive_runs) o->exhaustive_runs->inc();
    std::vector<std::int32_t> consumed;
    ChoiceCursor cursor(prefix, consumed);
    ChoiceScheduler scheduler(cursor, gap_choices);
    ChoiceDelay delays(cursor, delay_choices);

    MpmSimulator sim(spec, constraints, factory, scheduler, delays);
    const MpmRunResult run = sim.run();
    const Verdict verdict = verify(run.trace, spec, constraints);
    ++result.runs;

    if (!verdict.admissible || !verdict.solves || run.hit_limit) {
      result.all_admissible = result.all_admissible && verdict.admissible;
      result.all_solved = false;
      if (result.first_failure.empty()) {
        result.first_failure =
            !verdict.admissible
                ? "inadmissible: " + verdict.admissibility_violation
                : (run.hit_limit
                       ? "hit run limit"
                       : "sessions=" + std::to_string(verdict.sessions));
      }
    }
    if (result.runs == 1 || verdict.sessions < result.min_sessions)
      result.min_sessions = verdict.sessions;
    if (verdict.termination_time &&
        result.max_termination < *verdict.termination_time) {
      result.max_termination = *verdict.termination_time;
      result.worst_choices = prefix;
    }

    if (!advance(prefix, consumed)) {
      result.complete = true;
      break;
    }
  }
  if (o && o->trace)
    span.set_args(obs::args_object(
        {obs::arg_int("runs", result.runs),
         obs::arg_int("complete", result.complete ? 1 : 0),
         obs::arg_int("min_sessions", result.min_sessions)}));
  return result;
}

}  // namespace sesp
