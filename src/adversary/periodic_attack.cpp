#include "adversary/periodic_attack.hpp"

#include <algorithm>
#include <vector>

#include "adversary/delay_strategies.hpp"
#include "adversary/step_schedulers.hpp"
#include "session/session_counter.hpp"
#include "sim/experiment.hpp"

namespace sesp {

PeriodicAttackResult attack_periodic_mpm(const ProblemSpec& spec,
                                         const Duration& fast_period,
                                         const Duration& d2,
                                         const MpmAlgorithmFactory& factory) {
  PeriodicAttackResult result;
  if (!fast_period.is_positive() || !d2.is_positive()) {
    result.failure = "need positive fast period and d2";
    return result;
  }

  // Probe: uniform periods, all delays pinned to d2.
  const auto probe_constraints = TimingConstraints::periodic(
      std::vector<Duration>(static_cast<std::size_t>(spec.n), fast_period),
      d2);
  {
    FixedPeriodScheduler sched(spec.n, fast_period);
    FixedDelay delays(d2);
    const MpmOutcome probe =
        run_mpm_once(spec, probe_constraints, factory, sched, delays);
    if (!probe.run.completed) {
      result.failure = "probe run did not terminate";
      return result;
    }
    if (!probe.verdict.admissible) {
      result.failure =
          "probe run inadmissible: " + probe.verdict.admissibility_violation;
      return result;
    }
    result.ran = true;
    result.probe_termination = *probe.verdict.termination_time;

    // Does any port process idle strictly before d2? (With delays == d2 it
    // cannot have heard anything by then.)
    for (const StepRecord& st : probe.run.trace.steps()) {
      if (st.is_compute() && st.idle_after && st.process != 0 &&
          st.time < d2) {
        result.idles_before_d2 = true;
        break;
      }
    }
  }
  if (!result.idles_before_d2) return result;  // nothing to exploit

  // Counterexample: slow process 0 past everyone's probe idle times. By
  // indistinguishability the fast processes idle at the same times having
  // heard nothing; process 0 contributes no (or too few) port steps.
  result.slow_period =
      max(result.probe_termination, d2) * Ratio(2) + Duration(1);
  std::vector<Duration> periods(static_cast<std::size_t>(spec.n),
                                fast_period);
  periods[0] = result.slow_period;
  const auto constraints = TimingConstraints::periodic(periods, d2);
  SlowOneScheduler sched(spec.n, fast_period, 0, result.slow_period);
  FixedDelay delays(d2);
  const MpmOutcome out =
      run_mpm_once(spec, constraints, factory, sched, delays);
  result.constructed = true;
  result.sessions = out.verdict.sessions;
  result.admissibility =
      check_admissible(out.run.trace, constraints);
  result.certificate =
      result.admissibility.admissible && result.sessions < spec.s;
  return result;
}

}  // namespace sesp
