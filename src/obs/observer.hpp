#pragma once

// The nullable observability hook threaded through the simulators,
// verifier, experiment driver and adversaries — the same pattern as
// faults/FaultInjector: run loops accept an `obs::Observer*`, a null
// pointer means "not observed" and every hook collapses to one branch, so
// the zero-observer hot path stays allocation-free.
//
// An Observer bundles a MetricsRegistry (instrument handles are resolved by
// name once, at construction) and an optional TraceSink. Either half may be
// null: metrics-only observation (the bench perf records) skips all span
// bookkeeping; trace-only observation skips the counters.
//
// A process-wide *default* observer (null unless installed) lets the layers
// that own no observer pointer — the worst-case/degradation drivers, the
// retimers, the exhaustive enumerator, benches via BenchRecorder — pick up
// instrumentation without widening every signature. Simulators resolve
// explicit-or-default once per run.

#include <cstdint>
#include <optional>
#include <string>

#include "faults/sim_error.hpp"
#include "model/ids.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "util/ratio.hpp"

namespace sesp::obs {

struct Observer {
  Observer() = default;
  // Resolves the canonical instrument set from `metrics` (may be null).
  explicit Observer(MetricsRegistry* metrics, TraceSink* trace = nullptr);

  MetricsRegistry* metrics = nullptr;
  TraceSink* trace = nullptr;
  // Optional phase profiler (--profile, BenchRecorder); null = unprofiled.
  // Hot loops hoist `o ? o->profiler : nullptr` once per run.
  Profiler* profiler = nullptr;

  // Pre-resolved hot-path instruments; all null iff metrics is null. Names
  // are documented in docs/observability.md.
  Counter* runs = nullptr;                // sim.runs
  Counter* steps = nullptr;               // sim.steps
  Counter* messages_sent = nullptr;       // sim.messages.sent
  Counter* messages_delivered = nullptr;  // sim.messages.delivered
  Counter* messages_dropped = nullptr;    // sim.messages.dropped
  Counter* shared_reads = nullptr;        // sim.shared.reads
  Counter* shared_writes = nullptr;       // sim.shared.writes
  Counter* errors = nullptr;              // sim.errors
  Counter* faults_injected = nullptr;     // faults.injected
  Counter* sessions = nullptr;            // verify.sessions
  Counter* verified_runs = nullptr;       // verify.runs
  Counter* retimer_iterations = nullptr;  // adversary.retimer.iterations
  Counter* exhaustive_runs = nullptr;     // adversary.exhaustive.runs
  Gauge* pending_depth = nullptr;         // sim.pending.depth
  Gauge* event_queue_depth = nullptr;     // sim.event_queue.depth
  Histogram* step_margin = nullptr;       // sim.watchdog.step_margin
  Histogram* time_margin = nullptr;       // sim.watchdog.time_margin
  Histogram* termination_time = nullptr;  // verify.termination_time
};

// Process-wide default observer; null until installed. Returns the previous
// value so scopes can save/restore (see BenchRecorder). Install/uninstall
// from the main thread only; parallel sweep tasks never touch the default —
// they observe through task-private ObservationShards.
Observer* default_observer() noexcept;
Observer* set_default_observer(Observer* observer) noexcept;

// Task-private observation for parallel sweeps (docs/parallelism.md).
//
// A MetricsRegistry/TraceSink pair is single-writer, so sweep layers give
// every *task* (not every worker) its own shard: the shard owns a private
// registry and sink mirroring whichever halves the parent observer has, and
// observer() hands the task an Observer resolved against them. After the
// barrier the driver calls merge_into_parent() on each shard in task-index
// order — the only ordering that makes the merged metrics and trace
// bit-identical for every worker count, including the serial path, which
// uses the same shards so jobs=1 and jobs=N run identical code.
//
// With a null parent, observer() is null and the whole shard is inert —
// unobserved sweeps stay allocation-free.
class ObservationShard {
 public:
  explicit ObservationShard(Observer* parent);

  // Observer holds pointers into our own members; pin the object (store
  // shards in a std::deque, never a reallocating vector).
  ObservationShard(const ObservationShard&) = delete;
  ObservationShard& operator=(const ObservationShard&) = delete;

  // Null iff the parent was null.
  Observer* observer() noexcept { return parent_ ? &observer_ : nullptr; }

  // Folds the shard into the parent's registry/sink. Call from the thread
  // that owns the parent, after the shard's task completed, in task order.
  void merge_into_parent();

 private:
  Observer* parent_ = nullptr;
  std::optional<MetricsRegistry> metrics_;
  std::optional<TraceSink> trace_;
  std::optional<Profiler> profiler_;
  Observer observer_;
};

// Explicit-or-default resolution used at the top of every run loop.
inline Observer* resolve(Observer* explicit_observer) noexcept {
  return explicit_observer ? explicit_observer : default_observer();
}

// --- Hook helpers (all tolerate a null observer) ---------------------------

// Every injected fault becomes a "fault.<kind>" instant trace event and a
// faults.injected count.
void observe_fault(Observer* obs, std::string_view kind, ProcessId process,
                   const Time& time);

// Every SimError becomes an "error.<code>" instant trace event and a
// sim.errors count.
void observe_error(Observer* obs, const SimError& error);

// Watchdog headroom at end of run: the unused fraction of the step and
// model-time budgets, recorded as exact ratios in [0, 1].
void observe_watchdog_margins(Observer* obs, std::int64_t steps_used,
                              std::int64_t max_steps, const Time& end_time,
                              const Time& max_time);

}  // namespace sesp::obs
