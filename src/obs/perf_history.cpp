#include "obs/perf_history.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/json.hpp"

namespace sesp::obs {

namespace {

// Folds a sesp-bench/2 "profile" object ({phase: {count, total_ns, ...}})
// down to the two trajectory-relevant numbers per phase; phases that never
// fired ({"count": 0}) are dropped.
std::vector<PerfPhase> fold_profile(const JsonValue* profile) {
  std::vector<PerfPhase> out;
  if (!profile || !profile->is_object()) return out;
  for (const auto& [name, stat] : profile->object) {
    if (!stat.is_object()) continue;
    const JsonValue* count = stat.find("count");
    if (!count || !count->is_number() || count->as_int64() <= 0) continue;
    PerfPhase phase;
    phase.name = name;
    phase.count = count->as_int64();
    const JsonValue* total = stat.find("total_ns");
    if (total && total->is_number()) phase.total_ns = total->as_int64();
    out.push_back(std::move(phase));
  }
  return out;
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n == 0) return 0.0;
  return n % 2 == 1 ? xs[n / 2] : (xs[n / 2 - 1] + xs[n / 2]) / 2.0;
}

}  // namespace

bool entries_from_results(const std::string& results_text,
                          const std::string& commit,
                          std::int64_t recorded_unix_ms, bool quick,
                          std::vector<PerfEntry>* out, std::string* error) {
  const std::optional<JsonValue> doc = parse_json(results_text, error);
  if (!doc) return false;
  const JsonValue* schema = doc->find("schema");
  if (!schema || !schema->is_string() ||
      schema->string != "sesp-bench-results/1") {
    if (error) *error = "not a sesp-bench-results/1 document";
    return false;
  }
  const JsonValue* benches = doc->find("benches");
  if (!benches || !benches->is_array()) {
    if (error) *error = "missing \"benches\" array";
    return false;
  }
  for (const JsonValue& record : benches->array) {
    const JsonValue* bench = record.find("bench");
    const JsonValue* ok = record.find("ok");
    const JsonValue* wall = record.find("wall_seconds");
    const JsonValue* steps = record.find("steps");
    const JsonValue* rate = record.find("steps_per_sec");
    const JsonValue* runs = record.find("runs");
    if (!bench || !bench->is_string() || !ok || !ok->is_bool()) continue;
    PerfEntry e;
    e.bench = bench->string;
    e.commit = commit;
    e.recorded_unix_ms = recorded_unix_ms;
    e.quick = quick;
    e.ok = ok->boolean;
    if (wall && wall->is_number()) e.wall_seconds = wall->number;
    if (steps && steps->is_number()) e.steps = steps->as_int64();
    if (rate && rate->is_number()) e.steps_per_sec = rate->number;
    if (runs && runs->is_number()) e.runs = runs->as_int64();
    e.profile = fold_profile(record.find("profile"));
    out->push_back(std::move(e));
  }
  return true;
}

std::string render_perf_entry(const PerfEntry& entry) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "sesp-perf/1");
  w.field("bench", entry.bench);
  w.field("commit", entry.commit);
  w.field("recorded_unix_ms", entry.recorded_unix_ms);
  w.field("quick", entry.quick);
  w.field("ok", entry.ok);
  w.field("wall_seconds", entry.wall_seconds);
  w.field("steps", entry.steps);
  w.field("steps_per_sec", entry.steps_per_sec);
  w.field("runs", entry.runs);
  w.key("profile");
  w.begin_object();
  for (const PerfPhase& phase : entry.profile) {
    w.key(phase.name);
    w.begin_object();
    w.field("count", phase.count);
    w.field("total_ns", phase.total_ns);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return os.str();
}

bool parse_perf_entry(const std::string& line, PerfEntry* out,
                      std::string* error) {
  const std::optional<JsonValue> doc = parse_json(line, error);
  if (!doc) return false;
  const JsonValue* schema = doc->find("schema");
  if (!schema || !schema->is_string() || schema->string != "sesp-perf/1") {
    if (error) *error = "not a sesp-perf/1 entry";
    return false;
  }
  const JsonValue* bench = doc->find("bench");
  const JsonValue* rate = doc->find("steps_per_sec");
  if (!bench || !bench->is_string() || !rate || !rate->is_number()) {
    if (error) *error = "entry missing bench/steps_per_sec";
    return false;
  }
  PerfEntry e;
  e.bench = bench->string;
  e.steps_per_sec = rate->number;
  if (const JsonValue* v = doc->find("commit"); v && v->is_string())
    e.commit = v->string;
  if (const JsonValue* v = doc->find("recorded_unix_ms");
      v && v->is_number())
    e.recorded_unix_ms = v->as_int64();
  if (const JsonValue* v = doc->find("quick"); v && v->is_bool())
    e.quick = v->boolean;
  if (const JsonValue* v = doc->find("ok"); v && v->is_bool())
    e.ok = v->boolean;
  if (const JsonValue* v = doc->find("wall_seconds"); v && v->is_number())
    e.wall_seconds = v->number;
  if (const JsonValue* v = doc->find("steps"); v && v->is_number())
    e.steps = v->as_int64();
  if (const JsonValue* v = doc->find("runs"); v && v->is_number())
    e.runs = v->as_int64();
  e.profile = fold_profile(doc->find("profile"));
  *out = std::move(e);
  return true;
}

std::vector<PerfEntry> parse_perf_ledger(const std::string& text,
                                         std::int64_t* skipped) {
  std::vector<PerfEntry> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    PerfEntry entry;
    std::string error;
    if (parse_perf_entry(line, &entry, &error))
      out.push_back(std::move(entry));
    else if (skipped)
      ++*skipped;
  }
  return out;
}

std::vector<PerfCheck> check_history(const std::vector<PerfEntry>& entries,
                                     const PerfCheckOptions& opt) {
  // Series keyed by (bench, quick) in first-seen order.
  std::vector<std::pair<std::pair<std::string, bool>,
                        std::vector<const PerfEntry*>>> series;
  for (const PerfEntry& e : entries) {
    const auto key = std::make_pair(e.bench, e.quick);
    auto it = std::find_if(series.begin(), series.end(),
                           [&](const auto& s) { return s.first == key; });
    if (it == series.end()) {
      series.push_back({key, {}});
      it = series.end() - 1;
    }
    it->second.push_back(&e);
  }

  std::vector<PerfCheck> out;
  for (const auto& [key, line] : series) {
    const PerfEntry& current = *line.back();
    PerfCheck check;
    check.bench = key.first;
    check.quick = key.second;
    check.current = current.steps_per_sec;

    char buf[256];
    if (!current.ok) {
      check.regression = true;
      check.note = check.bench + ": newest entry reports ok=false";
      out.push_back(std::move(check));
      continue;
    }

    // Rolling baseline: up to `window` most recent ok priors.
    std::vector<double> priors;
    for (std::size_t i = line.size() - 1; i-- > 0;) {
      if (!line[i]->ok) continue;
      priors.push_back(line[i]->steps_per_sec);
      if (static_cast<int>(priors.size()) >= opt.window) break;
    }
    check.samples = static_cast<int>(priors.size());
    if (check.samples < opt.min_samples) {
      // A candidate whose quick flag differs from every prior run of the
      // same bench means the recording mode flipped: report "no baseline"
      // by name instead of the generic short-series note, so a flipped
      // flag can't read like a healthy gated pass.
      std::size_t other_flavor = 0;
      for (const auto& s : series)
        if (s.first.first == check.bench && s.first.second != check.quick)
          other_flavor = s.second.size();
      if (check.samples == 0 && other_flavor > 0) {
        std::snprintf(buf, sizeof(buf),
                      "%s%s: no baseline — all %zu prior entr%s for this "
                      "bench %s quick=%s; record matching runs to gate — "
                      "pass",
                      check.bench.c_str(), check.quick ? " [quick]" : "",
                      other_flavor, other_flavor == 1 ? "y" : "ies",
                      other_flavor == 1 ? "is" : "are",
                      check.quick ? "false" : "true");
      } else {
        std::snprintf(buf, sizeof(buf),
                      "%s: only %d prior sample(s); gate needs %d — pass",
                      check.bench.c_str(), check.samples, opt.min_samples);
      }
      check.note = buf;
      out.push_back(std::move(check));
      continue;
    }

    const double base = median(priors);
    check.baseline = base;
    std::vector<double> deviations;
    deviations.reserve(priors.size());
    for (const double x : priors) deviations.push_back(std::fabs(x - base));
    const double mad = median(deviations);
    check.allowed_drop =
        base > 0.0 ? std::max(opt.min_drop, opt.mad_mult * mad / base)
                   : opt.min_drop;
    const double floor = base * (1.0 - check.allowed_drop);
    check.regression = check.current < floor;
    std::snprintf(buf, sizeof(buf),
                  "%s%s: %.0f steps/s vs baseline %.0f (n=%d, "
                  "allowed drop %.0f%%) — %s",
                  check.bench.c_str(), check.quick ? " [quick]" : "",
                  check.current, base, check.samples,
                  check.allowed_drop * 100.0,
                  check.regression ? "REGRESSION" : "ok");
    check.note = buf;
    out.push_back(std::move(check));
  }
  return out;
}

}  // namespace sesp::obs
