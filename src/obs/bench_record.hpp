#pragma once

// Machine-readable perf records for the bench binaries. Every bench_*
// constructs a BenchRecorder at the top of main(); it installs a
// process-wide default observer (metrics only — no trace, so thousands of
// runs cost a handful of counters) and, at finish(), writes
// `BENCH_<name>.json` next to the ASCII table output:
//
//   {
//     "schema": "sesp-bench/2",
//     "bench": "table1_sync",
//     "ok": true,                  // the binary's exit verdict
//     "wall_seconds": 0.42,
//     "steps": 1234567,            // sim.steps over the whole bench
//     "steps_per_sec": 2.9e6,      // the perf-trajectory figure
//     "runs": 96,
//     "rows": [ {"cell": ..., "measure": "time"|"rounds",
//                "lower": "3/2", "measured": "3/2", "upper": "3/2",
//                "lower_approx": 1.5, ..., "solved": true,
//                "admissible": true, "upper_ok": true,
//                "lower_reached": true}, ... ],
//     "notes": { ... },            // bench-specific scalars
//     "metrics": { ... },          // full MetricsRegistry dump
//     "profile": { ... }           // per-phase Profiler dump (/2 only)
//   }
//
// The output directory is the working directory unless SESP_BENCH_JSON_DIR
// is set. scripts/reproduce.sh and CI aggregate the records with
// sesp_bench_merge and derive the final verdict from the structured ok /
// solved / admissible / upper_ok fields instead of grepping stdout.
//
// Schema history: sesp-bench/1 had no "profile" section; the validator
// accepts both (sesp_perf and old ledger entries keep parsing), new records
// are always written as /2. SESP_BENCH_PROFILE=0 disables the profiler but
// the (then all-zero) profile section is still emitted.

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "util/ratio.hpp"

namespace sesp::obs {

// One bound-comparison row (mirror of analysis/BoundRow, kept here so the
// obs layer does not depend on the analysis layer).
struct PerfRow {
  std::string cell;
  std::string measure;  // "time" or "rounds"
  Ratio lower;
  Ratio measured;
  Ratio upper;
  bool solved = false;
  bool admissible = false;
  bool upper_ok = false;
  bool lower_reached = false;
};

class BenchRecorder {
 public:
  // Starts the wall clock and installs this recorder's Observer as the
  // process default (saving the previous one).
  explicit BenchRecorder(std::string name);
  // Restores the previous default observer; writes the record if finish()
  // was never called (ok=false — an early exit is a failure).
  ~BenchRecorder();

  BenchRecorder(const BenchRecorder&) = delete;
  BenchRecorder& operator=(const BenchRecorder&) = delete;

  MetricsRegistry& metrics() noexcept { return metrics_; }
  Observer& observer() noexcept { return observer_; }
  Profiler& profiler() noexcept { return profiler_; }

  void add_row(PerfRow row);
  // Bench-specific scalar facts ("overhead_percent": 1.3, "mode": "quick").
  void note(const std::string& key, double value);
  void note(const std::string& key, std::int64_t value);
  void note(const std::string& key, const std::string& value);

  // Writes BENCH_<name>.json and returns the process exit status (0 iff
  // ok). Idempotent: the first call wins — both for the record on disk and
  // for the status later calls return.
  int finish(bool ok);

  // The record text exactly as written (for tests).
  std::string render(bool ok) const;

 private:
  std::string output_path() const;

  std::string name_;
  MetricsRegistry metrics_;
  Profiler profiler_;
  Observer observer_;
  Observer* previous_default_ = nullptr;
  std::chrono::steady_clock::time_point start_;
  std::vector<PerfRow> rows_;
  // Insertion-ordered typed notes, emitted through the one JsonWriter pass
  // in render() — never spliced into the text afterwards.
  struct Note {
    enum class Kind : std::uint8_t { kDouble, kInt, kString };
    std::string key;
    Kind kind = Kind::kDouble;
    double number = 0.0;
    std::int64_t integer = 0;
    std::string text;
  };
  std::vector<Note> notes_;
  bool finished_ = false;
  bool first_ok_ = false;
};

// --- Aggregation (sesp_bench_merge, reproduce.sh, CI) -----------------------

struct BenchAggregate {
  std::int64_t records = 0;
  std::int64_t failed = 0;        // records with "ok": false
  std::int64_t malformed = 0;     // unparseable / wrong schema
  std::int64_t truncated = 0;     // torn by a killed writer; skipped
  std::vector<std::string> failures;  // names (or filenames) of the above
  std::vector<std::string> skipped;   // filenames of truncated records
  std::string results_json;       // the merged sesp-bench-results/1 document

  // Truncated records are skipped with a warning, not failed: a bench
  // killed mid-write (crash, Ctrl-C) must not fail the whole merge. The
  // tool reports them with its own distinct exit code.
  bool all_ok() const {
    return records > 0 && failed == 0 && malformed == 0;
  }
};

// Merges BENCH_*.json texts (name -> file contents) into one
// sesp-bench-results/1 document; every record is schema-validated and the
// verdict is derived from the structured fields.
BenchAggregate aggregate_bench_records(
    const std::vector<std::pair<std::string, std::string>>& named_texts);

// Schema check used by the aggregator and obs_test: returns true iff `text`
// parses as a valid sesp-bench/1 or /2 record; fills *error otherwise.
bool validate_bench_record(const std::string& text, std::string* error);

// Three-way classification behind the aggregator: a record whose JSON parse
// fails exactly at the end of its (whitespace-trimmed) text was torn by a
// killed writer — recoverable by rerunning the bench — while a mid-text
// parse failure or a schema violation is malformed.
enum class BenchRecordCheck { kValid, kTruncated, kMalformed };
BenchRecordCheck classify_bench_record(const std::string& text,
                                       std::string* error);

}  // namespace sesp::obs
