#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "obs/json.hpp"

namespace sesp::obs {

const char* profile_phase_name(ProfilePhase phase) noexcept {
  switch (phase) {
    case ProfilePhase::kEventQueuePop: return "sim.queue_pop";
    case ProfilePhase::kDeliver: return "sim.deliver";
    case ProfilePhase::kProcessStep: return "sim.step";
    case ProfilePhase::kSchedule: return "sim.schedule";
    case ProfilePhase::kAdmissibility: return "verify.admissibility";
    case ProfilePhase::kSessionCount: return "verify.count";
    case ProfilePhase::kExecTask: return "exec.task";
    case ProfilePhase::kShardGather: return "shard.gather";
    case ProfilePhase::kServeRequest: return "serve.request";
    case ProfilePhase::kServeExec: return "serve.exec";
    case ProfilePhase::kCount: break;
  }
  return "unknown";
}

void PhaseStat::record(std::int64_t dur_ns) noexcept {
  if (count == 0 || dur_ns < min_ns) min_ns = dur_ns;
  if (count == 0 || dur_ns > max_ns) max_ns = dur_ns;
  ++count;
  total_ns += dur_ns;
  ring[static_cast<std::size_t>(ring_next)] = dur_ns;
  ring_next = (ring_next + 1) % kRecentSamples;
  if (ring_size < kRecentSamples) ++ring_size;
}

std::array<std::int64_t, PhaseStat::kRecentSamples> PhaseStat::recent()
    const noexcept {
  std::array<std::int64_t, kRecentSamples> out{};
  const std::int32_t start =
      ring_size < kRecentSamples ? 0 : ring_next;  // oldest sample
  for (std::int32_t i = 0; i < ring_size; ++i)
    out[static_cast<std::size_t>(i)] =
        ring[static_cast<std::size_t>((start + i) % kRecentSamples)];
  return out;
}

void PhaseStat::merge_from(const PhaseStat& other) noexcept {
  if (other.count == 0) return;
  if (count == 0 || other.min_ns < min_ns) min_ns = other.min_ns;
  if (count == 0 || other.max_ns > max_ns) max_ns = other.max_ns;
  count += other.count;
  total_ns += other.total_ns;
  const auto samples = other.recent();
  for (std::int32_t i = 0; i < other.ring_size; ++i) {
    ring[static_cast<std::size_t>(ring_next)] =
        samples[static_cast<std::size_t>(i)];
    ring_next = (ring_next + 1) % kRecentSamples;
    if (ring_size < kRecentSamples) ++ring_size;
  }
}

bool Profiler::empty() const noexcept {
  for (const PhaseStat& s : stats_)
    if (s.count > 0) return false;
  return true;
}

std::int64_t Profiler::total_ns() const noexcept {
  std::int64_t total = 0;
  for (const PhaseStat& s : stats_) total += s.total_ns;
  return total;
}

void Profiler::merge_from(const Profiler& other) noexcept {
  for (int p = 0; p < kProfilePhases; ++p)
    stats_[static_cast<std::size_t>(p)].merge_from(
        other.stats_[static_cast<std::size_t>(p)]);
}

void Profiler::write_json(JsonWriter& w) const {
  w.begin_object();
  for (int p = 0; p < kProfilePhases; ++p) {
    const PhaseStat& s = stats_[static_cast<std::size_t>(p)];
    w.key(profile_phase_name(static_cast<ProfilePhase>(p)));
    w.begin_object();
    w.field("count", s.count);
    if (s.count > 0) {
      w.field("total_ns", s.total_ns);
      w.field("min_ns", s.min_ns);
      w.field("max_ns", s.max_ns);
      w.field("mean_ns",
              static_cast<double>(s.total_ns) / static_cast<double>(s.count));
      w.key("recent_ns");
      w.begin_array();
      const auto samples = s.recent();
      for (std::int32_t i = 0; i < s.ring_size; ++i)
        w.value(samples[static_cast<std::size_t>(i)]);
      w.end_array();
    }
    w.end_object();
  }
  w.end_object();
}

std::string Profiler::to_string() const {
  std::vector<int> order;
  for (int p = 0; p < kProfilePhases; ++p)
    if (stats_[static_cast<std::size_t>(p)].count > 0) order.push_back(p);
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    const PhaseStat& sa = stats_[static_cast<std::size_t>(a)];
    const PhaseStat& sb = stats_[static_cast<std::size_t>(b)];
    if (sa.total_ns != sb.total_ns) return sa.total_ns > sb.total_ns;
    return a < b;
  });
  std::ostringstream os;
  os << "profile (phase / count / total ms / mean us / min us / max us):\n";
  if (order.empty()) {
    os << "  (no phases recorded)\n";
    return os.str();
  }
  for (const int p : order) {
    const PhaseStat& s = stats_[static_cast<std::size_t>(p)];
    char line[160];
    std::snprintf(line, sizeof line,
                  "  %-20s %12lld %12.3f %10.3f %10.3f %10.3f\n",
                  profile_phase_name(static_cast<ProfilePhase>(p)),
                  static_cast<long long>(s.count),
                  static_cast<double>(s.total_ns) / 1e6,
                  static_cast<double>(s.total_ns) /
                      static_cast<double>(s.count) / 1e3,
                  static_cast<double>(s.min_ns) / 1e3,
                  static_cast<double>(s.max_ns) / 1e3);
    os << line;
  }
  return os.str();
}

}  // namespace sesp::obs
